// Package repro's root benchmarks regenerate every experiment table
// (E1–E23, DESIGN.md §4–§7) under `go test -bench`, and additionally
// micro-benchmark the simulator and algorithm primitives.
//
// Experiment benches run at Quick scale per iteration; use
// `go run ./cmd/radionet-bench -scale full` for the paper-scale sweeps
// recorded in EXPERIMENTS.md.
package repro

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/mpx"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// benchExperiment runs one registered experiment per iteration (trial grid
// fanned out over GOMAXPROCS workers, as in CI and the CLI).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.Config{Scale: exp.Quick, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1MISScaling(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2MISCorrectness(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3DegreeEstimate(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4Decay(b *testing.B)            { benchExperiment(b, "E4") }
func BenchmarkE5ClusterRadius(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6BadJ(b *testing.B)             { benchExperiment(b, "E6") }
func BenchmarkE7Broadcast(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8GrowthBounded(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9LeaderElection(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10GoldenRounds(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11GrowthMeasure(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12Ablation(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13SINRCrossModel(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14MultiSource(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15WakeAblation(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16WakeupReduction(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17ChurnBroadcast(b *testing.B)  { benchExperiment(b, "E17") }
func BenchmarkE18FaultMIS(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19PartitionHeal(b *testing.B)   { benchExperiment(b, "E19") }
func BenchmarkE20MobileElection(b *testing.B)  { benchExperiment(b, "E20") }
func BenchmarkE21SINRUnified(b *testing.B)     { benchExperiment(b, "E21") }
func BenchmarkE22CaptureDecay(b *testing.B)    { benchExperiment(b, "E22") }
func BenchmarkE23CDvsNoCDMIS(b *testing.B)     { benchExperiment(b, "E23") }

// --- Micro-benchmarks of the primitives ---

// benchMsg is boxed once so bench protocols measure engine cost, not
// payload boxing.
var benchMsg radio.Message = int64(7)

// coinNode transmits a coin flip every step until budget steps pass. Nodes
// with live=false retire immediately (sparse workloads).
type coinNode struct {
	rng    *xrand.RNG
	step   int
	budget int
	dead   bool
}

func (c *coinNode) Act(step int) radio.Action {
	if c.rng.Bernoulli(0.5) {
		return radio.Transmit(benchMsg)
	}
	return radio.Listen()
}
func (c *coinNode) Deliver(step int, msg radio.Message) { c.step = step + 1 }
func (c *coinNode) Done() bool                          { return c.dead || c.step >= c.budget }

// BenchmarkEngineStepThroughput measures raw sequential-simulator
// throughput in node-steps per op. "dense" is a 1024-node grid where half
// the nodes transmit each step; "sparse" is the Decay/MIS regime — a
// 4096-node grid where all but 64 nodes retired at step 0 — which the
// touched-vertex delivery and compacting active list make ~free.
func BenchmarkEngineStepThroughput(b *testing.B) {
	b.Run("dense", func(b *testing.B) {
		g := gen.Grid(32, 32)
		g.Freeze()
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &coinNode{rng: info.RNG, budget: b.N}
		}
		b.ResetTimer()
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: b.N, Seed: 1}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.N()), "node-steps/op")
	})
	b.Run("sparse", func(b *testing.B) {
		g := gen.Grid(64, 64)
		g.Freeze()
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &coinNode{rng: info.RNG, budget: b.N, dead: info.Index >= 64}
		}
		b.ResetTimer()
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: b.N, Seed: 1}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.N()), "node-steps/op")
	})
}

// benchConcurrent runs the worker-pool engine on an n-node grid for 64
// steps per iteration (engine construction included, as with the old
// goroutine-per-node engine this replaced).
func benchConcurrent(b *testing.B, rows, cols int) {
	b.Helper()
	g := gen.Grid(rows, cols)
	g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &coinNode{rng: info.RNG, budget: 64}
		}
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 64, Seed: 1, Concurrent: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentEngine(b *testing.B)     { benchConcurrent(b, 16, 16) }
func BenchmarkConcurrentEngine1024(b *testing.B) { benchConcurrent(b, 32, 32) }

func BenchmarkRadioMISGrid256(b *testing.B) {
	g := gen.Grid(16, 16)
	for i := 0; i < b.N; i++ {
		out, err := mis.Run(g, mis.Params{}, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !out.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkGhaffariLocalGrid1024(b *testing.B) {
	g := gen.Grid(32, 32)
	for i := 0; i < b.N; i++ {
		if _, _, err := mis.GhaffariLocal(g, 400, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionMIS(b *testing.B) {
	g := gen.Grid(32, 32)
	centers := g.GreedyMIS(nil)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpx.Partition(g, centers, 0.25, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleCompute(b *testing.B) {
	g := gen.Grid(24, 24)
	rng := xrand.New(2)
	a, err := mpx.Partition(g, g.GreedyMIS(nil), 0.25, rng)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sched.BuildForest(g, a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ComputeSchedule(g, f)
	}
}

func BenchmarkDecayBlockStar(b *testing.B) {
	g := gen.Star(64)
	for i := 0; i < b.N; i++ {
		factory := func(info radio.NodeInfo) radio.Protocol {
			return decay.NewNode(info, 8, info.Index > 0, info.Index)
		}
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 1 << 16, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastPaperGrid(b *testing.B) {
	g := gen.Grid(12, 12)
	for i := 0; i < b.N; i++ {
		if _, err := core.Broadcast(g, 0, core.Params{}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastDecayGrid(b *testing.B) {
	g := gen.Grid(12, 12)
	for i := 0; i < b.N; i++ {
		if _, err := baseline.DecayBroadcast(g, 0, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactIndependenceNumber(b *testing.B) {
	rng := xrand.New(3)
	g := gen.GNP(48, 0.15, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.IndependenceNumberExact(); !ok {
			b.Fatal("refused")
		}
	}
}

func BenchmarkBFS(b *testing.B) {
	g := gen.Grid(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}
