#!/usr/bin/env bash
# End-to-end smoke of the simulation service (CI's serve-smoke job, also
# runnable locally): boot radionet-serve on an ephemeral port, exercise the
# sync path, the async job path, the cache-hit path, and the load
# generator; then the crash-safety path (DESIGN.md §8) — kill -9 a durable
# server mid-job, restart it on the same data dir, and assert
# restart-recovery cache hits and byte-identical resumed-job completion;
# then the prefix-cache sweep drill (DESIGN.md §9) — 16 flood variants
# sharing a prefix must run ≥2× faster warm than cold, byte-identically.
# Restart-recovery, resume-overhead, and sweep rows are appended to the
# BENCH_serve.json trail next to the loadgen record.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  if [[ -n "${server_pid:-}" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/radionet-serve" ./cmd/radionet-serve
go build -o "$workdir/radionet-loadgen" ./cmd/radionet-loadgen

# wait_addr LOGFILE: print the server's announced base URL once it appears.
wait_addr() {
  local log=$1 base=""
  for _ in $(seq 500); do
    base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -1)
    [[ -n "$base" ]] && { echo "$base"; return 0; }
    kill -0 "$server_pid" || { echo "server died:" >&2; cat "$log" >&2; return 1; }
    sleep 0.02
  done
  echo "server never announced its address" >&2
  cat "$log" >&2
  return 1
}

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

"$workdir/radionet-serve" -addr 127.0.0.1:0 -workers 2 >"$workdir/serve.out" 2>&1 &
server_pid=$!
base=$(wait_addr "$workdir/serve.out")
echo "server at $base"

curl -fsS "$base/healthz" | grep -q '"ok":true'

# 1. Sync simulate: first request computes...
spec='{"graph":"grid","n":36,"algo":"mis","seed":1,"reps":2}'
curl -fsS -D "$workdir/h1" -o "$workdir/r1" -H 'Content-Type: application/json' \
  -d "$spec" "$base/v1/simulate"
grep -qi '^x-cache: MISS' "$workdir/h1"

# ...and the identical repeat is a cache hit with byte-identical body.
curl -fsS -D "$workdir/h2" -o "$workdir/r2" -H 'Content-Type: application/json' \
  -d "$spec" "$base/v1/simulate"
grep -qi '^x-cache: HIT' "$workdir/h2"
cmp "$workdir/r1" "$workdir/r2"
echo "sync simulate + cache hit OK"

# 1b. Observability (DESIGN.md §10): every response carries X-Trace-Id (a
# client-supplied one is echoed), and /metrics accounts the exact simulate
# pattern so far — 1 miss, then 2 memory hits after the traced repeat.
grep -qi '^x-trace-id: ' "$workdir/h1" || { echo "no X-Trace-Id on response"; exit 1; }
trace=00112233445566778899aabbccddeeff
curl -fsS -D "$workdir/h3" -o /dev/null -H "X-Trace-Id: $trace" \
  -H 'Content-Type: application/json' -d "$spec" "$base/v1/simulate"
grep -qi "^x-trace-id: $trace" "$workdir/h3" || { echo "supplied trace ID not echoed"; exit 1; }
curl -fsS "$base/metrics" >"$workdir/metrics.out"
grep -q 'serve_cache_requests_total{tier="miss"} 1' "$workdir/metrics.out" || {
  echo "miss counter wrong:"; grep serve_cache "$workdir/metrics.out"; exit 1; }
grep -q 'serve_cache_requests_total{tier="memory"} 2' "$workdir/metrics.out" || {
  echo "memory-hit counter wrong:"; grep serve_cache "$workdir/metrics.out"; exit 1; }
grep -q '^serve_http_request_seconds_bucket{' "$workdir/metrics.out"
grep -q '^serve_engine_probes_total' "$workdir/metrics.out"
grep -q '^serve_uptime_seconds' "$workdir/metrics.out"
echo "metrics + trace propagation OK"

# 2. Async job: submit, poll to completion, fetch the result by hash.
job=$(curl -fsS -d '{"graph":"churn:grid","n":36,"algo":"flood","seed":3,"epochs":3,"epoch_len":8,"rate":0.2}' \
  "$base/v1/jobs")
jid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$job")
[[ -n "$jid" ]] || { echo "no job id in: $job"; exit 1; }
state=""
for _ in $(seq 200); do
  poll=$(curl -fsS "$base/v1/jobs/$jid")
  state=$(sed -n 's/.*"state":"\([^"]*\)".*/\1/p' <<<"$poll")
  [[ "$state" == done ]] && break
  [[ "$state" == failed ]] && { echo "job failed: $poll"; exit 1; }
  sleep 0.1
done
[[ "$state" == done ]] || { echo "job stuck: $poll"; exit 1; }
hash=$(sed -n 's/.*"spec_hash":"\([^"]*\)".*/\1/p' <<<"$poll")
curl -fsS "$base/v1/results/$hash" | grep -q '"spec_hash"'
echo "async job + result fetch OK"

# 3. Load generator against the live server: mixed workload, latency
# percentiles, cache hit rate.
"$workdir/radionet-loadgen" -addr "$base" -requests 60 -concurrency 4 -seeds 2 \
  -out "$workdir/BENCH_serve.json" | tee "$workdir/loadgen.out"
grep -q 'p95' "$workdir/loadgen.out"
grep -q 'hit rate' "$workdir/loadgen.out"
grep -q 'throughput_rps' "$workdir/BENCH_serve.json"

# 4. Clean shutdown on SIGTERM.
kill "$server_pid"
wait "$server_pid"
grep -q 'shut down cleanly' "$workdir/serve.out"
unset server_pid
echo "serve smoke OK"

# 5. Crash safety (DESIGN.md §8): durable server, kill -9 mid-job, restart
# on the same data dir.
datadir="$workdir/data"
"$workdir/radionet-serve" -addr 127.0.0.1:0 -workers 1 -data-dir "$datadir" \
  >"$workdir/serve2.out" 2>&1 &
server_pid=$!
base2=$(wait_addr "$workdir/serve2.out")
echo "durable server at $base2 (data dir $datadir)"

# A computed result that must survive the crash...
dspec='{"graph":"grid","n":49,"algo":"mis","seed":9,"reps":2}'
curl -fsS -D "$workdir/h5" -o "$workdir/r5" -d "$dspec" "$base2/v1/simulate"
grep -qi '^x-cache: MISS' "$workdir/h5"

# ...and a heavy journaled job to die in the middle of.
jspec='{"graph":"churn:grid","n":196,"algo":"flood","seed":11,"reps":32,"epochs":8,"epoch_len":32,"rate":0.4}'
job2=$(curl -fsS -d "$jspec" "$base2/v1/jobs")
jid2=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$job2")
[[ -n "$jid2" ]] || { echo "no job id in: $job2"; exit 1; }

# Die in the MIDDLE: wait until the journal shows real progress (trial
# records land unfsynced but are visible the moment they are written), so
# the resumed job has completed trials to skip — killing at submit time
# would make "resume" recompute everything and the resume-overhead row
# below would measure nothing but a full recompute plus restart costs.
for _ in $(seq 500); do
  trials=$(grep -c '"op":"trial"' "$datadir/journal.jsonl" 2>/dev/null || true)
  [[ "${trials:-0}" -ge 8 ]] && break
  sleep 0.01
done
[[ "${trials:-0}" -ge 1 ]] || { echo "job recorded no trials to kill in the middle of"; exit 1; }

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
unset server_pid
echo "killed -9 with job $jid2 in flight"

t_restart=$(now_ms)
"$workdir/radionet-serve" -addr 127.0.0.1:0 -workers 1 -data-dir "$datadir" \
  >"$workdir/serve3.out" 2>&1 &
server_pid=$!
base3=$(wait_addr "$workdir/serve3.out")
grep -q 'recovered 1 jobs' "$workdir/serve3.out" || {
  echo "restart did not recover the interrupted job:"; cat "$workdir/serve3.out"; exit 1; }

# Restart recovery: the pre-crash sync result is served from the durable
# store, byte-identical, without recomputing.
t0=$(now_ms)
curl -fsS -D "$workdir/h6" -o "$workdir/r6" -d "$dspec" "$base3/v1/simulate"
t1=$(now_ms)
grep -qi '^x-cache: HIT-DURABLE' "$workdir/h6"
cmp "$workdir/r5" "$workdir/r6"
durable_hit_ms=$((t1 - t0))
echo "restart-recovery durable hit OK (${durable_hit_ms}ms)"

# Resumed job: same ID, completes, flagged recovered. Tight polling — the
# resumed_ms measurement below should reflect the job, not poll quantization.
state=""
for _ in $(seq 3000); do
  poll=$(curl -fsS "$base3/v1/jobs/$jid2")
  state=$(sed -n 's/.*"state":"\([^"]*\)".*/\1/p' <<<"$poll")
  [[ "$state" == done ]] && break
  [[ "$state" == failed ]] && { echo "resumed job failed: $poll"; exit 1; }
  sleep 0.02
done
[[ "$state" == done ]] || { echo "resumed job stuck: $poll"; exit 1; }
grep -q '"recovered":true' <<<"$poll" || { echo "job not marked recovered: $poll"; exit 1; }
t_resumed=$(now_ms)
resumed_ms=$((t_resumed - t_restart))
hash2=$(sed -n 's/.*"spec_hash":"\([^"]*\)".*/\1/p' <<<"$poll")
curl -fsS -o "$workdir/r7" "$base3/v1/results/$hash2"
curl -fsS "$base3/v1/stats" | grep -q '"recovered_jobs":1'
# The durable tier's instruments are live: store reads and journal fsyncs
# have been observed on this server.
curl -fsS "$base3/metrics" >"$workdir/metrics3.out"
grep -q 'serve_store_get_seconds_count{keyspace="result"}' "$workdir/metrics3.out"
grep -q '^serve_journal_fsync_seconds_count' "$workdir/metrics3.out"
grep -q 'serve_job_resumes_total 1' "$workdir/metrics3.out"
kill "$server_pid"; wait "$server_pid"; unset server_pid

# Byte-identity of the resumed job: a fresh ephemeral server computing the
# same spec from scratch must produce the same bytes.
"$workdir/radionet-serve" -addr 127.0.0.1:0 -workers 1 >"$workdir/serve4.out" 2>&1 &
server_pid=$!
base4=$(wait_addr "$workdir/serve4.out")
t0=$(now_ms)
curl -fsS -o "$workdir/r8" --max-time 300 -d "$jspec" "$base4/v1/simulate"
t1=$(now_ms)
fresh_ms=$((t1 - t0))
cmp "$workdir/r7" "$workdir/r8" || { echo "resumed job result differs from fresh computation"; exit 1; }
kill "$server_pid"; wait "$server_pid"; unset server_pid
echo "resumed job byte-identical to fresh computation OK (resumed ${resumed_ms}ms vs fresh ${fresh_ms}ms)"

# 6. Record the crash-safety timings next to the loadgen row.
jq --argjson hit "$durable_hit_ms" --argjson resumed "$resumed_ms" --argjson fresh "$fresh_ms" \
  '. += [
     {kind: "restart-recovery", durable_hit_ms: $hit},
     {kind: "resume-overhead", resumed_job_ms: $resumed, fresh_job_ms: $fresh}
   ]' "$workdir/BENCH_serve.json" >"$workdir/BENCH_serve.json.new"
mv "$workdir/BENCH_serve.json.new" "$workdir/BENCH_serve.json"
grep -q 'restart-recovery' "$workdir/BENCH_serve.json"
grep -q 'resume-overhead' "$workdir/BENCH_serve.json"
echo "crash-safety smoke OK"

# 7. Prefix-cache sweep drill (DESIGN.md §9): 16 flood variants identical
# except for their Epochs tail, run cold (ephemeral server) and warm
# (durable server whose snapshot cache the first variant seeds). The drill
# asserts every warm response is byte-identical to cold and carries
# X-Cache: HIT-PREFIX, and -sweep-min-speedup fails it if the shared
# prefix isn't bought at least 2× — the serve-side bench gate.
"$workdir/radionet-loadgen" -sweep 16 -sweep-min-speedup 2 \
  -out "$workdir/BENCH_serve.json" | tee "$workdir/sweep.out"
grep -q 'prefix hit rate' "$workdir/sweep.out"
jq -e '[.[] | select(.kind == "sweep")] | length == 1 and
       (.[0].prefix_hit_rate > 0.9) and (.[0].sweep_speedup >= 2)' \
  "$workdir/BENCH_serve.json" >/dev/null || {
  echo "sweep row missing or below gate:"; cat "$workdir/BENCH_serve.json"; exit 1; }
cat "$workdir/BENCH_serve.json"
echo "prefix sweep drill OK"
