#!/usr/bin/env bash
# End-to-end smoke of the simulation service (CI's serve-smoke job, also
# runnable locally): boot radionet-serve on an ephemeral port, exercise the
# sync path, the async job path, the cache-hit path, and the load
# generator, then shut down cleanly via SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  if [[ -n "${server_pid:-}" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/radionet-serve" ./cmd/radionet-serve
go build -o "$workdir/radionet-loadgen" ./cmd/radionet-loadgen

"$workdir/radionet-serve" -addr 127.0.0.1:0 -workers 2 >"$workdir/serve.out" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 100); do
  base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$workdir/serve.out" | head -1)
  [[ -n "$base" ]] && break
  kill -0 "$server_pid" || { echo "server died:"; cat "$workdir/serve.out"; exit 1; }
  sleep 0.1
done
[[ -n "$base" ]] || { echo "server never announced its address"; cat "$workdir/serve.out"; exit 1; }
echo "server at $base"

curl -fsS "$base/healthz" | grep -q '"ok":true'

# 1. Sync simulate: first request computes...
spec='{"graph":"grid","n":36,"algo":"mis","seed":1,"reps":2}'
curl -fsS -D "$workdir/h1" -o "$workdir/r1" -H 'Content-Type: application/json' \
  -d "$spec" "$base/v1/simulate"
grep -qi '^x-cache: MISS' "$workdir/h1"

# ...and the identical repeat is a cache hit with byte-identical body.
curl -fsS -D "$workdir/h2" -o "$workdir/r2" -H 'Content-Type: application/json' \
  -d "$spec" "$base/v1/simulate"
grep -qi '^x-cache: HIT' "$workdir/h2"
cmp "$workdir/r1" "$workdir/r2"
echo "sync simulate + cache hit OK"

# 2. Async job: submit, poll to completion, fetch the result by hash.
job=$(curl -fsS -d '{"graph":"churn:grid","n":36,"algo":"flood","seed":3,"epochs":3,"epoch_len":8,"rate":0.2}' \
  "$base/v1/jobs")
jid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$job")
[[ -n "$jid" ]] || { echo "no job id in: $job"; exit 1; }
state=""
for _ in $(seq 200); do
  poll=$(curl -fsS "$base/v1/jobs/$jid")
  state=$(sed -n 's/.*"state":"\([^"]*\)".*/\1/p' <<<"$poll")
  [[ "$state" == done ]] && break
  [[ "$state" == failed ]] && { echo "job failed: $poll"; exit 1; }
  sleep 0.1
done
[[ "$state" == done ]] || { echo "job stuck: $poll"; exit 1; }
hash=$(sed -n 's/.*"spec_hash":"\([^"]*\)".*/\1/p' <<<"$poll")
curl -fsS "$base/v1/results/$hash" | grep -q '"spec_hash"'
echo "async job + result fetch OK"

# 3. Load generator against the live server: mixed workload, latency
# percentiles, cache hit rate.
"$workdir/radionet-loadgen" -addr "$base" -requests 60 -concurrency 4 -seeds 2 \
  -out "$workdir/BENCH_serve.json" | tee "$workdir/loadgen.out"
grep -q 'p95' "$workdir/loadgen.out"
grep -q 'hit rate' "$workdir/loadgen.out"
grep -q 'throughput_rps' "$workdir/BENCH_serve.json"

# 4. Clean shutdown on SIGTERM.
kill "$server_pid"
wait "$server_pid"
grep -q 'shut down cleanly' "$workdir/serve.out"
unset server_pid
echo "serve smoke OK"
