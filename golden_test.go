// golden_test.go freezes FNV transcript digests of the paper's algorithms
// on fixed small graphs and seeds. A digest covers every node's
// (nodeID, step, action/deliver) event stream (trace.Hasher), so any future
// engine or algorithm change that silently alters protocol-visible
// semantics — delivery rules, retirement, RNG splitting, step accounting —
// flips the digest and fails these tests, while pure refactors and
// performance work leave it untouched. The engines' determinism contract
// (DESIGN.md §3) makes the digests stable across the sequential and
// worker-pool engines, which the MIS and Decay cases also assert.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Frozen digests. These values are a contract: do not update them unless a
// deliberate, understood semantic change to the corresponding algorithm or
// to the engine's protocol-visible behavior is being made — and say so in
// the commit message.
const (
	goldenMIS       = uint64(0x5447b4108d26c71d) // mis.Run, 6x6 grid, seed 42
	goldenDecay     = uint64(0x986345ecd19d493b) // amplified Decay, 16-star, seed 7
	goldenBroadcast = uint64(0x7f9896d30390ce58) // core.Broadcast, 6x6 grid, seed 11
	goldenElection  = uint64(0xa70fbb5c63a096f0) // core.LeaderElection, 5x5 grid, seed 13
	// goldenDynDecay freezes the dynamic-topology semantics end to end: the
	// churn schedule construction (dyn.Churn on a 6x6 grid, schedule seed 3),
	// the engines' epoch swap, and delivery over mutated epochs. Any change
	// to the mutation-seed derivation, the delta application order, or the
	// epoch-boundary placement flips this digest.
	goldenDynDecay = uint64(0xc77a9386768f557e) // amplified Decay, churned 6x6 grid, seed 21
	// goldenSINRDecay freezes the physical-layer semantics end to end: the
	// mobile deployment draw (gen.MobileUDG, schedule seed 8), the per-epoch
	// position hand-off through dyn into phy.NewMobileSINR, the grid-bucketed
	// interference accumulation in fixed transmitter order, and the SINR
	// decode rule — on both engines. Any change to the decode arithmetic,
	// the cutoff default, the position plumbing, or the epoch-boundary
	// placement flips this digest.
	goldenSINRDecay = uint64(0x487f98994ae2d74e) // amplified Decay, mobile SINR UDG, seed 19
)

func hashMIS(t *testing.T, concurrent bool) uint64 {
	t.Helper()
	g := gen.Grid(6, 6)
	h := trace.NewHasher()
	out, err := mis.RunOnEngine(g, mis.Params{}, 42, func(f radio.Factory, o radio.Options) (radio.Result, error) {
		o.Concurrent = concurrent
		return radio.Run(g, h.Wrap(f), o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed || mis.Verify(g, out.MIS) != nil {
		t.Fatalf("golden MIS run invalid: %+v", out)
	}
	return h.Sum()
}

func hashDecay(t *testing.T, concurrent bool) uint64 {
	t.Helper()
	g := gen.Star(16)
	h := trace.NewHasher()
	factory := func(info radio.NodeInfo) radio.Protocol {
		return decay.NewNode(info, 4, info.Index > 0, info.Index)
	}
	if _, err := radio.Run(g, h.Wrap(factory), radio.Options{MaxSteps: 1 << 16, Seed: 7, Concurrent: concurrent}); err != nil {
		t.Fatal(err)
	}
	return h.Sum()
}

func hashDynDecay(t *testing.T, concurrent bool) uint64 {
	t.Helper()
	g := gen.Grid(6, 6)
	sched, err := dyn.Churn(g, 8, 12, 0.25, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	factory := func(info radio.NodeInfo) radio.Protocol {
		return decay.NewNode(info, 6, info.Index == 0, info.Index)
	}
	opts := radio.Options{MaxSteps: 1 << 10, Seed: 21, Topology: sched, Concurrent: concurrent}
	if _, err := radio.Run(g, h.Wrap(factory), opts); err != nil {
		t.Fatal(err)
	}
	return h.Sum()
}

func hashSINRDecay(t *testing.T, concurrent bool) uint64 {
	t.Helper()
	sched, err := gen.MobileUDG(36, 6, 16, 0.5, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	model, err := phy.NewMobileSINR(sched, phy.SINRParams{})
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	factory := func(info radio.NodeInfo) radio.Protocol {
		return decay.NewNode(info, 6, info.Index == 0, info.Index)
	}
	opts := radio.Options{MaxSteps: 1 << 10, Seed: 19, Topology: sched, PHY: model, Concurrent: concurrent}
	if _, err := radio.Run(sched.CSR(0).Graph(), h.Wrap(factory), opts); err != nil {
		t.Fatal(err)
	}
	return h.Sum()
}

func hashBroadcast(t *testing.T) uint64 {
	t.Helper()
	g := gen.Grid(6, 6)
	h := trace.NewHasher()
	res, err := core.Broadcast(g, 0, core.Params{WrapFactory: h.Wrap}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatalf("golden broadcast did not complete: %+v", res)
	}
	return h.Sum()
}

func hashElection(t *testing.T) uint64 {
	t.Helper()
	g := gen.Grid(5, 5)
	h := trace.NewHasher()
	er, err := core.LeaderElection(g, core.Params{WrapFactory: h.Wrap}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if er.CompleteStep < 0 || er.Candidates < 1 {
		t.Fatalf("golden election did not complete: %+v", er)
	}
	return h.Sum()
}

func TestGoldenTranscripts(t *testing.T) {
	cases := []struct {
		name string
		want uint64
		run  func() uint64
	}{
		{"mis", goldenMIS, func() uint64 { return hashMIS(t, false) }},
		{"mis/concurrent-engine", goldenMIS, func() uint64 { return hashMIS(t, true) }},
		{"decay", goldenDecay, func() uint64 { return hashDecay(t, false) }},
		{"decay/concurrent-engine", goldenDecay, func() uint64 { return hashDecay(t, true) }},
		{"dyn-decay", goldenDynDecay, func() uint64 { return hashDynDecay(t, false) }},
		{"dyn-decay/concurrent-engine", goldenDynDecay, func() uint64 { return hashDynDecay(t, true) }},
		{"sinr-decay", goldenSINRDecay, func() uint64 { return hashSINRDecay(t, false) }},
		{"sinr-decay/concurrent-engine", goldenSINRDecay, func() uint64 { return hashSINRDecay(t, true) }},
		{"broadcast", goldenBroadcast, func() uint64 { return hashBroadcast(t) }},
		{"election", goldenElection, func() uint64 { return hashElection(t) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(); got != tc.want {
				t.Errorf("transcript digest = %#016x, frozen golden = %#016x\n"+
					"If this is a deliberate semantic change, update the constant and explain it; "+
					"otherwise the engine or algorithm drifted.", got, tc.want)
			}
		})
	}
}
