// golden_compact_test.go re-runs two golden workloads through the graph-free
// radio.RunCSR entry point with the adjacency delta-packed — forcing the
// compact form far below its size threshold — and requires the frozen
// digests from golden_test.go byte-for-byte. This pins two contracts at
// once: the packed neighbor blocks are protocol-invisible (same delivery,
// same order), and RunCSR's static-snapshot topology adapter is transcript-
// identical to the classic Run path, on both engines.
package repro

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/radio"
	"repro/internal/trace"

	"repro/internal/decay"
)

// packedSnapshot freezes g and forces the compact adjacency form, failing
// the test if packing declined (it never should at golden sizes).
func packedSnapshot(t *testing.T, g *graph.Graph) *graph.CSR {
	t.Helper()
	csr := g.Freeze().Pack()
	if !csr.IsPacked() {
		t.Fatal("Pack returned a flat snapshot")
	}
	return csr
}

func hashMISPacked(t *testing.T, concurrent bool) uint64 {
	t.Helper()
	g := gen.Grid(6, 6)
	csr := packedSnapshot(t, g)
	h := trace.NewHasher()
	out, err := mis.RunOnEngine(g, mis.Params{}, 42, func(f radio.Factory, o radio.Options) (radio.Result, error) {
		o.Concurrent = concurrent
		return radio.RunCSR(csr, h.Wrap(f), o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed || mis.Verify(g, out.MIS) != nil {
		t.Fatalf("packed MIS run invalid: %+v", out)
	}
	return h.Sum()
}

func hashDecayPacked(t *testing.T, concurrent bool) uint64 {
	t.Helper()
	csr := packedSnapshot(t, gen.Star(16))
	h := trace.NewHasher()
	factory := func(info radio.NodeInfo) radio.Protocol {
		return decay.NewNode(info, 4, info.Index > 0, info.Index)
	}
	if _, err := radio.RunCSR(csr, h.Wrap(factory), radio.Options{MaxSteps: 1 << 16, Seed: 7, Concurrent: concurrent}); err != nil {
		t.Fatal(err)
	}
	return h.Sum()
}

func TestGoldenTranscriptsPackedCSR(t *testing.T) {
	cases := []struct {
		name string
		want uint64
		run  func() uint64
	}{
		{"mis", goldenMIS, func() uint64 { return hashMISPacked(t, false) }},
		{"mis/concurrent-engine", goldenMIS, func() uint64 { return hashMISPacked(t, true) }},
		{"decay", goldenDecay, func() uint64 { return hashDecayPacked(t, false) }},
		{"decay/concurrent-engine", goldenDecay, func() uint64 { return hashDecayPacked(t, true) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(); got != tc.want {
				t.Errorf("packed-CSR transcript digest = %#016x, frozen golden = %#016x\n"+
					"The compact adjacency form or the RunCSR snapshot path changed "+
					"protocol-visible behavior.", got, tc.want)
			}
		})
	}
}
