package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the server goroutine logs into.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-cache", "8"}, &out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"graph":"grid","n":16,"algo":"mis","seed":1}`
	r1, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("simulate: status %d X-Cache %q: %s", r1.StatusCode, r1.Header.Get("X-Cache"), b1)
	}
	r2, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.Header.Get("X-Cache") != "HIT" || string(b1) != string(b2) {
		t.Fatalf("repeat: X-Cache %q, identical %v", r2.Header.Get("X-Cache"), string(b1) == string(b2))
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("missing clean-shutdown line: %q", out.String())
	}
}

func TestServeFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("want flag error")
	}
	if err := run(context.Background(), []string{"-addr", "notanaddr"}, io.Discard); err == nil {
		t.Fatal("want listen error")
	}
}
