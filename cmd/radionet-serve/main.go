// Command radionet-serve is the long-lived simulation service: an HTTP
// front end over the deterministic engines (DESIGN.md §6). Identical
// scenario requests are served from a content-addressed result cache —
// determinism makes cached responses byte-identical to recomputation — and
// concurrent duplicates coalesce onto one execution.
//
// Usage:
//
//	radionet-serve [-addr 127.0.0.1:8080] [-workers N] [-queue 64] [-cache 256] [-parallel 1]
//	               [-data-dir DIR] [-job-retries 2] [-job-timeout 0] [-request-timeout 2m]
//	               [-log-level info] [-debug-addr ADDR]
//
// Endpoints (see DESIGN.md §6 / README.md for the JSON schema, which is
// shared with `radionet-bench -json`):
//
//	POST /v1/simulate       sync simulation (X-Cache: HIT|HIT-DURABLE|MISS|COALESCED)
//	POST /v1/jobs           async submission → 202 + job record
//	GET  /v1/jobs/{id}      job state + trial progress
//	GET  /v1/results/{hash} content-addressed result fetch
//	GET  /v1/stats          cache/queue/execution counters
//	GET  /metrics           Prometheus text exposition (DESIGN.md §10)
//	GET  /healthz           liveness
//
// With -data-dir the service is crash-safe (DESIGN.md §8): results persist
// to a content-addressed store, async jobs are journaled with engine
// checkpoints, and a restart on the same directory serves prior results as
// durable cache hits and resumes interrupted jobs to byte-identical
// completion. Saturation, drain, and deadline failures answer 503 with a
// Retry-After hint.
//
// The listen address is printed on stdout once bound (use -addr
// 127.0.0.1:0 for an ephemeral port; CI's smoke job parses the line).
// SIGINT/SIGTERM shut the server down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-serve:", err)
		os.Exit(1)
	}
}

// run binds, serves, and drains on ctx cancellation. out receives the
// "listening on" line; tests and the CI smoke script parse it.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radionet-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "concurrent simulation executions (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "async job queue depth (backpressure bound)")
	cacheEntries := fs.Int("cache", 256, "result cache capacity in entries")
	parallel := fs.Int("parallel", 1, "per-job trial-runner workers (results are identical for every value)")
	dataDir := fs.String("data-dir", "", "durable data directory (empty: ephemeral — no store, no journal)")
	jobRetries := fs.Int("job-retries", 2, "retries for failed async jobs, with exponential backoff (0 disables)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock deadline; expiry fails the job terminally (0 = none)")
	reqTimeout := fs.Duration("request-timeout", 2*time.Minute, "per-request context deadline on the sync path (0 = none)")
	logLevel := fs.String("log-level", "info", "structured log level: debug|info|warn|error (debug includes spans)")
	debugAddr := fs.String("debug-addr", "", "listen address for net/http/pprof (empty: disabled; keep it private)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	retries := *jobRetries
	if retries <= 0 {
		retries = -1 // Config treats 0 as "default"; the flag's 0 means off
	}
	level, ok := obs.ParseLevel(*logLevel)
	if !ok {
		return fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", *logLevel)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	svc, err := serve.Open(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		Parallel:     *parallel,
		DataDir:      *dataDir,
		JobRetries:   retries,
		JobTimeout:   *jobTimeout,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		// pprof gets its own listener (and mux) so profiling endpoints are
		// never reachable through the public API address.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "radionet-serve: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Warn("pprof server exited", slog.String("error", err.Error()))
			}
		}()
		defer dln.Close()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "radionet-serve: listening on http://%s\n", ln.Addr())
	if *dataDir != "" {
		st := svc.Stats()
		fmt.Fprintf(out, "radionet-serve: durable data dir %s (recovered %d jobs, %d trials)\n",
			*dataDir, st.RecoveredJobs, st.RecoveredTrials)
	}
	handler := serve.NewHandler(svc)
	writeTimeout := time.Duration(0)
	if *reqTimeout > 0 {
		handler = withRequestDeadline(handler, *reqTimeout)
		// The write window must outlast the request deadline: the handler
		// answers every in-budget request (including the 503 the deadline
		// produces); WriteTimeout only reaps connections that cannot make
		// progress even then.
		writeTimeout = *reqTimeout + 15*time.Second
	}
	srv := &http.Server{
		Handler: handler,
		// Bound idle/slow connections the same way every server-side store
		// is bounded: without these, a client that never completes its
		// request (headers or dribbled body) pins a goroutine and fd
		// forever. Specs are tiny and read at handler start, so a short
		// read window never touches legitimate requests or bounds handler
		// compute time.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	var shutErr error
	go func() {
		defer close(done)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr = srv.Shutdown(shutCtx)
		svc.Close()
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	if shutErr != nil {
		// The deadline expired with requests still in flight: exiting now
		// severs them, so do not claim (and let CI's grep believe) a clean
		// shutdown.
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	fmt.Fprintln(out, "radionet-serve: shut down cleanly")
	return nil
}

// withRequestDeadline bounds every request's context: a sync simulation
// that outruns the budget gets 503 + Retry-After while its computation
// finishes into the cache for the retry (serve.SimulateCtx).
func withRequestDeadline(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
