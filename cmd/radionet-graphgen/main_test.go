package main

import "testing"

func TestFormats(t *testing.T) {
	for _, args := range [][]string{
		{"-graph", "grid", "-n", "25", "-format", "edges"},
		{"-graph", "path", "-n", "10", "-format", "json"},
		{"-graph", "tree", "-n", "20", "-format", "edges", "-stats"},
		{"-graph", "gnp", "-n", "40", "-format", "json", "-seed", "2"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Fatal("want format error")
	}
	if err := run([]string{"-graph", "nosuch"}); err == nil {
		t.Fatal("want graph error")
	}
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("want n error")
	}
}
