// Command radionet-graphgen emits generated graphs as edge lists or JSON,
// with a summary of the parameters the paper's analysis cares about
// (n, m, D, α estimate, growth exponent).
//
// Usage:
//
//	radionet-graphgen -graph udg -n 300 -format edges > udg.txt
//	radionet-graphgen -graph grid -n 144 -format json -stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// edgeListJSON is the JSON output schema.
type edgeListJSON struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radionet-graphgen", flag.ContinueOnError)
	graphName := fs.String("graph", "grid", "graph class (see radionet-sim)")
	n := fs.Int("n", 100, "approximate node count")
	seed := fs.Uint64("seed", 1, "random seed")
	format := fs.String("format", "edges", "output format: edges or json")
	withStats := fs.Bool("stats", false, "print summary statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gen.ByName(*graphName, *n, *seed)
	if err != nil {
		return err
	}
	if *withStats {
		printStats(g, *seed)
	}
	switch *format {
	case "edges":
		fmt.Printf("# %s n=%d m=%d seed=%d\n", *graphName, g.N(), g.M(), *seed)
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				if int(w) > v {
					fmt.Printf("%d %d\n", v, w)
				}
			}
		}
	case "json":
		out := edgeListJSON{N: g.N()}
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				if int(w) > v {
					out.Edges = append(out.Edges, [2]int{v, int(w)})
				}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

func printStats(g *graph.Graph, seed uint64) {
	rng := xrand.New(seed)
	fmt.Fprintf(os.Stderr, "n=%d m=%d maxdeg=%d", g.N(), g.M(), g.MaxDegree())
	if d, err := g.Diameter(); err == nil {
		fmt.Fprintf(os.Stderr, " D=%d", d)
	} else {
		fmt.Fprintf(os.Stderr, " D=disconnected")
	}
	fmt.Fprintf(os.Stderr, " α̂=%d", g.IndependenceLowerBound(4, rng))
	profile := g.GrowthProfile(4, 8, rng)
	fmt.Fprintf(os.Stderr, " growth-exp=%.2f\n", graph.GrowthExponent(profile))
}
