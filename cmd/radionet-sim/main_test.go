package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunAlgorithms(t *testing.T) {
	cases := [][]string{
		{"-graph", "grid", "-n", "49", "-algo", "mis"},
		{"-graph", "path", "-n", "24", "-algo", "broadcast"},
		{"-graph", "path", "-n", "24", "-algo", "broadcast-all"},
		{"-graph", "clique", "-n", "20", "-algo", "decay-broadcast"},
		{"-graph", "grid", "-n", "36", "-algo", "election"},
		{"-graph", "grid", "-n", "36", "-algo", "decay-election"},
		{"-graph", "udg", "-n", "60", "-algo", "mis", "-seed", "5"},
		{"-graph", "cliquechain", "-n", "30", "-algo", "broadcast"},
		{"-graph", "grid", "-n", "36", "-algo", "flood"},
		{"-graph", "churn:grid", "-n", "36", "-algo", "flood", "-rate", "0.2", "-epochs", "6", "-epoch-len", "16"},
		{"-graph", "fault:gnp", "-n", "36", "-algo", "flood", "-rate", "0.2", "-epochs", "6", "-epoch-len", "16"},
		{"-graph", "mobile:udg", "-n", "40", "-algo", "flood", "-rate", "0.5", "-epochs", "6", "-epoch-len", "16"},
		{"-graph", "churn:grid", "-n", "36", "-algo", "mis"}, // epoch-0 skeleton warning path
		{"-graph", "phy:sinr", "-n", "48", "-algo", "mis"},
		{"-graph", "phy:sinr", "-n", "48", "-algo", "decay-broadcast", "-beta", "1"},
		{"-graph", "phy:sinr", "-n", "48", "-algo", "decay-broadcast", "-noise", "0.25", "-pathloss", "3", "-cutoff", "6"},
		{"-graph", "phy:sinr", "-n", "48", "-algo", "flood"},
		{"-graph", "phy:cd:grid", "-n", "36", "-algo", "mis"},
		{"-graph", "phy:cd:grid", "-n", "36", "-algo", "flood"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

// A phy: spec with an algorithm that has no reception-model entry point
// must fail loudly — not silently fall back to the graph model.
func TestPhySpecUnsupportedAlgo(t *testing.T) {
	for _, algo := range []string{"broadcast", "election", "decay-election"} {
		err := run([]string{"-graph", "phy:sinr", "-n", "48", "-algo", algo}, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "phy") {
			t.Fatalf("algo %s on phy:sinr: err = %v, want phy-support error", algo, err)
		}
	}
}

// A non-flood algorithm on a dynamic spec silently runs on the epoch-0
// skeleton; the CLI must say so on stderr (and only then).
func TestDynamicSpecSkeletonWarning(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "churn:grid", "-n", "36", "-algo", "mis"}, &buf); err != nil {
		t.Fatal(err)
	}
	warn := buf.String()
	if !strings.Contains(warn, "warning:") || !strings.Contains(warn, "epoch-0 skeleton") {
		t.Fatalf("missing skeleton warning on stderr: %q", warn)
	}
	if !strings.Contains(warn, "churn:grid") || !strings.Contains(warn, "-algo flood") {
		t.Fatalf("warning lacks spec and remedy: %q", warn)
	}

	// flood follows the schedule: no warning.
	buf.Reset()
	if err := run([]string{"-graph", "churn:grid", "-n", "36", "-algo", "flood", "-epochs", "3", "-epoch-len", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "warning:") {
		t.Fatalf("flood on a dynamic spec must not warn: %q", buf.String())
	}

	// static graphs: no warning either.
	buf.Reset()
	if err := run([]string{"-graph", "grid", "-n", "36", "-algo", "mis"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "warning:") {
		t.Fatalf("static graph must not warn: %q", buf.String())
	}
}

func TestRunWithTrace(t *testing.T) {
	path := t.TempDir() + "/trace.csv"
	if err := run([]string{"-graph", "path", "-n", "16", "-algo", "mis", "-trace", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "step,transmits,") {
		t.Fatalf("trace header missing: %.60s", data)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-graph", "nosuch"}, io.Discard); err == nil {
		t.Fatal("want unknown-graph error")
	}
	if err := run([]string{"-algo", "nosuch"}, io.Discard); err == nil {
		t.Fatal("want unknown-algo error")
	}
	if err := run([]string{"-bogusflag"}, io.Discard); err == nil {
		t.Fatal("want flag error")
	}
	if err := run([]string{"-graph", "warp:grid", "-algo", "flood"}, io.Discard); err == nil {
		t.Fatal("want unknown-dynamic-kind error")
	}
	if err := run([]string{"-graph", "mobile:grid", "-algo", "flood"}, io.Discard); err == nil {
		t.Fatal("want mobile-class error")
	}
}
