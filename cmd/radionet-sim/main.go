// Command radionet-sim runs one algorithm on one generated graph and prints
// a result summary — the quickest way to poke at the library.
//
// Usage:
//
//	radionet-sim -graph grid -n 256 -algo broadcast [-seed 7]
//	radionet-sim -graph churn:grid -n 256 -algo flood [-epochs 12] [-epoch-len 32] [-rate 0.2]
//	radionet-sim -graph phy:sinr -n 256 -algo mis [-beta 2] [-noise 0.5] [-pathloss 4] [-cutoff 4]
//
// Graphs: path, cycle, clique, star, grid, tree, gnp, udg, cliquechain,
// lollipop — plus the dynamic specs churn:<class>, fault:<class> and
// mobile:udg, whose epoch schedules are built by gen.ScheduleByName and run
// through the engine's Options.Topology hook, and the physical-layer specs
// phy:sinr (a UDG deployment under SINR reception, parameterized by -beta,
// -noise, -pathloss, -cutoff) and phy:cd:<class> (collision detection),
// which run through the engine's Options.PHY hook (DESIGN.md §7).
// Algorithms: mis, broadcast, broadcast-all, decay-broadcast, election,
// decay-election, flood (the only one that follows a dynamic topology;
// on a dynamic spec the others run on the epoch-0 skeleton). The phy:
// specs support mis, decay-broadcast, and flood — the engine entry points
// that accept a reception model.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("radionet-sim", flag.ContinueOnError)
	graphName := fs.String("graph", "grid", "graph class")
	n := fs.Int("n", 256, "approximate node count")
	algo := fs.String("algo", "broadcast", "algorithm to run")
	seed := fs.Uint64("seed", 1, "random seed")
	source := fs.Int("source", 0, "broadcast source node")
	traceCSV := fs.String("trace", "", "write a per-step CSV trace to this file (mis only)")
	epochs := fs.Int("epochs", 12, "dynamic specs: mutated epochs after the pristine epoch 0")
	epochLen := fs.Int("epoch-len", 32, "dynamic specs: steps per epoch")
	rate := fs.Float64("rate", 0, "dynamic specs: churn/fault probability or mobility speed (0 = default)")
	beta := fs.Float64("beta", 0, "phy:sinr: decode threshold β ≥ 1 (0 = default 2)")
	noise := fs.Float64("noise", -1, "phy:sinr: ambient noise floor (-1 = default; 0 is an explicit noiseless channel)")
	pathLoss := fs.Float64("pathloss", 0, "phy:sinr: path-loss exponent (0 = default 4)")
	cutoff := fs.Float64("cutoff", 0, "phy:sinr: far-field cutoff in decode ranges (0 = default 4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := phy.SINRParams{Beta: *beta, PathLoss: *pathLoss, CutoffFactor: *cutoff}
	if *noise >= 0 {
		params.Noise, params.NoiseSet = *noise, true
	}
	if *algo == "flood" {
		return runFlood(*graphName, *n, *epochs, *epochLen, *rate, *seed, *source, params)
	}
	if phyModel, _, isPhy := gen.SplitPhySpec(*graphName); isPhy {
		return runPhy(*graphName, phyModel, *n, *algo, *seed, *source, params)
	}
	if strings.Contains(*graphName, ":") {
		fmt.Fprintf(stderr, "warning: algo %s ignores the dynamic schedule of %s and runs on its epoch-0 skeleton (use -algo flood)\n",
			*algo, *graphName)
	}
	g, err := gen.ByName(*graphName, *n, *seed)
	if err != nil {
		return err
	}
	d, derr := g.Diameter()
	fmt.Printf("graph=%s n=%d m=%d", *graphName, g.N(), g.M())
	if derr == nil {
		fmt.Printf(" D=%d", d)
	}
	alpha := g.IndependenceLowerBound(4, xrand.New(*seed))
	fmt.Printf(" α̂=%d\n", alpha)

	switch *algo {
	case "mis":
		var out *mis.Outcome
		var err error
		if *traceCSV != "" {
			rec := trace.NewRecorder(0)
			out, err = mis.RunDetailed(g, mis.Params{}, *seed, g.N(), rec.OnStep())
			if err == nil {
				if werr := writeTrace(*traceCSV, rec); werr != nil {
					return werr
				}
				fmt.Printf("trace: %s (%s)\n", *traceCSV, rec.Summarize())
			}
		} else {
			out, err = mis.Run(g, mis.Params{}, *seed)
		}
		if err != nil {
			return err
		}
		status := "VALID"
		if err := mis.Verify(g, out.MIS); err != nil {
			status = err.Error()
		}
		fmt.Printf("mis: |MIS|=%d steps=%d rounds=%d completed=%v verdict=%s\n",
			len(out.MIS), out.Steps, out.Rounds, out.Completed, status)
		l := math.Log2(float64(g.N()))
		fmt.Printf("mis: steps/log³n = %.2f (Theorem 14: O(log³ n))\n", float64(out.Steps)/(l*l*l))
	case "broadcast", "broadcast-all":
		params := core.Params{}
		if *algo == "broadcast-all" {
			params.CenterMode = core.AllCenters
		}
		res, err := core.Broadcast(g, *source, params, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("broadcast(%s): complete=%d main=%d mis=%d charged=%d total=%d |MIS|=%d b=%d slots=%d/%d\n",
			params.CenterMode, res.CompleteStep, res.MainSteps, res.MISSteps,
			res.ChargedSetupSteps, res.TotalSteps, res.MISSize, res.B,
			res.MaxDownSlots, res.MaxUpSlots)
	case "decay-broadcast":
		res, err := baseline.DecayBroadcast(g, *source, 0, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("decay-broadcast: complete=%d levels=%d transmissions=%d\n",
			res.CompleteStep, res.Levels, res.Transmissions)
	case "election":
		er, err := core.LeaderElection(g, core.Params{}, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("election: complete=%d candidates=%d leader=%d\n",
			er.CompleteStep, er.Candidates, er.LeaderID)
	case "decay-election":
		er, err := baseline.DecayLeaderElection(g, 0, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("decay-election: complete=%d candidates=%d winner=%d\n",
			er.CompleteStep, er.Candidates, er.Winner)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// runPhy runs one of the phy-capable algorithms under the spec's reception
// model, through the same entry points the experiments and the service use.
func runPhy(spec, phyModel string, n int, algo string, seed uint64, source int, params phy.SINRParams) error {
	g, model, err := gen.PhyDeployment(spec, n, seed, params)
	if err != nil {
		return err
	}
	if phyModel == "sinr" {
		p := params.WithDefaults()
		fmt.Printf("phy=sinr beta=%g noise=%g pathloss=%g cutoff=%g decode-range=%g\n",
			p.Beta, p.Noise, p.PathLoss, p.CutoffFactor, p.DecodeRange())
	}
	fmt.Printf("graph=%s phy=%s n=%d m=%d\n", spec, model.Name(), g.N(), g.M())
	switch algo {
	case "mis":
		out, err := mis.RunOnEngine(g, mis.Params{}, seed, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
			opts.PHY = model
			return radio.Run(g, factory, opts)
		})
		if err != nil {
			return err
		}
		status := "VALID"
		if err := mis.Verify(g, out.MIS); err != nil {
			status = err.Error()
		}
		fmt.Printf("mis: |MIS|=%d steps=%d rounds=%d completed=%v verdict=%s\n",
			len(out.MIS), out.Steps, out.Rounds, out.Completed, status)
	case "decay-broadcast":
		res, err := baseline.DecayBroadcastPHY(g, model, source%g.N(), 0, seed)
		if err != nil {
			return err
		}
		fmt.Printf("decay-broadcast: complete=%d levels=%d transmissions=%d\n",
			res.CompleteStep, res.Levels, res.Transmissions)
	default:
		return fmt.Errorf("algorithm %q cannot run under a phy: spec (supported: mis, decay-broadcast, flood)", algo)
	}
	return nil
}

// runFlood floods a rumor from source over the (possibly dynamic) topology
// named by spec and prints per-epoch coverage. The protocol and runner are
// exp.RunFlood — the same flood E17–E21 measure — so the CLI demo and the
// experiment suite cannot drift apart. On a phy: spec the flood runs under
// that reception model.
func runFlood(spec string, n, epochs, epochLen int, rate float64, seed uint64, source int, params phy.SINRParams) error {
	sched, err := gen.ScheduleByName(spec, n, epochs, epochLen, rate, seed)
	if err != nil {
		return err
	}
	model, _, err := gen.SchedulePhyModel(spec, sched, params)
	if err != nil {
		return err
	}
	n = sched.N()
	budget := max(sched.LastStart()+epochLen, 4*epochLen)
	fmt.Printf("graph=%s n=%d epochs=%d budget=%d\n", spec, n, sched.Epochs(), budget)
	g := sched.CSR(0).Graph()
	out, err := exp.RunFlood(g, sched, map[int]int64{source % n: 1}, exp.FloodConfig{
		Budget: budget, ProbeStep: -1, Seed: seed, PHY: model,
		OnStep: func(step, informed int) {
			if (step+1)%epochLen == 0 {
				fmt.Printf("step %4d: informed %d/%d (m=%d)\n", step+1, informed, n, currentM(sched, step))
			}
		},
	})
	if err != nil {
		return err
	}
	if out.Complete >= 0 {
		fmt.Printf("flood: complete=%d informed=%d/%d\n", out.Complete, out.InformedEnd, n)
	} else {
		fmt.Printf("flood: incomplete after %d steps, informed=%d/%d\n", budget, out.InformedEnd, n)
	}
	return nil
}

// currentM reports the edge count of the epoch in force at step.
func currentM(topo radio.Topology, step int) int {
	csr, _ := topo.EpochAt(step)
	return csr.M()
}

// writeTrace dumps the recording as CSV.
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteCSV(f); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}
