// Command radionet-sim runs one algorithm on one generated graph and prints
// a result summary — the quickest way to poke at the library.
//
// Usage:
//
//	radionet-sim -graph grid -n 256 -algo broadcast [-seed 7]
//
// Graphs: path, cycle, clique, star, grid, tree, gnp, udg, cliquechain, lollipop.
// Algorithms: mis, broadcast, broadcast-all, decay-broadcast, election, decay-election.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radionet-sim", flag.ContinueOnError)
	graphName := fs.String("graph", "grid", "graph class")
	n := fs.Int("n", 256, "approximate node count")
	algo := fs.String("algo", "broadcast", "algorithm to run")
	seed := fs.Uint64("seed", 1, "random seed")
	source := fs.Int("source", 0, "broadcast source node")
	traceCSV := fs.String("trace", "", "write a per-step CSV trace to this file (mis only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gen.ByName(*graphName, *n, *seed)
	if err != nil {
		return err
	}
	d, derr := g.Diameter()
	fmt.Printf("graph=%s n=%d m=%d", *graphName, g.N(), g.M())
	if derr == nil {
		fmt.Printf(" D=%d", d)
	}
	alpha := g.IndependenceLowerBound(4, xrand.New(*seed))
	fmt.Printf(" α̂=%d\n", alpha)

	switch *algo {
	case "mis":
		var out *mis.Outcome
		var err error
		if *traceCSV != "" {
			rec := trace.NewRecorder(0)
			out, err = mis.RunDetailed(g, mis.Params{}, *seed, g.N(), rec.OnStep())
			if err == nil {
				if werr := writeTrace(*traceCSV, rec); werr != nil {
					return werr
				}
				fmt.Printf("trace: %s (%s)\n", *traceCSV, rec.Summarize())
			}
		} else {
			out, err = mis.Run(g, mis.Params{}, *seed)
		}
		if err != nil {
			return err
		}
		status := "VALID"
		if err := mis.Verify(g, out.MIS); err != nil {
			status = err.Error()
		}
		fmt.Printf("mis: |MIS|=%d steps=%d rounds=%d completed=%v verdict=%s\n",
			len(out.MIS), out.Steps, out.Rounds, out.Completed, status)
		l := math.Log2(float64(g.N()))
		fmt.Printf("mis: steps/log³n = %.2f (Theorem 14: O(log³ n))\n", float64(out.Steps)/(l*l*l))
	case "broadcast", "broadcast-all":
		params := core.Params{}
		if *algo == "broadcast-all" {
			params.CenterMode = core.AllCenters
		}
		res, err := core.Broadcast(g, *source, params, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("broadcast(%s): complete=%d main=%d mis=%d charged=%d total=%d |MIS|=%d b=%d slots=%d/%d\n",
			params.CenterMode, res.CompleteStep, res.MainSteps, res.MISSteps,
			res.ChargedSetupSteps, res.TotalSteps, res.MISSize, res.B,
			res.MaxDownSlots, res.MaxUpSlots)
	case "decay-broadcast":
		res, err := baseline.DecayBroadcast(g, *source, 0, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("decay-broadcast: complete=%d levels=%d transmissions=%d\n",
			res.CompleteStep, res.Levels, res.Transmissions)
	case "election":
		er, err := core.LeaderElection(g, core.Params{}, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("election: complete=%d candidates=%d leader=%d\n",
			er.CompleteStep, er.Candidates, er.LeaderID)
	case "decay-election":
		er, err := baseline.DecayLeaderElection(g, 0, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("decay-election: complete=%d candidates=%d winner=%d\n",
			er.CompleteStep, er.Candidates, er.Winner)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// writeTrace dumps the recording as CSV.
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteCSV(f); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}
