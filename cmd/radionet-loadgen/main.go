// Command radionet-loadgen hammers a radionet-serve instance with a
// configurable scenario mix and reports throughput, p50/p95/p99 latency,
// and cache hit rate — the serving-layer counterpart of `radionet-bench
// -engine-bench` (DESIGN.md §6).
//
// Usage:
//
//	radionet-loadgen [-addr http://host:port] [-requests 100] [-concurrency 4]
//	                 [-seeds 3] [-mix mis@grid/49,broadcast@path/32] [-out BENCH_serve.json]
//
// Each mix entry is algo@graph/n; requests cycle through the mix with
// -seeds distinct seeds per scenario, so after mix×seeds unique requests
// the attainable steady-state cache hit rate is 1. With no -addr the tool
// boots an in-process server on a loopback port — the self-contained smoke
// mode CI runs. With -out, the run's record is appended to a JSON tracking
// file (BENCH_engine.json-style trajectory; timings are host-dependent, so
// the file is a trail, not a gate).
//
// -sweep N switches the tool into the parameter-sweep drill (DESIGN.md §9):
// it boots two in-process servers — one ephemeral (no snapshot cache) and
// one durable — and runs the same N flood variants, identical except for
// their Epochs tail, against both. The ephemeral pass is the cold baseline;
// on the durable server the first variant seeds the prefix-snapshot cache
// and the rest resume from it (X-Cache: HIT-PREFIX). The drill asserts
// every warm response is byte-identical to its cold counterpart, reports
// prefix hit rate and cold/warm speedup, and fails if the speedup lands
// below -sweep-min-speedup (the serve-side bench-regression gate).
//
// Transient failures — connection refused/reset, EOF, and 5xx responses
// (the server's queue-full/draining 503s carry Retry-After) — are retried
// with jittered exponential backoff, so a server restarting mid-run costs
// retries, not a failed run; the retry count lands in the report and the
// tracking record.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-loadgen:", err)
		os.Exit(1)
	}
}

// runRecord is the tracking-file entry for one load-generation run.
type runRecord struct {
	Mix           string  `json:"mix"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	Seeds         int     `json:"seeds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// ServerP95Ms is the server-observed p95 of the simulate route, derived
	// from its /metrics latency histogram with the same estimator as the
	// client-side percentiles (obs.BucketQuantile) — the client/server gap
	// is then network + client overhead, not estimator disagreement. Zero
	// when the target server has no /metrics endpoint.
	ServerP95Ms  float64 `json:"server_p95_ms,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Hits         int     `json:"hits"`
	Coalesced    int     `json:"coalesced"`
	Misses       int     `json:"misses"`
	Retries      int     `json:"retries"`
}

// Transient-failure retry policy: a request is retried up to maxAttempts
// times total, sleeping retryBase·2^attempt plus up to 50% random jitter
// between tries (jitter keeps concurrent workers from re-converging on a
// recovering server in lockstep).
const (
	maxAttempts = 5
	retryBase   = 50 * time.Millisecond
)

// transientErr reports whether a request failed in a way a healthy-again
// server would absorb: a connection-level failure (server down or
// restarting) or a 5xx status (queue full, draining, internal hiccup).
func transientErr(err error, status int) bool {
	if err != nil {
		return errors.Is(err, syscall.ECONNREFUSED) ||
			errors.Is(err, syscall.ECONNRESET) ||
			errors.Is(err, io.EOF) ||
			errors.Is(err, io.ErrUnexpectedEOF)
	}
	return status >= 500
}

func backoff(attempt int) time.Duration {
	d := retryBase << attempt
	return d + time.Duration(rand.Int63n(int64(d/2)+1))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radionet-loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "server base URL (empty: boot an in-process server)")
	requests := fs.Int("requests", 100, "total requests to issue")
	concurrency := fs.Int("concurrency", 4, "concurrent client connections")
	seeds := fs.Int("seeds", 3, "distinct seeds per scenario (mix×seeds unique specs → steady-state hit rate 1)")
	mixFlag := fs.String("mix", "mis@grid/49,broadcast@path/32,flood@churn:grid/36,mis@phy:sinr/36",
		"comma-separated algo@graph/n scenario mix")
	outPath := fs.String("out", "", "append this run's record to a JSON tracking file")
	sweep := fs.Int("sweep", 0, "run the prefix-cache sweep drill with this many Epochs variants instead of the scenario mix")
	sweepMin := fs.Float64("sweep-min-speedup", 0, "fail the sweep drill if cold/warm speedup is below this (0: report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sweep > 0 {
		if *addr != "" {
			return fmt.Errorf("-sweep boots its own ephemeral and durable servers; it cannot target -addr")
		}
		return runSweep(*sweep, *sweepMin, *outPath, out)
	}
	if *requests < 1 || *concurrency < 1 || *seeds < 1 {
		return fmt.Errorf("requests, concurrency, and seeds must be ≥ 1")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	base := strings.TrimSuffix(*addr, "/")
	if base == "" {
		svc := serve.New(serve.Config{})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: serve.NewHandler(svc)}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "loadgen: in-process server on %s\n", base)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	// Client latency lands in the same histogram type the server exposes on
	// /metrics, so client and server percentiles share bucket layout and
	// estimator (DESIGN.md §10).
	hist := obs.NewHistogram(obs.DefBuckets...)
	statuses := make([]string, *requests)
	errs := make([]error, *requests)
	var next atomic.Int64
	var retried atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				sp := mix[i%len(mix)]
				sp.Seed = 1 + uint64((i/len(mix))%*seeds)
				body, err := json.Marshal(sp)
				if err != nil {
					errs[i] = err
					continue
				}
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
					var data []byte
					status := 0
					if err == nil {
						status = resp.StatusCode
						data, err = io.ReadAll(resp.Body)
						resp.Body.Close()
					}
					lat := time.Since(t0)
					if transientErr(err, status) && attempt+1 < maxAttempts {
						retried.Add(1)
						time.Sleep(backoff(attempt))
						continue
					}
					// The recorded latency is the served attempt's, not the
					// backoff sleeps — retries are reported separately.
					hist.Observe(lat.Seconds())
					switch {
					case err != nil:
						errs[i] = fmt.Errorf("request %d (%s): %w", i, sp, err)
					case status != http.StatusOK:
						errs[i] = fmt.Errorf("request %d (%s): status %d: %.200s", i, sp, status, data)
					default:
						statuses[i] = resp.Header.Get("X-Cache")
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	hits, coalesced, misses := 0, 0, 0
	for _, st := range statuses {
		switch st {
		case "HIT":
			hits++
		case "COALESCED":
			coalesced++
		default:
			misses++
		}
	}
	serverP95, haveServerP95 := scrapeServerP95(client, base)
	rec := runRecord{
		Mix:           *mixFlag,
		Requests:      *requests,
		Concurrency:   *concurrency,
		Seeds:         *seeds,
		ThroughputRPS: float64(*requests) / elapsed.Seconds(),
		P50Ms:         hist.Quantile(0.50) * 1000,
		P95Ms:         hist.Quantile(0.95) * 1000,
		P99Ms:         hist.Quantile(0.99) * 1000,
		ServerP95Ms:   serverP95,
		CacheHitRate:  float64(hits+coalesced) / float64(*requests),
		Hits:          hits,
		Coalesced:     coalesced,
		Misses:        misses,
		Retries:       int(retried.Load()),
	}
	fmt.Fprintf(out, "loadgen: %d requests in %.2fs — %.1f req/s (concurrency %d, mix %d scenarios × %d seeds)\n",
		rec.Requests, elapsed.Seconds(), rec.ThroughputRPS, rec.Concurrency, len(mix), rec.Seeds)
	if haveServerP95 {
		fmt.Fprintf(out, "latency: p50 %.2f ms, p95 %.2f ms (server-observed p95 %.2f ms), p99 %.2f ms\n",
			rec.P50Ms, rec.P95Ms, rec.ServerP95Ms, rec.P99Ms)
	} else {
		fmt.Fprintf(out, "latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n", rec.P50Ms, rec.P95Ms, rec.P99Ms)
	}
	fmt.Fprintf(out, "cache: hit rate %.3f (%d hit + %d coalesced + %d miss)\n",
		rec.CacheHitRate, rec.Hits, rec.Coalesced, rec.Misses)
	if rec.Retries > 0 {
		fmt.Fprintf(out, "retries: %d transient failures absorbed\n", rec.Retries)
	}
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		var st serve.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Fprintf(out, "server: %d executions, %d cache entries, %d/%d queue\n",
				st.Executions, st.CacheEntries, st.QueueLen, st.QueueCap)
		}
		resp.Body.Close()
	}
	if *outPath != "" {
		if err := appendRecord(*outPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(out, "record appended to %s\n", *outPath)
	}
	return nil
}

// sweepRecord is the tracking-file entry for one prefix-cache sweep drill
// (-sweep); the kind field keeps it distinguishable from loadgen runRecords
// and the smoke script's crash-drill rows in the shared tracking file.
type sweepRecord struct {
	Kind              string  `json:"kind"`
	Base              string  `json:"base"`
	Variants          int     `json:"variants"`
	EpochsMin         int     `json:"epochs_min"`
	EpochsMax         int     `json:"epochs_max"`
	ColdMs            float64 `json:"cold_ms"`
	WarmMs            float64 `json:"warm_ms"`
	SweepSpeedup      float64 `json:"sweep_speedup"`
	PrefixHitRate     float64 `json:"prefix_hit_rate"`
	PrefixEpochsSaved uint64  `json:"prefix_epochs_saved"`
}

// sweepVariants is the drill's parameter sweep: n flood variants identical
// up to their Epochs tail, so every prefix epoch their schedules share is
// snapshot-reusable. Epochs starts at 9, so even the shortest variant
// spans an 8-epoch shareable prefix; n=1024 with 64-step epochs keeps
// engine work (what the snapshot cache actually skips) large relative to
// the per-request fixed costs the cache cannot skip — schedule and graph
// generation, snapshot decode, HTTP and result encoding — so the measured
// speedup reflects the cache, not the noise floor.
func sweepVariants(n int) []serve.Spec {
	specs := make([]serve.Spec, n)
	for i := range specs {
		specs[i] = serve.Spec{Algo: "flood", Graph: "churn:grid", N: 1024, Seed: 11,
			Reps: 2, Epochs: 9 + i, EpochLen: 64, Rate: 0.4}
	}
	return specs
}

// bootServer serves svc's API on an ephemeral loopback port.
func bootServer(svc *serve.Service) (base string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: serve.NewHandler(svc)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// postSpec issues one synchronous simulate and returns the response body
// and X-Cache header.
func postSpec(client *http.Client, base string, sp serve.Spec) ([]byte, string, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return nil, "", err
	}
	resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s: status %d: %.200s", sp, resp.StatusCode, data)
	}
	return data, resp.Header.Get("X-Cache"), nil
}

// runSweep is the -sweep drill: the same Epochs sweep against an ephemeral
// server (cold baseline — no snapshot store, every variant computed from
// scratch) and a durable one (warm — variant 0 seeds the prefix-snapshot
// cache, the rest resume from it). Correctness is absolute: every warm
// response must be byte-identical to its cold counterpart, and every
// variant past the first must report X-Cache: HIT-PREFIX. Performance is
// gated only when minSpeedup > 0.
func runSweep(variants int, minSpeedup float64, outPath string, out io.Writer) error {
	if variants < 2 {
		return fmt.Errorf("-sweep needs at least 2 variants to share a prefix")
	}
	specs := sweepVariants(variants)
	client := &http.Client{Timeout: 5 * time.Minute}

	coldSvc := serve.New(serve.Config{})
	coldBase, coldStop, err := bootServer(coldSvc)
	if err != nil {
		coldSvc.Close()
		return err
	}
	cold := make([][]byte, variants)
	t0 := time.Now()
	for i, sp := range specs {
		body, xc, err := postSpec(client, coldBase, sp)
		if err != nil {
			coldStop()
			coldSvc.Close()
			return fmt.Errorf("cold pass variant %d: %w", i, err)
		}
		if xc != "MISS" {
			coldStop()
			coldSvc.Close()
			return fmt.Errorf("cold pass variant %d: X-Cache %s, want MISS", i, xc)
		}
		cold[i] = body
	}
	coldDur := time.Since(t0)
	coldStop()
	coldSvc.Close()

	dir, err := os.MkdirTemp("", "loadgen-sweep-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	warmSvc, err := serve.Open(serve.Config{DataDir: dir})
	if err != nil {
		return err
	}
	defer warmSvc.Close()
	warmBase, warmStop, err := bootServer(warmSvc)
	if err != nil {
		return err
	}
	defer warmStop()
	prefixHits := 0
	t0 = time.Now()
	for i, sp := range specs {
		body, xc, err := postSpec(client, warmBase, sp)
		if err != nil {
			return fmt.Errorf("warm pass variant %d: %w", i, err)
		}
		switch {
		case i == 0 && xc != "MISS":
			return fmt.Errorf("warm pass variant 0 should seed the cache cold: X-Cache %s, want MISS", xc)
		case i > 0 && xc != "HIT-PREFIX":
			return fmt.Errorf("warm pass variant %d: X-Cache %s, want HIT-PREFIX", i, xc)
		}
		if xc == "HIT-PREFIX" {
			prefixHits++
		}
		if !bytes.Equal(body, cold[i]) {
			return fmt.Errorf("variant %d (epochs=%d): warm result differs from cold — prefix resume broke determinism", i, sp.Epochs)
		}
	}
	warmDur := time.Since(t0)
	st := warmSvc.Stats()

	rec := sweepRecord{
		Kind:              "sweep",
		Base:              "flood@churn:grid/1024 seed=11 reps=2 epoch_len=64 rate=0.4",
		Variants:          variants,
		EpochsMin:         specs[0].Epochs,
		EpochsMax:         specs[variants-1].Epochs,
		ColdMs:            float64(coldDur.Microseconds()) / 1000,
		WarmMs:            float64(warmDur.Microseconds()) / 1000,
		SweepSpeedup:      coldDur.Seconds() / warmDur.Seconds(),
		PrefixHitRate:     float64(prefixHits) / float64(variants),
		PrefixEpochsSaved: st.PrefixEpochsSaved,
	}
	fmt.Fprintf(out, "sweep: %d variants (epochs %d..%d), all byte-identical to cold baseline\n",
		rec.Variants, rec.EpochsMin, rec.EpochsMax)
	fmt.Fprintf(out, "sweep: cold %.1f ms, warm %.1f ms — %.2fx speedup, prefix hit rate %.3f, %d epochs saved\n",
		rec.ColdMs, rec.WarmMs, rec.SweepSpeedup, rec.PrefixHitRate, rec.PrefixEpochsSaved)
	if outPath != "" {
		if err := appendRecord(outPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(out, "record appended to %s\n", outPath)
	}
	if minSpeedup > 0 && rec.SweepSpeedup < minSpeedup {
		return fmt.Errorf("sweep speedup %.2fx below the %.2fx gate — the prefix cache is not paying for itself",
			rec.SweepSpeedup, minSpeedup)
	}
	return nil
}

// scrapeServerP95 fetches the server's /metrics exposition and derives the
// p95 of the simulate route's request-latency histogram, in milliseconds.
// Exposition buckets are cumulative; obs.BucketQuantile wants per-bucket
// counts, so they are de-cumulated before interpolation. Returns false when
// the server has no /metrics endpoint (an older build) or no simulate
// series yet — the report then shows client percentiles only.
func scrapeServerP95(client *http.Client, base string) (float64, bool) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	const prefix = `serve_http_request_seconds_bucket{route="/v1/simulate",le="`
	var bounds []float64
	var cum []uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		le, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			return 0, false
		}
		c, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return 0, false
		}
		if le != "+Inf" {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return 0, false
			}
			bounds = append(bounds, b)
		}
		cum = append(cum, c)
	}
	if sc.Err() != nil || len(cum) != len(bounds)+1 || len(bounds) == 0 {
		return 0, false
	}
	counts := make([]uint64, len(cum))
	prev := uint64(0)
	for i, c := range cum {
		if c < prev {
			return 0, false // torn scrape; don't report nonsense
		}
		counts[i] = c - prev
		prev = c
	}
	if prev == 0 {
		return 0, false
	}
	return obs.BucketQuantile(bounds, counts, 0.95) * 1000, true
}

// parseMix parses "algo@graph/n" entries. graph may itself contain ':'
// (dynamic specs), so the separators are '@' (first) and '/' (last).
func parseMix(s string) ([]serve.Spec, error) {
	var mix []serve.Spec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		algo, rest, ok := strings.Cut(item, "@")
		slash := strings.LastIndex(rest, "/")
		if !ok || slash < 0 {
			return nil, fmt.Errorf("mix entry %q: want algo@graph/n", item)
		}
		n, err := strconv.Atoi(rest[slash+1:])
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: bad n: %v", item, err)
		}
		sp := serve.Spec{Algo: algo, Graph: rest[:slash], N: n}
		if _, err := sp.Canonicalize(); err != nil {
			return nil, fmt.Errorf("mix entry %q: %v", item, err)
		}
		mix = append(mix, sp)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty scenario mix")
	}
	return mix, nil
}

// appendRecord appends rec to the JSON array at path (creating it if
// missing), BENCH_engine.json-style: the file is the perf trajectory
// across runs. Existing rows are kept as raw JSON, not re-parsed into
// runRecord — the tracking file also carries rows other tools append
// (e.g. the smoke script's restart-recovery records), and appending must
// not strip their fields.
func appendRecord(path string, rec any) error {
	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("%s: existing tracking file is not a record array: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	records = append(records, raw)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
