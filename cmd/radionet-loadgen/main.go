// Command radionet-loadgen hammers a radionet-serve instance with a
// configurable scenario mix and reports throughput, p50/p95/p99 latency,
// and cache hit rate — the serving-layer counterpart of `radionet-bench
// -engine-bench` (DESIGN.md §6).
//
// Usage:
//
//	radionet-loadgen [-addr http://host:port] [-requests 100] [-concurrency 4]
//	                 [-seeds 3] [-mix mis@grid/49,broadcast@path/32] [-out BENCH_serve.json]
//
// Each mix entry is algo@graph/n; requests cycle through the mix with
// -seeds distinct seeds per scenario, so after mix×seeds unique requests
// the attainable steady-state cache hit rate is 1. With no -addr the tool
// boots an in-process server on a loopback port — the self-contained smoke
// mode CI runs. With -out, the run's record is appended to a JSON tracking
// file (BENCH_engine.json-style trajectory; timings are host-dependent, so
// the file is a trail, not a gate).
//
// Transient failures — connection refused/reset, EOF, and 5xx responses
// (the server's queue-full/draining 503s carry Retry-After) — are retried
// with jittered exponential backoff, so a server restarting mid-run costs
// retries, not a failed run; the retry count lands in the report and the
// tracking record.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-loadgen:", err)
		os.Exit(1)
	}
}

// runRecord is the tracking-file entry for one load-generation run.
type runRecord struct {
	Mix           string  `json:"mix"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	Seeds         int     `json:"seeds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Hits          int     `json:"hits"`
	Coalesced     int     `json:"coalesced"`
	Misses        int     `json:"misses"`
	Retries       int     `json:"retries"`
}

// Transient-failure retry policy: a request is retried up to maxAttempts
// times total, sleeping retryBase·2^attempt plus up to 50% random jitter
// between tries (jitter keeps concurrent workers from re-converging on a
// recovering server in lockstep).
const (
	maxAttempts = 5
	retryBase   = 50 * time.Millisecond
)

// transientErr reports whether a request failed in a way a healthy-again
// server would absorb: a connection-level failure (server down or
// restarting) or a 5xx status (queue full, draining, internal hiccup).
func transientErr(err error, status int) bool {
	if err != nil {
		return errors.Is(err, syscall.ECONNREFUSED) ||
			errors.Is(err, syscall.ECONNRESET) ||
			errors.Is(err, io.EOF) ||
			errors.Is(err, io.ErrUnexpectedEOF)
	}
	return status >= 500
}

func backoff(attempt int) time.Duration {
	d := retryBase << attempt
	return d + time.Duration(rand.Int63n(int64(d/2)+1))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radionet-loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "server base URL (empty: boot an in-process server)")
	requests := fs.Int("requests", 100, "total requests to issue")
	concurrency := fs.Int("concurrency", 4, "concurrent client connections")
	seeds := fs.Int("seeds", 3, "distinct seeds per scenario (mix×seeds unique specs → steady-state hit rate 1)")
	mixFlag := fs.String("mix", "mis@grid/49,broadcast@path/32,flood@churn:grid/36,mis@phy:sinr/36",
		"comma-separated algo@graph/n scenario mix")
	outPath := fs.String("out", "", "append this run's record to a JSON tracking file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests < 1 || *concurrency < 1 || *seeds < 1 {
		return fmt.Errorf("requests, concurrency, and seeds must be ≥ 1")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	base := strings.TrimSuffix(*addr, "/")
	if base == "" {
		svc := serve.New(serve.Config{})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: serve.NewHandler(svc)}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "loadgen: in-process server on %s\n", base)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	latencies := make([]float64, *requests)
	statuses := make([]string, *requests)
	errs := make([]error, *requests)
	var next atomic.Int64
	var retried atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				sp := mix[i%len(mix)]
				sp.Seed = 1 + uint64((i/len(mix))%*seeds)
				body, err := json.Marshal(sp)
				if err != nil {
					errs[i] = err
					continue
				}
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
					var data []byte
					status := 0
					if err == nil {
						status = resp.StatusCode
						data, err = io.ReadAll(resp.Body)
						resp.Body.Close()
					}
					// The recorded latency is the served attempt's, not the
					// backoff sleeps — retries are reported separately.
					latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
					if transientErr(err, status) && attempt+1 < maxAttempts {
						retried.Add(1)
						time.Sleep(backoff(attempt))
						continue
					}
					switch {
					case err != nil:
						errs[i] = fmt.Errorf("request %d (%s): %w", i, sp, err)
					case status != http.StatusOK:
						errs[i] = fmt.Errorf("request %d (%s): status %d: %.200s", i, sp, status, data)
					default:
						statuses[i] = resp.Header.Get("X-Cache")
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	hits, coalesced, misses := 0, 0, 0
	for _, st := range statuses {
		switch st {
		case "HIT":
			hits++
		case "COALESCED":
			coalesced++
		default:
			misses++
		}
	}
	rec := runRecord{
		Mix:           *mixFlag,
		Requests:      *requests,
		Concurrency:   *concurrency,
		Seeds:         *seeds,
		ThroughputRPS: float64(*requests) / elapsed.Seconds(),
		P50Ms:         stats.Percentile(latencies, 50),
		P95Ms:         stats.Percentile(latencies, 95),
		P99Ms:         stats.Percentile(latencies, 99),
		CacheHitRate:  float64(hits+coalesced) / float64(*requests),
		Hits:          hits,
		Coalesced:     coalesced,
		Misses:        misses,
		Retries:       int(retried.Load()),
	}
	fmt.Fprintf(out, "loadgen: %d requests in %.2fs — %.1f req/s (concurrency %d, mix %d scenarios × %d seeds)\n",
		rec.Requests, elapsed.Seconds(), rec.ThroughputRPS, rec.Concurrency, len(mix), rec.Seeds)
	fmt.Fprintf(out, "latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n", rec.P50Ms, rec.P95Ms, rec.P99Ms)
	fmt.Fprintf(out, "cache: hit rate %.3f (%d hit + %d coalesced + %d miss)\n",
		rec.CacheHitRate, rec.Hits, rec.Coalesced, rec.Misses)
	if rec.Retries > 0 {
		fmt.Fprintf(out, "retries: %d transient failures absorbed\n", rec.Retries)
	}
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		var st serve.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Fprintf(out, "server: %d executions, %d cache entries, %d/%d queue\n",
				st.Executions, st.CacheEntries, st.QueueLen, st.QueueCap)
		}
		resp.Body.Close()
	}
	if *outPath != "" {
		if err := appendRecord(*outPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(out, "record appended to %s\n", *outPath)
	}
	return nil
}

// parseMix parses "algo@graph/n" entries. graph may itself contain ':'
// (dynamic specs), so the separators are '@' (first) and '/' (last).
func parseMix(s string) ([]serve.Spec, error) {
	var mix []serve.Spec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		algo, rest, ok := strings.Cut(item, "@")
		slash := strings.LastIndex(rest, "/")
		if !ok || slash < 0 {
			return nil, fmt.Errorf("mix entry %q: want algo@graph/n", item)
		}
		n, err := strconv.Atoi(rest[slash+1:])
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: bad n: %v", item, err)
		}
		sp := serve.Spec{Algo: algo, Graph: rest[:slash], N: n}
		if _, err := sp.Canonicalize(); err != nil {
			return nil, fmt.Errorf("mix entry %q: %v", item, err)
		}
		mix = append(mix, sp)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty scenario mix")
	}
	return mix, nil
}

// appendRecord appends rec to the JSON array at path (creating it if
// missing), BENCH_engine.json-style: the file is the perf trajectory
// across runs. Existing rows are kept as raw JSON, not re-parsed into
// runRecord — the tracking file also carries rows other tools append
// (e.g. the smoke script's restart-recovery records), and appending must
// not strip their fields.
func appendRecord(path string, rec runRecord) error {
	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("%s: existing tracking file is not a record array: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	records = append(records, raw)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
