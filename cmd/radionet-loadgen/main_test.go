package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("mis@grid/49, flood@churn:grid/36, mis@phy:sinr/36")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("len %d", len(mix))
	}
	if mix[1].Graph != "churn:grid" || mix[1].N != 36 || mix[1].Algo != "flood" {
		t.Fatalf("dynamic entry parsed as %+v", mix[1])
	}
	if mix[2].Graph != "phy:sinr" || mix[2].N != 36 || mix[2].Algo != "mis" {
		t.Fatalf("phy entry parsed as %+v", mix[2])
	}
	for _, bad := range []string{"", "mis-grid-49", "mis@grid", "mis@grid/xx", "nosuch@grid/10",
		"mis@nosuch/10", "broadcast@phy:sinr/10", "mis@phy:collision:grid/10"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// Smoke: in-process server, small mixed workload, report with latency
// percentiles and cache hit rate, tracking record appended twice.
func TestLoadgenInProcessSmoke(t *testing.T) {
	// The phy:sinr entry exercises the PHY-extended cache key end to end:
	// the server must hash, execute, and then HIT on a SINR scenario.
	outFile := t.TempDir() + "/track.json"
	args := []string{
		"-requests", "12", "-concurrency", "3", "-seeds", "2",
		"-mix", "mis@grid/25,mis@phy:sinr/25",
		"-out", outFile,
	}
	var buf strings.Builder
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v\noutput: %s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"req/s", "p50", "p95", "p99", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// 12 requests over 2 scenarios × 2 seeds = 4 unique specs ⇒ at least
	// 8 of 12 must be served without a fresh execution.
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var records []runRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("tracking file: %v\n%s", err, data)
	}
	if len(records) != 2 {
		t.Fatalf("tracking file has %d records, want 2", len(records))
	}
	for _, r := range records {
		if r.Requests != 12 || r.ThroughputRPS <= 0 {
			t.Fatalf("bad record %+v", r)
		}
		if r.Hits+r.Coalesced < 8 {
			t.Fatalf("hit+coalesced = %d, want ≥ 8 of 12 (4 unique specs)", r.Hits+r.Coalesced)
		}
	}
}

func TestLoadgenFlagErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("want flag error")
	}
	if err := run([]string{"-requests", "0"}, &buf); err == nil {
		t.Fatal("want range error")
	}
	if err := run([]string{"-mix", "garbage"}, &buf); err == nil {
		t.Fatal("want mix error")
	}
}
