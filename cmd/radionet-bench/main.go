// Command radionet-bench regenerates the experiment tables (E1–E16 from the
// paper plus the dynamic-topology suite E17–E20, see DESIGN.md §4–§5 and
// EXPERIMENTS.md).
//
// Usage:
//
//	radionet-bench [-scale quick|full] [-seed N] [-parallel P] [-run E5,E7] [-json results.json] [-list]
//	radionet-bench -engine-bench BENCH_engine.json [-bench-baseline old.json] [-bench-tolerance 0.25]
//
// With -bench-baseline, the freshly measured engine benchmarks are compared
// against the named report and the command fails when any benchmark's ns/op
// regressed beyond the tolerance — the CI bench-regression gate.
//
// With no -run flag every experiment runs in order. Each experiment is a
// grid of independent trials that the runner fans out over -parallel worker
// goroutines (default GOMAXPROCS); per-trial seeds are derived from
// (-seed, experiment, trial index), so the output is byte-identical for
// every -parallel value. Output is GitHub-flavored Markdown on stdout;
// -json additionally writes the same run as a structured JSON record
// (scale, seed, per-experiment tables) to the given file, so full-scale
// sweeps and Quick-scale CI runs share one code path and a machine-readable
// trajectory. With -engine-bench, the simulator engine micro-benchmarks run
// instead and a JSON report (ns/op, allocs/op, node-steps/s) is written to
// the given file so the perf trajectory is tracked across PRs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radionet-bench", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Uint64("seed", 1, "experiment seed")
	parallel := fs.Int("parallel", 0, "trial-runner workers (0 = GOMAXPROCS); output is identical for every value")
	runList := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	jsonPath := fs.String("json", "", "also write structured results as JSON to this file")
	list := fs.Bool("list", false, "list experiments and exit")
	engineBench := fs.String("engine-bench", "", "run engine micro-benches and write the JSON report to this file")
	benchBaseline := fs.String("bench-baseline", "", "with -engine-bench: compare against this previously written report and fail on regression")
	benchTolerance := fs.Float64("bench-tolerance", 0.25, "with -bench-baseline: allowed fractional ns/op slowdown before failing")
	benchHuge := fs.Bool("bench-huge", false, "with -engine-bench: include the 10⁵–10⁶-node streaming-path rows (minutes of wall clock)")
	benchFilter := fs.String("bench-filter", "", "with -engine-bench: run only these benches (comma-separated exact names)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineBench != "" {
		report, err := measureEngineBench(*benchHuge, *benchFilter)
		if err != nil {
			return err
		}
		f, err := os.Create(*engineBench)
		if err != nil {
			return err
		}
		if err := writeEngineBench(report, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "engine benchmarks written to %s\n", *engineBench)
		if err := checkObsOverhead(report, out); err != nil {
			return err
		}
		if *benchBaseline != "" {
			baseline, err := loadEngineBench(*benchBaseline)
			if err != nil {
				return err
			}
			if err := compareEngineBench(report, baseline, *benchTolerance, out); err != nil {
				return err
			}
			fmt.Fprintf(out, "bench-compare: within %.0f%% of %s\n", *benchTolerance*100, *benchBaseline)
		}
		return nil
	}
	if *benchBaseline != "" {
		return fmt.Errorf("-bench-baseline requires -engine-bench")
	}
	if *list {
		for _, e := range exp.Registry() {
			fmt.Fprintf(out, "%-4s %-40s %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	var scale exp.Scale
	switch *scaleFlag {
	case "quick":
		scale = exp.Quick
	case "full":
		scale = exp.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleFlag)
	}
	cfg := exp.Config{Scale: scale, Seed: *seed, Parallel: *parallel}
	var ids []string
	if *runList != "" {
		ids = strings.Split(*runList, ",")
	}
	exps, err := exp.Resolve(ids)
	if err != nil {
		return err
	}
	// Stream each experiment's section as it finishes — full-scale suites
	// run for minutes, and a late failure must not discard earlier tables
	// (nor, below, the JSON record of the experiments that did finish).
	res := &exp.Results{Scale: scale.String(), Seed: *seed, Experiments: []exp.ExperimentResult{}}
	writeJSON := func(partial bool) error {
		if *jsonPath == "" {
			return nil
		}
		raw, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, raw, 0o644); err != nil {
			return err
		}
		// Status goes to stderr: stdout is the pure-Markdown stream.
		note := ""
		if partial {
			note = " (partial: suite failed)"
		}
		fmt.Fprintf(os.Stderr, "structured results written to %s%s\n", *jsonPath, note)
		return nil
	}
	for _, e := range exps {
		rep, err := e.Run(cfg)
		if err != nil {
			runErr := fmt.Errorf("%s: %w", e.ID, err)
			res.Failed = e.ID
			if jerr := writeJSON(true); jerr != nil {
				return fmt.Errorf("%w (and writing partial JSON failed: %v)", runErr, jerr)
			}
			return runErr
		}
		er := exp.ExperimentResult{ID: e.ID, Title: e.Title, Claim: e.Claim, Tables: rep.Tables}
		if _, err := io.WriteString(out, er.Markdown()); err != nil {
			return err
		}
		res.Experiments = append(res.Experiments, er)
	}
	return writeJSON(false)
}
