// Command radionet-bench regenerates the paper's experiment tables (E1–E12,
// see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	radionet-bench [-scale quick|full] [-seed N] [-run E5,E7] [-list]
//	radionet-bench -engine-bench BENCH_engine.json
//
// With no -run flag every experiment runs in order. Output is
// GitHub-flavored Markdown on stdout. With -engine-bench, the simulator
// engine micro-benchmarks run instead and a machine-readable JSON report
// (ns/op, allocs/op, node-steps/s) is written to the given file so the
// perf trajectory is tracked across PRs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radionet-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radionet-bench", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Uint64("seed", 1, "experiment seed")
	runList := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	engineBench := fs.String("engine-bench", "", "run engine micro-benches and write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineBench != "" {
		f, err := os.Create(*engineBench)
		if err != nil {
			return err
		}
		if err := runEngineBench(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "engine benchmarks written to %s\n", *engineBench)
		return nil
	}
	if *list {
		for _, e := range exp.Registry() {
			fmt.Fprintf(out, "%-4s %-40s %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	var scale exp.Scale
	switch *scaleFlag {
	case "quick":
		scale = exp.Quick
	case "full":
		scale = exp.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleFlag)
	}
	cfg := exp.Config{Scale: scale, Seed: *seed, Out: out}
	if *runList == "" {
		return exp.RunAll(cfg)
	}
	for _, id := range strings.Split(*runList, ",") {
		e, err := exp.Lookup(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "## %s — %s\n\nClaim: %s\n\n", e.ID, e.Title, e.Claim)
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
