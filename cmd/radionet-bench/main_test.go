package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E7", "E12", "E15"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E6", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bad scales") {
		t.Fatalf("E6 output missing table:\n%s", buf.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3, E4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "E4") {
		t.Fatalf("missing experiment sections:\n%s", out)
	}
}

func TestJSONFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3", "-seed", "2", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "frac High") {
		t.Fatalf("markdown output missing table:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res exp.Results
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("results are not valid JSON: %v", err)
	}
	if res.Scale != "quick" || res.Seed != 2 {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if len(res.Experiments) != 1 || res.Experiments[0].ID != "E3" {
		t.Fatalf("experiments wrong: %+v", res.Experiments)
	}
	if len(res.Experiments[0].Tables) == 0 || len(res.Experiments[0].Tables[0].Rows) == 0 {
		t.Fatal("tables empty")
	}
}

// TestParallelFlagDeterminism is the CLI half of the determinism-under-
// parallelism contract: same seed, different -parallel, identical bytes
// (Markdown and JSON).
func TestParallelFlagDeterminism(t *testing.T) {
	render := func(parallel string) (string, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "r.json")
		var buf bytes.Buffer
		if err := run([]string{"-run", "E4", "-seed", "9", "-parallel", parallel, "-json", path}, &buf); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), raw
	}
	md1, js1 := render("1")
	md3, js3 := render("3")
	if md1 != md3 {
		t.Fatalf("-parallel 1 vs 3 markdown differs:\n%s\n---\n%s", md1, md3)
	}
	if !bytes.Equal(js1, js3) {
		t.Fatal("-parallel 1 vs 3 JSON differs")
	}
}

func TestEngineBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("engine benches take several seconds")
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	var buf bytes.Buffer
	if err := run([]string{"-engine-bench", path}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report EngineBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	// The default run excludes the opt-in huge rows (-bench-huge).
	wantRows := 0
	for _, s := range engineBenchSpecs {
		if !s.huge {
			wantRows++
		}
	}
	if len(report.Benchmarks) != wantRows {
		t.Fatalf("got %d benchmark rows, want %d", len(report.Benchmarks), wantRows)
	}
	byName := map[string]EngineBenchResult{}
	for _, r := range report.Benchmarks {
		if r.NsPerOp <= 0 || r.NodeStepsPerSec <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byName[r.Name] = r
	}
	// The tracked engine invariant: the sequential step loop is
	// allocation-free.
	for _, name := range []string{"seq_dense_n1024", "seq_sparse_n4096_live64"} {
		if r, ok := byName[name]; !ok {
			t.Fatalf("missing bench %s", name)
		} else if r.AllocsPerOp != 0 {
			t.Fatalf("%s allocates %d/op; the sequential step loop must be zero-alloc", name, r.AllocsPerOp)
		}
	}
	if len(report.SeedBaseline) == 0 {
		t.Fatal("seed baseline missing")
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &buf); err == nil {
		t.Fatal("want scale error")
	}
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Fatal("want unknown-experiment error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Fatal("want flag-parse error")
	}
}
