package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E7", "E12", "E15"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E6", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bad scales") {
		t.Fatalf("E6 output missing table:\n%s", buf.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3, E4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "E4") {
		t.Fatalf("missing experiment sections:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &buf); err == nil {
		t.Fatal("want scale error")
	}
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Fatal("want unknown-experiment error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Fatal("want flag-parse error")
	}
}
