package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E7", "E12", "E15"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E6", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bad scales") {
		t.Fatalf("E6 output missing table:\n%s", buf.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3, E4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "E4") {
		t.Fatalf("missing experiment sections:\n%s", out)
	}
}

func TestEngineBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("engine benches take several seconds")
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	var buf bytes.Buffer
	if err := run([]string{"-engine-bench", path}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report EngineBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Benchmarks) != len(engineBenchSpecs) {
		t.Fatalf("got %d benchmark rows, want %d", len(report.Benchmarks), len(engineBenchSpecs))
	}
	byName := map[string]EngineBenchResult{}
	for _, r := range report.Benchmarks {
		if r.NsPerOp <= 0 || r.NodeStepsPerSec <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byName[r.Name] = r
	}
	// The tracked engine invariant: the sequential step loop is
	// allocation-free.
	for _, name := range []string{"seq_dense_n1024", "seq_sparse_n4096_live64"} {
		if r, ok := byName[name]; !ok {
			t.Fatalf("missing bench %s", name)
		} else if r.AllocsPerOp != 0 {
			t.Fatalf("%s allocates %d/op; the sequential step loop must be zero-alloc", name, r.AllocsPerOp)
		}
	}
	if len(report.SeedBaseline) == 0 {
		t.Fatal("seed baseline missing")
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &buf); err == nil {
		t.Fatal("want scale error")
	}
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Fatal("want unknown-experiment error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Fatal("want flag-parse error")
	}
}
