package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(pairs ...any) EngineBenchReport {
	var r EngineBenchReport
	for i := 0; i < len(pairs); i += 2 {
		r.Benchmarks = append(r.Benchmarks, EngineBenchResult{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func withAllocs(r EngineBenchReport, allocs ...int64) EngineBenchReport {
	for i := range r.Benchmarks {
		r.Benchmarks[i].AllocsPerOp = allocs[i]
	}
	return r
}

func TestCompareEngineBench(t *testing.T) {
	baseline := report("a", 1000.0, "b", 5000.0)
	var log bytes.Buffer

	// Within tolerance (including mild regression and a speedup) passes.
	if err := compareEngineBench(report("a", 1200.0, "b", 4000.0), baseline, 0.25, &log); err != nil {
		t.Fatalf("within-tolerance compare failed: %v", err)
	}
	// A >25% regression fails and names the offender.
	err := compareEngineBench(report("a", 1300.0, "b", 5000.0), baseline, 0.25, &log)
	if err == nil || !strings.Contains(err.Error(), "a:") {
		t.Fatalf("want regression error naming bench a, got %v", err)
	}
	// The allocs/op gate is hardware-independent: a zero-alloc step loop
	// that starts allocating fails even when ns/op stays put, while the
	// proportional slack absorbs GOMAXPROCS-dependent pool setup allocs.
	allocBase := withAllocs(report("seq", 1000.0, "pool", 5000.0), 0, 550)
	if err := compareEngineBench(withAllocs(report("seq", 1000.0, "pool", 5000.0), 2, 590), allocBase, 0.25, &log); err != nil {
		t.Fatalf("within-slack allocs failed: %v", err)
	}
	err = compareEngineBench(withAllocs(report("seq", 1000.0, "pool", 5000.0), 64, 550), allocBase, 0.25, &log)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("want allocs regression error, got %v", err)
	}
	// Alloc-exact rows tolerate nothing: +1 alloc/op over the baseline
	// fails even though it is far inside the generic slack, and a decrease
	// still passes (shrinking is not a regression).
	exactBase := withAllocs(report("seq", 1000.0, "pool", 5000.0), 3, 550)
	exactBase.Benchmarks[0].AllocExact = true
	err = compareEngineBench(withAllocs(report("seq", 1000.0, "pool", 5000.0), 4, 550), exactBase, 0.25, &log)
	if err == nil || !strings.Contains(err.Error(), "alloc-exact") {
		t.Fatalf("want alloc-exact regression error, got %v", err)
	}
	if err := compareEngineBench(withAllocs(report("seq", 1000.0, "pool", 5000.0), 2, 550), exactBase, 0.25, &log); err != nil {
		t.Fatalf("alloc decrease on exact row must pass: %v", err)
	}

	// Benchmarks missing from the baseline never fail.
	if err := compareEngineBench(report("brand-new", 1e9), baseline, 0.25, &log); err != nil {
		t.Fatalf("new benchmark must not fail the gate: %v", err)
	}
	if !strings.Contains(log.String(), "no baseline") {
		t.Fatal("new benchmark should be noted in the log")
	}
}

// withBytesPerNode sets the memory fields on a report's rows (0 = the row
// doesn't carry them, as in baselines written before the field existed).
func withBytesPerNode(r EngineBenchReport, bpn ...float64) EngineBenchReport {
	for i := range r.Benchmarks {
		r.Benchmarks[i].BytesPerNode = bpn[i]
		r.Benchmarks[i].EngineBytes = int64(bpn[i] * 1000)
	}
	return r
}

func TestCompareBytesPerNode(t *testing.T) {
	var log bytes.Buffer
	base := withBytesPerNode(report("huge", 1000.0, "old", 1000.0), 200.0, 0)

	// Growth inside the 25% band passes; shrinking passes.
	if err := compareEngineBench(withBytesPerNode(report("huge", 1000.0, "old", 1000.0), 240.0, 0), base, 0.25, &log); err != nil {
		t.Fatalf("within-band bytes/node failed: %v", err)
	}
	if err := compareEngineBench(withBytesPerNode(report("huge", 1000.0, "old", 1000.0), 150.0, 0), base, 0.25, &log); err != nil {
		t.Fatalf("bytes/node decrease failed: %v", err)
	}
	// >25% growth fails and names the metric.
	err := compareEngineBench(withBytesPerNode(report("huge", 1000.0, "old", 1000.0), 260.0, 0), base, 0.25, &log)
	if err == nil || !strings.Contains(err.Error(), "bytes/node") {
		t.Fatalf("want bytes/node regression error, got %v", err)
	}
	// A baseline without the field (row "old", pre-field report) tolerates
	// any fresh value — no flag day — and a fresh run that skipped the
	// measurement never trips on a baseline that has it.
	if err := compareEngineBench(withBytesPerNode(report("huge", 1000.0, "old", 1000.0), 240.0, 9999.0), base, 0.25, &log); err != nil {
		t.Fatalf("field absent in baseline must not gate: %v", err)
	}
	if err := compareEngineBench(withBytesPerNode(report("huge", 1000.0, "old", 1000.0), 0, 0), base, 0.25, &log); err != nil {
		t.Fatalf("field absent in fresh run must not gate: %v", err)
	}
}

func TestLoadEngineBenchErrors(t *testing.T) {
	if _, err := loadEngineBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadEngineBench(empty); err == nil {
		t.Fatal("want error for benchmark-free report")
	}
}

// TestCommittedBaselineLoads guards the repo's committed report: the CI
// bench-regression job is only as good as the baseline it diffs against.
func TestCommittedBaselineLoads(t *testing.T) {
	rep, err := loadEngineBench(filepath.Join("..", "..", "BENCH_engine.json"))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 {
			t.Fatalf("committed baseline has non-positive ns/op for %s", b.Name)
		}
		names[b.Name] = true
	}
	for _, spec := range engineBenchSpecs {
		if !names[spec.name] {
			t.Errorf("committed BENCH_engine.json is missing %s — regenerate it with -engine-bench", spec.name)
		}
	}
}

func TestBenchBaselineRequiresEngineBench(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench-baseline", "x.json"}, &buf); err == nil {
		t.Fatal("want error when -bench-baseline is given without -engine-bench")
	}
}
