package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// This file implements the -engine-bench mode: it runs the simulator-engine
// micro-benchmarks through testing.Benchmark and writes a machine-readable
// BENCH_engine.json so the perf trajectory is tracked across PRs. The
// seed-baseline block records the same workloads measured on the seed's
// engines (dense-scan delivery, goroutine-per-node concurrency) for
// comparison.

// EngineBenchResult is one benchmark row of BENCH_engine.json. Procs is
// the GOMAXPROCS override the row ran under (0 = the process default, see
// the report's gomaxprocs field). AllocExact marks rows whose timed region
// is a steady-state step loop with no construction inside it: allocs/op is
// deterministic there, so the regression gate compares it exactly — any
// increase over the committed baseline fails, with no slack.
type EngineBenchResult struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	StepsPerOp      int     `json:"steps_per_op"`
	Procs           int     `json:"procs,omitempty"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	NodeStepsPerSec float64 `json:"node_steps_per_sec"`
	AllocExact      bool    `json:"alloc_exact,omitempty"`
	// EngineBytes is the resident heap footprint of the fully constructed
	// run — topology snapshot, deployment geometry, PHY model, and engine
	// node state — measured after a GC at the first step of a live run
	// (see measureFootprint). Zero on rows that don't measure it.
	EngineBytes int64 `json:"engine_bytes,omitempty"`
	// BytesPerNode is EngineBytes / Nodes, the scale metric the memory gate
	// compares across reports.
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`
}

// EngineBenchReport is the BENCH_engine.json document.
type EngineBenchReport struct {
	GeneratedBy  string              `json:"generated_by"`
	GoVersion    string              `json:"go_version"`
	GoMaxProcs   int                 `json:"gomaxprocs"`
	Benchmarks   []EngineBenchResult `json:"benchmarks"`
	SeedBaseline []EngineBenchResult `json:"seed_baseline"`
	BaselineNote string              `json:"baseline_note"`
}

// benchPayload is boxed once so protocols don't allocate per transmission.
var benchPayload radio.Message = int64(7)

// benchNode transmits a coin flip per step; dead nodes retire at step 0.
type benchNode struct {
	rng    *xrand.RNG
	step   int
	budget int
	dead   bool
}

func (c *benchNode) Act(step int) radio.Action {
	if c.rng.Bernoulli(0.5) {
		return radio.Transmit(benchPayload)
	}
	return radio.Listen()
}
func (c *benchNode) Deliver(step int, msg radio.Message) { c.step = step + 1 }
func (c *benchNode) Done() bool                          { return c.dead || c.step >= c.budget }

// timerArmer restarts the benchmark timer (and its alloc counters) exactly
// once, at the first Act call of a run — the first moment after the engine
// has finished constructing itself. The per-step benches hand the whole run
// to radio.Run, so a b.ResetTimer() placed before the call leaves engine
// construction (node states, CSR views, delivery scratch — thousands of
// one-time allocations at n=4096) inside the timed region, where it divides
// by b.N and masquerades as a handful of per-step allocs/op whenever b.N
// lands small. Only the sequential benches use this: their Act calls run on
// the benchmark goroutine, so the reset is race-free.
type timerArmer struct {
	b     *testing.B
	armed bool
}

func (a *timerArmer) fire() {
	if !a.armed {
		a.armed = true
		a.b.ResetTimer()
	}
}

// resetOnFirstAct wraps a node protocol to fire the run's shared armer at
// its first Act. Every node is wrapped (a dynamic schedule may leave any
// particular node inactive at step 0, so no single node can own the reset);
// the wrapper allocations land during construction, outside the measured
// window.
type resetOnFirstAct struct {
	radio.Protocol
	arm *timerArmer
}

func (r *resetOnFirstAct) Act(step int) radio.Action {
	r.arm.fire()
	return r.Protocol.Act(step)
}

// benchSequentialSteps measures one engine step per op on an rows×cols grid
// where the first liveCount nodes stay live (0 = all).
func benchSequentialSteps(rows, cols, liveCount int) func(b *testing.B) {
	return func(b *testing.B) {
		g := gen.Grid(rows, cols)
		g.Freeze()
		arm := &timerArmer{b: b}
		factory := func(info radio.NodeInfo) radio.Protocol {
			dead := liveCount > 0 && info.Index >= liveCount
			return &resetOnFirstAct{Protocol: &benchNode{rng: info.RNG, budget: b.N, dead: dead}, arm: arm}
		}
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: b.N, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDynSteps measures one sequential engine step per op on an rows×cols
// grid running under a churn schedule (epoch swap every epochLen steps), so
// the dynamic-topology overhead — one comparison per step plus the amortized
// per-epoch CSR swap — is tracked alongside the static engines.
func benchDynSteps(rows, cols, epochLen int) func(b *testing.B) {
	return func(b *testing.B) {
		g := gen.Grid(rows, cols)
		// Size the schedule to cover all b.N steps, so every measured step
		// runs on the dynamic path regardless of how far the framework
		// scales the iteration count (construction is outside the timer).
		sched, err := dyn.Churn(g, b.N/epochLen+1, epochLen, 0.2, xrand.New(9))
		if err != nil {
			b.Fatal(err)
		}
		arm := &timerArmer{b: b}
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &resetOnFirstAct{Protocol: &benchNode{rng: info.RNG, budget: b.N}, arm: arm}
		}
		opts := radio.Options{MaxSteps: b.N, Seed: 1, Topology: sched}
		if _, err := radio.Run(g, factory, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProbeSink receives probe samples in the obs-enabled bench row. A
// package-level func (not a capturing closure) so arming the probe adds no
// allocations of its own to the measured loop.
var benchProbeSink float64

func benchProbe(s *radio.ProbeSample) { benchProbeSink += s.StepsPerSec }

// benchDynStepsProbed is benchDynSteps with radio.Options.Probe armed — the
// instrumentation-overhead row. Gate: checkObsOverhead requires it within
// 3% of the unprobed row measured in the same run, pinning the epoch-
// boundary probe contract's cost (DESIGN.md §10) with a host-independent
// ratio.
func benchDynStepsProbed(rows, cols, epochLen int) func(b *testing.B) {
	return func(b *testing.B) {
		g := gen.Grid(rows, cols)
		sched, err := dyn.Churn(g, b.N/epochLen+1, epochLen, 0.2, xrand.New(9))
		if err != nil {
			b.Fatal(err)
		}
		arm := &timerArmer{b: b}
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &resetOnFirstAct{Protocol: &benchNode{rng: info.RNG, budget: b.N}, arm: arm}
		}
		opts := radio.Options{MaxSteps: b.N, Seed: 1, Topology: sched, Probe: benchProbe}
		if _, err := radio.Run(g, factory, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// sinrNode transmits with probability 1/32 per step — the sparse Decay-like
// regime the SINR grid bucketing is built for.
type sinrNode struct {
	rng    *xrand.RNG
	step   int
	budget int
}

func (c *sinrNode) Act(step int) radio.Action {
	if c.rng.Bernoulli(1.0 / 32) {
		return radio.Transmit(benchPayload)
	}
	return radio.Listen()
}
func (c *sinrNode) Deliver(step int, msg radio.Message) { c.step = step + 1 }
func (c *sinrNode) Done() bool                          { return c.step >= c.budget }

// sinrDeployment draws a uniform UDG deployment at the phy:sinr density
// convention (average degree ~8 at unit decode range). Connectivity is not
// required for the delivery benches, so there is no retry loop — at n=4096
// a degree-8 deployment is usually disconnected, which the engines and the
// SINR model handle like any other geometry.
func sinrDeployment(n int) []gen.Point {
	side := math.Sqrt(float64(n) * math.Pi / 8)
	return gen.UniformPoints(n, 2, side, xrand.New(3))
}

// benchSINRSteps measures one engine step per op under the grid-bucketed
// SINR model (default far-field cutoff) on the canonical phy:sinr
// deployment.
func benchSINRSteps(n int) func(b *testing.B) {
	return func(b *testing.B) {
		pts := sinrDeployment(n)
		model, err := phy.NewSINR(pts, phy.SINRParams{})
		if err != nil {
			b.Fatal(err)
		}
		g := gen.SINRConnectivity(pts, model.Params())
		g.Freeze()
		arm := &timerArmer{b: b}
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &resetOnFirstAct{Protocol: &sinrNode{rng: info.RNG, budget: b.N}, arm: arm}
		}
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: b.N, Seed: 1, PHY: model}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolSINRRun measures one 64-step worker-pool SINR run per op, engine
// and model construction included.
func benchPoolSINRRun(n int) func(b *testing.B) {
	return func(b *testing.B) {
		pts := sinrDeployment(n)
		params := phy.SINRParams{}.WithDefaults()
		g := gen.SINRConnectivity(pts, params)
		g.Freeze()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model, err := phy.NewSINR(pts, params)
			if err != nil {
				b.Fatal(err)
			}
			factory := func(info radio.NodeInfo) radio.Protocol {
				return &sinrNode{rng: info.RNG, budget: 64}
			}
			if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 64, Seed: 1, Concurrent: true, PHY: model}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// hugeTopo lazily builds and caches one streaming-path SINR topology, so a
// huge row, its pool twin, and the footprint measurement share a single
// gen.BuildCSR call — at n=10⁶ the build (connectivity retries included) is
// seconds of wall clock and must not repeat per benchmark iteration ramp.
type hugeTopo struct {
	n     int
	once  sync.Once
	csr   *graph.CSR
	pts   []gen.Point
	bytes int64
	err   error
}

func (h *hugeTopo) build() error {
	h.once.Do(func() {
		// The heap baseline is read before anything run-resident exists, so
		// the footprint delta covers the snapshot and geometry too.
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		h.csr, h.pts, h.err = gen.BuildCSR("phy:sinr", h.n, 3)
		if h.err != nil {
			return
		}
		h.bytes, h.err = h.measureFootprint(m0.HeapAlloc)
	})
	return h.err
}

// memArmer records the run's resident heap once, at the first Act of a live
// run — the first moment after the engine has finished constructing itself —
// as a GC'd HeapAlloc delta against the pre-construction baseline. The
// sequential footprint run fires it on the benchmark goroutine, so no
// synchronization is needed.
type memArmer struct {
	base  uint64
	bytes int64
	armed bool
}

func (a *memArmer) fire() {
	if a.armed {
		return
	}
	a.armed = true
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > a.base {
		a.bytes = int64(m.HeapAlloc - a.base)
	}
}

// measureOnFirstAct wraps a node protocol to fire the run's memArmer at its
// first Act (the footprint twin of resetOnFirstAct).
type measureOnFirstAct struct {
	radio.Protocol
	arm *memArmer
}

func (r *measureOnFirstAct) Act(step int) radio.Action {
	r.arm.fire()
	return r.Protocol.Act(step)
}

// measureFootprint runs a short sequential run over the cached topology and
// returns the resident engine bytes: GC'd HeapAlloc at the first step minus
// the pre-construction baseline. Everything a real run keeps live is live at
// that point — packed CSR, positions, the SINR model's SoA arrays and grid,
// and the engine's per-node state — while construction garbage has been
// collected away.
func (h *hugeTopo) measureFootprint(base uint64) (int64, error) {
	model, err := phy.NewSINR(h.pts, phy.SINRParams{})
	if err != nil {
		return 0, err
	}
	arm := &memArmer{base: base}
	factory := func(info radio.NodeInfo) radio.Protocol {
		return &measureOnFirstAct{Protocol: &sinrNode{rng: info.RNG, budget: 16}, arm: arm}
	}
	if _, err := radio.RunCSR(h.csr, factory, radio.Options{MaxSteps: 16, Seed: 1, PHY: model}); err != nil {
		return 0, err
	}
	return arm.bytes, nil
}

// benchStreamSINRSteps measures one sequential engine step per op on the
// million-node path: streaming-built (and, above the threshold, delta-packed)
// CSR through the graph-free radio.RunCSR entry, SINR delivery from the
// cached deployment.
func benchStreamSINRSteps(h *hugeTopo) func(b *testing.B) {
	return func(b *testing.B) {
		if err := h.build(); err != nil {
			b.Fatal(err)
		}
		model, err := phy.NewSINR(h.pts, phy.SINRParams{})
		if err != nil {
			b.Fatal(err)
		}
		arm := &timerArmer{b: b}
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &resetOnFirstAct{Protocol: &sinrNode{rng: info.RNG, budget: b.N}, arm: arm}
		}
		if _, err := radio.RunCSR(h.csr, factory, radio.Options{MaxSteps: b.N, Seed: 1, PHY: model}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolStreamSINRRun measures one 64-step worker-pool run per op on the
// same streaming topology, model and engine construction included.
func benchPoolStreamSINRRun(h *hugeTopo) func(b *testing.B) {
	return func(b *testing.B) {
		if err := h.build(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model, err := phy.NewSINR(h.pts, phy.SINRParams{})
			if err != nil {
				b.Fatal(err)
			}
			factory := func(info radio.NodeInfo) radio.Protocol {
				return &sinrNode{rng: info.RNG, budget: 64}
			}
			if _, err := radio.RunCSR(h.csr, factory, radio.Options{MaxSteps: 64, Seed: 1, Concurrent: true, PHY: model}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSINRDenseRef measures one step per op of the pre-PHY internal/sinr
// execution loop (deleted in the PHY refactor), reimplemented here verbatim
// as the regression reference: a dense O(n) act scan plus O(#tx·n) decoding
// — every listener sums every transmitter. The committed report's
// seq_sinr_n4096 row must beat this one; if the grid-bucketed delivery ever
// regresses past the old loop, the gap shows up here.
func benchSINRDenseRef(n int) func(b *testing.B) {
	return func(b *testing.B) {
		pts := sinrDeployment(n)
		const power, pathLoss, noise, beta = 1, 4, 0.5, 2
		root := xrand.New(1)
		nodes := make([]*sinrNode, n)
		for v := 0; v < n; v++ {
			nodes[v] = &sinrNode{rng: root.Split(uint64(v)), budget: b.N}
		}
		transmitting := make([]bool, n)
		payload := make([]radio.Message, n)
		txIdx := make([]int, 0, n)
		b.ResetTimer()
		for step := 0; step < b.N; step++ {
			txIdx = txIdx[:0]
			for v := 0; v < n; v++ {
				transmitting[v] = false
				payload[v] = nil
				if nodes[v].Done() {
					continue
				}
				a := nodes[v].Act(step)
				if a.Transmit {
					transmitting[v] = true
					payload[v] = a.Msg
					txIdx = append(txIdx, v)
				}
			}
			for v := 0; v < n; v++ {
				if nodes[v].Done() {
					continue
				}
				var msg radio.Message
				if !transmitting[v] && len(txIdx) > 0 {
					var total float64
					best, bestPow := -1, 0.0
					for _, u := range txIdx {
						d := pts[u].Dist(pts[v])
						if d == 0 {
							d = 1e-9
						}
						pow := power * math.Pow(d, -pathLoss)
						total += pow
						if pow > bestPow {
							best, bestPow = u, pow
						}
					}
					if bestPow/(noise+(total-bestPow)) >= beta {
						msg = payload[best]
					}
				}
				nodes[v].Deliver(step, msg)
			}
		}
	}
}

// benchPoolRun measures one 64-step worker-pool run per op, engine
// construction included.
func benchPoolRun(rows, cols int) func(b *testing.B) {
	return func(b *testing.B) {
		g := gen.Grid(rows, cols)
		g.Freeze()
		for i := 0; i < b.N; i++ {
			factory := func(info radio.NodeInfo) radio.Protocol {
				return &benchNode{rng: info.RNG, budget: 64}
			}
			if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 64, Seed: 1, Concurrent: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// engineBenchSpecs defines the tracked engine micro-benches. procs > 0
// pins GOMAXPROCS for that row (restored afterwards): the pool engine
// shards per P, so the p2/p4/p8 rows are what make its parallel scaling
// visible in the trajectory — on a host with fewer cores they still run
// (the Ps timeshare), they just can't show a speedup there.
// hugeTopos caches the streaming topologies shared by the huge rows below.
var hugeTopos = map[int]*hugeTopo{
	100000:  {n: 100000},
	1000000: {n: 1000000},
}

// hugeMem returns the footprint hook for one cached huge topology.
func hugeMem(h *hugeTopo) func() (int64, error) {
	return func() (int64, error) {
		if err := h.build(); err != nil {
			return 0, err
		}
		return h.bytes, nil
	}
}

var engineBenchSpecs = []struct {
	name       string
	nodes      int
	stepsPerOp int
	procs      int
	allocExact bool
	// huge rows run only under -bench-huge: building a 10⁵–10⁶-node
	// topology costs seconds to minutes and must not slow every CI gate.
	huge bool
	// mem measures the row's resident engine footprint (0 hook = not
	// measured; the JSON field stays absent).
	mem func() (int64, error)
	fn  func(b *testing.B)
}{
	{name: "seq_dense_n1024", nodes: 1024, stepsPerOp: 1, allocExact: true, fn: benchSequentialSteps(32, 32, 0)},
	{name: "seq_sparse_n4096_live64", nodes: 4096, stepsPerOp: 1, allocExact: true, fn: benchSequentialSteps(64, 64, 64)},
	{name: "seq_dyn_churn_n1024", nodes: 1024, stepsPerOp: 1, allocExact: true, fn: benchDynSteps(32, 32, 64)},
	{name: "seq_dyn_churn_n1024_obs", nodes: 1024, stepsPerOp: 1, allocExact: true, fn: benchDynStepsProbed(32, 32, 64)},
	{name: "pool_n256_64steps", nodes: 256, stepsPerOp: 64, fn: benchPoolRun(16, 16)},
	{name: "pool_n1024_64steps", nodes: 1024, stepsPerOp: 64, fn: benchPoolRun(32, 32)},
	{name: "pool_n1024_64steps_p2", nodes: 1024, stepsPerOp: 64, procs: 2, fn: benchPoolRun(32, 32)},
	{name: "pool_n1024_64steps_p4", nodes: 1024, stepsPerOp: 64, procs: 4, fn: benchPoolRun(32, 32)},
	{name: "pool_n1024_64steps_p8", nodes: 1024, stepsPerOp: 64, procs: 8, fn: benchPoolRun(32, 32)},
	{name: "seq_sinr_n1024", nodes: 1024, stepsPerOp: 1, allocExact: true, fn: benchSINRSteps(1024)},
	{name: "pool_sinr_n1024", nodes: 1024, stepsPerOp: 64, fn: benchPoolSINRRun(1024)},
	{name: "pool_sinr_n1024_p2", nodes: 1024, stepsPerOp: 64, procs: 2, fn: benchPoolSINRRun(1024)},
	{name: "pool_sinr_n1024_p4", nodes: 1024, stepsPerOp: 64, procs: 4, fn: benchPoolSINRRun(1024)},
	{name: "pool_sinr_n1024_p8", nodes: 1024, stepsPerOp: 64, procs: 8, fn: benchPoolSINRRun(1024)},
	{name: "seq_sinr_n4096", nodes: 4096, stepsPerOp: 1, allocExact: true, fn: benchSINRSteps(4096)},
	{name: "seq_sinr_n65536", nodes: 65536, stepsPerOp: 1, allocExact: true, fn: benchSINRSteps(65536)},
	{name: "pool_sinr_n65536_p4", nodes: 65536, stepsPerOp: 64, procs: 4, fn: benchPoolSINRRun(65536)},
	{name: "sinr_dense_ref_n4096", nodes: 4096, stepsPerOp: 1, allocExact: true, fn: benchSINRDenseRef(4096)},
	{name: "seq_sinr_n100000", nodes: 100000, stepsPerOp: 1, allocExact: true, huge: true,
		mem: hugeMem(hugeTopos[100000]), fn: benchStreamSINRSteps(hugeTopos[100000])},
	{name: "pool_sinr_n100000_p4", nodes: 100000, stepsPerOp: 64, procs: 4, huge: true,
		mem: hugeMem(hugeTopos[100000]), fn: benchPoolStreamSINRRun(hugeTopos[100000])},
	{name: "seq_sinr_n1000000", nodes: 1000000, stepsPerOp: 1, allocExact: true, huge: true,
		mem: hugeMem(hugeTopos[1000000]), fn: benchStreamSINRSteps(hugeTopos[1000000])},
	{name: "pool_sinr_n1000000_p4", nodes: 1000000, stepsPerOp: 64, procs: 4, huge: true,
		mem: hugeMem(hugeTopos[1000000]), fn: benchPoolStreamSINRRun(hugeTopos[1000000])},
}

// seedBaseline is the same workload set measured at PR 1 on the seed's
// engines (per-step dense-scan delivery with fresh counts/from allocations,
// and the goroutine-per-node concurrent engine), on the hardware that
// produced the first committed BENCH_engine.json.
var seedBaseline = []EngineBenchResult{
	{Name: "seq_dense_n1024", Nodes: 1024, StepsPerOp: 1, NsPerOp: 43366, AllocsPerOp: 2, BytesPerOp: 5122, NodeStepsPerSec: 1024 / 43366e-9},
	{Name: "seq_sparse_n4096_live64", Nodes: 4096, StepsPerOp: 1, NsPerOp: 34653, AllocsPerOp: 2, BytesPerOp: 20487, NodeStepsPerSec: 4096 / 34653e-9},
	{Name: "pool_n256_64steps", Nodes: 256, StepsPerOp: 64, NsPerOp: 14017021, AllocsPerOp: 1721, BytesPerOp: 237355, NodeStepsPerSec: 256 * 64 / 14017021e-9},
	{Name: "pool_n1024_64steps", Nodes: 1024, StepsPerOp: 64, NsPerOp: 76403940, AllocsPerOp: 7958, BytesPerOp: 1094148, NodeStepsPerSec: 1024 * 64 / 76403940e-9},
}

// measureEngineBench executes the engine micro-benches and returns the
// report. Huge rows (10⁵–10⁶-node topologies) run only when includeHuge is
// set; a non-empty filter is a comma-separated list of exact bench names to
// run (exact, not substring — "seq_sinr_n100000" must not drag in the
// n=10⁶ row it prefixes).
func measureEngineBench(includeHuge bool, filter string) (EngineBenchReport, error) {
	wanted := map[string]bool{}
	if filter != "" {
		for _, name := range strings.Split(filter, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
	}
	report := EngineBenchReport{
		GeneratedBy:  "radionet-bench -engine-bench",
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SeedBaseline: seedBaseline,
		BaselineNote: "seed engines (dense-scan delivery, goroutine-per-node concurrency) measured at PR 1 on the hardware of the first committed report",
	}
	for _, spec := range engineBenchSpecs {
		if spec.huge && !includeHuge {
			continue
		}
		if len(wanted) > 0 && !wanted[spec.name] {
			continue
		}
		var r testing.BenchmarkResult
		if spec.procs > 0 {
			prev := runtime.GOMAXPROCS(spec.procs)
			r = testing.Benchmark(spec.fn)
			runtime.GOMAXPROCS(prev)
		} else {
			r = testing.Benchmark(spec.fn)
		}
		if r.N == 0 {
			return report, fmt.Errorf("engine bench %s did not run", spec.name)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		row := EngineBenchResult{
			Name:            spec.name,
			Nodes:           spec.nodes,
			StepsPerOp:      spec.stepsPerOp,
			Procs:           spec.procs,
			NsPerOp:         ns,
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			NodeStepsPerSec: float64(spec.nodes*spec.stepsPerOp) / (ns * 1e-9),
			AllocExact:      spec.allocExact,
		}
		if spec.mem != nil {
			bytes, err := spec.mem()
			if err != nil {
				return report, fmt.Errorf("engine bench %s footprint: %w", spec.name, err)
			}
			row.EngineBytes = bytes
			row.BytesPerNode = float64(bytes) / float64(spec.nodes)
		}
		report.Benchmarks = append(report.Benchmarks, row)
	}
	if len(report.Benchmarks) == 0 {
		return report, fmt.Errorf("no engine benches matched (filter %q, huge=%v)", filter, includeHuge)
	}
	return report, nil
}

// obsOverheadTolerance caps how much slower a probe-armed step loop may be
// than its unprobed twin measured in the same run (same host, same load):
// both rows are fresh, so the ratio is host-independent and gates the
// instrumentation itself, not the hardware.
const obsOverheadTolerance = 0.03

// checkObsOverhead gates every <name>_obs row against its <name> base row
// within report. Run as part of -engine-bench, baseline or not.
func checkObsOverhead(report EngineBenchReport, log io.Writer) error {
	byName := make(map[string]EngineBenchResult, len(report.Benchmarks))
	for _, b := range report.Benchmarks {
		byName[b.Name] = b
	}
	for _, b := range report.Benchmarks {
		base, ok := byName[strings.TrimSuffix(b.Name, "_obs")]
		if b.Name == base.Name || !ok {
			continue
		}
		ratio := b.NsPerOp / base.NsPerOp
		fmt.Fprintf(log, "obs-overhead: %-24s %12.0f ns/op vs %s %12.0f (%+.1f%%)\n",
			b.Name, b.NsPerOp, base.Name, base.NsPerOp, (ratio-1)*100)
		if ratio > 1+obsOverheadTolerance {
			return fmt.Errorf("obs-overhead: %s is %.1f%% slower than %s (tolerance %.0f%%) — instrumentation leaked into the step loop",
				b.Name, (ratio-1)*100, base.Name, obsOverheadTolerance*100)
		}
	}
	return nil
}

// writeEngineBench writes the JSON report to out.
func writeEngineBench(report EngineBenchReport, out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// bytesPerNodeTolerance caps how much a row's resident bytes/node may grow
// over the baseline before the gate fails. Memory footprint is far less
// host-sensitive than ns/op (allocation sizes don't depend on CPU), so the
// band is tighter than the timing tolerance.
const bytesPerNodeTolerance = 0.25

// allocSlack returns the allocs/op headroom for one benchmark in
// compareEngineBench: an absolute floor of 2 (amortized one-time setup can
// round into 1–2 allocs/op when the iteration count differs between
// machines) plus an eighth of the baseline (the worker-pool benches'
// construction allocs scale with GOMAXPROCS, which differs between the
// baseline host and the CI runner). A genuine per-step allocation adds at
// least stepsPerOp allocs to every op and sails past both.
func allocSlack(baseline int64) int64 {
	return max(2, baseline/8)
}

// compareEngineBench checks fresh results against a previously recorded
// report (the CI bench-regression gate) on two axes: ns/op beyond the
// fractional tolerance (wide, because baseline and runner may be different
// hardware) and allocs/op (hardware-independent — this is the check that
// catches a step loop that started allocating). Rows the baseline marks
// AllocExact are steady-state step loops whose alloc count is
// deterministic: any allocs/op increase at all fails. Other rows (the
// pool benches, whose per-op construction allocs scale with GOMAXPROCS)
// get the proportional allocSlack. Benchmarks absent from the baseline
// are reported as new but never fail, so adding a bench doesn't require
// regenerating the baseline in the same change. Speedups only produce a
// note — refreshing the committed baseline is a deliberate act, not a
// gate.
func compareEngineBench(fresh, baseline EngineBenchReport, tolerance float64, log io.Writer) error {
	base := make(map[string]EngineBenchResult, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	var regressed []string
	for _, f := range fresh.Benchmarks {
		b, ok := base[f.Name]
		if !ok {
			fmt.Fprintf(log, "bench-compare: %-24s new benchmark, no baseline\n", f.Name)
			continue
		}
		ratio := f.NsPerOp / b.NsPerOp
		fmt.Fprintf(log, "bench-compare: %-24s %12.0f ns/op vs baseline %12.0f (%+.1f%%), %d vs %d allocs/op\n",
			f.Name, f.NsPerOp, b.NsPerOp, (ratio-1)*100, f.AllocsPerOp, b.AllocsPerOp)
		if ratio > 1+tolerance {
			regressed = append(regressed, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				f.Name, f.NsPerOp, b.NsPerOp, (ratio-1)*100, tolerance*100))
		}
		if b.AllocExact {
			if f.AllocsPerOp > b.AllocsPerOp {
				regressed = append(regressed, fmt.Sprintf("%s: %d allocs/op vs baseline %d (alloc-exact row: no increase allowed)",
					f.Name, f.AllocsPerOp, b.AllocsPerOp))
			}
		} else if slack := allocSlack(b.AllocsPerOp); f.AllocsPerOp > b.AllocsPerOp+slack {
			regressed = append(regressed, fmt.Sprintf("%s: %d allocs/op vs baseline %d (slack %d)",
				f.Name, f.AllocsPerOp, b.AllocsPerOp, slack))
		}
		// The memory gate compares bytes/node only when both reports carry
		// it: baselines written before the field existed (or runs that
		// skipped a row's footprint measurement) stay valid, no flag day.
		if f.BytesPerNode > 0 && b.BytesPerNode > 0 {
			growth := f.BytesPerNode/b.BytesPerNode - 1
			fmt.Fprintf(log, "bench-compare: %-24s %12.1f bytes/node vs baseline %12.1f (%+.1f%%)\n",
				f.Name, f.BytesPerNode, b.BytesPerNode, growth*100)
			if growth > bytesPerNodeTolerance {
				regressed = append(regressed, fmt.Sprintf("%s: %.1f bytes/node vs baseline %.1f (+%.1f%%, tolerance %.0f%%)",
					f.Name, f.BytesPerNode, b.BytesPerNode, growth*100, bytesPerNodeTolerance*100))
			}
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("engine bench regression:\n  %s", strings.Join(regressed, "\n  "))
	}
	return nil
}

// loadEngineBench reads a previously written report.
func loadEngineBench(path string) (EngineBenchReport, error) {
	var report EngineBenchReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		return report, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(report.Benchmarks) == 0 {
		return report, fmt.Errorf("%s holds no benchmarks", path)
	}
	return report, nil
}
