package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// This file implements the -engine-bench mode: it runs the simulator-engine
// micro-benchmarks through testing.Benchmark and writes a machine-readable
// BENCH_engine.json so the perf trajectory is tracked across PRs. The
// seed-baseline block records the same workloads measured on the seed's
// engines (dense-scan delivery, goroutine-per-node concurrency) for
// comparison.

// EngineBenchResult is one benchmark row of BENCH_engine.json.
type EngineBenchResult struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	StepsPerOp      int     `json:"steps_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	NodeStepsPerSec float64 `json:"node_steps_per_sec"`
}

// EngineBenchReport is the BENCH_engine.json document.
type EngineBenchReport struct {
	GeneratedBy  string              `json:"generated_by"`
	GoVersion    string              `json:"go_version"`
	GoMaxProcs   int                 `json:"gomaxprocs"`
	Benchmarks   []EngineBenchResult `json:"benchmarks"`
	SeedBaseline []EngineBenchResult `json:"seed_baseline"`
	BaselineNote string              `json:"baseline_note"`
}

// benchPayload is boxed once so protocols don't allocate per transmission.
var benchPayload radio.Message = int64(7)

// benchNode transmits a coin flip per step; dead nodes retire at step 0.
type benchNode struct {
	rng    *xrand.RNG
	step   int
	budget int
	dead   bool
}

func (c *benchNode) Act(step int) radio.Action {
	if c.rng.Bernoulli(0.5) {
		return radio.Transmit(benchPayload)
	}
	return radio.Listen()
}
func (c *benchNode) Deliver(step int, msg radio.Message) { c.step = step + 1 }
func (c *benchNode) Done() bool                          { return c.dead || c.step >= c.budget }

// benchSequentialSteps measures one engine step per op on an rows×cols grid
// where the first liveCount nodes stay live (0 = all).
func benchSequentialSteps(rows, cols, liveCount int) func(b *testing.B) {
	return func(b *testing.B) {
		g := gen.Grid(rows, cols)
		g.Freeze()
		factory := func(info radio.NodeInfo) radio.Protocol {
			dead := liveCount > 0 && info.Index >= liveCount
			return &benchNode{rng: info.RNG, budget: b.N, dead: dead}
		}
		b.ResetTimer()
		if _, err := radio.Run(g, factory, radio.Options{MaxSteps: b.N, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolRun measures one 64-step worker-pool run per op, engine
// construction included.
func benchPoolRun(rows, cols int) func(b *testing.B) {
	return func(b *testing.B) {
		g := gen.Grid(rows, cols)
		g.Freeze()
		for i := 0; i < b.N; i++ {
			factory := func(info radio.NodeInfo) radio.Protocol {
				return &benchNode{rng: info.RNG, budget: 64}
			}
			if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 64, Seed: 1, Concurrent: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// engineBenchSpecs defines the tracked engine micro-benches.
var engineBenchSpecs = []struct {
	name       string
	nodes      int
	stepsPerOp int
	fn         func(b *testing.B)
}{
	{"seq_dense_n1024", 1024, 1, benchSequentialSteps(32, 32, 0)},
	{"seq_sparse_n4096_live64", 4096, 1, benchSequentialSteps(64, 64, 64)},
	{"pool_n256_64steps", 256, 64, benchPoolRun(16, 16)},
	{"pool_n1024_64steps", 1024, 64, benchPoolRun(32, 32)},
}

// seedBaseline is the same workload set measured at PR 1 on the seed's
// engines (per-step dense-scan delivery with fresh counts/from allocations,
// and the goroutine-per-node concurrent engine), on the hardware that
// produced the first committed BENCH_engine.json.
var seedBaseline = []EngineBenchResult{
	{Name: "seq_dense_n1024", Nodes: 1024, StepsPerOp: 1, NsPerOp: 43366, AllocsPerOp: 2, BytesPerOp: 5122, NodeStepsPerSec: 1024 / 43366e-9},
	{Name: "seq_sparse_n4096_live64", Nodes: 4096, StepsPerOp: 1, NsPerOp: 34653, AllocsPerOp: 2, BytesPerOp: 20487, NodeStepsPerSec: 4096 / 34653e-9},
	{Name: "pool_n256_64steps", Nodes: 256, StepsPerOp: 64, NsPerOp: 14017021, AllocsPerOp: 1721, BytesPerOp: 237355, NodeStepsPerSec: 256 * 64 / 14017021e-9},
	{Name: "pool_n1024_64steps", Nodes: 1024, StepsPerOp: 64, NsPerOp: 76403940, AllocsPerOp: 7958, BytesPerOp: 1094148, NodeStepsPerSec: 1024 * 64 / 76403940e-9},
}

// runEngineBench executes the engine micro-benches and writes the JSON
// report to out.
func runEngineBench(out io.Writer) error {
	report := EngineBenchReport{
		GeneratedBy:  "radionet-bench -engine-bench",
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SeedBaseline: seedBaseline,
		BaselineNote: "seed engines (dense-scan delivery, goroutine-per-node concurrency) measured at PR 1 on the hardware of the first committed report",
	}
	for _, spec := range engineBenchSpecs {
		r := testing.Benchmark(spec.fn)
		if r.N == 0 {
			return fmt.Errorf("engine bench %s did not run", spec.name)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Benchmarks = append(report.Benchmarks, EngineBenchResult{
			Name:            spec.name,
			Nodes:           spec.nodes,
			StepsPerOp:      spec.stepsPerOp,
			NsPerOp:         ns,
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			NodeStepsPerSec: float64(spec.nodes*spec.stepsPerOp) / (ns * 1e-9),
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
