// Package trace records per-step simulation activity into a bounded
// in-memory buffer and exports it as CSV or JSON Lines, for debugging
// protocols and for plotting time-series (informed-node curves, collision
// rates) outside Go. It plugs into any engine through the radio.Options
// OnStep hook.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/radio"
)

// Event is one recorded step.
type Event struct {
	Step       int `json:"step"`
	Transmits  int `json:"transmits"`
	Deliveries int `json:"deliveries"`
	Collisions int `json:"collisions"`
	// Custom is an optional protocol-defined gauge (e.g. informed count),
	// filled by the Gauge callback if installed.
	Custom int `json:"custom,omitempty"`
}

// Recorder buffers step events up to a capacity (0 = unbounded).
type Recorder struct {
	capacity int
	events   []Event
	dropped  int
	// Gauge, when non-nil, is sampled after every step into Event.Custom.
	Gauge func() int
}

// NewRecorder creates a Recorder keeping at most capacity events
// (0 for unbounded).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{capacity: capacity}
}

// OnStep returns the hook to install into radio.Options.OnStep (or the SINR
// engine's Options.OnStep, which shares the shape).
func (r *Recorder) OnStep() func(radio.StepStats) {
	return func(st radio.StepStats) {
		ev := Event{
			Step:       st.Step,
			Transmits:  st.Transmits,
			Deliveries: st.Deliveries,
			Collisions: st.Collisions,
		}
		if r.Gauge != nil {
			ev.Custom = r.Gauge()
		}
		if r.capacity > 0 && len(r.events) >= r.capacity {
			r.dropped++
			return
		}
		r.events = append(r.events, ev)
	}
}

// Events returns the recorded events (shared slice; treat as read-only).
func (r *Recorder) Events() []Event { return r.events }

// Dropped reports how many events were discarded due to the capacity bound.
func (r *Recorder) Dropped() int { return r.dropped }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteCSV writes "step,transmits,deliveries,collisions,custom" rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "step,transmits,deliveries,collisions,custom\n"); err != nil {
		return err
	}
	for _, ev := range r.events {
		row := strconv.Itoa(ev.Step) + "," + strconv.Itoa(ev.Transmits) + "," +
			strconv.Itoa(ev.Deliveries) + "," + strconv.Itoa(ev.Collisions) + "," +
			strconv.Itoa(ev.Custom) + "\n"
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a recording.
type Summary struct {
	Steps              int
	TotalTransmits     int
	TotalDeliveries    int
	TotalCollisions    int
	PeakTransmits      int
	BusiestStep        int
	DeliveryRate       float64 // deliveries / transmits
	CollisionStepShare float64 // fraction of steps with ≥1 collision
}

// Summarize computes aggregate statistics over the recording.
func (r *Recorder) Summarize() Summary {
	s := Summary{Steps: len(r.events)}
	collisionSteps := 0
	for _, ev := range r.events {
		s.TotalTransmits += ev.Transmits
		s.TotalDeliveries += ev.Deliveries
		s.TotalCollisions += ev.Collisions
		if ev.Transmits > s.PeakTransmits {
			s.PeakTransmits = ev.Transmits
			s.BusiestStep = ev.Step
		}
		if ev.Collisions > 0 {
			collisionSteps++
		}
	}
	if s.TotalTransmits > 0 {
		s.DeliveryRate = float64(s.TotalDeliveries) / float64(s.TotalTransmits)
	}
	if s.Steps > 0 {
		s.CollisionStepShare = float64(collisionSteps) / float64(s.Steps)
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("steps=%d tx=%d rx=%d coll=%d peak=%d@%d rate=%.3f collsteps=%.3f",
		s.Steps, s.TotalTransmits, s.TotalDeliveries, s.TotalCollisions,
		s.PeakTransmits, s.BusiestStep, s.DeliveryRate, s.CollisionStepShare)
}
