package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/radio"
)

func record(t *testing.T, capacity int) *Recorder {
	t.Helper()
	r := NewRecorder(capacity)
	g := gen.Path(12)
	// Reuse the decay broadcast machinery for realistic traffic.
	_, err := radio.Run(g, func(info radio.NodeInfo) radio.Protocol {
		return testNode{info: info}
	}, radio.Options{MaxSteps: 20, Seed: 1, OnStep: r.OnStep()})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// testNode transmits on even steps.
type testNode struct{ info radio.NodeInfo }

func (tn testNode) Act(step int) radio.Action {
	if step%2 == 0 && tn.info.Index%3 == 0 {
		return radio.Transmit(int64(step))
	}
	return radio.Listen()
}
func (tn testNode) Deliver(step int, msg radio.Message) {}
func (tn testNode) Done() bool                          { return false }

func TestRecorderCapturesSteps(t *testing.T) {
	r := record(t, 0)
	if r.Len() != 20 {
		t.Fatalf("recorded %d events, want 20", r.Len())
	}
	for i, ev := range r.Events() {
		if ev.Step != i {
			t.Fatalf("event %d has step %d", i, ev.Step)
		}
		if i%2 == 0 && ev.Transmits == 0 {
			t.Fatalf("even step %d has no transmits", i)
		}
		if i%2 == 1 && ev.Transmits != 0 {
			t.Fatalf("odd step %d has transmits", i)
		}
	}
}

func TestRecorderCapacity(t *testing.T) {
	r := record(t, 5)
	if r.Len() != 5 {
		t.Fatalf("len %d, want capacity 5", r.Len())
	}
	if r.Dropped() != 15 {
		t.Fatalf("dropped %d, want 15", r.Dropped())
	}
}

func TestGauge(t *testing.T) {
	r := NewRecorder(0)
	calls := 0
	r.Gauge = func() int { calls++; return calls * 10 }
	hook := r.OnStep()
	hook(radio.StepStats{Step: 0})
	hook(radio.StepStats{Step: 1})
	if r.Events()[0].Custom != 10 || r.Events()[1].Custom != 20 {
		t.Fatalf("gauge values %v", r.Events())
	}
}

func TestWriteCSV(t *testing.T) {
	r := record(t, 0)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 21 {
		t.Fatalf("%d CSV lines, want header+20", len(lines))
	}
	if lines[0] != "step,transmits,deliveries,collisions,custom" {
		t.Fatalf("header %q", lines[0])
	}
}

func TestWriteJSONL(t *testing.T) {
	r := record(t, 0)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 20 {
		t.Fatalf("%d JSONL lines", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[3]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Step != 3 {
		t.Fatalf("round-trip step %d", ev.Step)
	}
}

func TestSummarize(t *testing.T) {
	r := record(t, 0)
	s := r.Summarize()
	if s.Steps != 20 || s.TotalTransmits == 0 {
		t.Fatalf("summary %+v", s)
	}
	if s.PeakTransmits < 1 || s.BusiestStep%2 != 0 {
		t.Fatalf("peak tracking wrong: %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "steps=20") {
		t.Fatalf("String() = %q", str)
	}
}

func TestRecorderWithRealProtocol(t *testing.T) {
	// End-to-end: trace a full BGI decay broadcast through the baseline API
	// by pre-installing the hook via a wrapper run.
	g := gen.Grid(5, 5)
	res, err := baseline.DecayBroadcast(g, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("broadcast incomplete")
	}
	// The recorder itself is engine-agnostic; direct radio.Run usage is
	// covered above — this test pins the baseline integration contract
	// (shared radio.StepStats shape).
	var st radio.StepStats
	r := NewRecorder(1)
	r.OnStep()(st)
	if r.Len() != 1 {
		t.Fatal("hook did not record")
	}
}
