package trace

import (
	"testing"

	"repro/internal/radio"
)

// nopProtocol is a trivial protocol for driving the hasher by hand.
type nopProtocol struct{ tx bool }

func (p *nopProtocol) Act(step int) radio.Action {
	if p.tx {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}
func (p *nopProtocol) Deliver(step int, msg radio.Message) {}
func (p *nopProtocol) Done() bool                          { return false }

func factoryFor(tx map[int]bool) radio.Factory {
	return func(info radio.NodeInfo) radio.Protocol { return &nopProtocol{tx: tx[info.Index]} }
}

// drive feeds a fixed event script to nodes created in the given order and
// returns the digest.
func drive(order []int, tx map[int]bool, deliver radio.Message) uint64 {
	h := NewHasher()
	f := h.Wrap(factoryFor(tx))
	nodes := map[int]radio.Protocol{}
	for _, id := range order {
		nodes[id] = f(radio.NodeInfo{Index: id})
	}
	for step := 0; step < 3; step++ {
		for _, id := range order {
			nodes[id].Act(step)
		}
		for _, id := range order {
			nodes[id].Deliver(step, deliver)
		}
	}
	return h.Sum()
}

func TestHasherOrderIndependent(t *testing.T) {
	tx := map[int]bool{0: true, 2: true}
	a := drive([]int{0, 1, 2}, tx, nil)
	b := drive([]int{2, 0, 1}, tx, nil)
	if a != b {
		t.Fatalf("digest depends on cross-node interleaving: %#x vs %#x", a, b)
	}
}

func TestHasherSensitive(t *testing.T) {
	tx := map[int]bool{0: true}
	base := drive([]int{0, 1}, tx, nil)
	if got := drive([]int{0, 1}, map[int]bool{1: true}, nil); got == base {
		t.Fatal("digest blind to which node transmits")
	}
	if got := drive([]int{0, 1}, tx, radio.Message(int64(5))); got == base {
		t.Fatal("digest blind to deliveries")
	}
	if got := drive([]int{0, 1}, tx, radio.Collision); got == base {
		t.Fatal("digest blind to collision markers")
	}
}

// TestHasherTransparent: wrapping must not change protocol behavior.
func TestHasherTransparent(t *testing.T) {
	h := NewHasher()
	p := h.Wrap(factoryFor(map[int]bool{0: true}))(radio.NodeInfo{Index: 0})
	if a := p.Act(0); !a.Transmit {
		t.Fatal("wrapped Act altered the action")
	}
	if p.Done() {
		t.Fatal("wrapped Done altered the result")
	}
}
