package trace

// Transcript hashing for golden regression tests: a Hasher wraps a
// radio.Factory so that every node's (nodeID, step, action/deliver) event
// stream is folded into an FNV-1a hash. The per-node streams are combined
// with a commutative mix, so the digest depends only on each node's own
// call sequence — exactly what the engines' determinism contract
// (DESIGN.md §3) promises to preserve — and not on how the engines
// interleave calls across nodes. The same protocol run on the sequential
// and the worker-pool engine therefore produces the same digest, and any
// future engine change that silently alters protocol-visible semantics
// changes it.

import (
	"sync"

	"repro/internal/radio"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	evAct     = 0xA1
	evDeliver = 0xD2
)

// Hasher accumulates per-node transcript hashes for one simulation run.
// Wrap as many factories as needed before the run; call Sum after the run
// completes. The zero value is not usable; call NewHasher.
type Hasher struct {
	mu    sync.Mutex
	nodes []*hashNode
}

// NewHasher returns an empty transcript hasher.
func NewHasher() *Hasher { return &Hasher{} }

// Wrap returns a factory producing protocols that transparently forward to
// f's protocols while hashing every Act and Deliver call.
func (h *Hasher) Wrap(f radio.Factory) radio.Factory {
	return func(info radio.NodeInfo) radio.Protocol {
		inner := f(info)
		if inner == nil {
			return nil
		}
		nd := &hashNode{inner: inner, id: uint64(info.Index), h: fnvOffset64}
		h.mu.Lock()
		h.nodes = append(h.nodes, nd)
		h.mu.Unlock()
		return nd
	}
}

// Sum folds the per-node hashes into one digest. The fold is commutative
// (per-node digests are finalized, then XORed), so the result is
// independent of node creation order and of cross-node call interleaving.
// Call only after the run has finished.
func (h *Hasher) Sum() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sum uint64
	for _, nd := range h.nodes {
		sum ^= mix64(nd.h ^ (nd.id+1)*0x9e3779b97f4a7c15)
	}
	return sum
}

// FNV1a returns the 64-bit FNV-1a hash of data — the same stream function
// the transcript hasher folds events with — for callers that need a short
// stable content hash (exp.TrialSeed salts per-trial seeds with it and the
// serve subsystem derives grid IDs from canonical spec bytes).
func FNV1a(data []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// mix64 is the SplitMix64 finalizer, decorrelating per-node digests before
// the XOR fold.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashNode forwards to the wrapped protocol, hashing the call stream.
type hashNode struct {
	inner radio.Protocol
	id    uint64
	h     uint64
}

// write folds one event into the node's FNV-1a stream.
func (n *hashNode) write(vals ...uint64) {
	h := n.h
	for _, v := range vals {
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= fnvPrime64
		}
	}
	n.h = h
}

func (n *hashNode) Act(step int) radio.Action {
	a := n.inner.Act(step)
	tx := uint64(0)
	if a.Transmit {
		tx = 1
	}
	n.write(n.id, uint64(step), evAct, tx)
	return a
}

func (n *hashNode) Deliver(step int, msg radio.Message) {
	// Classify the delivery: silence, a real message, or the collision
	// marker (CollisionDetection runs only). Payload bytes are protocol-
	// defined `any` values and are deliberately not hashed.
	kind := uint64(0)
	switch {
	case msg == nil:
	case radio.IsCollision(msg):
		kind = 2
	default:
		kind = 1
	}
	n.write(n.id, uint64(step), evDeliver, kind)
	n.inner.Deliver(step, msg)
}

func (n *hashNode) Done() bool { return n.inner.Done() }
