package radio

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// The worker-pool engine replaces the earlier goroutine-per-node design
// (which paid two channel operations per node per step and was ~100× slower
// than the sequential engine) with a small pool of long-lived workers —
// min(Options.Shards, n), defaulting to min(GOMAXPROCS, n) when Shards is
// unset — each owning one contiguous node range. A time-step is two
// barriers: every worker runs the act phase for its shard (retire, Act,
// record transmitters), the coordinator resolves deliveries sparsely, then
// every worker runs the deliver phase for its shard. Workers write only to
// scratch entries of nodes they own, the coordinator touches shared scratch
// only between barriers, and shard transmitter lists are merged in shard
// order, so the transcript is bit-identical to the sequential engine's for
// the same seed (enforced by the differential tests).

// shard is one worker's slice of the node space and its per-step outputs.
type shard struct {
	active    []int32 // not-yet-retired nodes in this shard, ascending
	txList    []int32 // this step's transmitters in this shard, ascending
	transmits int
}

type pool struct {
	e      *engine
	shards []*shard
	cmds   []chan int     // per-worker phase commands: step<<1 | phase
	phase  sync.WaitGroup // coordinator waits for all workers per phase
	// inline is set when the pool degenerates to a single worker
	// (GOMAXPROCS=1 or Shards=1): the coordinator runs both phases itself
	// and no goroutines or barriers exist. Without this, a one-worker pool
	// paid two channel round-trips per step for no parallelism — slower
	// than the sequential engine on the same workload. The transcript is
	// unchanged: phases run in the same order over the same single shard.
	inline bool
}

const (
	phaseAct = iota
	phaseDeliver
)

// workerCount resolves Options.Shards: an explicit value caps the worker
// count directly (useful for tests and tuning), otherwise GOMAXPROCS; never
// more than one worker per node.
func workerCount(opts *Options, n int) int {
	w := opts.Shards
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func runPool(g *graph.Graph, nodes []Protocol, opts Options) (Result, error) {
	n := len(nodes)
	e, err := newEngine(g, nodes, opts)
	if err != nil {
		return Result{}, err
	}
	nw := workerCount(&opts, n)
	p := &pool{e: e, inline: nw == 1}
	var workers sync.WaitGroup
	for i := 0; i < nw; i++ {
		lo, hi := i*n/nw, (i+1)*n/nw
		s := &shard{
			active: make([]int32, 0, hi-lo),
			txList: make([]int32, 0, hi-lo),
		}
		for v := lo; v < hi; v++ {
			s.active = append(s.active, int32(v))
		}
		p.shards = append(p.shards, s)
		if p.inline {
			continue
		}
		cmd := make(chan int, 1)
		p.cmds = append(p.cmds, cmd)
		workers.Add(1)
		go func() {
			defer workers.Done()
			for c := range cmd {
				step := c >> 1
				if c&1 == phaseAct {
					p.actPhase(s, step)
				} else {
					p.deliverPhase(s, step)
				}
				p.phase.Done()
			}
		}()
	}
	defer func() {
		for _, cmd := range p.cmds {
			close(cmd)
		}
		workers.Wait()
	}()

	var res Result
	start := 0
	if cp := opts.Resume; cp != nil {
		if err := e.restore(cp); err != nil {
			return Result{}, err
		}
		res = cp.Partial
		start = cp.Step
		// Redistribute the checkpointed active list over the shard ranges;
		// within a shard it stays ascending, so the merged transcript is
		// unchanged from the capturing engine's.
		for i, s := range p.shards {
			lo, hi := int32(i*n/nw), int32((i+1)*n/nw)
			s.active = s.active[:0]
			for _, v := range cp.Active {
				if v >= lo && v < hi {
					s.active = append(s.active, v)
				}
			}
		}
	}
	// combined merges shard active lists for checkpoint capture; shard
	// ranges are contiguous and ascending, so the concatenation equals the
	// sequential engine's active list at the same step (checkpoints are
	// engine-portable). Allocated only when a boundary hook is on.
	hooked := opts.Checkpoint != nil || opts.Snapshot != nil
	var combined []int32
	if hooked {
		combined = make([]int32, 0, n)
	}
	for step := start; step < opts.MaxSteps; step++ {
		st := StepStats{Step: step}
		// Epoch boundary: the coordinator swaps the CSR between barriers,
		// where no worker touches shared engine state. Workers never read
		// the topology (act/deliver phases poll protocols only), so no
		// extra synchronization is needed beyond the existing barriers.
		// Checkpoints are captured here too — workers are parked, so the
		// coordinator reads protocol state with the barrier's ordering.
		if p.e.epochSync(step) {
			if hooked {
				combined = combined[:0]
				for _, s := range p.shards {
					combined = append(combined, s.active...)
				}
				if err := p.e.boundary(step, combined, res); err != nil {
					return Result{}, err
				}
			}
			if opts.Probe != nil {
				p.e.fireProbe(step, p.activeCount(), res, false)
			}
		}
		p.barrier(step, phaseAct)
		remaining := 0
		for _, s := range p.shards {
			remaining += len(s.active)
			st.Transmits += s.transmits
		}
		if remaining == 0 {
			res.AllDone = true
			break
		}
		// Shard transmitter lists are disjoint, ascending, and arrive in
		// shard order, so the merged frontier is globally ascending — the
		// coordinator builds it between barriers, where no worker touches
		// shared state (the bitset must not be written from workers: two
		// shards could share a word).
		for _, s := range p.shards {
			p.e.frontier.Add(s.txList)
		}
		p.e.resolveDeliveries(&st)
		p.barrier(step, phaseDeliver)
		for _, s := range p.shards {
			p.e.clearTx(s.txList)
			s.txList = s.txList[:0]
		}
		p.e.clearDeliveries()
		res.Steps = step + 1
		res.Transmissions += int64(st.Transmits)
		res.Deliveries += int64(st.Deliveries)
		res.Collisions += int64(st.Collisions)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	if !res.AllDone {
		res.AllDone = true
		for _, s := range p.shards {
			if !finishAllDone(p.e.nodes, s.active) {
				res.AllDone = false
				break
			}
		}
	}
	if opts.Probe != nil {
		p.e.fireProbe(res.Steps, p.activeCount(), res, true)
	}
	return res, nil
}

// activeCount sums the shard active lists — the pool engine's equivalent of
// len(active). Called only at probe fires, never per step.
func (p *pool) activeCount() int {
	n := 0
	for _, s := range p.shards {
		n += len(s.active)
	}
	return n
}

// barrier dispatches one phase to every worker and waits for completion.
// Channel sends and the WaitGroup give the happens-before edges that make
// the coordinator's scratch writes visible to workers and vice versa. With
// a single worker there is nothing to synchronize: the coordinator runs the
// phase inline.
func (p *pool) barrier(step, ph int) {
	if p.inline {
		if ph == phaseAct {
			p.actPhase(p.shards[0], step)
		} else {
			p.deliverPhase(p.shards[0], step)
		}
		return
	}
	p.phase.Add(len(p.cmds))
	for _, cmd := range p.cmds {
		cmd <- step<<1 | ph
	}
	p.phase.Wait()
}

// actPhase runs the shared act scan (engine.actScan) over one shard's node
// range: retire nodes observed awake and done, poll the rest, record
// transmitters. Workers only write scratch entries indexed by nodes they
// own.
func (p *pool) actPhase(s *shard, step int) {
	s.active, s.txList, s.transmits = p.e.actScan(s.active, step, s.txList)
}

// deliverPhase hands each live node in the shard its received message.
func (p *pool) deliverPhase(s *shard, step int) {
	p.e.deliverScan(s.active, step)
}
