package radio

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestDeliveryPassMatchesBruteForce checks the optimized deliveryPass
// against a direct transcription of the model's definition ("a listening
// node hears a message iff exactly one of its neighbors transmits") on
// random graphs with random transmit sets.
func TestDeliveryPassMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw, density uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw%30) + 2
		g := graph.New(n)
		p := float64(density%90+5) / 100
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(p) {
					g.AddEdge(u, v)
				}
			}
		}
		transmitting := make([]bool, n)
		payload := make([]Message, n)
		for v := 0; v < n; v++ {
			if rng.Bernoulli(0.4) {
				transmitting[v] = true
				payload[v] = v
			}
		}
		hear := make([]Message, n)
		var st StepStats
		deliveryPass(g, transmitting, payload, hear, &st, false)
		// Brute force per the definition.
		for v := 0; v < n; v++ {
			var want Message
			if !transmitting[v] {
				count, from := 0, -1
				for _, w := range g.Neighbors(v) {
					if transmitting[w] {
						count++
						from = int(w)
					}
				}
				if count == 1 {
					want = payload[from]
				}
			}
			if hear[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryStatsConsistent cross-checks the per-step counters against a
// recount from first principles.
func TestDeliveryStatsConsistent(t *testing.T) {
	rng := xrand.New(42)
	g := graph.New(25)
	for u := 0; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			if rng.Bernoulli(0.2) {
				g.AddEdge(u, v)
			}
		}
	}
	transmitting := make([]bool, 25)
	payload := make([]Message, 25)
	for v := range transmitting {
		if rng.Bernoulli(0.5) {
			transmitting[v] = true
			payload[v] = v
		}
	}
	hear := make([]Message, 25)
	var st StepStats
	deliveryPass(g, transmitting, payload, hear, &st, false)
	deliveries, collisions := 0, 0
	for v := 0; v < 25; v++ {
		if transmitting[v] {
			continue
		}
		count := 0
		for _, w := range g.Neighbors(v) {
			if transmitting[w] {
				count++
			}
		}
		if count == 1 {
			deliveries++
		}
		if count >= 2 {
			collisions++
		}
	}
	if st.Deliveries != deliveries || st.Collisions != collisions {
		t.Fatalf("stats (%d,%d) vs recount (%d,%d)",
			st.Deliveries, st.Collisions, deliveries, collisions)
	}
}
