package radio

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// runDelivery drives the engine's delivery core for one synthetic step: it
// loads the given transmit set, runs the PHY resolve pass over the
// frontier, hands a copy of hear to the caller, then resets the step and
// verifies the between-steps invariant (all engine scratch re-zeroed; a
// second resolve must see an empty medium).
func runDelivery(t *testing.T, g *graph.Graph, transmitting []bool, payload []Message, cd bool) ([]Message, StepStats) {
	t.Helper()
	n := g.N()
	opts := Options{PHY: phy.NewCollision()}
	if cd {
		opts.PHY = phy.NewCollisionCD()
	}
	e, err := newEngine(g, make([]Protocol, n), opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if transmitting[v] {
			e.payload[v] = payload[v]
			e.txList = append(e.txList, int32(v))
		}
	}
	st := StepStats{}
	e.frontier.Add(e.txList)
	e.resolveDeliveries(&st)
	hear := make([]Message, n)
	copy(hear, e.hear)
	e.clearTx(e.txList)
	e.txList = e.txList[:0]
	e.clearDeliveries()
	for v := 0; v < n; v++ {
		if e.frontier.Has(int32(v)) || e.payload[v] != nil || e.hear[v] != nil {
			t.Fatalf("scratch not re-zeroed at node %d after resetStep", v)
		}
	}
	if len(e.txList) != 0 {
		t.Fatal("txList not emptied")
	}
	// The model's own scratch must be clean too: resolving the empty
	// transmitter set must produce an empty outcome.
	var empty StepStats
	e.resolveDeliveries(&empty)
	if empty.Deliveries != 0 || empty.Collisions != 0 {
		t.Fatalf("model scratch not re-zeroed: empty step resolved to %+v", empty)
	}
	e.clearDeliveries()
	return hear, st
}

// TestDeliveryMatchesBruteForce checks the sparse touched-vertex delivery
// core against a direct transcription of the model's definition ("a
// listening node hears a message iff exactly one of its neighbors
// transmits") on random graphs with random transmit sets, with and without
// collision detection.
func TestDeliveryMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw, density uint8, cd bool) bool {
		rng := xrand.New(seed)
		n := int(nRaw%30) + 2
		g := graph.New(n)
		p := float64(density%90+5) / 100
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(p) {
					g.AddEdge(u, v)
				}
			}
		}
		transmitting := make([]bool, n)
		payload := make([]Message, n)
		for v := 0; v < n; v++ {
			if rng.Bernoulli(0.4) {
				transmitting[v] = true
				payload[v] = v
			}
		}
		hear, _ := runDelivery(t, g, transmitting, payload, cd)
		// Brute force per the definition.
		for v := 0; v < n; v++ {
			var want Message
			if !transmitting[v] {
				count, from := 0, -1
				for _, w := range g.Neighbors(v) {
					if transmitting[w] {
						count++
						from = int(w)
					}
				}
				if count == 1 {
					want = payload[from]
				} else if count >= 2 && cd {
					want = Collision
				}
			}
			if hear[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryStatsConsistent cross-checks the per-step counters against a
// recount from first principles.
func TestDeliveryStatsConsistent(t *testing.T) {
	rng := xrand.New(42)
	g := graph.New(25)
	for u := 0; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			if rng.Bernoulli(0.2) {
				g.AddEdge(u, v)
			}
		}
	}
	transmitting := make([]bool, 25)
	payload := make([]Message, 25)
	for v := range transmitting {
		if rng.Bernoulli(0.5) {
			transmitting[v] = true
			payload[v] = v
		}
	}
	_, st := runDelivery(t, g, transmitting, payload, false)
	deliveries, collisions := 0, 0
	for v := 0; v < 25; v++ {
		if transmitting[v] {
			continue
		}
		count := 0
		for _, w := range g.Neighbors(v) {
			if transmitting[w] {
				count++
			}
		}
		if count == 1 {
			deliveries++
		}
		if count >= 2 {
			collisions++
		}
	}
	if st.Deliveries != deliveries || st.Collisions != collisions {
		t.Fatalf("stats (%d,%d) vs recount (%d,%d)",
			st.Deliveries, st.Collisions, deliveries, collisions)
	}
}

// transcript is one run's externally observable behavior: per-node hashes
// of everything heard, the per-step stats stream, and the Result.
type transcript struct {
	hashes []uint64
	steps  []StepStats
	res    Result
}

// runTranscript executes one run with hash-recording random protocols.
func runTranscript(t *testing.T, g *graph.Graph, opts Options, until int) transcript {
	t.Helper()
	hashes := make([]uint64, g.N())
	factory := func(info NodeInfo) Protocol {
		rn := &randomNode{info: info, until: until}
		return &hashCapture{randomNode: rn, out: &hashes[info.Index]}
	}
	var steps []StepStats
	opts.OnStep = func(s StepStats) { steps = append(steps, s) }
	res, err := Run(g, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	return transcript{hashes: hashes, steps: steps, res: res}
}

// TestEnginesTranscriptIdentical is the engine differential test: across
// random graphs, seeds, shard counts, collision-detection settings and
// staggered wake-ups, the sequential and worker-pool engines must produce
// identical per-node transcripts, per-step stats, and results.
func TestEnginesTranscriptIdentical(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(60) + 5
		g := graph.New(n)
		p := 0.05 + 0.3*rng.Float64()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(p) {
					g.AddEdge(u, v)
				}
			}
		}
		opts := Options{
			MaxSteps:           40,
			Seed:               rng.Uint64(),
			CollisionDetection: trial%2 == 0,
		}
		if trial%3 == 0 {
			wake := make([]int, n)
			for v := range wake {
				wake[v] = rng.Intn(8)
			}
			opts.WakeAt = wake
		}
		want := runTranscript(t, g, opts, 30)
		for _, shards := range []int{1, 2, 4, 7} {
			o := opts
			o.Concurrent = true
			o.Shards = shards
			got := runTranscript(t, g, o, 30)
			if got.res != want.res {
				t.Fatalf("trial %d shards=%d: result %+v vs sequential %+v",
					trial, shards, got.res, want.res)
			}
			if len(got.steps) != len(want.steps) {
				t.Fatalf("trial %d shards=%d: %d step records vs %d",
					trial, shards, len(got.steps), len(want.steps))
			}
			for i := range want.steps {
				if got.steps[i] != want.steps[i] {
					t.Fatalf("trial %d shards=%d: step %d stats %+v vs %+v",
						trial, shards, i, got.steps[i], want.steps[i])
				}
			}
			for v := range want.hashes {
				if got.hashes[v] != want.hashes[v] {
					t.Fatalf("trial %d shards=%d: node %d transcript differs",
						trial, shards, v)
				}
			}
		}
	}
}

// TestPoolShardCountInvariance pins the worker-count resolution rule.
func TestPoolShardCountInvariance(t *testing.T) {
	opts := &Options{}
	if w := workerCount(opts, 1000); w < 1 {
		t.Fatalf("default worker count %d", w)
	}
	opts.Shards = 4
	if w := workerCount(opts, 1000); w != 4 {
		t.Fatalf("explicit shards ignored: %d", w)
	}
	if w := workerCount(opts, 2); w != 2 {
		t.Fatalf("worker count must not exceed n: %d", w)
	}
}
