package radio

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/xrand"
)

// steadyMsg is boxed once so transmitting it allocates nothing.
var steadyMsg Message = int64(42)

// steadyNode transmits a preallocated message with probability 1/2 each
// step; neither Act nor Deliver allocates.
type steadyNode struct {
	rng    *xrand.RNG
	step   int
	budget int
}

func (s *steadyNode) Act(step int) Action {
	if s.rng.Bernoulli(0.5) {
		return Transmit(steadyMsg)
	}
	return Listen()
}
func (s *steadyNode) Deliver(step int, msg Message) { s.step = step + 1 }
func (s *steadyNode) Done() bool                    { return s.step >= s.budget }

// TestSequentialStepZeroAlloc asserts the sequential step loop performs
// zero heap allocations per step after warm-up: total allocations of a run
// must not grow with MaxSteps. Run-construction costs (protocol instances,
// RNG splits, engine scratch) are identical for both run lengths and cancel
// out; any per-step allocation would surface as a positive difference
// across the extra 256 steps.
func TestSequentialStepZeroAlloc(t *testing.T) {
	g := gen.Grid(16, 16)
	g.Freeze() // build the CSR cache outside the measured region
	runSteps := func(steps int) {
		factory := func(info NodeInfo) Protocol {
			return &steadyNode{rng: info.RNG, budget: steps}
		}
		if _, err := Run(g, factory, Options{MaxSteps: steps, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { runSteps(64) })
	long := testing.AllocsPerRun(5, func() { runSteps(320) })
	if long > short {
		t.Fatalf("sequential step loop allocates: %.1f allocs over 256 extra steps (%.1f vs %.1f per run)",
			long-short, long, short)
	}
}

// TestSequentialStepZeroAllocWithRetirement repeats the check on the sparse
// regime the active list exists for: most nodes retire at step 0 and a few
// keep transmitting, so compaction paths are exercised too.
func TestSequentialStepZeroAllocWithRetirement(t *testing.T) {
	g := gen.Grid(16, 16)
	g.Freeze()
	runSteps := func(steps int) {
		factory := func(info NodeInfo) Protocol {
			budget := steps
			if info.Index >= 16 {
				budget = 0 // retires immediately
			}
			return &steadyNode{rng: info.RNG, budget: budget}
		}
		if _, err := Run(g, factory, Options{MaxSteps: steps, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { runSteps(64) })
	long := testing.AllocsPerRun(5, func() { runSteps(320) })
	if long > short {
		t.Fatalf("sparse step loop allocates: %.1f allocs over 256 extra steps", long-short)
	}
}
