package radio

import (
	"math"
	"testing"

	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// steadyMsg is boxed once so transmitting it allocates nothing.
var steadyMsg Message = int64(42)

// steadyNode transmits a preallocated message with probability 1/2 each
// step; neither Act nor Deliver allocates.
type steadyNode struct {
	rng    *xrand.RNG
	step   int
	budget int
}

func (s *steadyNode) Act(step int) Action {
	if s.rng.Bernoulli(0.5) {
		return Transmit(steadyMsg)
	}
	return Listen()
}
func (s *steadyNode) Deliver(step int, msg Message) { s.step = step + 1 }
func (s *steadyNode) Done() bool                    { return s.step >= s.budget }

// TestSequentialStepZeroAlloc asserts the sequential step loop performs
// zero heap allocations per step after warm-up: total allocations of a run
// must not grow with MaxSteps. Run-construction costs (protocol instances,
// RNG splits, engine scratch) are identical for both run lengths and cancel
// out; any per-step allocation would surface as a positive difference
// across the extra 256 steps.
func TestSequentialStepZeroAlloc(t *testing.T) {
	g := gen.Grid(16, 16)
	g.Freeze() // build the CSR cache outside the measured region
	runSteps := func(steps int) {
		factory := func(info NodeInfo) Protocol {
			return &steadyNode{rng: info.RNG, budget: steps}
		}
		if _, err := Run(g, factory, Options{MaxSteps: steps, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { runSteps(64) })
	long := testing.AllocsPerRun(5, func() { runSteps(320) })
	if long > short {
		t.Fatalf("sequential step loop allocates: %.1f allocs over 256 extra steps (%.1f vs %.1f per run)",
			long-short, long, short)
	}
}

// TestSequentialStepZeroAllocWithRetirement repeats the check on the sparse
// regime the active list exists for: most nodes retire at step 0 and a few
// keep transmitting, so compaction paths are exercised too.
func TestSequentialStepZeroAllocWithRetirement(t *testing.T) {
	g := gen.Grid(16, 16)
	g.Freeze()
	runSteps := func(steps int) {
		factory := func(info NodeInfo) Protocol {
			budget := steps
			if info.Index >= 16 {
				budget = 0 // retires immediately
			}
			return &steadyNode{rng: info.RNG, budget: budget}
		}
		if _, err := Run(g, factory, Options{MaxSteps: steps, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { runSteps(64) })
	long := testing.AllocsPerRun(5, func() { runSteps(320) })
	if long > short {
		t.Fatalf("sparse step loop allocates: %.1f allocs over 256 extra steps", long-short)
	}
}

// allocProbeSink is package-level so the probe callback below captures
// nothing: a capturing closure would itself escape to the heap and muddy
// the differential with construction-side allocations.
var allocProbeSink int

func allocProbeCB(s *ProbeSample) { allocProbeSink += s.Active }

// TestSequentialStepZeroAllocProbeArmed repeats the zero-alloc check with
// Options.Probe armed over a dynamic topology whose boundary count grows
// with the run length (one epoch per 8 steps): the long run fires 40 probe
// samples to the short run's 8, so any allocation inside fireProbe — or in
// the boundary path it rides on — surfaces as a positive difference against
// the probe-less baseline over the same schedules. This pins the DESIGN.md
// §10 contract that instrumentation is free when off AND alloc-free when on.
func TestSequentialStepZeroAllocProbeArmed(t *testing.T) {
	g := gen.Grid(16, 16)
	g.Freeze()
	runSteps := func(steps int, probed bool) {
		// Built inside the measured region, but its allocations are
		// identical for the probed and bare runs, so they cancel.
		sched, err := dyn.Churn(g, steps/8, 8, 0.3, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		factory := func(info NodeInfo) Protocol {
			return &steadyNode{rng: info.RNG, budget: steps}
		}
		opts := Options{MaxSteps: steps, Seed: 7, Topology: sched}
		if probed {
			opts.Probe = allocProbeCB
		}
		if _, err := Run(g, factory, opts); err != nil {
			t.Fatal(err)
		}
	}
	for _, steps := range []int{64, 320} {
		probed := testing.AllocsPerRun(5, func() { runSteps(steps, true) })
		bare := testing.AllocsPerRun(5, func() { runSteps(steps, false) })
		if probed > bare {
			t.Fatalf("arming Probe costs %.1f allocs over %d boundaries (%.1f vs %.1f per run)",
				probed-bare, steps/8, probed, bare)
		}
	}
}

// TestSequentialStepZeroAllocPackedCSR repeats the differential on the
// graph-free RunCSR path with the adjacency delta-packed: the collision
// model's neighbor cursor must decode blocks into its Sync-time scratch, so
// the step loop stays allocation-free even though every neighbor list is now
// varint-encoded. The packed snapshot and cursor scratch are built per run
// (construction side) and cancel between the run lengths. Deliberately
// placed after the ProbeArmed differential above: that test compares two
// absolute allocation counts (probed vs bare) and is sensitive to the heap
// state earlier tests in this file leave behind — running this one before
// it shifts a GC boundary into exactly one of its two measured regions.
func TestSequentialStepZeroAllocPackedCSR(t *testing.T) {
	csr := gen.Grid(16, 16).Freeze().Pack()
	if !csr.IsPacked() {
		t.Fatal("Pack returned a flat snapshot")
	}
	runSteps := func(steps int) {
		factory := func(info NodeInfo) Protocol {
			return &steadyNode{rng: info.RNG, budget: steps}
		}
		if _, err := RunCSR(csr, factory, Options{MaxSteps: steps, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { runSteps(64) })
	long := testing.AllocsPerRun(5, func() { runSteps(320) })
	if long > short {
		t.Fatalf("packed-CSR step loop allocates: %.1f allocs over 256 extra steps (%.1f vs %.1f per run)",
			long-short, long, short)
	}
}

// sparseNode transmits a preallocated message with probability 1/32 per
// step — the sparse Decay-like regime the SINR grid bucketing serves.
type sparseNode struct {
	rng    *xrand.RNG
	step   int
	budget int
}

func (s *sparseNode) Act(step int) Action {
	if s.rng.Bernoulli(1.0 / 32) {
		return Transmit(steadyMsg)
	}
	return Listen()
}
func (s *sparseNode) Deliver(step int, msg Message) { s.step = step + 1 }
func (s *sparseNode) Done() bool                    { return s.step >= s.budget }

// TestSequentialSINRStepZeroAllocN4096 pins zero per-step allocations for
// the grid-bucketed SINR path at n=4096 — the scale where a BENCH_engine
// report once showed 7 allocs/op. That reading was a measurement artifact
// (the bench reset its timer before engine construction, so thousands of
// one-time construction allocs amortized over a small iteration count), but
// the invariant it appeared to break is real and engine-sized state makes
// it easy to regress: this test holds it directly, with construction costs
// cancelling between the two run lengths exactly as in the tests above.
func TestSequentialSINRStepZeroAllocN4096(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4096 SINR runs are slow; skipped with -short")
	}
	const n = 4096
	// The canonical phy:sinr deployment density: average degree ~8 at unit
	// decode range. Connectivity is irrelevant here.
	side := math.Sqrt(float64(n) * math.Pi / 8)
	pts := gen.UniformPoints(n, 2, side, xrand.New(3))
	params := phy.SINRParams{}.WithDefaults()
	g := gen.SINRConnectivity(pts, params)
	g.Freeze()
	runSteps := func(steps int) {
		model, err := phy.NewSINR(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		factory := func(info NodeInfo) Protocol {
			return &sparseNode{rng: info.RNG, budget: steps}
		}
		if _, err := Run(g, factory, Options{MaxSteps: steps, Seed: 7, PHY: model}); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(3, func() { runSteps(32) })
	long := testing.AllocsPerRun(3, func() { runSteps(160) })
	if long > short {
		t.Fatalf("SINR step loop allocates at n=4096: %.1f allocs over 128 extra steps (%.1f vs %.1f per run)",
			long-short, long, short)
	}
}
