package radio

import (
	"math"
	"testing"

	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// probeWorkload: a churned grid with boundaries every 8 steps, steadyNode
// protocols that run the full budget.
func probeWorkload(t *testing.T, steps int) (*dyn.Schedule, Factory, Options) {
	t.Helper()
	g := gen.Grid(8, 8)
	sched, err := dyn.Churn(g, steps/8, 8, 0.3, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	factory := func(info NodeInfo) Protocol {
		return &steadyNode{rng: info.RNG, budget: steps}
	}
	return sched, factory, Options{MaxSteps: steps, Seed: 7, Topology: sched}
}

func runProbed(t *testing.T, concurrent bool) (Result, []ProbeSample) {
	t.Helper()
	const steps = 40
	sched, factory, opts := probeWorkload(t, steps)
	g := gen.Grid(8, 8)
	var samples []ProbeSample
	opts.Concurrent = concurrent
	opts.Probe = func(s *ProbeSample) { samples = append(samples, *s) } // copy: sample is reused
	res, err := Run(g, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = sched
	return res, samples
}

// TestProbeFiresAtBoundariesAndFinal asserts the probe contract on both
// engines: one sample per epoch boundary plus one final sample, cumulative
// counters matching Result, windows covering the run exactly.
func TestProbeFiresAtBoundariesAndFinal(t *testing.T) {
	for _, tc := range []struct {
		name       string
		concurrent bool
	}{{"sequential", false}, {"pool", true}} {
		t.Run(tc.name, func(t *testing.T) {
			res, samples := runProbed(t, tc.concurrent)
			// Boundaries at 8,16,24,32 plus the final sample at res.Steps.
			if len(samples) != 5 {
				t.Fatalf("got %d samples, want 5 (4 boundaries + final)", len(samples))
			}
			for i, s := range samples[:4] {
				wantStep := (i + 1) * 8
				if s.Step != wantStep || s.Final {
					t.Fatalf("sample %d: step=%d final=%v, want boundary step %d", i, s.Step, s.Final, wantStep)
				}
				if s.WindowSteps != 8 {
					t.Fatalf("sample %d: window=%d, want 8", i, s.WindowSteps)
				}
				if s.Active != 64 {
					t.Fatalf("sample %d: active=%d, want 64 (nobody retires mid-run)", i, s.Active)
				}
			}
			last := samples[4]
			if !last.Final || last.Step != res.Steps {
				t.Fatalf("last sample: step=%d final=%v, want final at %d", last.Step, last.Final, res.Steps)
			}
			if last.Transmissions != res.Transmissions || last.Deliveries != res.Deliveries || last.Collisions != res.Collisions {
				t.Fatalf("final sample counters %+v do not match result %+v", last, res)
			}
			// Windows tile the run: 4×8 boundary windows + the final window.
			total := 0
			for _, s := range samples {
				total += s.WindowSteps
			}
			if total != res.Steps {
				t.Fatalf("windows sum to %d steps, run had %d", total, res.Steps)
			}
			// AvgFrontier over all windows reconstructs total transmissions.
			var tx float64
			for _, s := range samples {
				tx += s.AvgFrontier * float64(s.WindowSteps)
			}
			if math.Abs(tx-float64(res.Transmissions)) > 1e-6 {
				t.Fatalf("AvgFrontier windows reconstruct %v transmissions, result has %d", tx, res.Transmissions)
			}
		})
	}
}

// TestProbeDoesNotChangeTranscript: arming the probe must not perturb the
// run — same Result, same per-step stats.
func TestProbeDoesNotChangeTranscript(t *testing.T) {
	run := func(probe bool) (Result, []StepStats) {
		const steps = 40
		_, factory, opts := probeWorkload(t, steps)
		g := gen.Grid(8, 8)
		var trace []StepStats
		opts.OnStep = func(st StepStats) { trace = append(trace, st) }
		if probe {
			opts.Probe = func(*ProbeSample) {}
		}
		res, err := Run(g, factory, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, trace
	}
	resOff, traceOff := run(false)
	resOn, traceOn := run(true)
	if resOff != resOn {
		t.Fatalf("probe changed the result: %+v vs %+v", resOff, resOn)
	}
	if len(traceOff) != len(traceOn) {
		t.Fatalf("probe changed the step count: %d vs %d", len(traceOff), len(traceOn))
	}
	for i := range traceOff {
		if traceOff[i] != traceOn[i] {
			t.Fatalf("step %d stats diverge with probe armed: %+v vs %+v", i, traceOff[i], traceOn[i])
		}
	}
}

// TestProbeStaticRunFinalOnly: static runs have no epoch boundaries; the
// probe still delivers exactly one final sample.
func TestProbeStaticRunFinalOnly(t *testing.T) {
	g := gen.Grid(8, 8)
	var samples []ProbeSample
	factory := func(info NodeInfo) Protocol {
		return &steadyNode{rng: info.RNG, budget: 32}
	}
	res, err := Run(g, factory, Options{
		MaxSteps: 32, Seed: 7,
		Probe: func(s *ProbeSample) { samples = append(samples, *s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || !samples[0].Final || samples[0].Step != res.Steps {
		t.Fatalf("static run: got %d samples (%+v), want one final at step %d", len(samples), samples, res.Steps)
	}
	if samples[0].HasPHY {
		t.Fatal("collision model reports no PHY stats; HasPHY should be false")
	}
}

// TestProbeReportsSINRStats: under the SINR model the sample carries the
// candidate-arena stats through phy.StatsSource.
func TestProbeReportsSINRStats(t *testing.T) {
	const n = 64
	side := math.Sqrt(float64(n) * math.Pi / 8)
	pts := gen.UniformPoints(n, 2, side, xrand.New(3))
	params := phy.SINRParams{}.WithDefaults()
	g := gen.SINRConnectivity(pts, params)
	model, err := phy.NewSINR(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	var last ProbeSample
	factory := func(info NodeInfo) Protocol {
		return &steadyNode{rng: info.RNG, budget: 32}
	}
	if _, err := Run(g, factory, Options{
		MaxSteps: 32, Seed: 7, PHY: model,
		Probe: func(s *ProbeSample) { last = *s },
	}); err != nil {
		t.Fatal(err)
	}
	if !last.HasPHY {
		t.Fatal("SINR model implements phy.StatsSource; HasPHY should be true")
	}
	if last.PHY.ArenaCap <= 0 {
		t.Fatalf("arena cap = %d, want > 0", last.PHY.ArenaCap)
	}
	if last.PHY.ArenaHighWater <= 0 {
		t.Fatalf("arena high-water = %d, want > 0 under a steady 50%% transmit load", last.PHY.ArenaHighWater)
	}
}
