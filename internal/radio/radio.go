// Package radio simulates the ad-hoc radio network model of the paper (§1.1).
//
// Time is divided into synchronous time-steps. In each step every awake node
// either transmits a message or listens. A listening node hears a message iff
// exactly one of its neighbors transmits in that step; with zero or with two
// or more transmitting neighbors it hears nothing, and it cannot distinguish
// the two cases (no collision detection). A transmitting node hears nothing.
//
// The model is ad-hoc: protocol code receives only linear upper estimates of
// the global parameters n, D and α plus a private randomness source — never
// the graph, its own degree, or its neighbors. All nodes wake up in step 0
// (synchronous wake-up).
//
// Two engines with identical semantics are provided: a fast sequential
// engine, and a concurrent engine running one goroutine per node with
// two-phase barriers per time-step. A differential test asserts they produce
// identical transcripts for identical seeds.
package radio

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Message is an arbitrary protocol payload. Protocols compare messages by
// their own conventions (the paper only requires a consistent total order
// for Compete, which implementations provide themselves).
type Message any

// Collision is the marker delivered to listeners with two or more
// transmitting neighbors when Options.CollisionDetection is on. The paper's
// algorithms never rely on it (its model is without collision detection,
// §1.1); it exists for the §1.5.2 comparisons of what CD buys.
type collisionMarker struct{}

// Collision is the sentinel value (see Options.CollisionDetection).
var Collision Message = collisionMarker{}

// IsCollision reports whether msg is the collision marker.
func IsCollision(msg Message) bool {
	_, ok := msg.(collisionMarker)
	return ok
}

// Action is a node's choice for one time-step.
type Action struct {
	// Transmit is true to broadcast Msg to all neighbors this step;
	// false to listen.
	Transmit bool
	// Msg is the payload sent when Transmit is true.
	Msg Message
}

// Listen is the listening action.
func Listen() Action { return Action{} }

// Transmit returns a transmitting action carrying msg.
func Transmit(msg Message) Action { return Action{Transmit: true, Msg: msg} }

// Protocol is the per-node state machine interface. The engine calls, for
// every time-step in order: Act on every live node, then Deliver on every
// live node (with the received message, or nil when nothing was heard —
// including always for transmitters). A node whose Done returns true before
// a step neither transmits nor receives for the remainder of the run.
type Protocol interface {
	Act(step int) Action
	Deliver(step int, msg Message)
	Done() bool
}

// NodeInfo is everything a node may legitimately know at wake-up in the
// ad-hoc model: upper estimates of the graph parameters and a private RNG.
// Index identifies the node to the engine only; protocols must not treat it
// as a network identity (they draw random IDs instead, §1.1).
type NodeInfo struct {
	Index int
	N     int // linear upper estimate of the node count
	D     int // linear upper estimate of the diameter
	Alpha int // polynomial estimate of the independence number
	RNG   *xrand.RNG
}

// Factory constructs the protocol instance for one node.
type Factory func(info NodeInfo) Protocol

// StepStats aggregates one step's activity.
type StepStats struct {
	Step       int
	Transmits  int
	Deliveries int
	Collisions int // listeners with ≥2 transmitting neighbors
}

// Options configures a simulation run.
type Options struct {
	// MaxSteps bounds the run; required (>0).
	MaxSteps int
	// Seed seeds the experiment; per-node RNGs are split from it.
	Seed uint64
	// N, D, Alpha override the estimates given to nodes. Zero values are
	// replaced by the true graph values (the model allows exact knowledge;
	// protocols must tolerate upper estimates, which tests exercise).
	N, D, Alpha int
	// Concurrent selects the goroutine-per-node engine.
	Concurrent bool
	// OnStep, when non-nil, observes each step's statistics.
	OnStep func(StepStats)
	// WakeAt, when non-nil (length n), staggers wake-up: node v is dormant
	// — neither acting nor receiving, with its local clock frozen — until
	// step WakeAt[v]. Nil means synchronous wake-up at step 0, the paper's
	// model (§1.1). Experiment E15 uses this to show which guarantees
	// depend on the synchronous-wake-up assumption.
	WakeAt []int
	// CollisionDetection, when true, delivers the Collision marker to
	// listeners with ≥2 transmitting neighbors instead of silence — the
	// stronger model of §1.5.2. Off (the paper's model) by default.
	CollisionDetection bool
}

// Result summarizes a run.
type Result struct {
	// Steps is the number of time-steps executed.
	Steps int
	// AllDone reports whether every node halted before MaxSteps.
	AllDone bool
	// Transmissions counts transmit actions over the whole run.
	Transmissions int64
	// Deliveries counts successful single-transmitter receptions.
	Deliveries int64
	// Collisions counts listener-steps with ≥2 transmitting neighbors.
	Collisions int64
}

// Run simulates the protocol on g until all nodes are done or MaxSteps is
// reached.
func Run(g *graph.Graph, factory Factory, opts Options) (Result, error) {
	if opts.MaxSteps <= 0 {
		return Result{}, fmt.Errorf("radio: MaxSteps must be positive, got %d", opts.MaxSteps)
	}
	nodes, err := buildNodes(g, factory, opts)
	if err != nil {
		return Result{}, err
	}
	if opts.WakeAt != nil && len(opts.WakeAt) != g.N() {
		return Result{}, fmt.Errorf("radio: WakeAt has %d entries for %d nodes", len(opts.WakeAt), g.N())
	}
	if opts.Concurrent {
		return runConcurrent(g, nodes, opts)
	}
	return runSequential(g, nodes, opts)
}

// awake reports whether node v participates at the given step.
func awake(opts Options, v, step int) bool {
	return opts.WakeAt == nil || step >= opts.WakeAt[v]
}

func buildNodes(g *graph.Graph, factory Factory, opts Options) ([]Protocol, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("radio: empty graph")
	}
	estN, estD, estAlpha := opts.N, opts.D, opts.Alpha
	if estN <= 0 {
		estN = n
	}
	if estD <= 0 {
		d, err := g.DiameterApprox()
		if err != nil {
			// Disconnected graphs are allowed for MIS; use n as the bound.
			d = n
		}
		if d < 1 {
			d = 1
		}
		estD = d
	}
	if estAlpha <= 0 {
		estAlpha = estN // trivial upper bound α ≤ n
	}
	root := xrand.New(opts.Seed)
	nodes := make([]Protocol, n)
	for v := 0; v < n; v++ {
		nodes[v] = factory(NodeInfo{
			Index: v,
			N:     estN,
			D:     estD,
			Alpha: estAlpha,
			RNG:   root.Split(uint64(v)),
		})
		if nodes[v] == nil {
			return nil, fmt.Errorf("radio: factory returned nil protocol for node %d", v)
		}
	}
	return nodes, nil
}

// deliveryPass computes, given the transmit decisions for one step, the
// message (if any) each node receives, using the exactly-one-neighbor rule.
// hear[v] stays nil for silence. Counts are accumulated into st.
func deliveryPass(g *graph.Graph, transmitting []bool, payload []Message, hear []Message, st *StepStats, cd bool) {
	n := g.N()
	counts := make([]int8, n)
	from := make([]int32, n)
	for v := 0; v < n; v++ {
		hear[v] = nil
		if !transmitting[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if counts[w] < 2 {
				counts[w]++
			}
			from[w] = int32(v)
		}
	}
	for v := 0; v < n; v++ {
		if transmitting[v] {
			continue // transmitters hear nothing
		}
		switch counts[v] {
		case 1:
			hear[v] = payload[from[v]]
			st.Deliveries++
		case 2:
			st.Collisions++
			if cd {
				hear[v] = Collision
			}
		}
	}
}

func runSequential(g *graph.Graph, nodes []Protocol, opts Options) (Result, error) {
	n := g.N()
	var res Result
	transmitting := make([]bool, n)
	payload := make([]Message, n)
	hear := make([]Message, n)
	live := make([]bool, n)
	for step := 0; step < opts.MaxSteps; step++ {
		anyLive := false
		for v := 0; v < n; v++ {
			live[v] = !nodes[v].Done() && awake(opts, v, step)
			// Dormant nodes still keep the run alive until they wake.
			anyLive = anyLive || live[v] || !awake(opts, v, step)
		}
		if !anyLive {
			res.AllDone = true
			break
		}
		st := StepStats{Step: step}
		for v := 0; v < n; v++ {
			transmitting[v] = false
			payload[v] = nil
			if !live[v] {
				continue
			}
			a := nodes[v].Act(step)
			if a.Transmit {
				transmitting[v] = true
				payload[v] = a.Msg
				st.Transmits++
			}
		}
		deliveryPass(g, transmitting, payload, hear, &st, opts.CollisionDetection)
		for v := 0; v < n; v++ {
			if live[v] {
				nodes[v].Deliver(step, hear[v])
			}
		}
		res.Steps = step + 1
		res.Transmissions += int64(st.Transmits)
		res.Deliveries += int64(st.Deliveries)
		res.Collisions += int64(st.Collisions)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	if !res.AllDone {
		allDone := true
		for _, p := range nodes {
			if !p.Done() {
				allDone = false
				break
			}
		}
		res.AllDone = allDone
	}
	return res, nil
}

// runConcurrent executes the same semantics with one goroutine per node and
// two barriers per time-step (act phase, deliver phase). Nodes only touch
// their own protocol state, so the transcript is deterministic and equal to
// the sequential engine's for the same seed.
func runConcurrent(g *graph.Graph, nodes []Protocol, opts Options) (Result, error) {
	n := g.N()
	var res Result

	transmitting := make([]bool, n)
	payload := make([]Message, n)
	hear := make([]Message, n)
	live := make([]bool, n)

	actStart := make([]chan int, n)  // engine → node: run Act for step s
	deliverGo := make([]chan int, n) // engine → node: run Deliver for step s
	var phase sync.WaitGroup         // engine waits for all nodes per phase
	stop := make(chan struct{})      // engine → nodes: shut down
	var workers sync.WaitGroup       // engine waits for goroutine exit

	for v := 0; v < n; v++ {
		actStart[v] = make(chan int, 1)
		deliverGo[v] = make(chan int, 1)
		workers.Add(1)
		go func(v int) {
			defer workers.Done()
			for {
				select {
				case <-stop:
					return
				case step := <-actStart[v]:
					if live[v] {
						a := nodes[v].Act(step)
						transmitting[v] = a.Transmit
						if a.Transmit {
							payload[v] = a.Msg
						} else {
							payload[v] = nil
						}
					} else {
						transmitting[v] = false
						payload[v] = nil
					}
					phase.Done()
				case step := <-deliverGo[v]:
					if live[v] {
						nodes[v].Deliver(step, hear[v])
					}
					phase.Done()
				}
			}
		}(v)
	}
	defer func() {
		close(stop)
		workers.Wait()
	}()

	for step := 0; step < opts.MaxSteps; step++ {
		anyLive := false
		for v := 0; v < n; v++ {
			live[v] = !nodes[v].Done() && awake(opts, v, step)
			// Dormant nodes still keep the run alive until they wake.
			anyLive = anyLive || live[v] || !awake(opts, v, step)
		}
		if !anyLive {
			res.AllDone = true
			break
		}
		st := StepStats{Step: step}
		phase.Add(n)
		for v := 0; v < n; v++ {
			actStart[v] <- step
		}
		phase.Wait()
		for v := 0; v < n; v++ {
			if transmitting[v] {
				st.Transmits++
			}
		}
		deliveryPass(g, transmitting, payload, hear, &st, opts.CollisionDetection)
		phase.Add(n)
		for v := 0; v < n; v++ {
			deliverGo[v] <- step
		}
		phase.Wait()
		res.Steps = step + 1
		res.Transmissions += int64(st.Transmits)
		res.Deliveries += int64(st.Deliveries)
		res.Collisions += int64(st.Collisions)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	if !res.AllDone {
		allDone := true
		for _, p := range nodes {
			if !p.Done() {
				allDone = false
				break
			}
		}
		res.AllDone = allDone
	}
	return res, nil
}
