// Package radio simulates the ad-hoc radio network model of the paper (§1.1).
//
// Time is divided into synchronous time-steps. In each step every awake node
// either transmits a message or listens. A listening node hears a message iff
// exactly one of its neighbors transmits in that step; with zero or with two
// or more transmitting neighbors it hears nothing, and it cannot distinguish
// the two cases (no collision detection). A transmitting node hears nothing.
//
// The model is ad-hoc: protocol code receives only linear upper estimates of
// the global parameters n, D and α plus a private randomness source — never
// the graph, its own degree, or its neighbors. All nodes wake up in step 0
// (synchronous wake-up).
//
// Two engines with identical semantics are provided: a fast sequential
// engine whose step loop performs no heap allocations, and a sharded
// worker-pool engine where a small fixed pool of workers (GOMAXPROCS by
// default, see Options.Shards) each own a contiguous node range with two
// phase barriers per time-step. Both exploit
// transmission sparsity: per-step delivery cost is O(#transmitters + the
// listeners they can reach), not O(n), and nodes whose Done returns true are
// retired from a compacting active list and never polled again. Reception
// semantics — who decodes what given the step's transmitter set — are owned
// by a pluggable physical-layer model (internal/phy, Options.PHY): the
// paper's graph collision rule is the zero-overhead default, and the same
// engines run the collision-detection variant and geometric SINR physics. A
// differential test asserts the engines produce identical transcripts for
// identical seeds under every model; see DESIGN.md §3/§7 for the
// architecture and the determinism contract.
package radio

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/xrand"
)

// Message is an arbitrary protocol payload. Protocols compare messages by
// their own conventions (the paper only requires a consistent total order
// for Compete, which implementations provide themselves).
type Message any

// Collision is the marker delivered to listeners with two or more
// transmitting neighbors when Options.CollisionDetection is on. The paper's
// algorithms never rely on it (its model is without collision detection,
// §1.1); it exists for the §1.5.2 comparisons of what CD buys.
type collisionMarker struct{}

// Collision is the sentinel value (see Options.CollisionDetection).
var Collision Message = collisionMarker{}

// IsCollision reports whether msg is the collision marker.
func IsCollision(msg Message) bool {
	_, ok := msg.(collisionMarker)
	return ok
}

// Action is a node's choice for one time-step.
type Action struct {
	// Transmit is true to broadcast Msg to all neighbors this step;
	// false to listen.
	Transmit bool
	// Msg is the payload sent when Transmit is true.
	Msg Message
}

// Listen is the listening action.
func Listen() Action { return Action{} }

// Transmit returns a transmitting action carrying msg.
func Transmit(msg Message) Action { return Action{Transmit: true, Msg: msg} }

// Protocol is the per-node state machine interface. The engine calls, for
// every time-step in order: Act on every live node, then Deliver on every
// live node (with the received message, or nil when nothing was heard —
// including always for transmitters). A node whose Done returns true before
// a step neither transmits nor receives for the remainder of the run; the
// engines retire such a node permanently, so Done must be monotone (once
// true, always true) and side-effect free.
type Protocol interface {
	Act(step int) Action
	Deliver(step int, msg Message)
	Done() bool
}

// NodeInfo is everything a node may legitimately know at wake-up in the
// ad-hoc model: upper estimates of the graph parameters and a private RNG.
// Index identifies the node to the engine only; protocols must not treat it
// as a network identity (they draw random IDs instead, §1.1).
type NodeInfo struct {
	Index int
	N     int // linear upper estimate of the node count
	D     int // linear upper estimate of the diameter
	Alpha int // polynomial estimate of the independence number
	RNG   *xrand.RNG
}

// Factory constructs the protocol instance for one node.
type Factory func(info NodeInfo) Protocol

// StepStats aggregates one step's activity.
type StepStats struct {
	Step       int
	Transmits  int
	Deliveries int
	Collisions int // listeners with ≥2 transmitting neighbors
}

// Options configures a simulation run.
type Options struct {
	// MaxSteps bounds the run; required (>0).
	MaxSteps int
	// Seed seeds the experiment; per-node RNGs are split from it.
	Seed uint64
	// N, D, Alpha override the estimates given to nodes. Zero values are
	// replaced by the true graph values (the model allows exact knowledge;
	// protocols must tolerate upper estimates, which tests exercise).
	N, D, Alpha int
	// Concurrent selects the sharded worker-pool engine.
	Concurrent bool
	// Shards, when positive, sets the concurrent engine's worker count
	// directly (capped at n) — a testing/tuning knob that may oversubscribe
	// the CPUs. Zero selects min(GOMAXPROCS, n). Each worker owns one
	// contiguous node range; the transcript is independent of the shard
	// count (differential tests exercise several).
	Shards int
	// OnStep, when non-nil, observes each step's statistics.
	OnStep func(StepStats)
	// WakeAt, when non-nil (length n), staggers wake-up: node v is dormant
	// — neither acting nor receiving, with its local clock frozen — until
	// step WakeAt[v]. Nil means synchronous wake-up at step 0, the paper's
	// model (§1.1). Experiment E15 uses this to show which guarantees
	// depend on the synchronous-wake-up assumption.
	WakeAt []int
	// Topology, when non-nil, makes the run dynamic: the engines consult it
	// at epoch boundaries (and only there — between boundaries the step
	// loop stays zero-alloc) and deliver over the epoch's frozen topology
	// instead of g's. Every epoch must keep the node count equal to g.N();
	// dynamics are modeled as edges appearing and disappearing over a fixed
	// node set (a churned-out node is one with no incident edges — it keeps
	// acting, but transmits into the void and hears nothing). Protocols are
	// never told about epoch changes: the ad-hoc model's information hiding
	// extends to topology dynamics. The parameter estimates handed to nodes
	// (N, D, Alpha) are still derived from g, the epoch-0 graph, unless
	// overridden. internal/dyn builds deterministic schedules implementing
	// this interface; see DESIGN.md §5 for the epoch semantics and the
	// determinism contract.
	Topology Topology
	// Checkpoint, when non-nil, receives a resumable engine snapshot at
	// every topology epoch boundary (dynamic runs only — static runs have
	// no boundaries), captured before the boundary step's act phase. A
	// non-nil error aborts the run immediately with that error: a run must
	// not outpace a journal that failed to record it (and the chaos suite
	// injects worker death here). Requires every protocol to implement
	// Snapshotter. Nil — the default — adds zero allocations and one
	// comparison per epoch to the step loop (DESIGN.md §8).
	Checkpoint func(cp *Checkpoint) error
	// Snapshot, when non-nil, observes the same epoch-boundary engine
	// snapshots as Checkpoint, but advisorily: the hook returns nothing and
	// cannot abort the run. It exists for snapshot publication — seeding a
	// prefix cache (DESIGN.md §9) — where a failed publication costs future
	// resume depth, never correctness. When both Snapshot and Checkpoint are
	// armed they receive the same *Checkpoint value per boundary (one
	// capture serves both) and must treat it as immutable. Requires every
	// protocol to implement Snapshotter, like Checkpoint.
	Snapshot func(cp *Checkpoint)
	// Resume, when non-nil, starts the run from the given checkpoint
	// instead of step 0: protocol states are restored, the active list and
	// cumulative counters are reinstated, and the loop continues at
	// Resume.Step. The caller must supply the same graph, factory, seed,
	// topology, and PHY configuration the checkpoint was captured under;
	// the final Result is then byte-identical to the uninterrupted run's.
	// Checkpoints are engine-portable (sequential ↔ worker pool).
	Resume *Checkpoint
	// Probe, when non-nil, receives an advisory load sample at every
	// topology epoch boundary (immediately after any Checkpoint/Snapshot
	// capture) and once more after the run's final step. Like the other
	// boundary hooks it costs the step loop nothing when nil and nothing
	// but the sample fill when set — the engines reuse one ProbeSample, so
	// arming it keeps the zero-alloc step-loop contract (pinned by the
	// alloc regression tests). The sample is valid only for the duration
	// of the call; observers must copy out what they keep. Static runs
	// (no Topology) have no boundaries and receive only the final sample.
	// Probe is observational: it cannot abort the run and must not touch
	// engine state (DESIGN.md §10).
	Probe func(*ProbeSample)
	// PHY selects the physical-layer reception model (DESIGN.md §7). Nil
	// selects phy.NewCollision(), the paper's graph model (§1.1) — or
	// phy.NewCollisionCD() when the legacy CollisionDetection flag is set.
	// A Model instance is stateful per run and must not be shared between
	// concurrent runs.
	PHY phy.Model
	// CollisionDetection, when true, delivers the Collision marker to
	// listeners with ≥2 transmitting neighbors instead of silence — the
	// stronger model of §1.5.2.
	//
	// Deprecated: the flag predates the pluggable PHY layer and survives as
	// a shorthand for PHY: phy.NewCollisionCD(). Setting both is an error.
	CollisionDetection bool
}

// Topology is the dynamic-topology hook through which internal/dyn's epoch
// schedules — node churn, edge faults, partition/heal, waypoint mobility —
// reach the engines (DESIGN.md §5). Implementations must be pure:
// EpochAt(step) depends on step alone, is safe for concurrent callers, and
// returns the same snapshot every time it is asked about the same step —
// the engines rely on this for run-to-run reproducibility and for the
// sequential/worker-pool transcript equivalence. dyn.Schedule is the
// canonical implementation.
type Topology interface {
	// EpochAt returns the frozen topology in force at step and the first
	// step strictly after it at which the topology changes again
	// (nextChange < 0 when the topology is static from step on). The
	// engines call it once per epoch boundary, never per step.
	EpochAt(step int) (csr *graph.CSR, nextChange int)
}

// ProbeSample is the advisory load snapshot delivered to Options.Probe at
// epoch boundaries and once after the final step. Counter fields are
// cumulative over the run; rate fields cover the window since the previous
// sample. The engines reuse one sample across fires — copy out anything
// kept past the callback.
type ProbeSample struct {
	// Step is the boundary step (or, for the final sample, the number of
	// steps executed).
	Step int
	// Final marks the end-of-run sample.
	Final bool
	// Active is the current active-set size (nodes not yet retired).
	Active int
	// WindowSteps is the number of steps since the previous sample.
	WindowSteps int
	// StepsPerSec is the wall-clock step rate over the window (0 when the
	// window is empty or instantaneous).
	StepsPerSec float64
	// AvgFrontier is the mean per-step transmitter-frontier population over
	// the window.
	AvgFrontier float64
	// Transmissions/Deliveries/Collisions mirror Result, cumulative so far.
	Transmissions, Deliveries, Collisions int64
	// PHY carries the reception model's load stats when the model
	// implements phy.StatsSource (HasPHY reports whether it does).
	PHY    phy.Stats
	HasPHY bool
}

// Result summarizes a run.
type Result struct {
	// Steps is the number of time-steps executed.
	Steps int
	// AllDone reports whether every node halted before MaxSteps.
	AllDone bool
	// Transmissions counts transmit actions over the whole run.
	Transmissions int64
	// Deliveries counts successful single-transmitter receptions.
	Deliveries int64
	// Collisions counts listener-steps with ≥2 transmitting neighbors.
	Collisions int64
}

// Run simulates the protocol on g until all nodes are done or MaxSteps is
// reached.
func Run(g *graph.Graph, factory Factory, opts Options) (Result, error) {
	if g == nil {
		return Result{}, fmt.Errorf("radio: nil graph")
	}
	return run(g, g.N(), g.DiameterApprox, factory, opts)
}

// RunCSR simulates the protocol directly on a frozen CSR snapshot — the
// graph-free entry point of the million-node path (DESIGN.md §11): the
// streaming generators hand back a *graph.CSR (flat or packed) and the run
// never materializes adjacency-list form. The snapshot is installed as a
// single-epoch static Topology, so Options.Topology must be nil. Parameter
// estimates not overridden in opts are derived from the snapshot (N, a
// double-BFS diameter approximation, the trivial α ≤ n bound), exactly as
// Run derives them from g. Semantics, determinism, and the zero-alloc step
// loop are identical to Run on FromCSR(csr) — packed snapshots included,
// which the compact-adjacency engine tests pin against golden digests.
func RunCSR(csr *graph.CSR, factory Factory, opts Options) (Result, error) {
	if csr == nil {
		return Result{}, fmt.Errorf("radio: nil topology snapshot")
	}
	if opts.Topology != nil {
		return Result{}, fmt.Errorf("radio: RunCSR installs the snapshot as the run's topology; Options.Topology must be nil")
	}
	opts.Topology = staticCSR{csr}
	return run(nil, csr.N(), csr.DiameterApprox, factory, opts)
}

// staticCSR adapts one frozen snapshot to the Topology interface: a single
// epoch in force from step 0, static forever.
type staticCSR struct{ csr *graph.CSR }

// EpochAt implements Topology.
func (s staticCSR) EpochAt(step int) (*graph.CSR, int) { return s.csr, -1 }

// run is the engine dispatch shared by Run and RunCSR. g is nil on the
// graph-free path — the engines touch it only through newEngine, which
// freezes it solely when no Topology is installed.
func run(g *graph.Graph, n int, approxDiam func() (int, error), factory Factory, opts Options) (Result, error) {
	if opts.MaxSteps <= 0 {
		return Result{}, fmt.Errorf("radio: MaxSteps must be positive, got %d", opts.MaxSteps)
	}
	nodes, err := buildNodes(n, approxDiam, factory, opts)
	if err != nil {
		return Result{}, err
	}
	if opts.WakeAt != nil && len(opts.WakeAt) != n {
		return Result{}, fmt.Errorf("radio: WakeAt has %d entries for %d nodes", len(opts.WakeAt), n)
	}
	if opts.Topology != nil {
		csr, _ := opts.Topology.EpochAt(0)
		if csr == nil {
			return Result{}, fmt.Errorf("radio: Topology has no epoch at step 0")
		}
		if csr.N() != n {
			return Result{}, fmt.Errorf("radio: Topology epoch 0 has %d nodes for %d protocol nodes", csr.N(), n)
		}
	}
	if opts.PHY == nil {
		if opts.CollisionDetection {
			opts.PHY = phy.NewCollisionCD()
		} else {
			opts.PHY = phy.NewCollision()
		}
	} else if opts.CollisionDetection {
		return Result{}, fmt.Errorf("radio: CollisionDetection is folded into the PHY model; pass phy.NewCollisionCD() as Options.PHY instead of setting both")
	}
	if opts.Checkpoint != nil || opts.Snapshot != nil || opts.Resume != nil {
		if err := requireSnapshotters(nodes); err != nil {
			return Result{}, err
		}
	}
	if cp := opts.Resume; cp != nil {
		if cp.Step < 0 || cp.Step >= opts.MaxSteps {
			return Result{}, fmt.Errorf("radio: resume step %d outside [0, MaxSteps=%d)", cp.Step, opts.MaxSteps)
		}
	}
	if opts.Concurrent {
		return runPool(g, nodes, opts)
	}
	return runSequential(g, nodes, opts)
}

// awake reports whether node v participates at the given step.
func awake(opts *Options, v, step int) bool {
	return opts.WakeAt == nil || step >= opts.WakeAt[v]
}

func buildNodes(n int, approxDiam func() (int, error), factory Factory, opts Options) ([]Protocol, error) {
	if n == 0 {
		return nil, fmt.Errorf("radio: empty graph")
	}
	estN, estD, estAlpha := opts.N, opts.D, opts.Alpha
	if estN <= 0 {
		estN = n
	}
	if estD <= 0 {
		d, err := approxDiam()
		if err != nil {
			// Disconnected graphs are allowed for MIS; use n as the bound.
			d = n
		}
		if d < 1 {
			d = 1
		}
		estD = d
	}
	if estAlpha <= 0 {
		estAlpha = estN // trivial upper bound α ≤ n
	}
	root := xrand.New(opts.Seed)
	nodes := make([]Protocol, n)
	for v := 0; v < n; v++ {
		nodes[v] = factory(NodeInfo{
			Index: v,
			N:     estN,
			D:     estD,
			Alpha: estAlpha,
			RNG:   root.Split(uint64(v)),
		})
		if nodes[v] == nil {
			return nil, fmt.Errorf("radio: factory returned nil protocol for node %d", v)
		}
	}
	return nodes, nil
}
