package radio

import (
	"testing"

	"repro/internal/gen"
)

func TestWakeAtValidation(t *testing.T) {
	g := gen.Path(3)
	factory := func(info NodeInfo) Protocol { return newScriptNode(0, nil) }
	if _, err := Run(g, factory, Options{MaxSteps: 1, WakeAt: []int{0}}); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

// localNode acts on its *local* clock (number of Deliver calls seen), the
// way real protocols do: it transmits at local steps in transmitAt and halts
// after lastLocal local steps.
type localNode struct {
	transmitAt map[int]Message
	heard      map[int]Message // keyed by global step
	local      int
	lastLocal  int
}

func newLocalNode(lastLocal int, transmitAt map[int]Message) *localNode {
	return &localNode{transmitAt: transmitAt, heard: map[int]Message{}, lastLocal: lastLocal}
}

func (l *localNode) Act(step int) Action {
	if msg, ok := l.transmitAt[l.local]; ok {
		return Transmit(msg)
	}
	return Listen()
}

func (l *localNode) Deliver(step int, msg Message) {
	if msg != nil {
		l.heard[step] = msg
	}
	l.local++
}

func (l *localNode) Done() bool { return l.local > l.lastLocal }

func TestDormantNodesNeitherSendNorReceive(t *testing.T) {
	g := gen.Path(2)
	nodes := make([]*localNode, 2)
	factory := func(info NodeInfo) Protocol {
		// Each node transmits at its LOCAL step 0.
		nodes[info.Index] = newLocalNode(6, map[int]Message{0: info.Index})
		return nodes[info.Index]
	}
	// Node 1 sleeps through global steps 0..2 (its local step 0 is global 3).
	_, err := Run(g, factory, Options{MaxSteps: 12, WakeAt: []int{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 was dormant during node 0's transmission at global step 0.
	if len(nodes[1].heard) != 0 {
		t.Fatalf("dormant node heard %v", nodes[1].heard)
	}
	// Node 0 hears node 1's local step 0, which fires at global step 3.
	if nodes[0].heard[3] != 1 {
		t.Fatalf("node 0 heard %v, want node 1's message at global step 3", nodes[0].heard)
	}
	// The dormant node's local clock was frozen: after waking at 3 and
	// running to global step 11, it advanced exactly 9 local steps.
	if nodes[1].local > 9 {
		t.Fatalf("dormant node's clock ran: local=%d", nodes[1].local)
	}
}

func TestDormantNodeKeepsRunAlive(t *testing.T) {
	// Node 0 finishes after 3 local steps, but node 1 sleeps until step 10;
	// the run must not be declared AllDone before node 1 wakes and runs.
	g := gen.Path(2)
	factory := func(info NodeInfo) Protocol {
		return newLocalNode(2, nil)
	}
	res, err := Run(g, factory, Options{MaxSteps: 50, WakeAt: []int{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("run should finish once both nodes complete")
	}
	if res.Steps < 13 {
		t.Fatalf("run ended at %d, before the late waker ran its 3 local steps", res.Steps)
	}
}

func TestWakeAtBothEnginesAgree(t *testing.T) {
	g := gen.Grid(4, 5)
	wake := make([]int, g.N())
	for v := range wake {
		wake[v] = (v * 3) % 7
	}
	var hashes [2][]uint64
	for i, concurrent := range []bool{false, true} {
		hs := make([]uint64, g.N())
		factory := func(info NodeInfo) Protocol {
			rn := &randomNode{info: info, until: 30}
			return &hashCapture{randomNode: rn, out: &hs[info.Index]}
		}
		res, err := Run(g, factory, Options{MaxSteps: 60, Seed: 5, Concurrent: concurrent, WakeAt: wake})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDone {
			t.Fatal("incomplete")
		}
		hashes[i] = hs
	}
	for v := range hashes[0] {
		if hashes[0][v] != hashes[1][v] {
			t.Fatalf("engines diverge at node %d under staggered wake-up", v)
		}
	}
}
