package radio

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// scriptNode transmits according to a fixed per-step script and records
// everything it hears.
type scriptNode struct {
	transmitAt map[int]Message
	heard      map[int]Message
	lastStep   int
	step       int
}

func newScriptNode(lastStep int, transmitAt map[int]Message) *scriptNode {
	return &scriptNode{transmitAt: transmitAt, heard: map[int]Message{}, lastStep: lastStep}
}

func (s *scriptNode) Act(step int) Action {
	s.step = step
	if msg, ok := s.transmitAt[step]; ok {
		return Transmit(msg)
	}
	return Listen()
}

func (s *scriptNode) Deliver(step int, msg Message) {
	if msg != nil {
		s.heard[step] = msg
	}
}

func (s *scriptNode) Done() bool { return s.step >= s.lastStep }

func TestSingleTransmitterDelivers(t *testing.T) {
	g := gen.Star(4) // center 0, leaves 1..3
	nodes := make([]*scriptNode, 4)
	factory := func(info NodeInfo) Protocol {
		var script map[int]Message
		if info.Index == 0 {
			script = map[int]Message{0: "hello"}
		}
		nodes[info.Index] = newScriptNode(1, script)
		return nodes[info.Index]
	}
	res, err := Run(g, factory, Options{MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if nodes[v].heard[0] != "hello" {
			t.Fatalf("leaf %d did not hear the broadcast: %v", v, nodes[v].heard)
		}
	}
	if len(nodes[0].heard) != 0 {
		t.Fatal("transmitter should hear nothing")
	}
	if res.Deliveries != 3 || res.Transmissions != 1 || res.Collisions != 0 {
		t.Fatalf("stats %+v", res)
	}
}

func TestTwoTransmittersCollide(t *testing.T) {
	g := gen.Star(4)
	nodes := make([]*scriptNode, 4)
	factory := func(info NodeInfo) Protocol {
		var script map[int]Message
		if info.Index == 1 || info.Index == 2 {
			script = map[int]Message{0: info.Index}
		}
		nodes[info.Index] = newScriptNode(1, script)
		return nodes[info.Index]
	}
	res, err := Run(g, factory, Options{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes[0].heard) != 0 {
		t.Fatalf("center heard %v despite collision (no collision detection)", nodes[0].heard)
	}
	// Leaf 3 listens; its only transmitting neighbor is the center — which
	// is silent — so it hears nothing either.
	if len(nodes[3].heard) != 0 {
		t.Fatal("leaf 3 should hear nothing (transmitters are not its neighbors? they are not)")
	}
	if res.Collisions != 1 {
		t.Fatalf("want 1 collision at the center, got %d", res.Collisions)
	}
}

func TestNonNeighborDoesNotHear(t *testing.T) {
	g := gen.Path(3) // 0-1-2
	nodes := make([]*scriptNode, 3)
	factory := func(info NodeInfo) Protocol {
		var script map[int]Message
		if info.Index == 0 {
			script = map[int]Message{0: "x"}
		}
		nodes[info.Index] = newScriptNode(1, script)
		return nodes[info.Index]
	}
	if _, err := Run(g, factory, Options{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	if nodes[1].heard[0] != "x" {
		t.Fatal("neighbor 1 should hear")
	}
	if len(nodes[2].heard) != 0 {
		t.Fatal("node 2 is not adjacent to the transmitter and must hear nothing")
	}
}

func TestTransmitterWithTransmittingNeighborStillSends(t *testing.T) {
	// 0-1-2 path; 0 and 1 transmit simultaneously. 2 neighbors only 1 → hears 1's message.
	g := gen.Path(3)
	nodes := make([]*scriptNode, 3)
	factory := func(info NodeInfo) Protocol {
		var script map[int]Message
		if info.Index == 0 || info.Index == 1 {
			script = map[int]Message{0: info.Index}
		}
		nodes[info.Index] = newScriptNode(1, script)
		return nodes[info.Index]
	}
	if _, err := Run(g, factory, Options{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	if nodes[2].heard[0] != 1 {
		t.Fatalf("node 2 should hear node 1's message, heard %v", nodes[2].heard)
	}
	if len(nodes[0].heard) != 0 || len(nodes[1].heard) != 0 {
		t.Fatal("transmitters hear nothing")
	}
}

func TestDoneNodesGoSilent(t *testing.T) {
	g := gen.Path(2)
	// Node 0 would transmit at step 1 but halts after step 0.
	var n1 *scriptNode
	factory := func(info NodeInfo) Protocol {
		if info.Index == 0 {
			return newScriptNode(0, map[int]Message{1: "late"})
		}
		n1 = newScriptNode(5, nil)
		return n1
	}
	if _, err := Run(g, factory, Options{MaxSteps: 4}); err != nil {
		t.Fatal(err)
	}
	if len(n1.heard) != 0 {
		t.Fatalf("halted node transmitted: %v", n1.heard)
	}
}

func TestRunStopsWhenAllDone(t *testing.T) {
	g := gen.Clique(5)
	factory := func(info NodeInfo) Protocol { return newScriptNode(2, nil) }
	res, err := Run(g, factory, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("expected AllDone")
	}
	if res.Steps > 4 {
		t.Fatalf("ran %d steps, expected early stop", res.Steps)
	}
}

func TestRunErrors(t *testing.T) {
	g := gen.Path(2)
	if _, err := Run(g, func(NodeInfo) Protocol { return newScriptNode(0, nil) }, Options{}); err == nil {
		t.Fatal("want error for MaxSteps=0")
	}
	if _, err := Run(graph.New(0), func(NodeInfo) Protocol { return newScriptNode(0, nil) }, Options{MaxSteps: 1}); err == nil {
		t.Fatal("want error for empty graph")
	}
	if _, err := Run(g, func(NodeInfo) Protocol { return nil }, Options{MaxSteps: 1}); err == nil {
		t.Fatal("want error for nil protocol")
	}
}

func TestNodeInfoEstimates(t *testing.T) {
	g := gen.Path(8)
	var infos []NodeInfo
	factory := func(info NodeInfo) Protocol {
		infos = append(infos, info)
		return newScriptNode(0, nil)
	}
	if _, err := Run(g, factory, Options{MaxSteps: 1}); err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.N != 8 || info.D < 4 || info.D > 7 || info.Alpha != 8 {
			t.Fatalf("bad defaults %+v", info)
		}
		if info.RNG == nil {
			t.Fatal("nil RNG")
		}
	}
	// Overrides pass through unchanged.
	infos = nil
	_, err := Run(g, factory, Options{MaxSteps: 1, N: 100, D: 9, Alpha: 4})
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].N != 100 || infos[0].D != 9 || infos[0].Alpha != 4 {
		t.Fatalf("overrides ignored: %+v", infos[0])
	}
}

// randomNode transmits with probability 1/2 each step, recording a transcript
// hash of everything it hears — used for the engine differential test.
type randomNode struct {
	info  NodeInfo
	until int
	step  int
	hash  uint64
}

func (r *randomNode) Act(step int) Action {
	r.step = step
	if r.info.RNG.Bernoulli(0.5) {
		return Transmit(int64(r.info.Index*1000 + step))
	}
	return Listen()
}

func (r *randomNode) Deliver(step int, msg Message) {
	if msg != nil {
		v, _ := msg.(int64)
		r.hash = r.hash*1000003 + uint64(v) + uint64(step)
	}
}

func (r *randomNode) Done() bool { return r.step >= r.until }

func TestSequentialAndConcurrentEnginesMatch(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":   gen.Path(40),
		"clique": gen.Clique(25),
		"grid":   gen.Grid(6, 7),
	}
	for name, g := range graphs {
		var seqHash, conHash []uint64
		for _, concurrent := range []bool{false, true} {
			hashes := make([]uint64, g.N())
			factory := func(info NodeInfo) Protocol {
				rn := &randomNode{info: info, until: 50}
				return &hashCapture{randomNode: rn, out: &hashes[info.Index]}
			}
			res, err := Run(g, factory, Options{MaxSteps: 51, Seed: 77, Concurrent: concurrent})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDone {
				t.Fatalf("%s: not done", name)
			}
			if concurrent {
				conHash = hashes
			} else {
				seqHash = hashes
			}
		}
		for v := range seqHash {
			if seqHash[v] != conHash[v] {
				t.Fatalf("%s: node %d transcript differs between engines", name, v)
			}
		}
	}
}

// hashCapture copies the node's transcript hash out when it finishes.
type hashCapture struct {
	*randomNode
	out *uint64
}

func (h *hashCapture) Deliver(step int, msg Message) {
	h.randomNode.Deliver(step, msg)
	*h.out = h.randomNode.hash
}

func TestOnStepCallback(t *testing.T) {
	g := gen.Clique(3)
	var steps []StepStats
	factory := func(info NodeInfo) Protocol {
		var script map[int]Message
		if info.Index == 0 {
			script = map[int]Message{0: "a", 1: "b"}
		}
		return newScriptNode(1, script)
	}
	_, err := Run(g, factory, Options{MaxSteps: 2, OnStep: func(s StepStats) { steps = append(steps, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d step callbacks", len(steps))
	}
	if steps[0].Transmits != 1 || steps[0].Deliveries != 2 {
		t.Fatalf("step 0 stats %+v", steps[0])
	}
}
