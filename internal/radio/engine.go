package radio

import (
	"fmt"

	"repro/internal/graph"
)

// engine is the step-loop state shared by the sequential and worker-pool
// engines: the frozen CSR topology, the protocol instances, and reusable
// scratch buffers sized once at construction so the per-step loop allocates
// nothing. Under a dynamic topology (Options.Topology) csr is the snapshot
// of the current epoch and epochSync swaps it at epoch boundaries; the
// scratch buffers are indexed by node and the node count is fixed for the
// whole run, so they survive every epoch unchanged.
//
// Sparse-delivery invariants (DESIGN.md §3): between steps every scratch
// entry is at its zero value — transmitting[v]=false, payload[v]=nil,
// hear[v]=nil, counts[v]=0 — and txList/touched are empty. Each step dirties
// only the entries reachable from this step's transmitters (themselves plus
// their neighbors) and resetStep restores the invariant by re-zeroing
// exactly those entries, so a step with k transmitters of total degree d
// costs O(k + d) delivery work regardless of n.
type engine struct {
	csr       *graph.CSR
	topo      Topology // nil for static runs
	nextEpoch int      // step of the next topology change; -1 = static from here
	nodes     []Protocol
	opts      Options

	transmitting []bool    // transmitting[v]: v transmits this step
	payload      []Message // payload[v]: message v transmits
	hear         []Message // hear[v]: message v receives (nil = silence)
	counts       []int8    // transmitting-neighbor count, saturated at 2
	from         []int32   // some transmitting neighbor (valid when counts==1)
	txList       []int32   // this step's transmitters, ascending
	touched      []int32   // nodes with ≥1 transmitting neighbor this step
}

func newEngine(g *graph.Graph, nodes []Protocol, opts Options) *engine {
	n := len(nodes)
	e := &engine{
		topo:         opts.Topology,
		nextEpoch:    -1,
		nodes:        nodes,
		opts:         opts,
		transmitting: make([]bool, n),
		payload:      make([]Message, n),
		hear:         make([]Message, n),
		counts:       make([]int8, n),
		from:         make([]int32, n),
		txList:       make([]int32, 0, n),
		touched:      make([]int32, 0, n),
	}
	if e.topo != nil {
		e.csr, e.nextEpoch = e.topo.EpochAt(0)
	} else {
		e.csr = g.Freeze()
	}
	return e
}

// epochSync installs the topology in force at step when step crosses the
// next epoch boundary. Between boundaries it is a single comparison, so the
// per-step delivery cost stays amortized O(#tx + Σdeg); the Topology query
// (and any allocation inside the implementation) happens once per epoch.
// Both engines call it at the top of the step, before the act phase, so the
// epoch's first step already delivers over the new topology.
func (e *engine) epochSync(step int) {
	if e.nextEpoch < 0 || step < e.nextEpoch {
		return
	}
	csr, next := e.topo.EpochAt(step)
	if csr.N() != len(e.nodes) {
		// The Options.Topology contract fixes the node count for the whole
		// run; a shrinking or growing epoch would corrupt the scratch
		// arrays, so fail loudly rather than deliver garbage.
		panic(fmt.Sprintf("radio: Topology epoch at step %d has %d nodes, run has %d", step, csr.N(), len(e.nodes)))
	}
	e.csr, e.nextEpoch = csr, next
}

// actScan runs one step's act phase over a compacting active list: dormant
// nodes are kept but skipped, nodes observed awake with Done() true retire
// permanently, and every remaining node is polled, with transmitters
// recorded into the scratch arrays and appended to tx. It returns the
// compacted active list, the extended transmitter list, and the number of
// transmit actions. Shared by the sequential engine (whole node range) and
// each worker-pool shard (its own range) so the two engines cannot drift.
func (e *engine) actScan(active []int32, step int, tx []int32) (activeOut, txOut []int32, transmits int) {
	w := 0
	for _, v := range active {
		if !awake(&e.opts, int(v), step) {
			active[w] = v // dormant: stays active, keeps the run alive
			w++
			continue
		}
		if e.nodes[v].Done() {
			continue // retired for the remainder of the run
		}
		active[w] = v
		w++
		a := e.nodes[v].Act(step)
		if a.Transmit {
			e.transmitting[v] = true
			e.payload[v] = a.Msg
			tx = append(tx, v)
			transmits++
		}
	}
	return active[:w], tx, transmits
}

// deliverScan hands each live node on the list its received message (or
// silence). Shared by both engines, like actScan.
func (e *engine) deliverScan(active []int32, step int) {
	for _, v := range active {
		if awake(&e.opts, int(v), step) {
			e.nodes[v].Deliver(step, e.hear[v])
		}
	}
}

// newActive returns the initial active list 0..n-1. A node leaves the list
// permanently the first time it is observed awake with Done() true; dormant
// nodes (WakeAt in the future) stay on the list — they keep the run alive —
// but are neither polled nor delivered to.
func (e *engine) newActive() []int32 {
	active := make([]int32, len(e.nodes))
	for v := range active {
		active[v] = int32(v)
	}
	return active
}

// countTransmitters accumulates the delivery counts for one step's
// transmitter list: for every neighbor w of a transmitter, counts[w] rises
// (saturating at 2), from[w] records a transmitting neighbor, and w is
// recorded in touched on first contact. May be called several times per
// step (once per worker shard); lists must arrive in ascending global order
// for the engines to stay transcript-identical, though delivery itself only
// depends on the transmitter set.
func (e *engine) countTransmitters(tx []int32) {
	for _, v := range tx {
		for _, w := range e.csr.Neighbors(int(v)) {
			switch e.counts[w] {
			case 0:
				e.counts[w] = 1
				e.from[w] = v
				e.touched = append(e.touched, w)
			case 1:
				e.counts[w] = 2
			}
		}
	}
}

// resolveDeliveries applies the exactly-one-transmitting-neighbor rule to
// the touched set, filling hear and the step stats. Deliveries and
// collisions are counted for every touched listener — including retired or
// dormant nodes, which hear nothing but still appear in the channel-usage
// statistics, matching the model's global view of the medium.
func (e *engine) resolveDeliveries(st *StepStats) {
	cd := e.opts.CollisionDetection
	for _, u := range e.touched {
		if e.transmitting[u] {
			continue // transmitters hear nothing
		}
		if e.counts[u] == 1 {
			e.hear[u] = e.payload[e.from[u]]
			st.Deliveries++
		} else {
			st.Collisions++
			if cd {
				e.hear[u] = Collision
			}
		}
	}
}

// clearTx re-zeroes the per-transmitter scratch for one transmitter list.
func (e *engine) clearTx(tx []int32) {
	for _, v := range tx {
		e.transmitting[v] = false
		e.payload[v] = nil
	}
}

// clearTouched re-zeroes the per-listener scratch, restoring the between-
// steps invariant.
func (e *engine) clearTouched() {
	for _, u := range e.touched {
		e.counts[u] = 0
		e.hear[u] = nil
	}
	e.touched = e.touched[:0]
}

// finishAllDone is the end-of-run sweep when MaxSteps ran out: nodes off the
// active list are done by construction, so only the remainder is polled.
func finishAllDone(nodes []Protocol, active []int32) bool {
	for _, v := range active {
		if !nodes[v].Done() {
			return false
		}
	}
	return true
}
