package radio

import "repro/internal/graph"

// engine is the step-loop state shared by the sequential and worker-pool
// engines: the frozen CSR topology, the protocol instances, and reusable
// scratch buffers sized once at construction so the per-step loop allocates
// nothing.
//
// Sparse-delivery invariants (DESIGN.md §3): between steps every scratch
// entry is at its zero value — transmitting[v]=false, payload[v]=nil,
// hear[v]=nil, counts[v]=0 — and txList/touched are empty. Each step dirties
// only the entries reachable from this step's transmitters (themselves plus
// their neighbors) and resetStep restores the invariant by re-zeroing
// exactly those entries, so a step with k transmitters of total degree d
// costs O(k + d) delivery work regardless of n.
type engine struct {
	csr   *graph.CSR
	nodes []Protocol
	opts  Options

	transmitting []bool    // transmitting[v]: v transmits this step
	payload      []Message // payload[v]: message v transmits
	hear         []Message // hear[v]: message v receives (nil = silence)
	counts       []int8    // transmitting-neighbor count, saturated at 2
	from         []int32   // some transmitting neighbor (valid when counts==1)
	txList       []int32   // this step's transmitters, ascending
	touched      []int32   // nodes with ≥1 transmitting neighbor this step
}

func newEngine(g *graph.Graph, nodes []Protocol, opts Options) *engine {
	n := len(nodes)
	return &engine{
		csr:          g.Freeze(),
		nodes:        nodes,
		opts:         opts,
		transmitting: make([]bool, n),
		payload:      make([]Message, n),
		hear:         make([]Message, n),
		counts:       make([]int8, n),
		from:         make([]int32, n),
		txList:       make([]int32, 0, n),
		touched:      make([]int32, 0, n),
	}
}

// newActive returns the initial active list 0..n-1. A node leaves the list
// permanently the first time it is observed awake with Done() true; dormant
// nodes (WakeAt in the future) stay on the list — they keep the run alive —
// but are neither polled nor delivered to.
func (e *engine) newActive() []int32 {
	active := make([]int32, len(e.nodes))
	for v := range active {
		active[v] = int32(v)
	}
	return active
}

// countTransmitters accumulates the delivery counts for one step's
// transmitter list: for every neighbor w of a transmitter, counts[w] rises
// (saturating at 2), from[w] records a transmitting neighbor, and w is
// recorded in touched on first contact. May be called several times per
// step (once per worker shard); lists must arrive in ascending global order
// for the engines to stay transcript-identical, though delivery itself only
// depends on the transmitter set.
func (e *engine) countTransmitters(tx []int32) {
	for _, v := range tx {
		for _, w := range e.csr.Neighbors(int(v)) {
			switch e.counts[w] {
			case 0:
				e.counts[w] = 1
				e.from[w] = v
				e.touched = append(e.touched, w)
			case 1:
				e.counts[w] = 2
			}
		}
	}
}

// resolveDeliveries applies the exactly-one-transmitting-neighbor rule to
// the touched set, filling hear and the step stats. Deliveries and
// collisions are counted for every touched listener — including retired or
// dormant nodes, which hear nothing but still appear in the channel-usage
// statistics, matching the model's global view of the medium.
func (e *engine) resolveDeliveries(st *StepStats) {
	cd := e.opts.CollisionDetection
	for _, u := range e.touched {
		if e.transmitting[u] {
			continue // transmitters hear nothing
		}
		if e.counts[u] == 1 {
			e.hear[u] = e.payload[e.from[u]]
			st.Deliveries++
		} else {
			st.Collisions++
			if cd {
				e.hear[u] = Collision
			}
		}
	}
}

// clearTx re-zeroes the per-transmitter scratch for one transmitter list.
func (e *engine) clearTx(tx []int32) {
	for _, v := range tx {
		e.transmitting[v] = false
		e.payload[v] = nil
	}
}

// clearTouched re-zeroes the per-listener scratch, restoring the between-
// steps invariant.
func (e *engine) clearTouched() {
	for _, u := range e.touched {
		e.counts[u] = 0
		e.hear[u] = nil
	}
	e.touched = e.touched[:0]
}

// finishAllDone is the end-of-run sweep when MaxSteps ran out: nodes off the
// active list are done by construction, so only the remainder is polled.
func finishAllDone(nodes []Protocol, active []int32) bool {
	for _, v := range active {
		if !nodes[v].Done() {
			return false
		}
	}
	return true
}
