package radio

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/phy"
)

// engine is the step-loop state shared by the sequential and worker-pool
// engines: the frozen CSR topology, the protocol instances, the physical-
// layer reception model, and reusable scratch buffers sized once at
// construction so the per-step loop allocates nothing. Under a dynamic
// topology (Options.Topology) csr is the snapshot of the current epoch and
// epochSync swaps it at epoch boundaries (re-syncing the PHY model); the
// scratch buffers are indexed by node and the node count is fixed for the
// whole run, so they survive every epoch unchanged.
//
// Sparse-delivery invariants (DESIGN.md §3): between steps every scratch
// entry is at its zero value — payload[v]=nil, hear[v]=nil — txList/out and
// the frontier are empty, and the model's own scratch is likewise all-zero
// (the phy.Model.Clear contract). Each step dirties only the entries
// reachable from this step's transmitters and resetStep restores the
// invariant by re-zeroing exactly those, so delivery work is proportional
// to the transmitters and the listeners they reach, never to n.
type engine struct {
	csr       *graph.CSR
	topo      Topology // nil for static runs
	nextEpoch int      // step of the next topology change; -1 = static from here
	nodes     []Protocol
	opts      Options
	model     phy.Model

	payload  []Message    // payload[v]: message v transmits
	hear     []Message    // hear[v]: message v receives (nil = silence)
	txList   []int32      // this step's transmitters, ascending (sequential engine)
	frontier phy.Frontier // this step's transmitter set, fed to Resolve
	out      phy.Outcome  // this step's reception outcome, buffers reused

	// Probe state (Options.Probe): one reused sample plus the previous
	// fire's step/time/transmission cursor for window rates. Touched only
	// at epoch boundaries and at run end, never inside the step loop, so
	// the probe adds nothing to the zero-alloc contract (DESIGN.md §10).
	probeSample ProbeSample
	probeStats  phy.StatsSource // e.model when it reports stats, else nil
	probeStep   int
	probeTime   time.Time
	probeTx     int64
}

func newEngine(g *graph.Graph, nodes []Protocol, opts Options) (*engine, error) {
	n := len(nodes)
	e := &engine{
		topo:      opts.Topology,
		nextEpoch: -1,
		nodes:     nodes,
		opts:      opts,
		model:     opts.PHY,
		payload:   make([]Message, n),
		hear:      make([]Message, n),
		txList:    make([]int32, 0, n),
	}
	e.frontier.Resize(n)
	e.out.Decoded = make([]phy.Decode, 0, n)
	e.out.Collided = make([]int32, 0, n)
	if e.topo != nil {
		e.csr, e.nextEpoch = e.topo.EpochAt(0)
	} else {
		e.csr = g.Freeze()
	}
	if err := e.model.Sync(0, e.csr); err != nil {
		return nil, fmt.Errorf("radio: %s model rejected the run: %w", e.model.Name(), err)
	}
	if opts.Probe != nil {
		e.probeStats, _ = e.model.(phy.StatsSource)
		e.probeTime = time.Now()
	}
	return e, nil
}

// fireProbe fills the engine's reused ProbeSample with the state at step
// (cumulative counters from res, window rates since the previous fire) and
// hands it to Options.Probe. Called at epoch boundaries and once after the
// final step — never inside the steady-state step loop — and allocates
// nothing, so arming the probe preserves the zero-alloc contract.
func (e *engine) fireProbe(step, active int, res Result, final bool) {
	now := time.Now()
	window := step - e.probeStep
	s := &e.probeSample
	*s = ProbeSample{
		Step:          step,
		Final:         final,
		Active:        active,
		WindowSteps:   window,
		Transmissions: res.Transmissions,
		Deliveries:    res.Deliveries,
		Collisions:    res.Collisions,
	}
	if window > 0 {
		if dt := now.Sub(e.probeTime).Seconds(); dt > 0 {
			s.StepsPerSec = float64(window) / dt
		}
		s.AvgFrontier = float64(res.Transmissions-e.probeTx) / float64(window)
	}
	if e.probeStats != nil {
		s.PHY = e.probeStats.Stats()
		s.HasPHY = true
	}
	e.probeStep, e.probeTime, e.probeTx = step, now, res.Transmissions
	e.opts.Probe(s)
}

// epochSync installs the topology in force at step when step crosses the
// next epoch boundary, re-syncing the PHY model (geometric models refresh
// their positions here), and reports whether a boundary was crossed — the
// points where the engines capture checkpoints (Options.Checkpoint).
// Between boundaries it is a single comparison, so the per-step delivery
// cost stays amortized; the Topology query, the model re-sync, and any
// allocation inside either happen once per epoch. Both engines call it at
// the top of the step, before the act phase, so the epoch's first step
// already delivers over the new topology.
func (e *engine) epochSync(step int) bool {
	if e.nextEpoch < 0 || step < e.nextEpoch {
		return false
	}
	csr, next := e.topo.EpochAt(step)
	if csr.N() != len(e.nodes) {
		// The Options.Topology contract fixes the node count for the whole
		// run; a shrinking or growing epoch would corrupt the scratch
		// arrays, so fail loudly rather than deliver garbage.
		panic(fmt.Sprintf("radio: Topology epoch at step %d has %d nodes, run has %d", step, csr.N(), len(e.nodes)))
	}
	e.csr, e.nextEpoch = csr, next
	if err := e.model.Sync(step, e.csr); err != nil {
		// Epoch 0 sync errors surface from Run; a mid-run failure means the
		// Topology/PositionSource contract broke under the engine.
		panic(fmt.Sprintf("radio: %s model rejected the epoch at step %d: %v", e.model.Name(), step, err))
	}
	return true
}

// actScan runs one step's act phase over a compacting active list: dormant
// nodes are kept but skipped, nodes observed awake with Done() true retire
// permanently, and every remaining node is polled, with transmitters
// recorded into the scratch arrays and appended to tx. It returns the
// compacted active list, the extended transmitter list, and the number of
// transmit actions. Shared by the sequential engine (whole node range) and
// each worker-pool shard (its own range) so the two engines cannot drift.
func (e *engine) actScan(active []int32, step int, tx []int32) (activeOut, txOut []int32, transmits int) {
	w := 0
	for _, v := range active {
		if !awake(&e.opts, int(v), step) {
			active[w] = v // dormant: stays active, keeps the run alive
			w++
			continue
		}
		if e.nodes[v].Done() {
			continue // retired for the remainder of the run
		}
		active[w] = v
		w++
		a := e.nodes[v].Act(step)
		if a.Transmit {
			e.payload[v] = a.Msg
			tx = append(tx, v)
			transmits++
		}
	}
	return active[:w], tx, transmits
}

// deliverScan hands each live node on the list its received message (or
// silence). Shared by both engines, like actScan.
func (e *engine) deliverScan(active []int32, step int) {
	for _, v := range active {
		if awake(&e.opts, int(v), step) {
			e.nodes[v].Deliver(step, e.hear[v])
		}
	}
}

// newActive returns the initial active list 0..n-1. A node leaves the list
// permanently the first time it is observed awake with Done() true; dormant
// nodes (WakeAt in the future) stay on the list — they keep the run alive —
// but are neither polled nor delivered to.
func (e *engine) newActive() []int32 {
	active := make([]int32, len(e.nodes))
	for v := range active {
		active[v] = int32(v)
	}
	return active
}

// resolveDeliveries asks the PHY model to decide reception for the observed
// transmitter set and applies the outcome: hear is filled for decoded
// listeners (and, under a collision-marking model, the Collision marker for
// blocked ones) and the step stats record every reached listener —
// including retired or dormant nodes, which hear nothing but still appear
// in the channel-usage statistics, matching the model's global view of the
// medium.
func (e *engine) resolveDeliveries(st *StepStats) {
	e.out.Reset()
	e.model.Resolve(&e.frontier, &e.out)
	for _, d := range e.out.Decoded {
		e.hear[d.To] = e.payload[d.From]
	}
	st.Deliveries = len(e.out.Decoded)
	st.Collisions = len(e.out.Collided)
	if e.out.Marker {
		for _, v := range e.out.Collided {
			e.hear[v] = Collision
		}
	}
}

// clearTx re-zeroes the per-transmitter scratch for one transmitter list.
func (e *engine) clearTx(tx []int32) {
	for _, v := range tx {
		e.payload[v] = nil
	}
}

// clearDeliveries re-zeroes the hear entries this step's outcome dirtied,
// the model's own scratch, and the frontier, restoring the between-steps
// invariant.
func (e *engine) clearDeliveries() {
	for _, d := range e.out.Decoded {
		e.hear[d.To] = nil
	}
	if e.out.Marker {
		for _, v := range e.out.Collided {
			e.hear[v] = nil
		}
	}
	e.model.Clear()
	e.frontier.Clear()
}

// finishAllDone is the end-of-run sweep when MaxSteps ran out: nodes off the
// active list are done by construction, so only the remainder is polled.
func finishAllDone(nodes []Protocol, active []int32) bool {
	for _, v := range active {
		if !nodes[v].Done() {
			return false
		}
	}
	return true
}
