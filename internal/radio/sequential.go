package radio

import "repro/internal/graph"

// runSequential is the single-threaded engine. After the engine struct is
// built, the step loop performs zero heap allocations (a regression test
// asserts this): the active list compacts in place, transmitters go into a
// preallocated scratch list, the PHY model's reception pass works off its
// own preallocated scratch, and only entries dirtied this step are
// re-zeroed. Per-step cost is O(#active + #transmitters + the listeners
// they reach).
func runSequential(g *graph.Graph, nodes []Protocol, opts Options) (Result, error) {
	e, err := newEngine(g, nodes, opts)
	if err != nil {
		return Result{}, err
	}
	active := e.newActive()
	var res Result
	start := 0
	if cp := opts.Resume; cp != nil {
		if err := e.restore(cp); err != nil {
			return Result{}, err
		}
		active = append(active[:0], cp.Active...)
		res = cp.Partial
		start = cp.Step
	}
	for step := start; step < opts.MaxSteps; step++ {
		st := StepStats{Step: step}
		// Epoch boundary: swap in the topology in force at this step, and
		// capture a checkpoint there when the hook is armed (on resume the
		// boundary re-fires at cp.Step, re-syncing the PHY model). The
		// advisory probe samples at the same boundaries, after the capture.
		if e.epochSync(step) {
			if opts.Checkpoint != nil || opts.Snapshot != nil {
				if err := e.boundary(step, active, res); err != nil {
					return Result{}, err
				}
			}
			if opts.Probe != nil {
				e.fireProbe(step, len(active), res, false)
			}
		}
		// Act phase: retire done nodes, poll the rest.
		active, e.txList, st.Transmits = e.actScan(active, step, e.txList)
		if len(active) == 0 {
			res.AllDone = true
			break
		}
		// Delivery: the PHY model decides reception for the transmitter set.
		e.frontier.Add(e.txList)
		e.resolveDeliveries(&st)
		// Deliver phase: every live node receives its message (or silence).
		e.deliverScan(active, step)
		e.clearTx(e.txList)
		e.txList = e.txList[:0]
		e.clearDeliveries()
		res.Steps = step + 1
		res.Transmissions += int64(st.Transmits)
		res.Deliveries += int64(st.Deliveries)
		res.Collisions += int64(st.Collisions)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	if !res.AllDone {
		res.AllDone = finishAllDone(e.nodes, active)
	}
	// Final probe sample: static runs have no boundaries, so this is the
	// one place every probed run is guaranteed a sample.
	if opts.Probe != nil {
		e.fireProbe(res.Steps, len(active), res, true)
	}
	return res, nil
}
