package radio

import "repro/internal/graph"

// runSequential is the single-threaded engine. After the engine struct is
// built, the step loop performs zero heap allocations (a regression test
// asserts this): the active list compacts in place, transmitters and touched
// listeners go into preallocated scratch lists, and only entries dirtied
// this step are re-zeroed. Per-step cost is O(#active + #transmitters + Σ
// transmitter degrees).
func runSequential(g *graph.Graph, nodes []Protocol, opts Options) (Result, error) {
	e := newEngine(g, nodes, opts)
	active := e.newActive()
	var res Result
	for step := 0; step < opts.MaxSteps; step++ {
		st := StepStats{Step: step}
		// Act phase: retire done nodes, poll the rest.
		w := 0
		for _, v := range active {
			if !awake(&e.opts, int(v), step) {
				active[w] = v // dormant: stays active, keeps the run alive
				w++
				continue
			}
			if e.nodes[v].Done() {
				continue // retired for the remainder of the run
			}
			active[w] = v
			w++
			a := e.nodes[v].Act(step)
			if a.Transmit {
				e.transmitting[v] = true
				e.payload[v] = a.Msg
				e.txList = append(e.txList, v)
				st.Transmits++
			}
		}
		active = active[:w]
		if w == 0 {
			res.AllDone = true
			break
		}
		// Delivery: exactly-one-transmitting-neighbor rule over the touched set.
		e.countTransmitters(e.txList)
		e.resolveDeliveries(&st)
		// Deliver phase: every live node receives its message (or silence).
		for _, v := range active {
			if awake(&e.opts, int(v), step) {
				e.nodes[v].Deliver(step, e.hear[v])
			}
		}
		e.clearTx(e.txList)
		e.txList = e.txList[:0]
		e.clearTouched()
		res.Steps = step + 1
		res.Transmissions += int64(st.Transmits)
		res.Deliveries += int64(st.Deliveries)
		res.Collisions += int64(st.Collisions)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	if !res.AllDone {
		res.AllDone = finishAllDone(e.nodes, active)
	}
	return res, nil
}
