package radio_test

// PHY-layer differentials: (1) the sequential and worker-pool engines must
// stay transcript-identical under phy:sinr — including mobile SINR, where
// positions change per epoch — for every shard count; (2) the unified
// engine with phy.SINR in exact mode must reproduce the deleted
// internal/sinr standalone loop decision for decision (reimplemented here,
// verbatim, as the test reference).

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// sinrGossipNode transmits its rumor with probability decaying in how much
// it has heard, so a single misdelivered step anywhere diverges the whole
// downstream transcript.
type sinrGossipNode struct {
	rng    *xrand.RNG
	heard  int
	has    bool
	step   int
	budget int
}

func (g *sinrGossipNode) Act(step int) radio.Action {
	if g.has && g.rng.Bernoulli(1/float64(2+g.heard)) {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}

func (g *sinrGossipNode) Deliver(step int, msg radio.Message) {
	g.step = step + 1
	if msg != nil {
		g.heard++
		g.has = true
	}
}

func (g *sinrGossipNode) Done() bool { return g.step >= g.budget }

func gossipFactory(budget int) radio.Factory {
	return func(info radio.NodeInfo) radio.Protocol {
		return &sinrGossipNode{rng: info.RNG, has: info.Index == 0, budget: budget}
	}
}

// TestSINRSeqPoolTranscriptIdentical pins the sequential≡pool contract
// under phy:sinr at Shards ∈ {1, 4, GOMAXPROCS}: interference accumulates
// in fixed transmitter-index order however the act phase is sharded, so
// the digests and Results must be bit-identical. Covered for a static
// deployment at the default cutoff and for a mobile deployment (positions
// per epoch through dyn) in exact mode.
func TestSINRSeqPoolTranscriptIdentical(t *testing.T) {
	const steps = 120
	type scenario struct {
		name  string
		setup func(t *testing.T) radio.Options
	}
	static := func(t *testing.T) radio.Options {
		_, pts, err := gen.ByNameWithPoints("phy:sinr", 64, 17)
		if err != nil {
			t.Fatal(err)
		}
		model, err := phy.NewSINR(pts, phy.SINRParams{})
		if err != nil {
			t.Fatal(err)
		}
		return radio.Options{MaxSteps: steps, Seed: 42, PHY: model}
	}
	mobile := func(t *testing.T) radio.Options {
		sched, err := gen.MobileUDG(64, 8, 12, 0.6, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		model, err := phy.NewMobileSINR(sched, phy.SINRParams{CutoffFactor: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		return radio.Options{MaxSteps: steps, Seed: 42, Topology: sched, PHY: model}
	}
	for _, sc := range []scenario{{"static", static}, {"mobile", mobile}} {
		t.Run(sc.name, func(t *testing.T) {
			run := func(concurrent bool, shards int) (uint64, radio.Result) {
				opts := sc.setup(t) // fresh model per run: instances are stateful
				opts.Concurrent = concurrent
				opts.Shards = shards
				h := trace.NewHasher()
				g := gen.Grid(8, 8) // 64 nodes; the SINR model ignores its edges
				res, err := radio.Run(g, h.Wrap(gossipFactory(steps)), opts)
				if err != nil {
					t.Fatal(err)
				}
				return h.Sum(), res
			}
			wantDigest, wantRes := run(false, 0)
			for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				gotDigest, gotRes := run(true, shards)
				if gotDigest != wantDigest {
					t.Errorf("shards=%d: pool digest %#x differs from sequential %#x", shards, gotDigest, wantDigest)
				}
				if gotRes != wantRes {
					t.Errorf("shards=%d: pool result %+v differs from sequential %+v", shards, gotRes, wantRes)
				}
			}
		})
	}
}

// chatterNode transmits its own index with probability 1/32 — enough
// concurrent transmitters at n = 65536 (~2048 per step) to exercise every
// bucketed-kernel path at scale, with sender-identifying payloads so a
// single wrong-From delivery anywhere changes the transcript digest.
type chatterNode struct {
	rng    *xrand.RNG
	id     int64
	step   int
	budget int
}

func (c *chatterNode) Act(step int) radio.Action {
	if c.rng.Bernoulli(1.0 / 32) {
		return radio.Transmit(c.id)
	}
	return radio.Listen()
}
func (c *chatterNode) Deliver(step int, msg radio.Message) { c.step = step + 1 }
func (c *chatterNode) Done() bool                          { return c.step >= c.budget }

// TestSINRSeqPoolLargeDeployment is the sequential≡pool differential at the
// bench's large scale: n = 65536 under the default cutoff, where the grid
// holds tens of thousands of cells and per-step frontiers run to ~2048
// transmitters. Divergence modes that only appear at scale — shard-boundary
// ordering, candidate-arena overflow, bitset word sharing — land here.
func TestSINRSeqPoolLargeDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("large-deployment differential: skipped in -short")
	}
	const n, steps = 65536, 4
	side := math.Sqrt(float64(n) * math.Pi / 8)
	pts := gen.UniformPoints(n, 2, side, xrand.New(21))
	factory := func(info radio.NodeInfo) radio.Protocol {
		return &chatterNode{rng: info.RNG, id: int64(info.Index), budget: steps}
	}
	run := func(concurrent bool, shards int) (uint64, radio.Result) {
		model, err := phy.NewSINR(pts, phy.SINRParams{})
		if err != nil {
			t.Fatal(err)
		}
		h := trace.NewHasher()
		res, err := radio.Run(gen.Path(n), h.Wrap(factory), radio.Options{
			MaxSteps: steps, Seed: 7, Concurrent: concurrent, Shards: shards, PHY: model,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h.Sum(), res
	}
	wantDigest, wantRes := run(false, 0)
	for _, shards := range []int{2, 7} {
		gotDigest, gotRes := run(true, shards)
		if gotDigest != wantDigest {
			t.Errorf("shards=%d: pool digest %#x differs from sequential %#x", shards, gotDigest, wantDigest)
		}
		if gotRes != wantRes {
			t.Errorf("shards=%d: pool result %+v differs from sequential %+v", shards, gotRes, wantRes)
		}
	}
}

// referenceSINRRun is the deleted internal/sinr execution loop, kept here
// as the old-vs-new oracle: dense O(#tx·n) decoding with exact interference
// sums in ascending transmitter order, act-then-deliver per step, per-node
// RNGs split from the seed by index — exactly what the engine does, minus
// retirement (the old loop polled Done every step instead).
func referenceSINRRun(pts []gen.Point, factory radio.Factory, power, pathLoss, noise, beta float64, maxSteps int, seed uint64) radio.Result {
	n := len(pts)
	root := xrand.New(seed)
	nodes := make([]radio.Protocol, n)
	for v := 0; v < n; v++ {
		nodes[v] = factory(radio.NodeInfo{Index: v, N: n, D: n, Alpha: n, RNG: root.Split(uint64(v))})
	}
	var res radio.Result
	transmitting := make([]bool, n)
	payload := make([]radio.Message, n)
	live := make([]bool, n)
	var txIdx []int
	decode := func(v int) (int, bool) {
		if len(txIdx) == 0 {
			return 0, false
		}
		var total float64
		best, bestPow := -1, 0.0
		for _, u := range txIdx {
			d := pts[u].Dist(pts[v])
			if d == 0 {
				d = 1e-9
			}
			pow := power * math.Pow(d, -pathLoss)
			total += pow
			if pow > bestPow {
				best, bestPow = u, pow
			}
		}
		if bestPow/(noise+(total-bestPow)) >= beta {
			return best, true
		}
		return 0, false
	}
	for step := 0; step < maxSteps; step++ {
		anyLive := false
		for v := 0; v < n; v++ {
			live[v] = !nodes[v].Done()
			anyLive = anyLive || live[v]
		}
		if !anyLive {
			res.AllDone = true
			break
		}
		txIdx = txIdx[:0]
		for v := 0; v < n; v++ {
			transmitting[v] = false
			payload[v] = nil
			if !live[v] {
				continue
			}
			a := nodes[v].Act(step)
			if a.Transmit {
				transmitting[v] = true
				payload[v] = a.Msg
				txIdx = append(txIdx, v)
				res.Transmissions++
			}
		}
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			var msg radio.Message
			if !transmitting[v] {
				if u, ok := decode(v); ok {
					msg = payload[u]
					res.Deliveries++
				}
			}
			nodes[v].Deliver(step, msg)
		}
		res.Steps = step + 1
	}
	if !res.AllDone {
		res.AllDone = true
		for _, p := range nodes {
			if !p.Done() {
				res.AllDone = false
				break
			}
		}
	}
	return res
}

// TestSINREngineMatchesReferenceLoop is the old-vs-new differential: on
// random deployments and seeds, the unified engine with phy.SINR in exact
// mode must produce the same per-node transcripts, step counts, and
// delivery totals as the pre-PHY loop. (Collision counts are excluded: the
// old loop counted every live listener whenever ≥2 transmitters existed
// anywhere; the PHY model counts listeners actually reached — a documented
// stats-only change.)
func TestSINREngineMatchesReferenceLoop(t *testing.T) {
	rng := xrand.New(123)
	for trial := 0; trial < 8; trial++ {
		n := 24 + rng.Intn(40)
		side := math.Sqrt(float64(n) * math.Pi / 8)
		pts := gen.UniformPoints(n, 2, side, rng)
		seed := rng.Uint64()
		const steps = 60

		refHash := trace.NewHasher()
		refRes := referenceSINRRun(pts, refHash.Wrap(gossipFactory(steps)), 1, 4, 0.5, 2, steps, seed)

		model, err := phy.NewSINR(pts, phy.SINRParams{CutoffFactor: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		engHash := trace.NewHasher()
		// The graph hands the engine its node count and estimates; SINR
		// ignores its edges, and the gossip protocol ignores the estimates,
		// so an edgeless graph keeps the comparison free of D-estimate
		// differences between the old loop and the engine.
		g := gen.Path(n)
		engRes, err := radio.Run(g, engHash.Wrap(gossipFactory(steps)), radio.Options{
			MaxSteps: steps, Seed: seed, PHY: model,
		})
		if err != nil {
			t.Fatal(err)
		}
		if refHash.Sum() != engHash.Sum() {
			t.Fatalf("trial %d (n=%d): transcript digests differ: reference %#x vs engine %#x",
				trial, n, refHash.Sum(), engHash.Sum())
		}
		if refRes.Steps != engRes.Steps || refRes.Transmissions != engRes.Transmissions ||
			refRes.Deliveries != engRes.Deliveries || refRes.AllDone != engRes.AllDone {
			t.Fatalf("trial %d (n=%d): results differ: reference %+v vs engine %+v",
				trial, n, refRes, engRes)
		}
	}
}
