package radio

// Engine checkpoint/resume (DESIGN.md §8). The engines are transcript-
// deterministic, so a run's entire future is a function of its state at a
// step boundary: the per-node protocol states (including their private RNG
// streams), the not-yet-retired active list, and the cumulative counters.
// A Checkpoint captures exactly that at a topology epoch boundary — the
// only points where the step loop already leaves its zero-alloc regime —
// and Options.Resume reconstructs it, so a run killed at an arbitrary
// boundary and resumed produces output byte-identical to an uninterrupted
// run. Checkpoints are engine-portable: one captured under the sequential
// engine resumes under the worker pool and vice versa, because both
// engines maintain the active list as the same ascending sequence.

import "fmt"

// Snapshotter is the optional protocol extension engine checkpointing
// requires (Options.Checkpoint / Options.Resume): a protocol serializes its
// complete mutable state — counters, adopted values, and its RNG stream
// (xrand.RNG.State) — and restores it exactly. Run fails up front if
// checkpointing is requested and any node's protocol does not implement it.
type Snapshotter interface {
	// SnapshotState serializes the node's complete mutable state.
	SnapshotState() []byte
	// RestoreState overwrites the node's state with one previously
	// serialized by SnapshotState on an identically-constructed protocol.
	RestoreState(data []byte) error
}

// Checkpoint is a resumable engine snapshot, captured immediately before
// the act phase of Step (so Partial covers steps [0, Step) exactly). It is
// plain data — JSON-marshalable for journals — and owned by the hook that
// receives it; the engine never retains or reuses it.
type Checkpoint struct {
	// Step is the time-step about to execute when the snapshot was taken.
	Step int `json:"step"`
	// Partial holds the cumulative Result counters over steps [0, Step).
	Partial Result `json:"partial"`
	// Active is the not-yet-retired node list, ascending.
	Active []int32 `json:"active"`
	// Nodes holds one SnapshotState blob per node (retired nodes included:
	// callers such as flood outcomes read terminal protocol state).
	Nodes [][]byte `json:"nodes"`
}

// requireSnapshotters verifies every protocol supports checkpointing.
func requireSnapshotters(nodes []Protocol) error {
	for v, nd := range nodes {
		if _, ok := nd.(Snapshotter); !ok {
			return fmt.Errorf("radio: checkpoint/resume requires every protocol to implement Snapshotter; node %d (%T) does not", v, nd)
		}
	}
	return nil
}

// capture snapshots the run at the boundary of step: the active list is
// copied, every node's protocol state is serialized.
func (e *engine) capture(step int, active []int32, partial Result) *Checkpoint {
	cp := &Checkpoint{
		Step:    step,
		Partial: partial,
		Active:  append([]int32(nil), active...),
		Nodes:   make([][]byte, len(e.nodes)),
	}
	for v, nd := range e.nodes {
		cp.Nodes[v] = nd.(Snapshotter).SnapshotState()
	}
	return cp
}

// boundary fires the epoch-boundary hooks off a single capture. Snapshot is
// advisory — its receiver publishes into a cache, and losing a publication
// costs future resume depth, never correctness — so it cannot abort the run.
// A Checkpoint hook error aborts the run: a checkpoint that cannot be
// persisted must not let the run race ahead of its journal, and the chaos
// harness injects worker death here. When both hooks are armed they observe
// the same *Checkpoint value and must treat it as immutable.
func (e *engine) boundary(step int, active []int32, partial Result) error {
	cp := e.capture(step, active, partial)
	if e.opts.Snapshot != nil {
		e.opts.Snapshot(cp)
	}
	if e.opts.Checkpoint != nil {
		if err := e.opts.Checkpoint(cp); err != nil {
			return fmt.Errorf("radio: checkpoint at step %d aborted the run: %w", step, err)
		}
	}
	return nil
}

// restore overwrites freshly-built protocol state from cp and arms the
// epoch machinery so the first loop iteration at cp.Step re-installs the
// topology (and re-syncs the PHY model) in force there. Validation is
// structural; state consistency is the caller's contract — resume with the
// same graph, factory, seed, topology, and PHY the checkpoint was captured
// under.
func (e *engine) restore(cp *Checkpoint) error {
	n := len(e.nodes)
	if len(cp.Nodes) != n {
		return fmt.Errorf("radio: resume checkpoint has %d node states for %d nodes", len(cp.Nodes), n)
	}
	prev := int32(-1)
	for _, v := range cp.Active {
		if v < 0 || int(v) >= n || v <= prev {
			return fmt.Errorf("radio: resume checkpoint active list is not an ascending subset of [0,%d)", n)
		}
		prev = v
	}
	for v, data := range cp.Nodes {
		if err := e.nodes[v].(Snapshotter).RestoreState(data); err != nil {
			return fmt.Errorf("radio: resume: node %d state: %w", v, err)
		}
	}
	if e.topo != nil {
		// Force epochSync to fire at cp.Step: it installs the epoch active
		// there and re-syncs the PHY model at the resume step.
		e.nextEpoch = cp.Step
	}
	// Start the probe's rate window at the resume point, not step 0, so the
	// first sample after resume reports the resumed run's own rates.
	e.probeStep, e.probeTx = cp.Step, cp.Partial.Transmissions
	return nil
}
