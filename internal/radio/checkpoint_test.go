package radio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/xrand"
)

// ckptEvent is one transcript entry: an act or deliver observation of one
// node at one step. The chaos tests compare full transcripts, so "byte-
// identical resume" is established at the finest observable granularity.
type ckptEvent struct {
	step int
	kind byte  // 'a' act, 'd' deliver
	tx   bool  // act: transmitted
	msg  int64 // act: payload sent; deliver: value heard (minInt64 = silence)
}

const silence = math.MinInt64

// ckptFlood is a flood protocol implementing Snapshotter: nodes adopt the
// highest rank heard and retransmit with Decay-style backoff; a node that
// has held the rumor past quitAfter retires, exercising active-list
// compaction across checkpoints. Its full mutable state is (best, has,
// step, rng); the transcript log is harness instrumentation, not state.
type ckptFlood struct {
	best      int64
	has       bool
	step      int
	budget    int
	quitAfter int
	levels    int
	rng       *xrand.RNG
	log       *[]ckptEvent
}

func (d *ckptFlood) Act(step int) Action {
	a := Listen()
	if d.has && d.rng.Bernoulli(math.Pow(2, -float64(step%d.levels+1))) {
		a = Transmit(d.best)
	}
	msg := int64(silence)
	if a.Transmit {
		msg = a.Msg.(int64)
	}
	*d.log = append(*d.log, ckptEvent{step: step, kind: 'a', tx: a.Transmit, msg: msg})
	return a
}

func (d *ckptFlood) Deliver(step int, msg Message) {
	d.step = step + 1
	heard := int64(silence)
	if r, ok := msg.(int64); ok {
		heard = r
		if !d.has || r > d.best {
			d.best, d.has = r, true
		}
	}
	*d.log = append(*d.log, ckptEvent{step: step, kind: 'd', msg: heard})
}

func (d *ckptFlood) Done() bool {
	return d.step >= d.budget || (d.has && d.step >= d.quitAfter)
}

func (d *ckptFlood) SnapshotState() []byte {
	buf := make([]byte, 0, 25)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.best))
	if d.has {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.step))
	buf = binary.LittleEndian.AppendUint64(buf, d.rng.State())
	return buf
}

func (d *ckptFlood) RestoreState(data []byte) error {
	if len(data) != 25 {
		return fmt.Errorf("ckptFlood state is %d bytes, want 25", len(data))
	}
	d.best = int64(binary.LittleEndian.Uint64(data[0:8]))
	d.has = data[8] == 1
	d.step = int(binary.LittleEndian.Uint64(data[9:17]))
	d.rng.SetState(binary.LittleEndian.Uint64(data[17:25]))
	return nil
}

// ckptWorkload builds the shared dynamic scenario: a churned grid flood.
func ckptWorkload(t *testing.T) (*dyn.Schedule, int, int) {
	t.Helper()
	g := gen.Grid(6, 6)
	sched, err := dyn.Churn(g, 8, 8, 0.3, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return sched, g.N(), 64 // schedule, n, budget (MaxSteps)
}

// runCkptFlood runs the scenario with the given engine options, returning
// the result, per-node transcripts, and final per-node state snapshots.
func runCkptFlood(t *testing.T, opts Options, n, budget int) (Result, [][]ckptEvent, [][]byte, error) {
	t.Helper()
	sched := opts.Topology.(*dyn.Schedule)
	logs := make([][]ckptEvent, n)
	nodes := make([]*ckptFlood, n)
	factory := func(info NodeInfo) Protocol {
		nd := &ckptFlood{
			budget:    budget,
			quitAfter: budget/2 + info.Index%7,
			levels:    6,
			rng:       info.RNG,
			log:       &logs[info.Index],
		}
		if info.Index == 0 {
			nd.best, nd.has = 1, true
		}
		nodes[info.Index] = nd
		return nd
	}
	opts.MaxSteps = budget
	opts.Seed = 0xc0ffee
	res, err := Run(sched.CSR(0).Graph(), factory, opts)
	finals := make([][]byte, n)
	for v, nd := range nodes {
		finals[v] = nd.SnapshotState()
	}
	return res, logs, finals, err
}

var errWorkerKilled = errors.New("chaos: worker killed")

// TestCheckpointResumeByteIdentical is the chaos acceptance test: a run
// killed at an arbitrary epoch boundary (fault-injected worker death via
// the Checkpoint hook) and resumed from its last persisted checkpoint
// produces transcripts, final protocol states, and a Result byte-identical
// to the uninterrupted run — on the sequential engine, on the worker pool,
// and across engines (checkpoint on one, resume on the other).
func TestCheckpointResumeByteIdentical(t *testing.T) {
	sched, n, budget := ckptWorkload(t)
	engines := []struct {
		name string
		opts Options
	}{
		{"sequential", Options{Topology: sched}},
		{"pool", Options{Topology: sched, Concurrent: true, Shards: 3}},
	}
	type baseline struct {
		res    Result
		logs   [][]ckptEvent
		finals [][]byte
	}
	full := make(map[string]baseline)
	for _, e := range engines {
		res, logs, finals, err := runCkptFlood(t, e.opts, n, budget)
		if err != nil {
			t.Fatalf("%s: uninterrupted run: %v", e.name, err)
		}
		full[e.name] = baseline{res, logs, finals}
	}

	for _, capture := range engines {
		for _, resume := range engines {
			// Kill at each epoch boundary in turn: boundary 0 is the first
			// topology change (the step-0 epoch is installed before the
			// loop, so no checkpoint fires there).
			for kill := 1; kill <= 4; kill++ {
				name := fmt.Sprintf("capture=%s/resume=%s/kill=%d", capture.name, resume.name, kill)
				t.Run(name, func(t *testing.T) {
					faults := chaos.New()
					faults.Arm("radio.checkpoint", kill-1, 1, errWorkerKilled)
					var last *Checkpoint
					opts := capture.opts
					opts.Checkpoint = func(cp *Checkpoint) error {
						// The fault fires before persisting — the kill
						// boundary's checkpoint is lost, like a worker dying
						// mid-append — so resume replays at least one epoch.
						if err := faults.Check("radio.checkpoint"); err != nil {
							return err
						}
						last = cp
						return nil
					}
					_, killedLogs, _, err := runCkptFlood(t, opts, n, budget)
					if !errors.Is(err, errWorkerKilled) {
						t.Fatalf("killed run: err = %v, want %v", err, errWorkerKilled)
					}
					// Death at the first boundary persists nothing: resume
					// degenerates to a from-scratch rerun (the job spec is
					// the step-0 checkpoint), which determinism makes just
					// as byte-identical.
					cut := 0
					ropts := resume.opts
					if last != nil {
						cut = last.Step
						ropts.Resume = last
					} else if kill != 1 {
						t.Fatalf("no checkpoint persisted before kill %d", kill)
					}
					res2, resumedLogs, finals2, err := runCkptFlood(t, ropts, n, budget)
					if err != nil {
						t.Fatalf("resumed run: %v", err)
					}

					want := full[resume.name]
					if res2 != want.res {
						t.Errorf("Result diverged: resumed %+v, uninterrupted %+v", res2, want.res)
					}
					for v := 0; v < n; v++ {
						if string(finals2[v]) != string(want.finals[v]) {
							t.Errorf("node %d final state diverged", v)
						}
						// Stitch: killed-run transcript before the checkpoint
						// step + resumed transcript = uninterrupted transcript.
						var stitched []ckptEvent
						for _, ev := range killedLogs[v] {
							if ev.step < cut {
								stitched = append(stitched, ev)
							}
						}
						stitched = append(stitched, resumedLogs[v]...)
						if len(stitched) != len(want.logs[v]) {
							t.Fatalf("node %d: stitched transcript %d events, want %d", v, len(stitched), len(want.logs[v]))
						}
						for i := range stitched {
							if stitched[i] != want.logs[v][i] {
								t.Fatalf("node %d event %d diverged: %+v vs %+v", v, i, stitched[i], want.logs[v][i])
							}
						}
					}
				})
			}
		}
	}
}

// TestCheckpointRequiresSnapshotter pins the up-front contract error.
func TestCheckpointRequiresSnapshotter(t *testing.T) {
	sched, _, budget := ckptWorkload(t)
	factory := func(info NodeInfo) Protocol {
		return &steadyNode{rng: info.RNG, budget: budget}
	}
	_, err := Run(sched.CSR(0).Graph(), factory, Options{
		MaxSteps:   budget,
		Seed:       1,
		Topology:   sched,
		Checkpoint: func(*Checkpoint) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "Snapshotter") {
		t.Fatalf("expected Snapshotter contract error, got %v", err)
	}
}

// TestCheckpointHookErrorAborts pins that a failing hook (journal write
// failure, injected death) aborts the run with the hook's error.
func TestCheckpointHookErrorAborts(t *testing.T) {
	sched, n, budget := ckptWorkload(t)
	boom := errors.New("journal full")
	opts := Options{Topology: sched, Checkpoint: func(*Checkpoint) error { return boom }}
	_, _, _, err := runCkptFlood(t, opts, n, budget)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

// TestResumeValidation pins structural validation of resume checkpoints.
func TestResumeValidation(t *testing.T) {
	sched, n, budget := ckptWorkload(t)
	var last *Checkpoint
	opts := Options{Topology: sched, Checkpoint: func(cp *Checkpoint) error { last = cp; return nil }}
	if _, _, _, err := runCkptFlood(t, opts, n, budget); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint captured")
	}

	bad := *last
	bad.Step = budget + 1
	if _, _, _, err := runCkptFlood(t, Options{Topology: sched, Resume: &bad}, n, budget); err == nil {
		t.Error("out-of-range resume step accepted")
	}
	bad = *last
	bad.Nodes = bad.Nodes[:1]
	if _, _, _, err := runCkptFlood(t, Options{Topology: sched, Resume: &bad}, n, budget); err == nil {
		t.Error("truncated node states accepted")
	}
	bad = *last
	bad.Active = []int32{3, 2}
	if _, _, _, err := runCkptFlood(t, Options{Topology: sched, Resume: &bad}, n, budget); err == nil {
		t.Error("non-ascending active list accepted")
	}
}
