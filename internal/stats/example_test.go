package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleMean() {
	fmt.Println(stats.Mean([]float64{1, 2, 3, 4}))
	// Output: 2.5
}

func ExampleQuantile() {
	xs := []float64{10, 20, 30, 40, 50}
	fmt.Println(stats.Quantile(xs, 0.5), stats.Quantile(xs, 1))
	// Output: 30 50
}

func ExampleLinearFit() {
	// y = 3x − 1, exactly.
	fit, err := stats.LinearFit([]float64{0, 1, 2, 3}, []float64{-1, 2, 5, 8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("slope=%.0f intercept=%.0f r2=%.0f\n", fit.Slope, fit.Intercept, fit.R2)
	// Output: slope=3 intercept=-1 r2=1
}

func ExampleTable_Markdown() {
	tb := &stats.Table{Header: []string{"n", "steps"}}
	tb.AddRowf(16, 120)
	fmt.Print(tb.Markdown())
	// Output:
	// | n  | steps |
	// |----|-------|
	// | 16 | 120   |
}
