package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138089935) > 1e-6 {
		t.Fatalf("stddev %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input defaults")
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Median(xs); m != 2.5 {
		t.Fatalf("median %v", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.25); math.Abs(q-1.75) > 1e-12 {
		t.Fatalf("q.25 %v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 50); p != Median(xs) {
		t.Fatalf("p50 %v != median %v", p, Median(xs))
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 %v", p)
	}
	if p := Percentile(xs, 25); math.Abs(p-2) > 1e-12 {
		t.Fatalf("p25 %v", p)
	}
	// p95/p99 interpolate within the top gap of a 0..100 ramp.
	ramp := make([]float64, 101)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if p := Percentile(ramp, 95); math.Abs(p-95) > 1e-9 {
		t.Fatalf("p95 %v", p)
	}
	if p := Percentile(ramp, 99); math.Abs(p-99) > 1e-9 {
		t.Fatalf("p99 %v", p)
	}
	if Percentile(nil, 95) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty defaults")
	}
}

func TestSummarizeAndCI95(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 || s.CI95Lo != 0 || s.CI95Hi != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s = Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.CI95Lo != 3 || s.CI95Hi != 3 {
		t.Fatalf("singleton summary = %+v", s)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s = Summarize(xs)
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	wantHalf := 1.96 * StdDev(xs) / math.Sqrt(8)
	if math.Abs(s.CI95Hi-s.Mean-wantHalf) > 1e-12 || math.Abs(s.Mean-s.CI95Lo-wantHalf) > 1e-12 {
		t.Fatalf("CI = [%v, %v], want mean ± %v", s.CI95Lo, s.CI95Hi, wantHalf)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Fatalf("CI does not bracket the mean: %+v", s)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R² %v", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want too-few error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want mismatch error")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("want degenerate error")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := xrand.New(1)
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 3*xi-7+rng.Normal())
	}
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 0.01 || math.Abs(f.Intercept+7) > 1 {
		t.Fatalf("fit %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R² %v", f.R2)
	}
}

func TestPowerLawExponent(t *testing.T) {
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, 2.5*math.Pow(float64(i), 1.7))
	}
	e, err := PowerLawExponent(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1.7) > 1e-9 {
		t.Fatalf("exponent %v", e)
	}
	// Non-positive values skipped.
	e2, err := PowerLawExponent([]float64{0, 1, 2, 4}, []float64{5, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-1) > 1e-9 {
		t.Fatalf("exponent with skips %v", e2)
	}
	if _, err := PowerLawExponent([]float64{0}, []float64{1}); err == nil {
		t.Fatal("want error with <2 usable points")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := xrand.New(2)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + rng.Normal()
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, rng)
	if lo >= hi {
		t.Fatalf("degenerate CI [%v,%v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v,%v] misses true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI [%v,%v] too wide", lo, hi)
	}
	l0, h0 := BootstrapCI(nil, 0.95, 100, rng)
	if l0 != 0 || h0 != 0 {
		t.Fatal("empty CI defaults")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw%30) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableMarkdownAndTSV(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"n", "steps"}}
	tb.AddRow("16", "120")
	tb.AddRowf(32, 3.14159)
	md := tb.Markdown()
	if !strings.Contains(md, "### demo") || !strings.Contains(md, "| n ") {
		t.Fatalf("markdown:\n%s", md)
	}
	if !strings.Contains(md, "3.142") {
		t.Fatalf("float formatting missing:\n%s", md)
	}
	tsv := tb.TSV()
	if !strings.HasPrefix(tsv, "n\tsteps\n16\t120\n") {
		t.Fatalf("tsv:\n%s", tsv)
	}
}
