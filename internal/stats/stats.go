// Package stats provides the small statistics toolkit the experiment
// harness uses: summary statistics, least-squares fits on transformed axes
// (for scaling-exponent estimation), bootstrap confidence intervals, and
// Markdown/TSV table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/xrand"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (linear interpolation, q clamped to
// [0,1]; 0 for empty input).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile of xs with p in [0, 100] (linear
// interpolation between order statistics, exactly Quantile(xs, p/100); 0
// for empty input). Percentile(xs, 50) is the median; the serve load
// generator reports request-latency p50/p95/p99 through it.
func Percentile(xs []float64, p float64) float64 {
	return Quantile(xs, p/100)
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the aggregate statistics the experiment runner reports
// for a metric over seed replicas.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95Lo/CI95Hi bound the mean's normal-approximation 95% confidence
	// interval, mean ± 1.96·s/√n (degenerate to the mean for n < 2).
	CI95Lo float64
	CI95Hi float64
}

// Summarize computes a Summary over xs (zero Summary for empty input).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	s.CI95Lo, s.CI95Hi = CI95(xs)
	return s
}

// CI95 returns the normal-approximation 95% confidence interval for the
// mean, mean ± 1.96·s/√n. Unlike BootstrapCI it consumes no randomness, so
// aggregated experiment output stays deterministic.
func CI95(xs []float64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 {
		return m, m
	}
	half := 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return m - half, m + half
}

// Fit is a least-squares line y = Slope·x + Intercept with goodness R².
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y against x by ordinary least squares. It returns an error
// for mismatched or degenerate inputs.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate x values")
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / denom
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		f.R2 = 1
	} else {
		var ssRes float64
		for i := range x {
			r := y[i] - (f.Slope*x[i] + f.Intercept)
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/ssTot
	}
	return f, nil
}

// PowerLawExponent fits y ≈ c·x^e by regressing log y on log x and returns
// e. Non-positive samples are skipped; an error is returned if fewer than 2
// usable points remain.
func PowerLawExponent(x, y []float64) (float64, error) {
	var lx, ly []float64
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	f, err := LinearFit(lx, ly)
	if err != nil {
		return 0, err
	}
	return f.Slope, nil
}

// BootstrapCI returns an approximate (lo, hi) confidence interval for the
// mean at the given level (e.g. 0.95) using `resamples` bootstrap draws.
func BootstrapCI(xs []float64, level float64, resamples int, rng *xrand.RNG) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if resamples < 10 {
		resamples = 10
	}
	means := make([]float64, resamples)
	for r := range means {
		var s float64
		for i := 0; i < len(xs); i++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// Table renders aligned rows for experiment output, as Markdown or TSV;
// the exported fields double as the structured-JSON form of a table
// (`radionet-bench -json`).
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v (floats via %.4g).
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for i := range t.Header {
		b.WriteString(strings.Repeat("-", widths[i]+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TSV renders the table as tab-separated values (header first).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t") + "\n")
	}
	return b.String()
}
