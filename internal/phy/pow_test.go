package phy

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestRecvPowFast4BitIdentity pins the admissibility claim in pow.go: inside
// the (1e-38, 1e38) window, 1/((d·d)·(d·d)) is bit-for-bit math.Pow(d, -4),
// so the batched kernels may use it without perturbing the exact-mode
// reference differential. Sampled log-uniformly across the whole window plus
// the edges and the d == 0 → 1e-9 substitute the kernels feed it.
func TestRecvPowFast4BitIdentity(t *testing.T) {
	rng := xrand.New(99)
	check := func(pu, d float64) {
		t.Helper()
		got := recvPow(pu, d, 4, true)
		want := pu * math.Pow(d, -4)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("recvPow(%v, %v) = %x, math.Pow reference %x", pu, d, math.Float64bits(got), math.Float64bits(want))
		}
	}
	for i := 0; i < 200000; i++ {
		// d log-uniform in (1e-38, 1e38), pu log-uniform in [1e-3, 1e3].
		d := math.Pow(10, -38+76*rng.Float64())
		pu := math.Pow(10, -3+6*rng.Float64())
		check(pu, d)
	}
	for _, d := range []float64{
		1e-9,                                              // the co-located substitute distance
		math.Nextafter(1e-38, 1), math.Nextafter(1e38, 0), // window interior edges
		1e-38, 1e38, math.Nextafter(1e-38, 0), math.Nextafter(1e38, 2e38), // window exterior: Pow fallback
		5e-324, math.MaxFloat64, // denormal min and float max, far outside
		1, 2, 0.5, // powers of two: exact d^-4
	} {
		check(1, d)
		check(0.75, d)
	}
	// Non-4 path loss always takes the Pow fallback, trivially identical.
	if got, want := recvPow(2, 3, 2.5, false), 2*math.Pow(3, -2.5); got != want {
		t.Fatalf("generic path loss: %v vs %v", got, want)
	}
}
