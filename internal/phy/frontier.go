package phy

// Frontier is one step's transmitter set in the two forms the batched
// reception kernels want: a bitset for O(1) membership tests and the
// ascending id list for ordered iteration. The engines own one Frontier per
// run and rebuild it every step on the coordinator side — the worker-pool
// engine merges its shard transmitter lists into it in ascending global
// order between barriers, so a model receives one canonical frontier no
// matter how the act phase was sharded. (The bitset is deliberately not
// written from worker goroutines: two shards setting bits in one shared
// uint64 word would race, while the per-shard []int32 lists they produce
// are disjoint.)
type Frontier struct {
	bits []uint64
	list []int32
}

// Resize prepares the frontier for node ids in [0, n), preserving the
// grow-only arena discipline: capacity only ever increases, so per-epoch
// Resize calls allocate nothing once the run's node count has been seen.
// The frontier must be empty (Clear) when Resize is called.
func (f *Frontier) Resize(n int) {
	words := (n + 63) / 64
	if cap(f.bits) < words {
		f.bits = make([]uint64, words)
	} else {
		f.bits = f.bits[:words]
	}
	if f.list == nil {
		f.list = make([]int32, 0, n)
	}
}

// Add appends one batch of transmitters, ascending within the batch and
// after every id already added — the engines feed shard batches in
// ascending global order, so the accumulated list stays globally ascending.
func (f *Frontier) Add(tx []int32) {
	for _, v := range tx {
		f.bits[uint32(v)>>6] |= 1 << (uint32(v) & 63)
	}
	f.list = append(f.list, tx...)
}

// Has reports whether v transmits this step.
func (f *Frontier) Has(v int32) bool {
	return f.bits[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

// List returns this step's transmitters in ascending order. The slice is
// owned by the frontier and valid until the next Clear.
func (f *Frontier) List() []int32 { return f.list }

// Len returns the number of transmitters this step.
func (f *Frontier) Len() int { return len(f.list) }

// Clear re-zeroes the frontier at cost proportional to the transmitters
// added, restoring the between-steps all-zero invariant.
func (f *Frontier) Clear() {
	for _, v := range f.list {
		f.bits[uint32(v)>>6] = 0
	}
	f.list = f.list[:0]
}
