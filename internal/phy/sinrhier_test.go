package phy

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// hierPair builds two SINR models over the same deployment, one with the
// two-level ring prune enabled (the default when rc ≥ 2) and one with the
// test hook forcing single-level pruning, both synced.
func hierPair(t *testing.T, pts []Point, params SINRParams) (on, off *SINR) {
	t.Helper()
	csr := emptyCSR(len(pts))
	var err error
	if on, err = NewSINR(pts, params); err != nil {
		t.Fatal(err)
	}
	if off, err = NewSINR(pts, params); err != nil {
		t.Fatal(err)
	}
	off.hierOff = true
	if err := on.Sync(0, csr); err != nil {
		t.Fatal(err)
	}
	if err := off.Sync(0, csr); err != nil {
		t.Fatal(err)
	}
	return on, off
}

// TestHierRingCellsBitIdentical pins the two-level grid invariant at its
// strongest: for every transmitter, the surviving-cell sequence (order
// included) is identical with the coarse-block prune on and off — the
// blocks only ever reject cells the fine test rejects.
func TestHierRingCellsBitIdentical(t *testing.T) {
	rng := xrand.New(41)
	for _, n := range []int{16, 200, 1500} {
		side := math.Sqrt(float64(n) * math.Pi / 8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * side, rng.Float64() * side}
		}
		on, off := hierPair(t, pts, SINRParams{})
		if !on.hier {
			t.Fatalf("n=%d: hierarchy not enabled (rc=%d)", n, on.rc)
		}
		if off.hier {
			t.Fatal("test hook failed to disable hierarchy")
		}
		for u := 0; u < n; u++ {
			a := append([]int32(nil), on.ringCells(int32(u))...)
			b := off.ringCells(int32(u))
			if len(a) != len(b) {
				t.Fatalf("n=%d tx %d: %d cells with hierarchy, %d without", n, u, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d tx %d cell %d: %d vs %d (sequence differs)", n, u, i, a[i], b[i])
				}
			}
		}
	}
}

// TestHierResolveBitIdentical runs random multi-transmitter steps through
// both models and requires byte-identical outcomes — decode pairs and
// collision lists in the same order, not just as sets, since ringCells
// promises an identical cell sequence.
func TestHierResolveBitIdentical(t *testing.T) {
	rng := xrand.New(97)
	for trial := 0; trial < 30; trial++ {
		n := 50 + int(rng.Intn(400))
		side := math.Sqrt(float64(n) * math.Pi / 8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * side, rng.Float64() * side}
		}
		params := SINRParams{}
		if trial%3 == 1 {
			pw := make([]float64, n)
			for i := range pw {
				pw[i] = 0.5 + rng.Float64()
			}
			params.Powers = pw
		}
		on, off := hierPair(t, pts, params)
		var txs []int32
		for v := 0; v < n; v++ {
			if rng.Intn(8) == 0 {
				txs = append(txs, int32(v))
			}
		}
		if len(txs) == 0 {
			txs = append(txs, int32(trial%n))
		}
		var f Frontier
		f.Resize(n)
		f.Add(txs)
		var outOn, outOff Outcome
		on.Resolve(&f, &outOn)
		on.Clear()
		off.Resolve(&f, &outOff)
		off.Clear()
		f.Clear()
		if len(outOn.Decoded) != len(outOff.Decoded) || len(outOn.Collided) != len(outOff.Collided) {
			t.Fatalf("trial %d: outcome sizes differ: %d/%d decodes, %d/%d collisions",
				trial, len(outOn.Decoded), len(outOff.Decoded), len(outOn.Collided), len(outOff.Collided))
		}
		for i := range outOn.Decoded {
			if outOn.Decoded[i] != outOff.Decoded[i] {
				t.Fatalf("trial %d decode %d: %v vs %v", trial, i, outOn.Decoded[i], outOff.Decoded[i])
			}
		}
		for i := range outOn.Collided {
			if outOn.Collided[i] != outOff.Collided[i] {
				t.Fatalf("trial %d collision %d: %d vs %d", trial, i, outOn.Collided[i], outOff.Collided[i])
			}
		}
	}
}

// TestHierDisabledAtSmallRings: a heavily coarsened grid (rc = 1) must not
// enable the hierarchy — the 3×3 ring fits in one block and the coarse test
// would be pure overhead.
func TestHierDisabledAtSmallRings(t *testing.T) {
	// A huge spread with few nodes forces the O(n)-cell coarsening, driving
	// cellSize far above cutoff/3.
	rng := xrand.New(7)
	pts := make([]Point, 30)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 4000, rng.Float64() * 4000}
	}
	s, err := NewSINR(pts, SINRParams{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(0, emptyCSR(len(pts))); err != nil {
		t.Fatal(err)
	}
	if s.dense {
		t.Skip("deployment fell back to dense; nothing to check")
	}
	if s.rc < 2 && s.hier {
		t.Fatalf("hierarchy enabled at rc=%d", s.rc)
	}
}

// FuzzSINRHierVsFlat fuzzes the two-level prune differentially: random
// deployments, cutoff factors, and transmitter sets must produce
// byte-identical outcomes with the coarse-block prune on and off. Bytes
// decode as: data[0] node count, data[1] cutoff selector, data[2:10] RNG
// seed, tail selects transmitters by bit.
func FuzzSINRHierVsFlat(f *testing.F) {
	f.Add([]byte{40, 0, 1, 2, 3, 4, 5, 6, 7, 8, 0xff, 0x0f})
	f.Add([]byte{12, 2, 9, 9, 9, 9, 9, 9, 9, 9, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 11 {
			return
		}
		n := 4 + int(data[0])%120
		cutoffs := []float64{2, 3, 4, 6}
		cutF := cutoffs[int(data[1])%len(cutoffs)]
		seed := binary.LittleEndian.Uint64(data[2:10])
		rng := xrand.New(seed | 1)
		side := math.Sqrt(float64(n) * math.Pi / 8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * side, rng.Float64() * side}
		}
		params := SINRParams{CutoffFactor: cutF}
		csr := graph.New(n).Freeze()
		on, err := NewSINR(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		off, err := NewSINR(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		off.hierOff = true
		if err := on.Sync(0, csr); err != nil {
			t.Fatal(err)
		}
		if err := off.Sync(0, csr); err != nil {
			t.Fatal(err)
		}
		var txs []int32
		sel := data[10:]
		for v := 0; v < n; v++ {
			if sel[(v/8)%len(sel)]&(1<<(v%8)) != 0 {
				txs = append(txs, int32(v))
			}
		}
		if len(txs) == 0 {
			return
		}
		var fr Frontier
		fr.Resize(n)
		fr.Add(txs)
		var outOn, outOff Outcome
		on.Resolve(&fr, &outOn)
		off.Resolve(&fr, &outOff)
		if len(outOn.Decoded) != len(outOff.Decoded) || len(outOn.Collided) != len(outOff.Collided) {
			t.Fatalf("outcome sizes differ: %d/%d decodes, %d/%d collisions",
				len(outOn.Decoded), len(outOff.Decoded), len(outOn.Collided), len(outOff.Collided))
		}
		for i := range outOn.Decoded {
			if outOn.Decoded[i] != outOff.Decoded[i] {
				t.Fatalf("decode %d: %v vs %v", i, outOn.Decoded[i], outOff.Decoded[i])
			}
		}
		for i := range outOn.Collided {
			if outOn.Collided[i] != outOff.Collided[i] {
				t.Fatalf("collision %d: %d vs %d", i, outOn.Collided[i], outOff.Collided[i])
			}
		}
	})
}
