package phy

import "math"

// Point is a position in d-dimensional Euclidean space. It lives in phy —
// the lowest layer that needs geometry — and gen re-exports it as an alias
// (`gen.Point`), so generators, dynamic schedules and reception models all
// share one point type with no conversions.
type Point []float64

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistLInf returns the ℓ∞ distance between p and q. ℓ∞ on R^d is a doubling
// metric, so unit ball graphs under it are growth-bounded (§1.3).
func (p Point) DistLInf(q Point) float64 {
	var m float64
	for i := range p {
		d := math.Abs(p[i] - q[i])
		if d > m {
			m = d
		}
	}
	return m
}
