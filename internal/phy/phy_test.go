package phy

import (
	"testing"

	"repro/internal/graph"
)

// star returns K_{1,n-1} frozen, center 0.
func star(n int) *graph.CSR {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g.Freeze()
}

// resolveOnce drives one synthetic step through a model.
func resolveOnce(t *testing.T, m Model, csr *graph.CSR, tx []int32) Outcome {
	t.Helper()
	if err := m.Sync(0, csr); err != nil {
		t.Fatal(err)
	}
	var f Frontier
	f.Resize(csr.N())
	f.Add(tx)
	var out Outcome
	m.Resolve(&f, &out)
	snap := Outcome{Marker: out.Marker}
	snap.Decoded = append(snap.Decoded, out.Decoded...)
	snap.Collided = append(snap.Collided, out.Collided...)
	m.Clear()
	f.Clear()
	// The all-zero between-steps invariant: an empty follow-up step must
	// resolve to nothing.
	out.Reset()
	m.Resolve(&f, &out)
	if len(out.Decoded) != 0 || len(out.Collided) != 0 {
		t.Fatalf("%s: scratch not cleared, empty step resolved to %+v", m.Name(), out)
	}
	m.Clear()
	return snap
}

func TestCollisionModelRule(t *testing.T) {
	csr := star(4)
	// One transmitting leaf: the center decodes it, other leaves silent.
	out := resolveOnce(t, NewCollision(), csr, []int32{1})
	if len(out.Decoded) != 1 || out.Decoded[0] != (Decode{To: 0, From: 1}) {
		t.Fatalf("single transmitter: %+v", out)
	}
	if len(out.Collided) != 0 || out.Marker {
		t.Fatalf("single transmitter produced collisions: %+v", out)
	}
	// Two transmitting leaves: the center collides, silently (no marker).
	out = resolveOnce(t, NewCollision(), csr, []int32{1, 2})
	if len(out.Decoded) != 0 || len(out.Collided) != 1 || out.Collided[0] != 0 || out.Marker {
		t.Fatalf("two transmitters: %+v", out)
	}
	// CD variant: same reception, but the collision is marked.
	out = resolveOnce(t, NewCollisionCD(), csr, []int32{1, 2})
	if len(out.Collided) != 1 || !out.Marker {
		t.Fatalf("CD two transmitters: %+v", out)
	}
	// The transmitting center is half-duplex: leaves decode it, it hears
	// nothing even while a leaf transmits at it.
	out = resolveOnce(t, NewCollision(), csr, []int32{0, 1})
	for _, d := range out.Decoded {
		if d.To == 0 || d.To == 1 {
			t.Fatalf("transmitter received: %+v", out)
		}
	}
	if len(out.Decoded) != 2 { // leaves 2, 3 decode the center
		t.Fatalf("leaves did not decode the center: %+v", out)
	}
}

func TestCollisionFrontierInShardBatches(t *testing.T) {
	// Adding {1}, then {2} (two pool shards) must equal adding {1, 2}.
	csr := star(4)
	m := NewCollisionCD()
	if err := m.Sync(0, csr); err != nil {
		t.Fatal(err)
	}
	var f Frontier
	f.Resize(csr.N())
	f.Add([]int32{1})
	f.Add([]int32{2})
	var out Outcome
	m.Resolve(&f, &out)
	if len(out.Decoded) != 0 || len(out.Collided) != 1 || out.Collided[0] != 0 {
		t.Fatalf("batched frontier: %+v", out)
	}
}

func TestModelNames(t *testing.T) {
	if NewCollision().Name() != "collision" || NewCollisionCD().Name() != "collision-cd" {
		t.Fatal("collision model names drifted")
	}
	s, err := NewSINR([]Point{{0, 0}}, SINRParams{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sinr" {
		t.Fatal("sinr model name drifted")
	}
}
