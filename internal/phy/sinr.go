package phy

// The SINR reception model — footnote 1's geometric alternative to the
// graph abstraction. A listener v decodes transmitter u iff
//
//	P_u·d(u,v)^-α / (Noise + Σ_{w transmitting, w≠u} P_w·d(w,v)^-α) ≥ Beta.
//
// For Beta ≥ 1 at most one transmitter can clear the threshold, so delivery
// is unambiguous. Transmitters hear nothing (half-duplex, as in the graph
// model). Unlike the pre-PHY internal/sinr loop — O(#tx·n) per step, every
// listener summing every transmitter — this implementation buckets node
// positions into a uniform grid with cell size equal to the largest decode
// range and sweeps, per transmitter, only the cells within the far-field
// cutoff. Per-step cost is O(#tx · nodes-within-cutoff), near-sparse on
// spread-out deployments.
//
// The far-field cutoff is the one deliberate approximation: interference
// from transmitters farther than CutoffFactor decode ranges is dropped. A
// neglected transmitter contributes at most Beta·Noise/CutoffFactor^PathLoss
// (1/256 of the noise floor at the defaults), which only matters for
// listeners already on the decode boundary. CutoffFactor = +Inf disables
// the cutoff entirely and reproduces the old exact loop bit for bit — the
// mode the cross-model validation experiment (E13) and the old-vs-new
// differential tests run in.

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// DefaultCutoffFactor is the far-field cutoff, in multiples of the largest
// decode range, substituted when SINRParams.CutoffFactor is zero.
const DefaultCutoffFactor = 4

// SINRParams are the physical-layer parameters of the SINR model. The zero
// value of every field means "default"; WithDefaults resolves them. Noise
// is the one field whose zero is a meaningful physical value (a noiseless
// channel), so it carries an explicit NoiseSet bit instead of a zero
// sentinel.
type SINRParams struct {
	// Power is the uniform transmission power P > 0. Default 1.
	Power float64
	// Powers, when non-nil, gives heterogeneous per-node transmission
	// powers (length n, all > 0), overriding Power.
	Powers []float64
	// PathLoss is the path-loss exponent α > 0 (typically 2–6). Default 4 —
	// path-loss exponents >2 model near-ground propagation.
	PathLoss float64
	// Noise is the ambient noise floor N ≥ 0. Meaningful only when NoiseSet
	// is true; the default (NoiseSet false) is chosen so the decode range
	// at zero interference is exactly 1 (the unit disk): N = Power/Beta.
	// An explicit zero (NoiseSet true, Noise 0) is a noiseless channel with
	// unbounded decode range — representable, unlike in the old
	// sinr.Params, whose Noise==0 always meant "unset".
	Noise    float64
	NoiseSet bool
	// Beta is the SINR decode threshold β ≥ 1. Default 2.
	Beta float64
	// CutoffFactor is the far-field interference cutoff in multiples of the
	// largest decode range. Zero selects DefaultCutoffFactor; +Inf disables
	// truncation (exact interference sums, O(#tx·n) worst case).
	CutoffFactor float64
}

// WithDefaults resolves zero fields to their defaults. The returned params
// have NoiseSet true, so defaults made explicit survive re-resolution.
func (p SINRParams) WithDefaults() SINRParams {
	if p.Power <= 0 {
		p.Power = 1
	}
	if p.PathLoss <= 0 {
		p.PathLoss = 4
	}
	if p.Beta <= 0 {
		p.Beta = 2
	}
	if !p.NoiseSet {
		// Decode range 1 at zero interference: P·1^-α / N = β.
		p.Noise = p.Power / p.Beta
		p.NoiseSet = true
	}
	if p.CutoffFactor == 0 {
		p.CutoffFactor = DefaultCutoffFactor
	}
	return p
}

// Validate checks resolved params (call WithDefaults first or use explicit
// values throughout).
func (p SINRParams) Validate() error {
	if math.IsNaN(p.Power) || math.IsInf(p.Power, 0) || p.Power <= 0 {
		return fmt.Errorf("phy: Power %v must be positive and finite", p.Power)
	}
	if math.IsNaN(p.PathLoss) || math.IsInf(p.PathLoss, 0) || p.PathLoss <= 0 {
		return fmt.Errorf("phy: PathLoss %v must be positive and finite", p.PathLoss)
	}
	if p.Beta < 1 || math.IsNaN(p.Beta) || math.IsInf(p.Beta, 0) {
		return fmt.Errorf("phy: Beta %v must be ≥ 1 (unambiguous decoding) and finite", p.Beta)
	}
	if p.Noise < 0 || math.IsNaN(p.Noise) || math.IsInf(p.Noise, 0) {
		return fmt.Errorf("phy: Noise %v must be ≥ 0 and finite", p.Noise)
	}
	if p.CutoffFactor < 1 && !math.IsInf(p.CutoffFactor, 1) {
		return fmt.Errorf("phy: CutoffFactor %v must be ≥ 1 or +Inf", p.CutoffFactor)
	}
	for i, pw := range p.Powers {
		if math.IsNaN(pw) || math.IsInf(pw, 0) || pw <= 0 {
			return fmt.Errorf("phy: Powers[%d] = %v must be positive and finite", i, pw)
		}
	}
	return nil
}

// DecodeRange returns the maximum distance at which a lone transmitter at
// the uniform Power is decodable: P·d^-α / N ≥ β ⇔ d ≤ (P/(N·β))^(1/α).
// A noiseless channel (explicit Noise 0) has unbounded range: +Inf.
func (p SINRParams) DecodeRange() float64 {
	p = p.WithDefaults()
	return p.RangeFor(p.Power)
}

// RangeFor returns the decode range of a transmitter with the given power
// under resolved params (+Inf on a noiseless channel).
func (p SINRParams) RangeFor(power float64) float64 {
	if p.Noise == 0 {
		return math.Inf(1)
	}
	return math.Pow(power/(p.Noise*p.Beta), 1/p.PathLoss)
}

// PositionSource supplies per-epoch node positions to a mobile SINR model.
// dyn.Schedule implements it when built with positions attached
// (gen.MobileUDG); PositionsAt must be a pure function of step, like
// radio.Topology's EpochAt.
type PositionSource interface {
	PositionsAt(step int) []Point
}

// SINR is the Model implementation. Build with NewSINR (static positions)
// or NewMobileSINR (positions per epoch from a PositionSource).
type SINR struct {
	params   SINRParams
	src      PositionSource // nil for static runs
	pts      []Point
	maxRange float64 // largest per-node decode range
	cutoff   float64 // absolute far-field cutoff distance (may be +Inf)

	// Uniform grid over the epoch's positions: cellNodes holds node indices
	// bucketed by cell in CSR layout. dense is the fallback (non-2D points,
	// unbounded range) that sweeps every node.
	dense      bool
	cellSize   float64
	cols, rows int
	minX, minY float64
	cellStart  []int32
	cellNodes  []int32

	// Per-step scratch, all-zero between steps (see Model.Clear).
	isTx     []bool
	txAll    []int32
	acc      []float64 // total received power per touched listener
	bestPow  []float64 // strongest single signal per touched listener
	bestFrom []int32   // its transmitter (valid when seen)
	seen     []bool
	touched  []int32
}

// NewSINR builds the SINR model over static positions. params defaults are
// resolved; the points must be non-empty and share one dimension.
func NewSINR(pts []Point, params SINRParams) (*SINR, error) {
	s, err := newSINR(params)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("phy: no points")
	}
	s.pts = pts
	return s, nil
}

// NewMobileSINR builds a SINR model whose positions come from src at every
// topology epoch — the mobile-deployment variant. The engine's Sync calls
// feed it the epoch boundaries.
func NewMobileSINR(src PositionSource, params SINRParams) (*SINR, error) {
	s, err := newSINR(params)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("phy: nil position source")
	}
	s.src = src
	return s, nil
}

func newSINR(params SINRParams) (*SINR, error) {
	params = params.WithDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &SINR{params: params}, nil
}

// Params returns the resolved parameters.
func (s *SINR) Params() SINRParams { return s.params }

// Name implements Model.
func (s *SINR) Name() string { return "sinr" }

// powerOf returns node v's transmission power.
func (s *SINR) powerOf(v int32) float64 {
	if s.params.Powers != nil {
		return s.params.Powers[v]
	}
	return s.params.Power
}

// Sync implements Model: fetch the epoch's positions (mobile runs), size
// the scratch, and rebuild the grid buckets. Runs once per epoch, never per
// step, so the allocations here stay off the hot path.
func (s *SINR) Sync(step int, csr *graph.CSR) error {
	if s.src != nil {
		s.pts = s.src.PositionsAt(step)
		if s.pts == nil {
			return fmt.Errorf("phy: position source has no positions at step %d (build the schedule with positions attached)", step)
		}
	}
	n := csr.N()
	if len(s.pts) != n {
		return fmt.Errorf("phy: %d positions for %d nodes", len(s.pts), n)
	}
	if s.params.Powers != nil && len(s.params.Powers) != n {
		return fmt.Errorf("phy: %d per-node powers for %d nodes", len(s.params.Powers), n)
	}
	if len(s.acc) < n {
		s.isTx = make([]bool, n)
		s.txAll = make([]int32, 0, n)
		s.acc = make([]float64, n)
		s.bestPow = make([]float64, n)
		s.bestFrom = make([]int32, n)
		s.seen = make([]bool, n)
		s.touched = make([]int32, 0, n)
	}
	s.maxRange = s.params.RangeFor(s.params.Power)
	if s.params.Powers != nil {
		s.maxRange = 0
		for _, pw := range s.params.Powers {
			if r := s.params.RangeFor(pw); r > s.maxRange {
				s.maxRange = r
			}
		}
	}
	s.cutoff = s.params.CutoffFactor * s.maxRange
	s.buildGrid()
	return nil
}

// buildGrid buckets the positions into a uniform grid with cell size equal
// to the largest decode range (so one cell ring covers a decode disk), or
// falls back to a dense sweep when the geometry does not bucket: unbounded
// decode range (noiseless channel), an infinite cutoff (exact-interference
// mode sums every transmitter at every listener by definition), or non-2D
// points.
func (s *SINR) buildGrid() {
	s.dense = true
	if math.IsInf(s.maxRange, 1) || s.maxRange <= 0 || math.IsInf(s.cutoff, 1) {
		return
	}
	for _, p := range s.pts {
		if len(p) != 2 {
			return
		}
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range s.pts {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	cs := s.maxRange
	cols := int((maxX-minX)/cs) + 1
	rows := int((maxY-minY)/cs) + 1
	// Bound the grid to O(n) cells: very spread-out deployments would
	// otherwise allocate a table dominated by empty cells.
	if limit := 4*len(s.pts) + 16; cols*rows > limit {
		scale := math.Sqrt(float64(cols*rows) / float64(limit))
		cs *= scale
		cols = int((maxX-minX)/cs) + 1
		rows = int((maxY-minY)/cs) + 1
	}
	s.dense = false
	s.cellSize, s.cols, s.rows, s.minX, s.minY = cs, cols, rows, minX, minY
	cells := cols * rows
	if len(s.cellStart) < cells+1 {
		s.cellStart = make([]int32, cells+1)
	} else {
		s.cellStart = s.cellStart[:cells+1]
		for i := range s.cellStart {
			s.cellStart[i] = 0
		}
	}
	if len(s.cellNodes) < len(s.pts) {
		s.cellNodes = make([]int32, len(s.pts))
	}
	// Counting sort by cell; node order inside each cell stays ascending,
	// keeping the sweep (and so the touched order) deterministic.
	for _, p := range s.pts {
		s.cellStart[s.cellIndex(p)+1]++
	}
	for i := 1; i <= cells; i++ {
		s.cellStart[i] += s.cellStart[i-1]
	}
	cursor := make([]int32, cells)
	copy(cursor, s.cellStart[:cells])
	for v, p := range s.pts {
		c := s.cellIndex(p)
		s.cellNodes[cursor[c]] = int32(v)
		cursor[c]++
	}
}

// cellIndex maps a point to its grid cell.
func (s *SINR) cellIndex(p Point) int {
	cx := int((p[0] - s.minX) / s.cellSize)
	cy := int((p[1] - s.minY) / s.cellSize)
	if cx >= s.cols {
		cx = s.cols - 1
	}
	if cy >= s.rows {
		cy = s.rows - 1
	}
	return cy*s.cols + cx
}

// Observe implements Model: record the batch. Interference accumulation is
// deferred to Resolve, where the full transmitter set is known (a node in a
// later shard's batch may itself transmit and must not be swept as a
// listener) and the fixed ascending-index accumulation order is guaranteed.
func (s *SINR) Observe(tx []int32) {
	for _, v := range tx {
		s.isTx[v] = true
	}
	s.txAll = append(s.txAll, tx...)
}

// Resolve implements Model. Pass 1 sweeps each transmitter's cutoff
// neighborhood in ascending transmitter order — every touched listener
// accumulates its received powers in exactly that order, so the
// floating-point sums (and hence every decision) are identical however the
// transmitter batches were sharded. Pass 2 applies the threshold test, with
// the same arithmetic as the old exact loop: strongest signal against noise
// plus the sum of the rest.
func (s *SINR) Resolve(out *Outcome) {
	for _, u := range s.txAll {
		s.sweep(u)
	}
	multi := len(s.txAll) > 1
	noise := s.params.Noise
	beta := s.params.Beta
	for _, v := range s.touched {
		bp := s.bestPow[v]
		if bp/(noise+(s.acc[v]-bp)) >= beta {
			out.Decoded = append(out.Decoded, Decode{To: v, From: s.bestFrom[v]})
		} else if multi {
			// Touched (within the cutoff of some transmitter) but decoded
			// nothing while ≥2 transmitters were active. Single-transmitter
			// steps record no collisions: a lone touched listener either
			// decodes or is simply out of range. See Outcome.Collided for
			// why this stat varies with CutoffFactor.
			out.Collided = append(out.Collided, v)
		}
	}
}

// sweep accumulates transmitter u's received power onto every non-
// transmitting node within the far-field cutoff.
func (s *SINR) sweep(u int32) {
	pu := s.powerOf(u)
	if s.dense {
		for v := range s.pts {
			s.contribute(u, int32(v), pu)
		}
		return
	}
	p := s.pts[u]
	rc := int(math.Ceil(s.cutoff / s.cellSize))
	cx := int((p[0] - s.minX) / s.cellSize)
	cy := int((p[1] - s.minY) / s.cellSize)
	if cx >= s.cols {
		cx = s.cols - 1
	}
	if cy >= s.rows {
		cy = s.rows - 1
	}
	for gy := max(cy-rc, 0); gy <= min(cy+rc, s.rows-1); gy++ {
		for gx := max(cx-rc, 0); gx <= min(cx+rc, s.cols-1); gx++ {
			c := gy*s.cols + gx
			for _, v := range s.cellNodes[s.cellStart[c]:s.cellStart[c+1]] {
				s.contribute(u, v, pu)
			}
		}
	}
}

// contribute adds u's signal at v to the accumulation scratch.
func (s *SINR) contribute(u, v int32, pu float64) {
	if s.isTx[v] {
		return // transmitters hear nothing, including their own signal
	}
	d := s.pts[u].Dist(s.pts[v])
	if d == 0 {
		d = 1e-9 // co-located points: effectively infinite power
	}
	if d > s.cutoff {
		return
	}
	pow := pu * math.Pow(d, -s.params.PathLoss)
	if !s.seen[v] {
		s.seen[v] = true
		s.touched = append(s.touched, v)
	}
	s.acc[v] += pow
	if pow > s.bestPow[v] {
		s.bestPow[v] = pow
		s.bestFrom[v] = u
	}
}

// Clear implements Model.
func (s *SINR) Clear() {
	for _, v := range s.touched {
		s.acc[v] = 0
		s.bestPow[v] = 0
		s.seen[v] = false
	}
	for _, v := range s.txAll {
		s.isTx[v] = false
	}
	s.touched = s.touched[:0]
	s.txAll = s.txAll[:0]
}
