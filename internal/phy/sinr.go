package phy

// The SINR reception model — footnote 1's geometric alternative to the
// graph abstraction. A listener v decodes transmitter u iff
//
//	P_u·d(u,v)^-α / (Noise + Σ_{w transmitting, w≠u} P_w·d(w,v)^-α) ≥ Beta.
//
// For Beta ≥ 1 at most one transmitter can clear the threshold, so delivery
// is unambiguous. Transmitters hear nothing (half-duplex, as in the graph
// model).
//
// The implementation is batch-oriented (DESIGN.md §7): node positions and
// powers live in structure-of-arrays form (flat xs/ys/pw float64 slices,
// uint32 ids in the kernel arrays), positions are bucketed into a uniform
// grid with cell size equal to the largest decode range, and each step
// resolves receiver-bucket by receiver-bucket — a CSR-style candidate table
// maps every bucket to the transmitters within the far-field cutoff ring,
// built in ascending transmitter order, and one fused pass per bucket
// accumulates interference and applies the threshold with per-listener
// state held in registers. Per-step cost is O(#tx · nodes-within-cutoff),
// near-sparse on spread-out deployments, and the scratch is arena-style
// per-epoch buffers so the step loop performs zero heap allocations.
//
// Bit-exactness is a hard constraint, not a nicety: every kernel
// accumulates each listener's interference in ascending transmitter order
// with the exact arithmetic of the pre-batch code (Dist's summation order,
// math.Pow's rounding — see pow.go — and the d==0 clamp), so the float
// sums, and hence every decode decision, are identical whether the step ran
// through the batched kernels, the per-transmitter fallback sweep, or the
// dense exact-mode loop, and identical however the engines sharded the act
// phase. That is what keeps the committed golden digests and the
// old-vs-new reference differential valid across this layout change.
//
// The far-field cutoff is the one deliberate approximation: interference
// from transmitters farther than CutoffFactor decode ranges is dropped. A
// neglected transmitter contributes at most Beta·Noise/CutoffFactor^PathLoss
// (1/256 of the noise floor at the defaults), which only matters for
// listeners already on the decode boundary. CutoffFactor = +Inf disables
// the cutoff entirely and reproduces the old exact loop bit for bit — the
// mode the cross-model validation experiment (E13) and the old-vs-new
// differential tests run in.

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// DefaultCutoffFactor is the far-field cutoff, in multiples of the largest
// decode range, substituted when SINRParams.CutoffFactor is zero.
const DefaultCutoffFactor = 4

// SINRParams are the physical-layer parameters of the SINR model. The zero
// value of every field means "default"; WithDefaults resolves them. Noise
// is the one field whose zero is a meaningful physical value (a noiseless
// channel), so it carries an explicit NoiseSet bit instead of a zero
// sentinel.
type SINRParams struct {
	// Power is the uniform transmission power P > 0. Default 1.
	Power float64
	// Powers, when non-nil, gives heterogeneous per-node transmission
	// powers (length n, all > 0), overriding Power.
	Powers []float64
	// PathLoss is the path-loss exponent α > 0 (typically 2–6). Default 4 —
	// path-loss exponents >2 model near-ground propagation.
	PathLoss float64
	// Noise is the ambient noise floor N ≥ 0. Meaningful only when NoiseSet
	// is true; the default (NoiseSet false) is chosen so the decode range
	// at zero interference is exactly 1 (the unit disk): N = Power/Beta.
	// An explicit zero (NoiseSet true, Noise 0) is a noiseless channel with
	// unbounded decode range — representable, unlike in the old
	// sinr.Params, whose Noise==0 always meant "unset".
	Noise    float64
	NoiseSet bool
	// Beta is the SINR decode threshold β ≥ 1. Default 2.
	Beta float64
	// CutoffFactor is the far-field interference cutoff in multiples of the
	// largest decode range. Zero selects DefaultCutoffFactor; +Inf disables
	// truncation (exact interference sums, O(#tx·n) worst case).
	CutoffFactor float64
}

// WithDefaults resolves zero fields to their defaults. The returned params
// have NoiseSet true, so defaults made explicit survive re-resolution.
func (p SINRParams) WithDefaults() SINRParams {
	if p.Power <= 0 {
		p.Power = 1
	}
	if p.PathLoss <= 0 {
		p.PathLoss = 4
	}
	if p.Beta <= 0 {
		p.Beta = 2
	}
	if !p.NoiseSet {
		// Decode range 1 at zero interference: P·1^-α / N = β.
		p.Noise = p.Power / p.Beta
		p.NoiseSet = true
	}
	if p.CutoffFactor == 0 {
		p.CutoffFactor = DefaultCutoffFactor
	}
	return p
}

// Validate checks resolved params (call WithDefaults first or use explicit
// values throughout).
func (p SINRParams) Validate() error {
	if math.IsNaN(p.Power) || math.IsInf(p.Power, 0) || p.Power <= 0 {
		return fmt.Errorf("phy: Power %v must be positive and finite", p.Power)
	}
	if math.IsNaN(p.PathLoss) || math.IsInf(p.PathLoss, 0) || p.PathLoss <= 0 {
		return fmt.Errorf("phy: PathLoss %v must be positive and finite", p.PathLoss)
	}
	if p.Beta < 1 || math.IsNaN(p.Beta) || math.IsInf(p.Beta, 0) {
		return fmt.Errorf("phy: Beta %v must be ≥ 1 (unambiguous decoding) and finite", p.Beta)
	}
	if p.Noise < 0 || math.IsNaN(p.Noise) || math.IsInf(p.Noise, 0) {
		return fmt.Errorf("phy: Noise %v must be ≥ 0 and finite", p.Noise)
	}
	if p.CutoffFactor < 1 && !math.IsInf(p.CutoffFactor, 1) {
		return fmt.Errorf("phy: CutoffFactor %v must be ≥ 1 or +Inf", p.CutoffFactor)
	}
	for i, pw := range p.Powers {
		if math.IsNaN(pw) || math.IsInf(pw, 0) || pw <= 0 {
			return fmt.Errorf("phy: Powers[%d] = %v must be positive and finite", i, pw)
		}
	}
	return nil
}

// DecodeRange returns the maximum distance at which a lone transmitter at
// the uniform Power is decodable: P·d^-α / N ≥ β ⇔ d ≤ (P/(N·β))^(1/α).
// A noiseless channel (explicit Noise 0) has unbounded range: +Inf.
func (p SINRParams) DecodeRange() float64 {
	p = p.WithDefaults()
	return p.RangeFor(p.Power)
}

// RangeFor returns the decode range of a transmitter with the given power
// under resolved params (+Inf on a noiseless channel).
func (p SINRParams) RangeFor(power float64) float64 {
	if p.Noise == 0 {
		return math.Inf(1)
	}
	return math.Pow(power/(p.Noise*p.Beta), 1/p.PathLoss)
}

// PositionSource supplies per-epoch node positions to a mobile SINR model.
// dyn.Schedule implements it when built with positions attached
// (gen.MobileUDG); PositionsAt must be a pure function of step, like
// radio.Topology's EpochAt.
type PositionSource interface {
	PositionsAt(step int) []Point
}

// SINR is the Model implementation. Build with NewSINR (static positions)
// or NewMobileSINR (positions per epoch from a PositionSource).
type SINR struct {
	params   SINRParams
	src      PositionSource // nil for static runs
	pts      []Point
	maxRange float64 // largest per-node decode range
	cutoff   float64 // absolute far-field cutoff distance (may be +Inf)
	fast4    bool    // PathLoss == 4: the bit-exact fast d^-α path (pow.go)

	// Structure-of-arrays node state, rebuilt per epoch in Sync: positions
	// as flat coordinate slices (soa is false when the deployment is not
	// 2-D, forcing the generic Point fallback) and resolved per-node powers.
	xs, ys []float64
	pw     []float64
	soa    bool

	// Uniform grid over the epoch's positions: cellNodes holds node ids
	// bucketed by cell in CSR layout, nodeCell the inverse map. dense is
	// the fallback (non-2D points, unbounded range, infinite cutoff) that
	// sweeps every listener against every transmitter.
	dense      bool
	cellSize   float64
	cols, rows int
	minX, minY float64
	cellStart  []int32
	cellNodes  []uint32
	nodeCell   []int32

	// Ring geometry, fixed per epoch: rc is the ring radius in cells
	// (⌈cutoff/cellSize⌉, ≤ 3 by construction), thr the squared-distance
	// prune threshold cutoff²·(1+1e-9). hier enables the two-level ring
	// prune (coarse hierBlock-cell blocks rejected before their fine cells
	// are tested); hierOff is the test hook that forces it off so the
	// differential and fuzz tests can compare the two prunes bit for bit.
	// ringBuf is the per-call surviving-cell list (capacity for the largest
	// possible ring, so the step loop never grows it).
	rc      int32
	thr     float64
	hier    bool
	hierOff bool
	ringBuf []int32

	// Per-step candidate table for the bucketed kernel (all-zero between
	// steps): candU[candStart[c]-candCnt[c]:candStart[c]] lists, ascending,
	// the transmitters whose cutoff ring covers receiver cell c; rcCells
	// tracks the cells dirtied this step. candU's length is the arena
	// budget — a step whose rings overflow it resolves through the
	// per-transmitter fallback sweep instead of allocating.
	candU     []uint32
	candCnt   []int32
	candStart []int32
	rcCells   []int32

	// Fallback-sweep scratch (all-zero between steps, cleared via touched).
	acc      []float64 // total received power per touched listener
	bestPow  []float64 // strongest single signal per touched listener
	bestFrom []int32   // its transmitter (valid when seen)
	seen     []bool
	touched  []int32

	// Load statistics for the StatsSource interface: plain fields, bumped
	// inline in the kernels (one compare + at most two stores per step) and
	// read only at epoch boundaries by the engine's probe.
	arenaHighWater int
	fallbackSweeps uint64
}

// NewSINR builds the SINR model over static positions. params defaults are
// resolved; the points must be non-empty and share one dimension.
func NewSINR(pts []Point, params SINRParams) (*SINR, error) {
	s, err := newSINR(params)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("phy: no points")
	}
	s.pts = pts
	return s, nil
}

// NewMobileSINR builds a SINR model whose positions come from src at every
// topology epoch — the mobile-deployment variant. The engine's Sync calls
// feed it the epoch boundaries.
func NewMobileSINR(src PositionSource, params SINRParams) (*SINR, error) {
	s, err := newSINR(params)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("phy: nil position source")
	}
	s.src = src
	return s, nil
}

func newSINR(params SINRParams) (*SINR, error) {
	params = params.WithDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &SINR{params: params}, nil
}

// Params returns the resolved parameters.
func (s *SINR) Params() SINRParams { return s.params }

// Name implements Model.
func (s *SINR) Name() string { return "sinr" }

// Sync implements Model: fetch the epoch's positions (mobile runs), rebuild
// the structure-of-arrays state and the grid buckets, and size the arenas.
// Runs once per epoch, never per step, so the allocations here stay off the
// hot path.
func (s *SINR) Sync(step int, csr *graph.CSR) error {
	if s.src != nil {
		s.pts = s.src.PositionsAt(step)
		if s.pts == nil {
			return fmt.Errorf("phy: position source has no positions at step %d (build the schedule with positions attached)", step)
		}
	}
	n := csr.N()
	if len(s.pts) != n {
		return fmt.Errorf("phy: %d positions for %d nodes", len(s.pts), n)
	}
	if s.params.Powers != nil && len(s.params.Powers) != n {
		return fmt.Errorf("phy: %d per-node powers for %d nodes", len(s.params.Powers), n)
	}
	s.fast4 = s.params.pow4()
	// Positions into SoA form; powers resolved per node so the kernels
	// never branch on the uniform-vs-heterogeneous distinction.
	s.xs, s.ys, s.soa = splitXYInto(s.pts, s.xs, s.ys)
	s.pw = grow(s.pw, n)
	if s.params.Powers != nil {
		copy(s.pw, s.params.Powers)
	} else {
		for i := range s.pw {
			s.pw[i] = s.params.Power
		}
	}
	// Fallback-sweep scratch, all-zero between steps.
	if len(s.acc) < n {
		s.acc = make([]float64, n)
		s.bestPow = make([]float64, n)
		s.bestFrom = make([]int32, n)
		s.seen = make([]bool, n)
		s.touched = make([]int32, 0, n)
	}
	s.maxRange = s.params.RangeFor(s.params.Power)
	if s.params.Powers != nil {
		s.maxRange = 0
		for _, pw := range s.params.Powers {
			if r := s.params.RangeFor(pw); r > s.maxRange {
				s.maxRange = r
			}
		}
	}
	s.cutoff = s.params.CutoffFactor * s.maxRange
	s.buildGrid()
	return nil
}

// SplitXY converts a 2-D deployment to structure-of-arrays coordinate
// slices. ok is false (and the slices nil) when any point is not 2-D —
// callers fall back to the generic Point path. This is the shared SoA
// handoff between the generators and the reception kernels: gen's bucketed
// graph builders and the SINR model split the same way, so the two layers
// agree on which deployments take the flat-slice fast paths.
func SplitXY(pts []Point) (xs, ys []float64, ok bool) {
	return splitXYInto(pts, nil, nil)
}

// splitXYInto is SplitXY reusing caller-owned arena buffers.
func splitXYInto(pts []Point, xbuf, ybuf []float64) (xs, ys []float64, ok bool) {
	for _, p := range pts {
		if len(p) != 2 {
			return nil, nil, false
		}
	}
	xs = grow(xbuf, len(pts))
	ys = grow(ybuf, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p[0], p[1]
	}
	return xs, ys, true
}

// buildGrid buckets the positions into a uniform grid with cell size equal
// to the largest decode range (so one cell ring covers a decode disk), or
// falls back to a dense sweep when the geometry does not bucket: unbounded
// decode range (noiseless channel), an infinite cutoff (exact-interference
// mode sums every transmitter at every listener by definition), or non-2D
// points.
func (s *SINR) buildGrid() {
	s.dense = true
	if math.IsInf(s.maxRange, 1) || s.maxRange <= 0 || math.IsInf(s.cutoff, 1) || !s.soa {
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range s.xs {
		minX, maxX = math.Min(minX, s.xs[i]), math.Max(maxX, s.xs[i])
		minY, maxY = math.Min(minY, s.ys[i]), math.Max(maxY, s.ys[i])
	}
	// Cell size cutoff/3 balances the two per-transmitter costs: the ring
	// sweep touches (2·ceil(cutoff/cs)+1)² cells (shrinks with bigger
	// cells) while the pair tests cover the ring's area (approaches the
	// cutoff disk with smaller cells). rc=3 keeps the ring at 7×7 = 49
	// cells for ~8% more area than the rc=4 ring — measured fastest on the
	// bench deployments. Correctness never depends on the choice: the
	// kernels derive the ring radius from cellSize, and accumulation order
	// is per-listener ascending regardless of geometry.
	cs := s.cutoff / 3
	cols := int((maxX-minX)/cs) + 1
	rows := int((maxY-minY)/cs) + 1
	// Bound the grid to O(n) cells: very spread-out deployments would
	// otherwise allocate a table dominated by empty cells.
	if limit := 4*len(s.pts) + 16; cols*rows > limit {
		scale := math.Sqrt(float64(cols*rows) / float64(limit))
		cs *= scale
		cols = int((maxX-minX)/cs) + 1
		rows = int((maxY-minY)/cs) + 1
	}
	s.dense = false
	s.cellSize, s.cols, s.rows, s.minX, s.minY = cs, cols, rows, minX, minY
	s.rc = int32(math.Ceil(s.cutoff / cs))
	s.thr = s.cutoff * s.cutoff * (1 + 1e-9)
	// The coarse-block prune only pays for itself when a ring spans more
	// than one block per axis; at rc = 1 (heavily coarsened grids) the ring
	// is already 3×3 and the hierarchy would be pure overhead.
	s.hier = s.rc >= 2 && !s.hierOff
	if s.ringBuf == nil {
		s.ringBuf = make([]int32, 0, (2*maxRingRC+1)*(2*maxRingRC+1))
	}
	cells := cols * rows
	n := len(s.pts)
	s.cellStart = grow(s.cellStart, cells+1)
	for i := range s.cellStart {
		s.cellStart[i] = 0
	}
	s.cellNodes = grow(s.cellNodes, n)
	s.nodeCell = grow(s.nodeCell, n)
	// The per-step candidate table: counters and segment cursors per cell
	// (kept all-zero between steps by the bucketed kernel itself) and the
	// flat id arena. The budget bounds the table at 8 ids per node — far
	// above the sparse-frontier steady state; a transmit storm past it
	// resolves through the fallback sweep, never an allocation.
	s.candCnt = grow(s.candCnt, cells)
	s.candStart = grow(s.candStart, cells)
	s.candU = grow(s.candU, max(8*n, 1024))
	if s.rcCells == nil {
		s.rcCells = make([]int32, 0, cells)
	}
	// Counting sort by cell; node order inside each cell stays ascending,
	// keeping every kernel's per-listener accumulation order deterministic.
	for v := 0; v < n; v++ {
		c := s.cellIndexXY(s.xs[v], s.ys[v])
		s.nodeCell[v] = int32(c)
		s.cellStart[c+1]++
	}
	for i := 1; i <= cells; i++ {
		s.cellStart[i] += s.cellStart[i-1]
	}
	cursor := make([]int32, cells)
	copy(cursor, s.cellStart[:cells])
	for v := 0; v < n; v++ {
		c := s.nodeCell[v]
		s.cellNodes[cursor[c]] = uint32(v)
		cursor[c]++
	}
}

// cellIndexXY maps a coordinate pair to its grid cell.
func (s *SINR) cellIndexXY(x, y float64) int {
	cx := int((x - s.minX) / s.cellSize)
	cy := int((y - s.minY) / s.cellSize)
	if cx >= s.cols {
		cx = s.cols - 1
	}
	if cy >= s.rows {
		cy = s.rows - 1
	}
	return cy*s.cols + cx
}

// Resolve implements Model: decide reception for the step's transmitter
// frontier. Dispatch: the dense kernel when the geometry does not bucket,
// otherwise the bucketed batch kernel, overflowing to the per-transmitter
// sweep when a transmit storm outgrows the candidate arena. All three
// accumulate each listener's interference in ascending transmitter order
// with identical arithmetic, so the choice never changes a decision.
func (s *SINR) Resolve(f *Frontier, out *Outcome) {
	if f.Len() == 0 {
		return
	}
	if s.dense {
		s.resolveDense(f, out)
		return
	}
	s.resolveBucketed(f, out)
}

// resolveBucketed is the batch kernel. Three passes over per-cell state:
// count candidate entries per receiver cell (every transmitter's cutoff
// ring, clipped to the grid), turn the counts into CSR segment cursors,
// and fill the segments — iterating transmitters in ascending order both
// times, so each cell's candidate list is ascending by construction. The
// fused per-bucket pass then resolves every listener of every dirtied cell
// with accumulator, best-signal, and best-transmitter state in registers,
// appending decodes and collisions directly; no per-listener scratch is
// written at all.
//
// Both ring passes route through ringCells, which prunes cells whose
// nearest point lies beyond the cutoff from the transmitter (the ring is
// square, the cutoff disk is not — at cell side cutoff/3 the corners are
// ~16% of the ring area), hierarchically when the ring is big enough for
// coarse blocks to pay (see ringCells). The test uses squared distances
// with a 1e-9 relative slack above cutoff², so a pruned cell's every pair
// is beyond the cutoff by margins no rounding in the kernel's distance
// chain (a few ulps) can cross — and the kernels mask (or skip) exactly
// those pairs anyway, so pruning never changes a bit. The two passes
// evaluate the identical float expressions, keeping counts and fills
// consistent.
func (s *SINR) resolveBucketed(f *Frontier, out *Outcome) {
	txs := f.List()
	// Pass 1: count ring entries per receiver cell, tracking dirtied cells.
	total := 0
	for _, u := range txs {
		for _, cell := range s.ringCells(u) {
			if s.candCnt[cell] == 0 {
				s.rcCells = append(s.rcCells, cell)
			}
			s.candCnt[cell]++
			total++
		}
	}
	if total > s.arenaHighWater {
		s.arenaHighWater = total
	}
	if total > len(s.candU) {
		// Transmit storm past the arena budget: undo the counts and resolve
		// through the per-transmitter sweep — same decisions, no allocation.
		s.fallbackSweeps++
		for _, c := range s.rcCells {
			s.candCnt[c] = 0
		}
		s.rcCells = s.rcCells[:0]
		s.resolveSweep(f, out)
		return
	}
	// Pass 2: CSR offsets. candStart[c] walks to the segment end during the
	// fill, so afterwards the segment is candU[candStart[c]-candCnt[c]:candStart[c]].
	off := int32(0)
	for _, c := range s.rcCells {
		s.candStart[c] = off
		off += s.candCnt[c]
	}
	// Pass 3: fill, ascending transmitter order per cell, repeating pass 1's
	// pruning test bit for bit so counts and fills agree.
	for _, u := range txs {
		uu := uint32(u)
		for _, cell := range s.ringCells(u) {
			s.candU[s.candStart[cell]] = uu
			s.candStart[cell]++
		}
	}
	// Fused accumulate+threshold pass, one receiver bucket at a time.
	multi := len(txs) > 1
	noise, beta := s.params.Noise, s.params.Beta
	alpha, fast4 := s.params.PathLoss, s.fast4
	cutoff := s.cutoff
	xs, ys, pw := s.xs, s.ys, s.pw
	// The outcome slices live in registers for the duration of the pass —
	// appending through the pointer would reload the slice header on every
	// listener (the compiler cannot prove out doesn't alias the kernel
	// state).
	dec, col := out.Decoded, out.Collided
	for _, c := range s.rcCells {
		end := s.candStart[c]
		cands := s.candU[end-s.candCnt[c] : end]
		for _, vu := range s.cellNodes[s.cellStart[c]:s.cellStart[c+1]] {
			v := int32(vu)
			if f.Has(v) {
				continue // transmitters hear nothing, including themselves
			}
			xv, yv := xs[v], ys[v]
			var acc, best float64
			bestU := int32(-1)
			if fast4 {
				// The default-α kernel is branchless on the cutoff: whether a
				// candidate is within range is data-dependent and essentially
				// random, so a skip branch would mispredict on roughly half
				// the pairs and stall the pipeline for longer than the d⁻⁴
				// arithmetic it saves. Instead every pair's power is computed
				// (sqrt and divide overlap across iterations — they have no
				// loop-carried dependency) and out-of-range contributions are
				// masked to +0.0, which is exact to add and never wins the
				// best-signal race, so the accumulated bits match the skipping
				// kernels term for term.
				for _, uc := range cands {
					u := int32(uc)
					dx := xs[u] - xv
					dy := ys[u] - yv
					d := math.Sqrt(dx*dx + dy*dy)
					if d == 0 {
						d = 1e-9 // co-located points: effectively infinite power
					}
					q := d * d
					q *= q
					p := pw[u] * (1 / q)
					if d <= 1e-38 || d >= 1e38 {
						// Outside the pow4 bit-identity window (pow.go): defer
						// to math.Pow. Unreachable at sane geometries.
						p = pw[u] * math.Pow(d, -alpha)
					}
					var m uint64
					if d <= cutoff {
						m = ^uint64(0)
					}
					p = math.Float64frombits(math.Float64bits(p) & m)
					acc += p
					if p > best {
						best, bestU = p, u
					}
				}
			} else {
				for _, uc := range cands {
					u := int32(uc)
					dx := xs[u] - xv
					dy := ys[u] - yv
					d := math.Sqrt(dx*dx + dy*dy)
					if d == 0 {
						d = 1e-9
					}
					if d > cutoff {
						continue // skip: math.Pow costs more than a mispredict
					}
					p := pw[u] * math.Pow(d, -alpha)
					acc += p
					if p > best {
						best, bestU = p, u
					}
				}
			}
			// best > 0 iff some transmitter was within the cutoff: every
			// in-range contribution is strictly positive.
			if best == 0 {
				continue
			}
			// Threshold: the contract decision is fl(best/den) ≥ β with den
			// computed exactly as below. The division is the longest-latency
			// op left in the pass and most listeners are nowhere near the
			// threshold, so multiply-form bounds decide everything outside a
			// ±1e-9 relative band — wide enough (≫ the ~2⁻⁵² rounding of the
			// division and the t products) that a listener inside a bound is
			// provably on that side of the exact comparison — and only the
			// sliver inside the band pays the division itself.
			den := noise + (acc - best)
			t := beta * den
			hi := t * (1 + 1e-9)
			lo := t * (1 - 1e-9)
			if t <= 1e-300 {
				// Denormal (or NaN-adjacent) threshold: the relative margins
				// no longer dominate rounding, so every listener takes the
				// exact division. Unreachable at sane noise floors.
				hi, lo = math.Inf(1), -1
			}
			if best >= hi {
				dec = append(dec, Decode{To: v, From: bestU})
			} else if best > lo && best/den >= beta {
				dec = append(dec, Decode{To: v, From: bestU})
			} else if multi {
				// Touched (within the cutoff of some transmitter) but decoded
				// nothing while ≥2 transmitters were active. Single-transmitter
				// steps record no collisions: a lone touched listener either
				// decodes or is simply out of range. See Outcome.Collided for
				// why this stat varies with CutoffFactor.
				col = append(col, v)
			}
		}
		// Re-zero the per-cell table entries this step dirtied.
		s.candCnt[c] = 0
		s.candStart[c] = 0
	}
	s.rcCells = s.rcCells[:0]
	out.Decoded, out.Collided = dec, col
}

// maxRingRC is the largest possible ring radius in cells: the cell side
// starts at cutoff/3 and only ever coarsens, so ⌈cutoff/cellSize⌉ ≤ 3.
const maxRingRC = 3

// hierBlock is the coarse-block side of the two-level ring prune, in fine
// cells: a full 7×7 ring (rc = 3) is covered by 2×2 blocks, so one rejected
// block skips up to 16 fine-cell tests for one coarse test.
const hierBlock = 4

// ringCells returns the fine grid cells of transmitter u's cutoff ring that
// survive the squared point-to-cell-slab distance prune, in row-major
// order, in s.ringBuf's storage (overwritten by the next call). Both
// candidate passes of resolveBucketed route through it, so the counting and
// fill passes evaluate identical float expressions — the invariant that
// keeps the candidate table's counts and segments consistent.
//
// When s.hier is set, coarse blocks of hierBlock columns/rows (anchored at
// the ring origin) are rejected before their fine cells are tested. A
// block's slab distance is computed from the same column/row expressions
// the fine test uses, evaluated at the block's edge columns: the column
// lower edge lo(gx) = fl(minX + fl(gx)·cs) is nondecreasing in gx (fl of a
// monotone chain of +, · on the same operands), so when xu lies left of the
// block every member column's distance fl(lo(gx)−xu) is ≥ the block's
// fl(lo(first)−xu), symmetrically on the right with the upper edges, and 0
// otherwise never overestimates. Squares and the two-axis sum preserve ≤
// under fl, so a rejected block (sum > thr) contains only cells the fine
// test would reject — the returned cell sequence is bit-identical with the
// hierarchy on or off, which the differential and fuzz tests in
// sinrhier_test.go pin.
func (s *SINR) ringCells(u int32) []int32 {
	cols, rows := int32(s.cols), int32(s.rows)
	rc := s.rc
	cs, thr := s.cellSize, s.thr
	c := s.nodeCell[u]
	cx, cy := c%cols, c/cols
	gx0, gx1 := max(cx-rc, 0), min(cx+rc, cols-1)
	gy0, gy1 := max(cy-rc, 0), min(cy+rc, rows-1)
	xu, yu := s.xs[u], s.ys[u]
	// Per-axis squared point-to-cell-slab distances; the span is at most
	// 2·maxRingRC+1 = 7.
	var dx2, dy2 [2*maxRingRC + 2]float64
	for gx := gx0; gx <= gx1; gx++ {
		lo := s.minX + float64(gx)*cs
		d := 0.0
		if xu < lo {
			d = lo - xu
		} else if hi := lo + cs; xu > hi {
			d = xu - hi
		}
		dx2[gx-gx0] = d * d
	}
	for gy := gy0; gy <= gy1; gy++ {
		lo := s.minY + float64(gy)*cs
		d := 0.0
		if yu < lo {
			d = lo - yu
		} else if hi := lo + cs; yu > hi {
			d = yu - hi
		}
		dy2[gy-gy0] = d * d
	}
	out := s.ringBuf[:0]
	if !s.hier {
		for gy := gy0; gy <= gy1; gy++ {
			base := gy * cols
			dy := dy2[gy-gy0]
			for gx := gx0; gx <= gx1; gx++ {
				if dx2[gx-gx0]+dy > thr {
					continue
				}
				out = append(out, base+gx)
			}
		}
		return out
	}
	// Coarse pass: per-axis slab distances for blocks of hierBlock fine
	// cells. A ≤7-cell span is at most 2 blocks per axis.
	var bdx2, bdy2 [2]float64
	nbx := (gx1-gx0)/hierBlock + 1
	nby := (gy1-gy0)/hierBlock + 1
	for bi := int32(0); bi < nbx; bi++ {
		xa := gx0 + bi*hierBlock
		xb := min(xa+hierBlock-1, gx1)
		lo := s.minX + float64(xa)*cs
		loB := s.minX + float64(xb)*cs
		d := 0.0
		if xu < lo {
			d = lo - xu
		} else if hi := loB + cs; xu > hi {
			d = xu - hi
		}
		bdx2[bi] = d * d
	}
	for bj := int32(0); bj < nby; bj++ {
		ya := gy0 + bj*hierBlock
		yb := min(ya+hierBlock-1, gy1)
		lo := s.minY + float64(ya)*cs
		loB := s.minY + float64(yb)*cs
		d := 0.0
		if yu < lo {
			d = lo - yu
		} else if hi := loB + cs; yu > hi {
			d = yu - hi
		}
		bdy2[bj] = d * d
	}
	for gy := gy0; gy <= gy1; gy++ {
		base := gy * cols
		dy := dy2[gy-gy0]
		bdy := bdy2[(gy-gy0)/hierBlock]
		for bi := int32(0); bi < nbx; bi++ {
			if bdx2[bi]+bdy > thr {
				continue // whole block beyond the cutoff
			}
			xa := gx0 + bi*hierBlock
			xb := min(xa+hierBlock-1, gx1)
			for gx := xa; gx <= xb; gx++ {
				if dx2[gx-gx0]+dy > thr {
					continue
				}
				out = append(out, base+gx)
			}
		}
	}
	return out
}

// resolveDense is the no-grid kernel: every listener against every
// transmitter, ascending — exact mode (+Inf cutoff), noiseless channels,
// and non-2D deployments. The 2-D variant runs over the SoA slices with the
// same fused register accumulation as the bucketed kernel; other dimensions
// take the generic Point path.
func (s *SINR) resolveDense(f *Frontier, out *Outcome) {
	txs := f.List()
	multi := len(txs) > 1
	noise, beta := s.params.Noise, s.params.Beta
	alpha, fast4 := s.params.PathLoss, s.fast4
	cutoff := s.cutoff // may be +Inf (never skips) or finite (non-2D fallback)
	n := len(s.pts)
	if s.soa {
		xs, ys, pw := s.xs, s.ys, s.pw
		for v := 0; v < n; v++ {
			if f.Has(int32(v)) {
				continue
			}
			xv, yv := xs[v], ys[v]
			var acc, best float64
			bestU := int32(-1)
			hit := false
			for _, u := range txs {
				dx := xs[u] - xv
				dy := ys[u] - yv
				d := math.Sqrt(dx*dx + dy*dy)
				if d == 0 {
					d = 1e-9
				}
				if d > cutoff {
					continue
				}
				var p float64 // recvPow, manually inlined
				if fast4 && d > 1e-38 && d < 1e38 {
					q := d * d
					q *= q
					p = pw[u] * (1 / q)
				} else {
					p = pw[u] * math.Pow(d, -alpha)
				}
				acc += p
				if p > best {
					best, bestU = p, u
				}
				hit = true
			}
			s.emit(out, int32(v), acc, best, bestU, hit, multi, noise, beta)
		}
		return
	}
	for v := 0; v < n; v++ {
		if f.Has(int32(v)) {
			continue
		}
		pv := s.pts[v]
		var acc, best float64
		bestU := int32(-1)
		hit := false
		for _, u := range txs {
			d := s.pts[u].Dist(pv)
			if d == 0 {
				d = 1e-9
			}
			if d > cutoff {
				continue
			}
			p := recvPow(s.pw[u], d, alpha, fast4)
			acc += p
			if p > best {
				best, bestU = p, u
			}
			hit = true
		}
		s.emit(out, int32(v), acc, best, bestU, hit, multi, noise, beta)
	}
}

// emit applies the threshold test for one listener's accumulated step.
func (s *SINR) emit(out *Outcome, v int32, acc, best float64, bestU int32, hit, multi bool, noise, beta float64) {
	if !hit {
		return
	}
	if best/(noise+(acc-best)) >= beta {
		out.Decoded = append(out.Decoded, Decode{To: v, From: bestU})
	} else if multi {
		out.Collided = append(out.Collided, v)
	}
}

// resolveSweep is the pre-batch per-transmitter path, kept as the overflow
// fallback for steps whose cutoff rings outgrow the candidate arena: each
// transmitter's ring is swept in ascending transmitter order, listeners
// accumulate in the per-node scratch arrays, and a final pass over the
// touched set applies the threshold. Decision-identical to the bucketed
// kernel (same per-listener accumulation order and arithmetic), differing
// only in the order listeners are appended to the outcome.
func (s *SINR) resolveSweep(f *Frontier, out *Outcome) {
	for _, u := range f.List() {
		s.sweep(f, u)
	}
	multi := f.Len() > 1
	noise := s.params.Noise
	beta := s.params.Beta
	for _, v := range s.touched {
		bp := s.bestPow[v]
		if bp/(noise+(s.acc[v]-bp)) >= beta {
			out.Decoded = append(out.Decoded, Decode{To: v, From: s.bestFrom[v]})
		} else if multi && bp > 0 {
			// bp == 0 means every in-range contribution underflowed to zero
			// received power — the bucketed kernel does not count such a
			// listener as touched (it detects contact via best > 0), so the
			// sweep must not either, or the two paths' Collided stats drift.
			out.Collided = append(out.Collided, v)
		}
		s.acc[v] = 0
		s.bestPow[v] = 0
		s.seen[v] = false
	}
	s.touched = s.touched[:0]
}

// sweep accumulates transmitter u's received power onto every non-
// transmitting node within the far-field cutoff.
func (s *SINR) sweep(f *Frontier, u int32) {
	pu := s.pw[u]
	alpha, fast4 := s.params.PathLoss, s.fast4
	c := s.nodeCell[u]
	cols, rows := int32(s.cols), int32(s.rows)
	rc := s.rc
	cx, cy := c%cols, c/cols
	xu, yu := s.xs[u], s.ys[u]
	for gy := max(cy-rc, 0); gy <= min(cy+rc, rows-1); gy++ {
		base := gy * cols
		for gx := max(cx-rc, 0); gx <= min(cx+rc, cols-1); gx++ {
			cell := base + gx
			for _, vu := range s.cellNodes[s.cellStart[cell]:s.cellStart[cell+1]] {
				v := int32(vu)
				if f.Has(v) {
					continue
				}
				dx := xu - s.xs[v]
				dy := yu - s.ys[v]
				d := math.Sqrt(dx*dx + dy*dy)
				if d == 0 {
					d = 1e-9
				}
				if d > s.cutoff {
					continue
				}
				pow := recvPow(pu, d, alpha, fast4)
				if !s.seen[v] {
					s.seen[v] = true
					s.touched = append(s.touched, v)
				}
				s.acc[v] += pow
				if pow > s.bestPow[v] {
					s.bestPow[v] = pow
					s.bestFrom[v] = u
				}
			}
		}
	}
}

// Clear implements Model. The kernels re-zero their per-cell and per-node
// scratch inline as each step's Resolve finishes, so there is nothing left
// to do here — the method survives as the Model seam's contract point.
func (s *SINR) Clear() {}

// Stats implements StatsSource: arena budget, the high-water candidate
// count any step has asked of it, and how many steps overflowed to the
// fallback sweep. Read at epoch boundaries by the engine probe.
func (s *SINR) Stats() Stats {
	return Stats{
		ArenaCap:       len(s.candU),
		ArenaHighWater: s.arenaHighWater,
		FallbackSweeps: s.fallbackSweeps,
	}
}
