package phy

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// emptyCSR returns an edgeless frozen graph on n nodes — the SINR model
// ignores csr edges, so this is all a unit test needs.
func emptyCSR(n int) *graph.CSR { return graph.New(n).Freeze() }

func sinrOver(t *testing.T, pts []Point, params SINRParams) *SINR {
	t.Helper()
	s, err := NewSINR(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSINRParamsDefaults(t *testing.T) {
	p := SINRParams{}.WithDefaults()
	if p.Power != 1 || p.PathLoss != 4 || p.Beta != 2 || p.CutoffFactor != DefaultCutoffFactor {
		t.Fatalf("defaults %+v", p)
	}
	if !p.NoiseSet || p.Noise != p.Power/p.Beta {
		t.Fatalf("default noise %+v", p)
	}
	// Resolving twice is idempotent — NoiseSet survives.
	q := p.WithDefaults()
	if q.Power != p.Power || q.Noise != p.Noise || q.NoiseSet != p.NoiseSet ||
		q.Beta != p.Beta || q.PathLoss != p.PathLoss || q.CutoffFactor != p.CutoffFactor {
		t.Fatalf("WithDefaults not idempotent: %+v vs %+v", q, p)
	}
}

// TestDecodeRangeBoundaries is the boundary suite for the explicit-noise
// defaults: the old sinr.Params treated Noise == 0 as "unset", making a
// noiseless channel unrepresentable; SINRParams carries a NoiseSet bit.
func TestDecodeRangeBoundaries(t *testing.T) {
	// Defaults are constructed so the decode range is exactly 1.
	if r := (SINRParams{}).DecodeRange(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("default decode range %v, want 1", r)
	}
	// Stronger noise shrinks the range.
	if r := (SINRParams{Noise: 10, NoiseSet: true}).DecodeRange(); r >= 1 {
		t.Fatalf("noisy range %v, want < 1", r)
	}
	// An explicit zero-noise channel has unbounded range — the case the old
	// zero-sentinel could not represent.
	if r := (SINRParams{NoiseSet: true}).DecodeRange(); !math.IsInf(r, 1) {
		t.Fatalf("noiseless range %v, want +Inf", r)
	}
	// NoiseSet false with Noise 0 is "unset": the default, range 1.
	if r := (SINRParams{Noise: 0}).DecodeRange(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("unset-noise range %v, want the default 1", r)
	}
	// Tiny but positive explicit noise: a huge finite range.
	r := (SINRParams{Noise: 1e-12, NoiseSet: true}).DecodeRange()
	if math.IsInf(r, 1) || r < 100 {
		t.Fatalf("tiny-noise range %v, want large and finite", r)
	}
	// RangeFor scales with per-node power: 16× power doubles the range at
	// the default path loss 4.
	p := SINRParams{}.WithDefaults()
	if d := p.RangeFor(16); math.Abs(d-2) > 1e-12 {
		t.Fatalf("RangeFor(16) = %v, want 2", d)
	}
}

func TestSINRParamsValidate(t *testing.T) {
	bad := []SINRParams{
		{Power: -1, PathLoss: 4, Beta: 2, Noise: 0.5, NoiseSet: true, CutoffFactor: 4},
		{Power: 1, PathLoss: 4, Beta: 0.5, Noise: 0.5, NoiseSet: true, CutoffFactor: 4},
		{Power: 1, PathLoss: 4, Beta: 2, Noise: -0.1, NoiseSet: true, CutoffFactor: 4},
		{Power: 1, PathLoss: 4, Beta: 2, Noise: math.Inf(1), NoiseSet: true, CutoffFactor: 4},
		{Power: 1, PathLoss: 4, Beta: 2, Noise: 0.5, NoiseSet: true, CutoffFactor: 0.5},
		{Power: 1, PathLoss: math.NaN(), Beta: 2, Noise: 0.5, NoiseSet: true, CutoffFactor: 4},
		{Power: 1, PathLoss: 4, Beta: 2, Noise: 0.5, NoiseSet: true, CutoffFactor: 4, Powers: []float64{1, 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, p)
		}
	}
	if err := (SINRParams{}.WithDefaults()).Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	inf := SINRParams{CutoffFactor: math.Inf(1)}.WithDefaults()
	if err := inf.Validate(); err != nil {
		t.Errorf("+Inf cutoff invalid: %v", err)
	}
}

func TestSINRSingleTransmitterInRange(t *testing.T) {
	pts := []Point{{0, 0}, {0.9, 0}, {5, 0}}
	out := resolveOnce(t, sinrOver(t, pts, SINRParams{}), emptyCSR(3), []int32{0})
	if len(out.Decoded) != 1 || out.Decoded[0] != (Decode{To: 1, From: 0}) {
		t.Fatalf("in-range listener did not decode: %+v", out)
	}
	if len(out.Collided) != 0 {
		t.Fatalf("lone transmitter produced collisions: %+v", out)
	}
}

func TestSINRInterferenceBlocks(t *testing.T) {
	// Two equidistant transmitters around a listener: SINR ≈ 1 < β=2.
	pts := []Point{{-0.5, 0}, {0, 0}, {0.5, 0}}
	out := resolveOnce(t, sinrOver(t, pts, SINRParams{}), emptyCSR(3), []int32{0, 2})
	if len(out.Decoded) != 0 {
		t.Fatalf("listener decoded despite symmetric interference: %+v", out)
	}
	if len(out.Collided) != 1 || out.Collided[0] != 1 || out.Marker {
		t.Fatalf("blocked listener not recorded as a collision: %+v", out)
	}
}

func TestSINRCaptureEffect(t *testing.T) {
	// The key divergence from the graph model: a much closer transmitter is
	// decoded even while a far transmitter is active (capture), whereas the
	// graph model would declare a collision.
	pts := []Point{{0.2, 0}, {0, 0}, {0.95, 0}}
	out := resolveOnce(t, sinrOver(t, pts, SINRParams{}), emptyCSR(3), []int32{0, 2})
	var heard *Decode
	for i := range out.Decoded {
		if out.Decoded[i].To == 1 {
			heard = &out.Decoded[i]
		}
	}
	if heard == nil || heard.From != 0 {
		t.Fatalf("capture failed: %+v", out)
	}
}

func TestSINRHeterogeneousPowers(t *testing.T) {
	// Node 0 shouts at 16× power: decode range 2, so a listener at distance
	// 1.5 decodes it while a unit-power transmitter there stays silent.
	pts := []Point{{0, 0}, {1.5, 0}}
	params := SINRParams{Powers: []float64{16, 1}}
	out := resolveOnce(t, sinrOver(t, pts, params), emptyCSR(2), []int32{0})
	if len(out.Decoded) != 1 || out.Decoded[0] != (Decode{To: 1, From: 0}) {
		t.Fatalf("high-power transmitter not decoded at 1.5: %+v", out)
	}
	params2 := SINRParams{Powers: []float64{1, 1}}
	out = resolveOnce(t, sinrOver(t, pts, params2), emptyCSR(2), []int32{0})
	if len(out.Decoded) != 0 {
		t.Fatalf("unit-power transmitter decoded beyond range: %+v", out)
	}
}

func TestSINRFarFieldCutoff(t *testing.T) {
	// A listener midway between a near transmitter and a just-too-strong
	// interference field: under the exact model (+Inf cutoff) the far
	// transmitter's power must be included; with a tight cutoff it is
	// dropped and the near signal decodes. Placing the interferer outside
	// CutoffFactor×range makes the two modes observably different — the
	// documented approximation.
	pts := []Point{{0, 0}, {0.99, 0}, {4.0, 0}}
	// Exact: interference from 4.0 away is tiny but the decode margin at
	// d=0.99 is tinier still? Compute: signal = 0.99^-4 ≈ 1.041, noise 0.5,
	// interference = 3.01^-4 ≈ 0.0122 → SINR ≈ 2.033 ≥ 2 decodes. Shrink
	// the margin by moving the listener to 0.999.
	pts[1][0] = 0.999
	exact := resolveOnce(t, sinrOver(t, pts, SINRParams{CutoffFactor: math.Inf(1)}), emptyCSR(3), []int32{0, 2})
	cut := resolveOnce(t, sinrOver(t, pts, SINRParams{CutoffFactor: 2}), emptyCSR(3), []int32{0, 2})
	decodedTo1 := func(o Outcome) bool {
		for _, d := range o.Decoded {
			if d.To == 1 {
				return true
			}
		}
		return false
	}
	if decodedTo1(exact) {
		t.Fatalf("exact mode decoded on the boundary: %+v", exact)
	}
	if !decodedTo1(cut) {
		t.Fatalf("cutoff mode did not drop the far-field interference: %+v", cut)
	}
}

func TestSINRNoiselessChannelIsDense(t *testing.T) {
	// Explicit zero noise: unbounded decode range, the grid cannot bucket,
	// and a lone transmitter is decodable arbitrarily far away.
	pts := []Point{{0, 0}, {500, 0}}
	params := SINRParams{NoiseSet: true, CutoffFactor: math.Inf(1)}
	out := resolveOnce(t, sinrOver(t, pts, params), emptyCSR(2), []int32{0})
	if len(out.Decoded) != 1 || out.Decoded[0] != (Decode{To: 1, From: 0}) {
		t.Fatalf("noiseless channel did not deliver at distance 500: %+v", out)
	}
}

func TestSINRRejectsMismatchedGeometry(t *testing.T) {
	s := sinrOver(t, []Point{{0, 0}}, SINRParams{})
	if err := s.Sync(0, emptyCSR(2)); err == nil {
		t.Fatal("want position/node count mismatch error")
	}
	if _, err := NewSINR(nil, SINRParams{}); err == nil {
		t.Fatal("want no-points error")
	}
	if _, err := NewSINR([]Point{{0, 0}}, SINRParams{Beta: 0.5}); err == nil {
		t.Fatal("want beta error")
	}
	if _, err := NewMobileSINR(nil, SINRParams{}); err == nil {
		t.Fatal("want nil-source error")
	}
	wrong := sinrOver(t, []Point{{0, 0}, {1, 0}}, SINRParams{Powers: []float64{1, 1, 1}})
	if err := wrong.Sync(0, emptyCSR(2)); err == nil {
		t.Fatal("want powers-length mismatch error")
	}
}

// TestSINRCutoffAtBucketGranularity pins the far-field contract at the
// exact boundary: a transmitter at distance == cutoff contributes (the
// predicate is d ≤ cutoff), one ulp farther it does not — and the bucketed
// grid must honor both even when the pair spans the full candidate ring.
// CutoffFactor 3 makes the internal cell side exactly 1.0, so the geometry
// below is representable without rounding.
func TestSINRCutoffAtBucketGranularity(t *testing.T) {
	// rx decodes tx alone (SINR 2.02 ≥ β=2); an interferer at exactly the
	// cutoff distance 3 pushes it to 1.97 < 2. Whether rx decodes is
	// therefore precisely the question "was the boundary interferer
	// counted".
	mk := func(ix float64) Outcome {
		pts := []Point{{ix, 0}, {0, 0}, {0.9975, 0}}
		return resolveOnce(t, sinrOver(t, pts, SINRParams{CutoffFactor: 3}), emptyCSR(3), []int32{0, 2})
	}
	at := mk(-3) // distance from rx exactly == cutoff
	if len(at.Decoded) != 0 {
		t.Fatalf("interferer at d == cutoff was dropped: %+v", at)
	}
	if len(at.Collided) != 1 || at.Collided[0] != 1 {
		t.Fatalf("blocked listener not recorded: %+v", at)
	}
	past := mk(math.Nextafter(-3, -4)) // one ulp beyond the cutoff
	if len(past.Decoded) != 1 || past.Decoded[0] != (Decode{To: 1, From: 2}) {
		t.Fatalf("interferer one ulp past cutoff still counted: %+v", past)
	}
}

// TestSINRReceiverOnBucketEdge places a receiver exactly on an interior
// grid-cell boundary (x = 2.0 with cell side exactly 1.0): it must land in
// exactly one cell and still hear transmitters from the cells on both
// sides of the edge.
func TestSINRReceiverOnBucketEdge(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {1.5, 0}, {2.5, 0}}
	for _, tx := range []int32{2, 3} {
		out := resolveOnce(t, sinrOver(t, pts, SINRParams{CutoffFactor: 3}), emptyCSR(4), []int32{tx})
		found := false
		for _, d := range out.Decoded {
			if d == (Decode{To: 1, From: tx}) {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge receiver missed transmitter %d: %+v", tx, out)
		}
	}
}

// TestSINRShardOrderIndependence pins the fixed accumulation order: feeding
// the transmitter set as one batch or as several ascending shard batches
// must produce identical outcomes (the sequential≡pool contract's model-
// level half).
func TestSINRShardOrderIndependence(t *testing.T) {
	pts := []Point{{0, 0}, {0.4, 0.1}, {0.8, 0}, {1.2, 0.3}, {1.6, 0}, {2.0, 0.2}}
	csr := emptyCSR(len(pts))
	one := sinrOver(t, pts, SINRParams{})
	if err := one.Sync(0, csr); err != nil {
		t.Fatal(err)
	}
	var fa Frontier
	fa.Resize(len(pts))
	fa.Add([]int32{0, 2, 4})
	var a Outcome
	one.Resolve(&fa, &a)

	two := sinrOver(t, pts, SINRParams{})
	if err := two.Sync(0, csr); err != nil {
		t.Fatal(err)
	}
	var fb Frontier
	fb.Resize(len(pts))
	fb.Add([]int32{0})
	fb.Add([]int32{2})
	fb.Add([]int32{4})
	var b Outcome
	two.Resolve(&fb, &b)

	if len(a.Decoded) != len(b.Decoded) || len(a.Collided) != len(b.Collided) {
		t.Fatalf("sharded frontier diverged: %+v vs %+v", a, b)
	}
	for i := range a.Decoded {
		if a.Decoded[i] != b.Decoded[i] {
			t.Fatalf("decode %d differs: %+v vs %+v", i, a.Decoded[i], b.Decoded[i])
		}
	}
}
