package phy

import "math"

// powNegPathLoss computes d^-α exactly as math.Pow(d, -α) does — the batched
// SINR kernels are required to be bit-identical to the exact-mode reference
// loop, which uses math.Pow, so a faster path is only admissible when it
// produces the same bits.
//
// For the default α = 4 that is possible: math.Pow's integer-exponent path
// is binary exponentiation on the Frexp mantissa (square, square, invert),
// and scaling by powers of two commutes with float64 rounding, so
// 1/((d·d)·(d·d)) performs the same two squarings and one inversion with the
// same roundings — provided no intermediate over- or underflows, which the
// (1e-38, 1e38) window guarantees (d² and d⁴ stay normal and finite). A
// property test pins the equality bit for bit across the window and at its
// edges; outside the window, and for every other α, the call falls through
// to math.Pow itself.
//
// pow4 reports whether the resolved params select the fast path.
func (p SINRParams) pow4() bool { return p.PathLoss == 4 }

// recvPow returns the received power pu·d^-α with the exact arithmetic of
// the pre-batch kernels: the d^-α factor rounds first, the pu product
// second. fast4 must be p.pow4() for the params in force — passed as an
// argument so the hot loops hoist the flag into a register.
func recvPow(pu, d float64, pathLoss float64, fast4 bool) float64 {
	if fast4 && d > 1e-38 && d < 1e38 {
		q := d * d
		q *= q
		return pu * (1 / q)
	}
	return pu * math.Pow(d, -pathLoss)
}
