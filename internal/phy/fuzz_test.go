package phy

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// FuzzSINRBatchVsExact fuzzes the tentpole claim of the batched receive
// path: on any finite deployment, the grid-bucketed kernels (and the dense
// and sweep-fallback paths they dispatch to) make exactly the decisions of
// a naive exact-arithmetic reference — per listener, sum every in-cutoff
// transmitter in ascending order with math.Pow powers and apply the
// threshold by plain division. Positions and powers are derived from the
// fuzz bytes through the deterministic RNG, so every input is finite and
// non-NaN (NaN geometry is rejected at the gen layer and out of contract
// here). Decoded and Collided are compared as sets: the bucketed pass
// emits them in grid order, not ascending listener order.
//
// The input bytes decode as: data[0] node count, data[1] cutoff-factor
// selector (including +Inf, which exercises the dense exact path),
// data[2] flags (heterogeneous powers, forced co-located pair), data[3:11]
// RNG seed, and the tail selects transmitters. The seed corpus under
// testdata/fuzz/FuzzSINRBatchVsExact runs as ordinary test cases in
// `go test`; CI additionally runs a short -fuzz smoke.
func FuzzSINRBatchVsExact(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 12 {
			return
		}
		n := 4 + int(data[0])%60
		cutoffs := []float64{2, 2.5, 3, 4, 6, math.Inf(1)}
		cutF := cutoffs[int(data[1])%len(cutoffs)]
		flags := data[2]
		seed := binary.LittleEndian.Uint64(data[3:11])
		rng := xrand.New(seed | 1)

		side := math.Sqrt(float64(n) * math.Pi / 8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * side, rng.Float64() * side}
		}
		if flags&2 != 0 && n >= 2 {
			pts[1] = Point{pts[0][0], pts[0][1]} // co-located pair: d == 0 path
		}
		params := SINRParams{CutoffFactor: cutF}
		if flags&1 != 0 {
			pw := make([]float64, n)
			for i := range pw {
				pw[i] = 0.5 + rng.Float64()
			}
			params.Powers = pw
		}
		s, err := NewSINR(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(0, graph.New(n).Freeze()); err != nil {
			t.Fatal(err)
		}

		isTx := make([]bool, n)
		for _, b := range data[11:] {
			isTx[int(b)%n] = true
		}
		tx := make([]int32, 0, n)
		for v := 0; v < n; v++ {
			if isTx[v] {
				tx = append(tx, int32(v))
			}
		}
		if len(tx) == 0 {
			return
		}
		var fr Frontier
		fr.Resize(n)
		fr.Add(tx)
		var out Outcome
		s.Resolve(&fr, &out)

		// Naive exact reference at the model's own resolved parameters.
		p := s.Params()
		wantDec := map[int32]int32{}
		var wantCol []int32
		multi := len(tx) > 1
		for v := 0; v < n; v++ {
			if isTx[v] {
				continue
			}
			var acc, best float64
			bestU := int32(-1)
			for _, u := range tx {
				d := pts[u].Dist(pts[v])
				if d == 0 {
					d = 1e-9
				}
				if d > s.cutoff {
					continue
				}
				pu := p.Power
				if p.Powers != nil {
					pu = p.Powers[u]
				}
				pw := pu * math.Pow(d, -p.PathLoss)
				acc += pw
				if pw > best {
					best, bestU = pw, u
				}
			}
			if best == 0 {
				continue
			}
			if best/(p.Noise+(acc-best)) >= p.Beta {
				wantDec[int32(v)] = bestU
			} else if multi {
				wantCol = append(wantCol, int32(v))
			}
		}

		if len(out.Decoded) != len(wantDec) {
			t.Fatalf("n=%d cutF=%v: %d decodes, reference %d (%+v vs %+v)",
				n, cutF, len(out.Decoded), len(wantDec), out.Decoded, wantDec)
		}
		for _, d := range out.Decoded {
			if from, ok := wantDec[d.To]; !ok || from != d.From {
				t.Fatalf("n=%d cutF=%v: decode %+v disagrees with reference (want from %d, ok=%v)",
					n, cutF, d, from, ok)
			}
		}
		gotCol := append([]int32(nil), out.Collided...)
		sort.Slice(gotCol, func(i, j int) bool { return gotCol[i] < gotCol[j] })
		sort.Slice(wantCol, func(i, j int) bool { return wantCol[i] < wantCol[j] })
		if len(gotCol) != len(wantCol) {
			t.Fatalf("n=%d cutF=%v: collided %v, reference %v", n, cutF, gotCol, wantCol)
		}
		for i := range gotCol {
			if gotCol[i] != wantCol[i] {
				t.Fatalf("n=%d cutF=%v: collided %v, reference %v", n, cutF, gotCol, wantCol)
			}
		}
	})
}
