package phy

// grow reslices buf to n elements, reallocating only when capacity is
// insufficient — the arena-style reuse discipline every per-epoch scratch
// buffer in this package follows. Buffers grow monotonically across a run's
// epochs and are never freed, so Sync allocates at most once per size
// high-water mark and the step loop itself allocates nothing. A freshly
// grown buffer is zeroed (make semantics); a reused one keeps its contents,
// which is exactly what the between-steps all-zero invariant requires —
// whoever dirtied an entry re-zeroed it before the step ended.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
