// Package phy is the pluggable physical layer of the radio simulator: a
// reception model decides, for each time-step, which listeners decode which
// transmitter. The paper's model (§1.1) — a listener hears a message iff
// exactly one neighbor transmits, no collision detection — is the default
// (Collision); CollisionCD is the stronger §1.5.2 variant that delivers a
// collision marker; SINR (sinr.go) is the geometric alternative of
// footnote 1, where decoding is a signal-to-interference-plus-noise
// threshold over node positions.
//
// The engines in internal/radio drive delivery through the Model interface,
// so every protocol, experiment, topology schedule and service scenario in
// this repository composes with every reception model. A Model instance is
// stateful per run: the engine calls Sync at the start of the run and at
// every topology epoch boundary, then per step exactly one Resolve — fed
// the step's transmitter Frontier, which the engine assembles on the
// coordinator side from its shard transmit lists in ascending global order
// — and one Clear. Instances must not be shared between concurrent runs.
package phy

import "repro/internal/graph"

// Decode records one successful reception: listener To decodes the message
// transmitted by From.
type Decode struct {
	To, From int32
}

// Outcome is the reception result of one step. The engine owns one Outcome
// and passes it to every Resolve; models append into the reused slices so
// the steady-state step loop allocates nothing.
type Outcome struct {
	// Decoded lists successful receptions.
	Decoded []Decode
	// Collided lists listeners that were reached by transmission energy but
	// decoded nothing, on steps where a collision is possible — graph
	// models: ≥2 transmitting neighbors; SINR: within the far-field cutoff
	// of some transmitter while ≥2 transmitters were active. The SINR count
	// therefore depends on CutoffFactor (a wider cutoff reaches more
	// listeners) even though decode decisions barely move — it is a
	// channel-usage statistic, not part of the transcript contract.
	Collided []int32
	// Marker is true when Collided listeners should receive the collision
	// marker instead of silence (collision-detection models).
	Marker bool
}

// Reset empties the outcome for the next step, keeping capacity. The engine
// calls it before each Resolve.
func (o *Outcome) Reset() {
	o.Decoded = o.Decoded[:0]
	o.Collided = o.Collided[:0]
	o.Marker = false
}

// Stats is an advisory snapshot of a model's internal load, read at epoch
// boundaries through the StatsSource interface (never per step). All fields
// are cumulative or high-water over the run so far.
type Stats struct {
	// ArenaCap is the candidate-arena budget of the bucketed SINR kernel
	// (0 for models without one).
	ArenaCap int
	// ArenaHighWater is the largest candidate count any single step asked
	// of the arena — how close the run has come to the fallback sweep.
	ArenaHighWater int
	// FallbackSweeps counts steps that overflowed the arena and resolved
	// through the per-transmitter sweep instead.
	FallbackSweeps uint64
}

// StatsSource is optionally implemented by models that can report Stats.
// The engines type-assert for it when firing radio.Options.Probe; the
// assertion and the read happen at epoch boundaries only, so implementing
// it costs the step loop nothing.
type StatsSource interface {
	Stats() Stats
}

// Model owns per-step reception semantics.
type Model interface {
	// Name is the canonical spec name of the model ("collision",
	// "collision-cd", "sinr").
	Name() string
	// Sync installs the topology in force from step on. The engines call it
	// once before step 0 and once per epoch boundary (never per step), so
	// implementations may allocate here — the step-loop methods below must
	// not. Geometric models ignore csr's edges and refresh their positions
	// for the epoch instead.
	Sync(step int, csr *graph.CSR) error
	// Resolve decides reception for the step's transmitter frontier,
	// appending into out (which arrives reset). f.List() is ascending —
	// the engines merge their shard transmit lists in ascending global
	// order — and models that accumulate floating-point interference must
	// sum each listener's contributions in that fixed transmitter-index
	// order, so the sequential and worker-pool engines stay transcript-
	// identical. The frontier is read-only to the model and owned by the
	// engine, which clears it after Clear. Cost must be proportional to
	// the transmitters and the listeners they can reach, not to n.
	Resolve(f *Frontier, out *Outcome)
	// Clear re-zeroes any per-step scratch dirtied by Resolve, restoring
	// the between-steps all-zero invariant at cost proportional to the
	// entries dirtied.
	Clear()
}

// Collision is the paper's reception model (§1.1): a listener decodes iff
// exactly one of its graph neighbors transmits; with two or more it hears
// nothing and cannot distinguish the collision from silence. The zero-
// overhead default — its delivery pass is the same saturating-counter
// sparse scan the engines ran before the model was pluggable.
type Collision struct {
	csr     *graph.CSR
	cur     graph.NeighborCursor // reused per-step iteration handle (compact form stays zero-alloc)
	marker  bool                 // CollisionCD delivers the marker instead of silence
	counts  []int8               // transmitting-neighbor count, saturated at 2
	from    []int32              // some transmitting neighbor (valid when counts==1)
	touched []int32              // nodes with ≥1 transmitting neighbor this step
}

// NewCollision returns the no-collision-detection graph model, the engine
// default.
func NewCollision() *Collision { return &Collision{} }

// NewCollisionCD returns the collision-detection variant (§1.5.2): listeners
// with ≥2 transmitting neighbors receive the radio.Collision marker instead
// of silence. This is the model Options.CollisionDetection selected before
// the PHY layer existed.
func NewCollisionCD() *Collision { return &Collision{marker: true} }

// Name implements Model.
func (c *Collision) Name() string {
	if c.marker {
		return "collision-cd"
	}
	return "collision"
}

// Sync implements Model: install the epoch's CSR and size the scratch on
// first use. The node count is fixed for a whole run (the radio.Topology
// contract), so the scratch survives every epoch unchanged.
func (c *Collision) Sync(step int, csr *graph.CSR) error {
	c.csr = csr
	c.cur = csr.Cursor() // packed snapshots allocate their decode scratch here, not per step
	if n := csr.N(); len(c.counts) < n {
		c.counts = make([]int8, n)
		c.from = make([]int32, n)
		c.touched = make([]int32, 0, n)
	}
	return nil
}

// Resolve implements Model: one pass over the frontier marks every neighbor
// of every transmitter — counts[w] rises (saturating at 2), from[w] records
// a transmitting neighbor, touched records first contact — then the
// exactly-one-transmitting-neighbor rule runs over the touched set, the
// frontier bitset answering the half-duplex test. Transmitters hear
// nothing; retirement and wake state are the engine's concern — every
// touched listener is reported, matching the model's global view of the
// medium.
func (c *Collision) Resolve(f *Frontier, out *Outcome) {
	for _, v := range f.List() {
		for _, w := range c.cur.List(int(v)) {
			switch c.counts[w] {
			case 0:
				c.counts[w] = 1
				c.from[w] = v
				c.touched = append(c.touched, w)
			case 1:
				c.counts[w] = 2
			}
		}
	}
	out.Marker = c.marker
	for _, u := range c.touched {
		if f.Has(u) {
			continue
		}
		if c.counts[u] == 1 {
			out.Decoded = append(out.Decoded, Decode{To: u, From: c.from[u]})
		} else {
			out.Collided = append(out.Collided, u)
		}
	}
}

// Clear implements Model.
func (c *Collision) Clear() {
	for _, u := range c.touched {
		c.counts[u] = 0
	}
	c.touched = c.touched[:0]
}
