package core

import (
	"fmt"
	"math"

	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// This file contains a genuine radio-protocol implementation of
// Partition(β, centers) in the style of Haeupler–Wajc: exponential shifts
// are discretized to integer start rounds and clusters grow one BFS layer
// per amplified Decay block. It exists to validate, on the real simulator,
// the construction whose cost Compete charges analytically (DESIGN.md §2,
// substitution 2): the produced clusterings satisfy the same structural
// properties (connected clusters, bounded radii, MIS-only centers) in
// O((log n / β)·log² n) real time-steps.

// PartitionParams tunes the radio clustering protocol.
type PartitionParams struct {
	// DecayIters is the Decay amplification per growth round. Default
	// 2·⌈log₂ n⌉.
	DecayIters int
	// DelayCapFactor caps the discretized shifts at
	// DelayCapFactor·ln(n)/β rounds (shifts above the cap are truncated,
	// an event of probability n^-DelayCapFactor). Default 3.
	DelayCapFactor float64
}

// clusterMsg is the payload of cluster-growth announcements.
type clusterMsg struct {
	center int32
	hops   int32
}

// partitionNode implements the discretized MPX growth protocol.
type partitionNode struct {
	info       radio.NodeInfo
	isCenter   bool
	startRound int // round at which a center activates (its own layer 0)
	blockLen   int
	rounds     int

	joined     bool
	center     int32
	hops       int32
	joinRound  int
	phase      *decay.Phase
	heardBest  *clusterMsg
	step       int
	totalSteps int
}

var _ radio.Protocol = (*partitionNode)(nil)

func (p *partitionNode) round() int { return p.step / p.blockLen }

func (p *partitionNode) Act(step int) radio.Action {
	if p.step >= p.totalSteps {
		return radio.Listen()
	}
	local := p.step % p.blockLen
	if local == 0 {
		p.beginRound()
	}
	if p.phase != nil {
		return p.phase.Act(local)
	}
	return radio.Listen()
}

// beginRound activates centers whose start round arrived and arms the decay
// phase for nodes that joined in the previous round (the frontier).
func (p *partitionNode) beginRound() {
	r := p.round()
	if p.isCenter && !p.joined && r >= p.startRound {
		p.joined = true
		p.center = int32(p.info.Index)
		p.hops = 0
		p.joinRound = r - 1 // treat as frontier for this round
	}
	p.phase = nil
	if p.joined && p.joinRound == r-1 {
		// Frontier: announce (center, hops+1) to unjoined neighbors.
		p.phase = decay.NewPhase(p.info.N, p.iterations(), true,
			clusterMsg{center: p.center, hops: p.hops + 1}, p.info.RNG)
	} else if !p.joined {
		p.phase = decay.NewPhase(p.info.N, p.iterations(), false, nil, p.info.RNG)
	}
	p.heardBest = nil
}

func (p *partitionNode) iterations() int { return p.blockLen / decay.StepsPerIteration(p.info.N) }

func (p *partitionNode) Deliver(step int, msg radio.Message) {
	if p.step >= p.totalSteps {
		return
	}
	if msg != nil && !p.joined {
		if cm, ok := msg.(clusterMsg); ok && p.heardBest == nil {
			// First heard announcement wins (discretized arg-min).
			heard := cm
			p.heardBest = &heard
		}
	}
	p.step++
	if p.step%p.blockLen == 0 {
		p.endRound()
	}
}

func (p *partitionNode) endRound() {
	if !p.joined && p.heardBest != nil {
		p.joined = true
		p.center = p.heardBest.center
		p.hops = p.heardBest.hops
		p.joinRound = p.round() - 1
	}
}

func (p *partitionNode) Done() bool { return p.step >= p.totalSteps }

// RadioPartition runs the discretized Partition(β, centers) protocol on the
// real radio engine and returns the resulting clustering plus the number of
// time-steps spent. Unjoined nodes (possible only if the round budget or
// delay cap truncates, or the graph is disconnected from all centers) have
// Center -1.
func RadioPartition(g *graph.Graph, centers []int, beta float64, params PartitionParams, seed uint64) (*mpx.Assignment, int, error) {
	n := g.N()
	if n == 0 {
		return nil, 0, fmt.Errorf("core: empty graph")
	}
	if beta <= 0 {
		return nil, 0, fmt.Errorf("core: beta must be positive, got %v", beta)
	}
	if len(centers) == 0 {
		return nil, 0, fmt.Errorf("core: no centers")
	}
	if params.DecayIters <= 0 {
		params.DecayIters = 2 * decay.StepsPerIteration(n)
	}
	if params.DelayCapFactor <= 0 {
		params.DelayCapFactor = 3
	}
	isCenter := make([]bool, n)
	for _, c := range centers {
		if c < 0 || c >= n {
			return nil, 0, fmt.Errorf("core: center %d out of range", c)
		}
		isCenter[c] = true
	}
	// Shifts are drawn engine-side from the run's seed so the returned
	// Assignment can report them; each center's draw is reproduced from the
	// same split the node would use.
	shiftRNG := xrand.New(seed ^ 0x7a317)
	delayCap := params.DelayCapFactor * math.Log(float64(n)+2) / beta
	capRounds := int(math.Ceil(delayCap))
	delta := make([]float64, n)
	start := make([]int, n)
	for v := 0; v < n; v++ {
		if !isCenter[v] {
			continue
		}
		d := shiftRNG.Exponential(beta)
		if d > delayCap {
			d = delayCap
		}
		delta[v] = d
		start[v] = int(math.Ceil(delayCap - d))
	}
	// Enough rounds for the last-starting center to cover the graph.
	diam, err := g.DiameterApprox()
	if err != nil {
		diam = n
	}
	rounds := capRounds + 2*diam + 2
	blockLen := params.DecayIters * decay.StepsPerIteration(n)
	totalSteps := rounds * blockLen

	nodes := make([]*partitionNode, n)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nodes[info.Index] = &partitionNode{
			info:       info,
			isCenter:   isCenter[info.Index],
			startRound: start[info.Index],
			blockLen:   blockLen,
			rounds:     rounds,
			center:     -1,
			totalSteps: totalSteps,
		}
		return nodes[info.Index]
	}
	res, err := radio.Run(g, factory, radio.Options{MaxSteps: totalSteps + 1, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	a := &mpx.Assignment{
		Center: make([]int, n),
		Hops:   make([]int, n),
		Delta:  delta,
		Beta:   beta,
	}
	for v, nd := range nodes {
		if nd.joined {
			a.Center[v] = int(nd.center)
			a.Hops[v] = int(nd.hops)
		} else {
			a.Center[v] = -1
			a.Hops[v] = -1
		}
	}
	return a, res.Steps, nil
}
