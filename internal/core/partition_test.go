package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/sched"
	"repro/internal/xrand"
)

func TestRadioPartitionValidation(t *testing.T) {
	g := gen.Path(6)
	if _, _, err := RadioPartition(graph.New(0), []int{0}, 0.5, PartitionParams{}, 1); err == nil {
		t.Fatal("want empty-graph error")
	}
	if _, _, err := RadioPartition(g, []int{0}, 0, PartitionParams{}, 1); err == nil {
		t.Fatal("want beta error")
	}
	if _, _, err := RadioPartition(g, nil, 0.5, PartitionParams{}, 1); err == nil {
		t.Fatal("want no-centers error")
	}
	if _, _, err := RadioPartition(g, []int{7}, 0.5, PartitionParams{}, 1); err == nil {
		t.Fatal("want range error")
	}
}

func TestRadioPartitionCoversAndConnects(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(24)},
		{"grid", gen.Grid(6, 6)},
		{"cycle", gen.Cycle(20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			misSet := tc.g.GreedyMIS(nil)
			a, steps, err := RadioPartition(tc.g, misSet, 0.5, PartitionParams{}, 3)
			if err != nil {
				t.Fatal(err)
			}
			if steps <= 0 {
				t.Fatal("no steps recorded")
			}
			inMIS := map[int]bool{}
			for _, v := range misSet {
				inMIS[v] = true
			}
			for v := 0; v < tc.g.N(); v++ {
				c := a.Center[v]
				if c < 0 {
					t.Fatalf("node %d unassigned", v)
				}
				if !inMIS[c] {
					t.Fatalf("node %d assigned to non-center %d", v, c)
				}
			}
			// The growth protocol guarantees the ValidateClusters invariants:
			// centers own themselves and every member has an uphill neighbor.
			if err := a.ValidateClusters(tc.g); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRadioPartitionFeedsScheduler(t *testing.T) {
	// The radio-built clustering must be a drop-in replacement for the
	// centrally computed one: BuildForest + ComputeSchedule must verify.
	g := gen.Grid(5, 7)
	a, _, err := RadioPartition(g, g.GreedyMIS(nil), 0.4, PartitionParams{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sched.BuildForest(g, a)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.ComputeSchedule(g, f)
	if err := sched.VerifyDowncast(g, f, s); err != nil {
		t.Fatal(err)
	}
	if err := sched.VerifyUpcast(g, f, s); err != nil {
		t.Fatal(err)
	}
}

func TestRadioPartitionRadiiComparableToCentralized(t *testing.T) {
	// Discretization and collisions may stretch radii, but only by small
	// factors: compare against the centralized MPX bound O(log n / β).
	g := gen.Grid(8, 8)
	misSet := g.GreedyMIS(nil)
	const beta = 0.5
	a, _, err := RadioPartition(g, misSet, beta, PartitionParams{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	central, err := mpx.Partition(g, misSet, beta, rng)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 * (central.MaxRadius() + 4)
	if a.MaxRadius() > bound {
		t.Fatalf("radio radius %d vs centralized %d (allowing 4x+16)", a.MaxRadius(), central.MaxRadius())
	}
}

func TestRadioPartitionSingleCenter(t *testing.T) {
	// One center must absorb the whole connected graph, with hops weakly
	// increasing along the growth (every hop count realizable).
	g := gen.Path(16)
	a, _, err := RadioPartition(g, []int{0}, 0.3, PartitionParams{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		if a.Center[v] != 0 {
			t.Fatalf("node %d not in the single cluster", v)
		}
		if a.Hops[v] < v { // along a path, hops ≥ true distance
			t.Fatalf("node %d hops %d below distance %d", v, a.Hops[v], v)
		}
	}
}

func TestRadioPartitionDeterministicPerSeed(t *testing.T) {
	g := gen.Grid(5, 5)
	misSet := g.GreedyMIS(nil)
	a1, _, err := RadioPartition(g, misSet, 0.5, PartitionParams{}, 77)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := RadioPartition(g, misSet, 0.5, PartitionParams{}, 77)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Center {
		if a1.Center[v] != a2.Center[v] || a1.Hops[v] != a2.Hops[v] {
			t.Fatalf("node %d differs across identical seeds", v)
		}
	}
}
