package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// fastParams keeps the clustering count small so core tests stay quick.
var fastParams = Params{FinesPerScale: 2}

func TestBroadcastPath(t *testing.T) {
	g := gen.Path(48)
	res, err := Broadcast(g, 0, fastParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatalf("broadcast did not complete within %d steps", res.MainSteps)
	}
	if res.Winner != 1 {
		t.Fatalf("winner %d", res.Winner)
	}
	if res.MISSteps <= 0 || res.ChargedSetupSteps <= 0 {
		t.Fatalf("missing cost components: %+v", res)
	}
	if res.TotalSteps < res.CompleteStep {
		t.Fatalf("total %d < complete %d", res.TotalSteps, res.CompleteStep)
	}
}

func TestBroadcastGrid(t *testing.T) {
	g := gen.Grid(8, 8)
	res, err := Broadcast(g, 0, fastParams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("grid broadcast incomplete")
	}
	if res.MISSize <= 0 || res.MISSize > g.N() {
		t.Fatalf("MIS size %d", res.MISSize)
	}
	if res.B < 4 {
		t.Fatalf("b = %d", res.B)
	}
}

func TestBroadcastUDG(t *testing.T) {
	rng := xrand.New(3)
	g, _, err := gen.ConnectedUDG(100, 7, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, 0, fastParams, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("UDG broadcast incomplete")
	}
}

func TestBroadcastGNP(t *testing.T) {
	rng := xrand.New(4)
	g, err := gen.GNPConnected(80, 0.08, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, 5, fastParams, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("GNP broadcast incomplete")
	}
}

func TestBroadcastAllCentersBaseline(t *testing.T) {
	g := gen.Grid(7, 7)
	p := fastParams
	p.CenterMode = AllCenters
	res, err := Broadcast(g, 0, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("baseline broadcast incomplete")
	}
	if res.MISSize != g.N() {
		t.Fatalf("AllCenters should use every node, got %d", res.MISSize)
	}
	if res.MISSteps != 0 {
		t.Fatalf("AllCenters should not pay MIS steps, got %d", res.MISSteps)
	}
}

func TestCompeteMultiSourceHighestWins(t *testing.T) {
	g := gen.Path(30)
	sources := map[int]int64{0: 10, 29: 99, 15: 50}
	res, err := Compete(g, sources, fastParams, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 99 {
		t.Fatalf("winner %d, want 99", res.Winner)
	}
	if res.CompleteStep < 0 {
		t.Fatal("compete incomplete")
	}
}

func TestCompeteValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Compete(graph.New(0), map[int]int64{0: 1}, fastParams, 1); err == nil {
		t.Fatal("want empty-graph error")
	}
	if _, err := Compete(g, nil, fastParams, 1); err == nil {
		t.Fatal("want no-sources error")
	}
	if _, err := Compete(g, map[int]int64{9: 1}, fastParams, 1); err == nil {
		t.Fatal("want source-range error")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := Compete(disc, map[int]int64{0: 1}, fastParams, 1); err == nil {
		t.Fatal("want disconnected error")
	}
}

func TestBroadcastDeterministicForSeed(t *testing.T) {
	g := gen.Grid(6, 6)
	a, err := Broadcast(g, 0, fastParams, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, 0, fastParams, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompleteStep != b.CompleteStep || a.TotalSteps != b.TotalSteps {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestLeaderElectionAgreement(t *testing.T) {
	g := gen.Grid(7, 7)
	er, err := LeaderElection(g, fastParams, 7)
	if err != nil {
		t.Fatal(err)
	}
	if er.CompleteStep < 0 {
		t.Fatal("election incomplete")
	}
	if er.Candidates < 1 {
		t.Fatalf("candidates %d", er.Candidates)
	}
	if er.LeaderID != er.Winner {
		t.Fatalf("leader %d vs winner %d", er.LeaderID, er.Winner)
	}
}

func TestLeaderElectionCandidateScale(t *testing.T) {
	// Θ(log n) candidates in expectation: check a generous band over seeds.
	g := gen.Path(200)
	total := 0
	const runs = 5
	for s := uint64(0); s < runs; s++ {
		er, err := LeaderElection(g, fastParams, 10+s)
		if err != nil {
			t.Fatal(err)
		}
		total += er.Candidates
	}
	avg := float64(total) / runs
	if avg < 2 || avg > 60 {
		t.Fatalf("average candidates %v outside Θ(log n) band", avg)
	}
}

func TestBroadcastCompleteStepBeatsBudget(t *testing.T) {
	// On a small path, completion should land far below the step budget —
	// the loop must terminate at completion, not run to MaxSteps.
	g := gen.Path(20)
	res, err := Broadcast(g, 0, fastParams, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("incomplete")
	}
	if res.MainSteps > res.CompleteStep+1 {
		t.Fatalf("main loop ran to %d after completing at %d", res.MainSteps, res.CompleteStep)
	}
}

func TestBroadcastCliqueChain(t *testing.T) {
	g := gen.CliqueChain(5, 6)
	res, err := Broadcast(g, 0, fastParams, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("clique-chain broadcast incomplete")
	}
}

func TestBroadcastRealClusterConstruction(t *testing.T) {
	// Full-fidelity mode: fine clusterings built by the RadioPartition
	// protocol, consuming real steps instead of charged ones.
	g := gen.Grid(5, 5)
	p := Params{FinesPerScale: 1, RealClusterConstruction: true}
	res, err := Broadcast(g, 0, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("broadcast incomplete in real-construction mode")
	}
	if res.RealSetupSteps <= 0 {
		t.Fatal("RealSetupSteps not recorded")
	}
	if res.TotalSteps < res.RealSetupSteps {
		t.Fatalf("total %d below real setup %d", res.TotalSteps, res.RealSetupSteps)
	}
}

func TestCenterModeString(t *testing.T) {
	if MISCenters.String() != "mis" || AllCenters.String() != "all" {
		t.Fatal("bad strings")
	}
	if CenterMode(9).String() == "" {
		t.Fatal("unknown mode should still print")
	}
}
