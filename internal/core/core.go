// Package core implements the paper's primary contribution: the Compete
// procedure (Algorithm 2) with independence-number-parametrized clustering,
// and on top of it Broadcasting (Theorem 7) and Leader Election
// (Algorithm 3 / Theorem 8).
//
// Pipeline, following Algorithm 2:
//
//  1. MIS ← ComputeMIS (Algorithm 7, real radio time-steps via internal/mis).
//  2. Coarse clustering: Partition(β = D^-0.5, MIS).
//  3. Coarse schedules.
//  4. Fine clusterings: Partition(β = 2^-j, MIS) for j in the random-scale
//     window, several independent clusterings per scale.
//  5. Fine schedules.
//  6. A random sequence of fine clusterings (the coarse centers' choice).
//  7. Sequence dissemination within coarse clusters.
//  8. Main loop: Intra-Cluster Propagation(ℓ_j) per chosen clustering
//     (Algorithm 9), time-multiplexed with the background Decay process
//     (Algorithms 8/10), run on the real radio engine with true collision
//     semantics.
//
// Steps 1 and 8 execute on the simulator step-for-step. Steps 2–7 — the
// clustering/schedule constructions the paper inherits from Haeupler–Wajc
// and Ghaffari–Haeupler–Khabbazian as black boxes — are computed
// engine-side and *charged* their documented round costs (DESIGN.md §2,
// substitution 1). Reported results separate real and charged steps.
//
// Setting Params.CenterMode = AllCenters reproduces the CD21 predecessor
// (Partition over all nodes, radii parametrized by log_D n) as the ablation
// baseline; MISCenters is the paper's algorithm.
package core

import (
	"fmt"
	"math"

	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/mpx"
	"repro/internal/radio"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// CenterMode selects the candidate-center set for Partition.
type CenterMode int

const (
	// MISCenters is the paper's Partition(β, MIS) (Algorithm 2).
	MISCenters CenterMode = iota + 1
	// AllCenters is CD21's Partition(β) over all nodes — the baseline the
	// paper improves on.
	AllCenters
)

func (m CenterMode) String() string {
	switch m {
	case MISCenters:
		return "mis"
	case AllCenters:
		return "all"
	default:
		return fmt.Sprintf("CenterMode(%d)", int(m))
	}
}

// Params configures Compete. Zero values select documented defaults.
type Params struct {
	// CenterMode selects MISCenters (default) or AllCenters.
	CenterMode CenterMode
	// MIS configures the embedded ComputeMIS run.
	MIS mis.Params
	// FinesPerScale is the number of independent fine clusterings per scale
	// j (the paper's D^0.2, capped for simulation). Default 3.
	FinesPerScale int
	// ICPFactor scales the Intra-Cluster Propagation depth:
	// ℓ_j = ICPFactor·b·2^j for MISCenters (Theorem 2's O(log_D α/β)) and
	// ICPFactor·log_D n·2^j for AllCenters (CD21's Theorem 2.2). Default 2.
	ICPFactor float64
	// BackgroundEvery interleaves one background-process step (Algorithm 8,
	// Decay-style) after every BackgroundEvery foreground steps. Default 4;
	// set negative to disable.
	BackgroundEvery int
	// MaxSteps bounds the main propagation loop. Default
	// 40·(D·b·ICPFactor + log³n) steps, which comfortably covers the
	// Theorem 6 bound on all tested workloads.
	MaxSteps int
	// PartitionChargeC scales the charged cost of one radio Partition(β)
	// construction: PartitionChargeC·⌈log₂n⌉²/β rounds (HW16). Default 2.
	PartitionChargeC int
	// ScheduleChargeC scales the charged cost of computing one clustering's
	// schedules: ScheduleChargeC·⌈log₂n⌉² rounds (GHK15/HW16). Default 2.
	ScheduleChargeC int
	// RealClusterConstruction, when true, builds the fine clusterings with
	// the genuine RadioPartition protocol on the simulator (full fidelity:
	// the construction consumes real time-steps, reported in
	// Result.RealSetupSteps) instead of the engine-computed, cost-charged
	// construction. Slower and noisier; off by default.
	RealClusterConstruction bool
	// WrapFactory, when non-nil, wraps the protocol factories handed to the
	// radio engine for the simulated phases (the ComputeMIS run and the
	// main propagation loop). Test instrumentation — the golden-transcript
	// hashes guarding against silent semantic drift — hooks in here; it
	// must be transparent (forwarding Act/Deliver/Done unchanged).
	WrapFactory func(radio.Factory) radio.Factory
}

// wrap applies WrapFactory, or the identity when unset.
func (p Params) wrap(f radio.Factory) radio.Factory {
	if p.WrapFactory == nil {
		return f
	}
	return p.WrapFactory(f)
}

func (p Params) withDefaults() Params {
	if p.CenterMode == 0 {
		p.CenterMode = MISCenters
	}
	if p.FinesPerScale <= 0 {
		p.FinesPerScale = 3
	}
	if p.ICPFactor <= 0 {
		p.ICPFactor = 2
	}
	if p.BackgroundEvery == 0 {
		p.BackgroundEvery = 4
	}
	if p.PartitionChargeC <= 0 {
		p.PartitionChargeC = 2
	}
	if p.ScheduleChargeC <= 0 {
		p.ScheduleChargeC = 2
	}
	return p
}

// Result reports a Compete/Broadcast/LeaderElection run.
type Result struct {
	// CompleteStep is the main-loop step at which every node knew the
	// highest message (-1 if the budget ran out first).
	CompleteStep int
	// MainSteps is the number of main-loop steps executed.
	MainSteps int
	// MISSteps is the real time-step cost of ComputeMIS.
	MISSteps int
	// ChargedSetupSteps is the charged cost of steps 2–7 (clusterings,
	// schedules, sequence dissemination).
	ChargedSetupSteps int
	// RealSetupSteps is the real time-step cost of RadioPartition-built
	// clusterings (only with Params.RealClusterConstruction).
	RealSetupSteps int
	// TotalSteps = MISSteps + ChargedSetupSteps + CompleteStep (or MainSteps
	// when incomplete) — the quantity Theorems 6–8 bound.
	TotalSteps int
	// MISSize is |MIS| (== n for AllCenters).
	MISSize int
	// NumClusterings is the number of fine clusterings built.
	NumClusterings int
	// MaxDownSlots/MaxUpSlots record schedule widths (O(1) on
	// growth-bounded graphs).
	MaxDownSlots int
	// MaxUpSlots is the upcast analogue of MaxDownSlots.
	MaxUpSlots int
	// B is the paper's b parameter used for ℓ_j.
	B int
	// Winner is the highest message rank (leader ID for elections).
	Winner int64
	// Transmissions counts main-loop transmissions.
	Transmissions int64
}

// stepKind tags entries of the precomputed main-loop program.
type stepKind uint8

const (
	stepDown stepKind = iota + 1
	stepUp
	stepBackground
)

// stepDesc describes one main-loop time-step.
type stepDesc struct {
	kind    stepKind
	cluster uint16 // fine clustering index
	depth   int32  // transmitting layer
	slot    uint16
	bgLevel uint8 // background Decay level i (transmit prob 2^-i)
}

// clustering bundles one fine clustering with its forest and schedule.
type clustering struct {
	assign *mpx.Assignment
	forest *sched.Forest
	sch    *sched.Schedule
	ell    int // ICP truncation depth ℓ_j
}

// Compete runs the main procedure on g. sources maps node → message rank
// (use one entry for broadcast). It returns the Result; the graph must be
// connected.
func Compete(g *graph.Graph, sources map[int]int64, params Params, seed uint64) (*Result, error) {
	params = params.withDefaults()
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: no sources")
	}
	for s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("core: source %d out of range", s)
		}
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	diam, err := g.Diameter()
	if err != nil {
		return nil, err
	}
	if diam < 2 {
		diam = 2
	}
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	res := &Result{CompleteStep: -1}

	// --- Step 1: ComputeMIS (real radio steps) or the AllCenters ablation.
	var centers []int
	switch params.CenterMode {
	case MISCenters:
		out, err := mis.RunOnEngine(g, params.MIS, seed, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
			return radio.Run(g, params.wrap(factory), opts)
		})
		if err != nil {
			return nil, fmt.Errorf("core: ComputeMIS: %w", err)
		}
		if !out.Completed || len(out.MIS) == 0 {
			return nil, fmt.Errorf("core: ComputeMIS incomplete (rounds=%d)", out.Rounds)
		}
		if err := mis.Verify(g, out.MIS); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		centers = out.MIS
		res.MISSteps = out.Steps
	case AllCenters:
		centers = make([]int, n)
		for i := range centers {
			centers[i] = i
		}
	default:
		return nil, fmt.Errorf("core: unknown center mode %v", params.CenterMode)
	}
	res.MISSize = len(centers)

	// --- b and the ℓ_j scale (Theorem 2 vs CD21 Theorem 2.2).
	alphaEst := len(centers) // |MIS| ≤ α; the paper allows any poly estimate
	if alphaEst < 2 {
		alphaEst = 2
	}
	b, err := mpx.B(diam, alphaEst)
	if err != nil {
		return nil, err
	}
	res.B = b
	radialUnit := float64(b) // MISCenters: ℓ_j ∝ b·2^j = Θ(log_D α)·2^j
	if params.CenterMode == AllCenters {
		logDn := math.Log(float64(n)) / math.Log(float64(diam))
		if logDn < 1 {
			logDn = 1
		}
		radialUnit = 4 * logDn // CD21: ℓ_j ∝ log_D n·2^j
	}

	// --- Steps 2–3: coarse clustering + schedule (charged).
	logN := decay.StepsPerIteration(n)
	coarseBeta := 1 / math.Sqrt(float64(diam))
	res.ChargedSetupSteps += params.PartitionChargeC * logN * logN * int(math.Ceil(1/coarseBeta))
	res.ChargedSetupSteps += params.ScheduleChargeC * logN * logN

	// --- Steps 4–5: fine clusterings + schedules (construction charged,
	// structures computed engine-side).
	jmin, jmax := mpx.JRange(diam)
	var clusterings []clustering
	for j := jmin; j <= jmax; j++ {
		beta := math.Pow(2, -float64(j))
		ell := int(math.Ceil(params.ICPFactor * radialUnit * math.Pow(2, float64(j))))
		if ell < 2 {
			ell = 2
		}
		for k := 0; k < params.FinesPerScale; k++ {
			var a *mpx.Assignment
			if params.RealClusterConstruction {
				ra, steps, err := RadioPartition(g, centers, beta, PartitionParams{}, rng.Uint64())
				if err != nil {
					return nil, err
				}
				a = ra
				res.RealSetupSteps += steps
			} else {
				ca, err := mpx.Partition(g, centers, beta, rng)
				if err != nil {
					return nil, err
				}
				a = ca
				res.ChargedSetupSteps += params.PartitionChargeC * logN * logN * (1 << uint(j))
			}
			f, err := sched.BuildForest(g, a)
			if err != nil {
				return nil, err
			}
			s := sched.ComputeSchedule(g, f)
			clusterings = append(clusterings, clustering{assign: a, forest: f, sch: s, ell: ell})
			if s.DownSlots > res.MaxDownSlots {
				res.MaxDownSlots = s.DownSlots
			}
			if s.UpSlots > res.MaxUpSlots {
				res.MaxUpSlots = s.UpSlots
			}
			res.ChargedSetupSteps += params.ScheduleChargeC * logN * logN
		}
	}
	res.NumClusterings = len(clusterings)

	// --- Steps 6–7: random clustering sequence, disseminated within coarse
	// clusters (charged: coarse radius + sequence length).
	coarseRadius := int(math.Ceil(3 * float64(logN) / coarseBeta))
	res.ChargedSetupSteps += coarseRadius + logN*logN

	// --- Step 8: the main propagation loop on the real radio engine.
	budget := params.MaxSteps
	if budget <= 0 {
		budget = 40 * (diam*int(math.Ceil(radialUnit*params.ICPFactor)) + logN*logN*logN)
	}
	program := buildProgram(clusterings, budget, params, logN, rng)

	target := int64(math.MinInt64)
	for _, rank := range sources {
		if rank > target {
			target = rank
		}
	}
	res.Winner = target

	mainRes, completeStep, err := runMainLoop(g, sources, clusterings, program, target, params, seed)
	if err != nil {
		return nil, err
	}
	res.MainSteps = mainRes.Steps
	res.Transmissions = mainRes.Transmissions
	res.CompleteStep = completeStep
	effective := res.MainSteps
	if completeStep >= 0 {
		effective = completeStep
	}
	res.TotalSteps = res.MISSteps + res.ChargedSetupSteps + res.RealSetupSteps + effective
	return res, nil
}

// buildProgram lays out the main-loop timeline: ICP blocks over randomly
// chosen clusterings (Algorithm 2 step 8) interleaved with background steps.
func buildProgram(clusterings []clustering, budget int, params Params, logN int, rng *xrand.RNG) []stepDesc {
	program := make([]stepDesc, 0, budget)
	bgCounter := 0
	bgLevel := 0
	emit := func(d stepDesc) {
		program = append(program, d)
		bgCounter++
		if params.BackgroundEvery > 0 && bgCounter%params.BackgroundEvery == 0 {
			program = append(program, stepDesc{kind: stepBackground, bgLevel: uint8(bgLevel%logN + 1)})
			bgLevel++
		}
	}
	for len(program) < budget {
		ci := rng.Intn(len(clusterings))
		c := clusterings[ci]
		ell := c.ell
		if ell > c.forest.MaxDepth {
			ell = c.forest.MaxDepth
		}
		// Algorithm 9: downcast, upcast, downcast. Each layer is charged
		// only its own slot count; layers with nothing scheduled are free.
		down := func() {
			for d := 0; d < ell; d++ {
				for s := 0; s < c.sch.DownSlotsAt[d]; s++ {
					emit(stepDesc{kind: stepDown, cluster: uint16(ci), depth: int32(d), slot: uint16(s)})
				}
			}
		}
		down()
		for d := ell; d >= 1; d-- {
			for s := 0; s < c.sch.UpSlotsAt[d]; s++ {
				emit(stepDesc{kind: stepUp, cluster: uint16(ci), depth: int32(d), slot: uint16(s)})
			}
		}
		down()
		if ell == 0 { // degenerate all-singleton clustering: avoid spinning
			emit(stepDesc{kind: stepBackground, bgLevel: 1})
		}
	}
	return program[:budget]
}

// competeNode is the per-node main-loop protocol. Its clustering tables
// (depth/slot per clustering) are the engine-distributed products of steps
// 2–7, whose dissemination cost is charged separately.
type competeNode struct {
	idx      int
	program  []stepDesc
	depths   []int32
	downSlot []int16
	upSlot   []int16
	best     int64
	hasMsg   bool
	rng      *xrand.RNG
	step     int
	stop     *bool
}

var _ radio.Protocol = (*competeNode)(nil)

func (c *competeNode) Act(step int) radio.Action {
	if step >= len(c.program) {
		return radio.Listen()
	}
	d := c.program[step]
	if !c.hasMsg {
		return radio.Listen()
	}
	switch d.kind {
	case stepDown:
		ci := int(d.cluster)
		if c.depths[ci] == d.depth && c.downSlot[ci] == int16(d.slot) {
			return radio.Transmit(c.best)
		}
	case stepUp:
		ci := int(d.cluster)
		if c.depths[ci] == d.depth && c.upSlot[ci] == int16(d.slot) {
			return radio.Transmit(c.best)
		}
	case stepBackground:
		if c.rng.Bernoulli(math.Pow(2, -float64(d.bgLevel))) {
			return radio.Transmit(c.best)
		}
	}
	return radio.Listen()
}

func (c *competeNode) Deliver(step int, msg radio.Message) {
	c.step = step + 1
	if msg == nil {
		return
	}
	rank, ok := msg.(int64)
	if !ok {
		return
	}
	if !c.hasMsg || rank > c.best {
		c.best = rank
		c.hasMsg = true
	}
}

func (c *competeNode) Done() bool {
	return *c.stop || c.step >= len(c.program)
}

// runMainLoop executes the program on the radio engine and detects the step
// at which all nodes know the target (engine-side measurement oracle).
func runMainLoop(g *graph.Graph, sources map[int]int64, clusterings []clustering, program []stepDesc, target int64, params Params, seed uint64) (radio.Result, int, error) {
	n := g.N()
	nodes := make([]*competeNode, n)
	stop := false
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &competeNode{
			idx:      info.Index,
			program:  program,
			depths:   make([]int32, len(clusterings)),
			downSlot: make([]int16, len(clusterings)),
			upSlot:   make([]int16, len(clusterings)),
			rng:      info.RNG,
			stop:     &stop,
		}
		for ci, c := range clusterings {
			nd.depths[ci] = int32(c.forest.Depth[info.Index])
			nd.downSlot[ci] = int16(c.sch.DownSlot[info.Index])
			nd.upSlot[ci] = int16(c.sch.UpSlot[info.Index])
		}
		if rank, ok := sources[info.Index]; ok {
			nd.best = rank
			nd.hasMsg = true
		}
		nodes[info.Index] = nd
		return nd
	}
	completeStep := -1
	opts := radio.Options{
		MaxSteps: len(program),
		Seed:     seed ^ 0x5bf0_3635,
		OnStep: func(st radio.StepStats) {
			if completeStep >= 0 {
				return
			}
			for _, nd := range nodes {
				if !nd.hasMsg || nd.best != target {
					return
				}
			}
			completeStep = st.Step + 1
			stop = true
		},
	}
	res, err := radio.Run(g, params.wrap(factory), opts)
	if err != nil {
		return radio.Result{}, -1, err
	}
	return res, completeStep, nil
}

// Broadcast performs single-source broadcasting (Theorem 7): Compete({s}).
func Broadcast(g *graph.Graph, source int, params Params, seed uint64) (*Result, error) {
	return Compete(g, map[int]int64{source: 1}, params, seed)
}

// ElectionResult extends Result with leader-election specifics (Theorem 8).
type ElectionResult struct {
	Result
	// Candidates is the number of self-nominated candidate leaders.
	Candidates int
	// LeaderID is the agreed winning candidate rank.
	LeaderID int64
	// Retries counts candidate-sampling retries (zero-candidate draws).
	Retries int
}

// LeaderElection runs Algorithm 3: nodes self-nominate with probability
// Θ(log n / n), draw Θ(log n)-bit IDs, and Compete over the candidate set.
func LeaderElection(g *graph.Graph, params Params, seed uint64) (*ElectionResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	rng := xrand.New(seed ^ 0xabcdef12345)
	p := 2 * math.Log(float64(n)+1) / float64(n)
	if p > 1 {
		p = 1
	}
	er := &ElectionResult{}
	for retry := 0; ; retry++ {
		sources := map[int]int64{}
		for v := 0; v < n; v++ {
			if rng.Bernoulli(p) {
				// Θ(log n)-bit random IDs are unique whp; rank by ID.
				sources[v] = int64(rng.Uint64() >> 16)
			}
		}
		if len(sources) == 0 {
			if retry > 20 {
				return nil, fmt.Errorf("core: no candidates after %d retries", retry)
			}
			er.Retries++
			continue
		}
		res, err := Compete(g, sources, params, seed+uint64(retry))
		if err != nil {
			return nil, err
		}
		er.Result = *res
		er.Candidates = len(sources)
		er.LeaderID = res.Winner
		return er, nil
	}
}
