package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpx"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// buildTestClusterings constructs a couple of clusterings for program tests.
func buildTestClusterings(t *testing.T) []clustering {
	t.Helper()
	g := gen.Grid(6, 6)
	rng := xrand.New(3)
	var out []clustering
	for _, beta := range []float64{0.5, 0.25} {
		a, err := mpx.Partition(g, g.GreedyMIS(nil), beta, rng)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sched.BuildForest(g, a)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, clustering{
			assign: a,
			forest: f,
			sch:    sched.ComputeSchedule(g, f),
			ell:    6,
		})
	}
	return out
}

func TestBuildProgramLengthAndBudget(t *testing.T) {
	cs := buildTestClusterings(t)
	rng := xrand.New(9)
	params := Params{}.withDefaults()
	const budget = 500
	prog := buildProgram(cs, budget, params, 6, rng)
	if len(prog) != budget {
		t.Fatalf("program length %d, want exactly %d", len(prog), budget)
	}
}

func TestBuildProgramBackgroundCadence(t *testing.T) {
	cs := buildTestClusterings(t)
	rng := xrand.New(10)
	params := Params{BackgroundEvery: 3}.withDefaults()
	prog := buildProgram(cs, 300, params, 6, rng)
	bg := 0
	for _, d := range prog {
		if d.kind == stepBackground {
			bg++
			if d.bgLevel < 1 || int(d.bgLevel) > 6 {
				t.Fatalf("background level %d outside [1,6]", d.bgLevel)
			}
		}
	}
	// One background step per 3 foreground steps → about a quarter of all.
	frac := float64(bg) / float64(len(prog))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("background fraction %v, want ≈ 0.25", frac)
	}
}

func TestBuildProgramNoBackground(t *testing.T) {
	cs := buildTestClusterings(t)
	rng := xrand.New(11)
	params := Params{BackgroundEvery: -1}.withDefaults()
	prog := buildProgram(cs, 200, params, 6, rng)
	for _, d := range prog {
		if d.kind == stepBackground {
			t.Fatal("background step emitted with BackgroundEvery < 0")
		}
	}
}

func TestBuildProgramStepsValid(t *testing.T) {
	cs := buildTestClusterings(t)
	rng := xrand.New(12)
	params := Params{}.withDefaults()
	prog := buildProgram(cs, 400, params, 6, rng)
	for i, d := range prog {
		switch d.kind {
		case stepDown:
			c := cs[d.cluster]
			if int(d.depth) < 0 || int(d.depth) >= c.ell && int(d.depth) > c.forest.MaxDepth {
				t.Fatalf("step %d: down depth %d out of range", i, d.depth)
			}
			if int(d.slot) >= c.sch.DownSlotsAt[d.depth] {
				t.Fatalf("step %d: down slot %d exceeds layer count %d", i, d.slot, c.sch.DownSlotsAt[d.depth])
			}
		case stepUp:
			c := cs[d.cluster]
			if int(d.depth) < 1 {
				t.Fatalf("step %d: up depth %d < 1", i, d.depth)
			}
			if int(d.slot) >= c.sch.UpSlotsAt[d.depth] {
				t.Fatalf("step %d: up slot %d exceeds layer count %d", i, d.slot, c.sch.UpSlotsAt[d.depth])
			}
		case stepBackground:
			// checked elsewhere
		default:
			t.Fatalf("step %d: unknown kind %d", i, d.kind)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.CenterMode != MISCenters || p.FinesPerScale != 3 || p.ICPFactor != 2 ||
		p.BackgroundEvery != 4 || p.PartitionChargeC != 2 || p.ScheduleChargeC != 2 {
		t.Fatalf("unexpected defaults %+v", p)
	}
	// Negative BackgroundEvery survives (disable semantics).
	p2 := Params{BackgroundEvery: -1}.withDefaults()
	if p2.BackgroundEvery != -1 {
		t.Fatalf("BackgroundEvery -1 overwritten to %d", p2.BackgroundEvery)
	}
}
