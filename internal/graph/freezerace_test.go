package graph

import (
	"sync"
	"testing"
)

func TestFreezeConcurrentReaders(t *testing.T) {
	g := New(200)
	for v := 0; v+1 < 200; v++ {
		g.AddEdge(v, v+1)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			g.BFS(src)
			g.Freeze()
		}(i)
	}
	wg.Wait()
}
