package graph

// Streaming CSR construction and graph-free traversal — the substrate of
// the million-node generator path (DESIGN.md §11). The generators' grid-
// bucketed builders know every vertex's degree after one counting pass, so
// they can fill the flat edge array directly through CSRBuilder — two
// passes, no per-vertex slices, no edge staging arrays, no Graph
// intermediate. The traversal methods (MultiBFS, DiameterApprox, Connected)
// mirror Graph's so CSR-only pipelines can check connectivity and estimate
// parameters without ever materializing adjacency-list form.

import "slices"

// CSRBuilder assembles a CSR directly from per-vertex degree counts: the
// caller counts degrees (pass 1), constructs the builder — which turns the
// counts into the offsets table in place — then emits every directed arc
// (pass 2) and calls Finish. Each undirected edge {u,v} must be emitted as
// both Arc(u,v) and Arc(v,u), exactly as it was counted toward both
// degrees. The builder performs no dedup and no range checks — it is the
// trusted back end of generators that already emit each pair once — and
// total work is O(n + m) with the edge array as the only O(m) allocation.
type CSRBuilder struct {
	offsets []int32
	cursor  []int32 // per-vertex write position; starts at offsets[v]
	edges   []int32
}

// NewCSRBuilder takes ownership of deg — vertex v's degree in deg[v], both
// endpoints of every edge counted — reusing its storage as the fill cursor.
func NewCSRBuilder(deg []int32) *CSRBuilder {
	n := len(deg)
	offsets := make([]int32, n+1)
	total := int32(0)
	for v, d := range deg {
		offsets[v] = total
		total += d
	}
	offsets[n] = total
	b := &CSRBuilder{offsets: offsets, cursor: deg, edges: make([]int32, total)}
	copy(b.cursor, offsets[:n])
	return b
}

// Arc appends v to u's neighbor list.
func (b *CSRBuilder) Arc(u, v int32) {
	b.edges[b.cursor[u]] = v
	b.cursor[u]++
}

// SortLists sorts every vertex's list ascending, in place. Generators whose
// fill pass emits ring-ordered runs call it to land on the same canonical
// ascending lists the Builder path produces (its lexicographic edge order
// yields ascending lists by construction).
func (b *CSRBuilder) SortLists() {
	for v := 0; v+1 < len(b.offsets); v++ {
		slices.Sort(b.edges[b.offsets[v]:b.offsets[v+1]])
	}
}

// Finish returns the snapshot. The builder must not be reused afterwards.
func (b *CSRBuilder) Finish() *CSR {
	return &CSR{offsets: b.offsets, edges: b.edges}
}

// FromCSR materializes a Graph over the snapshot. Flat snapshots share
// storage: the adjacency lists are carved out of the edge array with full
// slice expressions (a later AddEdge copies instead of clobbering a
// neighbor's list, exactly like Builder.Build) and the CSR cache is
// pre-seeded, so the conversion is O(n) regardless of m. Packed snapshots
// unpack first.
func FromCSR(c *CSR) *Graph {
	f := c.Unpack()
	n := f.N()
	g := &Graph{n: n, adj: make([][]int32, n)}
	for v := 0; v < n; v++ {
		g.adj[v] = f.edges[f.offsets[v]:f.offsets[v+1]:f.offsets[v+1]]
	}
	g.csr = f
	return g
}

// BFS returns hop distances from src over the snapshot; Unreachable for
// disconnected vertices.
func (c *CSR) BFS(src int) []int { return c.MultiBFS([]int{src}) }

// MultiBFS returns hop distances from the nearest of the given sources,
// matching Graph.MultiBFS. Iteration goes through a cursor so packed
// snapshots traverse with one decode buffer instead of per-vertex
// allocations.
func (c *CSR) MultiBFS(sources []int) []int {
	n := c.N()
	cur := c.Cursor()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= n || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, int32(s))
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range cur.List(int(u)) {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Connected reports whether the snapshot is connected (vacuously true for
// n ≤ 1).
func (c *CSR) Connected() bool {
	if c.N() <= 1 {
		return true
	}
	for _, d := range c.BFS(0) {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// DiameterApprox is Graph.DiameterApprox over the snapshot: a double BFS
// sweep giving a 2-approximation lower bound, ErrDisconnected when
// applicable. This is what lets graph-free runs (radio.RunCSR) derive the
// paper's parameter estimates without materializing adjacency lists.
func (c *CSR) DiameterApprox() (int, error) {
	if c.N() == 0 {
		return 0, nil
	}
	dist := c.BFS(0)
	far, fd := 0, 0
	for v, d := range dist {
		if d == Unreachable {
			return 0, ErrDisconnected
		}
		if d > fd {
			far, fd = v, d
		}
	}
	ecc := 0
	for _, d := range c.BFS(far) {
		if d == Unreachable {
			return 0, ErrDisconnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}
