package graph

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// IsIndependentSet reports whether set (a vertex subset) contains no edge.
func (g *Graph) IsIndependentSet(set []int) bool {
	in := make([]bool, g.n)
	for _, v := range set {
		if v < 0 || v >= g.n {
			return false
		}
		in[v] = true
	}
	for _, v := range set {
		for _, w := range g.adj[v] {
			if in[w] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and maximal:
// every vertex outside the set has a neighbor inside it.
func (g *Graph) IsMaximalIndependentSet(set []int) bool {
	if !g.IsIndependentSet(set) {
		return false
	}
	in := make([]bool, g.n)
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.n; v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.adj[v] {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// GreedyMIS computes a maximal independent set by scanning vertices in the
// given order (identity order when order is nil).
func (g *Graph) GreedyMIS(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
	}
	blocked := make([]bool, g.n)
	var mis []int
	for _, v := range order {
		if blocked[v] {
			continue
		}
		mis = append(mis, v)
		blocked[v] = true
		for _, w := range g.adj[v] {
			blocked[w] = true
		}
	}
	sort.Ints(mis)
	return mis
}

// GreedyMinDegreeMIS computes a maximal independent set scanning vertices in
// ascending degree order — a classic heuristic lower bound for the
// independence number α(G).
func (g *Graph) GreedyMinDegreeMIS() []int {
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(g.adj[order[i]]), len(g.adj[order[j]])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	return g.GreedyMIS(order)
}

// IndependenceLowerBound estimates α(G) from below by taking the best of the
// min-degree greedy set and `trials` random-order greedy sets.
func (g *Graph) IndependenceLowerBound(trials int, rng *xrand.RNG) int {
	best := len(g.GreedyMinDegreeMIS())
	for t := 0; t < trials; t++ {
		if got := len(g.GreedyMIS(rng.Perm(g.n))); got > best {
			best = got
		}
	}
	return best
}

// maxExactIndependence caps the branch-and-bound search size.
const maxExactIndependence = 64

// IndependenceNumberExact computes α(G) exactly via branch and bound on the
// max-degree vertex. It is exponential in the worst case and refuses graphs
// with more than maxExactIndependence vertices (returns ok=false).
func (g *Graph) IndependenceNumberExact() (alpha int, ok bool) {
	if g.n > maxExactIndependence {
		return 0, false
	}
	alive := make([]bool, g.n)
	for i := range alive {
		alive[i] = true
	}
	best := 0
	var rec func(count, remaining int)
	rec = func(count, remaining int) {
		if count+remaining <= best {
			return // bound: even taking everything left cannot beat best
		}
		// pick an alive vertex of maximum alive-degree
		pick, pickDeg := -1, -1
		for v := 0; v < g.n; v++ {
			if !alive[v] {
				continue
			}
			d := 0
			for _, w := range g.adj[v] {
				if alive[w] {
					d++
				}
			}
			if d > pickDeg {
				pick, pickDeg = v, d
			}
		}
		if pick == -1 {
			if count > best {
				best = count
			}
			return
		}
		if pickDeg <= 1 {
			// Remaining graph is a union of isolated vertices and disjoint
			// edges; take one endpoint of each edge and all isolated nodes.
			extra := 0
			taken := make([]bool, g.n)
			for v := 0; v < g.n; v++ {
				if !alive[v] || taken[v] {
					continue
				}
				extra++
				taken[v] = true
				for _, w := range g.adj[v] {
					if alive[w] {
						taken[w] = true
					}
				}
			}
			if count+extra > best {
				best = count + extra
			}
			return
		}
		// Branch 1: include pick.
		var removed []int
		alive[pick] = false
		removed = append(removed, pick)
		for _, w := range g.adj[pick] {
			if alive[w] {
				alive[w] = false
				removed = append(removed, int(w))
			}
		}
		rec(count+1, remaining-len(removed))
		for _, v := range removed {
			alive[v] = true
		}
		// Branch 2: exclude pick.
		alive[pick] = false
		rec(count, remaining-1)
		alive[pick] = true
	}
	rec(0, g.n)
	return best, true
}

// GrowthProfile measures, per radius d = 1..maxD, the largest independent set
// found inside any d-hop ball (sampling `samples` ball centers using rng, or
// all vertices when samples <= 0 or >= n). This is the empirical version of
// the paper's growth-bounded-graphs definition (§1.3): a class is
// (polynomially) growth-bounded when α(B_d(v)) ≤ poly(d).
//
// Inside each ball, α is computed exactly when the ball has at most
// maxExactIndependence vertices and by greedy lower bound otherwise.
func (g *Graph) GrowthProfile(maxD, samples int, rng *xrand.RNG) []int {
	centers := make([]int, 0, g.n)
	if samples <= 0 || samples >= g.n {
		for v := 0; v < g.n; v++ {
			centers = append(centers, v)
		}
	} else {
		for _, v := range rng.Perm(g.n)[:samples] {
			centers = append(centers, v)
		}
	}
	profile := make([]int, maxD+1)
	for _, c := range centers {
		dist := g.BFS(c)
		for d := 0; d <= maxD; d++ {
			var ball []int
			for u, du := range dist {
				if du != Unreachable && du <= d {
					ball = append(ball, u)
				}
			}
			sub, _ := g.InducedSubgraph(ball)
			var a int
			if exact, ok := sub.IndependenceNumberExact(); ok {
				a = exact
			} else {
				a = sub.IndependenceLowerBound(4, rng)
			}
			if a > profile[d] {
				profile[d] = a
			}
		}
	}
	return profile
}

// GrowthExponent fits log α(B_d) ≈ e·log d over the measured profile and
// returns the least-squares exponent e (ignoring d < 2 entries). A graph
// class is polynomially growth-bounded when this stays bounded as the graph
// grows; for 2-D unit disk graphs theory predicts e ≈ 2.
func GrowthExponent(profile []int) float64 {
	var xs, ys []float64
	for d := 2; d < len(profile); d++ {
		if profile[d] <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(d)))
		ys = append(ys, math.Log(float64(profile[d])))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
