package graph

// Compact adjacency: an alternative CSR storage form for the million-node
// engine path (DESIGN.md §11). The flat form spends 4 bytes per directed
// edge; on geometric graphs neighbor ids are spatially clustered, so a
// per-vertex block of varint-coded deltas stores most edges in one byte.
// A packed CSR answers the same N/M/Degree/Neighbors contract the engines
// and traversals consume — only the iteration fast path changes, from an
// edge-array subslice to a reused decode cursor (NeighborCursor), which is
// what keeps the step loop zero-alloc (the alloc regression tests pin it).
//
// Block format, per vertex, preserving exact list order (the transcript
// contract depends on neighbor order, so packing must be lossless including
// order): the first neighbor id as a plain uvarint, every subsequent entry
// as the zigzag varint of its delta from the previous entry. Builder-made
// lists are ascending (deltas positive, usually small), but the format
// round-trips arbitrary order — deltas may be negative — so Pack works on
// any snapshot, not just generator output.

import (
	"encoding/binary"
	"math"
)

// CompactThreshold is the vertex count at and above which the streaming
// generator entry points (gen.BuildCSR) hand back packed adjacency
// automatically. Below it the flat form's iteration speed wins; above it
// the ~3× edge-storage saving is what lets n = 10⁶ fit comfortably.
const CompactThreshold = 1 << 16

// packed reports whether this snapshot stores packed adjacency.
func (c *CSR) packed() bool { return c.blob != nil }

// IsPacked reports whether the snapshot stores delta-varint adjacency
// blocks instead of the flat edge array.
func (c *CSR) IsPacked() bool { return c.packed() }

// Pack returns a snapshot equivalent to c (same vertex count, same neighbor
// lists in the same order) with the adjacency delta-varint encoded. The
// offsets table is shared with c — it is immutable and still provides
// Degree — while the flat edge array is replaced by the byte blob. Returns
// c unchanged when it is already packed, or in the degenerate case where
// the blob would overflow the 32-bit block-start table (unreachable below
// ~2³¹ edges).
func (c *CSR) Pack() *CSR {
	if c.packed() {
		return c
	}
	n := c.N()
	starts := make([]uint32, n+1)
	// Ascending geometric lists make ~1 byte per edge the common case; seed
	// the buffer there and let append grow it for adversarial lists.
	buf := make([]byte, 0, len(c.edges)+len(c.edges)/4+16)
	var tmp [binary.MaxVarintLen64]byte
	for v := 0; v < n; v++ {
		starts[v] = uint32(len(buf))
		list := c.edges[c.offsets[v]:c.offsets[v+1]]
		prev := int64(0)
		for i, w := range list {
			var k int
			if i == 0 {
				k = binary.PutUvarint(tmp[:], uint64(uint32(w)))
			} else {
				k = binary.PutVarint(tmp[:], int64(w)-prev)
			}
			buf = append(buf, tmp[:k]...)
			prev = int64(w)
		}
		if len(buf) > math.MaxUint32 {
			return c
		}
	}
	starts[n] = uint32(len(buf))
	return &CSR{offsets: c.offsets, blob: buf, starts: starts}
}

// Unpack returns the flat-form equivalent of c (c itself when already flat).
func (c *CSR) Unpack() *CSR {
	if !c.packed() {
		return c
	}
	n := c.N()
	edges := make([]int32, c.offsets[n])
	for v := 0; v < n; v++ {
		decodeBlock(c.blob[c.starts[v]:c.starts[v+1]], edges[c.offsets[v]:c.offsets[v+1]])
	}
	return &CSR{offsets: c.offsets, edges: edges}
}

// decodeBlock decodes one vertex's delta-varint block into out, whose
// length must be the vertex's degree.
func decodeBlock(b []byte, out []int32) {
	if len(out) == 0 {
		return
	}
	u, k := binary.Uvarint(b)
	b = b[k:]
	prev := int32(uint32(u))
	out[0] = prev
	for i := 1; i < len(out); i++ {
		d, k := binary.Varint(b)
		b = b[k:]
		prev += int32(d)
		out[i] = prev
	}
}

// NeighborCursor iterates one snapshot's adjacency lists without per-call
// allocation: flat snapshots hand back edge-array subslices as Neighbors
// does, packed snapshots decode into a scratch buffer sized to the maximum
// degree when the cursor was made. It is the hot-path iteration handle for
// code that must stay zero-alloc per step against either form (phy models,
// BFS). A cursor is single-goroutine state — each concurrent reader makes
// its own — and the slice List returns is valid only until the next List
// call on the same cursor.
type NeighborCursor struct {
	c   *CSR
	buf []int32 // packed-form decode scratch; nil for flat snapshots
}

// Cursor returns an iteration cursor over c. For packed snapshots this
// allocates the decode scratch (one O(Δ) buffer), so make the cursor at
// sync/construction time, never inside a step loop.
func (c *CSR) Cursor() NeighborCursor {
	if !c.packed() {
		return NeighborCursor{c: c}
	}
	return NeighborCursor{c: c, buf: make([]int32, c.MaxDegree())}
}

// List returns v's neighbor list. Flat form: a shared subslice, exactly
// Neighbors. Packed form: the cursor's scratch buffer, overwritten by the
// next List call. Callers must not modify the result in either form.
func (cur *NeighborCursor) List(v int) []int32 {
	c := cur.c
	if c.blob == nil {
		return c.edges[c.offsets[v]:c.offsets[v+1]]
	}
	out := cur.buf[:c.offsets[v+1]-c.offsets[v]]
	decodeBlock(c.blob[c.starts[v]:c.starts[v+1]], out)
	return out
}

// MaxDegree returns Δ of the snapshot, 0 for the empty graph.
func (c *CSR) MaxDegree() int {
	maxDeg := int32(0)
	for v := 1; v < len(c.offsets); v++ {
		if d := c.offsets[v] - c.offsets[v-1]; d > maxDeg {
			maxDeg = d
		}
	}
	return int(maxDeg)
}

// MemBytes returns the resident size of the snapshot's arrays in bytes —
// the quantity the bench harness tracks as bytes/node. It counts the
// storage the snapshot owns (offsets, edges or blob+starts), not Go object
// headers.
func (c *CSR) MemBytes() int64 {
	b := int64(len(c.offsets)) * 4
	b += int64(len(c.edges)) * 4
	b += int64(len(c.blob))
	b += int64(len(c.starts)) * 4
	return b
}
