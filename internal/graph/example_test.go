package graph_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

func ExampleGraph_Diameter() {
	g := gen.Grid(4, 6) // 4×6 grid: diameter (4−1)+(6−1) = 8
	d, err := g.Diameter()
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output: 8
}

func ExampleGraph_IsMaximalIndependentSet() {
	g := gen.Path(5)
	fmt.Println(g.IsMaximalIndependentSet([]int{0, 2, 4}))
	fmt.Println(g.IsMaximalIndependentSet([]int{0, 4})) // vertex 2 undominated
	// Output:
	// true
	// false
}

func ExampleGraph_IndependenceNumberExact() {
	g := gen.Cycle(8)
	alpha, ok := g.IndependenceNumberExact()
	fmt.Println(alpha, ok)
	// Output: 4 true
}

func ExampleGraph_BFS() {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	fmt.Println(g.BFS(0))
	// Output: [0 1 2 -1]
}
