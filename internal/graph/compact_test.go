package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a Builder graph on n vertices with roughly m edge
// attempts (duplicates dropped), deterministic in seed.
func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.Add(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{0, 0}, {1, 0}, {2, 1}, {8, 0}, {16, 40}, {200, 800}, {500, 4000},
	} {
		g := randomGraph(tc.n, tc.m, int64(tc.n*1000+tc.m))
		flat := g.Freeze()
		packed := flat.Pack()
		if tc.n > 0 && flat.M() > 0 && !packed.IsPacked() {
			t.Fatalf("n=%d m=%d: Pack returned flat form", tc.n, tc.m)
		}
		if !flat.Equal(packed) || !packed.Equal(flat) {
			t.Fatalf("n=%d m=%d: packed form not Equal to flat", tc.n, tc.m)
		}
		back := packed.Unpack()
		if back.IsPacked() {
			t.Fatalf("Unpack returned packed form")
		}
		if !flat.Equal(back) {
			t.Fatalf("n=%d m=%d: unpack(pack(c)) differs from c", tc.n, tc.m)
		}
		if packed.N() != flat.N() || packed.M() != flat.M() {
			t.Fatalf("n/m mismatch: packed (%d,%d), flat (%d,%d)",
				packed.N(), packed.M(), flat.N(), flat.M())
		}
		for v := 0; v < tc.n; v++ {
			if packed.Degree(v) != flat.Degree(v) {
				t.Fatalf("vertex %d: degree %d vs %d", v, packed.Degree(v), flat.Degree(v))
			}
		}
	}
}

func TestPackPreservesNonAscendingOrder(t *testing.T) {
	// AddEdge insertion order — lists here are NOT ascending, so the deltas
	// include negatives. Pack must preserve exact order (transcript contract).
	g := New(5)
	g.AddEdge(0, 4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 3)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	flat := g.Freeze()
	packed := flat.Pack()
	for v := 0; v < 5; v++ {
		fn, pn := flat.Neighbors(v), packed.Neighbors(v)
		if len(fn) != len(pn) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(fn), len(pn))
		}
		for i := range fn {
			if fn[i] != pn[i] {
				t.Fatalf("vertex %d pos %d: flat %d, packed %d (order lost)", v, i, fn[i], pn[i])
			}
		}
	}
}

func TestPackIdempotent(t *testing.T) {
	c := randomGraph(50, 200, 7).Freeze().Pack()
	if c.Pack() != c {
		t.Fatalf("Pack on a packed snapshot should return it unchanged")
	}
	f := c.Unpack()
	if f.Unpack() != f {
		t.Fatalf("Unpack on a flat snapshot should return it unchanged")
	}
}

func TestCursorMatchesNeighborsBothForms(t *testing.T) {
	g := randomGraph(120, 600, 11)
	flat := g.Freeze()
	packed := flat.Pack()
	for _, c := range []*CSR{flat, packed} {
		cur := c.Cursor()
		for v := 0; v < c.N(); v++ {
			want := flat.Neighbors(v)
			got := cur.List(v)
			if len(got) != len(want) {
				t.Fatalf("packed=%v vertex %d: len %d vs %d", c.IsPacked(), v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("packed=%v vertex %d pos %d: %d vs %d", c.IsPacked(), v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCursorScratchReuse(t *testing.T) {
	// List on a packed cursor must reuse the one scratch buffer, not allocate.
	packed := randomGraph(64, 256, 3).Freeze().Pack()
	cur := packed.Cursor()
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < packed.N(); v++ {
			cur.List(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("packed cursor List allocates: %v allocs per full sweep", allocs)
	}
}

func TestCSRMaxDegree(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if d := g.Freeze().MaxDegree(); d != 3 {
		t.Fatalf("MaxDegree = %d, want 3", d)
	}
	if d := New(0).Freeze().MaxDegree(); d != 0 {
		t.Fatalf("empty MaxDegree = %d, want 0", d)
	}
}

func TestMemBytesPackedSmaller(t *testing.T) {
	// Geometric-style ascending lists with clustered ids: packed must be
	// strictly smaller than flat (that's the point of the format).
	b := NewBuilder(2000)
	for v := 0; v < 2000; v++ {
		for d := 1; d <= 6; d++ {
			b.Add(v, (v+d)%2000)
		}
	}
	flat := b.Build().Freeze()
	packed := flat.Pack()
	if packed.MemBytes() >= flat.MemBytes() {
		t.Fatalf("packed %d bytes >= flat %d bytes", packed.MemBytes(), flat.MemBytes())
	}
}

func TestEqualDetectsDifferencesAcrossForms(t *testing.T) {
	a := randomGraph(40, 160, 21).Freeze()
	c := a.Graph()
	c.AddEdge(0, 39)
	c.AddEdge(0, 38) // ensure at least one differs even if 0-39 existed
	d := c.Freeze()
	if a.Equal(d.Pack()) || d.Pack().Equal(a) {
		t.Fatalf("Equal missed an edge difference across forms")
	}
}

func TestFromCSRBothForms(t *testing.T) {
	orig := randomGraph(80, 320, 5)
	flat := orig.Freeze()
	for _, c := range []*CSR{flat, flat.Pack()} {
		g := FromCSR(c)
		if g.N() != orig.N() || g.M() != orig.M() {
			t.Fatalf("packed=%v: N/M (%d,%d) vs (%d,%d)", c.IsPacked(), g.N(), g.M(), orig.N(), orig.M())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("packed=%v: FromCSR graph invalid: %v", c.IsPacked(), err)
		}
		for v := 0; v < g.N(); v++ {
			on, gn := orig.Neighbors(v), g.Neighbors(v)
			if len(on) != len(gn) {
				t.Fatalf("packed=%v vertex %d: degree %d vs %d", c.IsPacked(), v, len(gn), len(on))
			}
			for i := range on {
				if on[i] != gn[i] {
					t.Fatalf("packed=%v vertex %d pos %d: %d vs %d", c.IsPacked(), v, i, gn[i], on[i])
				}
			}
		}
		// Mutating the materialized graph must not corrupt the snapshot.
		before := c.Unpack().Neighbors(0)
		beforeCopy := append([]int32(nil), before...)
		g.AddEdge(0, g.N()-1)
		g.AddEdge(0, g.N()-2)
		after := c.Unpack().Neighbors(0)
		if len(after) != len(beforeCopy) {
			t.Fatalf("packed=%v: snapshot list length changed after AddEdge on FromCSR graph", c.IsPacked())
		}
		for i := range beforeCopy {
			if after[i] != beforeCopy[i] {
				t.Fatalf("packed=%v: snapshot corrupted by AddEdge on FromCSR graph", c.IsPacked())
			}
		}
	}
}

func TestCSRTraversalsMatchGraph(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(60, 150, 100+seed)
		flat := g.Freeze()
		for _, c := range []*CSR{flat, flat.Pack()} {
			for _, srcs := range [][]int{{0}, {3, 17, 59}, {}, {-1, 60, 5}} {
				want := g.MultiBFS(srcs)
				got := c.MultiBFS(srcs)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("seed %d packed=%v srcs=%v vertex %d: CSR dist %d, Graph dist %d",
							seed, c.IsPacked(), srcs, v, got[v], want[v])
					}
				}
			}
			if c.Connected() != g.Connected() {
				t.Fatalf("seed %d packed=%v: Connected mismatch", seed, c.IsPacked())
			}
			gd, gerr := g.DiameterApprox()
			cd, cerr := c.DiameterApprox()
			if (gerr == nil) != (cerr == nil) || (gerr == nil && gd != cd) {
				t.Fatalf("seed %d packed=%v: DiameterApprox (%d,%v) vs Graph (%d,%v)",
					seed, c.IsPacked(), cd, cerr, gd, gerr)
			}
		}
	}
}

func TestCSRBuilderMatchesBuilder(t *testing.T) {
	// Emit the same UDG-style edge set through both construction paths:
	// Builder (lexicographic Add order → ascending lists) and CSRBuilder
	// (count pass, arc fill, SortLists). Lists must be identical.
	rng := rand.New(rand.NewSource(99))
	n := 300
	type edge struct{ u, v int32 }
	var edges []edge
	for u := 0; u < n; u++ {
		for d := 1; d <= 4; d++ {
			if v := u + d*7; v < n && rng.Intn(2) == 0 {
				edges = append(edges, edge{int32(u), int32(v)})
			}
		}
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.Add(int(e.u), int(e.v))
	}
	want := b.Build().Freeze()

	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	cb := NewCSRBuilder(deg)
	// Reversed emit order: SortLists must still land on canonical ascending.
	for i := len(edges) - 1; i >= 0; i-- {
		cb.Arc(edges[i].u, edges[i].v)
		cb.Arc(edges[i].v, edges[i].u)
	}
	cb.SortLists()
	got := cb.Finish()
	if !got.Equal(want) {
		t.Fatalf("CSRBuilder snapshot differs from Builder snapshot")
	}
}

// FuzzPackRoundTrip fuzzes the compact-adjacency satellite claim: for any
// graph (built from a random byte-stream of edges, same decoding as
// FuzzBuilderVsAddEdge), pack → unpack reproduces the flat snapshot exactly,
// and the packed form answers Neighbors/Cursor identically to flat. The
// varint blocks must round-trip arbitrary list order, so the stream replays
// through AddEdge (insertion order, deltas of both signs).
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 0, 4, 3, 2})
	f.Add([]byte{32, 31, 0, 0, 31, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 48
		g := New(n)
		stream := data[1:]
		span := n + 1
		if span < 1 {
			span = 1
		}
		for i := 0; i+1 < len(stream); i += 2 {
			g.AddEdge(int(stream[i])%span, int(stream[i+1])%span)
		}
		flat := g.Freeze()
		packed := flat.Pack()
		if !flat.Equal(packed) {
			t.Fatalf("packed not Equal to flat")
		}
		back := packed.Unpack()
		if back.N() != flat.N() {
			t.Fatalf("N changed: %d vs %d", back.N(), flat.N())
		}
		cur := packed.Cursor()
		for v := 0; v < n; v++ {
			want := flat.Neighbors(v)
			for pass, got := range [][]int32{packed.Neighbors(v), cur.List(v), back.Neighbors(v)} {
				if len(got) != len(want) {
					t.Fatalf("vertex %d pass %d: len %d vs %d", v, pass, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("vertex %d pass %d pos %d: %d vs %d", v, pass, i, got[i], want[i])
					}
				}
			}
		}
	})
}
