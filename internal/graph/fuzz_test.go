package graph

import (
	"testing"
)

// FuzzBuilderVsAddEdge fuzzes the DESIGN.md §3 equivalence claim: a
// Builder-built graph is list-for-list identical to replaying the same
// edge stream through AddEdge. The input encodes an instance as bytes:
// data[0] picks the vertex count, the remaining bytes decode pairwise into
// endpoints over a window [-1, n+1] — one below and one above the valid
// range — so duplicate edges, self-loops, and out-of-range endpoints (all
// of which both paths must ignore identically) occur constantly in random
// streams. The seed corpus under testdata/fuzz/FuzzBuilderVsAddEdge runs
// as ordinary test cases in `go test`; CI additionally runs a short
// `-fuzz` smoke.
func FuzzBuilderVsAddEdge(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 33 // keep instances small; 0 is a valid (empty) graph
		stream := data[1:]
		span := n + 3
		b := NewBuilder(n)
		replay := New(n)
		for i := 0; i+1 < len(stream); i += 2 {
			u := int(stream[i])%span - 1
			v := int(stream[i+1])%span - 1
			b.Add(u, v)
			replay.AddEdge(u, v)
		}
		built := b.Build()
		if built.N() != replay.N() {
			t.Fatalf("N: built %d, replay %d", built.N(), replay.N())
		}
		if built.M() != replay.M() {
			t.Fatalf("M: built %d, replay %d", built.M(), replay.M())
		}
		for v := 0; v < n; v++ {
			bn, rn := built.Neighbors(v), replay.Neighbors(v)
			if len(bn) != len(rn) {
				t.Fatalf("vertex %d: built degree %d, replay degree %d", v, len(bn), len(rn))
			}
			for i := range bn {
				if bn[i] != rn[i] {
					t.Fatalf("vertex %d neighbor %d: built %d, replay %d (insertion order not preserved)",
						v, i, bn[i], rn[i])
				}
			}
		}
	})
}
