package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randomEdgeStream draws a stream of (u,v) pairs including self-loops,
// duplicates (in both orientations), and out-of-range endpoints, so Builder
// and AddEdge are exercised on exactly the inputs they promise to clean up.
func randomEdgeStream(rng *xrand.RNG, n, m int) (us, vs []int) {
	for i := 0; i < m; i++ {
		u := rng.Intn(n+2) - 1 // -1 .. n, out of range on both sides
		v := rng.Intn(n+2) - 1
		if rng.Bernoulli(0.3) && len(us) > 0 {
			j := rng.Intn(len(us)) // replay an earlier pair, maybe reversed
			u, v = us[j], vs[j]
			if rng.Bernoulli(0.5) {
				u, v = v, u
			}
		}
		us = append(us, u)
		vs = append(vs, v)
	}
	return us, vs
}

// TestBuilderMatchesAddEdge checks that Build produces adjacency lists
// identical — including neighbor order — to replaying the same stream
// through AddEdge, for streams full of duplicates and junk.
func TestBuilderMatchesAddEdge(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw%40) + 1
		m := int(mRaw)
		us, vs := randomEdgeStream(rng, n, m)

		ref := New(n)
		b := NewBuilder(n)
		for i := range us {
			ref.AddEdge(us[i], vs[i])
			b.Add(us[i], vs[i])
		}
		got := b.Build()

		if got.N() != ref.N() || got.M() != ref.M() {
			return false
		}
		for v := 0; v < n; v++ {
			rn, gn := ref.Neighbors(v), got.Neighbors(v)
			if len(rn) != len(gn) {
				return false
			}
			for i := range rn {
				if rn[i] != gn[i] {
					return false
				}
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeMatchesAdjacency checks the CSR view against the adjacency
// lists on random graphs.
func TestFreezeMatchesAdjacency(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(50) + 1
		g := New(n)
		for e := 0; e < 3*n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		c := g.Freeze()
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("trial %d: CSR n=%d m=%d vs graph n=%d m=%d", trial, c.N(), c.M(), g.N(), g.M())
		}
		for v := 0; v < n; v++ {
			if c.Degree(v) != g.Degree(v) {
				t.Fatalf("trial %d: degree mismatch at %d", trial, v)
			}
			cn, gn := c.Neighbors(v), g.Neighbors(v)
			for i := range gn {
				if cn[i] != gn[i] {
					t.Fatalf("trial %d: neighbor list mismatch at %d", trial, v)
				}
			}
		}
		if g.Freeze() != c {
			t.Fatal("Freeze on a quiescent graph must return the cached view")
		}
	}
}

// TestFreezeInvalidation checks that mutation drops the cached snapshot.
func TestFreezeInvalidation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	c1 := g.Freeze()
	if c1.M() != 1 {
		t.Fatalf("m=%d", c1.M())
	}
	g.AddEdge(2, 3)
	c2 := g.Freeze()
	if c2 == c1 {
		t.Fatal("AddEdge must invalidate the cached CSR")
	}
	if c2.M() != 2 || c2.Degree(2) != 1 {
		t.Fatalf("stale CSR after mutation: m=%d", c2.M())
	}
	g.SortAdjacency()
	if g.Freeze() == c2 {
		t.Fatal("SortAdjacency must invalidate the cached CSR")
	}
}

// TestBuilderGraphMutable checks that a Builder-built graph (whose lists are
// carved from the shared flat array) still supports AddEdge without
// corrupting sibling lists.
func TestBuilderGraphMutable(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 1)
	b.Add(1, 2)
	b.Add(2, 3)
	g := b.Build()
	g.AddEdge(0, 2) // appends into the carved list for 0 and 2
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 2) || g.M() != 4 {
		t.Fatalf("unexpected graph after post-Build AddEdge: m=%d", g.M())
	}
	// Sibling lists must be untouched.
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("neighbor list of 1 corrupted: %v", got)
	}
}

// bfsAdjacency is an independent reference BFS over the raw adjacency
// lists, used to cross-check the CSR-backed MultiBFS.
func bfsAdjacency(g *Graph, sources []int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	var queue []int
	for _, s := range sources {
		if s < 0 || s >= g.N() || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range g.Neighbors(u) {
			if dist[w] == Unreachable {
				dist[w] = dist[u] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return dist
}

// TestMultiBFSMatchesAdjacencyBFS cross-checks the CSR BFS against the
// reference, including after mutations that invalidate the cache.
func TestMultiBFSMatchesAdjacencyBFS(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(60) + 2
		g := New(n)
		for e := 0; e < 2*n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		srcs := []int{rng.Intn(n), rng.Intn(n)}
		got := g.MultiBFS(srcs)
		want := bfsAdjacency(g, srcs)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: dist[%d]=%d want %d", trial, v, got[v], want[v])
			}
		}
		// Mutate (cache now stale) and re-check.
		g.AddEdge(rng.Intn(n), rng.Intn(n))
		got = g.BFS(srcs[0])
		want = bfsAdjacency(g, srcs[:1])
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d after mutation: dist[%d]=%d want %d", trial, v, got[v], want[v])
			}
		}
	}
}

// TestInducedSubgraphOnFrozen checks InducedSubgraph agrees whether or not
// the parent graph has a frozen view, and that the result validates.
func TestInducedSubgraphOnFrozen(t *testing.T) {
	rng := xrand.New(31)
	n := 30
	g := New(n)
	for e := 0; e < 90; e++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	var keep []int
	for v := 0; v < n; v += 2 {
		keep = append(keep, v)
	}
	subCold, remapCold := g.Clone().InducedSubgraph(keep)
	g.Freeze()
	subWarm, remapWarm := g.InducedSubgraph(keep)
	if err := subWarm.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := range remapCold {
		if remapCold[v] != remapWarm[v] {
			t.Fatalf("remap differs at %d", v)
		}
	}
	if subCold.M() != subWarm.M() || subCold.N() != subWarm.N() {
		t.Fatalf("induced subgraph differs: (%d,%d) vs (%d,%d)",
			subCold.N(), subCold.M(), subWarm.N(), subWarm.M())
	}
	for v := 0; v < subCold.N(); v++ {
		a, b := subCold.Neighbors(v), subWarm.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree differs at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbor order differs at %d", v)
			}
		}
	}
}
