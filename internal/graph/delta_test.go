package graph

import (
	"testing"

	"repro/internal/xrand"
)

func TestApplyDeltaBasic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	orig := g.Freeze()

	u := g.ApplyDelta(
		[]Edge{{1, 2}},         // drop the middle edge
		[]Edge{{0, 3}, {0, 2}}, // close a cycle plus a chord
	)
	if g.HasEdge(1, 2) {
		t.Fatal("removed edge still present")
	}
	for _, e := range [][2]int{{0, 3}, {0, 2}, {0, 1}, {2, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v missing after delta", e)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("post-delta graph invalid: %v", err)
	}
	g.Revert(u)
	if !g.Freeze().Equal(orig) {
		t.Fatal("Revert did not restore the original CSR")
	}
}

func TestApplyDeltaIgnoresInvalidAndNoop(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	orig := g.Freeze()
	u := g.ApplyDelta(
		[]Edge{{0, 2}, {1, 1}, {-1, 0}, {0, 5}}, // absent, loop, out of range
		[]Edge{{0, 1}, {2, 2}, {4, 1}},          // present, loop, out of range
	)
	if !g.Freeze().Equal(orig) {
		t.Fatal("no-op delta changed the graph")
	}
	g.Revert(u)
	if !g.Freeze().Equal(orig) {
		t.Fatal("reverting a no-op delta changed the graph")
	}
}

// TestApplyDeltaStackedRandom stacks random deltas on a random base graph and
// reverts them in reverse order, checking the CSR round-trips exactly at
// every level — the property the dyn schedule machinery is built on.
func TestApplyDeltaStackedRandom(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(24)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		var snaps []*CSR
		var undos []*Undo
		snaps = append(snaps, g.Freeze())
		for d := 0; d < 5; d++ {
			var rem, add []Edge
			for i := 0; i < n/2+1; i++ {
				rem = append(rem, Edge{int32(rng.Intn(n)), int32(rng.Intn(n))})
				add = append(add, Edge{int32(rng.Intn(n)), int32(rng.Intn(n))})
			}
			undos = append(undos, g.ApplyDelta(rem, add))
			if err := g.Validate(); err != nil {
				t.Fatalf("trial %d delta %d: invalid graph: %v", trial, d, err)
			}
			snaps = append(snaps, g.Freeze())
		}
		for d := len(undos) - 1; d >= 0; d-- {
			g.Revert(undos[d])
			if !g.Freeze().Equal(snaps[d]) {
				t.Fatalf("trial %d: revert to level %d did not round-trip", trial, d)
			}
		}
	}
}

func TestCSRGraphRoundTrip(t *testing.T) {
	rng := xrand.New(7)
	g := New(12)
	for i := 0; i < 30; i++ {
		g.AddEdge(rng.Intn(12), rng.Intn(12))
	}
	c := g.Freeze()
	back := c.Graph()
	if !back.Freeze().Equal(c) {
		t.Fatal("CSR.Graph().Freeze() differs from the source CSR")
	}
	// The materialized graph is independently mutable.
	back.AddEdge(0, 11)
	if g.HasEdge(0, 11) && !c.Graph().HasEdge(0, 11) {
		t.Fatal("materialized graph shares storage with the source")
	}
}

func TestCSREqual(t *testing.T) {
	a := New(3)
	a.AddEdge(0, 1)
	b := New(3)
	b.AddEdge(0, 1)
	if !a.Freeze().Equal(b.Freeze()) {
		t.Fatal("identical graphs compare unequal")
	}
	b.AddEdge(1, 2)
	if a.Freeze().Equal(b.Freeze()) {
		t.Fatal("different graphs compare equal")
	}
	// Same edge set inserted in a different order → different list order.
	c := New(3)
	c.AddEdge(1, 2)
	c.AddEdge(0, 1)
	if b.Freeze().Equal(c.Freeze()) {
		t.Fatal("Equal must be order-sensitive")
	}
}
