package graph

// This file provides the frozen compressed-sparse-row (CSR) view of a Graph
// and the edge-list Builder used by generators.
//
// CSR packs every adjacency list into one flat []int32 edge array plus an
// offsets array, so the simulation engines and BFS walk neighbor lists with
// perfect cache locality instead of chasing per-vertex slice headers. A
// Graph lazily caches its CSR view (Freeze); any mutation invalidates the
// cache. Builder constructs a graph in O(n + m) total — duplicate edges and
// self-loops are dropped in a single linear dedup pass — instead of the
// O(Σ deg²) cost of repeated AddEdge duplicate scans.

// CSR is an immutable compressed-sparse-row snapshot of a graph: the
// neighbor lists of vertices 0..n-1 concatenated in vertex order inside one
// flat edge array. It is safe for concurrent readers. A CSR obtained from
// Graph.Freeze is valid until the graph is next mutated; mutating the graph
// and continuing to use an old CSR snapshot is a caller bug.
//
// A snapshot stores its adjacency in one of two forms: the flat edge array
// (every CSR the Builder or Freeze produces) or the delta-varint packed
// blob (Pack, compact.go) behind the same accessor contract. Degree and the
// offsets table are identical in both; only how a neighbor list is fetched
// differs, and zero-alloc consumers go through NeighborCursor so the form
// never leaks into the step loop.
type CSR struct {
	offsets []int32 // len n+1; neighbor list of v is edges[offsets[v]:offsets[v+1]]
	edges   []int32 // len 2m; nil when packed

	// Packed form (compact.go): blob holds per-vertex delta-varint neighbor
	// blocks, starts their byte offsets (len n+1). Both nil when flat.
	blob   []byte
	starts []uint32
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// M returns the number of edges.
func (c *CSR) M() int { return int(c.offsets[len(c.offsets)-1]) / 2 }

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int { return int(c.offsets[v+1] - c.offsets[v]) }

// Neighbors returns v's neighbor list. For flat snapshots it is a subslice
// of the shared edge array and must not be modified; packed snapshots
// decode into a fresh slice per call, so hot paths iterate through a reused
// NeighborCursor instead.
func (c *CSR) Neighbors(v int) []int32 {
	if c.blob == nil {
		return c.edges[c.offsets[v]:c.offsets[v+1]]
	}
	out := make([]int32, c.offsets[v+1]-c.offsets[v])
	decodeBlock(c.blob[c.starts[v]:c.starts[v+1]], out)
	return out
}

// Freeze returns the CSR view of g, building and caching it on first use.
// The cache is invalidated by any mutation (AddEdge, SortAdjacency), so
// repeated Freeze calls on a quiescent graph are free. Freeze is safe for
// concurrent callers as long as no goroutine is mutating the graph, so the
// lazily-freezing read paths (BFS, the engines) stay concurrently callable
// like every other read.
func (g *Graph) Freeze() *CSR {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.csr != nil {
		return g.csr
	}
	offsets := make([]int32, g.n+1)
	total := int32(0)
	for v, nb := range g.adj {
		offsets[v] = total
		total += int32(len(nb))
	}
	offsets[g.n] = total
	edges := make([]int32, total)
	pos := 0
	for _, nb := range g.adj {
		pos += copy(edges[pos:], nb)
	}
	g.csr = &CSR{offsets: offsets, edges: edges}
	return g.csr
}

// invalidate drops the cached CSR snapshot after a mutation.
func (g *Graph) invalidate() {
	g.mu.Lock()
	g.csr = nil
	g.mu.Unlock()
}

// Builder accumulates undirected edges and assembles a Graph in one linear
// pass. Unlike repeated AddEdge calls — whose duplicate scan makes dense
// builds O(Σ deg²) — Build runs in O(n + m): edges land in a flat CSR array
// via counting sort, then a stamp-based pass drops duplicates while
// preserving first-insertion order, so the result is list-for-list identical
// to the same Add sequence replayed through AddEdge. Self-loops and
// out-of-range endpoints are ignored, exactly as AddEdge ignores them.
type Builder struct {
	n      int
	us, vs []int32
	deg    []int32 // degree counts including not-yet-deduped duplicates
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, deg: make([]int32, n)}
}

// Add records the undirected edge {u,v}. Self-loops, out-of-range endpoints,
// and (at Build time) duplicates are ignored.
func (b *Builder) Add(u, v int) {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.deg[u]++
	b.deg[v]++
}

// Build assembles the graph. The Builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	n := b.n
	offsets := make([]int32, n+1)
	total := int32(0)
	for v := 0; v < n; v++ {
		offsets[v] = total
		total += b.deg[v]
	}
	offsets[n] = total

	// Counting-sort fill in insertion order, reusing deg as the write cursor
	// so each list is populated in the order its edges were Added.
	cursor := b.deg
	copy(cursor, offsets[:n])
	edges := make([]int32, total)
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		edges[cursor[u]] = v
		cursor[u]++
		edges[cursor[v]] = u
		cursor[v]++
	}

	// Order-preserving dedup: mark[w] holds v+1 while scanning v's list.
	mark := make([]int32, n)
	w := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		offsets[v] = w
		for i := lo; i < hi; i++ {
			x := edges[i]
			if mark[x] == int32(v)+1 {
				continue
			}
			mark[x] = int32(v) + 1
			edges[w] = x
			w++
		}
	}
	offsets[n] = w
	edges = edges[:w]

	// Carve the adjacency lists out of the flat array with full slice
	// expressions so a later AddEdge append copies instead of clobbering the
	// next vertex's list, and pre-seed the CSR cache (the graph is born
	// frozen).
	g := &Graph{n: n, adj: make([][]int32, n)}
	for v := 0; v < n; v++ {
		g.adj[v] = edges[offsets[v]:offsets[v+1]:offsets[v+1]]
	}
	g.csr = &CSR{offsets: offsets, edges: edges}
	return g
}
