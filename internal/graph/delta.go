package graph

// This file supports dynamic topologies (internal/dyn): batched edge deltas
// applied to a live graph with an exact undo record. A topology epoch is one
// ApplyDelta call; the CSR view is re-frozen once per epoch by the caller
// (the dyn.Schedule constructor), never per simulation step, so the engines'
// zero-alloc step loop is untouched between epoch boundaries.

// Edge is an undirected edge {U, V} of a delta. Orientation is irrelevant;
// self-loops and out-of-range endpoints are ignored exactly as AddEdge
// ignores them.
type Edge struct {
	U, V int32
}

// Undo records the pre-delta adjacency lists of every vertex an ApplyDelta
// call touched, so Revert can restore the graph exactly — including
// neighbor-list order, which the frozen CSR (and therefore byte-level run
// reproducibility) depends on.
type Undo struct {
	verts []int32
	lists [][]int32
}

// ApplyDelta removes then adds the given undirected edges as one batch and
// returns an Undo that restores the prior graph exactly. Removing an absent
// edge and adding a present one are no-ops, as are self-loops and
// out-of-range endpoints. The cached CSR is invalidated once for the whole
// batch; cost is O(Σ degree of the touched vertices), independent of n.
func (g *Graph) ApplyDelta(remove, add []Edge) *Undo {
	g.invalidate()
	u := &Undo{}
	saved := make(map[int32]bool, 2*(len(remove)+len(add)))
	save := func(v int32) {
		if saved[v] {
			return
		}
		saved[v] = true
		u.verts = append(u.verts, v)
		u.lists = append(u.lists, append([]int32(nil), g.adj[v]...))
	}
	for _, e := range remove {
		if !g.edgeInRange(e) {
			continue
		}
		save(e.U)
		save(e.V)
		g.removeArc(e.U, e.V)
		g.removeArc(e.V, e.U)
	}
	for _, e := range add {
		if !g.edgeInRange(e) || g.HasEdge(int(e.U), int(e.V)) {
			continue
		}
		save(e.U)
		save(e.V)
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	return u
}

// Revert restores the adjacency lists saved by the matching ApplyDelta.
// Undos must be reverted in reverse application order when several deltas
// are stacked.
func (g *Graph) Revert(u *Undo) {
	g.invalidate()
	for i, v := range u.verts {
		g.adj[v] = u.lists[i]
	}
}

// edgeInRange reports whether e names a valid non-loop edge slot.
func (g *Graph) edgeInRange(e Edge) bool {
	return e.U != e.V && e.U >= 0 && e.V >= 0 && int(e.U) < g.n && int(e.V) < g.n
}

// removeArc deletes w from v's neighbor list, preserving the order of the
// remaining entries. The list is rebuilt into a fresh slice rather than
// filtered in place: Builder-built graphs carve their lists out of one
// shared flat array that a previously returned CSR may still reference.
func (g *Graph) removeArc(v, w int32) {
	old := g.adj[v]
	for i, x := range old {
		if x == w {
			nl := make([]int32, 0, len(old)-1)
			nl = append(nl, old[:i]...)
			nl = append(nl, old[i+1:]...)
			g.adj[v] = nl
			return
		}
	}
}

// Graph materializes the CSR snapshot back into a mutable Graph whose
// adjacency lists preserve the CSR's neighbor order. Dynamic-topology
// experiments use it to validate protocol output against the epoch in force
// when the run ended.
func (c *CSR) Graph() *Graph {
	n := c.N()
	g := New(n)
	cur := c.Cursor()
	for v := 0; v < n; v++ {
		g.adj[v] = append([]int32(nil), cur.List(v)...)
	}
	return g
}

// Equal reports whether two CSR snapshots are identical: same vertex count
// and the same neighbor lists in the same order. Storage form is not part
// of the identity — a packed snapshot equals its flat original.
func (c *CSR) Equal(o *CSR) bool {
	if c.N() != o.N() {
		return false
	}
	for i, off := range c.offsets {
		if off != o.offsets[i] {
			return false
		}
	}
	if !c.packed() && !o.packed() {
		for i, e := range c.edges {
			if e != o.edges[i] {
				return false
			}
		}
		return true
	}
	cc, oc := c.Cursor(), o.Cursor()
	for v := 0; v < c.N(); v++ {
		cl, ol := cc.List(v), oc.List(v)
		for i := range cl {
			if cl[i] != ol[i] {
				return false
			}
		}
	}
	return true
}
