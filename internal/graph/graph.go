// Package graph provides the undirected-graph substrate used by the radio
// network simulator: adjacency-list graphs, traversal, diameter computation,
// connectivity, and independence-number tooling (verification, greedy maximal
// independent sets, exact maximum independent sets for small instances, and
// growth-bound measurement).
//
// Radio networks in the paper are undirected graphs G = (V,E); nodes are
// indexed 0..n-1. The graph is visible only to the simulation engine and to
// analysis code — protocol code never sees it (ad-hoc model).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Graph is an undirected simple graph on vertices 0..n-1.
//
// Like the adjacency lists, the graph is safe for concurrent readers —
// including the methods that lazily build the cached CSR view (Freeze, BFS,
// Diameter, the engines) — but mutation (AddEdge, SortAdjacency) requires
// external synchronization against all other use.
type Graph struct {
	n   int
	adj [][]int32

	mu  sync.Mutex // guards csr; adjacency itself needs external sync
	csr *CSR       // cached frozen view (see Freeze); nil when stale
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicate edges
// are ignored (the model is a simple graph).
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	if g.HasEdge(u, v) {
		return
	}
	g.invalidate()
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if int(w) == b {
			return true
		}
	}
	return false
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ(G), 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, nb := range g.adj {
		if len(nb) > maxDeg {
			maxDeg = len(nb)
		}
	}
	return maxDeg
}

// Neighbors returns the adjacency list of v. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// NeighborsInt returns a fresh []int copy of v's adjacency list.
func (g *Graph) NeighborsInt(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, w := range g.adj[v] {
		out[i] = int(w)
	}
	return out
}

// SortAdjacency sorts every adjacency list ascending, giving the graph a
// canonical in-memory form (useful for deterministic iteration and tests).
func (g *Graph) SortAdjacency() {
	g.invalidate()
	for _, nb := range g.adj {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v, nb := range g.adj {
		c.adj[v] = append([]int32(nil), nb...)
	}
	return c
}

// Validate checks structural invariants: symmetry, no self-loops, no
// duplicates, indices in range.
func (g *Graph) Validate() error {
	for v, nb := range g.adj {
		seen := make(map[int32]bool, len(nb))
		for _, w := range nb {
			if int(w) == v {
				return fmt.Errorf("self-loop at %d", v)
			}
			if w < 0 || int(w) >= g.n {
				return fmt.Errorf("vertex %d has out-of-range neighbor %d", v, w)
			}
			if seen[w] {
				return fmt.Errorf("duplicate edge {%d,%d}", v, w)
			}
			seen[w] = true
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("asymmetric edge {%d,%d}", v, w)
			}
		}
	}
	return nil
}

// Unreachable is the distance reported for vertices not reachable from the
// BFS source(s).
const Unreachable = -1

// BFS returns the vector of hop distances from src; Unreachable for
// disconnected vertices.
func (g *Graph) BFS(src int) []int {
	return g.MultiBFS([]int{src})
}

// MultiBFS returns hop distances from the nearest of the given sources.
// It traverses the frozen CSR view (building it on first use) so the edge
// scan is one contiguous array walk.
func (g *Graph) MultiBFS(sources []int) []int {
	return g.Freeze().MultiBFS(sources)
}

// Eccentricity returns max distance from v to any reachable vertex, and
// whether all vertices were reachable.
func (g *Graph) Eccentricity(v int) (ecc int, connected bool) {
	dist := g.BFS(v)
	connected = true
	for _, d := range dist {
		if d == Unreachable {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected
}

// Connected reports whether the graph is connected (vacuously true for n<=1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	_, ok := g.Eccentricity(0)
	return ok
}

// Components returns a component id per vertex and the component count.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue := []int32{int32(v)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.adj[u] {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// ErrDisconnected is returned by Diameter on disconnected graphs.
var ErrDisconnected = errors.New("graph: disconnected")

// Diameter computes the exact diameter by running a BFS from every vertex.
// O(n·m); intended for the n ≤ ~10⁴ instances the experiments use.
func (g *Graph) Diameter() (int, error) {
	if g.n == 0 {
		return 0, nil
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		ecc, ok := g.Eccentricity(v)
		if !ok {
			return 0, ErrDisconnected
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// DiameterApprox returns a lower bound on the diameter within a factor 2,
// computed by a double BFS sweep. Returns ErrDisconnected when applicable.
func (g *Graph) DiameterApprox() (int, error) {
	if g.n == 0 {
		return 0, nil
	}
	dist := g.BFS(0)
	far, fd := 0, 0
	for v, d := range dist {
		if d == Unreachable {
			return 0, ErrDisconnected
		}
		if d > fd {
			far, fd = v, d
		}
	}
	ecc, ok := g.Eccentricity(far)
	if !ok {
		return 0, ErrDisconnected
	}
	return ecc, nil
}

// InducedSubgraph returns the subgraph induced on keep (a vertex set given
// as indices into g), along with the mapping old→new (-1 for dropped).
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	remap := make([]int, g.n)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range keep {
		remap[v] = i
	}
	sub := New(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			j := remap[w]
			if j > i { // add each edge once
				sub.adj[i] = append(sub.adj[i], int32(j))
				sub.adj[j] = append(sub.adj[j], int32(i))
			}
		}
	}
	return sub, remap
}

// BallVertices returns the vertices within hop distance d of v (inclusive).
func (g *Graph) BallVertices(v, d int) []int {
	dist := g.BFS(v)
	var out []int
	for u, du := range dist {
		if du != Unreachable && du <= d {
			out = append(out, u)
		}
	}
	return out
}

// DegreeHistogram returns counts indexed by degree.
func (g *Graph) DegreeHistogram() []int {
	hist := make([]int, g.MaxDegree()+1)
	for _, nb := range g.adj {
		hist[len(nb)]++
	}
	return hist
}
