package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestIsIndependentSet(t *testing.T) {
	g := path(5)
	if !g.IsIndependentSet([]int{0, 2, 4}) {
		t.Fatal("{0,2,4} should be independent on a path")
	}
	if g.IsIndependentSet([]int{0, 1}) {
		t.Fatal("{0,1} is an edge")
	}
	if g.IsIndependentSet([]int{0, 99}) {
		t.Fatal("out-of-range member should fail")
	}
	if !g.IsIndependentSet(nil) {
		t.Fatal("empty set is independent")
	}
}

func TestIsMaximalIndependentSet(t *testing.T) {
	g := path(5)
	if !g.IsMaximalIndependentSet([]int{0, 2, 4}) {
		t.Fatal("{0,2,4} is a maximal IS on P5")
	}
	if g.IsMaximalIndependentSet([]int{0, 4}) {
		t.Fatal("{0,4} leaves vertex 2 undominated")
	}
	if g.IsMaximalIndependentSet([]int{0, 1, 3}) {
		t.Fatal("{0,1,3} is not independent")
	}
}

func TestGreedyMISIsMaximal(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(40)
		g := randomConnected(n, rng)
		mis := g.GreedyMIS(nil)
		if !g.IsMaximalIndependentSet(mis) {
			t.Fatalf("greedy output not a maximal IS on trial %d", trial)
		}
		mis2 := g.GreedyMIS(rng.Perm(n))
		if !g.IsMaximalIndependentSet(mis2) {
			t.Fatalf("random-order greedy output not a maximal IS on trial %d", trial)
		}
	}
}

func TestGreedyMinDegreeMISIsMaximal(t *testing.T) {
	rng := xrand.New(6)
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(4+rng.Intn(30), rng)
		if !g.IsMaximalIndependentSet(g.GreedyMinDegreeMIS()) {
			t.Fatal("min-degree greedy not maximal")
		}
	}
}

func TestIndependenceNumberExactKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", path(5), 3},
		{"path6", path(6), 3},
		{"cycle5", cycle(5), 2},
		{"cycle6", cycle(6), 3},
		{"clique8", clique(8), 1},
		{"empty10", New(10), 10},
	}
	for _, tc := range cases {
		got, ok := tc.g.IndependenceNumberExact()
		if !ok {
			t.Fatalf("%s: exact refused", tc.name)
		}
		if got != tc.want {
			t.Errorf("%s: α = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestIndependenceNumberExactStar(t *testing.T) {
	// Star K_{1,9}: α = 9 (all leaves).
	g := New(10)
	for v := 1; v < 10; v++ {
		g.AddEdge(0, v)
	}
	got, ok := g.IndependenceNumberExact()
	if !ok || got != 9 {
		t.Fatalf("α(star) = %d ok=%v, want 9", got, ok)
	}
}

func TestIndependenceNumberExactRefusesLarge(t *testing.T) {
	if _, ok := New(maxExactIndependence + 1).IndependenceNumberExact(); ok {
		t.Fatal("should refuse graphs larger than the exact cap")
	}
}

func TestExactAtLeastGreedy(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw%20) + 3
		g := randomConnected(n, rng)
		exact, ok := g.IndependenceNumberExact()
		if !ok {
			return false
		}
		greedy := len(g.GreedyMinDegreeMIS())
		return exact >= greedy && greedy >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIndependenceLowerBound(t *testing.T) {
	rng := xrand.New(7)
	g := cycle(12) // α = 6
	lb := g.IndependenceLowerBound(8, rng)
	if lb < 4 || lb > 6 {
		t.Fatalf("lower bound %d outside [4,6]", lb)
	}
}

func TestGrowthProfilePath(t *testing.T) {
	g := path(30)
	rng := xrand.New(8)
	profile := g.GrowthProfile(4, 5, rng)
	// On a path, the d-ball has <= 2d+1 vertices, α(ball) <= d+1.
	for d := 0; d <= 4; d++ {
		if profile[d] > d+1 {
			t.Fatalf("profile[%d] = %d exceeds d+1", d, profile[d])
		}
		if profile[d] < 1 {
			t.Fatalf("profile[%d] = %d < 1", d, profile[d])
		}
	}
}

func TestGrowthExponentLinearProfile(t *testing.T) {
	// α(B_d) = d exactly → exponent 1.
	profile := []int{1, 1, 2, 3, 4, 5, 6, 7, 8}
	e := GrowthExponent(profile)
	if e < 0.8 || e > 1.2 {
		t.Fatalf("exponent %v, want ~1", e)
	}
	// α(B_d) = d² → exponent 2.
	quad := make([]int, 9)
	for d := range quad {
		quad[d] = d * d
	}
	quad[0] = 1
	e2 := GrowthExponent(quad)
	if e2 < 1.8 || e2 > 2.2 {
		t.Fatalf("exponent %v, want ~2", e2)
	}
}

func TestGrowthExponentDegenerate(t *testing.T) {
	if e := GrowthExponent([]int{1, 1}); e != 0 {
		t.Fatalf("degenerate profile exponent %v, want 0", e)
	}
}
