package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// floydWarshall computes all-pairs hop distances directly from the
// definition, as a reference for BFS.
func floydWarshall(g *Graph) [][]int {
	n := g.N()
	const inf = 1 << 29
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			d[v][int(w)] = 1
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= inf {
				d[i][j] = Unreachable
			}
		}
	}
	return d
}

func TestBFSMatchesFloydWarshall(t *testing.T) {
	f := func(seed uint64, nRaw, density uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw%18) + 2
		g := New(n)
		p := float64(density%80+10) / 200
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(p) {
					g.AddEdge(u, v)
				}
			}
		}
		ref := floydWarshall(g)
		for src := 0; src < n; src++ {
			dist := g.BFS(src)
			for v := 0; v < n; v++ {
				if dist[v] != ref[src][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterMatchesReference(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(16)
		g := randomConnected(n, rng)
		ref := floydWarshall(g)
		want := 0
		for i := range ref {
			for j := range ref[i] {
				if ref[i][j] > want {
					want = ref[i][j]
				}
			}
		}
		got, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: diameter %d, reference %d", trial, got, want)
		}
	}
}

func TestMultiBFSMatchesMinOverSources(t *testing.T) {
	rng := xrand.New(4)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(20)
		g := randomConnected(n, rng)
		k := 1 + rng.Intn(3)
		sources := rng.Perm(n)[:k]
		multi := g.MultiBFS(sources)
		for v := 0; v < n; v++ {
			best := Unreachable
			for _, s := range sources {
				d := g.BFS(s)[v]
				if d != Unreachable && (best == Unreachable || d < best) {
					best = d
				}
			}
			if multi[v] != best {
				t.Fatalf("trial %d node %d: multi %d vs min %d", trial, v, multi[v], best)
			}
		}
	}
}
