package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	if n > 2 {
		g.AddEdge(0, n-1)
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(-1, 3)
	g.AddEdge(3, 99)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edge present")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDegree(t *testing.T) {
	g := clique(5)
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestBFSPath(t *testing.T) {
	g := path(6)
	dist := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("expected unreachable, got %v", dist)
	}
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
}

func TestMultiBFS(t *testing.T) {
	g := path(10)
	dist := g.MultiBFS([]int{0, 9})
	want := []int{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path6", path(6), 5},
		{"clique7", clique(7), 1},
		{"cycle8", cycle(8), 4},
		{"single", New(1), 0},
	}
	for _, tc := range cases {
		got, err := tc.g.Diameter()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: diameter %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if _, err := g.Diameter(); err != ErrDisconnected {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	if _, err := g.DiameterApprox(); err != ErrDisconnected {
		t.Fatalf("approx: want ErrDisconnected, got %v", err)
	}
}

func TestDiameterApproxWithinFactor2(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(40)
		g := randomConnected(n, rng)
		exact, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		approx, err := g.DiameterApprox()
		if err != nil {
			t.Fatal(err)
		}
		if approx > exact || 2*approx < exact {
			t.Fatalf("approx %d not in [exact/2, exact] for exact %d", approx, exact)
		}
	}
}

// randomConnected returns a random tree plus a few extra random edges.
func randomConnected(n int, rng *xrand.RNG) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for k := 0; k < n/3; k++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Fatalf("bad components %v", comp)
	}
	if comp[0] == comp[2] || comp[5] == comp[0] || comp[5] == comp[2] {
		t.Fatalf("merged components %v", comp)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(6)
	sub, remap := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("N = %d", sub.N())
	}
	// edges kept: {0,1},{1,2}; {4} isolated within the kept set
	if sub.M() != 2 {
		t.Fatalf("M = %d, want 2", sub.M())
	}
	if !sub.HasEdge(remap[0], remap[1]) || !sub.HasEdge(remap[1], remap[2]) {
		t.Fatal("missing expected edges")
	}
	if sub.Degree(remap[4]) != 0 {
		t.Fatal("vertex 4 should be isolated in subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBallVertices(t *testing.T) {
	g := path(7)
	ball := g.BallVertices(3, 2)
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	if len(ball) != len(want) {
		t.Fatalf("ball %v", ball)
	}
	for _, v := range ball {
		if !want[v] {
			t.Fatalf("unexpected ball vertex %d", v)
		}
	}
}

func TestValidatePropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw%40) + 2
		g := randomConnected(n, rng)
		return g.Validate() == nil && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram %v", h)
	}
}

func TestSortAdjacency(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 4)
	g.AddEdge(0, 2)
	g.SortAdjacency()
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("adjacency not sorted: %v", nb)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsIntIsCopy(t *testing.T) {
	g := path(3)
	nb := g.NeighborsInt(1)
	nb[0] = 99
	if g.Neighbors(1)[0] == 99 {
		t.Fatal("NeighborsInt shares storage")
	}
}
