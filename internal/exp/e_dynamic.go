package exp

// E17–E20: the dynamic-topology suite (ISSUE 3). Every static experiment
// runs on a frozen graph; these four put the paper's protocol ingredients
// under the internal/dyn mutation schedules — churn, edge faults,
// partition/heal, and waypoint mobility — through the engines'
// Options.Topology hook. Each trial builds its schedule from the trial seed
// alone, so the suite keeps the byte-identical-output contract at any
// -parallel value.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// dynFloodNode is the shared dynamic-workload protocol: an informed node
// transmits its best rumor with Decay-style exponentially backed-off
// probability; a listener adopts the highest rank it hears. It never halts
// on its own (Done only via the engine-side stop flag or its budget), which
// is the right behavior when the topology under it keeps changing.
type dynFloodNode struct {
	levels int
	best   int64
	has    bool
	rng    *xrand.RNG
	stop   *bool
	step   int
	budget int
}

func (d *dynFloodNode) Act(step int) radio.Action {
	if d.has && d.rng.Bernoulli(math.Pow(2, -float64(step%d.levels+1))) {
		return radio.Transmit(d.best)
	}
	return radio.Listen()
}

func (d *dynFloodNode) Deliver(step int, msg radio.Message) {
	d.step = step + 1
	if msg == nil {
		return
	}
	if r, ok := msg.(int64); ok && (!d.has || r > d.best) {
		d.best = r
		d.has = true
	}
}

func (d *dynFloodNode) Done() bool { return *d.stop || d.step >= d.budget }

// dynFloodState is the wire size of a dynFloodNode snapshot: best (8) + has
// (1) + step (8) + rng state (8). levels, budget, and the stop flag are
// reconstructed by the factory and the FloodCheckpoint, not per node.
const dynFloodState = 25

// SnapshotState implements radio.Snapshotter, making flood runs resumable
// from engine checkpoints (DESIGN.md §8).
func (d *dynFloodNode) SnapshotState() []byte {
	buf := make([]byte, 0, dynFloodState)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.best))
	if d.has {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.step))
	buf = binary.LittleEndian.AppendUint64(buf, d.rng.State())
	return buf
}

// RestoreState implements radio.Snapshotter.
func (d *dynFloodNode) RestoreState(data []byte) error {
	if len(data) != dynFloodState {
		return fmt.Errorf("exp: flood node state is %d bytes, want %d", len(data), dynFloodState)
	}
	d.best = int64(binary.LittleEndian.Uint64(data[0:8]))
	d.has = data[8] == 1
	d.step = int(binary.LittleEndian.Uint64(data[9:17]))
	d.rng.SetState(binary.LittleEndian.Uint64(data[17:25]))
	return nil
}

// FloodOutcome summarizes one dynamic flood run.
type FloodOutcome struct {
	// Complete is the first step after which every node held the target
	// rank; -1 if the budget ran out first.
	Complete int `json:"complete"`
	// InformedEnd is the number of nodes holding the target when the run
	// ended.
	InformedEnd int `json:"informedEnd"`
	// InformedProbe is the number of nodes holding the target at the end
	// of step probeStep (0 when probeStep < 0).
	InformedProbe int `json:"informedProbe"`
}

// FloodCheckpoint is a resumable snapshot of an in-flight RunFlood: the
// engine-level checkpoint (protocol states, active list, counters) plus the
// harness-level partial outcome, which the engine cannot know about. Both
// halves are captured at the same epoch boundary, so Partial covers exactly
// the steps before Engine.Step. It is JSON-serializable for the serve
// journal (DESIGN.md §8).
type FloodCheckpoint struct {
	Engine  *radio.Checkpoint `json:"engine"`
	Partial FloodOutcome      `json:"partial"`
}

// FloodConfig parameterizes RunFlood.
type FloodConfig struct {
	// Budget bounds the run in steps.
	Budget int
	// ProbeStep, when ≥ 0, records coverage at the end of that step into
	// FloodOutcome.InformedProbe.
	ProbeStep int
	// Seed drives all run randomness.
	Seed uint64
	// PHY selects the reception model (nil = the graph collision default);
	// passed through to radio.Options.PHY.
	PHY phy.Model
	// OnStep, when non-nil, observes (step, nodes currently holding the
	// target) after each step — radionet-sim's flood mode uses it for
	// per-epoch progress.
	OnStep func(step, informed int)
	// OnCheckpoint, when non-nil, receives a resumable snapshot at every
	// topology epoch boundary (dynamic runs only — a static flood has no
	// boundaries and is simply re-run from scratch after a crash). A non-nil
	// error aborts the run with that error, mirroring the
	// radio.Options.Checkpoint contract.
	OnCheckpoint func(cp *FloodCheckpoint) error
	// OnSnapshot, when non-nil, observes the same epoch-boundary snapshots
	// advisorily: the hook cannot abort the run, mirroring the
	// radio.Options.Snapshot contract. The serve layer publishes these into
	// its prefix-snapshot cache (DESIGN.md §9). When both hooks are armed
	// they observe distinct FloodCheckpoint wrappers around the same engine
	// checkpoint; receivers must not mutate it.
	OnSnapshot func(cp *FloodCheckpoint)
	// Resume, when non-nil, continues the flood from the given snapshot
	// instead of step 0. The caller must supply the same graph, topology,
	// sources, and FloodConfig the snapshot was captured under; the outcome
	// is then byte-identical to the uninterrupted run's.
	Resume *FloodCheckpoint
	// Probe, when non-nil, receives advisory engine-load samples at epoch
	// boundaries and once at run end — passed through to
	// radio.Options.Probe, same contract (the sample is reused; copy out
	// what you keep). The serve layer feeds these into its /metrics engine
	// gauges (DESIGN.md §10).
	Probe func(s *radio.ProbeSample)
}

// RunFlood floods the sources' ranks over topo (nil = static g) for at most
// cfg.Budget steps and reports completion/coverage of the highest rank.
// E17, E19–E21 and the radionet-sim/serve flood paths are built on this
// runner, so the CLIs and the experiment suite cannot disagree about what a
// flood means — under any topology schedule or reception model.
func RunFlood(g *graph.Graph, topo radio.Topology, sources map[int]int64, cfg FloodConfig) (FloodOutcome, error) {
	return runFlood(g.N(), topo, sources, cfg, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
		return radio.Run(g, factory, opts)
	})
}

// RunFloodCSR is RunFlood on the graph-free streaming path: the frozen
// snapshot IS the run's (static) topology, installed through radio.RunCSR,
// so no graph.Graph intermediate ever exists — E24 floods 10⁵-node
// streaming-built CSRs through this entry. Dynamic schedules don't apply
// here; use RunFlood for those.
func RunFloodCSR(csr *graph.CSR, sources map[int]int64, cfg FloodConfig) (FloodOutcome, error) {
	return runFlood(csr.N(), nil, sources, cfg, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
		return radio.RunCSR(csr, factory, opts)
	})
}

// runFlood is the engine-parametric core shared by RunFlood and RunFloodCSR.
func runFlood(n int, topo radio.Topology, sources map[int]int64, cfg FloodConfig, engine func(radio.Factory, radio.Options) (radio.Result, error)) (FloodOutcome, error) {
	budget := cfg.Budget
	target := int64(math.MinInt64)
	for _, r := range sources {
		if r > target {
			target = r
		}
	}
	levels := int(math.Ceil(math.Log2(float64(n + 1))))
	nodes := make([]*dynFloodNode, n)
	stop := false
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &dynFloodNode{levels: levels, rng: info.RNG, stop: &stop, budget: budget}
		if r, ok := sources[info.Index]; ok {
			nd.best, nd.has = r, true
		}
		nodes[info.Index] = nd
		return nd
	}
	out := FloodOutcome{Complete: -1}
	countInformed := func() int {
		c := 0
		for _, nd := range nodes {
			if nd.has && nd.best == target {
				c++
			}
		}
		return c
	}
	opts := radio.Options{
		MaxSteps: budget,
		Seed:     cfg.Seed ^ 0xdf10a7,
		Topology: topo,
		PHY:      cfg.PHY,
		Probe:    cfg.Probe,
		OnStep: func(st radio.StepStats) {
			informed := countInformed()
			if st.Step == cfg.ProbeStep {
				out.InformedProbe = informed
			}
			if cfg.OnStep != nil {
				cfg.OnStep(st.Step, informed)
			}
			if out.Complete < 0 && informed == n {
				out.Complete = st.Step + 1
				stop = true
			}
		},
	}
	if cp := cfg.Resume; cp != nil {
		// The engine restores per-node state; the harness half of the
		// snapshot restores the outcome-so-far (a probe or completion step
		// before the checkpoint never re-fires in the resumed run).
		out = cp.Partial
		stop = out.Complete >= 0
		opts.Resume = cp.Engine
	}
	if cfg.OnCheckpoint != nil {
		opts.Checkpoint = func(ecp *radio.Checkpoint) error {
			// out is updated by OnStep after each step, so at a boundary it
			// covers exactly the steps before ecp.Step — the two snapshot
			// halves are consistent by construction.
			return cfg.OnCheckpoint(&FloodCheckpoint{Engine: ecp, Partial: out})
		}
	}
	if cfg.OnSnapshot != nil {
		opts.Snapshot = func(ecp *radio.Checkpoint) {
			cfg.OnSnapshot(&FloodCheckpoint{Engine: ecp, Partial: out})
		}
	}
	if _, err := engine(factory, opts); err != nil {
		return FloodOutcome{}, err
	}
	out.InformedEnd = countInformed()
	return out, nil
}

// RunE17 — broadcast under churn: the Decay-style flood on a grid whose
// nodes churn out (all incident edges lost) and back per epoch. At zero
// churn the flood completes well inside the budget; as the per-epoch down
// probability grows, completion degrades gracefully into partial coverage
// rather than collapsing, because re-flooding resumes whenever a node
// churns back in. One trial = one churn schedule + one flood run.
func RunE17(cfg Config) (*Report, error) {
	side := 10
	reps := 4
	if cfg.Scale == Full {
		side = 16
		reps = 10
	}
	g := gen.Grid(side, side)
	n := g.N()
	levels := int(math.Ceil(math.Log2(float64(n + 1))))
	budget := 6 * (2*side + 2) * levels
	epochLen := 4 * levels
	rates := []float64{0, 0.1, 0.2, 0.4}
	grid := NewGrid("E17")
	for _, rate := range rates {
		rate := rate
		grid.AddReps(fmt.Sprintf("rate=%g", rate), reps, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			var topo radio.Topology
			if rate > 0 {
				sched, err := dyn.Churn(g, budget/epochLen, epochLen, rate, trng)
				if err != nil {
					return Sample{}, err
				}
				topo = sched
			}
			out, err := RunFlood(g, topo, map[int]int64{0: 1}, FloodConfig{Budget: budget, ProbeStep: -1, Seed: trng.Uint64()})
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V(
				"done", out.Complete >= 0,
				"step", completedOr(out.Complete, budget),
				"frac", float64(out.InformedEnd)/float64(n),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E17 — Decay-style broadcast under per-epoch node churn (grid)",
		Header: []string{"churn rate", "trials", "completed", "mean steps", "mean informed frac"},
	}
	for _, rate := range rates {
		ss := groups[fmt.Sprintf("rate=%g", rate)]
		tb.AddRowf(rate, len(ss),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "done")), len(ss)),
			stats.Mean(Metric(ss, "step")), stats.Mean(Metric(ss, "frac")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE18 — Radio MIS stability under edge faults: ComputeMIS (Algorithm 7)
// runs while links fail and recover per epoch, and its output is judged
// against the topology in force when the run ended. Faults can make the
// result stale in both directions — two announced MIS nodes become adjacent
// when a failed edge heals, and a node whose dominator churned away is left
// uncovered. One trial = one fault schedule + one MIS run.
func RunE18(cfg Config) (*Report, error) {
	nodes := 72
	reps := 4
	if cfg.Scale == Full {
		nodes = 160
		reps = 10
	}
	rates := []float64{0, 0.1, 0.3}
	grid := NewGrid("E18")
	for _, rate := range rates {
		rate := rate
		grid.AddReps(fmt.Sprintf("rate=%g", rate), reps, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			base := gen.GNP(nodes, 6/float64(nodes), trng)
			roundLen, rounds := mis.EstimateLayout(nodes, mis.Params{})
			epochLen := 2 * roundLen
			epochs := (roundLen*rounds)/epochLen + 1
			sched, err := dyn.EdgeFaults(base, epochs, epochLen, rate, trng)
			if err != nil {
				return Sample{}, err
			}
			var lastStep int
			out, err := mis.RunOnEngine(base, mis.Params{}, trng.Uint64(), func(f radio.Factory, o radio.Options) (radio.Result, error) {
				o.Topology = sched
				res, err := radio.Run(base, f, o)
				lastStep = res.Steps
				return res, err
			})
			if err != nil {
				return Sample{}, err
			}
			csr, _ := sched.EpochAt(max(lastStep-1, 0))
			final := csr.Graph()
			adjPairs, uncovered := misStaleness(final, out.MIS)
			return Sample{Values: V(
				"completed", out.Completed,
				"valid", out.Completed && adjPairs == 0 && uncovered == 0,
				"adjPairs", adjPairs,
				"uncovered", uncovered,
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E18 — Radio MIS run under per-epoch edge faults, judged on the final topology",
		Header: []string{"fault rate", "trials", "completed", "valid on final", "mean adjacent MIS pairs", "mean uncovered"},
	}
	for _, rate := range rates {
		ss := groups[fmt.Sprintf("rate=%g", rate)]
		tb.AddRowf(rate, len(ss),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "completed")), len(ss)),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "valid")), len(ss)),
			stats.Mean(Metric(ss, "adjPairs")), stats.Mean(Metric(ss, "uncovered")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// misStaleness counts how a claimed MIS fails on g: adjacent in-MIS pairs
// (independence violations) and nodes with neither membership nor an in-MIS
// neighbor (coverage gaps).
func misStaleness(g *graph.Graph, misSet []int) (adjPairs, uncovered int) {
	in := make([]bool, g.N())
	for _, v := range misSet {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		covered := in[v]
		for _, w := range g.Neighbors(v) {
			if in[w] {
				covered = true
				if in[v] && int(w) > v {
					adjPairs++
				}
			}
		}
		if !covered {
			uncovered++
		}
	}
	return adjPairs, uncovered
}

// RunE19 — re-convergence after a partition heals: the grid is cut into two
// halves before the flood can cross, the source side saturates, and when
// the crossing edges return the flood must re-converge. The probe at the
// heal step checks containment (only the source side informed); the
// after-heal completion cost is compared with the uncut baseline. One trial
// = one flood run against a PartitionHeal schedule.
func RunE19(cfg Config) (*Report, error) {
	side := 10
	reps := 4
	if cfg.Scale == Full {
		side = 14
		reps = 10
	}
	g := gen.Grid(side, side)
	n := g.N()
	levels := int(math.Ceil(math.Log2(float64(n + 1))))
	static := 4 * (2*side + 2) * levels // generous static completion budget
	heals := []int{0, static / 2, static}
	budget := 3 * static
	mark := make([]bool, n)
	for v := range mark {
		mark[v] = v%side >= side/2 // right half of each row
	}
	grid := NewGrid("E19")
	for _, heal := range heals {
		heal := heal
		grid.AddReps(fmt.Sprintf("heal=%d", heal), reps, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			var topo radio.Topology
			if heal > 0 {
				sched, err := dyn.PartitionHeal(g, mark, 1, heal)
				if err != nil {
					return Sample{}, err
				}
				topo = sched
			}
			out, err := RunFlood(g, topo, map[int]int64{0: 1}, FloodConfig{Budget: budget, ProbeStep: heal - 1, Seed: trng.Uint64()})
			if err != nil {
				return Sample{}, err
			}
			afterHeal := -1
			if out.Complete >= 0 {
				afterHeal = max(out.Complete-heal, 0)
			}
			return Sample{Values: V(
				"done", out.Complete >= 0,
				"step", completedOr(out.Complete, budget),
				"afterHeal", completedOr(afterHeal, budget),
				"probeFrac", float64(out.InformedProbe)/float64(n),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E19 — flood containment under a partition and re-convergence after heal (grid, source in left half)",
		Header: []string{"heal step", "trials", "completed", "mean complete", "mean steps after heal", "informed frac at heal"},
	}
	for _, heal := range heals {
		ss := groups[fmt.Sprintf("heal=%d", heal)]
		tb.AddRowf(heal, len(ss),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "done")), len(ss)),
			stats.Mean(Metric(ss, "step")), stats.Mean(Metric(ss, "afterHeal")),
			stats.Mean(Metric(ss, "probeFrac")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE20 — leader agreement with mobile nodes: candidates self-nominate
// with probability Θ(log n / n) and flood their random IDs under
// random-waypoint mobility. Mobility cuts both ways — links break mid-run,
// but node motion also ferries the rumor across temporary partitions — so
// agreement is measured as the fraction of nodes holding the true maximum
// ID when the budget expires. One trial = one mobility trace + one
// candidate draw + one flood run.
func RunE20(cfg Config) (*Report, error) {
	nodes := 64
	reps := 4
	if cfg.Scale == Full {
		nodes = 140
		reps = 10
	}
	speeds := []float64{0, 0.5, 2.0}
	levels := int(math.Ceil(math.Log2(float64(nodes + 1))))
	epochLen := 2 * levels
	epochs := 10
	budget := epochs * epochLen
	grid := NewGrid("E20")
	for _, speed := range speeds {
		speed := speed
		grid.AddReps(fmt.Sprintf("speed=%g", speed), reps, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			sched, err := gen.MobileUDG(nodes, epochs, epochLen, speed, trng)
			if err != nil {
				return Sample{}, err
			}
			g := sched.CSR(0).Graph()
			p := 2 * math.Log(float64(nodes)+1) / float64(nodes)
			sources := map[int]int64{}
			for len(sources) == 0 {
				for v := 0; v < nodes; v++ {
					if trng.Bernoulli(p) {
						sources[v] = int64(trng.Uint64() >> 16)
					}
				}
			}
			out, err := RunFlood(g, sched, sources, FloodConfig{Budget: budget, ProbeStep: -1, Seed: trng.Uint64()})
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V(
				"unanimous", out.InformedEnd == nodes,
				"agreeFrac", float64(out.InformedEnd)/float64(nodes),
				"candidates", len(sources),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E20 — max-ID leader agreement under random-waypoint mobility (UDG)",
		Header: []string{"speed (ranges/epoch)", "trials", "unanimous", "mean agree frac", "mean candidates"},
	}
	for _, speed := range speeds {
		ss := groups[fmt.Sprintf("speed=%g", speed)]
		tb.AddRowf(speed, len(ss),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "unanimous")), len(ss)),
			stats.Mean(Metric(ss, "agreeFrac")), stats.Mean(Metric(ss, "candidates")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}
