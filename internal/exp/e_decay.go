package exp

import (
	"fmt"

	"repro/internal/decay"
	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/stats"
)

// RunE4 — Claim 10: O(log n) iterations of Decay performed by a sender set S
// inform every node with a neighbor in S whp. We sweep the sender-set size
// on a star (the center must hear) and the iteration count, measuring
// delivery frequency; one iteration already succeeds with Ω(1) probability
// and amplification drives failure to ~0. One trial = one amplified Decay
// block at one (|S|, iterations) cell.
func RunE4(cfg Config) (*Report, error) {
	trials := 40
	if cfg.Scale == Full {
		trials = 300
	}
	const leaves = 63
	senderCounts := []int{1, 4, 16, 63}
	iterations := []int{1, 2, 4, 8, 16}
	grid := NewGrid("E4")
	for _, k := range senderCounts {
		for _, iters := range iterations {
			grid.AddReps(fmt.Sprintf("%d/%d", k, iters), trials, func(seed uint64) (Sample, error) {
				heard, err := decayCenterHeard(leaves+1, k, iters, seed)
				if err != nil {
					return Sample{}, err
				}
				return Sample{Values: V("heard", heard)}, nil
			})
		}
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E4 — Decay delivery frequency at a star center (n=64)",
		Header: []string{"|S|", "iterations", "trials", "frac delivered"},
	}
	for _, k := range senderCounts {
		for _, iters := range iterations {
			ss := groups[fmt.Sprintf("%d/%d", k, iters)]
			tb.AddRowf(k, iters, len(ss), stats.Mean(Metric(ss, "heard")))
		}
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// decayCenterHeard runs one amplified Decay block on an n-node star with the
// first k leaves as senders and reports whether the center heard anything.
func decayCenterHeard(n, k, iterations int, seed uint64) (bool, error) {
	g := gen.Star(n)
	var center *decay.Node
	factory := func(info radio.NodeInfo) radio.Protocol {
		active := info.Index >= 1 && info.Index <= k
		nd := decay.NewNode(info, iterations, active, info.Index)
		if info.Index == 0 {
			center = nd
		}
		return nd
	}
	if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 1 << 20, Seed: seed}); err != nil {
		return false, err
	}
	_, heard := center.Heard()
	return heard, nil
}
