package exp

import (
	"repro/internal/decay"
	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/stats"
)

// RunE4 — Claim 10: O(log n) iterations of Decay performed by a sender set S
// inform every node with a neighbor in S whp. We sweep the sender-set size
// on a star (the center must hear) and the iteration count, measuring
// delivery frequency; one iteration already succeeds with Ω(1) probability
// and amplification drives failure to ~0.
func RunE4(cfg Config) error {
	trials := 40
	if cfg.Scale == Full {
		trials = 300
	}
	const leaves = 63
	senderCounts := []int{1, 4, 16, 63}
	iterations := []int{1, 2, 4, 8, 16}
	tb := &stats.Table{
		Title:  "E4 — Decay delivery frequency at a star center (n=64)",
		Header: []string{"|S|", "iterations", "trials", "frac delivered"},
	}
	g := gen.Star(leaves + 1)
	for _, k := range senderCounts {
		for _, iters := range iterations {
			hits := 0
			for trial := 0; trial < trials; trial++ {
				heard, err := decayCenterHeard(g.N(), k, iters, cfg.Seed+uint64(trial*7919+k*131+iters))
				if err != nil {
					return err
				}
				if heard {
					hits++
				}
			}
			tb.AddRowf(k, iters, trials, float64(hits)/float64(trials))
		}
	}
	emit(cfg, tb)
	return nil
}

// decayCenterHeard runs one amplified Decay block on an n-node star with the
// first k leaves as senders and reports whether the center heard anything.
func decayCenterHeard(n, k, iterations int, seed uint64) (bool, error) {
	g := gen.Star(n)
	var center *decay.Node
	factory := func(info radio.NodeInfo) radio.Protocol {
		active := info.Index >= 1 && info.Index <= k
		nd := decay.NewNode(info, iterations, active, info.Index)
		if info.Index == 0 {
			center = nd
		}
		return nd
	}
	if _, err := radio.Run(g, factory, radio.Options{MaxSteps: 1 << 20, Seed: seed}); err != nil {
		return false, err
	}
	_, heard := center.Heard()
	return heard, nil
}
