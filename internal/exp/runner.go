package exp

// This file is the trial-runner subsystem (DESIGN.md §4): experiments
// declare a grid of independent trials — one per (scenario, seed replica) —
// as closures returning typed Sample records, and the runner fans the grid
// out over a small worker pool. Determinism under parallelism is the load-
// bearing property: every trial's randomness comes exclusively from a seed
// derived from (Config.Seed, grid ID, trial index), results land in a slice
// indexed by trial position, and aggregation walks that slice in declaration
// order — so the rendered tables (and the JSON mirror) are byte-identical
// for any Config.Parallel, any GOMAXPROCS, and any completion order.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// ErrCancelled is returned by Grid.Run when Config.Cancelled interrupted the
// grid before every trial ran. The samples gathered up to that point have
// been reported through Config.OnTrialSample but the partial slice is not
// returned: a cancelled run has no deterministic aggregate.
var ErrCancelled = errors.New("exp: run cancelled")

// Sample is the typed record one trial produces. Values holds named scalar
// measurements; booleans are encoded as 0/1 so every metric aggregates
// through the same stats helpers.
type Sample struct {
	// Group is the scenario key the trial was declared under (set by the
	// runner from the Grid declaration; trials need not fill it).
	Group string `json:"group"`
	// Values maps metric name → measurement.
	Values map[string]float64 `json:"values"`
}

// V is a convenience constructor for a Sample's Values map.
func V(pairs ...any) map[string]float64 {
	if len(pairs)%2 != 0 {
		panic("exp: V needs name/value pairs")
	}
	m := make(map[string]float64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("exp: V name %v is not a string", pairs[i]))
		}
		switch x := pairs[i+1].(type) {
		case float64:
			m[name] = x
		case int:
			m[name] = float64(x)
		case int64:
			m[name] = float64(x)
		case bool:
			if x {
				m[name] = 1
			} else {
				m[name] = 0
			}
		default:
			panic(fmt.Sprintf("exp: V value %v has unsupported type %T", x, x))
		}
	}
	return m
}

// TrialFunc is one independent unit of work. All randomness must derive
// from seed (and captured immutable data); the closure must not touch
// shared mutable state, because trials run concurrently.
type TrialFunc func(seed uint64) (Sample, error)

type trialDecl struct {
	group string
	fn    TrialFunc
}

// Grid is an ordered collection of independent trials. Declaration order is
// the aggregation order regardless of execution interleaving.
type Grid struct {
	id     string
	trials []trialDecl
}

// NewGrid returns an empty grid. id salts the per-trial seeds so distinct
// grids (experiments) never share randomness even at equal trial indices.
func NewGrid(id string) *Grid { return &Grid{id: id} }

// Add declares one trial under the given scenario group.
func (g *Grid) Add(group string, fn TrialFunc) {
	g.trials = append(g.trials, trialDecl{group: group, fn: fn})
}

// AddReps declares reps seed-replica trials of the same scenario; each
// replica still receives its own derived seed.
func (g *Grid) AddReps(group string, reps int, fn TrialFunc) {
	for r := 0; r < reps; r++ {
		g.Add(group, fn)
	}
}

// Len returns the number of declared trials.
func (g *Grid) Len() int { return len(g.trials) }

// TrialSeed derives the seed for trial index i of grid id from the base
// experiment seed: the id is FNV-1a-hashed into the base and the trial
// index selects a SplitMix64 stream, so seeds are stable functions of
// (base, id, i) alone.
func TrialSeed(base uint64, id string, i int) uint64 {
	return xrand.New(base ^ trace.FNV1a([]byte(id))).Split(uint64(i)).Uint64()
}

// Run executes the grid on cfg.Parallel workers (GOMAXPROCS when zero) and
// returns one Sample per trial in declaration order. The first error in
// declaration order is returned, wrapped with its trial's identity; after
// any failure, unclaimed trials are cancelled rather than run to
// completion. The reported error is still deterministic across worker
// counts: indices are claimed in increasing order, so the first failing
// trial is always claimed (and its error recorded) before cancellation can
// skip anything declared ahead of it.
func (g *Grid) Run(cfg Config) ([]Sample, error) {
	n := len(g.trials)
	if n == 0 {
		return nil, nil
	}
	workers := cfg.parallel()
	if workers > n {
		workers = n
	}
	out := make([]Sample, n)
	errs := make([]error, n)
	var next, completed atomic.Int64
	var failed, cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if cfg.Cancelled != nil && cfg.Cancelled() {
					cancelled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t := g.trials[i]
				if s, ok := cfg.Prefilled[i]; ok {
					// Recovered from a journal: install without re-running.
					s.Group = t.group
					out[i] = s
					if cfg.OnTrialDone != nil {
						cfg.OnTrialDone(int(completed.Add(1)), n)
					}
					continue
				}
				s, err := t.fn(TrialSeed(cfg.Seed, g.id, i))
				s.Group = t.group
				out[i], errs[i] = s, err
				if err != nil {
					failed.Store(true)
				} else if cfg.OnTrialSample != nil {
					cfg.OnTrialSample(i, s)
				}
				if cfg.OnTrialDone != nil {
					cfg.OnTrialDone(int(completed.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s trial %d (%s): %w", g.id, i, g.trials[i].group, err)
		}
	}
	if cancelled.Load() {
		return nil, ErrCancelled
	}
	return out, nil
}

// parallel resolves the worker count.
func (c Config) parallel() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ByGroup splits samples by scenario group, preserving declaration order
// within each group. Callers iterate their own declared scenario
// structures for row ordering, so no group-order slice is returned.
func ByGroup(samples []Sample) map[string][]Sample {
	groups := make(map[string][]Sample)
	for _, s := range samples {
		groups[s.Group] = append(groups[s.Group], s)
	}
	return groups
}

// Metric extracts the named value from each sample, in order.
func Metric(samples []Sample, name string) []float64 {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Values[name]
	}
	return xs
}

// MetricWhere extracts the named value from the samples where the `flag`
// metric is non-zero (e.g. steps of completed runs only).
func MetricWhere(samples []Sample, name, flag string) []float64 {
	var xs []float64
	for _, s := range samples {
		if s.Values[flag] != 0 {
			xs = append(xs, s.Values[name])
		}
	}
	return xs
}

// ci95String renders a Summary's confidence interval for a table cell.
func ci95String(s stats.Summary) string {
	return fmt.Sprintf("[%.4g, %.4g]", s.CI95Lo, s.CI95Hi)
}

// SumMetric totals the named value (counts: booleans encode as 0/1).
func SumMetric(samples []Sample, name string) float64 {
	var t float64
	for _, s := range samples {
		t += s.Values[name]
	}
	return t
}
