package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGridOrderAndSeeds: results come back in declaration order with seeds
// that depend only on (base seed, grid id, trial index), for any worker
// count.
func TestGridOrderAndSeeds(t *testing.T) {
	const n = 37
	runAt := func(parallel int) []Sample {
		g := NewGrid("unit")
		for i := 0; i < n; i++ {
			g.Add(fmt.Sprintf("g%d", i%3), func(seed uint64) (Sample, error) {
				return Sample{Values: V("seed", float64(seed), "idx", i)}, nil
			})
		}
		out, err := g.Run(Config{Seed: 7, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := runAt(1)
	for _, p := range []int{2, 4, 8, 16} {
		got := runAt(p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel=%d results differ from sequential", p)
		}
	}
	for i, s := range want {
		if s.Group != fmt.Sprintf("g%d", i%3) {
			t.Fatalf("trial %d group %q", i, s.Group)
		}
		if s.Values["idx"] != float64(i) {
			t.Fatalf("trial %d executed as %v: declaration order lost", i, s.Values["idx"])
		}
		if s.Values["seed"] != float64(TrialSeed(7, "unit", i)) {
			t.Fatalf("trial %d got wrong seed", i)
		}
	}
}

func TestTrialSeedProperties(t *testing.T) {
	if TrialSeed(1, "E1", 0) == TrialSeed(1, "E2", 0) {
		t.Fatal("different grid IDs share a seed")
	}
	if TrialSeed(1, "E1", 0) == TrialSeed(1, "E1", 1) {
		t.Fatal("different trial indices share a seed")
	}
	if TrialSeed(1, "E1", 3) != TrialSeed(1, "E1", 3) {
		t.Fatal("TrialSeed is not a pure function")
	}
	if TrialSeed(1, "E1", 0) == TrialSeed(2, "E1", 0) {
		t.Fatal("base seed is ignored")
	}
}

// TestGridErrorIsFirstByDeclaration: with many failing trials racing, the
// reported error is deterministically the first failing trial in
// declaration order.
func TestGridErrorIsFirstByDeclaration(t *testing.T) {
	g := NewGrid("errs")
	for i := 0; i < 20; i++ {
		g.Add("x", func(seed uint64) (Sample, error) {
			if i >= 5 {
				return Sample{}, fmt.Errorf("boom %d", i)
			}
			return Sample{Values: V("ok", true)}, nil
		})
	}
	for _, p := range []int{1, 8} {
		_, err := g.Run(Config{Seed: 1, Parallel: p})
		if err == nil || err.Error() != "errs trial 5 (x): boom 5" {
			t.Fatalf("parallel=%d err = %v", p, err)
		}
	}
}

// TestGridActuallyParallel: with Parallel=4 the runner overlaps trials.
func TestGridActuallyParallel(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	running, peak := 0, 0
	barrier := make(chan struct{})
	g := NewGrid("par")
	for i := 0; i < workers; i++ {
		g.Add("x", func(seed uint64) (Sample, error) {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			if running == workers {
				close(barrier) // all workers in flight at once
			}
			mu.Unlock()
			<-barrier
			mu.Lock()
			running--
			mu.Unlock()
			return Sample{Values: V("ok", true)}, nil
		})
	}
	if _, err := g.Run(Config{Seed: 1, Parallel: workers}); err != nil {
		t.Fatal(err)
	}
	if peak != workers {
		t.Fatalf("peak concurrency %d, want %d", peak, workers)
	}
}

func TestHelpers(t *testing.T) {
	samples := []Sample{
		{Group: "a", Values: V("x", 1, "flag", true)},
		{Group: "b", Values: V("x", 2, "flag", false)},
		{Group: "a", Values: V("x", 3, "flag", true)},
	}
	groups := ByGroup(samples)
	if len(groups["a"]) != 2 || len(groups["b"]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if got := Metric(samples, "x"); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Metric = %v", got)
	}
	if got := MetricWhere(samples, "x", "flag"); !reflect.DeepEqual(got, []float64{1, 3}) {
		t.Fatalf("MetricWhere = %v", got)
	}
	if got := SumMetric(samples, "x"); got != 6 {
		t.Fatalf("SumMetric = %v", got)
	}
	if v := V("a", 1, "b", 2.5, "c", true, "d", false, "e", int64(9)); v["a"] != 1 || v["b"] != 2.5 || v["c"] != 1 || v["d"] != 0 || v["e"] != 9 {
		t.Fatalf("V = %v", v)
	}
}

// TestGridPrefilledSkipsExecution: the journal-recovery path. Samples
// reported through OnTrialSample on one run, fed back as Prefilled on the
// next, reproduce the full aggregate byte-for-byte while executing (and
// re-reporting) only the missing trials.
func TestGridPrefilledSkipsExecution(t *testing.T) {
	const n = 12
	build := func(executed *atomic.Int64) *Grid {
		g := NewGrid("resume")
		for i := 0; i < n; i++ {
			g.Add(fmt.Sprintf("g%d", i%2), func(seed uint64) (Sample, error) {
				if executed != nil {
					executed.Add(1)
				}
				return Sample{Values: V("seed", float64(seed))}, nil
			})
		}
		return g
	}
	full, err := build(nil).Run(Config{Seed: 3, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	journal := map[int]Sample{}
	if _, err := build(nil).Run(Config{Seed: 3, Parallel: 4, OnTrialSample: func(i int, s Sample) {
		mu.Lock()
		journal[i] = s
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if len(journal) != n {
		t.Fatalf("journaled %d samples, want %d", len(journal), n)
	}
	// Simulate a crash that lost every third record.
	pre := map[int]Sample{}
	for i, s := range journal {
		if i%3 != 0 {
			pre[i] = s
		}
	}
	var executed atomic.Int64
	rereported := map[int]bool{}
	out, err := build(&executed).Run(Config{Seed: 3, Parallel: 4, Prefilled: pre, OnTrialSample: func(i int, s Sample) {
		mu.Lock()
		rereported[i] = true
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, full) {
		t.Fatal("recovered run diverged from the uninterrupted run")
	}
	if want := int64(n - len(pre)); executed.Load() != want {
		t.Fatalf("executed %d trials, want %d", executed.Load(), want)
	}
	for i := range pre {
		if rereported[i] {
			t.Fatalf("prefilled trial %d was re-reported", i)
		}
	}
}

// TestGridCancelled: a drain signal stops workers from claiming new trials
// and surfaces as ErrCancelled.
func TestGridCancelled(t *testing.T) {
	var ran, polls atomic.Int64
	g := NewGrid("cancel")
	for i := 0; i < 100; i++ {
		g.Add("x", func(seed uint64) (Sample, error) {
			ran.Add(1)
			return Sample{Values: V("ok", true)}, nil
		})
	}
	out, err := g.Run(Config{Seed: 1, Parallel: 2, Cancelled: func() bool {
		return polls.Add(1) > 6
	}})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if out != nil {
		t.Fatal("cancelled run returned a partial aggregate")
	}
	if ran.Load() >= 100 {
		t.Fatal("cancellation did not stop the grid")
	}
}

func TestEmptyGrid(t *testing.T) {
	out, err := NewGrid("empty").Run(Config{Seed: 1})
	if err != nil || out != nil {
		t.Fatalf("empty grid: %v %v", out, err)
	}
}
