package exp

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestGridOrderAndSeeds: results come back in declaration order with seeds
// that depend only on (base seed, grid id, trial index), for any worker
// count.
func TestGridOrderAndSeeds(t *testing.T) {
	const n = 37
	runAt := func(parallel int) []Sample {
		g := NewGrid("unit")
		for i := 0; i < n; i++ {
			g.Add(fmt.Sprintf("g%d", i%3), func(seed uint64) (Sample, error) {
				return Sample{Values: V("seed", float64(seed), "idx", i)}, nil
			})
		}
		out, err := g.Run(Config{Seed: 7, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := runAt(1)
	for _, p := range []int{2, 4, 8, 16} {
		got := runAt(p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel=%d results differ from sequential", p)
		}
	}
	for i, s := range want {
		if s.Group != fmt.Sprintf("g%d", i%3) {
			t.Fatalf("trial %d group %q", i, s.Group)
		}
		if s.Values["idx"] != float64(i) {
			t.Fatalf("trial %d executed as %v: declaration order lost", i, s.Values["idx"])
		}
		if s.Values["seed"] != float64(TrialSeed(7, "unit", i)) {
			t.Fatalf("trial %d got wrong seed", i)
		}
	}
}

func TestTrialSeedProperties(t *testing.T) {
	if TrialSeed(1, "E1", 0) == TrialSeed(1, "E2", 0) {
		t.Fatal("different grid IDs share a seed")
	}
	if TrialSeed(1, "E1", 0) == TrialSeed(1, "E1", 1) {
		t.Fatal("different trial indices share a seed")
	}
	if TrialSeed(1, "E1", 3) != TrialSeed(1, "E1", 3) {
		t.Fatal("TrialSeed is not a pure function")
	}
	if TrialSeed(1, "E1", 0) == TrialSeed(2, "E1", 0) {
		t.Fatal("base seed is ignored")
	}
}

// TestGridErrorIsFirstByDeclaration: with many failing trials racing, the
// reported error is deterministically the first failing trial in
// declaration order.
func TestGridErrorIsFirstByDeclaration(t *testing.T) {
	g := NewGrid("errs")
	for i := 0; i < 20; i++ {
		g.Add("x", func(seed uint64) (Sample, error) {
			if i >= 5 {
				return Sample{}, fmt.Errorf("boom %d", i)
			}
			return Sample{Values: V("ok", true)}, nil
		})
	}
	for _, p := range []int{1, 8} {
		_, err := g.Run(Config{Seed: 1, Parallel: p})
		if err == nil || err.Error() != "errs trial 5 (x): boom 5" {
			t.Fatalf("parallel=%d err = %v", p, err)
		}
	}
}

// TestGridActuallyParallel: with Parallel=4 the runner overlaps trials.
func TestGridActuallyParallel(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	running, peak := 0, 0
	barrier := make(chan struct{})
	g := NewGrid("par")
	for i := 0; i < workers; i++ {
		g.Add("x", func(seed uint64) (Sample, error) {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			if running == workers {
				close(barrier) // all workers in flight at once
			}
			mu.Unlock()
			<-barrier
			mu.Lock()
			running--
			mu.Unlock()
			return Sample{Values: V("ok", true)}, nil
		})
	}
	if _, err := g.Run(Config{Seed: 1, Parallel: workers}); err != nil {
		t.Fatal(err)
	}
	if peak != workers {
		t.Fatalf("peak concurrency %d, want %d", peak, workers)
	}
}

func TestHelpers(t *testing.T) {
	samples := []Sample{
		{Group: "a", Values: V("x", 1, "flag", true)},
		{Group: "b", Values: V("x", 2, "flag", false)},
		{Group: "a", Values: V("x", 3, "flag", true)},
	}
	groups := ByGroup(samples)
	if len(groups["a"]) != 2 || len(groups["b"]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if got := Metric(samples, "x"); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Metric = %v", got)
	}
	if got := MetricWhere(samples, "x", "flag"); !reflect.DeepEqual(got, []float64{1, 3}) {
		t.Fatalf("MetricWhere = %v", got)
	}
	if got := SumMetric(samples, "x"); got != 6 {
		t.Fatalf("SumMetric = %v", got)
	}
	if v := V("a", 1, "b", 2.5, "c", true, "d", false, "e", int64(9)); v["a"] != 1 || v["b"] != 2.5 || v["c"] != 1 || v["d"] != 0 || v["e"] != 9 {
		t.Fatalf("V = %v", v)
	}
}

func TestEmptyGrid(t *testing.T) {
	out, err := NewGrid("empty").Run(Config{Seed: 1})
	if err != nil || out != nil {
		t.Fatalf("empty grid: %v %v", out, err)
	}
}
