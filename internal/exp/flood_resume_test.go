package exp

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/dyn"
	"repro/internal/gen"
	"repro/internal/xrand"
)

// TestFloodCheckpointResume: a RunFlood killed at an epoch boundary (the
// OnCheckpoint hook failing, as when the serve journal loses its disk) and
// resumed from the last snapshot — round-tripped through JSON like the
// journal does — reports an outcome identical to the uninterrupted run,
// including probe and completion fields recorded before the kill.
func TestFloodCheckpointResume(t *testing.T) {
	g := gen.Grid(6, 6)
	sched, err := dyn.Churn(g, 8, 8, 0.3, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sources := map[int]int64{0: 7}
	base := FloodConfig{Budget: 64, ProbeStep: 10, Seed: 99}
	want, err := RunFlood(g, sched, sources, base)
	if err != nil {
		t.Fatal(err)
	}

	killed := errors.New("journal lost")
	for kill := 1; kill <= 3; kill++ {
		var last *FloodCheckpoint
		calls := 0
		cfg := base
		cfg.OnCheckpoint = func(cp *FloodCheckpoint) error {
			calls++
			if calls == kill {
				return killed
			}
			last = cp
			return nil
		}
		if _, err := RunFlood(g, sched, sources, cfg); !errors.Is(err, killed) {
			t.Fatalf("kill=%d: err = %v, want %v (checkpoint calls: %d)", kill, err, killed, calls)
		}

		rcfg := base
		if last != nil {
			// Round-trip through JSON: the serve journal stores snapshots as
			// JSON lines, so resume must survive the encoding.
			raw, err := json.Marshal(last)
			if err != nil {
				t.Fatal(err)
			}
			decoded := &FloodCheckpoint{}
			if err := json.Unmarshal(raw, decoded); err != nil {
				t.Fatal(err)
			}
			rcfg.Resume = decoded
		} else if kill != 1 {
			t.Fatalf("kill=%d: no checkpoint persisted", kill)
		}
		got, err := RunFlood(g, sched, sources, rcfg)
		if err != nil {
			t.Fatalf("kill=%d: resumed run: %v", kill, err)
		}
		if got != want {
			t.Fatalf("kill=%d: resumed outcome %+v, uninterrupted %+v", kill, got, want)
		}
	}
}
