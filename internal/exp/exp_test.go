package exp

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Scale: Quick, Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	exps := Registry()
	if len(exps) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("E5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("lookup E5: %v %v", e, err)
	}
	if _, err := Lookup("E99"); err == nil {
		t.Fatal("want unknown-id error")
	}
}

// Each experiment must run at Quick scale and produce a table mentioning its
// headline quantity. These run the full pipeline end-to-end, so they double
// as integration tests of mis/mpx/core/baseline and of the trial runner.

func runOne(t *testing.T, id string, mustContain ...string) {
	t.Helper()
	e, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := rep.Markdown()
	if len(out) < 50 {
		t.Fatalf("%s produced no output", id)
	}
	for _, s := range mustContain {
		if !strings.Contains(out, s) {
			t.Fatalf("%s output missing %q:\n%s", id, s, out)
		}
	}
}

func TestE1(t *testing.T)  { runOne(t, "E1", "clique", "exponent") }
func TestE2(t *testing.T)  { runOne(t, "E2", "valid", "isolated+edges") }
func TestE3(t *testing.T)  { runOne(t, "E3", "frac High", "Low") }
func TestE4(t *testing.T)  { runOne(t, "E4", "frac delivered") }
func TestE5(t *testing.T)  { runOne(t, "E5", "E[dist] MIS-ctr", "share") }
func TestE6(t *testing.T)  { runOne(t, "E6", "max bad j") }
func TestE9(t *testing.T)  { runOne(t, "E9", "paper", "decay") }
func TestE10(t *testing.T) { runOne(t, "E10", "golden") }
func TestE11(t *testing.T) { runOne(t, "E11", "growth exponent") }
func TestE12(t *testing.T) { runOne(t, "E12", "mis", "all") }

func TestE14(t *testing.T) { runOne(t, "E14", "|S|") }
func TestE17(t *testing.T) { runOne(t, "E17", "churn", "informed frac") }
func TestE18(t *testing.T) { runOne(t, "E18", "fault rate", "valid on final") }
func TestE19(t *testing.T) { runOne(t, "E19", "heal", "frac at heal") }
func TestE20(t *testing.T) { runOne(t, "E20", "speed", "agree frac") }
func TestE16(t *testing.T) { runOne(t, "E16", "first-clear") }
func TestE15(t *testing.T) { runOne(t, "E15", "stagger", "valid") }

func TestE13(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runOne(t, "E13", "sinr", "MIS valid")
}

func TestE21(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runOne(t, "E21", "cutoff", "exact")
}

func TestE22(t *testing.T) { runOne(t, "E22", "beta", "deliveries per tx") }
func TestE23(t *testing.T) { runOne(t, "E23", "no-CD valid", "same MIS") }

// E7/E8 are the heavyweight broadcast sweeps; still must pass at Quick scale.
func TestE7(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runOne(t, "E7", "speedup", "cliquechain")
}

func TestE8(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runOne(t, "E8", "slope")
}

func TestRunSuiteUnknownID(t *testing.T) {
	if _, err := RunSuite(quickCfg(), []string{"E99"}); err == nil {
		t.Fatal("want unknown-id error")
	}
}

func TestRunSuiteSubset(t *testing.T) {
	res, err := RunSuite(quickCfg(), []string{"E3", " E4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != 2 || res.Experiments[0].ID != "E3" || res.Experiments[1].ID != "E4" {
		t.Fatalf("unexpected suite contents: %+v", res.Experiments)
	}
	if res.Scale != "quick" || res.Seed != 1 {
		t.Fatalf("metadata wrong: %+v", res)
	}
	md := res.Markdown()
	for _, want := range []string{"## E3", "## E4", "frac High", "frac delivered"} {
		if !strings.Contains(md, want) {
			t.Fatalf("suite markdown missing %q", want)
		}
	}
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "E3"`, `"rows"`, `"scale": "quick"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("suite JSON missing %q", want)
		}
	}
}
