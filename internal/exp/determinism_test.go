package exp

import (
	"bytes"
	"testing"
)

// TestDeterminismUnderParallelism is the suite-level contract behind
// `radionet-bench -parallel` (DESIGN.md §4): every registered experiment
// produces byte-identical Markdown and JSON output for Parallel=1 and
// Parallel=8 at Quick scale. The heavyweight sweeps (E7/E8/E13) are skipped
// under -short, matching the rest of this package's suite.
func TestDeterminismUnderParallelism(t *testing.T) {
	heavy := map[string]bool{"E7": true, "E8": true, "E13": true}
	for _, e := range Registry() {
		if testing.Short() && heavy[e.ID] {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			renderAt := func(parallel int) (string, []byte) {
				res, err := RunSuite(Config{Scale: Quick, Seed: 5, Parallel: parallel}, []string{e.ID})
				if err != nil {
					t.Fatal(err)
				}
				raw, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return res.Markdown(), raw
			}
			md1, js1 := renderAt(1)
			md8, js8 := renderAt(8)
			if md1 != md8 {
				t.Errorf("Markdown differs between Parallel=1 and Parallel=8:\n--- P=1 ---\n%s\n--- P=8 ---\n%s", md1, md8)
			}
			if !bytes.Equal(js1, js8) {
				t.Errorf("JSON differs between Parallel=1 and Parallel=8")
			}
			// And a repeated run at the same parallelism is byte-stable too.
			md8b, js8b := renderAt(8)
			if md8 != md8b || !bytes.Equal(js8, js8b) {
				t.Errorf("repeated run at Parallel=8 is not byte-stable")
			}
		})
	}
}
