package exp

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunE1 — Theorem 14: Radio MIS finishes in O(log³ n) time-steps. We sweep n
// per graph class with several seed replicas per size, record the real step
// counts, and fit the exponent of mean steps vs log₂ n (prediction: ≈ 3,
// since each of the Θ(log n) rounds costs Θ(log² n) steps).
func RunE1(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed)
	sizes := []int{32, 64, 128, 256}
	reps := 2
	if cfg.Scale == Full {
		sizes = append(sizes, 512, 1024)
		reps = 5
	}
	classes := []struct {
		name  string
		build func(n int) *graph.Graph
	}{
		{"clique", gen.Clique},
		{"gnp", func(n int) *graph.Graph { return gen.GNP(n, math.Min(1, 8/float64(n)), rng) }},
		{"grid", func(n int) *graph.Graph { s := int(math.Sqrt(float64(n))); return gen.Grid(s, s) }},
		{"path", gen.Path},
	}
	grid := NewGrid("E1")
	for _, cl := range classes {
		for _, n := range sizes {
			g := cl.build(n)
			grid.AddReps(cl.name+"/"+strconv.Itoa(n), reps, func(seed uint64) (Sample, error) {
				out, err := mis.Run(g, mis.Params{}, seed)
				if err != nil {
					return Sample{}, err
				}
				return Sample{Values: V("steps", out.Steps, "completed", out.Completed)}, nil
			})
		}
	}
	samples, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(samples)
	tb := &stats.Table{
		Title:  "E1 — Radio MIS steps vs n (mean over seed replicas, per class)",
		Header: []string{"class", "n", "reps", "mean steps", "95% CI", "steps/log³n", "completed"},
	}
	summary := &stats.Table{
		Title:  "E1 — fitted exponent of mean steps vs log₂ n (theory: 3)",
		Header: []string{"class", "exponent", "verdict"},
	}
	rep := &Report{}
	for _, cl := range classes {
		var logNs, meanSteps []float64
		for _, n := range sizes {
			ss := groups[cl.name+"/"+strconv.Itoa(n)]
			sum := stats.Summarize(Metric(ss, "steps"))
			l := math.Log2(float64(n))
			tb.AddRowf(cl.name, n, sum.N, sum.Mean, ci95String(sum),
				sum.Mean/(l*l*l),
				fmt.Sprintf("%d/%d", int(SumMetric(ss, "completed")), sum.N))
			logNs = append(logNs, l)
			meanSteps = append(meanSteps, sum.Mean)
		}
		e, err := stats.PowerLawExponent(logNs, meanSteps)
		if err != nil {
			return nil, err
		}
		verdict := "≈ log³ n ✓"
		if e < 2.2 || e > 3.8 {
			verdict = "outside [2.2,3.8]"
		}
		summary.AddRowf(cl.name, e, verdict)
	}
	rep.Add(tb)
	rep.Add(summary)
	return rep, nil
}

// RunE2 — Theorem 14 correctness: the output is an independent, maximal set
// with high probability, across every graph class of §1.3 and many seeds.
func RunE2(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe2)
	seeds := 5
	if cfg.Scale == Full {
		seeds = 20
	}
	gws, err := geometricWorkloads(cfg, rng)
	if err != nil {
		return nil, err
	}
	type entry struct {
		name string
		g    *graph.Graph
	}
	entries := []entry{
		{"clique", gen.Clique(64)},
		{"gnp", gen.GNP(128, 0.06, rng)},
		{"tree", gen.RandomTree(128, rng)},
		{"cliquechain", gen.CliqueChain(8, 8)},
		{"isolated+edges", disconnectedSample()},
		{"hypercube", gen.Hypercube(6)},
	}
	if rr, err := gen.RandomRegular(96, 4, 300, rng); err == nil {
		entries = append(entries, entry{"random-regular", rr})
	}
	for _, w := range gws {
		entries = append(entries, entry{w.name, w.g})
	}
	grid := NewGrid("E2")
	for _, e := range entries {
		g := e.g
		grid.AddReps(e.name, seeds, func(seed uint64) (Sample, error) {
			out, err := mis.Run(g, mis.Params{}, seed)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V(
				"valid", mis.Verify(g, out.MIS) == nil,
				"completed", out.Completed,
				"size", len(out.MIS),
			)}, nil
		})
	}
	samples, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(samples)
	tb := &stats.Table{
		Title:  "E2 — Radio MIS correctness (independence + maximality)",
		Header: []string{"class", "n", "trials", "valid", "completed", "mean |MIS|"},
	}
	for _, e := range entries {
		ss := groups[e.name]
		tb.AddRowf(e.name, e.g.N(), len(ss),
			int(SumMetric(ss, "valid")), int(SumMetric(ss, "completed")),
			stats.Mean(Metric(ss, "size")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// disconnectedSample builds a deliberately disconnected graph: MIS is a
// local problem and must handle it (§1.2).
func disconnectedSample() *graph.Graph {
	g := graph.New(40)
	for i := 0; i+1 < 20; i += 2 {
		g.AddEdge(i, i+1) // ten disjoint edges; vertices 20..39 isolated
	}
	return g
}

// RunE3 — Lemma 11: EstimateEffectiveDegree returns High whp when d(v) ≥ 1
// and Low whp when d(v) ≤ 0.01 (either answer allowed in between). We build
// star neighborhoods with exact target effective degrees and measure the
// High frequency at the center.
func RunE3(cfg Config) (*Report, error) {
	trials := 30
	if cfg.Scale == Full {
		trials = 200
	}
	params := mis.Params{DegreeC: 48}
	targets := []struct {
		d      float64
		expect string
	}{
		{0, "Low"},
		{0.005, "Low"},
		{0.01, "Low"},
		{0.25, "either"},
		{1, "High"},
		{2, "High"},
		{8, "High"},
		{32, "High"},
	}
	grid := NewGrid("E3")
	type setup struct {
		leaves int
		pLeaf  float64
	}
	setups := make([]setup, len(targets))
	for ti, tg := range targets {
		leaves, pLeaf := starFor(tg.d)
		setups[ti] = setup{leaves: leaves, pLeaf: pLeaf}
		g := gen.Star(leaves + 1)
		p := make([]float64, leaves+1)
		for v := 1; v <= leaves; v++ {
			p[v] = pLeaf
		}
		grid.AddReps(fmt.Sprintf("d=%g", tg.d), trials, func(seed uint64) (Sample, error) {
			est, _, err := mis.RunDegreeEstimate(g, p, params, seed)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V("high", est[0].High)}, nil
		})
	}
	samples, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(samples)
	tb := &stats.Table{
		Title:  "E3 — EstimateEffectiveDegree verdict frequency at the center of a star",
		Header: []string{"d(v)", "leaves", "p/leaf", "trials", "frac High", "lemma expects", "ok"},
	}
	for ti, tg := range targets {
		ss := groups[fmt.Sprintf("d=%g", tg.d)]
		frac := stats.Mean(Metric(ss, "high"))
		ok := true
		switch tg.expect {
		case "High":
			ok = frac >= 0.9
		case "Low":
			ok = frac <= 0.1
		}
		tb.AddRowf(tg.d, setups[ti].leaves, setups[ti].pLeaf, len(ss), frac, tg.expect, ok)
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// starFor picks a leaf count and per-leaf desire level realizing effective
// degree d at the star center.
func starFor(d float64) (leaves int, pLeaf float64) {
	switch {
	case d == 0:
		return 4, 0
	case d <= 0.5:
		return 4, d / 4
	default:
		leaves = int(math.Ceil(d / 0.5))
		return leaves, d / float64(leaves)
	}
}

// RunE10 — Lemmas 12–13: every surviving node accumulates golden rounds
// (type 1: d_t(v) < 1 with p_t(v)=1/2; type 2: d_t(v) ≥ 1/200 with ≥ d/10
// contributed by low-degree neighbors), and nodes are removed quickly. We
// instrument the real Radio MIS run and report golden-round tallies and
// removal-round quantiles, averaged over seed replicas.
func RunE10(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe10)
	reps := 1
	if cfg.Scale == Full {
		reps = 3
	}
	entries := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.GNP(192, 0.05, rng)},
		{"grid", gen.Grid(12, 12)},
		{"clique", gen.Clique(96)},
	}
	grid := NewGrid("E10")
	for _, e := range entries {
		g := e.g
		grid.AddReps(e.name, reps, func(seed uint64) (Sample, error) {
			return runE10Trial(g, seed)
		})
	}
	samples, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(samples)
	tb := &stats.Table{
		Title:  "E10 — golden rounds and removal times (Radio MIS, instrumented)",
		Header: []string{"class", "n", "rounds budget", "max removal round", "mean golden/node", "p95 golden", "removed by golden?"},
	}
	for _, e := range entries {
		ss := groups[e.name]
		n := e.g.N()
		tb.AddRowf(e.name, n,
			stats.Mean(Metric(ss, "rounds")), stats.Max(Metric(ss, "maxRemoval")),
			stats.Mean(Metric(ss, "meanGolden")), stats.Mean(Metric(ss, "p95Golden")),
			fmt.Sprintf("%.4g/%d", stats.Mean(Metric(ss, "removedEarly")), n))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// runE10Trial runs one instrumented Radio MIS trial and aggregates its
// per-node golden-round tallies into scalar metrics.
func runE10Trial(g *graph.Graph, seed uint64) (Sample, error) {
	n := g.N()
	golden := make([]float64, n)
	removedAt := make([]int, n)
	for v := range removedAt {
		removedAt[v] = -1
	}
	// prev starts as the true initial state: everyone alive at p = 1/2.
	prev := make([]mis.NodeState, n)
	for v := range prev {
		prev[v] = mis.NodeState{P: 0.5, Alive: true}
	}
	params := mis.Params{Observer: func(round int, states []mis.NodeState) {
		// Golden rounds are defined on the state entering the round; we
		// receive states at round end, so classify using the previous
		// snapshot (round ≥ 1) against who was alive entering it.
		if len(prev) == len(states) {
			for v := range states {
				if !prev[v].Alive {
					continue
				}
				d := mis.EffectiveDegree(g, prev, v)
				if d < 1 && prev[v].P == 0.5 {
					golden[v]++ // type 1
				} else if d >= 1.0/200 {
					var lowContrib float64
					for _, u := range g.Neighbors(v) {
						if prev[u].Alive && mis.EffectiveDegree(g, prev, int(u)) < 1 {
							lowContrib += prev[u].P
						}
					}
					if lowContrib >= d/10 {
						golden[v]++ // type 2
					}
				}
				if !states[v].Alive && removedAt[v] == -1 {
					removedAt[v] = round
				}
			}
		}
		prev = append(prev[:0], states...)
	}}
	out, err := mis.Run(g, params, seed)
	if err != nil {
		return Sample{}, err
	}
	if err := mis.Verify(g, out.MIS); err != nil {
		return Sample{}, err
	}
	maxRemoval := 0
	removedEarly := 0
	for v := 0; v < n; v++ {
		if removedAt[v] > maxRemoval {
			maxRemoval = removedAt[v]
		}
		if removedAt[v] >= 0 {
			removedEarly++
		}
	}
	return Sample{Values: V(
		"rounds", out.Rounds,
		"maxRemoval", maxRemoval,
		"meanGolden", stats.Mean(golden),
		"p95Golden", stats.Quantile(golden, 0.95),
		"removedEarly", removedEarly,
	)}, nil
}
