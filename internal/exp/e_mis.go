package exp

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunE1 — Theorem 14: Radio MIS finishes in O(log³ n) time-steps. We sweep n
// per graph class, record the real step counts, and fit the exponent of
// steps vs log₂ n (prediction: ≈ 3, since each of the Θ(log n) rounds costs
// Θ(log² n) steps).
func RunE1(cfg Config) error {
	rng := xrand.New(cfg.Seed)
	sizes := []int{32, 64, 128, 256}
	if cfg.Scale == Full {
		sizes = append(sizes, 512, 1024)
	}
	classes := []struct {
		name  string
		build func(n int) *graph.Graph
	}{
		{"clique", gen.Clique},
		{"gnp", func(n int) *graph.Graph { return gen.GNP(n, math.Min(1, 8/float64(n)), rng) }},
		{"grid", func(n int) *graph.Graph { s := int(math.Sqrt(float64(n))); return gen.Grid(s, s) }},
		{"path", gen.Path},
	}
	tb := &stats.Table{
		Title:  "E1 — Radio MIS steps vs n (per class)",
		Header: []string{"class", "n", "steps", "steps/log³n", "completed"},
	}
	summary := &stats.Table{
		Title:  "E1 — fitted exponent of steps vs log₂ n (theory: 3)",
		Header: []string{"class", "exponent", "verdict"},
	}
	for _, cl := range classes {
		var logNs, steps []float64
		for _, n := range sizes {
			g := cl.build(n)
			out, err := mis.Run(g, mis.Params{}, cfg.Seed+uint64(n))
			if err != nil {
				return err
			}
			l := math.Log2(float64(n))
			tb.AddRowf(cl.name, n, out.Steps, float64(out.Steps)/(l*l*l), out.Completed)
			logNs = append(logNs, l)
			steps = append(steps, float64(out.Steps))
		}
		e, err := stats.PowerLawExponent(logNs, steps)
		if err != nil {
			return err
		}
		verdict := "≈ log³ n ✓"
		if e < 2.2 || e > 3.8 {
			verdict = fmt.Sprintf("outside [2.2,3.8]")
		}
		summary.AddRowf(cl.name, e, verdict)
	}
	emit(cfg, tb)
	emit(cfg, summary)
	return nil
}

// RunE2 — Theorem 14 correctness: the output is an independent, maximal set
// with high probability, across every graph class of §1.3 and many seeds.
func RunE2(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe2)
	seeds := 5
	if cfg.Scale == Full {
		seeds = 20
	}
	gws, err := geometricWorkloads(cfg, rng)
	if err != nil {
		return err
	}
	type entry struct {
		name string
		g    *graph.Graph
	}
	entries := []entry{
		{"clique", gen.Clique(64)},
		{"gnp", gen.GNP(128, 0.06, rng)},
		{"tree", gen.RandomTree(128, rng)},
		{"cliquechain", gen.CliqueChain(8, 8)},
		{"isolated+edges", disconnectedSample()},
		{"hypercube", gen.Hypercube(6)},
	}
	if rr, err := gen.RandomRegular(96, 4, 300, rng); err == nil {
		entries = append(entries, entry{"random-regular", rr})
	}
	for _, w := range gws {
		entries = append(entries, entry{w.name, w.g})
	}
	tb := &stats.Table{
		Title:  "E2 — Radio MIS correctness (independence + maximality)",
		Header: []string{"class", "n", "trials", "valid", "completed", "mean |MIS|"},
	}
	for _, e := range entries {
		valid, completed := 0, 0
		var sizes []float64
		for s := 0; s < seeds; s++ {
			out, err := mis.Run(e.g, mis.Params{}, cfg.Seed+uint64(1000+s))
			if err != nil {
				return err
			}
			if out.Completed {
				completed++
			}
			if mis.Verify(e.g, out.MIS) == nil {
				valid++
			}
			sizes = append(sizes, float64(len(out.MIS)))
		}
		tb.AddRowf(e.name, e.g.N(), seeds, valid, completed, stats.Mean(sizes))
	}
	emit(cfg, tb)
	return nil
}

// disconnectedSample builds a deliberately disconnected graph: MIS is a
// local problem and must handle it (§1.2).
func disconnectedSample() *graph.Graph {
	g := graph.New(40)
	for i := 0; i+1 < 20; i += 2 {
		g.AddEdge(i, i+1) // ten disjoint edges; vertices 20..39 isolated
	}
	return g
}

// RunE3 — Lemma 11: EstimateEffectiveDegree returns High whp when d(v) ≥ 1
// and Low whp when d(v) ≤ 0.01 (either answer allowed in between). We build
// star neighborhoods with exact target effective degrees and measure the
// High frequency at the center.
func RunE3(cfg Config) error {
	trials := 30
	if cfg.Scale == Full {
		trials = 200
	}
	params := mis.Params{DegreeC: 48}
	targets := []struct {
		d      float64
		expect string
	}{
		{0, "Low"},
		{0.005, "Low"},
		{0.01, "Low"},
		{0.25, "either"},
		{1, "High"},
		{2, "High"},
		{8, "High"},
		{32, "High"},
	}
	tb := &stats.Table{
		Title:  "E3 — EstimateEffectiveDegree verdict frequency at the center of a star",
		Header: []string{"d(v)", "leaves", "p/leaf", "trials", "frac High", "lemma expects", "ok"},
	}
	for _, tg := range targets {
		leaves, pLeaf := starFor(tg.d)
		g := gen.Star(leaves + 1)
		p := make([]float64, leaves+1)
		for v := 1; v <= leaves; v++ {
			p[v] = pLeaf
		}
		highs := 0
		for s := 0; s < trials; s++ {
			est, _, err := mis.RunDegreeEstimate(g, p, params, cfg.Seed+uint64(31*s)+uint64(tg.d*1000))
			if err != nil {
				return err
			}
			if est[0].High {
				highs++
			}
		}
		frac := float64(highs) / float64(trials)
		ok := true
		switch tg.expect {
		case "High":
			ok = frac >= 0.9
		case "Low":
			ok = frac <= 0.1
		}
		tb.AddRowf(tg.d, leaves, pLeaf, trials, frac, tg.expect, ok)
	}
	emit(cfg, tb)
	return nil
}

// starFor picks a leaf count and per-leaf desire level realizing effective
// degree d at the star center.
func starFor(d float64) (leaves int, pLeaf float64) {
	switch {
	case d == 0:
		return 4, 0
	case d <= 0.5:
		return 4, d / 4
	default:
		leaves = int(math.Ceil(d / 0.5))
		return leaves, d / float64(leaves)
	}
}

// RunE10 — Lemmas 12–13: every surviving node accumulates golden rounds
// (type 1: d_t(v) < 1 with p_t(v)=1/2; type 2: d_t(v) ≥ 1/200 with ≥ d/10
// contributed by low-degree neighbors), and nodes are removed quickly. We
// instrument the real Radio MIS run and report golden-round tallies and
// removal-round quantiles.
func RunE10(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe10)
	entries := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.GNP(192, 0.05, rng)},
		{"grid", gen.Grid(12, 12)},
		{"clique", gen.Clique(96)},
	}
	tb := &stats.Table{
		Title:  "E10 — golden rounds and removal times (Radio MIS, instrumented)",
		Header: []string{"class", "n", "rounds budget", "max removal round", "mean golden/node", "p95 golden", "removed by golden?"},
	}
	for _, e := range entries {
		n := e.g.N()
		golden := make([]float64, n)
		removedAt := make([]int, n)
		for v := range removedAt {
			removedAt[v] = -1
		}
		// prev starts as the true initial state: everyone alive at p = 1/2.
		prev := make([]mis.NodeState, n)
		for v := range prev {
			prev[v] = mis.NodeState{P: 0.5, Alive: true}
		}
		params := mis.Params{Observer: func(round int, states []mis.NodeState) {
			// Golden rounds are defined on the state entering the round; we
			// receive states at round end, so classify using the previous
			// snapshot (round ≥ 1) against who was alive entering it.
			if len(prev) == len(states) {
				for v := range states {
					if !prev[v].Alive {
						continue
					}
					d := mis.EffectiveDegree(e.g, prev, v)
					if d < 1 && prev[v].P == 0.5 {
						golden[v]++ // type 1
					} else if d >= 1.0/200 {
						var lowContrib float64
						for _, u := range e.g.Neighbors(v) {
							if prev[u].Alive && mis.EffectiveDegree(e.g, prev, int(u)) < 1 {
								lowContrib += prev[u].P
							}
						}
						if lowContrib >= d/10 {
							golden[v]++ // type 2
						}
					}
					if !states[v].Alive && removedAt[v] == -1 {
						removedAt[v] = round
					}
				}
			}
			prev = append(prev[:0], states...)
		}}
		out, err := mis.Run(e.g, params, cfg.Seed+7)
		if err != nil {
			return err
		}
		if err := mis.Verify(e.g, out.MIS); err != nil {
			return err
		}
		maxRemoval := 0
		removedEarly := 0
		for v := 0; v < n; v++ {
			if removedAt[v] > maxRemoval {
				maxRemoval = removedAt[v]
			}
			if removedAt[v] >= 0 {
				removedEarly++
			}
		}
		tb.AddRowf(e.name, n, out.Rounds, maxRemoval,
			stats.Mean(golden), stats.Quantile(golden, 0.95),
			fmt.Sprintf("%d/%d", removedEarly, n))
	}
	emit(cfg, tb)
	return nil
}
