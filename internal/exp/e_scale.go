package exp

// E24: the million-node path at experiment scale. The tracked engine
// benches time the streaming pipeline; this experiment checks that the
// protocols still *behave* on it — flood completes and Radio MIS produces a
// valid MIS when the topology is streaming-built CSR (delta-packed above
// the compact threshold) driven through the graph-free radio.RunCSR entry,
// with the snapshot's bytes/node reported alongside. Quick runs n=1024 so
// the determinism and CI suites stay fast; Full runs the n=10⁵ contract
// from the ROADMAP's million-node item.

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// misValidOnCSR checks independence and maximality of misSet directly on
// the snapshot (any form), so validity at n=10⁵ needs no graph.Graph
// reconstruction: one cursor sweep, O(n+m).
func misValidOnCSR(c *graph.CSR, misSet []int) bool {
	in := make([]bool, c.N())
	for _, v := range misSet {
		if v < 0 || v >= c.N() {
			return false
		}
		in[v] = true
	}
	cur := c.Cursor()
	for v := 0; v < c.N(); v++ {
		dominated := in[v]
		for _, w := range cur.List(v) {
			if in[v] && in[int(w)] {
				return false // edge inside the set
			}
			if in[int(w)] {
				dominated = true
			}
		}
		if !dominated {
			return false // v could join: not maximal
		}
	}
	return true
}

// RunE24 — flood and Radio MIS on the streaming million-node path: one
// trial builds a connected UDG deployment directly to CSR (gen.BuildCSR,
// never materializing graph.Graph), floods rank 1 from node 0 with the
// E17 budget convention (6·diameter·levels), then runs Algorithm 7 over
// the same snapshot, both through radio.RunCSR.
func RunE24(cfg Config) (*Report, error) {
	n := 1024
	trials := 3
	if cfg.Scale == Full {
		n = 100000
		trials = 2
	}
	grid := NewGrid("E24")
	grid.AddReps("stream", trials, func(seed uint64) (Sample, error) {
		trng := xrand.New(seed)
		csr, _, err := gen.BuildCSR("phy:sinr", n, trng.Uint64())
		if err != nil {
			return Sample{}, err
		}
		d, err := csr.DiameterApprox()
		if err != nil {
			return Sample{}, err
		}
		levels := int(math.Ceil(math.Log2(float64(n + 1))))
		budget := 6 * d * levels
		fl, err := RunFloodCSR(csr, map[int]int64{0: 1}, FloodConfig{Budget: budget, ProbeStep: -1, Seed: trng.Uint64()})
		if err != nil {
			return Sample{}, err
		}
		mout, err := mis.RunOnEngineN(n, mis.Params{}, seed, func(f radio.Factory, o radio.Options) (radio.Result, error) {
			return radio.RunCSR(csr, f, o)
		})
		if err != nil {
			return Sample{}, err
		}
		return Sample{Values: V(
			"deg", 2*float64(csr.M())/float64(n),
			"bytesPerNode", float64(csr.MemBytes())/float64(n),
			"packed", csr.IsPacked(),
			"floodDone", fl.Complete >= 0,
			"floodStep", completedOr(fl.Complete, budget),
			"coverage", float64(fl.InformedEnd)/float64(n),
			"misValid", mout.Completed && misValidOnCSR(csr, mout.MIS),
			"misSize", len(mout.MIS),
		)}, nil
	})
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title: "E24 — flood and Radio MIS on the streaming direct-to-CSR path (radio.RunCSR, packed above threshold)",
		Header: []string{"n", "trials", "mean deg", "csr bytes/node", "packed",
			"flood done", "mean flood step", "mean coverage", "MIS valid", "mean |MIS|"},
	}
	tb.AddRowf(n, len(results), stats.Mean(Metric(results, "deg")),
		stats.Mean(Metric(results, "bytesPerNode")),
		fmt.Sprintf("%d/%d", int(SumMetric(results, "packed")), len(results)),
		fmt.Sprintf("%d/%d", int(SumMetric(results, "floodDone")), len(results)),
		stats.Mean(Metric(results, "floodStep")),
		stats.Mean(Metric(results, "coverage")),
		fmt.Sprintf("%d/%d", int(SumMetric(results, "misValid")), len(results)),
		stats.Mean(Metric(results, "misSize")))
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}
