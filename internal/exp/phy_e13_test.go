package exp

import "testing"

// TestE13MatchesPrePhyEngine is the old-vs-new differential for the engine
// unification: these rows were produced by the pre-PHY internal/sinr
// standalone loop (captured before its deletion) and the rebuilt E13 —
// radio engines + phy.SINR in exact mode — must reproduce them exactly.
// The agreement is not statistical: the exact-mode model performs the same
// floating-point interference sums in the same order and the engine splits
// per-node RNGs identically, so every trial's transcript — and hence every
// table cell — is bit-identical to the old loop's.
func TestE13MatchesPrePhyEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want := map[uint64][]string{
		// seed → {n, trials, graph-model steps, sinr steps, ratio, MIS valid}
		1: {"120", "5", "65.2", "125.4", "1.923", "5/5"},
		7: {"120", "5", "78.2", "130.6", "1.67", "5/5"},
	}
	for seed, row := range want {
		rep, err := RunE13(Config{Scale: Quick, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 1 {
			t.Fatalf("seed %d: unexpected table shape: %+v", seed, rep.Tables)
		}
		got := rep.Tables[0].Rows[0]
		if len(got) != len(row) {
			t.Fatalf("seed %d: row has %d cells, want %d: %v", seed, len(got), len(row), got)
		}
		for i := range row {
			if got[i] != row[i] {
				t.Errorf("seed %d, column %q: got %q, want pre-PHY value %q (full row %v)",
					seed, rep.Tables[0].Header[i], got[i], row[i], got)
			}
		}
	}
}
