package exp

import (
	"math"
	"strconv"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// completedOr returns step when it is non-negative, else the exhausted
// budget fallback.
func completedOr(step, budget int) int {
	if step < 0 {
		return budget
	}
	return step
}

// RunE7 — Theorems 6–7: Compete-based broadcast completes in
// O(D·log_D α + polylog n), beating the Decay baselines whose cost is
// D·log-factored. We compare four algorithms on geometric (α = poly(D)) and
// general graphs: the paper's algorithm (MIS centers), the CD21-style
// ablation (all centers), BGI Decay and truncated Decay. One trial = one
// seed replica running all four algorithms on the same seed, so the
// comparison is paired.
func RunE7(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe7)
	reps := 2
	if cfg.Scale == Full {
		reps = 5
	}
	var entries []workload
	gridSides := []int{8, 12, 16}
	pathLens := []int{64, 128}
	if cfg.Scale == Full {
		gridSides = append(gridSides, 24, 32)
		pathLens = append(pathLens, 256, 512)
	}
	for _, s := range gridSides {
		w, err := newWorkload("grid"+strconv.Itoa(s), gen.Grid(s, s), rng)
		if err != nil {
			return nil, err
		}
		entries = append(entries, w)
	}
	for _, l := range pathLens {
		w, err := newWorkload("path"+strconv.Itoa(l), gen.Path(l), rng)
		if err != nil {
			return nil, err
		}
		entries = append(entries, w)
	}
	udg, _, err := gen.ConnectedUDG(200, 8, 60, rng)
	if err != nil {
		return nil, err
	}
	wu, err := newWorkload("udg", udg, rng)
	if err != nil {
		return nil, err
	}
	entries = append(entries, wu)
	chain, err := newWorkload("cliquechain", gen.CliqueChain(10, 10), rng)
	if err != nil {
		return nil, err
	}
	entries = append(entries, chain)

	grid := NewGrid("E7")
	for _, w := range entries {
		g := w.g
		grid.AddReps(w.name, reps, func(seed uint64) (Sample, error) {
			res, err := core.Broadcast(g, 0, core.Params{}, seed)
			if err != nil {
				return Sample{}, err
			}
			res2, err := core.Broadcast(g, 0, core.Params{CenterMode: core.AllCenters}, seed)
			if err != nil {
				return Sample{}, err
			}
			bres, err := baseline.DecayBroadcast(g, 0, 0, seed)
			if err != nil {
				return Sample{}, err
			}
			tres, err := baseline.TruncatedDecayBroadcast(g, 0, 0, seed)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V(
				"paperMain", completedOr(res.CompleteStep, res.MainSteps),
				"paperTotal", res.TotalSteps,
				"cd21Main", completedOr(res2.CompleteStep, res2.MainSteps),
				"bgi", completedOr(bres.CompleteStep, bres.Steps),
				"trunc", completedOr(tres.CompleteStep, tres.Steps),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title: "E7 — broadcast completion steps (mean over seeds; lower is better)",
		Header: []string{"graph", "n", "D", "α̂",
			"paper (main loop)", "paper (total)", "cd21-style (main)", "bgi decay", "trunc decay",
			"paper/bgi speedup"},
	}
	for _, w := range entries {
		ss := groups[w.name]
		paperMain := stats.Mean(Metric(ss, "paperMain"))
		bgi := stats.Mean(Metric(ss, "bgi"))
		tb.AddRowf(w.name, w.g.N(), w.diam, w.alpha,
			paperMain, stats.Mean(Metric(ss, "paperTotal")), stats.Mean(Metric(ss, "cd21Main")),
			bgi, stats.Mean(Metric(ss, "trunc")), bgi/math.Max(1, paperMain))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE8 — Corollary 9: on growth-bounded graphs the leading term is O(D):
// fixing n and stretching D, the paper's main-loop completion time grows
// linearly in D with slope independent of log n, while BGI's slope carries
// the log n factor. We fit mean completion vs D for rectangle grids of
// constant area.
func RunE8(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe8)
	shapes := [][2]int{{16, 16}, {8, 32}, {4, 64}}
	reps := 2
	if cfg.Scale == Full {
		shapes = append(shapes, [2]int{2, 128})
		reps = 4
	}
	diams := make([]int, len(shapes))
	grid := NewGrid("E8")
	for si, sh := range shapes {
		g := gen.Grid(sh[0], sh[1])
		w, err := newWorkload("grid", g, rng)
		if err != nil {
			return nil, err
		}
		diams[si] = w.diam
		grid.AddReps(formatShape(sh), reps, func(seed uint64) (Sample, error) {
			res, err := core.Broadcast(g, 0, core.Params{}, seed)
			if err != nil {
				return Sample{}, err
			}
			bres, err := baseline.DecayBroadcast(g, 0, 0, seed)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V(
				"paper", completedOr(res.CompleteStep, res.MainSteps),
				"bgi", completedOr(bres.CompleteStep, bres.Steps),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E8 — completion vs D at fixed n=256 (rectangle grids, mean over seed replicas)",
		Header: []string{"shape", "D", "paper main", "paper main/D", "bgi", "bgi/D"},
	}
	var ds, paperSteps, bgiSteps []float64
	for si, sh := range shapes {
		ss := groups[formatShape(sh)]
		d := diams[si]
		paper := stats.Mean(Metric(ss, "paper"))
		bgi := stats.Mean(Metric(ss, "bgi"))
		tb.AddRowf(formatShape(sh), d, paper, paper/float64(d), bgi, bgi/float64(d))
		ds = append(ds, float64(d))
		paperSteps = append(paperSteps, paper)
		bgiSteps = append(bgiSteps, bgi)
	}
	fitPaper, err := stats.LinearFit(ds, paperSteps)
	if err != nil {
		return nil, err
	}
	fitBGI, err := stats.LinearFit(ds, bgiSteps)
	if err != nil {
		return nil, err
	}
	sum := &stats.Table{
		Title:  "E8 — per-hop cost (slope of completion vs D); paper predicts O(1) vs Θ(log n)",
		Header: []string{"algorithm", "slope steps/hop", "R²"},
	}
	sum.AddRowf("paper (mis centers)", fitPaper.Slope, fitPaper.R2)
	sum.AddRowf("bgi decay", fitBGI.Slope, fitBGI.R2)
	rep := &Report{}
	rep.Add(tb)
	rep.Add(sum)
	return rep, nil
}

func formatShape(sh [2]int) string {
	return strconv.Itoa(sh[0]) + "x" + strconv.Itoa(sh[1])
}

// RunE9 — Theorem 8: leader election completes in broadcast time and elects
// a single agreed leader whp, on both the paper's algorithm and the Decay
// baseline. One trial = one seed running both algorithms (paired).
func RunE9(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe9)
	reps := 3
	if cfg.Scale == Full {
		reps = 10
	}
	var entries []workload
	grid9, err := newWorkload("grid", gen.Grid(10, 10), rng)
	if err != nil {
		return nil, err
	}
	entries = append(entries, grid9)
	udg, _, err := gen.ConnectedUDG(150, 8, 60, rng)
	if err != nil {
		return nil, err
	}
	wu, err := newWorkload("udg", udg, rng)
	if err != nil {
		return nil, err
	}
	entries = append(entries, wu)
	gnp, err := gen.GNPConnected(120, 0.06, 60, rng)
	if err != nil {
		return nil, err
	}
	wg, err := newWorkload("gnp", gnp, rng)
	if err != nil {
		return nil, err
	}
	entries = append(entries, wg)

	grid := NewGrid("E9")
	for _, w := range entries {
		g := w.g
		grid.AddReps(w.name, reps, func(seed uint64) (Sample, error) {
			er, err := core.LeaderElection(g, core.Params{}, seed)
			if err != nil {
				return Sample{}, err
			}
			dr, err := baseline.DecayLeaderElection(g, 0, seed)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V(
				"pComplete", er.CompleteStep >= 0,
				"pSteps", max(er.CompleteStep, 0),
				"pCands", er.Candidates,
				"dComplete", dr.CompleteStep >= 0,
				"dSteps", max(dr.CompleteStep, 0),
				"dCands", dr.Candidates,
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E9 — leader election (paper vs decay reduction)",
		Header: []string{"graph", "algo", "runs", "all complete", "mean candidates", "mean steps"},
	}
	for _, w := range entries {
		ss := groups[w.name]
		tb.AddRowf(w.name, "paper", len(ss), int(SumMetric(ss, "pComplete")),
			stats.Mean(Metric(ss, "pCands")), stats.Mean(MetricWhere(ss, "pSteps", "pComplete")))
		tb.AddRowf(w.name, "decay", len(ss), int(SumMetric(ss, "dComplete")),
			stats.Mean(Metric(ss, "dCands")), stats.Mean(MetricWhere(ss, "dSteps", "dComplete")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE11 — §1.3: geometric-derived classes are growth-bounded — the largest
// independent set inside a d-ball grows polynomially in d (exponent ≈ 2 for
// 2-D classes) — and consequently α = poly(D), the property the paper's
// speedups rely on. One trial = one workload's growth-profile measurement.
func RunE11(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe11)
	ws, err := geometricWorkloads(cfg, rng)
	if err != nil {
		return nil, err
	}
	gnp, err := gen.GNPConnected(128, 0.06, 60, rng)
	if err != nil {
		return nil, err
	}
	wg, err := newWorkload("gnp (general)", gnp, rng)
	if err != nil {
		return nil, err
	}
	ws = append(ws, wg)
	star, err := newWorkload("star (general)", gen.Star(128), rng)
	if err != nil {
		return nil, err
	}
	ws = append(ws, star)

	const maxD = 4
	grid := NewGrid("E11")
	for _, w := range ws {
		g := w.g
		grid.Add(w.name, func(seed uint64) (Sample, error) {
			profile := g.GrowthProfile(maxD, 10, xrand.New(seed))
			return Sample{Values: V(
				"b1", profile[1], "b2", profile[2], "b4", profile[4],
				"exp", graph.GrowthExponent(profile),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:  "E11 — growth profiles α(B_d) and the α vs D relation",
		Header: []string{"graph", "n", "D", "α̂", "α(B_1)", "α(B_2)", "α(B_4)", "growth exponent", "α ≤ D²·c?"},
	}
	for wi, w := range ws {
		s := results[wi]
		polyD := float64(w.alpha) <= 8*float64(w.diam*w.diam)
		tb.AddRowf(w.name, w.g.N(), w.diam, w.alpha,
			int(s.Values["b1"]), int(s.Values["b2"]), int(s.Values["b4"]), s.Values["exp"], polyD)
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}
