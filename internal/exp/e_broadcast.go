package exp

import (
	"math"
	"strconv"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunE7 — Theorems 6–7: Compete-based broadcast completes in
// O(D·log_D α + polylog n), beating the Decay baselines whose cost is
// D·log-factored. We compare four algorithms on geometric (α = poly(D)) and
// general graphs: the paper's algorithm (MIS centers), the CD21-style
// ablation (all centers), BGI Decay and truncated Decay.
func RunE7(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe7)
	reps := 2
	if cfg.Scale == Full {
		reps = 5
	}
	var entries []workload
	gridSides := []int{8, 12, 16}
	pathLens := []int{64, 128}
	if cfg.Scale == Full {
		gridSides = append(gridSides, 24, 32)
		pathLens = append(pathLens, 256, 512)
	}
	for _, s := range gridSides {
		w, err := newWorkload("grid", gen.Grid(s, s), rng)
		if err != nil {
			return err
		}
		entries = append(entries, w)
	}
	for _, l := range pathLens {
		w, err := newWorkload("path", gen.Path(l), rng)
		if err != nil {
			return err
		}
		entries = append(entries, w)
	}
	udg, _, err := gen.ConnectedUDG(200, 8, 60, rng)
	if err != nil {
		return err
	}
	wu, err := newWorkload("udg", udg, rng)
	if err != nil {
		return err
	}
	entries = append(entries, wu)
	chain, err := newWorkload("cliquechain", gen.CliqueChain(10, 10), rng)
	if err != nil {
		return err
	}
	entries = append(entries, chain)

	tb := &stats.Table{
		Title: "E7 — broadcast completion steps (mean over seeds; lower is better)",
		Header: []string{"graph", "n", "D", "α̂",
			"paper (main loop)", "paper (total)", "cd21-style (main)", "bgi decay", "trunc decay",
			"paper/bgi speedup"},
	}
	for _, w := range entries {
		var paperMain, paperTotal, cd21Main, bgi, trunc []float64
		for r := 0; r < reps; r++ {
			seed := cfg.Seed + uint64(100*r+1)
			res, err := core.Broadcast(w.g, 0, core.Params{}, seed)
			if err != nil {
				return err
			}
			if res.CompleteStep < 0 {
				res.CompleteStep = res.MainSteps // budget exhausted; report budget
			}
			paperMain = append(paperMain, float64(res.CompleteStep))
			paperTotal = append(paperTotal, float64(res.TotalSteps))
			res2, err := core.Broadcast(w.g, 0, core.Params{CenterMode: core.AllCenters}, seed)
			if err != nil {
				return err
			}
			if res2.CompleteStep < 0 {
				res2.CompleteStep = res2.MainSteps
			}
			cd21Main = append(cd21Main, float64(res2.CompleteStep))
			bres, err := baseline.DecayBroadcast(w.g, 0, 0, seed)
			if err != nil {
				return err
			}
			if bres.CompleteStep < 0 {
				bres.CompleteStep = bres.Steps
			}
			bgi = append(bgi, float64(bres.CompleteStep))
			tres, err := baseline.TruncatedDecayBroadcast(w.g, 0, 0, seed)
			if err != nil {
				return err
			}
			if tres.CompleteStep < 0 {
				tres.CompleteStep = tres.Steps
			}
			trunc = append(trunc, float64(tres.CompleteStep))
		}
		speedup := stats.Mean(bgi) / math.Max(1, stats.Mean(paperMain))
		tb.AddRowf(w.name, w.g.N(), w.diam, w.alpha,
			stats.Mean(paperMain), stats.Mean(paperTotal), stats.Mean(cd21Main),
			stats.Mean(bgi), stats.Mean(trunc), speedup)
	}
	emit(cfg, tb)
	return nil
}

// RunE8 — Corollary 9: on growth-bounded graphs the leading term is O(D):
// fixing n and stretching D, the paper's main-loop completion time grows
// linearly in D with slope independent of log n, while BGI's slope carries
// the log n factor. We fit completion vs D for rectangle grids of constant
// area.
func RunE8(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe8)
	shapes := [][2]int{{16, 16}, {8, 32}, {4, 64}}
	if cfg.Scale == Full {
		shapes = append(shapes, [2]int{2, 128})
	}
	tb := &stats.Table{
		Title:  "E8 — completion vs D at fixed n=256 (rectangle grids)",
		Header: []string{"shape", "D", "paper main", "paper main/D", "bgi", "bgi/D"},
	}
	var ds, paperSteps, bgiSteps []float64
	for _, sh := range shapes {
		g := gen.Grid(sh[0], sh[1])
		w, err := newWorkload("grid", g, rng)
		if err != nil {
			return err
		}
		res, err := core.Broadcast(g, 0, core.Params{}, cfg.Seed+3)
		if err != nil {
			return err
		}
		main := res.CompleteStep
		if main < 0 {
			main = res.MainSteps
		}
		bres, err := baseline.DecayBroadcast(g, 0, 0, cfg.Seed+3)
		if err != nil {
			return err
		}
		bmain := bres.CompleteStep
		if bmain < 0 {
			bmain = bres.Steps
		}
		tb.AddRowf(formatShape(sh), w.diam, main, float64(main)/float64(w.diam),
			bmain, float64(bmain)/float64(w.diam))
		ds = append(ds, float64(w.diam))
		paperSteps = append(paperSteps, float64(main))
		bgiSteps = append(bgiSteps, float64(bmain))
	}
	fitPaper, err := stats.LinearFit(ds, paperSteps)
	if err != nil {
		return err
	}
	fitBGI, err := stats.LinearFit(ds, bgiSteps)
	if err != nil {
		return err
	}
	sum := &stats.Table{
		Title:  "E8 — per-hop cost (slope of completion vs D); paper predicts O(1) vs Θ(log n)",
		Header: []string{"algorithm", "slope steps/hop", "R²"},
	}
	sum.AddRowf("paper (mis centers)", fitPaper.Slope, fitPaper.R2)
	sum.AddRowf("bgi decay", fitBGI.Slope, fitBGI.R2)
	emit(cfg, tb)
	emit(cfg, sum)
	return nil
}

func formatShape(sh [2]int) string {
	return strconv.Itoa(sh[0]) + "x" + strconv.Itoa(sh[1])
}

// RunE9 — Theorem 8: leader election completes in broadcast time and elects
// a single agreed leader whp, on both the paper's algorithm and the Decay
// baseline.
func RunE9(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe9)
	reps := 3
	if cfg.Scale == Full {
		reps = 10
	}
	var entries []workload
	grid, err := newWorkload("grid", gen.Grid(10, 10), rng)
	if err != nil {
		return err
	}
	entries = append(entries, grid)
	udg, _, err := gen.ConnectedUDG(150, 8, 60, rng)
	if err != nil {
		return err
	}
	wu, err := newWorkload("udg", udg, rng)
	if err != nil {
		return err
	}
	entries = append(entries, wu)
	gnp, err := gen.GNPConnected(120, 0.06, 60, rng)
	if err != nil {
		return err
	}
	wg, err := newWorkload("gnp", gnp, rng)
	if err != nil {
		return err
	}
	entries = append(entries, wg)

	tb := &stats.Table{
		Title:  "E9 — leader election (paper vs decay reduction)",
		Header: []string{"graph", "algo", "runs", "all complete", "mean candidates", "mean steps"},
	}
	for _, w := range entries {
		var steps, cands []float64
		complete := 0
		for r := 0; r < reps; r++ {
			er, err := core.LeaderElection(w.g, core.Params{}, cfg.Seed+uint64(50+r))
			if err != nil {
				return err
			}
			if er.CompleteStep >= 0 {
				complete++
				steps = append(steps, float64(er.CompleteStep))
			}
			cands = append(cands, float64(er.Candidates))
		}
		tb.AddRowf(w.name, "paper", reps, complete, stats.Mean(cands), stats.Mean(steps))
		steps, cands = nil, nil
		complete = 0
		for r := 0; r < reps; r++ {
			er, err := baseline.DecayLeaderElection(w.g, 0, cfg.Seed+uint64(50+r))
			if err != nil {
				return err
			}
			if er.CompleteStep >= 0 {
				complete++
				steps = append(steps, float64(er.CompleteStep))
			}
			cands = append(cands, float64(er.Candidates))
		}
		tb.AddRowf(w.name, "decay", reps, complete, stats.Mean(cands), stats.Mean(steps))
	}
	emit(cfg, tb)
	return nil
}

// RunE11 — §1.3: geometric-derived classes are growth-bounded — the largest
// independent set inside a d-ball grows polynomially in d (exponent ≈ 2 for
// 2-D classes) — and consequently α = poly(D), the property the paper's
// speedups rely on.
func RunE11(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe11)
	ws, err := geometricWorkloads(cfg, rng)
	if err != nil {
		return err
	}
	general := []workload{}
	gnp, err := gen.GNPConnected(128, 0.06, 60, rng)
	if err != nil {
		return err
	}
	wg, err := newWorkload("gnp (general)", gnp, rng)
	if err != nil {
		return err
	}
	general = append(general, wg)
	star, err := newWorkload("star (general)", gen.Star(128), rng)
	if err != nil {
		return err
	}
	general = append(general, star)

	tb := &stats.Table{
		Title:  "E11 — growth profiles α(B_d) and the α vs D relation",
		Header: []string{"graph", "n", "D", "α̂", "α(B_1)", "α(B_2)", "α(B_4)", "growth exponent", "α ≤ D²·c?"},
	}
	maxD := 4
	for _, w := range append(ws, general...) {
		profile := w.g.GrowthProfile(maxD, 10, rng)
		e := graph.GrowthExponent(profile)
		polyD := float64(w.alpha) <= 8*float64(w.diam*w.diam)
		tb.AddRowf(w.name, w.g.N(), w.diam, w.alpha,
			profile[1], profile[2], profile[4], e, polyD)
	}
	emit(cfg, tb)
	return nil
}
