// Package exp is the experiment harness that regenerates the paper's
// quantitative claims (E1–E16) and stresses them under dynamic topologies
// (E17–E20) and alternative physical layers (E21–E23, DESIGN.md §4–§7 and
// EXPERIMENTS.md). Each
// experiment declares a grid of independent trials (scenario × seed
// replica) that the runner in runner.go executes concurrently, then
// aggregates the typed samples into stats.Tables. A run renders both as
// GitHub-flavored Markdown and as a structured JSON record; the
// cmd/radionet-bench CLI and the root bench_test.go drive the registry.
package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick runs small instances (CI-sized, seconds).
	Quick Scale = iota + 1
	// Full runs the paper-scale sweeps (minutes).
	Full
)

// String renders the scale as the CLI spells it.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  uint64
	// Parallel is the trial-runner worker count; zero selects GOMAXPROCS.
	// Output is bit-identical for every value (see runner.go).
	Parallel int
	// OnTrialDone, when non-nil, observes grid progress: it is called once
	// per completed trial with the number of trials finished so far and the
	// grid size. Calls come from runner worker goroutines in completion
	// (not declaration) order, so the callback must be concurrency-safe;
	// results are unaffected. The serve subsystem surfaces async job
	// progress through it.
	OnTrialDone func(done, total int)
	// Prefilled, when non-nil, maps trial declaration indices to samples
	// already known from an earlier (interrupted) run: the runner installs
	// them directly instead of executing those trials. Because every trial is
	// a pure function of its derived seed, a prefilled sample is
	// indistinguishable from re-running the trial, so the aggregate output
	// stays byte-identical — this is what makes crash recovery in the serve
	// journal trial-granular (DESIGN.md §8).
	Prefilled map[int]Sample
	// OnTrialSample, when non-nil, observes each freshly executed successful
	// trial with its declaration index and sample — the journaling hook.
	// Calls come from worker goroutines in completion order and must be
	// concurrency-safe. Prefilled trials are not re-reported.
	OnTrialSample func(i int, s Sample)
	// Cancelled, when non-nil, is polled by workers between trials; once it
	// returns true no further trials are claimed and Run returns
	// ErrCancelled. In-flight trials still finish (and are still reported
	// through OnTrialSample), so a drain can journal everything it paid for.
	Cancelled func() bool
}

// Experiment is one reproducible claim-check.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(Config) (*Report, error)
}

// Report is the structured output of one experiment run: an ordered list
// of rendered tables.
type Report struct {
	Tables []*stats.Table
}

// Add appends a table to the report.
func (r *Report) Add(t *stats.Table) { r.Tables = append(r.Tables, t) }

// Markdown renders every table in order.
func (r *Report) Markdown() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	return b.String()
}

// ExperimentResult is the machine-readable record of one experiment run.
type ExperimentResult struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	Claim  string         `json:"claim"`
	Tables []*stats.Table `json:"tables"`
}

// Results is the machine-readable record of a suite run
// (`radionet-bench -json`). It carries no timestamps or host details on
// purpose: a Results for a fixed (scale, seed, experiment set) must be
// byte-reproducible.
type Results struct {
	Scale       string             `json:"scale"`
	Seed        uint64             `json:"seed"`
	Experiments []ExperimentResult `json:"experiments"`
	// Failed, when non-empty, names the experiment whose error aborted the
	// suite: the record is partial, holding only the experiments that
	// completed before it. Absent on a successful run.
	Failed string `json:"failed,omitempty"`
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Radio MIS time scaling", Claim: "Theorem 14: O(log³ n) time-steps", Run: RunE1},
		{ID: "E2", Title: "Radio MIS correctness", Claim: "Theorem 14: maximal independent set whp", Run: RunE2},
		{ID: "E3", Title: "EstimateEffectiveDegree separation", Claim: "Lemma 11: High for d≥1, Low for d≤0.01", Run: RunE3},
		{ID: "E4", Title: "Amplified Decay delivery", Claim: "Claim 10: neighbors of S informed whp", Run: RunE4},
		{ID: "E5", Title: "Cluster center distance", Claim: "Theorem 2: E[dist] = O(log_D α/β) for ≥0.77 of j", Run: RunE5},
		{ID: "E6", Title: "Bad scale count", Claim: "Lemma 5: ≤ 0.02·log₂D bad j", Run: RunE6},
		{ID: "E7", Title: "Broadcast comparison", Claim: "Theorems 6–7: O(D·log_D α + polylog) beats Decay baselines", Run: RunE7},
		{ID: "E8", Title: "Growth-bounded leading term", Claim: "Corollary 9: O(D + polylog) on growth-bounded graphs", Run: RunE8},
		{ID: "E9", Title: "Leader election", Claim: "Theorem 8: same time as broadcast, unique leader whp", Run: RunE9},
		{ID: "E10", Title: "Golden rounds", Claim: "Lemmas 12–13: Ω(log n) golden rounds, constant removal probability", Run: RunE10},
		{ID: "E11", Title: "Growth-bound measurement", Claim: "§1.3: geometric classes have α(B_d) = poly(d), α = poly(D)", Run: RunE11},
		{ID: "E12", Title: "Center-set ablation", Claim: "§2.2: MIS-restricted centers are what buys the improvement", Run: RunE12},
		{ID: "E13", Title: "SINR cross-model validation", Claim: "footnote 1: the graph abstraction is worst-case vs SINR physics", Run: RunE13},
		{ID: "E14", Title: "Multi-source Compete", Claim: "Theorem 6: |S|·D^0.125 additive source term", Run: RunE14},
		{ID: "E15", Title: "Wake-up model ablation", Claim: "§1.1: synchronous wake-up is required by Algorithm 7", Run: RunE15},
		{ID: "E16", Title: "Wake-up reduction", Claim: "§1.5.1 fn.3: MIS on a k-clique with estimate n forces a clear transmission", Run: RunE16},
		{ID: "E17", Title: "Broadcast under churn", Claim: "extension: Decay flooding degrades gracefully as nodes churn out and back", Run: RunE17},
		{ID: "E18", Title: "MIS under edge faults", Claim: "extension: Radio MIS output goes stale when links fail and heal mid-run", Run: RunE18},
		{ID: "E19", Title: "Partition heal re-convergence", Claim: "extension: a partition contains the flood; healing re-converges at flood speed", Run: RunE19},
		{ID: "E20", Title: "Election under mobility", Claim: "extension: waypoint motion both breaks links and ferries agreement across partitions", Run: RunE20},
		{ID: "E21", Title: "SINR broadcast on the unified engine", Claim: "phy layer: the graph/SINR gap survives engine unification; the far-field cutoff is faithful to exact interference", Run: RunE21},
		{ID: "E22", Title: "Capture-effect Decay", Claim: "phy layer: β→1 and loud nodes decode through interference the graph model calls a collision", Run: RunE22},
		{ID: "E23", Title: "CD vs no-CD Radio MIS", Claim: "§1.5.2: collision markers read as extra signals — CD steers Algorithm 7 to different (still valid) MISes on dense classes", Run: RunE23},
		{ID: "E24", Title: "Streaming-path flood and MIS", Claim: "engineering: flood and Algorithm 7 behave identically on streaming-built (packed) CSR through the graph-free engine entry, at 10⁵ nodes at full scale", Run: RunE24},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Lookup finds an experiment by ID (case-sensitive).
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// Resolve maps experiment IDs to experiments (every registered experiment
// when ids is empty).
func Resolve(ids []string) ([]Experiment, error) {
	if len(ids) == 0 {
		return Registry(), nil
	}
	var exps []Experiment
	for _, id := range ids {
		e, err := Lookup(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		exps = append(exps, e)
	}
	return exps, nil
}

// RunSuite executes the experiments with the given IDs (every registered
// experiment when ids is empty) and returns the structured results,
// stopping on the first error. Drivers that want output streamed as each
// experiment finishes (the CLI) run Resolve + Experiment.Run themselves.
func RunSuite(cfg Config, ids []string) (*Results, error) {
	exps, err := Resolve(ids)
	if err != nil {
		return nil, err
	}
	res := &Results{Scale: cfg.Scale.String(), Seed: cfg.Seed}
	for _, e := range exps {
		rep, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		res.Experiments = append(res.Experiments, ExperimentResult{
			ID: e.ID, Title: e.Title, Claim: e.Claim, Tables: rep.Tables,
		})
	}
	return res, nil
}

// Markdown renders one experiment's section: header plus tables.
func (er ExperimentResult) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\nClaim: %s\n\n", er.ID, er.Title, er.Claim)
	for _, t := range er.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	return b.String()
}

// Markdown renders the whole suite run as GitHub-flavored Markdown.
func (r *Results) Markdown() string {
	var b strings.Builder
	for _, er := range r.Experiments {
		b.WriteString(er.Markdown())
	}
	return b.String()
}

// JSON marshals the results indented, with a trailing newline. Map-free
// struct encoding keeps the bytes deterministic for a fixed run.
func (r *Results) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// workload bundles a named graph (with its true D and an α lower bound).
type workload struct {
	name  string
	g     *graph.Graph
	diam  int
	alpha int
}

func newWorkload(name string, g *graph.Graph, rng *xrand.RNG) (workload, error) {
	d, err := g.Diameter()
	if err != nil {
		return workload{}, fmt.Errorf("%s: %w", name, err)
	}
	alpha := g.IndependenceLowerBound(4, rng)
	return workload{name: name, g: g, diam: d, alpha: alpha}, nil
}

// geometricWorkloads returns the growth-bounded suite at the given scale.
func geometricWorkloads(cfg Config, rng *xrand.RNG) ([]workload, error) {
	var specs []struct {
		name  string
		build func() (*graph.Graph, error)
	}
	gridSide := 12
	udgN := 150
	if cfg.Scale == Full {
		gridSide = 24
		udgN = 500
	}
	specs = append(specs,
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"grid", func() (*graph.Graph, error) { return gen.Grid(gridSide, gridSide), nil }},
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"udg", func() (*graph.Graph, error) {
			g, _, err := gen.ConnectedUDG(udgN, 8, 60, rng)
			return g, err
		}},
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"quasi-udg", func() (*graph.Graph, error) {
			for t := 0; t < 60; t++ {
				pts := gen.UniformPoints(udgN, 2, sideFor(udgN, 8), rng)
				g, err := gen.QuasiUDG(pts, 1, 1.5, 0.5, rng)
				if err != nil {
					return nil, err
				}
				if g.Connected() {
					return g, nil
				}
			}
			return nil, fmt.Errorf("no connected quasi-UDG")
		}},
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"grn", func() (*graph.Graph, error) {
			for t := 0; t < 60; t++ {
				pts := gen.UniformPoints(udgN, 2, sideFor(udgN, 10), rng)
				g, _, err := gen.GeometricRadioNetwork(pts, 1, 1.8, rng)
				if err != nil {
					return nil, err
				}
				if g.Connected() {
					return g, nil
				}
			}
			return nil, fmt.Errorf("no connected GRN")
		}},
	)
	var ws []workload
	for _, s := range specs {
		g, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		w, err := newWorkload(s.name, g, rng)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// sideFor returns the deployment side length giving roughly the target
// average degree for n uniform points with unit radius.
func sideFor(n int, deg float64) float64 {
	return math.Sqrt(float64(n) * math.Pi / deg)
}
