// Package exp is the experiment harness that regenerates the paper's
// quantitative claims as tables (E1–E16, see DESIGN.md §4 and
// EXPERIMENTS.md). Each experiment produces one or more stats.Tables; the
// cmd/radionet-bench CLI and the root bench_test.go drive the registry.
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick runs small instances (CI-sized, seconds).
	Quick Scale = iota + 1
	// Full runs the paper-scale sweeps (minutes).
	Full
)

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  uint64
	Out   io.Writer
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Experiment is one reproducible claim-check.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(Config) error
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Radio MIS time scaling", Claim: "Theorem 14: O(log³ n) time-steps", Run: RunE1},
		{ID: "E2", Title: "Radio MIS correctness", Claim: "Theorem 14: maximal independent set whp", Run: RunE2},
		{ID: "E3", Title: "EstimateEffectiveDegree separation", Claim: "Lemma 11: High for d≥1, Low for d≤0.01", Run: RunE3},
		{ID: "E4", Title: "Amplified Decay delivery", Claim: "Claim 10: neighbors of S informed whp", Run: RunE4},
		{ID: "E5", Title: "Cluster center distance", Claim: "Theorem 2: E[dist] = O(log_D α/β) for ≥0.77 of j", Run: RunE5},
		{ID: "E6", Title: "Bad scale count", Claim: "Lemma 5: ≤ 0.02·log₂D bad j", Run: RunE6},
		{ID: "E7", Title: "Broadcast comparison", Claim: "Theorems 6–7: O(D·log_D α + polylog) beats Decay baselines", Run: RunE7},
		{ID: "E8", Title: "Growth-bounded leading term", Claim: "Corollary 9: O(D + polylog) on growth-bounded graphs", Run: RunE8},
		{ID: "E9", Title: "Leader election", Claim: "Theorem 8: same time as broadcast, unique leader whp", Run: RunE9},
		{ID: "E10", Title: "Golden rounds", Claim: "Lemmas 12–13: Ω(log n) golden rounds, constant removal probability", Run: RunE10},
		{ID: "E11", Title: "Growth-bound measurement", Claim: "§1.3: geometric classes have α(B_d) = poly(d), α = poly(D)", Run: RunE11},
		{ID: "E12", Title: "Center-set ablation", Claim: "§2.2: MIS-restricted centers are what buys the improvement", Run: RunE12},
		{ID: "E13", Title: "SINR cross-model validation", Claim: "footnote 1: the graph abstraction is worst-case vs SINR physics", Run: RunE13},
		{ID: "E14", Title: "Multi-source Compete", Claim: "Theorem 6: |S|·D^0.125 additive source term", Run: RunE14},
		{ID: "E15", Title: "Wake-up model ablation", Claim: "§1.1: synchronous wake-up is required by Algorithm 7", Run: RunE15},
		{ID: "E16", Title: "Wake-up reduction", Claim: "§1.5.1 fn.3: MIS on a k-clique with estimate n forces a clear transmission", Run: RunE16},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Lookup finds an experiment by ID (case-sensitive).
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// RunAll executes every experiment against cfg, stopping on first error.
func RunAll(cfg Config) error {
	for _, e := range Registry() {
		fmt.Fprintf(cfg.out(), "## %s — %s\n\nClaim: %s\n\n", e.ID, e.Title, e.Claim)
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// emit writes a rendered table.
func emit(cfg Config, t *stats.Table) {
	fmt.Fprintln(cfg.out(), t.Markdown())
}

// workload bundles a named graph (with its true D and an α lower bound).
type workload struct {
	name  string
	g     *graph.Graph
	diam  int
	alpha int
}

func newWorkload(name string, g *graph.Graph, rng *xrand.RNG) (workload, error) {
	d, err := g.Diameter()
	if err != nil {
		return workload{}, fmt.Errorf("%s: %w", name, err)
	}
	alpha := g.IndependenceLowerBound(4, rng)
	return workload{name: name, g: g, diam: d, alpha: alpha}, nil
}

// geometricWorkloads returns the growth-bounded suite at the given scale.
func geometricWorkloads(cfg Config, rng *xrand.RNG) ([]workload, error) {
	var specs []struct {
		name  string
		build func() (*graph.Graph, error)
	}
	gridSide := 12
	udgN := 150
	if cfg.Scale == Full {
		gridSide = 24
		udgN = 500
	}
	specs = append(specs,
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"grid", func() (*graph.Graph, error) { return gen.Grid(gridSide, gridSide), nil }},
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"udg", func() (*graph.Graph, error) {
			g, _, err := gen.ConnectedUDG(udgN, 8, 60, rng)
			return g, err
		}},
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"quasi-udg", func() (*graph.Graph, error) {
			for t := 0; t < 60; t++ {
				pts := gen.UniformPoints(udgN, 2, sideFor(udgN, 8), rng)
				g, err := gen.QuasiUDG(pts, 1, 1.5, 0.5, rng)
				if err != nil {
					return nil, err
				}
				if g.Connected() {
					return g, nil
				}
			}
			return nil, fmt.Errorf("no connected quasi-UDG")
		}},
		struct {
			name  string
			build func() (*graph.Graph, error)
		}{"grn", func() (*graph.Graph, error) {
			for t := 0; t < 60; t++ {
				pts := gen.UniformPoints(udgN, 2, sideFor(udgN, 10), rng)
				g, _, err := gen.GeometricRadioNetwork(pts, 1, 1.8, rng)
				if err != nil {
					return nil, err
				}
				if g.Connected() {
					return g, nil
				}
			}
			return nil, fmt.Errorf("no connected GRN")
		}},
	)
	var ws []workload
	for _, s := range specs {
		g, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		w, err := newWorkload(s.name, g, rng)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// sideFor returns the deployment side length giving roughly the target
// average degree for n uniform points with unit radius.
func sideFor(n int, deg float64) float64 {
	return math.Sqrt(float64(n) * math.Pi / deg)
}
