package exp

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/radio"
	"repro/internal/sinr"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunE13 — extension (paper footnote 1): the graph abstraction vs SINR
// physics. We run the identical Decay-broadcast protocol on the same point
// set under both reception models. The two models differ in both
// directions: SINR adds the *capture effect* (the strongest of several
// transmitters can still be decoded, where the graph model declares a
// collision) but also *far-field interference* (every transmitter in the
// network raises the noise floor, where the graph model only counts
// 1-hop neighbors). The measured completion-time ratio quantifies the net
// effect; the important qualitative check is that Radio MIS executed under
// SINR physics still produces a valid MIS of the decode-range connectivity
// graph.
func RunE13(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe13)
	trials := 5
	nPoints := 120
	if cfg.Scale == Full {
		trials = 15
		nPoints = 250
	}
	tb := &stats.Table{
		Title:  "E13 — graph model vs SINR physics (same protocol, same points)",
		Header: []string{"n", "trials", "graph-model decay steps", "sinr decay steps", "sinr/graph", "sinr MIS valid"},
	}
	params := sinr.Params{} // decode range exactly 1 → connectivity graph = UDG(1)
	var gSteps, sSteps []float64
	misValid := 0
	for trial := 0; trial < trials; trial++ {
		pts, g := connectedDeployment(nPoints, rng)
		seed := cfg.Seed + uint64(300+trial)

		// Decay broadcast under the graph model.
		gres, err := baseline.DecayBroadcast(g, 0, 0, seed)
		if err != nil {
			return err
		}
		step := gres.CompleteStep
		if step < 0 {
			step = gres.Steps
		}
		gSteps = append(gSteps, float64(step))

		// The same protocol under SINR physics.
		sStep, err := decayBroadcastSINR(pts, g.N(), params, seed)
		if err != nil {
			return err
		}
		sSteps = append(sSteps, float64(sStep))

		// Radio MIS under SINR, validated against the connectivity graph.
		if ok, err := misUnderSINR(pts, params, seed); err != nil {
			return err
		} else if ok {
			misValid++
		}
	}
	ratio := stats.Mean(sSteps) / math.Max(1, stats.Mean(gSteps))
	tb.AddRowf(nPoints, trials, stats.Mean(gSteps), stats.Mean(sSteps), ratio,
		fmt.Sprintf("%d/%d", misValid, trials))
	emit(cfg, tb)
	return nil
}

// connectedDeployment draws points until the unit-range UDG is connected.
func connectedDeployment(n int, rng *xrand.RNG) ([]gen.Point, *graph.Graph) {
	side := math.Sqrt(float64(n) * math.Pi / 8)
	for {
		pts := gen.UniformPoints(n, 2, side, rng)
		g := gen.UDG(pts, 1)
		if g.Connected() {
			return pts, g
		}
	}
}

// decayBroadcastSINR runs the informed-nodes-run-Decay broadcast on the
// SINR engine and returns the completion step.
func decayBroadcastSINR(pts []gen.Point, n int, params sinr.Params, seed uint64) (int, error) {
	levels := int(math.Ceil(math.Log2(float64(n + 1))))
	nodes := make([]*sinrDecayNode, n)
	stop := false
	g := sinr.ConnectivityGraph(pts, params)
	d, err := g.DiameterApprox()
	if err != nil {
		return 0, err
	}
	maxSteps := 60 * (d*levels + levels*levels)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &sinrDecayNode{levels: levels, rng: info.RNG, stop: &stop, budget: maxSteps}
		if info.Index == 0 {
			nd.informed = true
		}
		nodes[info.Index] = nd
		return nd
	}
	complete := -1
	res, err := sinr.Run(pts, factory, params, sinr.Options{
		MaxSteps: maxSteps,
		Seed:     seed,
		OnStep: func(st radio.StepStats) {
			if complete >= 0 {
				return
			}
			for _, nd := range nodes {
				if !nd.informed {
					return
				}
			}
			complete = st.Step + 1
			stop = true
		},
	})
	if err != nil {
		return 0, err
	}
	if complete < 0 {
		complete = res.Steps
	}
	return complete, nil
}

// sinrDecayNode mirrors baseline.decayNode for the SINR engine.
type sinrDecayNode struct {
	levels   int
	informed bool
	rng      *xrand.RNG
	stop     *bool
	step     int
	budget   int
}

func (d *sinrDecayNode) Act(step int) radio.Action {
	if d.informed && d.rng.Bernoulli(math.Pow(2, -float64(step%d.levels+1))) {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}

func (d *sinrDecayNode) Deliver(step int, msg radio.Message) {
	d.step = step + 1
	if msg != nil {
		d.informed = true
	}
}

func (d *sinrDecayNode) Done() bool { return *d.stop || d.step >= d.budget }

// misUnderSINR runs Radio MIS node logic on the SINR engine and verifies
// independence+maximality against the decode-range connectivity graph.
// Under SINR the capture effect can deliver where the graph model would
// collide, which only improves detection, so validity should persist.
func misUnderSINR(pts []gen.Point, params sinr.Params, seed uint64) (bool, error) {
	g := sinr.ConnectivityGraph(pts, params)
	out, err := mis.RunOnEngine(g, mis.Params{}, seed, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
		return sinr.Run(pts, factory, params, sinr.Options{
			MaxSteps: opts.MaxSteps,
			Seed:     opts.Seed,
			N:        opts.N,
			OnStep:   opts.OnStep,
		})
	})
	if err != nil {
		return false, err
	}
	return out.Completed && mis.Verify(g, out.MIS) == nil, nil
}

// RunE14 — Theorem 6's source-count term: Compete(S) costs
// O(D·log_D α + |S|·D^0.125 + polylog n). We sweep |S| at fixed topology and
// check completion grows only mildly with the source count.
func RunE14(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe14)
	g := gen.Grid(12, 12)
	if cfg.Scale == Full {
		g = gen.Grid(20, 20)
	}
	counts := []int{1, 2, 4, 8, 16}
	reps := 3
	if cfg.Scale == Full {
		reps = 6
	}
	tb := &stats.Table{
		Title:  "E14 — Compete(S) completion vs source count (Theorem 6's |S|·D^0.125 term)",
		Header: []string{"|S|", "runs", "mean complete", "max complete"},
	}
	var first float64
	for _, k := range counts {
		var steps []float64
		for r := 0; r < reps; r++ {
			sources := map[int]int64{}
			perm := rng.Perm(g.N())
			for i := 0; i < k; i++ {
				sources[perm[i]] = int64(1000 + i)
			}
			res, err := core.Compete(g, sources, core.Params{FinesPerScale: 2}, cfg.Seed+uint64(17*r+k))
			if err != nil {
				return err
			}
			step := res.CompleteStep
			if step < 0 {
				step = res.MainSteps
			}
			steps = append(steps, float64(step))
		}
		m := stats.Mean(steps)
		if first == 0 {
			first = m
		}
		tb.AddRowf(k, reps, m, stats.Max(steps))
	}
	emit(cfg, tb)
	return nil
}

// RunE16 — the single-hop wake-up reduction behind the Ω(log² n) MIS lower
// bound (§1.5.1, footnote 3): k clique nodes run Radio MIS parameterized by
// a network size n ≫ k (legal: their view is identical to a network with
// n−k extra isolated nodes). Correctness forces a *clear* transmission —
// a step with exactly one transmitter. We measure the step of the first
// clear transmission as k sweeps the unknown range, the quantity the
// Farach-Colton–Fernandes–Mosteiro bound constrains to Ω(log² n) for some k.
func RunE16(cfg Config) error {
	bigN := 256
	if cfg.Scale == Full {
		bigN = 1024
	}
	reps := 3
	if cfg.Scale == Full {
		reps = 10
	}
	tb := &stats.Table{
		Title:  "E16 — wake-up reduction: first clear transmission on a k-clique run with estimate n",
		Header: []string{"k", "n estimate", "runs", "mean first-clear step", "max", "log²n", "all valid"},
	}
	log2n := math.Log2(float64(bigN))
	for _, k := range []int{1, 2, 8, 32, 128} {
		var firsts []float64
		valid := 0
		for r := 0; r < reps; r++ {
			g := gen.Clique(k)
			first := -1
			out, err := mis.RunDetailed(g, mis.Params{}, cfg.Seed+uint64(700+r), bigN,
				func(st radio.StepStats) {
					if first < 0 && st.Transmits == 1 {
						first = st.Step
					}
				})
			if err != nil {
				return err
			}
			if out.Completed && mis.Verify(g, out.MIS) == nil && len(out.MIS) == 1 {
				valid++
			}
			if first < 0 {
				first = out.Steps // never cleared (should not happen for valid runs)
			}
			firsts = append(firsts, float64(first))
		}
		tb.AddRowf(k, bigN, reps, stats.Mean(firsts), stats.Max(firsts), log2n*log2n,
			fmt.Sprintf("%d/%d", valid, reps))
	}
	emit(cfg, tb)
	return nil
}

// RunE15 — model ablation: the synchronous wake-up assumption (§1.1).
// Radio MIS is run under staggered wake-up; as the stagger grows past a
// round length, independence violations appear (a late waker cannot hear
// an already-announced MIS neighbor). This is why the paper's model, unlike
// Moscibroda–Wattenhofer's UDG-specific algorithm [26], assumes synchronous
// wake-up.
func RunE15(cfg Config) error {
	rng := xrand.New(cfg.Seed ^ 0xe15)
	trials := 10
	if cfg.Scale == Full {
		trials = 30
	}
	g := gen.GNP(96, 0.08, rng)
	roundLen, _ := mis.EstimateLayout(g.N(), mis.Params{})
	staggers := []int{0, roundLen / 4, roundLen, 4 * roundLen}
	tb := &stats.Table{
		Title:  "E15 — Radio MIS under staggered wake-up (violations of Theorem 14's guarantee)",
		Header: []string{"max stagger (steps)", "stagger/roundLen", "trials", "valid", "not independent", "not maximal/incomplete"},
	}
	for _, s := range staggers {
		valid, depend, other := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			wake := make([]int, g.N())
			if s > 0 {
				for v := range wake {
					wake[v] = rng.Intn(s + 1)
				}
			}
			out, err := mis.RunAsync(g, mis.Params{}, cfg.Seed+uint64(901+trial), wake)
			if err != nil {
				return err
			}
			switch {
			case out.Completed && mis.Verify(g, out.MIS) == nil:
				valid++
			case !g.IsIndependentSet(out.MIS):
				depend++ // the dangerous failure: two adjacent MIS nodes
			default:
				other++ // undecided nodes or domination gaps
			}
		}
		tb.AddRowf(s, float64(s)/float64(roundLen), trials, valid, depend, other)
	}
	emit(cfg, tb)
	return nil
}
