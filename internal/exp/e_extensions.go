package exp

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunE13 — extension (paper footnote 1): the graph abstraction vs SINR
// physics. We run the identical Decay-broadcast protocol on the same point
// set under both reception models. The two models differ in both
// directions: SINR adds the *capture effect* (the strongest of several
// transmitters can still be decoded, where the graph model declares a
// collision) but also *far-field interference* (every transmitter in the
// network raises the noise floor, where the graph model only counts
// 1-hop neighbors). The measured completion-time ratio quantifies the net
// effect; the important qualitative check is that Radio MIS executed under
// SINR physics still produces a valid MIS of the decode-range connectivity
// graph. One trial = one deployment measured under both models.
//
// Both models now run on the same radio engines — the SINR side through
// phy.SINR in exact mode (CutoffFactor +Inf), which reproduces the deleted
// internal/sinr loop's interference sums bit for bit, so this experiment's
// numbers are comparable across the engine unification (pinned by
// TestE13MatchesPrePhyEngine). E21 measures the grid-bucketed default
// cutoff against exact mode.
func RunE13(cfg Config) (*Report, error) {
	trials := 5
	nPoints := 120
	if cfg.Scale == Full {
		trials = 15
		nPoints = 250
	}
	// Default physics, exact interference: decode range exactly 1 → the
	// connectivity graph is the unit-disk graph.
	params := phy.SINRParams{CutoffFactor: math.Inf(1)}
	grid := NewGrid("E13")
	grid.AddReps("sinr", trials, func(seed uint64) (Sample, error) {
		trng := xrand.New(seed)
		pts, g := connectedDeployment(nPoints, trng)

		// Decay broadcast under the graph model.
		gres, err := baseline.DecayBroadcast(g, 0, 0, seed)
		if err != nil {
			return Sample{}, err
		}
		gStep := completedOr(gres.CompleteStep, gres.Steps)

		// The same protocol under SINR physics.
		sStep, _, err := decayBroadcastSINR(pts, g.N(), params, seed)
		if err != nil {
			return Sample{}, err
		}

		// Radio MIS under SINR, validated against the connectivity graph.
		ok, err := misUnderSINR(pts, params, seed)
		if err != nil {
			return Sample{}, err
		}
		return Sample{Values: V("gSteps", gStep, "sSteps", sStep, "misValid", ok)}, nil
	})
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:  "E13 — graph model vs SINR physics (same protocol, same points)",
		Header: []string{"n", "trials", "graph-model decay steps", "sinr decay steps", "sinr/graph", "sinr MIS valid"},
	}
	gSteps := Metric(results, "gSteps")
	sSteps := Metric(results, "sSteps")
	ratio := stats.Mean(sSteps) / math.Max(1, stats.Mean(gSteps))
	tb.AddRowf(nPoints, len(results), stats.Mean(gSteps), stats.Mean(sSteps), ratio,
		fmt.Sprintf("%d/%d", int(SumMetric(results, "misValid")), len(results)))
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// connectedDeployment draws points until the unit-range UDG is connected.
func connectedDeployment(n int, rng *xrand.RNG) ([]gen.Point, *graph.Graph) {
	side := math.Sqrt(float64(n) * math.Pi / 8)
	for {
		pts := gen.UniformPoints(n, 2, side, rng)
		g := gen.UDG(pts, 1)
		if g.Connected() {
			return pts, g
		}
	}
}

// decayBroadcastSINR runs the informed-nodes-run-Decay broadcast under SINR
// reception on the unified engine and returns the completion step. The
// decode-range connectivity graph supplies the parameter estimates (n, D)
// exactly as the pre-PHY sinr engine derived them.
func decayBroadcastSINR(pts []gen.Point, n int, params phy.SINRParams, seed uint64) (int, radio.Result, error) {
	levels := int(math.Ceil(math.Log2(float64(n + 1))))
	nodes := make([]*sinrDecayNode, n)
	stop := false
	g := gen.SINRConnectivity(pts, params)
	d, err := g.DiameterApprox()
	if err != nil {
		return 0, radio.Result{}, err
	}
	maxSteps := 60 * (d*levels + levels*levels)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &sinrDecayNode{levels: levels, rng: info.RNG, stop: &stop, budget: maxSteps}
		if info.Index == 0 {
			nd.informed = true
		}
		nodes[info.Index] = nd
		return nd
	}
	model, err := phy.NewSINR(pts, params)
	if err != nil {
		return 0, radio.Result{}, err
	}
	complete := -1
	res, err := radio.Run(g, factory, radio.Options{
		MaxSteps: maxSteps,
		Seed:     seed,
		PHY:      model,
		OnStep: func(st radio.StepStats) {
			if complete >= 0 {
				return
			}
			for _, nd := range nodes {
				if !nd.informed {
					return
				}
			}
			complete = st.Step + 1
			stop = true
		},
	})
	if err != nil {
		return 0, radio.Result{}, err
	}
	if complete < 0 {
		complete = res.Steps
	}
	return complete, res, nil
}

// sinrDecayNode mirrors baseline.decayNode for the SINR engine.
type sinrDecayNode struct {
	levels   int
	informed bool
	rng      *xrand.RNG
	stop     *bool
	step     int
	budget   int
}

func (d *sinrDecayNode) Act(step int) radio.Action {
	if d.informed && d.rng.Bernoulli(math.Pow(2, -float64(step%d.levels+1))) {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}

func (d *sinrDecayNode) Deliver(step int, msg radio.Message) {
	d.step = step + 1
	if msg != nil {
		d.informed = true
	}
}

func (d *sinrDecayNode) Done() bool { return *d.stop || d.step >= d.budget }

// misUnderSINR runs Radio MIS node logic under SINR reception and verifies
// independence+maximality against the decode-range connectivity graph.
// Under SINR the capture effect can deliver where the graph model would
// collide, which only improves detection, so validity should persist.
func misUnderSINR(pts []gen.Point, params phy.SINRParams, seed uint64) (bool, error) {
	g := gen.SINRConnectivity(pts, params)
	out, err := mis.RunOnEngine(g, mis.Params{}, seed, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
		model, err := phy.NewSINR(pts, params)
		if err != nil {
			return radio.Result{}, err
		}
		opts.PHY = model
		return radio.Run(g, factory, opts)
	})
	if err != nil {
		return false, err
	}
	return out.Completed && mis.Verify(g, out.MIS) == nil, nil
}

// RunE14 — Theorem 6's source-count term: Compete(S) costs
// O(D·log_D α + |S|·D^0.125 + polylog n). We sweep |S| at fixed topology and
// check completion grows only mildly with the source count. One trial = one
// random source set of size k.
func RunE14(cfg Config) (*Report, error) {
	g := gen.Grid(12, 12)
	if cfg.Scale == Full {
		g = gen.Grid(20, 20)
	}
	counts := []int{1, 2, 4, 8, 16}
	reps := 3
	if cfg.Scale == Full {
		reps = 6
	}
	grid := NewGrid("E14")
	for _, k := range counts {
		grid.AddReps(fmt.Sprintf("k=%d", k), reps, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			sources := map[int]int64{}
			perm := trng.Perm(g.N())
			for i := 0; i < k; i++ {
				sources[perm[i]] = int64(1000 + i)
			}
			res, err := core.Compete(g, sources, core.Params{FinesPerScale: 2}, seed)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V("step", completedOr(res.CompleteStep, res.MainSteps))}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E14 — Compete(S) completion vs source count (Theorem 6's |S|·D^0.125 term)",
		Header: []string{"|S|", "runs", "mean complete", "max complete"},
	}
	for _, k := range counts {
		ss := groups[fmt.Sprintf("k=%d", k)]
		steps := Metric(ss, "step")
		tb.AddRowf(k, len(ss), stats.Mean(steps), stats.Max(steps))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE16 — the single-hop wake-up reduction behind the Ω(log² n) MIS lower
// bound (§1.5.1, footnote 3): k clique nodes run Radio MIS parameterized by
// a network size n ≫ k (legal: their view is identical to a network with
// n−k extra isolated nodes). Correctness forces a *clear* transmission —
// a step with exactly one transmitter. We measure the step of the first
// clear transmission as k sweeps the unknown range, the quantity the
// Farach-Colton–Fernandes–Mosteiro bound constrains to Ω(log² n) for some k.
func RunE16(cfg Config) (*Report, error) {
	bigN := 256
	if cfg.Scale == Full {
		bigN = 1024
	}
	reps := 3
	if cfg.Scale == Full {
		reps = 10
	}
	ks := []int{1, 2, 8, 32, 128}
	grid := NewGrid("E16")
	for _, k := range ks {
		grid.AddReps(fmt.Sprintf("k=%d", k), reps, func(seed uint64) (Sample, error) {
			g := gen.Clique(k)
			first := -1
			out, err := mis.RunDetailed(g, mis.Params{}, seed, bigN,
				func(st radio.StepStats) {
					if first < 0 && st.Transmits == 1 {
						first = st.Step
					}
				})
			if err != nil {
				return Sample{}, err
			}
			valid := out.Completed && mis.Verify(g, out.MIS) == nil && len(out.MIS) == 1
			if first < 0 {
				first = out.Steps // never cleared (should not happen for valid runs)
			}
			return Sample{Values: V("first", first, "valid", valid)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E16 — wake-up reduction: first clear transmission on a k-clique run with estimate n",
		Header: []string{"k", "n estimate", "runs", "mean first-clear step", "max", "log²n", "all valid"},
	}
	log2n := math.Log2(float64(bigN))
	for _, k := range ks {
		ss := groups[fmt.Sprintf("k=%d", k)]
		firsts := Metric(ss, "first")
		tb.AddRowf(k, bigN, len(ss), stats.Mean(firsts), stats.Max(firsts), log2n*log2n,
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "valid")), len(ss)))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE15 — model ablation: the synchronous wake-up assumption (§1.1).
// Radio MIS is run under staggered wake-up; as the stagger grows past a
// round length, independence violations appear (a late waker cannot hear
// an already-announced MIS neighbor). This is why the paper's model, unlike
// Moscibroda–Wattenhofer's UDG-specific algorithm [26], assumes synchronous
// wake-up. One trial = one staggered run; the wake schedule is drawn from
// the trial seed.
func RunE15(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe15)
	trials := 10
	if cfg.Scale == Full {
		trials = 30
	}
	g := gen.GNP(96, 0.08, rng)
	roundLen, _ := mis.EstimateLayout(g.N(), mis.Params{})
	staggers := []int{0, roundLen / 4, roundLen, 4 * roundLen}
	grid := NewGrid("E15")
	for _, s := range staggers {
		grid.AddReps(fmt.Sprintf("s=%d", s), trials, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			wake := make([]int, g.N())
			if s > 0 {
				for v := range wake {
					wake[v] = trng.Intn(s + 1)
				}
			}
			out, err := mis.RunAsync(g, mis.Params{}, trng.Uint64(), wake)
			if err != nil {
				return Sample{}, err
			}
			valid, depend, other := false, false, false
			switch {
			case out.Completed && mis.Verify(g, out.MIS) == nil:
				valid = true
			case !g.IsIndependentSet(out.MIS):
				depend = true // the dangerous failure: two adjacent MIS nodes
			default:
				other = true // undecided nodes or domination gaps
			}
			return Sample{Values: V("valid", valid, "depend", depend, "other", other)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E15 — Radio MIS under staggered wake-up (violations of Theorem 14's guarantee)",
		Header: []string{"max stagger (steps)", "stagger/roundLen", "trials", "valid", "not independent", "not maximal/incomplete"},
	}
	for _, s := range staggers {
		ss := groups[fmt.Sprintf("s=%d", s)]
		tb.AddRowf(s, float64(s)/float64(roundLen), len(ss),
			int(SumMetric(ss, "valid")), int(SumMetric(ss, "depend")), int(SumMetric(ss, "other")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}
