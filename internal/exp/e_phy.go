package exp

// E21–E23: the physical-layer suite. E13 validates that protocols survive
// the move from the graph abstraction to SINR physics; these three measure
// the new axis itself — the grid-bucketed cutoff's fidelity against exact
// interference (E21), the capture effect as the decode threshold and the
// power profile vary (E22), and what collision detection does to a protocol
// designed for the no-CD model (E23). Every trial builds its model from the
// trial seed alone, keeping the suite's byte-identical-output contract at
// any -parallel value.

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RunE21 — SINR broadcast on the unified engine: the same Decay broadcast
// on the same deployment under the graph model, exact-interference SINR
// (CutoffFactor +Inf, the deleted internal/sinr loop's semantics), and the
// default grid-bucketed cutoff. The graph/SINR gap reproduces E13's
// cross-model finding on the unified engine; exact-vs-cutoff bounds the
// far-field approximation — at the default factor the completion times
// should be near-identical, and the table reports how often they agree
// exactly. One trial = one deployment measured three ways.
func RunE21(cfg Config) (*Report, error) {
	trials := 5
	nPoints := 100
	if cfg.Scale == Full {
		trials = 15
		nPoints = 220
	}
	exact := phy.SINRParams{CutoffFactor: math.Inf(1)}
	cut := phy.SINRParams{} // default cutoff
	grid := NewGrid("E21")
	grid.AddReps("sinr", trials, func(seed uint64) (Sample, error) {
		trng := xrand.New(seed)
		pts, g := connectedDeployment(nPoints, trng)
		gres, err := baseline.DecayBroadcast(g, 0, 0, seed)
		if err != nil {
			return Sample{}, err
		}
		gStep := completedOr(gres.CompleteStep, gres.Steps)
		eStep, _, err := decayBroadcastSINR(pts, g.N(), exact, seed)
		if err != nil {
			return Sample{}, err
		}
		cStep, _, err := decayBroadcastSINR(pts, g.N(), cut, seed)
		if err != nil {
			return Sample{}, err
		}
		return Sample{Values: V("gSteps", gStep, "eSteps", eStep, "cSteps", cStep,
			"agree", eStep == cStep)}, nil
	})
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	g := stats.Mean(Metric(results, "gSteps"))
	e := stats.Mean(Metric(results, "eSteps"))
	c := stats.Mean(Metric(results, "cSteps"))
	tb := &stats.Table{
		Title: "E21 — Decay broadcast: graph model vs exact SINR vs grid-bucketed cutoff (same points, unified engine)",
		Header: []string{"n", "trials", "graph steps", "sinr exact steps", "sinr cutoff steps",
			"exact/graph", "cutoff/exact", "exact==cutoff"},
	}
	tb.AddRowf(nPoints, len(results), g, e, c, e/math.Max(1, g), c/math.Max(1, e),
		fmt.Sprintf("%d/%d", int(SumMetric(results, "agree")), len(results)))
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE22 — the capture effect under Decay: at the default noise the decode
// range is 1 for every β, so the connectivity is fixed while the
// interference tolerance varies — β=1 decodes through an equal amount of
// interference (maximum capture), large β approaches the graph model's
// any-second-transmitter-kills-it behavior. A heterogeneous power profile
// (per-node powers spread over [1,16]) skews capture further toward loud
// nodes. Deliveries per transmission is the capture metric; completion
// shows what it buys the broadcast. One trial = one deployment + one power
// draw, swept over the β grid.
func RunE22(cfg Config) (*Report, error) {
	trials := 4
	nPoints := 90
	if cfg.Scale == Full {
		trials = 10
		nPoints = 200
	}
	type scenario struct {
		name string
		beta float64
		het  bool
	}
	scenarios := []scenario{
		{"beta=1", 1, false},
		{"beta=2", 2, false},
		{"beta=4", 4, false},
		{"beta=2 het-power", 2, true},
	}
	grid := NewGrid("E22")
	for _, sc := range scenarios {
		sc := sc
		grid.AddReps(sc.name, trials, func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			pts, g := connectedDeployment(nPoints, trng)
			params := phy.SINRParams{Beta: sc.beta}
			if sc.het {
				powers := make([]float64, g.N())
				for i := range powers {
					powers[i] = 1 + 15*trng.Float64()
				}
				params.Powers = powers
			}
			step, res, err := decayBroadcastSINR(pts, g.N(), params, seed)
			if err != nil {
				return Sample{}, err
			}
			perTx := 0.0
			if res.Transmissions > 0 {
				perTx = float64(res.Deliveries) / float64(res.Transmissions)
			}
			return Sample{Values: V("step", step, "perTx", perTx,
				"collisions", res.Collisions)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E22 — capture effect: Decay broadcast under SINR as β and the power profile vary (decode range fixed at 1)",
		Header: []string{"scenario", "trials", "mean complete step", "deliveries per tx", "mean collisions"},
	}
	for _, sc := range scenarios {
		ss := groups[sc.name]
		tb.AddRowf(sc.name, len(ss), stats.Mean(Metric(ss, "step")),
			stats.Mean(Metric(ss, "perTx")), stats.Mean(Metric(ss, "collisions")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE23 — collision detection vs Algorithm 7, across graph classes: Radio
// MIS is designed for the no-CD model, where a collision is
// indistinguishable from silence. Under phy.CollisionCD the marker arrives
// as a non-nil message, and the algorithm's mark/announce phases read
// "heard something" as a neighbor's signal — extra (true-positive-ish)
// detections that can steer the run to a different MIS. The table counts
// valid runs per class under both models and how often the two models
// produce the *same* MIS: divergence concentrates in the dense classes,
// where multi-transmitter steps are common, while validity holds either
// way — CD changes the execution without breaking correctness at these
// scales. One trial = one graph + one run per model.
func RunE23(cfg Config) (*Report, error) {
	trials := 4
	n := 64
	if cfg.Scale == Full {
		trials = 10
		n = 144
	}
	classes := []string{"grid", "gnp", "udg", "cliquechain"}
	grid := NewGrid("E23")
	for _, class := range classes {
		class := class
		grid.AddReps(class, trials, func(seed uint64) (Sample, error) {
			g, err := gen.ByName(class, n, seed)
			if err != nil {
				return Sample{}, err
			}
			runWith := func(model phy.Model) (*mis.Outcome, error) {
				return mis.RunOnEngine(g, mis.Params{}, seed, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
					opts.PHY = model
					return radio.Run(g, factory, opts)
				})
			}
			noCD, err := runWith(phy.NewCollision())
			if err != nil {
				return Sample{}, err
			}
			cd, err := runWith(phy.NewCollisionCD())
			if err != nil {
				return Sample{}, err
			}
			sameMIS := len(noCD.MIS) == len(cd.MIS)
			if sameMIS {
				for i := range noCD.MIS {
					if noCD.MIS[i] != cd.MIS[i] {
						sameMIS = false
						break
					}
				}
			}
			return Sample{Values: V(
				"noCDdone", noCD.Completed, "noCDvalid", noCD.Completed && mis.Verify(g, noCD.MIS) == nil,
				"cdDone", cd.Completed, "cdValid", cd.Completed && mis.Verify(g, cd.MIS) == nil,
				"sameMIS", sameMIS, "noCDsize", len(noCD.MIS), "cdSize", len(cd.MIS),
			)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E23 — Radio MIS under no-CD vs collision-detection reception, per graph class",
		Header: []string{"class", "trials", "no-CD valid", "CD valid", "same MIS", "no-CD |MIS|", "CD |MIS|"},
	}
	for _, class := range classes {
		ss := groups[class]
		tb.AddRowf(class, len(ss),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "noCDvalid")), len(ss)),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "cdValid")), len(ss)),
			fmt.Sprintf("%d/%d", int(SumMetric(ss, "sameMIS")), len(ss)),
			stats.Mean(Metric(ss, "noCDsize")), stats.Mean(Metric(ss, "cdSize")))
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}
