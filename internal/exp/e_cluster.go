package exp

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/mpx"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// clusterWorkloads are the E5/E6/E12 instances: geometric classes where
// α = poly(D) and general-graph classes where n ≫ α, so the paper's
// log_D α vs log_D n gap is visible.
func clusterWorkloads(cfg Config, rng *xrand.RNG) ([]workload, error) {
	var ws []workload
	gridSide, chainK, chainS := 16, 12, 12
	if cfg.Scale == Full {
		gridSide, chainK, chainS = 32, 24, 24
	}
	grid, err := newWorkload("grid", gen.Grid(gridSide, gridSide), rng)
	if err != nil {
		return nil, err
	}
	ws = append(ws, grid)
	udg, _, err := gen.ConnectedUDG(gridSide*gridSide/2, 8, 60, rng)
	if err != nil {
		return nil, err
	}
	w, err := newWorkload("udg", udg, rng)
	if err != nil {
		return nil, err
	}
	ws = append(ws, w)
	// Clique chain: α = k but n = k·s — the general-graph case where dense
	// candidate sets hurt.
	chain, err := newWorkload("cliquechain", gen.CliqueChain(chainK, chainS), rng)
	if err != nil {
		return nil, err
	}
	ws = append(ws, chain)
	// Lollipop: tiny α, long tail.
	lol, err := newWorkload("lollipop", gen.Lollipop(chainS*2, chainK*4), rng)
	if err != nil {
		return nil, err
	}
	ws = append(ws, lol)
	return ws, nil
}

// RunE5 — Theorem 2: with MIS centers, for ≥ 0.77 of the scales j the
// expected distance from a node to its cluster center is O(log_D α/β) =
// O(b·2^j). We measure E[dist] per j for MIS centers and for all-node
// centers (CD21's Theorem 2.2 regime, bound log_D n·2^j), on both geometric
// and general graphs. One trial = one sampled node at one scale j,
// measuring both center sets on the same trial randomness.
func RunE5(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe5)
	trials := 300
	samples := 6
	if cfg.Scale == Full {
		trials = 2000
		samples = 16
	}
	ws, err := clusterWorkloads(cfg, rng)
	if err != nil {
		return nil, err
	}
	type jRange struct {
		b          int
		jmin, jmax int
		misSize    int
	}
	ranges := make([]jRange, len(ws))
	grid := NewGrid("E5")
	for wi, w := range ws {
		misSet := w.g.GreedyMinDegreeMIS()
		all := make([]int, w.g.N())
		for i := range all {
			all[i] = i
		}
		b, err := mpx.B(w.diam, max(2, w.alpha))
		if err != nil {
			return nil, err
		}
		jmin, jmax := mpx.JRange(w.diam)
		ranges[wi] = jRange{b: b, jmin: jmin, jmax: jmax, misSize: len(misSet)}
		g := w.g
		for j := jmin; j <= jmax; j++ {
			beta := math.Pow(2, -float64(j))
			grid.AddReps(fmt.Sprintf("%s/j=%d", w.name, j), samples, func(seed uint64) (Sample, error) {
				trng := xrand.New(seed)
				v := trng.Intn(g.N())
				m, err := mpx.MeanCenterDistance(g, misSet, v, beta, trials, trng)
				if err != nil {
					return Sample{}, err
				}
				a, err := mpx.MeanCenterDistance(g, all, v, beta, trials, trng)
				if err != nil {
					return Sample{}, err
				}
				return Sample{Values: V("distMIS", m, "distAll", a)}, nil
			})
		}
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E5 — expected node→center distance per scale j (mean over sampled nodes)",
		Header: []string{"graph", "D", "α̂", "|MIS|", "j", "β", "E[dist] MIS-ctr", "bound b·2^j", "within 5×bound", "E[dist] all-ctr", "ratio all/MIS"},
	}
	goodShare := &stats.Table{
		Title:  "E5 — share of scales j within the Theorem 2 bound (theory: ≥ 0.77)",
		Header: []string{"graph", "centers", "good j / total", "share"},
	}
	for wi, w := range ws {
		r := ranges[wi]
		goodMIS, total := 0, 0
		for j := r.jmin; j <= r.jmax; j++ {
			ss := groups[fmt.Sprintf("%s/j=%d", w.name, j)]
			beta := math.Pow(2, -float64(j))
			mMIS := stats.Mean(Metric(ss, "distMIS"))
			mAll := stats.Mean(Metric(ss, "distAll"))
			bound := mpx.TheoremTwoBound(r.b, j, 1)
			within := mMIS <= 5*bound
			if within {
				goodMIS++
			}
			total++
			ratio := math.Inf(1)
			if mMIS > 0 {
				ratio = mAll / mMIS
			}
			tb.AddRowf(w.name, w.diam, w.alpha, r.misSize, j, beta, mMIS, bound, within, mAll, ratio)
		}
		goodShare.AddRowf(w.name, "mis", fmt.Sprintf("%d/%d", goodMIS, total), float64(goodMIS)/float64(total))
	}
	rep := &Report{}
	rep.Add(tb)
	rep.Add(goodShare)
	return runE5Blob(cfg, rep)
}

// runE5Blob isolates the mechanism behind Theorem 2 with an adversarial
// instance: a “blob lollipop” — a path of length L with a clique of M nodes
// attached at the far end, measured from the tail tip. With all-node centers
// the blob contributes M candidates whose max exponential shift grows like
// ln M / β, so for moderate scales the far blob captures the tail tip and
// E[dist] jumps to ≈ L (the log_D n regime of CD21's Theorem 2.2). With MIS
// centers the blob collapses to a single candidate (it is a clique: α-mass
// 1) and E[dist] stays at the Theorem 2 level O(b·2^j), independent of M.
func runE5Blob(cfg Config, rep *Report) (*Report, error) {
	const tail = 48
	const j = 3 // β = 1/8
	beta := math.Pow(2, -float64(j))
	blobs := []int{16, 64, 256}
	trials := 400
	if cfg.Scale == Full {
		blobs = append(blobs, 1024)
		trials = 3000
	}
	grid := NewGrid("E5b")
	ns := make([]int, len(blobs))
	for mi, m := range blobs {
		g := gen.Lollipop(m, tail)
		ns[mi] = g.N()
		v := g.N() - 1 // tail tip
		misSet := g.GreedyMinDegreeMIS()
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		grid.Add(fmt.Sprintf("M=%d", m), func(seed uint64) (Sample, error) {
			trng := xrand.New(seed)
			dMIS, err := mpx.MeanCenterDistance(g, misSet, v, beta, trials, trng)
			if err != nil {
				return Sample{}, err
			}
			dAll, err := mpx.MeanCenterDistance(g, all, v, beta, trials, trng)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V("dMIS", dMIS, "dAll", dAll)}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:  "E5b — blob lollipop (tail 48, β=1/8, measured from tail tip): E[dist] vs blob size",
		Header: []string{"blob M", "n", "E[dist] MIS-ctr", "E[dist] all-ctr", "ratio all/MIS"},
	}
	for mi, m := range blobs {
		s := results[mi]
		dMIS, dAll := s.Values["dMIS"], s.Values["dAll"]
		ratio := math.Inf(1)
		if dMIS > 0 {
			ratio = dAll / dMIS
		}
		tb.AddRowf(m, ns[mi], dMIS, dAll, ratio)
	}
	rep.Add(tb)
	return rep, nil
}

// RunE6 — Lemma 5: at most 0.02·log₂D scales j are “bad” (the s_j growth
// condition fails). We compute the profiles m_i from real MIS sets and count
// bad scales per sampled node; one trial = one sampled node.
func RunE6(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe6)
	samples := 8
	if cfg.Scale == Full {
		samples = 32
	}
	ws, err := clusterWorkloads(cfg, rng)
	if err != nil {
		return nil, err
	}
	type jRange struct {
		b          int
		jmin, jmax int
	}
	ranges := make([]jRange, len(ws))
	grid := NewGrid("E6")
	for wi, w := range ws {
		misSet := w.g.GreedyMinDegreeMIS()
		b, err := mpx.B(w.diam, max(2, w.alpha))
		if err != nil {
			return nil, err
		}
		jmin, jmax := mpx.JRange(w.diam)
		ranges[wi] = jRange{b: b, jmin: jmin, jmax: jmax}
		g := w.g
		grid.AddReps(w.name, samples, func(seed uint64) (Sample, error) {
			v := xrand.New(seed).Intn(g.N())
			prof, err := mpx.DistanceProfile(g, misSet, v)
			if err != nil {
				return Sample{}, err
			}
			return Sample{Values: V("bad", prof.CountBadJs(jmin, jmax, b))}, nil
		})
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E6 — bad scales per node (Lemma 5 bound: 0.02·log₂D)",
		Header: []string{"graph", "D", "α̂", "b", "j range", "max bad j", "bound", "ok"},
	}
	for wi, w := range ws {
		r := ranges[wi]
		maxBad := int(stats.Max(Metric(groups[w.name], "bad")))
		bound := 0.02 * math.Log2(float64(w.diam))
		// The asymptotic bound rounds to ≥1 allowed bad scale at our sizes.
		ok := float64(maxBad) <= math.Max(1, math.Ceil(bound))
		tb.AddRowf(w.name, w.diam, w.alpha, r.b,
			fmt.Sprintf("[%d,%d]", r.jmin, r.jmax), maxBad, bound, ok)
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}

// RunE12 — ablation (§2.2): on identical graphs and seeds, compare
// Partition(β) against Partition(β, MIS): cluster counts, radii and center
// distances. The MIS restriction is what converts the log_D n dependence
// into log_D α. One trial = one Partition run; distance statistics are
// computed per trial and averaged across replicas.
func RunE12(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed ^ 0xe12)
	reps := 5
	if cfg.Scale == Full {
		reps = 20
	}
	ws, err := clusterWorkloads(cfg, rng)
	if err != nil {
		return nil, err
	}
	betas := make([]float64, len(ws))
	grid := NewGrid("E12")
	for wi, w := range ws {
		jmin, _ := mpx.JRange(w.diam)
		beta := math.Pow(2, -float64(jmin+1))
		betas[wi] = beta
		misSet := w.g.GreedyMinDegreeMIS()
		all := make([]int, w.g.N())
		for i := range all {
			all[i] = i
		}
		g := w.g
		for _, mode := range []struct {
			name    string
			centers []int
		}{{"mis", misSet}, {"all", all}} {
			grid.AddReps(w.name+"/"+mode.name, reps, func(seed uint64) (Sample, error) {
				a, err := mpx.Partition(g, mode.centers, beta, xrand.New(seed))
				if err != nil {
					return Sample{}, err
				}
				var dists []float64
				for u := range a.Center {
					if a.Hops[u] >= 0 {
						dists = append(dists, float64(a.Hops[u]))
					}
				}
				return Sample{Values: V(
					"clusters", a.NumClusters(),
					"maxRadius", a.MaxRadius(),
					"meanDist", stats.Mean(dists),
					"p95Dist", stats.Quantile(dists, 0.95),
				)}, nil
			})
		}
	}
	results, err := grid.Run(cfg)
	if err != nil {
		return nil, err
	}
	groups := ByGroup(results)
	tb := &stats.Table{
		Title:  "E12 — Partition(β) vs Partition(β, MIS) on identical graphs",
		Header: []string{"graph", "β", "centers", "clusters", "max radius", "mean dist", "p95 dist"},
	}
	for wi, w := range ws {
		for _, mode := range []string{"mis", "all"} {
			ss := groups[w.name+"/"+mode]
			tb.AddRowf(w.name, betas[wi], mode,
				stats.Mean(Metric(ss, "clusters")), stats.Max(Metric(ss, "maxRadius")),
				stats.Mean(Metric(ss, "meanDist")), stats.Mean(Metric(ss, "p95Dist")))
		}
	}
	rep := &Report{}
	rep.Add(tb)
	return rep, nil
}
