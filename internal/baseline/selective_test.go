package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestPrimesInRange(t *testing.T) {
	got := primesInRange(10, 30)
	want := []int{11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("primes %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primes %v, want %v", got, want)
		}
	}
	if ps := primesInRange(0, 2); len(ps) != 1 || ps[0] != 2 {
		t.Fatalf("primesInRange(0,2) = %v", ps)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSelectiveFamilyValidation(t *testing.T) {
	if _, err := NewSelectiveFamily(0, 1); err == nil {
		t.Fatal("want n error")
	}
	if _, err := NewSelectiveFamily(10, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := NewSelectiveFamily(10, 11); err == nil {
		t.Fatal("want k>n error")
	}
}

func TestSelectiveFamilyProperty(t *testing.T) {
	// Exhaustive verification on small universes: every |A| ≤ k subset of
	// the sampled universe has each element isolated by some set.
	fam, err := NewSelectiveFamily(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	universe := []int{0, 1, 5, 17, 31, 32, 63, 40}
	if err := fam.VerifySelective(universe, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveFamilyPropertyRandomUniverses(t *testing.T) {
	fam, err := NewSelectiveFamily(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(128)
		if err := fam.VerifySelective(perm[:7], 4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSelectiveFamilyContainsConsistent(t *testing.T) {
	fam, err := NewSelectiveFamily(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range fam.Sets {
		for _, x := range set {
			if !fam.Contains(i, int(x)) {
				t.Fatalf("member table inconsistent at set %d element %d", i, x)
			}
		}
	}
}

func TestSelectiveBroadcastCompletes(t *testing.T) {
	for i, g := range []*graph.Graph{gen.Path(24), gen.Cycle(20), gen.Grid(5, 5), gen.Star(16)} {
		res, err := SelectiveBroadcast(g, 0, uint64(i))
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if res.CompleteStep < 0 {
			t.Fatalf("graph %d: incomplete within %d steps", i, res.Steps)
		}
	}
}

func TestSelectiveBroadcastDeterministicPerSeed(t *testing.T) {
	g := gen.Grid(4, 5)
	a, err := SelectiveBroadcast(g, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectiveBroadcast(g, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompleteStep != b.CompleteStep {
		t.Fatalf("non-deterministic: %d vs %d", a.CompleteStep, b.CompleteStep)
	}
}

func TestSelectiveBroadcastValidation(t *testing.T) {
	if _, err := SelectiveBroadcast(graph.New(0), 0, 1); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := SelectiveBroadcast(gen.Path(4), 9, 1); err == nil {
		t.Fatal("want range error")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := SelectiveBroadcast(disc, 0, 1); err == nil {
		t.Fatal("want disconnected error")
	}
}

func TestSelectiveFamilySizePolylog(t *testing.T) {
	// At fixed k the family size must grow polylogarithmically in n — the
	// whole point versus round robin's Θ(n) frames. A 100× larger universe
	// should grow the family by at most the ~(log ratio)² ≈ 4.5× factor
	// (we allow 8× for construction slack), not 100×.
	small, err := NewSelectiveFamily(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewSelectiveFamily(6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if large.Len() > 8*small.Len() {
		t.Fatalf("family size grew %d → %d for 100× universe; not polylog",
			small.Len(), large.Len())
	}
}
