package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRoundRobinBroadcastPath(t *testing.T) {
	g := gen.Path(20)
	res, err := RoundRobinBroadcast(g, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("incomplete")
	}
	if res.CompleteStep > RoundRobinBound(20, 19) {
		t.Fatalf("completion %d exceeds the deterministic bound %d",
			res.CompleteStep, RoundRobinBound(20, 19))
	}
	// Deterministic given the id assignment: identical for the same seed
	// (the seed only picks the arbitrary id permutation).
	res2, err := RoundRobinBroadcast(g, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep != res2.CompleteStep {
		t.Fatalf("same-seed runs differ: %d vs %d", res.CompleteStep, res2.CompleteStep)
	}
}

func TestRoundRobinBroadcastClasses(t *testing.T) {
	for i, g := range []*graph.Graph{gen.Grid(6, 6), gen.Clique(25), gen.Star(30), gen.CliqueChain(4, 5)} {
		res, err := RoundRobinBroadcast(g, 0, 0, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.CompleteStep < 0 {
			t.Fatalf("graph %d incomplete", i)
		}
	}
}

func TestRoundRobinValidation(t *testing.T) {
	if _, err := RoundRobinBroadcast(graph.New(0), 0, 0, 1); err == nil {
		t.Fatal("want empty error")
	}
	g := gen.Path(4)
	if _, err := RoundRobinBroadcast(g, 9, 0, 1); err == nil {
		t.Fatal("want range error")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := RoundRobinBroadcast(disc, 0, 0, 1); err == nil {
		t.Fatal("want disconnected error")
	}
}

func TestRoundRobinMuchSlowerThanDecay(t *testing.T) {
	// The whole point of the randomized literature: O(n·D) is far worse
	// than O(D log n) already at moderate sizes.
	g := gen.Path(60)
	rr, err := RoundRobinBroadcast(g, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecayBroadcast(g, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.CompleteStep <= 2*dec.CompleteStep {
		t.Fatalf("round robin (%d) should be much slower than decay (%d)",
			rr.CompleteStep, dec.CompleteStep)
	}
}
