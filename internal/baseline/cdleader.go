package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// CDLeaderElection is the classic single-hop leader election *with collision
// detection* (the stronger model discussed in §1.5.2 of the paper, which its
// algorithms deliberately avoid): candidates perform a deterministic binary
// search over their random Θ(log n)-bit IDs. In each bit round, surviving
// candidates whose current bit is 1 transmit; hearing a transmission or a
// collision tells everyone that a 1-candidate exists, eliminating the
// 0-candidates. After all bits, exactly the maximum-ID candidate survives
// and announces itself.
//
// Runs in exactly bits+1 steps on a clique — the O(log n) that collision
// detection buys in single-hop networks, against which the no-CD algorithms'
// O(log² n)-type costs are contrasted (the Ω(log n/ log log n) lower bound
// for CD and Ω(log² n) without CD, §1.5).
//
// The graph must be a clique (single-hop network); other topologies return
// an error after a structural check.
func CDLeaderElection(g *graph.Graph, bits int, seed uint64) (*ElectionResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != n-1 {
			return nil, fmt.Errorf("baseline: CD election requires a single-hop network (clique); node %d has degree %d", v, g.Degree(v))
		}
	}
	if bits <= 0 {
		bits = 2 * bitsFor(n)
	}
	// Candidate sampling as in Algorithm 3 (Θ(log n / n)), minimum one
	// candidate by resampling.
	rng := xrand.New(seed ^ 0xcd1e)
	p := 2 * logf(n) / float64(n)
	if p > 1 {
		p = 1
	}
	er := &ElectionResult{}
	var ids map[int]int64
	for retry := 0; ; retry++ {
		ids = map[int]int64{}
		for v := 0; v < n; v++ {
			if rng.Bernoulli(p) {
				ids[v] = int64(rng.Uint64() >> (64 - uint(bits)))
			}
		}
		if len(ids) > 0 {
			break
		}
		if retry > 20 {
			return nil, fmt.Errorf("baseline: no candidates after %d retries", retry)
		}
		er.Retries++
	}

	nodes := make([]*cdNode, n)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &cdNode{bits: bits}
		if id, ok := ids[info.Index]; ok {
			nd.candidate = true
			nd.id = id
		}
		nodes[info.Index] = nd
		return nd
	}
	res, err := radio.Run(g, factory, radio.Options{
		MaxSteps: bits + 2,
		Seed:     seed,
		PHY:      phy.NewCollisionCD(),
	})
	if err != nil {
		return nil, err
	}
	// The surviving candidate announced its full ID in the final step;
	// verify agreement across all nodes.
	want := int64(-1)
	for _, id := range ids {
		if id > want {
			want = id
		}
	}
	for v, nd := range nodes {
		if nd.candidate && nd.id == want {
			continue // the leader knows implicitly
		}
		if nd.learned != want {
			return nil, fmt.Errorf("baseline: node %d learned %d, leader is %d", v, nd.learned, want)
		}
	}
	er.Result = Result{
		CompleteStep:  res.Steps,
		Steps:         res.Steps,
		Transmissions: res.Transmissions,
		Levels:        bits,
		Winner:        want,
	}
	er.Candidates = len(ids)
	return er, nil
}

// cdNode runs the bit-by-bit elimination.
type cdNode struct {
	bits      int
	candidate bool
	id        int64
	alive     bool // still in the race (candidates only)
	started   bool
	learned   int64
	step      int
	done      bool
}

var _ radio.Protocol = (*cdNode)(nil)

func (c *cdNode) Act(step int) radio.Action {
	if !c.started {
		c.started = true
		c.alive = c.candidate
		c.learned = -1
	}
	switch {
	case c.step < c.bits:
		bit := c.bits - 1 - c.step // most significant bit first
		if c.alive && (c.id>>uint(bit))&1 == 1 {
			return radio.Transmit(struct{}{})
		}
	case c.step == c.bits:
		if c.alive {
			// The unique survivor announces its full ID.
			return radio.Transmit(c.id)
		}
	}
	return radio.Listen()
}

func (c *cdNode) Deliver(step int, msg radio.Message) {
	switch {
	case c.step < c.bits:
		heardOne := msg != nil // a delivery OR the collision marker
		bit := c.bits - 1 - c.step
		myBit := (c.id >> uint(bit)) & 1
		if c.alive && heardOne && myBit == 0 {
			// Someone with a 1 at this position exists: drop out.
			c.alive = false
		}
		// Transmitters hear nothing; an alive 1-candidate stays alive.
	case c.step == c.bits:
		if id, ok := msg.(int64); ok {
			c.learned = id
		}
	}
	c.step++
	if c.step > c.bits {
		c.done = true
	}
}

func (c *cdNode) Done() bool { return c.done }

func bitsFor(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

func logf(n int) float64 {
	l := 0.0
	for m := n; m > 1; m /= 2 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
