// Package baseline implements the classic algorithms the paper compares
// against, at full radio time-step fidelity:
//
//   - DecayBroadcast: the Bar-Yehuda–Goldreich–Itai broadcast — informed
//     nodes run Decay forever — with the O(D log n + log² n) running time
//     the paper cites as the general-graph classic [3].
//   - TruncatedDecayBroadcast: a Czumaj–Rytter/Kowalski–Pelc-inspired proxy
//     sweeping only ~log(n/D) probability levels, exhibiting the
//     O(D log(n/D) + log² n) shape of [8, 21].
//   - DecayLeaderElection: candidate sampling with probability Θ(log n / n)
//     followed by multi-source Decay broadcast of the highest ID — the
//     classic reduction the paper describes in §1.5.1 [6].
//
// All of these, unlike Compete, pay a log-factor per hop: their completion
// times scale as D·log rather than the paper's D·log_D α, which is exactly
// the gap experiments E7/E8 measure.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Result reports a baseline broadcast run.
type Result struct {
	// CompleteStep is the time-step at which all nodes were informed
	// (-1 if the budget ran out).
	CompleteStep int
	// Steps is the number of steps executed.
	Steps int
	// Transmissions counts transmit actions.
	Transmissions int64
	// Levels is the number of probability levels in the decay sweep.
	Levels int
	// Winner is the highest source rank (for multi-source runs).
	Winner int64
}

// decayNode is the informed-nodes-run-Decay protocol.
type decayNode struct {
	levels int
	best   int64
	hasMsg bool
	rng    *xrand.RNG
	stop   *bool
	step   int
	budget int
}

var _ radio.Protocol = (*decayNode)(nil)

func (d *decayNode) Act(step int) radio.Action {
	if !d.hasMsg {
		return radio.Listen()
	}
	level := step%d.levels + 1
	if d.rng.Bernoulli(math.Pow(2, -float64(level))) {
		return radio.Transmit(d.best)
	}
	return radio.Listen()
}

func (d *decayNode) Deliver(step int, msg radio.Message) {
	d.step = step + 1
	if msg == nil {
		return
	}
	if rank, ok := msg.(int64); ok && (!d.hasMsg || rank > d.best) {
		d.best = rank
		d.hasMsg = true
	}
}

func (d *decayNode) Done() bool { return *d.stop || d.step >= d.budget }

// run executes a decay-style multi-source broadcast with the given level
// count and returns when all nodes know the highest rank. model, when
// non-nil, selects the physical-layer reception model (radio.Options.PHY);
// g is then the abstraction the budget and connectivity check are derived
// from (for SINR, the decode-range connectivity graph).
func run(g *graph.Graph, sources map[int]int64, levels, maxSteps int, seed uint64, model phy.Model) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("baseline: no sources")
	}
	for s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("baseline: source %d out of range", s)
		}
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	if levels < 1 {
		levels = 1
	}
	if maxSteps <= 0 {
		d, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		logN := int(math.Ceil(math.Log2(float64(n + 1))))
		maxSteps = 60 * (d*logN + logN*logN + levels)
	}
	target := int64(math.MinInt64)
	for _, r := range sources {
		if r > target {
			target = r
		}
	}
	nodes := make([]*decayNode, n)
	stop := false
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &decayNode{levels: levels, rng: info.RNG, stop: &stop, budget: maxSteps}
		if rank, ok := sources[info.Index]; ok {
			nd.best = rank
			nd.hasMsg = true
		}
		nodes[info.Index] = nd
		return nd
	}
	completeStep := -1
	res, err := radio.Run(g, factory, radio.Options{
		MaxSteps: maxSteps,
		Seed:     seed,
		PHY:      model,
		OnStep: func(st radio.StepStats) {
			if completeStep >= 0 {
				return
			}
			for _, nd := range nodes {
				if !nd.hasMsg || nd.best != target {
					return
				}
			}
			completeStep = st.Step + 1
			stop = true
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		CompleteStep:  completeStep,
		Steps:         res.Steps,
		Transmissions: res.Transmissions,
		Levels:        levels,
		Winner:        target,
	}, nil
}

// DecayBroadcast runs the BGI broadcast from a single source. The sweep uses
// the full ⌈log₂ n⌉ probability levels.
func DecayBroadcast(g *graph.Graph, source int, maxSteps int, seed uint64) (*Result, error) {
	levels := int(math.Ceil(math.Log2(float64(g.N() + 1))))
	return run(g, map[int]int64{source: 1}, levels, maxSteps, seed, nil)
}

// DecayBroadcastPHY is DecayBroadcast under a pluggable reception model
// (DESIGN.md §7): delivery is decided by model while g supplies the budget,
// the connectivity check, and the parameter estimates — for SINR, pass the
// decode-range connectivity graph of the deployment the model was built
// over. The serve subsystem and radionet-sim use it to run the classic
// baseline under phy:sinr / phy:cd specs.
func DecayBroadcastPHY(g *graph.Graph, model phy.Model, source int, maxSteps int, seed uint64) (*Result, error) {
	levels := int(math.Ceil(math.Log2(float64(g.N() + 1))))
	return run(g, map[int]int64{source: 1}, levels, maxSteps, seed, model)
}

// TruncatedDecayBroadcast sweeps only ~log₂(n/D)+2 levels, the
// Czumaj–Rytter/Kowalski–Pelc-flavoured improvement: when D is large the
// network is locally sparse and deep levels are wasted.
func TruncatedDecayBroadcast(g *graph.Graph, source int, maxSteps int, seed uint64) (*Result, error) {
	n := g.N()
	d, err := g.DiameterApprox()
	if err != nil {
		return nil, err
	}
	if d < 1 {
		d = 1
	}
	levels := int(math.Ceil(math.Log2(float64(n)/float64(d)))) + 2
	if levels < 2 {
		levels = 2
	}
	return run(g, map[int]int64{source: 1}, levels, maxSteps, seed, nil)
}

// MultiSourceDecay broadcasts the highest of several source ranks (used by
// leader election and by tests of the multi-source property).
func MultiSourceDecay(g *graph.Graph, sources map[int]int64, maxSteps int, seed uint64) (*Result, error) {
	levels := int(math.Ceil(math.Log2(float64(g.N() + 1))))
	return run(g, sources, levels, maxSteps, seed, nil)
}

// ElectionResult extends Result for leader election runs.
type ElectionResult struct {
	Result
	// Candidates is the number of self-nominated candidates.
	Candidates int
	// Retries counts zero-candidate resamples.
	Retries int
}

// DecayLeaderElection is the classic reduction (§1.5.1 of the paper):
// sample Θ(log n / n) candidates with random IDs and broadcast the maximum.
func DecayLeaderElection(g *graph.Graph, maxSteps int, seed uint64) (*ElectionResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	rng := xrand.New(seed ^ 0xfeed_beef)
	p := 2 * math.Log(float64(n)+1) / float64(n)
	if p > 1 {
		p = 1
	}
	er := &ElectionResult{}
	for retry := 0; ; retry++ {
		sources := map[int]int64{}
		for v := 0; v < n; v++ {
			if rng.Bernoulli(p) {
				sources[v] = int64(rng.Uint64() >> 16)
			}
		}
		if len(sources) == 0 {
			if retry > 20 {
				return nil, fmt.Errorf("baseline: no candidates after %d retries", retry)
			}
			er.Retries++
			continue
		}
		res, err := MultiSourceDecay(g, sources, maxSteps, seed+uint64(retry))
		if err != nil {
			return nil, err
		}
		er.Result = *res
		er.Candidates = len(sources)
		return er, nil
	}
}
