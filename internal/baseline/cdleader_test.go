package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestCDLeaderElectionClique(t *testing.T) {
	g := gen.Clique(40)
	for seed := uint64(0); seed < 8; seed++ {
		er, err := CDLeaderElection(g, 0, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if er.Candidates < 1 {
			t.Fatalf("seed %d: no candidates", seed)
		}
		if er.CompleteStep <= 0 {
			t.Fatalf("seed %d: bad completion %d", seed, er.CompleteStep)
		}
	}
}

func TestCDLeaderElectionIsFast(t *testing.T) {
	// Collision detection buys O(log n): the election must finish in
	// bits+2 steps regardless of candidate count.
	g := gen.Clique(64)
	er, err := CDLeaderElection(g, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if er.CompleteStep > 14 {
		t.Fatalf("CD election took %d steps, want ≤ bits+2 = 14", er.CompleteStep)
	}
}

func TestCDLeaderElectionRejectsMultiHop(t *testing.T) {
	if _, err := CDLeaderElection(gen.Path(5), 0, 1); err == nil {
		t.Fatal("want single-hop requirement error")
	}
	if _, err := CDLeaderElection(graph.New(0), 0, 1); err == nil {
		t.Fatal("want empty error")
	}
}

func TestCDLeaderElectionSingleNode(t *testing.T) {
	er, err := CDLeaderElection(gen.Clique(1), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if er.Candidates != 1 {
		t.Fatalf("candidates %d", er.Candidates)
	}
}
