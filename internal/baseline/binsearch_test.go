package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestBinarySearchLeaderElection(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(20)},
		{"grid", gen.Grid(5, 6)},
		{"clique", gen.Clique(24)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			er, err := BinarySearchLeaderElection(tc.g, 8, 3)
			if err != nil {
				t.Fatal(err)
			}
			if er.Winner < 0 {
				t.Fatalf("winner %d", er.Winner)
			}
			if er.Candidates != tc.g.N() {
				t.Fatalf("candidates %d, want all %d nodes", er.Candidates, tc.g.N())
			}
		})
	}
}

func TestBinarySearchElectionUDG(t *testing.T) {
	rng := xrand.New(4)
	g, _, err := gen.ConnectedUDG(80, 8, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BinarySearchLeaderElection(g, 10, 5); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySearchElectionTimeScalesWithBits(t *testing.T) {
	g := gen.Path(16)
	a, err := BinarySearchLeaderElection(g, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BinarySearchLeaderElection(g, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Completion is exactly bits × phaseLen: doubling bits doubles time —
	// the O(log n × broadcast) shape of the reduction.
	if b.CompleteStep != 2*a.CompleteStep {
		t.Fatalf("8-bit run %d vs 4-bit run %d, want exact doubling", b.CompleteStep, a.CompleteStep)
	}
}

func TestBinarySearchElectionValidation(t *testing.T) {
	if _, err := BinarySearchLeaderElection(graph.New(0), 8, 1); err == nil {
		t.Fatal("want empty error")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := BinarySearchLeaderElection(disc, 8, 1); err == nil {
		t.Fatal("want disconnected error")
	}
	if _, err := BinarySearchLeaderElection(gen.Path(4), 64, 1); err == nil {
		t.Fatal("want bits bound error")
	}
}
