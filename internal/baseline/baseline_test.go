package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestDecayBroadcastPath(t *testing.T) {
	g := gen.Path(60)
	res, err := DecayBroadcast(g, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteStep < 0 {
		t.Fatal("BGI broadcast incomplete")
	}
	if res.Winner != 1 {
		t.Fatalf("winner %d", res.Winner)
	}
}

func TestDecayBroadcastClasses(t *testing.T) {
	rng := xrand.New(2)
	udg, _, err := gen.ConnectedUDG(100, 7, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := gen.GNPConnected(80, 0.08, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range []*graph.Graph{gen.Grid(8, 8), gen.Clique(40), udg, gnp, gen.CliqueChain(5, 6)} {
		res, err := DecayBroadcast(g, 0, 0, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.CompleteStep < 0 {
			t.Fatalf("graph %d: incomplete", i)
		}
	}
}

func TestTruncatedDecayBroadcastPath(t *testing.T) {
	// On a path n/D ≈ 1, so the truncated sweep uses ~2 levels and should
	// finish faster than the full sweep for the same seed.
	g := gen.Path(120)
	full, err := DecayBroadcast(g, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := TruncatedDecayBroadcast(g, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.CompleteStep < 0 || full.CompleteStep < 0 {
		t.Fatal("incomplete")
	}
	if trunc.Levels >= full.Levels {
		t.Fatalf("truncated levels %d should be below full %d", trunc.Levels, full.Levels)
	}
	if trunc.CompleteStep >= full.CompleteStep*2 {
		t.Fatalf("truncated (%d) much slower than full (%d)", trunc.CompleteStep, full.CompleteStep)
	}
}

func TestMultiSourceDecayHighestWins(t *testing.T) {
	g := gen.Grid(6, 6)
	res, err := MultiSourceDecay(g, map[int]int64{0: 5, 35: 77}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 77 {
		t.Fatalf("winner %d", res.Winner)
	}
	if res.CompleteStep < 0 {
		t.Fatal("incomplete")
	}
}

func TestDecayLeaderElection(t *testing.T) {
	g := gen.Grid(7, 7)
	er, err := DecayLeaderElection(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if er.CompleteStep < 0 {
		t.Fatal("election incomplete")
	}
	if er.Candidates < 1 {
		t.Fatal("no candidates")
	}
}

func TestValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := DecayBroadcast(graph.New(0), 0, 0, 1); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := run(g, nil, 3, 100, 1, nil); err == nil {
		t.Fatal("want no-sources error")
	}
	if _, err := run(g, map[int]int64{9: 1}, 3, 100, 1, nil); err == nil {
		t.Fatal("want range error")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := DecayBroadcast(disc, 0, 0, 1); err == nil {
		t.Fatal("want disconnected error")
	}
}

func TestDecayBroadcastDeterministic(t *testing.T) {
	g := gen.Grid(5, 5)
	a, err := DecayBroadcast(g, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecayBroadcast(g, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompleteStep != b.CompleteStep {
		t.Fatalf("non-deterministic: %d vs %d", a.CompleteStep, b.CompleteStep)
	}
}

func TestDecayBroadcastScalesWithDLogN(t *testing.T) {
	// Shape check: on paths, completion ≈ c·D·log n. The ratio
	// complete/(D·levels) should stay within a modest band as n doubles.
	ratios := []float64{}
	for _, n := range []int{40, 80, 160} {
		g := gen.Path(n)
		res, err := DecayBroadcast(g, 0, 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompleteStep < 0 {
			t.Fatalf("n=%d incomplete", n)
		}
		ratios = append(ratios, float64(res.CompleteStep)/float64((n-1)*res.Levels))
	}
	for _, r := range ratios {
		if r < 0.05 || r > 3 {
			t.Fatalf("ratio %v outside plausibility band (all=%v)", r, ratios)
		}
	}
}
