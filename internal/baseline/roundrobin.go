package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// RoundRobinBroadcast is the trivial deterministic broadcast: time is
// divided into frames of n slots, and the node with identifier i transmits
// (if informed) only in slot i, guaranteeing collision-freedom and an
// O(n·D) bound. It is the deterministic strawman behind the §1.5.1 survey —
// Kowalski's O(n log D) algorithm improves it with selective families, and
// the paper's randomized algorithms beat both by orders of magnitude.
//
// Note the model relaxation: round-robin needs unique identifiers in [0, n),
// which the ad-hoc model does not provide. Identifiers are assigned by a
// seeded random permutation of the engine indices — modeling the arbitrary
// (adversarial) assignment the O(n·D) bound is about; with a lucky
// assignment (ids increasing along a path) round-robin pipelines to O(n+D).
func RoundRobinBroadcast(g *graph.Graph, source int, maxSteps int, seed uint64) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("baseline: source %d out of range", source)
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	if maxSteps <= 0 {
		d, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		maxSteps = 2*n*(d+2) + n
	}
	ids := xrand.New(seed ^ 0x1d5).Perm(n)
	nodes := make([]*rrNode, n)
	stop := false
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &rrNode{id: ids[info.Index], n: n, stop: &stop, budget: maxSteps}
		if info.Index == source {
			nd.informed = true
		}
		nodes[info.Index] = nd
		return nd
	}
	completeStep := -1
	res, err := radio.Run(g, factory, radio.Options{
		MaxSteps: maxSteps,
		Seed:     seed,
		OnStep: func(st radio.StepStats) {
			if completeStep >= 0 {
				return
			}
			for _, nd := range nodes {
				if !nd.informed {
					return
				}
			}
			completeStep = st.Step + 1
			stop = true
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		CompleteStep:  completeStep,
		Steps:         res.Steps,
		Transmissions: res.Transmissions,
		Levels:        n, // slots per frame
		Winner:        1,
	}, nil
}

// rrNode transmits in its dedicated slot when informed.
type rrNode struct {
	id       int
	n        int
	informed bool
	step     int
	budget   int
	stop     *bool
}

var _ radio.Protocol = (*rrNode)(nil)

func (r *rrNode) Act(step int) radio.Action {
	if r.informed && step%r.n == r.id {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}

func (r *rrNode) Deliver(step int, msg radio.Message) {
	r.step = step + 1
	if msg != nil {
		r.informed = true
	}
}

func (r *rrNode) Done() bool { return *r.stop || r.step >= r.budget }

// RoundRobinBound returns the worst-case completion bound n·(D+1) used in
// tests and tables.
func RoundRobinBound(n, d int) int {
	return n * (d + 1)
}
