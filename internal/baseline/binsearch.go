package baseline

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// BinarySearchLeaderElection is the other classic reduction the paper
// describes in §1.5.1: leader election via binary search for the highest ID
// in O(log n) × broadcasting time. Every node draws a random b-bit ID. The
// ID space is halved over b phases: in each phase, nodes whose ID lies in
// the upper half of the current interval flood a beacon for a fixed budget
// of T = Θ(D log n + log² n) steps (Decay-style); nodes that heard or
// originated the beacon move to the upper half, others to the lower half.
// With T large enough every phase's outcome is learned by all nodes whp, so
// all nodes converge to the same singleton interval — the maximum ID.
//
// Returns the agreed leader ID and checks network-wide agreement.
func BinarySearchLeaderElection(g *graph.Graph, bits int, seed uint64) (*ElectionResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	if bits <= 0 {
		bits = 2 * bitsFor(n)
	}
	if bits > 30 {
		return nil, fmt.Errorf("baseline: bits=%d too large (≤ 30)", bits)
	}
	d, err := g.DiameterApprox()
	if err != nil {
		return nil, err
	}
	levels := int(math.Ceil(math.Log2(float64(n + 1))))
	phaseLen := 14 * (d*levels + levels*levels) // broadcast budget per phase
	rng := xrand.New(seed ^ 0xb15ea)
	ids := make([]int64, n)
	maxID := int64(-1)
	for v := range ids {
		ids[v] = int64(rng.Uint64() >> (64 - uint(bits)))
		if ids[v] > maxID {
			maxID = ids[v]
		}
	}
	nodes := make([]*bsNode, n)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &bsNode{
			id:       ids[info.Index],
			bits:     bits,
			phaseLen: phaseLen,
			levels:   levels,
			hi:       int64(1) << uint(bits),
			rng:      info.RNG,
		}
		nodes[info.Index] = nd
		return nd
	}
	res, err := radio.Run(g, factory, radio.Options{
		MaxSteps: bits*phaseLen + 1,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	// Agreement check: every node's final interval must be the singleton
	// holding the true maximum.
	for v, nd := range nodes {
		if nd.lo != maxID || nd.hi != maxID+1 {
			return nil, fmt.Errorf("baseline: node %d converged to [%d,%d), leader is %d",
				v, nd.lo, nd.hi, maxID)
		}
	}
	return &ElectionResult{
		Result: Result{
			CompleteStep:  res.Steps,
			Steps:         res.Steps,
			Transmissions: res.Transmissions,
			Levels:        levels,
			Winner:        maxID,
		},
		Candidates: n, // every node competes
	}, nil
}

// bsNode runs the interval-halving protocol.
type bsNode struct {
	id       int64
	bits     int
	phaseLen int
	levels   int
	lo, hi   int64 // current interval [lo, hi)
	heardYes bool
	rng      *xrand.RNG
	step     int
	done     bool
}

var _ radio.Protocol = (*bsNode)(nil)

// mid returns the current interval's midpoint.
func (b *bsNode) mid() int64 { return (b.lo + b.hi) / 2 }

// active reports whether this node beacons in the current phase: its ID is
// in the upper half of the current interval.
func (b *bsNode) active() bool {
	return b.id >= b.mid() && b.id < b.hi && b.id >= b.lo
}

func (b *bsNode) Act(step int) radio.Action {
	if b.done {
		return radio.Listen()
	}
	if b.active() || b.heardYes {
		// Informed nodes flood the beacon Decay-style.
		level := b.step%b.levels + 1
		if b.rng.Bernoulli(math.Pow(2, -float64(level))) {
			return radio.Transmit(beacon{})
		}
	}
	return radio.Listen()
}

// beacon is the phase token; content-free (the phase index is implied by
// the synchronized clock).
type beacon struct{}

func (b *bsNode) Deliver(step int, msg radio.Message) {
	if msg != nil {
		b.heardYes = true
	}
	b.step++
	if b.step%b.phaseLen == 0 {
		if b.heardYes || b.active() {
			b.lo = b.mid()
		} else {
			b.hi = b.mid()
		}
		b.heardYes = false
		if b.step/b.phaseLen >= b.bits {
			b.done = true
		}
	}
}

func (b *bsNode) Done() bool { return b.done }
