package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// This file implements strongly-selective families and the deterministic
// broadcast built on them — the classic combinatorial machinery behind the
// deterministic strand the paper surveys in §1.5.1 (Kowalski's O(n log D)
// uses related selector objects; the simple construction below yields the
// textbook O(D·k²·log n) bound for max degree k).
//
// A family F of subsets of [n] is (n,k)-strongly-selective when for every
// set A ⊆ [n] with |A| ≤ k and every a ∈ A there is a set S ∈ F with
// A ∩ S = {a}. Running one radio step per set S (members of S transmit if
// informed) guarantees every node with an informed neighbor and at most k
// informed neighbors receives within one pass of F.

// SelectiveFamily is an ordered list of subsets of [0,n).
type SelectiveFamily struct {
	N    int
	Sets [][]int32
	// member[i] lists the set-indices containing i (for O(1) Act checks).
	member [][]int32
}

// NewSelectiveFamily builds an (n,k)-strongly-selective family via the
// modular (prime residue) construction: the sets {x ≡ r mod p} over all
// primes p in (k·⌈log_k n⌉ .. 2·k·⌈log_k n⌉] and residues r < p. Size
// O(k²·log²n / log²k); selectivity follows since two distinct elements can
// collide modulo fewer than log_p(n) of the primes, so fewer than |A|·log
// primes are "spoiled" for a given a ∈ A while more are available.
func NewSelectiveFamily(n, k int) (*SelectiveFamily, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: selective family needs n ≥ 1")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: selective family needs 1 ≤ k ≤ n, got k=%d", k)
	}
	// Selectivity needs enough primes: for a target a ∈ A, another element
	// b ≠ a "spoils" prime p when p divides a−b; since |a−b| < n, at most
	// ⌊log_m n⌋ primes above m are spoiled per b, so (k−1)·⌈log_m n⌉ + 1
	// primes suffice. We take twice that for slack, drawn from (m, ∞) with
	// m = max(k+1, k·⌈log₂ n⌉) so each set isolates small-A intersections.
	m := k * ceilLog2(n)
	if m < k+1 {
		m = k + 1
	}
	logMN := 1
	for pow := m; pow < n; pow *= m {
		logMN++
	}
	needed := 2*((k-1)*logMN+1) + 1
	primes := primesInRange(m+1, 16*m+64)
	if len(primes) > needed {
		primes = primes[:needed]
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("baseline: no primes above %d", m)
	}
	f := &SelectiveFamily{N: n, member: make([][]int32, n)}
	for _, p := range primes {
		for r := 0; r < p; r++ {
			var set []int32
			for x := r; x < n; x += p {
				set = append(set, int32(x))
			}
			if len(set) == 0 {
				continue
			}
			idx := int32(len(f.Sets))
			f.Sets = append(f.Sets, set)
			for _, x := range set {
				f.member[x] = append(f.member[x], idx)
			}
		}
	}
	return f, nil
}

// Contains reports whether element x is in set i.
func (f *SelectiveFamily) Contains(i, x int) bool {
	for _, idx := range f.member[x] {
		if int(idx) == i {
			return true
		}
	}
	return false
}

// Len returns the family size (steps per pass).
func (f *SelectiveFamily) Len() int { return len(f.Sets) }

// VerifySelective exhaustively checks the selectivity property for all sets
// A of size ≤ k drawn from the given universe subset (intended for tests;
// exponential in |universe| choose k).
func (f *SelectiveFamily) VerifySelective(universe []int, k int) error {
	var rec func(start int, chosen []int) error
	rec = func(start int, chosen []int) error {
		if len(chosen) >= 2 { // |A| = 1 is trivially selected by singletons mod p
			for _, a := range chosen {
				if !f.selects(chosen, a) {
					return fmt.Errorf("baseline: family fails to select %d from %v", a, chosen)
				}
			}
		}
		if len(chosen) == k {
			return nil
		}
		for i := start; i < len(universe); i++ {
			if err := rec(i+1, append(chosen, universe[i])); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, nil)
}

// selects reports whether some set isolates a within A.
func (f *SelectiveFamily) selects(a []int, target int) bool {
	for _, si := range f.member[target] {
		hit := 0
		for _, x := range a {
			if f.Contains(int(si), x) {
				hit++
			}
		}
		if hit == 1 {
			return true
		}
	}
	return false
}

// SelectiveBroadcast runs deterministic broadcast using repeated passes of
// an (n,k)-strongly-selective family with k = Δ+1 (so every listener's
// informed in-neighborhood is always coverable): in step t of a pass, the
// informed members of set F[t] transmit. Each pass advances the frontier at
// least one hop, giving ≤ D passes ≈ O(D·k²·log²n) steps. IDs are engine
// indices (the same relaxation as RoundRobinBroadcast, documented there).
func SelectiveBroadcast(g *graph.Graph, source int, seed uint64) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty graph")
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("baseline: source %d out of range", source)
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	k := g.MaxDegree() + 1
	if k > n {
		k = n
	}
	fam, err := NewSelectiveFamily(n, k)
	if err != nil {
		return nil, err
	}
	d, err := g.DiameterApprox()
	if err != nil {
		return nil, err
	}
	maxSteps := (2*d + 4) * fam.Len()
	// Arbitrary id assignment, as for round robin.
	ids := xrand.New(seed ^ 0x5e1).Perm(n)
	nodes := make([]*selNode, n)
	stop := false
	factory := func(info radio.NodeInfo) radio.Protocol {
		nd := &selNode{fam: fam, id: ids[info.Index], stop: &stop, budget: maxSteps}
		if info.Index == source {
			nd.informed = true
		}
		nodes[info.Index] = nd
		return nd
	}
	completeStep := -1
	res, err := radio.Run(g, factory, radio.Options{
		MaxSteps: maxSteps,
		Seed:     seed,
		OnStep: func(st radio.StepStats) {
			if completeStep >= 0 {
				return
			}
			for _, nd := range nodes {
				if !nd.informed {
					return
				}
			}
			completeStep = st.Step + 1
			stop = true
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		CompleteStep:  completeStep,
		Steps:         res.Steps,
		Transmissions: res.Transmissions,
		Levels:        fam.Len(),
		Winner:        1,
	}, nil
}

// selNode transmits in the family sets containing its id, when informed.
type selNode struct {
	fam      *SelectiveFamily
	id       int
	informed bool
	step     int
	budget   int
	stop     *bool
}

var _ radio.Protocol = (*selNode)(nil)

func (s *selNode) Act(step int) radio.Action {
	if s.informed && s.fam.Contains(step%s.fam.Len(), s.id) {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}

func (s *selNode) Deliver(step int, msg radio.Message) {
	s.step = step + 1
	if msg != nil {
		s.informed = true
	}
}

func (s *selNode) Done() bool { return *s.stop || s.step >= s.budget }

// ceilLog2 returns ⌈log₂ n⌉, minimum 1.
func ceilLog2(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// primesInRange returns the primes in [lo, hi] by trial sieve.
func primesInRange(lo, hi int) []int {
	if lo < 2 {
		lo = 2
	}
	var out []int
	for p := lo; p <= hi; p++ {
		isPrime := true
		for q := 2; q*q <= p; q++ {
			if p%q == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			out = append(out, p)
		}
	}
	return out
}
