package mpx_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/mpx"
	"repro/internal/xrand"
)

func ExampleB() {
	// α = D → log_D α = 1 → b clamps to 4; α = D² → b = 8.
	b1, _ := mpx.B(1024, 1024)
	b2, _ := mpx.B(32, 1024)
	fmt.Println(b1, b2)
	// Output: 4 8
}

func ExampleJRange() {
	jmin, jmax := mpx.JRange(1 << 20)
	fmt.Println(jmin, jmax)
	// Output: 1 2
}

func ExamplePartition() {
	g := gen.Path(20)
	misSet := g.GreedyMIS(nil) // every other node on a path
	a, err := mpx.Partition(g, misSet, 0.5, xrand.New(7))
	if err != nil {
		panic(err)
	}
	// Every node is assigned to an MIS center, and clusters are connected.
	assigned := 0
	for _, c := range a.Center {
		if c >= 0 {
			assigned++
		}
	}
	fmt.Println(assigned, a.ValidateClusters(g) == nil)
	// Output: 20 true
}

func ExampleProfile_TBS() {
	// One center at distance 0 and two at distance 1.
	p := mpx.Profile{M: []int{1, 2}}
	_, _, s := p.TBS(1e9) // huge β: far centers vanish, S → 0
	fmt.Printf("%.0f\n", s)
	// Output: 0
}
