package mpx

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestDistanceProfilePath(t *testing.T) {
	g := gen.Path(10)
	// Centers at 0, 3, 7; profile from v=3.
	p, err := DistanceProfile(g, []int{0, 3, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.M[0] != 1 { // 3 itself
		t.Fatalf("m_0 = %d", p.M[0])
	}
	if p.M[3] != 1 { // node 0
		t.Fatalf("m_3 = %d", p.M[3])
	}
	if p.M[4] != 1 { // node 7
		t.Fatalf("m_4 = %d", p.M[4])
	}
	if _, err := DistanceProfile(g, []int{0}, 99); err == nil {
		t.Fatal("want range error")
	}
	if _, err := DistanceProfile(g, []int{-2}, 0); err == nil {
		t.Fatal("want center range error")
	}
}

func TestTBSHandComputed(t *testing.T) {
	// m = [1, 2]: T = 0·1·e⁰ + 1·2·e^-β; B = 1 + 2e^-β.
	p := Profile{M: []int{1, 2}}
	beta := 0.5
	tb, bb, sb := p.TBS(beta)
	e := math.Exp(-beta)
	wantT, wantB := 2*e, 1+2*e
	if math.Abs(tb-wantT) > 1e-12 || math.Abs(bb-wantB) > 1e-12 {
		t.Fatalf("T=%v B=%v, want %v %v", tb, bb, wantT, wantB)
	}
	if math.Abs(sb-wantT/wantB) > 1e-12 {
		t.Fatalf("S=%v", sb)
	}
}

func TestTBSEmptyProfile(t *testing.T) {
	p := Profile{M: []int{0, 0}}
	_, _, sb := p.TBS(1)
	if !math.IsInf(sb, 1) {
		t.Fatalf("S on empty profile = %v, want +Inf", sb)
	}
}

func TestSJ(t *testing.T) {
	p := Profile{M: []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}} // m_i = 1 for i ≤ 9
	if got := p.SJ(0); got != 3 {                        // radius 2^1 = 2 → i=0..2
		t.Fatalf("s_0 = %d, want 3", got)
	}
	if got := p.SJ(1); got != 5 { // radius 4
		t.Fatalf("s_1 = %d, want 5", got)
	}
	if got := p.SJ(10); got != 10 { // saturates
		t.Fatalf("s_10 = %d, want 10", got)
	}
	if got := p.SJ(-1); got != 0 {
		t.Fatalf("s_-1 = %d", got)
	}
}

func TestBValues(t *testing.T) {
	// α = D → log_D α = 1 → b = 4.
	b, err := B(1024, 1024)
	if err != nil || b != 4 {
		t.Fatalf("B(D,D) = %d err %v, want 4", b, err)
	}
	// α = D² → log = 2 → b = 2^(1+2) = 8.
	b2, err := B(32, 1024)
	if err != nil || b2 != 8 {
		t.Fatalf("B(32,1024) = %d err %v, want 8", b2, err)
	}
	// α < D clamps to 4.
	b3, err := B(1024, 16)
	if err != nil || b3 != 4 {
		t.Fatalf("B clamp = %d err %v", b3, err)
	}
	if _, err := B(1, 10); err == nil {
		t.Fatal("want error for D < 2")
	}
	// Sanity: b is in [4·max(1,logDα), 8·max(1,logDα)].
	for _, tc := range []struct{ d, a int }{{16, 256}, {16, 4096}, {64, 64 * 64 * 64}} {
		b, err := B(tc.d, tc.a)
		if err != nil {
			t.Fatal(err)
		}
		l := math.Log(float64(tc.a)) / math.Log(float64(tc.d))
		if l < 1 {
			l = 1
		}
		if float64(b) < 4*l-1e-9 || float64(b) > 8*l+1e-9 {
			t.Fatalf("B(%d,%d)=%d outside [4l,8l] with l=%v", tc.d, tc.a, b, l)
		}
	}
}

func TestJRange(t *testing.T) {
	jmin, jmax := JRange(1 << 20) // log D = 20 → [1, 2]
	if jmin != 1 || jmax != 2 {
		t.Fatalf("JRange(2^20) = [%d,%d]", jmin, jmax)
	}
	jmin, jmax = JRange(4)
	if jmin < 1 || jmax <= jmin-1 || jmax < jmin+1 {
		t.Fatalf("JRange(4) = [%d,%d]", jmin, jmax)
	}
	// Large D widens the range: log₂D = 62 → [1, 6].
	jminL, jmaxL := JRange(1 << 62)
	if jminL != 1 || jmaxL != 6 {
		t.Fatalf("JRange(2^62) = [%d,%d], want [1,6]", jminL, jmaxL)
	}
}

func TestIsBadJFlatProfileIsGood(t *testing.T) {
	// Slow growth: m_i = 1 everywhere → s_j grows linearly → never bad.
	m := make([]int, 4096)
	for i := range m {
		m[i] = 1
	}
	p := Profile{M: m}
	if p.IsBadJ(1, 4) || p.IsBadJ(3, 4) {
		t.Fatal("flat profile flagged bad")
	}
}

func TestIsBadJExplosiveProfileIsBad(t *testing.T) {
	// Nothing nearby, then an enormous count at a far radius, arranged so
	// s_{j+log b+r} / s_{j+log b} > 2^{b·2^{r-1}} for j=1, b=4, r=8.
	// j+log b = 3 → radius 2^4 = 16; r=8 → index 11 → radius 2^12 = 4096.
	m := make([]int, 4097)
	m[0] = 1 // s_3 = 1
	// growth needed: > 2^(4·128) = 2^512 — impossible with real counts, so
	// instead verify the log-space comparator directly with a huge count at
	// b=2? Use b=4, r=8 requires 2^512; use a profile where base is tiny and
	// bump r range by using small b: the clamp keeps b ≥ 4, so instead test
	// via SJ saturation: no realizable profile can be bad at b=4 unless the
	// count ratio exceeds 2^512 — reflecting Lemma 5's strength. Check the
	// zero-base pathological case instead.
	p := Profile{M: m}
	if p.IsBadJ(1, 4) {
		t.Fatal("profile with growth below threshold flagged bad")
	}
	// Zero base (malformed: no center within radius 16) counts as bad.
	var zeros Profile
	zeros.M = make([]int, 4097)
	zeros.M[4096] = 10
	if !zeros.IsBadJ(1, 4) {
		t.Fatal("zero-base profile should be flagged bad")
	}
}

func TestCountBadJs(t *testing.T) {
	m := make([]int, 1024)
	for i := range m {
		m[i] = 1 + i/100
	}
	p := Profile{M: m}
	if got := p.CountBadJs(1, 3, 4); got != 0 {
		t.Fatalf("benign profile has %d bad js", got)
	}
}

func TestTheoremTwoBound(t *testing.T) {
	if got := TheoremTwoBound(4, 3, 1); got != 32 {
		t.Fatalf("bound = %v, want 32", got)
	}
	if got := TheoremTwoBound(8, 0, 2.5); got != 20 {
		t.Fatalf("bound = %v, want 20", got)
	}
}

func TestMeanCenterDistanceMatchesLemma3(t *testing.T) {
	// On a cycle with MIS centers, the empirical mean distance must be
	// bounded by 5·S_β (Lemma 3), and positive for non-center nodes.
	rng := xrand.New(11)
	g := gen.Cycle(64)
	misSet := g.GreedyMIS(nil)
	v := 1 // not in greedy MIS on a cycle starting at 0? ensure non-center below
	beta := 0.25
	prof, err := DistanceProfile(g, misSet, v)
	if err != nil {
		t.Fatal(err)
	}
	_, _, sb := prof.TBS(beta)
	mean, err := MeanCenterDistance(g, misSet, v, beta, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mean > 5*sb+1e-9 {
		t.Fatalf("empirical mean %v exceeds Lemma 3 bound %v", mean, 5*sb)
	}
	if mean < 0 {
		t.Fatalf("negative mean %v", mean)
	}
}

func TestMeanCenterDistanceUnreachable(t *testing.T) {
	rng := xrand.New(12)
	if _, err := MeanCenterDistance(gen.Path(4), []int{0}, 0, 0.5, 10, rng); err != nil {
		t.Fatal(err)
	}
	// Two components: center 0 cannot reach node 3.
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := MeanCenterDistance(disc, []int{0}, 3, 0.5, 10, rng); err == nil {
		t.Fatal("want unreachable error")
	}
}
