// Package mpx implements Miller–Peng–Xu exponential-shift graph clustering
// (“Parallel graph decompositions using random shifts”, SPAA '13), in the two
// forms the paper uses:
//
//   - Partition(β): every node is a candidate center — the original form
//     used by Haeupler–Wajc and Czumaj–Davies;
//   - Partition(β, MIS): only maximal-independent-set nodes are candidate
//     centers — the paper's modification (§2.2) that replaces the
//     O(log_D n / β) expected center distance of CD21's Theorem 2.2 with the
//     O(log_D α / β) of Theorem 2.
//
// Each center v draws δ_v ~ Exp(β); each node u joins the cluster of the
// center minimizing dist(u,v) − δ_v. The package also computes the paper's
// analysis quantities m_i, T_β, B_β, S_β, s_j and the bad-j condition of
// Lemmas 4–5.
package mpx

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Assignment is the result of one clustering.
type Assignment struct {
	// Center[u] is the center vertex u's cluster, or -1 if no center
	// reaches u (possible only in disconnected graphs).
	Center []int
	// Hops[u] is dist(u, Center[u]) in hops (0 for centers), or -1.
	Hops []int
	// Delta[v] is the exponential shift drawn by center v (0 elsewhere).
	Delta []float64
	// Beta is the parameter used.
	Beta float64
}

// item is a priority-queue entry for the shifted multi-source Dijkstra.
type item struct {
	node   int32
	center int32
	hops   int32
	key    float64
}

type pq []item

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].key < p[j].key }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(item)) }
func (p *pq) Pop() any          { old := *p; n := len(old); x := old[n-1]; *p = old[:n-1]; return x }

// Partition clusters g with parameter beta using the given candidate
// centers. Pass all vertices for the CD21 form or an MIS for the paper's
// form. Shift draws consume rng; run repeatedly for fresh clusterings.
func Partition(g *graph.Graph, centers []int, beta float64, rng *xrand.RNG) (*Assignment, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("mpx: empty graph")
	}
	if beta <= 0 {
		return nil, fmt.Errorf("mpx: beta must be positive, got %v", beta)
	}
	if len(centers) == 0 {
		return nil, fmt.Errorf("mpx: no candidate centers")
	}
	a := &Assignment{
		Center: make([]int, n),
		Hops:   make([]int, n),
		Delta:  make([]float64, n),
		Beta:   beta,
	}
	best := make([]float64, n)
	for v := range a.Center {
		a.Center[v] = -1
		a.Hops[v] = -1
		best[v] = math.Inf(1)
	}
	q := make(pq, 0, len(centers))
	for _, c := range centers {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("mpx: center %d out of range", c)
		}
		delta := rng.Exponential(beta)
		a.Delta[c] = delta
		q = append(q, item{node: int32(c), center: int32(c), hops: 0, key: -delta})
	}
	heap.Init(&q)
	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		u := int(it.node)
		if it.key >= best[u] {
			continue
		}
		best[u] = it.key
		a.Center[u] = int(it.center)
		a.Hops[u] = int(it.hops)
		for _, w := range g.Neighbors(u) {
			nk := it.key + 1
			if nk < best[w] {
				heap.Push(&q, item{node: w, center: it.center, hops: it.hops + 1, key: nk})
			}
		}
	}
	return a, nil
}

// NumClusters returns the number of non-empty clusters.
func (a *Assignment) NumClusters() int {
	seen := make(map[int]bool)
	for _, c := range a.Center {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}

// Members returns cluster membership keyed by center.
func (a *Assignment) Members() map[int][]int {
	m := make(map[int][]int)
	for u, c := range a.Center {
		if c >= 0 {
			m[c] = append(m[c], u)
		}
	}
	return m
}

// Radii returns per-cluster max hop distance to the center.
func (a *Assignment) Radii() map[int]int {
	r := make(map[int]int)
	for u, c := range a.Center {
		if c >= 0 && a.Hops[u] > r[c] {
			r[c] = a.Hops[u]
		}
	}
	return r
}

// MaxRadius returns the largest cluster radius (0 for all-singleton).
func (a *Assignment) MaxRadius() int {
	maxR := 0
	for u, c := range a.Center {
		if c >= 0 && a.Hops[u] > maxR {
			maxR = a.Hops[u]
		}
	}
	return maxR
}

// ValidateClusters checks structural soundness: every assigned node's hop
// count equals the true distance to its assigned center's shifted win, every
// center is in its own cluster with 0 hops, and clusters are connected.
func (a *Assignment) ValidateClusters(g *graph.Graph) error {
	n := g.N()
	if len(a.Center) != n {
		return fmt.Errorf("mpx: assignment size %d vs graph %d", len(a.Center), n)
	}
	for u, c := range a.Center {
		if c < 0 {
			continue
		}
		if a.Center[c] != c {
			return fmt.Errorf("mpx: center %d assigned to %d", c, a.Center[c])
		}
		if c == u && a.Hops[u] != 0 {
			return fmt.Errorf("mpx: center %d has nonzero hops %d", u, a.Hops[u])
		}
		if a.Hops[u] < 0 {
			return fmt.Errorf("mpx: assigned node %d has negative hops", u)
		}
	}
	// Connectivity within the shifted-shortest-path tree: every non-center
	// member must have a neighbor one hop closer in the same cluster.
	for u, c := range a.Center {
		if c < 0 || u == c {
			continue
		}
		ok := false
		for _, w := range g.Neighbors(u) {
			if a.Center[w] == c && a.Hops[w] == a.Hops[u]-1 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("mpx: node %d (cluster %d, hops %d) has no uphill neighbor", u, c, a.Hops[u])
		}
	}
	return nil
}
