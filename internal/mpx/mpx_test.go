package mpx

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func allVertices(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	return vs
}

func TestPartitionValidation(t *testing.T) {
	g := gen.Path(5)
	rng := xrand.New(1)
	if _, err := Partition(graph.New(0), nil, 0.5, rng); err == nil {
		t.Fatal("want empty-graph error")
	}
	if _, err := Partition(g, allVertices(5), 0, rng); err == nil {
		t.Fatal("want beta error")
	}
	if _, err := Partition(g, nil, 0.5, rng); err == nil {
		t.Fatal("want no-centers error")
	}
	if _, err := Partition(g, []int{9}, 0.5, rng); err == nil {
		t.Fatal("want center-range error")
	}
}

func TestPartitionCoversConnectedGraph(t *testing.T) {
	rng := xrand.New(2)
	graphs := []*graph.Graph{
		gen.Path(50), gen.Grid(7, 7), gen.Clique(20), gen.GNP(60, 0.1, rng),
	}
	for i, g := range graphs {
		if !g.Connected() {
			continue
		}
		a, err := Partition(g, allVertices(g.N()), 0.3, rng)
		if err != nil {
			t.Fatal(err)
		}
		for u, c := range a.Center {
			if c < 0 {
				t.Fatalf("graph %d: node %d unassigned", i, u)
			}
		}
		if err := a.ValidateClusters(g); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

func TestPartitionMISCenters(t *testing.T) {
	rng := xrand.New(3)
	g := gen.Grid(8, 8)
	misSet := g.GreedyMIS(nil)
	a, err := Partition(g, misSet, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	inMIS := map[int]bool{}
	for _, v := range misSet {
		inMIS[v] = true
	}
	for u, c := range a.Center {
		if c < 0 {
			t.Fatalf("node %d unassigned", u)
		}
		if !inMIS[c] {
			t.Fatalf("node %d assigned to non-MIS center %d", u, c)
		}
	}
	if err := a.ValidateClusters(g); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionHopsAreTrueDistances(t *testing.T) {
	rng := xrand.New(4)
	g := gen.Grid(6, 6)
	a, err := Partition(g, allVertices(g.N()), 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u, c := range a.Center {
		dist := g.BFS(c)
		if a.Hops[u] != dist[u] {
			t.Fatalf("node %d: hops %d but dist(u,center)=%d", u, a.Hops[u], dist[u])
		}
	}
}

func TestPartitionLargeBetaGivesSingletons(t *testing.T) {
	// β → ∞ means shifts ≈ 0: every center wins itself; with all nodes as
	// centers every cluster should be tiny (radius 0 or 1 boundary ties).
	rng := xrand.New(5)
	g := gen.Path(40)
	a, err := Partition(g, allVertices(40), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxRadius() > 1 {
		t.Fatalf("max radius %d with huge beta", a.MaxRadius())
	}
	if a.NumClusters() < 20 {
		t.Fatalf("only %d clusters with huge beta", a.NumClusters())
	}
}

func TestPartitionSmallBetaGivesFewClusters(t *testing.T) {
	rng := xrand.New(6)
	g := gen.Path(40)
	small, err := Partition(g, allVertices(40), 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Partition(g, allVertices(40), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumClusters() >= big.NumClusters() {
		t.Fatalf("clusters: beta=0.01 → %d, beta=5 → %d; want fewer for smaller beta",
			small.NumClusters(), big.NumClusters())
	}
}

func TestPartitionClusterRadiusBound(t *testing.T) {
	// MPX: radii are O(log n / β) whp. Check a generous multiple.
	rng := xrand.New(7)
	g := gen.Grid(10, 10)
	const beta = 0.5
	for trial := 0; trial < 10; trial++ {
		a, err := Partition(g, allVertices(g.N()), beta, rng)
		if err != nil {
			t.Fatal(err)
		}
		bound := int(6 * math.Log(float64(g.N())) / beta)
		if a.MaxRadius() > bound {
			t.Fatalf("trial %d: radius %d exceeds %d", trial, a.MaxRadius(), bound)
		}
	}
}

func TestMembersAndRadiiConsistent(t *testing.T) {
	rng := xrand.New(8)
	g := gen.Cycle(30)
	a, err := Partition(g, allVertices(30), 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	members := a.Members()
	total := 0
	for c, ms := range members {
		total += len(ms)
		found := false
		for _, m := range ms {
			if m == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("center %d not in own cluster", c)
		}
	}
	if total != 30 {
		t.Fatalf("members cover %d of 30", total)
	}
	radii := a.Radii()
	if len(radii) != a.NumClusters() {
		t.Fatalf("radii entries %d vs clusters %d", len(radii), a.NumClusters())
	}
}

func TestDisconnectedGraphPartialAssignment(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1) // component {0,1}; {2,3} isolated vertices
	g.AddEdge(2, 3)
	rng := xrand.New(9)
	a, err := Partition(g, []int{0}, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.Center[0] != 0 || a.Center[1] != 0 {
		t.Fatalf("component of center unassigned: %v", a.Center)
	}
	if a.Center[2] != -1 || a.Center[3] != -1 {
		t.Fatalf("unreachable nodes should be unassigned: %v", a.Center)
	}
}
