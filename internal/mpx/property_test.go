package mpx

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/xrand"
)

// TestEdgeCutProbability checks the MPX decomposition's defining property:
// the probability that an edge is cut (endpoints in different clusters) is
// O(β). We measure the empirical cut fraction on a grid at several β and
// assert the scaling (halving β roughly halves the cut rate) plus a
// generous absolute constant.
func TestEdgeCutProbability(t *testing.T) {
	g := gen.Grid(16, 16)
	centers := make([]int, g.N())
	for i := range centers {
		centers[i] = i
	}
	rng := xrand.New(7)
	const reps = 40
	cutRate := func(beta float64) float64 {
		cut, total := 0, 0
		for r := 0; r < reps; r++ {
			a, err := Partition(g, centers, beta, rng)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < g.N(); u++ {
				for _, w := range g.Neighbors(u) {
					if int(w) > u {
						total++
						if a.Center[u] != a.Center[w] {
							cut++
						}
					}
				}
			}
		}
		return float64(cut) / float64(total)
	}
	r1 := cutRate(0.4)
	r2 := cutRate(0.2)
	r3 := cutRate(0.1)
	// Absolute bound: P(cut) ≤ c·β with a generous c.
	for _, tc := range []struct {
		beta, rate float64
	}{{0.4, r1}, {0.2, r2}, {0.1, r3}} {
		if tc.rate > 2.5*tc.beta {
			t.Fatalf("cut rate %v at β=%v exceeds 2.5β", tc.rate, tc.beta)
		}
	}
	// Scaling: halving β should at least reduce the cut rate substantially.
	if !(r1 > r2 && r2 > r3) {
		t.Fatalf("cut rates not decreasing with β: %v %v %v", r1, r2, r3)
	}
	if r3 > 0.75*r1 {
		t.Fatalf("cut rate barely responds to β: %v vs %v", r3, r1)
	}
}

// TestMISCentersEdgeCutAlsoLinear repeats the cut-rate property for the
// paper's Partition(β, MIS): restricting centers must not break the MPX
// padding behavior (the analysis of Lemma 3 relies on it).
func TestMISCentersEdgeCutAlsoLinear(t *testing.T) {
	g := gen.Grid(14, 14)
	misSet := g.GreedyMIS(nil)
	rng := xrand.New(9)
	const reps = 40
	cut, total := 0, 0
	const beta = 0.2
	for r := 0; r < reps; r++ {
		a, err := Partition(g, misSet, beta, rng)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for _, w := range g.Neighbors(u) {
				if int(w) > u {
					total++
					if a.Center[u] != a.Center[w] {
						cut++
					}
				}
			}
		}
	}
	rate := float64(cut) / float64(total)
	if rate > 3*beta {
		t.Fatalf("MIS-centered cut rate %v exceeds 3β at β=%v", rate, beta)
	}
}

// TestPartitionLawTotalAssignment is the basic partition law under random
// inputs: on connected graphs every node lands in exactly one cluster whose
// center is a candidate.
func TestPartitionLawTotalAssignment(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(60)
		g := gen.RandomTree(n, rng)
		// Random candidate subset including at least one node.
		var centers []int
		for v := 0; v < n; v++ {
			if rng.Bernoulli(0.3) {
				centers = append(centers, v)
			}
		}
		if len(centers) == 0 {
			centers = append(centers, rng.Intn(n))
		}
		beta := 0.05 + rng.Float64()
		a, err := Partition(g, centers, beta, rng)
		if err != nil {
			t.Fatal(err)
		}
		isCandidate := map[int]bool{}
		for _, c := range centers {
			isCandidate[c] = true
		}
		for v := 0; v < n; v++ {
			if a.Center[v] < 0 {
				t.Fatalf("trial %d: node %d unassigned on connected graph", trial, v)
			}
			if !isCandidate[a.Center[v]] {
				t.Fatalf("trial %d: node %d assigned to non-candidate", trial, v)
			}
		}
		if err := a.ValidateClusters(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
