package mpx

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Profile holds, for one fixed node v, the counts m_i of MIS (center) nodes
// at each hop distance i = 0..D from v — the quantities the paper's §3
// analysis is phrased in.
type Profile struct {
	// M[i] is m_i, the number of candidate centers at distance exactly i.
	M []int
}

// DistanceProfile computes the profile of v with respect to the given
// candidate-center set (an MIS for the paper's variant, all of V for CD21).
func DistanceProfile(g *graph.Graph, centers []int, v int) (Profile, error) {
	if v < 0 || v >= g.N() {
		return Profile{}, fmt.Errorf("mpx: vertex %d out of range", v)
	}
	dist := g.BFS(v)
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	m := make([]int, maxD+1)
	for _, c := range centers {
		if c < 0 || c >= g.N() {
			return Profile{}, fmt.Errorf("mpx: center %d out of range", c)
		}
		if d := dist[c]; d != graph.Unreachable {
			m[d]++
		}
	}
	return Profile{M: m}, nil
}

// TBS computes the paper's T_β = Σ i·m_i·e^{-iβ}, B_β = Σ m_i·e^{-iβ} and
// S_β = T_β / B_β. S_β bounds (up to the factor 5 of Lemma 3) the expected
// distance from v to its cluster center under Partition(β, centers).
func (p Profile) TBS(beta float64) (tb, bb, sb float64) {
	for i, mi := range p.M {
		if mi == 0 {
			continue
		}
		w := float64(mi) * math.Exp(-float64(i)*beta)
		tb += float64(i) * w
		bb += w
	}
	if bb == 0 {
		return tb, bb, math.Inf(1)
	}
	return tb, bb, tb / bb
}

// SJ returns s_j = Σ_{i=0}^{2^{j+1}} m_i (clamped at the profile end).
func (p Profile) SJ(j int) int {
	if j < 0 {
		return 0
	}
	limit := 1 << uint(j+1)
	s := 0
	for i, mi := range p.M {
		if i > limit {
			break
		}
		s += mi
	}
	return s
}

// B computes the paper's b = 2^{⌈log₂ log_D α⌉ + 2}, clamped below at 4
// (which the paper's 2 ≤ 4·log_D α ≤ b chain presumes). D and alpha must be
// at least 2.
func B(d, alpha int) (int, error) {
	if d < 2 || alpha < 2 {
		return 0, fmt.Errorf("mpx: B needs D ≥ 2 and α ≥ 2, got D=%d α=%d", d, alpha)
	}
	logDalpha := math.Log(float64(alpha)) / math.Log(float64(d))
	if logDalpha < 1 {
		logDalpha = 1
	}
	exp := int(math.Ceil(math.Log2(logDalpha))) + 2
	if exp < 2 {
		exp = 2
	}
	return 1 << uint(exp), nil
}

// JRange returns the paper's sweep range for the random scale j:
// 0.01·log₂D ≤ j ≤ 0.1·log₂D, widened to at least [1, 2] so that small-D
// experiments remain meaningful (the paper's constants are asymptotic).
func JRange(d int) (jmin, jmax int) {
	logD := math.Log2(float64(d))
	jmin = int(math.Ceil(0.01 * logD))
	jmax = int(math.Floor(0.1 * logD))
	if jmin < 1 {
		jmin = 1
	}
	if jmax < jmin+1 {
		jmax = jmin + 1
	}
	return jmin, jmax
}

// IsBadJ evaluates the failure condition of Lemmas 4–5 for scale j: j is
// “bad” when for some r ≥ 8, s_{j+log b+r} > 2^{b·2^{r-1}} · s_{j+log b}.
// Comparisons run in log₂-space to avoid overflow.
func (p Profile) IsBadJ(j, b int) bool {
	logB := int(math.Round(math.Log2(float64(b))))
	base := p.SJ(j + logB)
	if base == 0 {
		// s_0 ≥ 1 in the paper (v itself or a neighbor is in the MIS); a
		// zero base can only happen for malformed inputs — treat as bad.
		return true
	}
	logBase := math.Log2(float64(base))
	maxIdx := len(p.M) // beyond this, SJ saturates and cannot grow
	for r := 8; j+logB+r <= maxIdx+1; r++ {
		sHigh := p.SJ(j + logB + r)
		if sHigh == 0 {
			continue
		}
		growth := math.Log2(float64(sHigh)) - logBase
		if growth > float64(b)*math.Pow(2, float64(r-1)) {
			return true
		}
	}
	return false
}

// CountBadJs counts bad scales in [jmin, jmax]; Lemma 5 bounds this by
// 0.02·log₂ D when centers form an independent set of size ≤ α.
func (p Profile) CountBadJs(jmin, jmax, b int) int {
	bad := 0
	for j := jmin; j <= jmax; j++ {
		if p.IsBadJ(j, b) {
			bad++
		}
	}
	return bad
}

// TheoremTwoBound returns the Theorem 2 prediction c·b·2^j for the expected
// center distance at scale j (c absorbs the proof's constant; pass 1 to get
// the raw b·2^j unit used in experiment tables).
func TheoremTwoBound(b, j int, c float64) float64 {
	return c * float64(b) * math.Pow(2, float64(j))
}

// MeanCenterDistance estimates E[dist(v, center(v))] under repeated
// Partition(β, centers) clusterings, and also returns the S_β bound from the
// fixed profile for comparison (Lemma 3: E[dist] ≤ 5·S_β).
func MeanCenterDistance(g *graph.Graph, centers []int, v int, beta float64, trials int, rng interface {
	Exponential(float64) float64
}) (float64, error) {
	// Re-implement the assignment for just node v: v joins the center
	// minimizing dist(v,c) − δ_c, so only distances from v matter.
	dist := g.BFS(v)
	var reachable []int
	for _, c := range centers {
		if dist[c] != graph.Unreachable {
			reachable = append(reachable, c)
		}
	}
	if len(reachable) == 0 {
		return 0, fmt.Errorf("mpx: no center reaches %d", v)
	}
	var sum float64
	for t := 0; t < trials; t++ {
		bestKey := math.Inf(1)
		bestDist := 0
		for _, c := range reachable {
			key := float64(dist[c]) - rng.Exponential(beta)
			if key < bestKey {
				bestKey = key
				bestDist = dist[c]
			}
		}
		sum += float64(bestDist)
	}
	return sum / float64(trials), nil
}
