// Package sched builds broadcast schedules inside MPX clusterings, playing
// the role of the fast intra-cluster schedules of Ghaffari–Haeupler–
// Khabbazian as used by Haeupler–Wajc and Czumaj–Davies (Algorithm 9 of the
// paper and its surrounding machinery).
//
// From a clustering it derives the shifted-BFS forest (every non-center node
// keeps one uphill parent) and assigns each node transmission slots such
// that, when one tree layer transmits at a time, every parent→child
// (downcast) and child→parent (upcast) delivery is collision-free under the
// radio model — including collisions caused by *other* clusters' same-depth
// nodes. Slot counts are O(1) on growth-bounded graphs, which is what makes
// Corollary 9's O(D + polylog n) total time materialize in simulation.
//
// Per the documented substitution (DESIGN.md §2), the slot assignment is
// computed centrally and its distributed construction cost is charged as
// O(log² n) rounds per clustering by the callers.
package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mpx"
)

// Forest is the per-clustering shifted-BFS forest.
type Forest struct {
	// Parent[v] is v's uphill neighbor toward its cluster center
	// (-1 for centers and unassigned nodes).
	Parent []int32
	// Depth[v] is the hop distance to the cluster center (-1 unassigned).
	Depth []int
	// Children[v] lists v's tree children.
	Children [][]int32
	// MaxDepth is the deepest layer present.
	MaxDepth int
}

// BuildForest derives the forest from a clustering. For determinism the
// lowest-indexed uphill neighbor is chosen as parent.
func BuildForest(g *graph.Graph, a *mpx.Assignment) (*Forest, error) {
	n := g.N()
	if len(a.Center) != n {
		return nil, fmt.Errorf("sched: assignment size %d vs graph %d", len(a.Center), n)
	}
	f := &Forest{
		Parent:   make([]int32, n),
		Depth:    make([]int, n),
		Children: make([][]int32, n),
	}
	for v := 0; v < n; v++ {
		f.Parent[v] = -1
		f.Depth[v] = a.Hops[v]
		if f.Depth[v] > f.MaxDepth {
			f.MaxDepth = f.Depth[v]
		}
	}
	for v := 0; v < n; v++ {
		c := a.Center[v]
		if c < 0 || v == c {
			continue
		}
		parent := int32(-1)
		for _, w := range g.Neighbors(v) {
			if a.Center[w] == c && a.Hops[w] == a.Hops[v]-1 {
				if parent == -1 || w < parent {
					parent = w
				}
			}
		}
		if parent == -1 {
			return nil, fmt.Errorf("sched: node %d has no uphill neighbor (invalid clustering)", v)
		}
		f.Parent[v] = parent
		f.Children[parent] = append(f.Children[parent], int32(v))
	}
	return f, nil
}

// Schedule carries slot assignments for layered transmission.
type Schedule struct {
	// DownSlot[v] is v's slot when its layer transmits downward
	// (to tree children); -1 if v has no children.
	DownSlot []int
	// UpSlot[v] is v's slot when its layer transmits upward (to its
	// parent); -1 for centers.
	UpSlot []int
	// DownSlots and UpSlots are the slot counts (max over layers).
	DownSlots int
	// UpSlots is the upcast slot count.
	UpSlots int
	// DownSlotsAt[d] / UpSlotsAt[d] are the per-layer slot counts, so
	// callers can charge sparse layers only what they need (0 for layers
	// with no scheduled transmitter).
	DownSlotsAt []int
	// UpSlotsAt is the per-layer upcast slot count.
	UpSlotsAt []int
}

// ComputeSchedule greedily colors each layer's transmitters so no scheduled
// delivery collides:
//
//   - downcast: transmitter u (depth d) must be heard by every child w;
//     u conflicts with any other depth-d node x adjacent to some child of u.
//   - upcast: transmitter v (depth d) must be heard by Parent[v];
//     v conflicts with any other depth-d node x adjacent to Parent[v].
func ComputeSchedule(g *graph.Graph, f *Forest) *Schedule {
	n := g.N()
	s := &Schedule{
		DownSlot:    make([]int, n),
		UpSlot:      make([]int, n),
		DownSlotsAt: make([]int, f.MaxDepth+1),
		UpSlotsAt:   make([]int, f.MaxDepth+1),
	}
	for v := range s.DownSlot {
		s.DownSlot[v] = -1
		s.UpSlot[v] = -1
	}
	// Group nodes by depth.
	layers := make([][]int32, f.MaxDepth+1)
	for v := 0; v < n; v++ {
		if d := f.Depth[v]; d >= 0 {
			layers[d] = append(layers[d], int32(v))
		}
	}
	layerOf := make([]int, n)
	for v := range layerOf {
		layerOf[v] = -2
	}
	for d, layer := range layers {
		for _, v := range layer {
			layerOf[v] = d
		}
	}

	for d, layer := range layers {
		// --- Downcast coloring for depth-d transmitters with children.
		downConf := conflictLists(g, f, layer, layerOf, d, true)
		s.DownSlotsAt[d] = greedyColor(layer, downConf, s.DownSlot, func(v int32) bool {
			return len(f.Children[v]) > 0
		})
		s.DownSlots = max(s.DownSlots, s.DownSlotsAt[d])
		// --- Upcast coloring for depth-d transmitters with a parent.
		if d == 0 {
			continue
		}
		upConf := conflictLists(g, f, layer, layerOf, d, false)
		s.UpSlotsAt[d] = greedyColor(layer, upConf, s.UpSlot, func(v int32) bool {
			return f.Parent[v] >= 0
		})
		s.UpSlots = max(s.UpSlots, s.UpSlotsAt[d])
	}
	if s.DownSlots == 0 {
		s.DownSlots = 1
	}
	if s.UpSlots == 0 {
		s.UpSlots = 1
	}
	return s
}

// conflictLists builds, for the given layer, each transmitter's conflict set
// among same-layer transmitters. For downcast the protected listeners are
// the transmitter's children; for upcast, its parent.
func conflictLists(g *graph.Graph, f *Forest, layer []int32, layerOf []int, depth int, down bool) map[int32][]int32 {
	conf := make(map[int32][]int32, len(layer))
	add := func(a, b int32) {
		if a == b {
			return
		}
		conf[a] = append(conf[a], b)
		conf[b] = append(conf[b], a)
	}
	for _, u := range layer {
		var listeners []int32
		if down {
			listeners = f.Children[u]
		} else if p := f.Parent[u]; p >= 0 {
			listeners = []int32{p}
		}
		for _, w := range listeners {
			for _, x := range g.Neighbors(int(w)) {
				if x != u && layerOf[x] == depth {
					// x transmitting in the same step would collide at w.
					add(u, x)
				}
			}
		}
	}
	return conf
}

// greedyColor assigns the lowest free color to each eligible vertex in index
// order and returns the number of colors used.
func greedyColor(layer []int32, conf map[int32][]int32, out []int, eligible func(int32) bool) int {
	used := 0
	for _, v := range layer {
		if !eligible(v) {
			continue
		}
		taken := map[int]bool{}
		for _, u := range conf[v] {
			if c := out[u]; c >= 0 {
				taken[c] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		out[v] = c
		if c+1 > used {
			used = c + 1
		}
	}
	return used
}

// VerifyDowncast checks the collision-freedom guarantee: for every depth d
// and slot s, when exactly the depth-d nodes with DownSlot s transmit, every
// child of every transmitter has exactly one transmitting neighbor.
func VerifyDowncast(g *graph.Graph, f *Forest, s *Schedule) error {
	return verify(g, f, s, true)
}

// VerifyUpcast is the upcast analogue: every scheduled parent hears its
// child without collision.
func VerifyUpcast(g *graph.Graph, f *Forest, s *Schedule) error {
	return verify(g, f, s, false)
}

func verify(g *graph.Graph, f *Forest, s *Schedule, down bool) error {
	n := g.N()
	slotOf := s.DownSlot
	if !down {
		slotOf = s.UpSlot
	}
	for d := 0; d <= f.MaxDepth; d++ {
		maxSlot := s.DownSlots
		if !down {
			maxSlot = s.UpSlots
		}
		for slot := 0; slot < maxSlot; slot++ {
			transmitting := make([]bool, n)
			for v := 0; v < n; v++ {
				if f.Depth[v] == d && slotOf[v] == slot {
					transmitting[v] = true
				}
			}
			for v := 0; v < n; v++ {
				if !transmitting[v] {
					continue
				}
				var listeners []int32
				if down {
					listeners = f.Children[v]
				} else if p := f.Parent[v]; p >= 0 {
					listeners = []int32{p}
				}
				for _, w := range listeners {
					count := 0
					for _, x := range g.Neighbors(int(w)) {
						if transmitting[x] {
							count++
						}
					}
					if count != 1 {
						return fmt.Errorf("sched: listener %d of %d hears %d transmitters (depth %d slot %d down=%v)",
							w, v, count, d, slot, down)
					}
				}
			}
		}
	}
	return nil
}
