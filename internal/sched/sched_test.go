package sched

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/xrand"
)

func clusterAll(t *testing.T, g *graph.Graph, beta float64, seed uint64) *mpx.Assignment {
	t.Helper()
	rng := xrand.New(seed)
	centers := make([]int, g.N())
	for i := range centers {
		centers[i] = i
	}
	a, err := mpx.Partition(g, centers, beta, rng)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func clusterMIS(t *testing.T, g *graph.Graph, beta float64, seed uint64) *mpx.Assignment {
	t.Helper()
	rng := xrand.New(seed)
	a, err := mpx.Partition(g, g.GreedyMIS(nil), beta, rng)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildForestStructure(t *testing.T) {
	g := gen.Grid(6, 6)
	a := clusterMIS(t, g, 0.3, 1)
	f, err := BuildForest(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		switch {
		case a.Center[v] == v:
			if f.Parent[v] != -1 || f.Depth[v] != 0 {
				t.Fatalf("center %d: parent %d depth %d", v, f.Parent[v], f.Depth[v])
			}
		case a.Center[v] >= 0:
			p := f.Parent[v]
			if p < 0 {
				t.Fatalf("node %d has no parent", v)
			}
			if f.Depth[int(p)] != f.Depth[v]-1 {
				t.Fatalf("node %d depth %d but parent depth %d", v, f.Depth[v], f.Depth[int(p)])
			}
			if a.Center[int(p)] != a.Center[v] {
				t.Fatalf("node %d parent in different cluster", v)
			}
			if !g.HasEdge(v, int(p)) {
				t.Fatalf("parent edge {%d,%d} missing", v, p)
			}
		}
	}
}

func TestBuildForestChildrenConsistent(t *testing.T) {
	g := gen.Cycle(24)
	a := clusterMIS(t, g, 0.4, 2)
	f, err := BuildForest(g, a)
	if err != nil {
		t.Fatal(err)
	}
	childCount := 0
	for v, kids := range f.Children {
		for _, c := range kids {
			if int(f.Parent[c]) != v {
				t.Fatalf("child %d of %d has parent %d", c, v, f.Parent[c])
			}
			childCount++
		}
	}
	// Every non-center node appears exactly once as a child.
	nonCenters := 0
	for v := range f.Parent {
		if f.Parent[v] >= 0 {
			nonCenters++
		}
	}
	if childCount != nonCenters {
		t.Fatalf("children %d vs non-centers %d", childCount, nonCenters)
	}
}

func TestBuildForestSizeMismatch(t *testing.T) {
	g := gen.Path(4)
	a := &mpx.Assignment{Center: []int{0, 0}, Hops: []int{0, 1}}
	if _, err := BuildForest(g, a); err == nil {
		t.Fatal("want size-mismatch error")
	}
}

func TestScheduleCollisionFree(t *testing.T) {
	rng := xrand.New(3)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid(8, 8)},
		{"cycle", gen.Cycle(50)},
		{"gnp", gen.GNP(80, 0.07, rng)},
		{"clique", gen.Clique(24)},
		{"star", gen.Star(30)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, misCenters := range []bool{true, false} {
				var a *mpx.Assignment
				if misCenters {
					a = clusterMIS(t, tc.g, 0.25, 4)
				} else {
					a = clusterAll(t, tc.g, 0.25, 5)
				}
				f, err := BuildForest(tc.g, a)
				if err != nil {
					t.Fatal(err)
				}
				s := ComputeSchedule(tc.g, f)
				if err := VerifyDowncast(tc.g, f, s); err != nil {
					t.Fatalf("downcast (mis=%v): %v", misCenters, err)
				}
				if err := VerifyUpcast(tc.g, f, s); err != nil {
					t.Fatalf("upcast (mis=%v): %v", misCenters, err)
				}
			}
		})
	}
}

func TestScheduleSlotCountsSmallOnGrid(t *testing.T) {
	// Growth-bounded graphs should need O(1) slots — this is the engine of
	// Corollary 9's O(D + polylog) bound.
	g := gen.Grid(12, 12)
	a := clusterMIS(t, g, 0.3, 6)
	f, err := BuildForest(g, a)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeSchedule(g, f)
	if s.DownSlots > 12 || s.UpSlots > 12 {
		t.Fatalf("grid slots too large: down=%d up=%d", s.DownSlots, s.UpSlots)
	}
}

func TestScheduleUDGSlotsBounded(t *testing.T) {
	rng := xrand.New(7)
	g, _, err := gen.ConnectedUDG(150, 8, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := clusterMIS(t, g, 0.3, 8)
	f, err := BuildForest(g, a)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeSchedule(g, f)
	if err := VerifyDowncast(g, f, s); err != nil {
		t.Fatal(err)
	}
	if err := VerifyUpcast(g, f, s); err != nil {
		t.Fatal(err)
	}
	if s.DownSlots > 30 || s.UpSlots > 30 {
		t.Fatalf("UDG slots suspiciously large: down=%d up=%d", s.DownSlots, s.UpSlots)
	}
}

func TestSingletonClustersTrivialSchedule(t *testing.T) {
	// Huge beta → tiny clusters → everyone is (almost) a center; slots
	// default to 1 and verification is vacuous but must pass.
	g := gen.Path(20)
	a := clusterAll(t, g, 100, 9)
	f, err := BuildForest(g, a)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeSchedule(g, f)
	if s.DownSlots < 1 || s.UpSlots < 1 {
		t.Fatalf("slot counts must be ≥ 1: %+v", s)
	}
	if err := VerifyDowncast(g, f, s); err != nil {
		t.Fatal(err)
	}
}
