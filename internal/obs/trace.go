package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"time"
)

// A trace ID is 16 random bytes rendered as 32 hex characters — the same
// shape as a W3C trace-context trace-id, so it pastes into any downstream
// tooling. It is assigned at HTTP entry (or job submission), carried on
// context through cache lookup, singleflight wait, queue wait, execution,
// and store/journal writes, stamped into journal records, echoed in the
// X-Trace-Id response header, and attached to every span log line.

// NewTraceID returns a fresh 32-hex-char trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; a zero ID is
		// still a valid (if degenerate) trace ID.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s looks like a trace ID we minted or could
// have: non-empty, ≤64 chars, hex only. Used to vet client-supplied
// X-Trace-Id headers before adopting them.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
		if !ok {
			return false
		}
	}
	return true
}

type traceKey struct{}

// WithTrace returns a context carrying the given trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "" if none.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTrace returns ctx carrying a trace ID, minting one if absent, plus
// the ID itself.
func EnsureTrace(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// Span is one timed phase of a traced operation. Spans are logged (not
// collected): End emits a single structured line with the span name, trace
// ID, duration, and any attributes, at Debug level — span logs are a
// diagnostic firehose, while request/job summaries are logged at Info by
// their owners.
type Span struct {
	log   *slog.Logger
	name  string
	trace string
	start time.Time
	attrs []slog.Attr
}

// StartSpan begins a span named name for the trace carried by ctx, logging
// through log (slog.Default() if nil). The returned span is nil-safe: End
// on a zero-value span with no logger is a no-op.
func StartSpan(ctx context.Context, log *slog.Logger, name string) *Span {
	if log == nil {
		log = slog.Default()
	}
	return &Span{log: log, name: name, trace: TraceID(ctx), start: time.Now()}
}

// SetAttr attaches an attribute to be emitted at End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, slog.Any(key, value))
}

// End logs the span and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil || s.log == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.log.Enabled(context.Background(), slog.LevelDebug) {
		attrs := make([]slog.Attr, 0, len(s.attrs)+3)
		attrs = append(attrs,
			slog.String("span", s.name),
			slog.String("trace", s.trace),
			slog.Duration("dur", d),
		)
		attrs = append(attrs, s.attrs...)
		s.log.LogAttrs(context.Background(), slog.LevelDebug, "span", attrs...)
	}
	return d
}

// ParseLevel maps a -log-level flag value to a slog.Level. Accepts
// debug/info/warn/error (case-insensitive); anything else reports ok=false.
func ParseLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug", "DEBUG":
		return slog.LevelDebug, true
	case "info", "INFO", "":
		return slog.LevelInfo, true
	case "warn", "WARN", "warning":
		return slog.LevelWarn, true
	case "error", "ERROR":
		return slog.LevelError, true
	}
	return slog.LevelInfo, false
}
