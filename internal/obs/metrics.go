// Package obs is the observability substrate of the repository: a
// dependency-free metrics core (atomic counters, gauges, fixed-bucket
// latency histograms, labeled families, a hand-rolled Prometheus text
// exposition writer) plus a lightweight trace facility (trace.go) that
// stamps every service request and async job with a trace ID and emits
// structured span logs through log/slog.
//
// Design constraints (DESIGN.md §10):
//
//   - No dependencies beyond the standard library — the module has no
//     go.sum and keeps it that way.
//   - Hot-path safe: Observe/Add/Inc are single atomic operations with no
//     locks and no allocations, so instruments can sit on serving paths.
//     (The engines go further: they are instrumented only at epoch
//     boundaries, via radio.Options.Probe, so the zero-alloc step-loop
//     contract survives instrumentation entirely.)
//   - Deterministic exposition: families and series are written in sorted
//     order, so scrapes — and the golden test pinning the format — are
//     byte-stable for a given counter state.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value (bit-cast through an atomic
// uint64). The zero value is ready to use.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets is the default latency bucket layout, in seconds: 100µs to
// ~100s in roughly 3× steps — wide enough to cover a sub-millisecond cache
// hit and a two-minute simulation with the same instrument.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket histogram with atomic bucket counters. Bounds
// are upper bucket boundaries in ascending order; observations above the
// last bound land in an implicit +Inf bucket. Observe is lock-free and
// allocation-free. Construct with NewHistogram; the zero value is unusable.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (DefBuckets when none are given). Bounds must be strictly ascending.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search beats a linear scan past ~16 buckets and costs the same
	// below; sort.SearchFloat64s allocates nothing.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newV := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newV) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot copies the per-bucket counts (non-cumulative).
func (h *Histogram) snapshot() []uint64 {
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket the quantile rank falls in — the same estimator
// Prometheus's histogram_quantile applies to the exposition, so a
// client-side obs.Histogram and a server-side scrape agree on what "p95"
// means. Returns 0 with no observations; ranks landing in the +Inf bucket
// report the last finite bound (the histogram cannot resolve beyond it).
func (h *Histogram) Quantile(q float64) float64 {
	return BucketQuantile(h.bounds, h.snapshot(), q)
}

// BucketQuantile is Histogram.Quantile over raw per-bucket counts: bounds
// are the ascending finite upper bucket boundaries and counts has
// len(bounds)+1 entries (the last being the +Inf bucket). It is exported so
// tools that re-read a Prometheus exposition (radionet-loadgen comparing
// server-observed latency with its own) interpolate identically to a live
// Histogram.
func BucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(counts)-1 {
			if i >= len(bounds) {
				// +Inf bucket: unresolvable above the last finite bound.
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one (label values → instrument) entry of a family.
type series struct {
	labels string // pre-rendered {k="v",...} block, "" for unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64 // gauge-func series
	h      *Histogram
}

// family is one named metric with its help text and series set.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	byKey  map[string]*series
	bounds []float64 // histogram families share one layout
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Construct with NewRegistry. Registration methods return the
// same instrument for the same (name, labels) pair, so call sites can
// register at use without coordinating ownership.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// checkName panics on names outside the Prometheus grammar — a programming
// error, caught at first registration rather than at scrape time.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func (r *Registry) fam(name, help string, kind metricKind) *family {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// renderLabels builds the canonical {k="v",...} block. Label values are
// escaped per the exposition format (backslash, quote, newline).
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func (f *family) get(labels string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.byKey[labels]
	if !ok {
		s = &series{labels: labels}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = NewHistogram(f.bounds...)
		}
		f.byKey[labels] = s
	}
	return s
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.fam(name, help, kindCounter).get("").c
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.fam(name, help, kindGauge).get("").g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time
// — queue depths, uptimes, anything already tracked elsewhere.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.fam(name, help, kindGauge).get("")
	s.fn = fn
}

// CounterFunc registers a counter whose value is read by fn at scrape time
// — for monotone counts already tracked elsewhere (service atomics), so
// registering them for exposition does not fork the bookkeeping. fn must be
// monotone non-decreasing; the registry does not enforce it.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	s := r.fam(name, help, kindCounter).get("")
	s.fn = func() float64 { return float64(fn()) }
}

// Histogram registers (or returns) the unlabeled histogram name over bounds
// (DefBuckets when empty).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	f := r.fam(name, help, kindHistogram)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	}
	f.mu.Unlock()
	return f.get("").h
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	f          *family
	labelNames []string
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.fam(name, help, kindCounter), labelNames: labelNames}
}

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(renderLabels(v.labelNames, labelValues)).c
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct {
	f          *family
	labelNames []string
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.fam(name, help, kindGauge), labelNames: labelNames}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(renderLabels(v.labelNames, labelValues)).g
}

// HistogramVec is a histogram family keyed by label values; every series
// shares the family's bucket layout.
type HistogramVec struct {
	f          *family
	labelNames []string
}

// HistogramVec registers a labeled histogram family over bounds
// (DefBuckets when empty).
func (r *Registry) HistogramVec(name, help string, labelNames []string, bounds ...float64) *HistogramVec {
	f := r.fam(name, help, kindHistogram)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	}
	f.mu.Unlock()
	return &HistogramVec{f: f, labelNames: labelNames}
}

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(renderLabels(v.labelNames, labelValues)).h
}

// formatFloat renders a sample value the way the exposition format expects:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label
// block, so output is deterministic for a given state. Histograms render
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.byKey))
		for k := range f.byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			s := f.byKey[k]
			switch f.kind {
			case kindCounter:
				if s.fn != nil {
					fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
				}
			case kindGauge:
				if s.fn != nil {
					fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
				}
			case kindHistogram:
				writeHistogram(&b, f.name, s.labels, s.h)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with the
// le label appended to any existing label block, then _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	counts := h.snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// withLabel appends one label pair to a rendered label block.
func withLabel(labels, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}
