package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	// A value exactly on a bound lands in that bound's bucket (le semantics).
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	counts := h.snapshot()
	want := []uint64{2, 2, 2, 1} // (-inf,1], (1,2], (2,4], (4,+inf)
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1, 10)
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), 0.5*workers*per; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	// 10 observations in (10,20]: rank interpolates linearly across it.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if got := h.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p50 = %v, want 15 (midpoint of (10,20])", got)
	}
	if got := h.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Fatalf("p100 = %v, want 20 (upper bound)", got)
	}
	if got := h.Quantile(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p0 = %v, want 10 (lower edge of occupied bucket)", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 3, 4)
	// 50 obs in (0,1], 30 in (1,2], 15 in (2,3], 5 in (3,4].
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 15; i++ {
		h.Observe(2.5)
	}
	for i := 0; i < 5; i++ {
		h.Observe(3.5)
	}
	// p50: rank 50 is exactly the cumulative count of bucket 0 → its bound.
	if got := h.Quantile(0.50); math.Abs(got-1) > 1e-9 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	// p95: rank 95 = 50+30+15 → upper bound of the third bucket.
	if got := h.Quantile(0.95); math.Abs(got-3) > 1e-9 {
		t.Fatalf("p95 = %v, want 3", got)
	}
	// p99: rank 99 is 4/5 through the fourth bucket (3,4] → 3.8.
	if got := h.Quantile(0.99); math.Abs(got-3.8) > 1e-9 {
		t.Fatalf("p99 = %v, want 3.8", got)
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	h := NewHistogram(1, 2)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	h.Observe(50) // +Inf bucket
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow-only p50 = %v, want last finite bound 2", got)
	}
}

func TestBucketQuantileMatchesHistogram(t *testing.T) {
	h := NewHistogram(DefBuckets...)
	vals := []float64{0.0002, 0.003, 0.003, 0.02, 0.09, 0.4, 1.7}
	for _, v := range vals {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		direct := h.Quantile(q)
		viaCounts := BucketQuantile(h.bounds, h.snapshot(), q)
		if math.Abs(direct-viaCounts) > 1e-12 {
			t.Fatalf("q=%v: Quantile=%v BucketQuantile=%v", q, direct, viaCounts)
		}
	}
}

func TestRegistrySameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	v := r.CounterVec("y_total", "", "tier")
	if v.With("memory") != v.With("memory") {
		t.Fatal("same labels should return the same series")
	}
	if v.With("memory") == v.With("durable") {
		t.Fatal("different labels should return different series")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("z_total", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	r.Counter("bad-name", "")
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// sorted families, sorted series, cumulative histogram buckets with le
// labels, _sum/_count, HELP/TYPE headers, label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("alpha_total", "first counter").Add(3)
	tiers := r.CounterVec("hits_total", "hits by tier", "tier")
	tiers.With("memory").Add(2)
	tiers.With("durable").Inc()
	r.Gauge("depth", "queue depth").Set(7)
	r.GaugeFunc("up", "always one", func() float64 { return 1 })
	h := r.Histogram("lat_seconds", "latency", 0.1, 0.5, 1)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(0.3)
	h.Observe(2)
	esc := r.CounterVec("esc_total", "", "path")
	esc.With("a\"b\\c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_total first counter
# TYPE alpha_total counter
alpha_total 3
# HELP depth queue depth
# TYPE depth gauge
depth 7
# TYPE esc_total counter
esc_total{path="a\"b\\c\nd"} 1
# HELP hits_total hits by tier
# TYPE hits_total counter
hits_total{tier="durable"} 1
hits_total{tier="memory"} 2
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="0.5"} 3
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 2.65
lat_seconds_count 4
# HELP up always one
# TYPE up gauge
up 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("hv_seconds", "", []string{"route"}, 1, 2)
	v.With("a").Observe(0.5)
	v.With("b").Observe(1.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`hv_seconds_bucket{route="a",le="1"} 1`,
		`hv_seconds_bucket{route="b",le="2"} 1`,
		`hv_seconds_count{route="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("float gauge = %v, want 3.25", got)
	}
}
