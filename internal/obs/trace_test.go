package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || !ValidTraceID(a) {
		t.Fatalf("trace ID %q not 32 hex chars", a)
	}
	if a == b {
		t.Fatal("two trace IDs collided")
	}
}

func TestValidTraceID(t *testing.T) {
	for _, bad := range []string{"", "xyz", "deadbeef{", string(make([]byte, 65))} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	for _, good := range []string{"deadbeef", "0123456789abcdefABCDEF"} {
		if !ValidTraceID(good) {
			t.Fatalf("ValidTraceID(%q) = false, want true", good)
		}
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context should carry no trace")
	}
	ctx2, id := EnsureTrace(ctx)
	if id == "" || TraceID(ctx2) != id {
		t.Fatalf("EnsureTrace: id=%q ctx carries %q", id, TraceID(ctx2))
	}
	ctx3, id3 := EnsureTrace(ctx2)
	if id3 != id || ctx3 != ctx2 {
		t.Fatal("EnsureTrace on a traced context should be a no-op")
	}
	if got := TraceID(WithTrace(ctx, "abc123")); got != "abc123" {
		t.Fatalf("WithTrace round trip = %q", got)
	}
}

func TestSpanLogsAtDebug(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ctx := WithTrace(context.Background(), "feedfacefeedfacefeedfacefeedface")
	sp := StartSpan(ctx, log, "cache.lookup")
	sp.SetAttr("tier", "memory")
	if d := sp.End(); d < 0 {
		t.Fatalf("span duration %v < 0", d)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("span log is not JSON: %v\n%s", err, buf.String())
	}
	if rec["span"] != "cache.lookup" || rec["trace"] != "feedfacefeedfacefeedfacefeedface" || rec["tier"] != "memory" {
		t.Fatalf("span log missing fields: %v", rec)
	}
}

func TestSpanQuietAtInfo(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	sp := StartSpan(context.Background(), log, "quiet")
	sp.End()
	if buf.Len() != 0 {
		t.Fatalf("span logged at info level: %s", buf.String())
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	if sp.End() != 0 {
		t.Fatal("nil span End should return 0")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	}
	for in, want := range cases {
		got, ok := ParseLevel(in)
		if !ok || got != want {
			t.Fatalf("ParseLevel(%q) = %v,%v want %v,true", in, got, ok, want)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Fatal(`ParseLevel("loud") should report !ok`)
	}
}
