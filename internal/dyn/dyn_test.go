package dyn

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func line(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

func TestScheduleEpochAt(t *testing.T) {
	base := line(5)
	s, err := New(base, []EpochSpec{
		{Start: 10, Delta: Delta{Remove: []graph.Edge{{U: 2, V: 3}}}},
		{Start: 25, Delta: Delta{Add: []graph.Edge{{U: 2, V: 3}, {U: 0, V: 4}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Epochs() != 3 || s.N() != 5 || s.LastStart() != 25 {
		t.Fatalf("shape: epochs=%d n=%d last=%d", s.Epochs(), s.N(), s.LastStart())
	}
	cases := []struct {
		step, wantEpoch, wantNext int
	}{
		{-3, 0, 10}, {0, 0, 10}, {9, 0, 10},
		{10, 1, 25}, {24, 1, 25},
		{25, 2, -1}, {1 << 20, 2, -1},
	}
	for _, c := range cases {
		csr, next := s.EpochAt(c.step)
		if csr != s.CSR(c.wantEpoch) || next != c.wantNext {
			t.Errorf("EpochAt(%d): epoch csr mismatch or next=%d (want epoch %d, next %d)",
				c.step, next, c.wantEpoch, c.wantNext)
		}
	}
	// Epoch 1 lost the middle edge; epoch 2 has it back plus the chord.
	if s.CSR(1).Graph().HasEdge(2, 3) {
		t.Fatal("epoch 1 should not have edge {2,3}")
	}
	g2 := s.CSR(2).Graph()
	if !g2.HasEdge(2, 3) || !g2.HasEdge(0, 4) {
		t.Fatal("epoch 2 missing re-added or new edge")
	}
	// The base graph must not have been mutated by construction.
	if !base.HasEdge(2, 3) || base.HasEdge(0, 4) {
		t.Fatal("New mutated the caller's base graph")
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	base := line(3)
	if _, err := New(base, []EpochSpec{{Start: 0}}); err == nil {
		t.Fatal("want error for epoch start 0")
	}
	if _, err := New(base, []EpochSpec{{Start: 5}, {Start: 5}}); err == nil {
		t.Fatal("want error for non-increasing starts")
	}
	if _, err := New(graph.New(0), nil); err == nil {
		t.Fatal("want error for empty base")
	}
}

func TestChurnDeterministicAndShape(t *testing.T) {
	base := line(40)
	build := func() *Schedule {
		s, err := Churn(base, 6, 15, 0.3, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	if a.Epochs() != b.Epochs() {
		t.Fatalf("churn not deterministic: %d vs %d epochs", a.Epochs(), b.Epochs())
	}
	for i := 0; i < a.Epochs(); i++ {
		if a.Start(i) != b.Start(i) || !a.CSR(i).Equal(b.CSR(i)) {
			t.Fatalf("churn epoch %d differs between identical builds", i)
		}
	}
	if a.Epochs() < 2 {
		t.Fatal("churn at 30% produced no mutated epochs")
	}
	// Epoch 0 is pristine; every epoch keeps a subset of base edges.
	if !a.CSR(0).Equal(base.Freeze()) {
		t.Fatal("epoch 0 is not the pristine base")
	}
	for i := 1; i < a.Epochs(); i++ {
		eg := a.CSR(i).Graph()
		for v := 0; v < eg.N(); v++ {
			for _, w := range eg.Neighbors(v) {
				if !base.HasEdge(v, int(w)) {
					t.Fatalf("churn epoch %d invented edge {%d,%d}", i, v, w)
				}
			}
		}
	}
}

func TestEdgeFaultsRates(t *testing.T) {
	base := line(60)
	s, err := EdgeFaults(base, 5, 10, 0.4, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	m := base.M()
	sawFewer := false
	for i := 1; i < s.Epochs(); i++ {
		mi := s.CSR(i).M()
		if mi > m {
			t.Fatalf("fault epoch %d has more edges (%d) than base (%d)", i, mi, m)
		}
		if mi < m {
			sawFewer = true
		}
	}
	if !sawFewer {
		t.Fatal("40% fault rate never removed an edge")
	}
	// failProb 0 must yield a single static epoch.
	s0, err := EdgeFaults(base, 5, 10, 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if s0.Epochs() != 1 {
		t.Fatalf("zero fault rate produced %d epochs, want 1", s0.Epochs())
	}
}

func TestPartitionHeal(t *testing.T) {
	base := line(10)
	side := make([]bool, 10)
	for v := 5; v < 10; v++ {
		side[v] = true
	}
	s, err := PartitionHeal(base, side, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epochs() != 3 {
		t.Fatalf("epochs = %d, want 3", s.Epochs())
	}
	cut := s.CSR(1).Graph()
	if cut.HasEdge(4, 5) {
		t.Fatal("crossing edge survived the cut")
	}
	if comp, count := cut.Components(); count != 2 || comp[0] == comp[9] {
		t.Fatalf("cut graph has %d components, want 2", count)
	}
	// Healing restores the edge set (list order may differ: re-added edges
	// append at the end of their endpoints' neighbor lists).
	healed := s.CSR(2).Graph()
	if healed.M() != base.M() {
		t.Fatalf("healed epoch has %d edges, base has %d", healed.M(), base.M())
	}
	for v := 0; v < base.N(); v++ {
		for _, w := range base.Neighbors(v) {
			if !healed.HasEdge(v, int(w)) {
				t.Fatalf("healed epoch missing base edge {%d,%d}", v, w)
			}
		}
	}
	if _, err := PartitionHeal(base, side[:3], 20, 50); err == nil {
		t.Fatal("want error for short side marking")
	}
	if _, err := PartitionHeal(base, side, 50, 20); err == nil {
		t.Fatal("want error for heal before cut")
	}
}

func TestFromGraphsCollapsesDuplicates(t *testing.T) {
	a := line(6)
	b := line(6)
	c := line(6)
	c.AddEdge(0, 5)
	s, err := FromGraphs(8, []*graph.Graph{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if s.Epochs() != 2 {
		t.Fatalf("epochs = %d, want 2 (identical consecutive graphs collapse)", s.Epochs())
	}
	if s.Start(1) != 16 {
		t.Fatalf("second epoch starts at %d, want 16", s.Start(1))
	}
	if !s.CSR(1).Graph().HasEdge(0, 5) {
		t.Fatal("second epoch missing the new edge")
	}
}
