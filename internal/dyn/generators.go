package dyn

// Randomized schedule generators. Each one is a pure function of
// (base graph, shape parameters, rng state): the same inputs always produce
// the same epoch deltas, which is what lets dynamic experiments keep the
// suite's determinism contract. All of them model dynamics over a fixed
// node set — churn and faults toggle base edges, they never invent new ones
// (mobility, which genuinely rewires, lives in gen.MobileUDG on top of
// FromGraphs).

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Churn builds an epochs+1-epoch schedule of node churn on base: epoch 0 is
// the pristine base, and each subsequent epoch (every epochLen steps) draws
// a fresh down-set — each node is down independently with probability
// downFrac — and removes every base edge with a down endpoint. A down node
// keeps running its protocol; it is simply unreachable, like a radio that
// drove out of range. Nodes recover as soon as a later epoch's draw leaves
// them up.
func Churn(base *graph.Graph, epochs, epochLen int, downFrac float64, rng *xrand.RNG) (*Schedule, error) {
	if err := checkShape(epochs, epochLen); err != nil {
		return nil, err
	}
	n := base.N()
	prevDown := make([]bool, n)
	down := make([]bool, n)
	var specs []EpochSpec
	for e := 1; e <= epochs; e++ {
		for v := 0; v < n; v++ {
			down[v] = rng.Bernoulli(downFrac)
		}
		d := toggleDelta(base, func(u, v int) bool { return !prevDown[u] && !prevDown[v] },
			func(u, v int) bool { return !down[u] && !down[v] })
		if !d.empty() {
			specs = append(specs, EpochSpec{Start: e * epochLen, Delta: d})
		}
		copy(prevDown, down)
	}
	return New(base, specs)
}

// EdgeFaults builds an epochs+1-epoch schedule of transient link failures:
// epoch 0 is the pristine base, and each subsequent epoch fails every base
// edge independently with probability failProb (fresh draws per epoch, so
// faults clear and strike anew — a fading-channel model rather than
// permanent damage).
func EdgeFaults(base *graph.Graph, epochs, epochLen int, failProb float64, rng *xrand.RNG) (*Schedule, error) {
	if err := checkShape(epochs, epochLen); err != nil {
		return nil, err
	}
	prevFailed := map[graph.Edge]bool{}
	var specs []EpochSpec
	for e := 1; e <= epochs; e++ {
		failed := map[graph.Edge]bool{}
		var d Delta
		forEachEdge(base, func(u, v int32) {
			key := graph.Edge{U: u, V: v}
			f := rng.Bernoulli(failProb)
			if f {
				failed[key] = true
			}
			switch {
			case f && !prevFailed[key]:
				d.Remove = append(d.Remove, key)
			case !f && prevFailed[key]:
				d.Add = append(d.Add, key)
			}
		})
		if !d.empty() {
			specs = append(specs, EpochSpec{Start: e * epochLen, Delta: d})
		}
		prevFailed = failed
	}
	return New(base, specs)
}

// PartitionHeal builds a three-phase schedule: the base topology on
// [0, cutStart), then every edge crossing the side marking removed on
// [cutStart, healStart), then the base topology again from healStart on.
// Experiment E19 uses it to measure re-convergence after a partition heals.
func PartitionHeal(base *graph.Graph, side []bool, cutStart, healStart int) (*Schedule, error) {
	n := base.N()
	if len(side) != n {
		return nil, fmt.Errorf("dyn: side marking has %d entries for %d nodes", len(side), n)
	}
	if cutStart < 1 || healStart <= cutStart {
		return nil, fmt.Errorf("dyn: need 1 <= cutStart (%d) < healStart (%d)", cutStart, healStart)
	}
	var crossing []graph.Edge
	forEachEdge(base, func(u, v int32) {
		if side[u] != side[v] {
			crossing = append(crossing, graph.Edge{U: u, V: v})
		}
	})
	return New(base, []EpochSpec{
		{Start: cutStart, Delta: Delta{Remove: crossing}},
		{Start: healStart, Delta: Delta{Add: crossing}},
	})
}

// toggleDelta emits the delta for base edges whose presence predicate
// flipped between two epochs, scanning base's adjacency in deterministic
// (lower endpoint, list position) order.
func toggleDelta(base *graph.Graph, was, is func(u, v int) bool) Delta {
	var d Delta
	forEachEdge(base, func(u, v int32) {
		w, n := was(int(u), int(v)), is(int(u), int(v))
		switch {
		case w && !n:
			d.Remove = append(d.Remove, graph.Edge{U: u, V: v})
		case !w && n:
			d.Add = append(d.Add, graph.Edge{U: u, V: v})
		}
	})
	return d
}

// forEachEdge visits every undirected edge of g once, as (lower, higher)
// endpoints in adjacency order.
func forEachEdge(g *graph.Graph, visit func(u, v int32)) {
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				visit(int32(u), v)
			}
		}
	}
}

func checkShape(epochs, epochLen int) error {
	if epochs < 0 || epochLen <= 0 {
		return fmt.Errorf("dyn: need epochs >= 0 and epochLen > 0, got %d and %d", epochs, epochLen)
	}
	return nil
}
