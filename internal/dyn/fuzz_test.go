package dyn

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// FuzzScheduleApplyRevert fuzzes the property the whole dynamic-topology
// subsystem rests on: replaying a schedule's epoch deltas through
// graph.ApplyDelta reproduces each epoch's CSR exactly, and reverting the
// undo stack in reverse order round-trips back to the original CSR —
// adjacency order included, since the frozen CSR (and so the simulation
// transcript) depends on it.
//
// Input encoding, following graph.FuzzBuilderVsAddEdge: data[0] picks the
// vertex count, data[1] the generator mix, data[2:10] a schedule seed, and
// the remaining bytes decode pairwise into an edge stream over a window
// [-1, n+1] so self-loops, duplicates, and out-of-range endpoints occur
// constantly. The seed corpus under testdata/fuzz runs as ordinary test
// cases in `go test`; CI additionally runs a short `-fuzz` smoke.
func FuzzScheduleApplyRevert(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			return
		}
		n := 1 + int(data[0])%32
		mode := data[1]
		seed := uint64(0)
		for _, b := range data[2:10] {
			seed = seed<<8 | uint64(b)
		}
		stream := data[10:]
		base := graph.New(n)
		span := n + 3
		for i := 0; i+1 < len(stream); i += 2 {
			base.AddEdge(int(stream[i])%span-1, int(stream[i+1])%span-1)
		}
		rng := xrand.New(seed)
		var s *Schedule
		var err error
		switch mode % 3 {
		case 0:
			s, err = Churn(base, 1+int(mode)%5, 3, 0.35, rng)
		case 1:
			s, err = EdgeFaults(base, 1+int(mode)%5, 3, 0.35, rng)
		default:
			side := make([]bool, n)
			for v := n / 2; v < n; v++ {
				side[v] = true
			}
			s, err = PartitionHeal(base, side, 3, 7)
		}
		if err != nil {
			t.Fatalf("generator failed on valid input: %v", err)
		}

		// Replay the deltas over a fresh clone, checking each epoch CSR.
		work := base.Clone()
		orig := work.Freeze()
		if !orig.Equal(s.CSR(0)) {
			t.Fatal("epoch 0 CSR differs from the base graph's")
		}
		var undos []*graph.Undo
		for i := 1; i < s.Epochs(); i++ {
			d := s.Delta(i)
			undos = append(undos, work.ApplyDelta(d.Remove, d.Add))
			if err := work.Validate(); err != nil {
				t.Fatalf("epoch %d: delta broke graph invariants: %v", i, err)
			}
			if !work.Freeze().Equal(s.CSR(i)) {
				t.Fatalf("epoch %d: replayed delta CSR differs from the schedule's", i)
			}
		}
		// Revert the stack: must round-trip to the original CSR exactly.
		for i := len(undos) - 1; i >= 0; i-- {
			work.Revert(undos[i])
		}
		if !work.Freeze().Equal(orig) {
			t.Fatal("apply+revert did not round-trip to the original CSR")
		}
	})
}
