// Package dyn builds deterministic dynamic-topology schedules for the radio
// engines: epochs of node churn, edge fault injection, partition/heal
// events, and mobility-driven rewiring over a fixed node set.
//
// A Schedule is an immutable sequence of topology epochs. Epoch i covers the
// step interval [starts[i], starts[i+1]) and holds one frozen CSR snapshot;
// the engines consume it through radio.Options.Topology, querying it only at
// epoch boundaries so the zero-alloc step loop is untouched between them.
// Construction is the only place graphs mutate: the base graph is cloned and
// each epoch's edge delta is applied via graph.ApplyDelta, with one CSR
// freeze per epoch (never per step).
//
// Determinism contract: every schedule is a pure function of its inputs —
// the base graph and, for the randomized generators, an xrand seed. Trials
// in internal/exp derive that seed from the trial seed, so dynamic
// experiments inherit the suite's byte-identical-output guarantee at any
// parallelism level, and the differential tests can replay the same schedule
// through the sequential and worker-pool engines. A Schedule is immutable
// after construction and safe for concurrent readers (including concurrent
// engine runs sharing one Schedule).
package dyn

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/phy"
)

// Delta is one epoch's edge changes relative to the previous epoch:
// removals are applied before additions.
type Delta struct {
	Remove []graph.Edge
	Add    []graph.Edge
}

// empty reports whether the delta changes nothing.
func (d Delta) empty() bool { return len(d.Remove) == 0 && len(d.Add) == 0 }

// EpochSpec declares one epoch for New: the step at which it takes effect
// and its delta relative to the previous epoch.
type EpochSpec struct {
	Start int
	Delta Delta
}

// Schedule is an immutable epoch sequence implementing radio.Topology —
// and, when built with positions attached (FromGraphsWithPositions, the
// geometric generators), phy.PositionSource, so geometric reception models
// (phy.SINR) follow the same epochs the topology does.
type Schedule struct {
	starts    []int         // ascending; starts[0] == 0
	csrs      []*graph.CSR  // snapshot in force from starts[i]
	deltas    []Delta       // deltas[i] transforms epoch i-1 into epoch i; deltas[0] is empty
	positions [][]phy.Point // per-epoch node positions; nil for non-geometric schedules
}

// New builds a schedule: epoch 0 is the base graph as given, and each spec
// opens a new epoch at spec.Start (strictly increasing, all > 0) by applying
// its delta to the previous epoch's topology. The base graph is cloned, so
// the caller's graph is never mutated and later mutations of it do not
// affect the schedule.
func New(base *graph.Graph, specs []EpochSpec) (*Schedule, error) {
	if base == nil || base.N() == 0 {
		return nil, fmt.Errorf("dyn: empty base graph")
	}
	work := base.Clone()
	s := &Schedule{
		starts: []int{0},
		csrs:   []*graph.CSR{work.Freeze()},
		deltas: []Delta{{}},
	}
	prev := 0
	for _, spec := range specs {
		if spec.Start <= prev {
			return nil, fmt.Errorf("dyn: epoch starts must be strictly increasing and positive, got %d after %d", spec.Start, prev)
		}
		prev = spec.Start
		work.ApplyDelta(spec.Delta.Remove, spec.Delta.Add)
		s.starts = append(s.starts, spec.Start)
		s.csrs = append(s.csrs, work.Freeze())
		s.deltas = append(s.deltas, spec.Delta)
	}
	return s, nil
}

// EpochAt implements radio.Topology: the snapshot in force at step and the
// start of the following epoch (-1 when step falls in the last epoch).
// Steps before 0 are treated as 0. O(log #epochs); the engines call it once
// per epoch, not per step.
func (s *Schedule) EpochAt(step int) (*graph.CSR, int) {
	i := sort.SearchInts(s.starts, step+1) - 1
	if i < 0 {
		i = 0
	}
	next := -1
	if i+1 < len(s.starts) {
		next = s.starts[i+1]
	}
	return s.csrs[i], next
}

// N returns the (fixed) node count.
func (s *Schedule) N() int { return s.csrs[0].N() }

// Epochs returns the number of epochs (≥ 1).
func (s *Schedule) Epochs() int { return len(s.starts) }

// Start returns the first step of epoch i.
func (s *Schedule) Start(i int) int { return s.starts[i] }

// CSR returns epoch i's frozen snapshot.
func (s *Schedule) CSR(i int) *graph.CSR { return s.csrs[i] }

// Delta returns the edge delta that opened epoch i (empty for epoch 0).
// The returned slices are shared and must not be modified.
func (s *Schedule) Delta(i int) Delta { return s.deltas[i] }

// LastStart returns the first step of the final epoch.
func (s *Schedule) LastStart() int { return s.starts[len(s.starts)-1] }

// diffDelta computes the delta transforming prev into next (same vertex
// count): edges of prev missing from next are removed, edges of next missing
// from prev are added. Both scans walk each graph's adjacency once, emitting
// each undirected edge for its lower endpoint, so the delta order — and
// therefore the rebuilt epoch's CSR — is deterministic.
func diffDelta(prev, next *graph.Graph) Delta {
	var d Delta
	for v := 0; v < prev.N(); v++ {
		for _, w := range prev.Neighbors(v) {
			if int(w) > v && !next.HasEdge(v, int(w)) {
				d.Remove = append(d.Remove, graph.Edge{U: int32(v), V: w})
			}
		}
	}
	for v := 0; v < next.N(); v++ {
		for _, w := range next.Neighbors(v) {
			if int(w) > v && !prev.HasEdge(v, int(w)) {
				d.Add = append(d.Add, graph.Edge{U: int32(v), V: w})
			}
		}
	}
	return d
}

// FromGraphs builds a schedule from explicit per-epoch graphs: graphs[i] is
// the topology from step i*epochLen. All graphs must share one node count.
// Consecutive duplicates collapse into longer epochs.
func FromGraphs(epochLen int, graphs []*graph.Graph) (*Schedule, error) {
	return fromGraphs(epochLen, graphs, nil)
}

// FromGraphsWithPositions additionally attaches positions[i] — the node
// positions the geometry of graphs[i] was derived from — to each epoch, so
// the schedule implements phy.PositionSource and geometric reception models
// can run over it (mobile SINR). Unlike FromGraphs, epochs whose graph is
// unchanged are NOT collapsed: motion too slow to rewire the connectivity
// graph still moves the interference geometry, which a SINR run observes.
// The position slices are retained as given and must not be mutated by the
// caller afterwards (gen.MobileUDG hands over per-epoch clones).
func FromGraphsWithPositions(epochLen int, graphs []*graph.Graph, positions [][]phy.Point) (*Schedule, error) {
	if len(positions) != len(graphs) {
		return nil, fmt.Errorf("dyn: %d position sets for %d epoch graphs", len(positions), len(graphs))
	}
	for i, pts := range positions {
		if len(pts) != graphs[i].N() {
			return nil, fmt.Errorf("dyn: epoch %d has %d positions for %d nodes", i, len(pts), graphs[i].N())
		}
	}
	return fromGraphs(epochLen, graphs, positions)
}

func fromGraphs(epochLen int, graphs []*graph.Graph, positions [][]phy.Point) (*Schedule, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("dyn: no epoch graphs")
	}
	if epochLen <= 0 {
		return nil, fmt.Errorf("dyn: epochLen must be positive, got %d", epochLen)
	}
	n := graphs[0].N()
	var specs []EpochSpec
	kept := []int{0} // graph indices retained as epochs
	for i := 1; i < len(graphs); i++ {
		if graphs[i].N() != n {
			return nil, fmt.Errorf("dyn: epoch %d has %d nodes, epoch 0 has %d", i, graphs[i].N(), n)
		}
		d := diffDelta(graphs[i-1], graphs[i])
		if d.empty() && (positions == nil || samePositions(positions[kept[len(kept)-1]], positions[i])) {
			// Nothing observable changed: no edge rewired and (for geometric
			// schedules) no node moved, so the epoch collapses into the
			// previous one. Motion below the rewiring threshold does NOT
			// collapse — it still shifts the interference geometry a SINR
			// model observes.
			continue
		}
		specs = append(specs, EpochSpec{Start: i * epochLen, Delta: d})
		kept = append(kept, i)
	}
	s, err := New(graphs[0], specs)
	if err != nil {
		return nil, err
	}
	if positions != nil {
		s.positions = make([][]phy.Point, len(kept))
		for j, i := range kept {
			s.positions[j] = positions[i]
		}
	}
	return s, nil
}

// samePositions reports whether two epoch position sets are identical.
func samePositions(a, b []phy.Point) bool {
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// PositionsAt implements phy.PositionSource: the node positions in force at
// step, or nil when the schedule carries no geometry. Pure in step, like
// EpochAt.
func (s *Schedule) PositionsAt(step int) []phy.Point {
	if s.positions == nil {
		return nil
	}
	i := sort.SearchInts(s.starts, step+1) - 1
	if i < 0 {
		i = 0
	}
	return s.positions[i]
}
