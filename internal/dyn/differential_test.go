package dyn_test

// Differential epoch-boundary determinism (ISSUE 3 satellite): the
// sequential and worker-pool engines must produce identical transcripts
// across topology epoch changes, for every shard count. The transcript is
// compared via trace.Hasher digests (per-node act/deliver streams) plus the
// aggregate Result, on churn, fault, and partition/heal schedules.

import (
	"runtime"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// gossipNode is a protocol whose behavior is sensitive to every delivery:
// it transmits a rumor with probability decaying in the number of times it
// has heard anything, so a single misdelivered step anywhere diverges the
// whole downstream transcript.
type gossipNode struct {
	rng    *xrand.RNG
	heard  int
	has    bool
	step   int
	budget int
}

func (g *gossipNode) Act(step int) radio.Action {
	if g.has && g.rng.Bernoulli(1/float64(2+g.heard)) {
		return radio.Transmit(int64(1))
	}
	return radio.Listen()
}

func (g *gossipNode) Deliver(step int, msg radio.Message) {
	g.step = step + 1
	if msg != nil {
		g.heard++
		g.has = true
	}
}

func (g *gossipNode) Done() bool { return g.step >= g.budget }

func gridGraph(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

func schedules(t *testing.T) map[string]*dyn.Schedule {
	t.Helper()
	base := gridGraph(8, 8)
	churn, err := dyn.Churn(base, 6, 20, 0.25, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	faults, err := dyn.EdgeFaults(base, 6, 20, 0.3, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	side := make([]bool, base.N())
	for v := range side {
		side[v] = v >= base.N()/2
	}
	ph, err := dyn.PartitionHeal(base, side, 30, 80)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*dyn.Schedule{"churn": churn, "faults": faults, "partition-heal": ph}
}

// TestEngineDifferentialAcrossEpochs runs the same dynamic gossip workload
// on the sequential engine and on the worker-pool engine at Shards ∈
// {1, 4, GOMAXPROCS}, asserting digest- and Result-identical runs.
func TestEngineDifferentialAcrossEpochs(t *testing.T) {
	const steps = 160
	base := gridGraph(8, 8)
	for name, sched := range schedules(t) {
		t.Run(name, func(t *testing.T) {
			run := func(concurrent bool, shards int) (uint64, radio.Result) {
				h := trace.NewHasher()
				factory := func(info radio.NodeInfo) radio.Protocol {
					return &gossipNode{rng: info.RNG, has: info.Index == 0, budget: steps}
				}
				res, err := radio.Run(base, h.Wrap(factory), radio.Options{
					MaxSteps:   steps,
					Seed:       42,
					Topology:   sched,
					Concurrent: concurrent,
					Shards:     shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				return h.Sum(), res
			}
			wantDigest, wantRes := run(false, 0)
			for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				gotDigest, gotRes := run(true, shards)
				if gotDigest != wantDigest {
					t.Errorf("shards=%d: pool digest %#x differs from sequential %#x", shards, gotDigest, wantDigest)
				}
				if gotRes != wantRes {
					t.Errorf("shards=%d: pool result %+v differs from sequential %+v", shards, gotRes, wantRes)
				}
			}
		})
	}
}

// TestDynamicRunDiffersFromStatic is the sanity check that the Topology hook
// actually changes delivery: the same workload with and without the churn
// schedule must produce different transcripts (churn at 25% on a grid is
// overwhelmingly unlikely to be invisible for 160 steps).
func TestDynamicRunDiffersFromStatic(t *testing.T) {
	const steps = 160
	base := gridGraph(8, 8)
	sched := schedules(t)["churn"]
	run := func(topo radio.Topology) uint64 {
		h := trace.NewHasher()
		factory := func(info radio.NodeInfo) radio.Protocol {
			return &gossipNode{rng: info.RNG, has: info.Index == 0, budget: steps}
		}
		if _, err := radio.Run(base, h.Wrap(factory), radio.Options{MaxSteps: steps, Seed: 42, Topology: topo}); err != nil {
			t.Fatal(err)
		}
		return h.Sum()
	}
	if run(sched) == run(nil) {
		t.Fatal("churn schedule did not change the transcript")
	}
}

// TestTopologyNodeCountMismatch asserts the engine rejects a topology whose
// epoch-0 node count disagrees with the protocol graph.
func TestTopologyNodeCountMismatch(t *testing.T) {
	small := gridGraph(3, 3)
	sched, err := dyn.New(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(info radio.NodeInfo) radio.Protocol {
		return &gossipNode{rng: info.RNG, budget: 4}
	}
	_, err = radio.Run(gridGraph(4, 4), factory, radio.Options{MaxSteps: 4, Seed: 1, Topology: sched})
	if err == nil {
		t.Fatal("want node-count mismatch error")
	}
}
