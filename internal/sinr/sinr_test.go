package sinr

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// scriptNode mirrors the graph-engine test helper: fixed transmit script,
// records receptions.
type scriptNode struct {
	transmitAt map[int]radio.Message
	heard      map[int]radio.Message
	lastStep   int
	step       int
}

func newScriptNode(lastStep int, transmitAt map[int]radio.Message) *scriptNode {
	return &scriptNode{transmitAt: transmitAt, heard: map[int]radio.Message{}, lastStep: lastStep}
}

func (s *scriptNode) Act(step int) radio.Action {
	if msg, ok := s.transmitAt[step]; ok {
		return radio.Transmit(msg)
	}
	return radio.Listen()
}

func (s *scriptNode) Deliver(step int, msg radio.Message) {
	if msg != nil {
		s.heard[step] = msg
	}
	s.step = step + 1
}

func (s *scriptNode) Done() bool { return s.step > s.lastStep }

func TestDefaultsAndDecodeRange(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Power != 1 || p.PathLoss != 4 || p.Beta != 2 {
		t.Fatalf("defaults %+v", p)
	}
	// Defaults are constructed so the decode range is exactly 1.
	if r := (Params{}).DecodeRange(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("decode range %v, want 1", r)
	}
	// Stronger noise shrinks the range.
	if r := (Params{Noise: 10}).DecodeRange(); r >= 1 {
		t.Fatalf("noisy range %v, want < 1", r)
	}
}

func TestSingleTransmitterInRangeDelivers(t *testing.T) {
	pts := []gen.Point{{0, 0}, {0.9, 0}, {5, 0}}
	nodes := make([]*scriptNode, 3)
	factory := func(info radio.NodeInfo) radio.Protocol {
		var script map[int]radio.Message
		if info.Index == 0 {
			script = map[int]radio.Message{0: "hi"}
		}
		nodes[info.Index] = newScriptNode(0, script)
		return nodes[info.Index]
	}
	if _, err := Run(pts, factory, Params{}, Options{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	if nodes[1].heard[0] != "hi" {
		t.Fatal("in-range listener did not decode")
	}
	if len(nodes[2].heard) != 0 {
		t.Fatal("out-of-range listener decoded")
	}
	if len(nodes[0].heard) != 0 {
		t.Fatal("transmitter heard itself")
	}
}

func TestInterferenceBlocksDecoding(t *testing.T) {
	// Two equidistant transmitters around a listener: SINR ≈ 1 < β=2.
	pts := []gen.Point{{-0.5, 0}, {0, 0}, {0.5, 0}}
	nodes := make([]*scriptNode, 3)
	factory := func(info radio.NodeInfo) radio.Protocol {
		var script map[int]radio.Message
		if info.Index != 1 {
			script = map[int]radio.Message{0: info.Index}
		}
		nodes[info.Index] = newScriptNode(0, script)
		return nodes[info.Index]
	}
	res, err := Run(pts, factory, Params{}, Options{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].heard) != 0 {
		t.Fatalf("listener decoded despite symmetric interference: %v", nodes[1].heard)
	}
	if res.Collisions == 0 {
		t.Fatal("collision not recorded")
	}
}

func TestCaptureEffect(t *testing.T) {
	// The key divergence from the graph model: a much closer transmitter is
	// decoded even while a far transmitter is active (capture), whereas the
	// graph model would declare a collision.
	pts := []gen.Point{{0.2, 0}, {0, 0}, {0.95, 0}}
	nodes := make([]*scriptNode, 3)
	factory := func(info radio.NodeInfo) radio.Protocol {
		var script map[int]radio.Message
		if info.Index != 1 {
			script = map[int]radio.Message{0: info.Index}
		}
		nodes[info.Index] = newScriptNode(0, script)
		return nodes[info.Index]
	}
	if _, err := Run(pts, factory, Params{}, Options{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	if nodes[1].heard[0] != 0 {
		t.Fatalf("capture failed: heard %v, want message from node 0", nodes[1].heard)
	}
}

func TestValidation(t *testing.T) {
	pts := []gen.Point{{0, 0}}
	factory := func(info radio.NodeInfo) radio.Protocol { return newScriptNode(0, nil) }
	if _, err := Run(nil, factory, Params{}, Options{MaxSteps: 1}); err == nil {
		t.Fatal("want no-points error")
	}
	if _, err := Run(pts, factory, Params{}, Options{}); err == nil {
		t.Fatal("want MaxSteps error")
	}
	if _, err := Run(pts, factory, Params{Beta: 0.5}, Options{MaxSteps: 1}); err == nil {
		t.Fatal("want beta error")
	}
	if _, err := Run(pts, func(radio.NodeInfo) radio.Protocol { return nil }, Params{}, Options{MaxSteps: 1}); err == nil {
		t.Fatal("want nil-protocol error")
	}
}

func TestConnectivityGraphMatchesUDG(t *testing.T) {
	pts := []gen.Point{{0, 0}, {0.8, 0}, {1.9, 0}}
	g := ConnectivityGraph(pts, Params{})
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("connectivity graph mismatch")
	}
	if !g.HasEdge(1, 2) { // distance 1.1 > 1 — must NOT be an edge
		// correct: check it's absent
	}
	if g.HasEdge(1, 2) {
		t.Fatal("distance 1.1 should exceed the unit decode range")
	}
}

func TestNodeInfoEstimates(t *testing.T) {
	pts := []gen.Point{{0, 0}, {0.5, 0}, {1, 0}, {1.5, 0}}
	var infos []radio.NodeInfo
	factory := func(info radio.NodeInfo) radio.Protocol {
		infos = append(infos, info)
		return newScriptNode(0, nil)
	}
	if _, err := Run(pts, factory, Params{}, Options{MaxSteps: 1}); err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.N != 4 || info.D < 1 || info.RNG == nil {
			t.Fatalf("bad info %+v", info)
		}
	}
}

func TestDoneStopsRun(t *testing.T) {
	pts := gen.UniformPoints(10, 2, 2, xrand.New(4))
	factory := func(info radio.NodeInfo) radio.Protocol { return newScriptNode(1, nil) }
	res, err := Run(pts, factory, Params{}, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Steps > 4 {
		t.Fatalf("expected early stop, got %+v", res)
	}
}
