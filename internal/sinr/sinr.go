// Package sinr implements the signal-to-interference-plus-noise-ratio
// reception model that footnote 1 of the paper identifies as the
// geometric-side alternative to the graph abstraction: a listener decodes a
// transmitter's signal iff the received power divided by (noise + summed
// interference from all other transmitters) clears a threshold.
//
// The package runs the *same* radio.Protocol state machines as the graph
// engine, so any protocol in this repository (Decay, Radio MIS, baselines)
// can be executed under SINR physics unchanged — which is exactly how the
// cross-model experiment E13 validates the paper's remark that the graph
// model is "in some sense worst-case".
package sinr

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Params are the standard SINR physical-layer parameters.
type Params struct {
	// Power is the uniform transmission power P. Default 1.
	Power float64
	// PathLoss is the path-loss exponent (typically 2–6). Default 4 —
	// path-loss exponents >2 model near-ground propagation.
	PathLoss float64
	// Noise is the ambient noise floor N ≥ 0. Default chosen so that the
	// decode range at zero interference is exactly 1 (the unit disk): with
	// P=1 and threshold β, N = 1/β at distance 1.
	Noise float64
	// Beta is the SINR decode threshold β > 0. Default 2.
	Beta float64
}

func (p Params) withDefaults() Params {
	if p.Power <= 0 {
		p.Power = 1
	}
	if p.PathLoss <= 0 {
		p.PathLoss = 4
	}
	if p.Beta <= 0 {
		p.Beta = 2
	}
	if p.Noise <= 0 {
		// Decode range 1 at zero interference: P·1^-α / N = β.
		p.Noise = p.Power / p.Beta
	}
	return p
}

// DecodeRange returns the maximum distance at which a lone transmitter is
// decodable: P·d^-α / N ≥ β ⇔ d ≤ (P/(N·β))^(1/α).
func (p Params) DecodeRange() float64 {
	p = p.withDefaults()
	return math.Pow(p.Power/(p.Noise*p.Beta), 1/p.PathLoss)
}

// Options mirrors radio.Options for the SINR engine.
type Options struct {
	// MaxSteps bounds the run; required.
	MaxSteps int
	// Seed seeds per-node RNGs (split as in the graph engine).
	Seed uint64
	// N, D, Alpha estimates passed to nodes; zero values default to
	// len(points), a hop estimate over the decode-range graph, and N.
	N, D, Alpha int
	// OnStep observes per-step statistics.
	OnStep func(radio.StepStats)
}

// Result matches radio.Result.
type Result = radio.Result

// Run executes the protocol over points under SINR reception. In each step,
// a listening node v decodes the transmission of u iff
//
//	P·d(u,v)^-α / (Noise + Σ_{w transmitting, w≠u} P·d(w,v)^-α) ≥ Beta.
//
// At most one transmitter can clear the threshold for β ≥ 1, so delivery is
// unambiguous. Transmitters hear nothing (half-duplex, as in the graph
// model).
func Run(points []gen.Point, factory radio.Factory, params Params, opts Options) (Result, error) {
	params = params.withDefaults()
	n := len(points)
	if n == 0 {
		return Result{}, fmt.Errorf("sinr: no points")
	}
	if opts.MaxSteps <= 0 {
		return Result{}, fmt.Errorf("sinr: MaxSteps must be positive, got %d", opts.MaxSteps)
	}
	if params.Beta < 1 {
		return Result{}, fmt.Errorf("sinr: Beta must be ≥ 1 for unambiguous decoding, got %v", params.Beta)
	}
	estN, estD, estAlpha := opts.N, opts.D, opts.Alpha
	if estN <= 0 {
		estN = n
	}
	if estD <= 0 {
		estD = hopEstimate(points, params)
	}
	if estAlpha <= 0 {
		estAlpha = estN
	}
	root := xrand.New(opts.Seed)
	nodes := make([]radio.Protocol, n)
	for v := 0; v < n; v++ {
		nodes[v] = factory(radio.NodeInfo{
			Index: v,
			N:     estN,
			D:     estD,
			Alpha: estAlpha,
			RNG:   root.Split(uint64(v)),
		})
		if nodes[v] == nil {
			return Result{}, fmt.Errorf("sinr: factory returned nil protocol for node %d", v)
		}
	}

	var res Result
	transmitting := make([]bool, n)
	payload := make([]radio.Message, n)
	live := make([]bool, n)
	var txIdx []int
	for step := 0; step < opts.MaxSteps; step++ {
		anyLive := false
		for v := 0; v < n; v++ {
			live[v] = !nodes[v].Done()
			anyLive = anyLive || live[v]
		}
		if !anyLive {
			res.AllDone = true
			break
		}
		st := radio.StepStats{Step: step}
		txIdx = txIdx[:0]
		for v := 0; v < n; v++ {
			transmitting[v] = false
			payload[v] = nil
			if !live[v] {
				continue
			}
			a := nodes[v].Act(step)
			if a.Transmit {
				transmitting[v] = true
				payload[v] = a.Msg
				txIdx = append(txIdx, v)
				st.Transmits++
			}
		}
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			var msg radio.Message
			if !transmitting[v] {
				if u, ok := decode(points, txIdx, v, params); ok {
					msg = payload[u]
					st.Deliveries++
				} else if len(txIdx) > 1 {
					st.Collisions++
				}
			}
			// Act-then-Deliver per step, matching the graph engine.
			nodes[v].Deliver(step, msg)
		}
		res.Steps = step + 1
		res.Transmissions += int64(st.Transmits)
		res.Deliveries += int64(st.Deliveries)
		res.Collisions += int64(st.Collisions)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	if !res.AllDone {
		allDone := true
		for _, p := range nodes {
			if !p.Done() {
				allDone = false
				break
			}
		}
		res.AllDone = allDone
	}
	return res, nil
}

// decode returns the index of the unique transmitter v can decode, if any.
func decode(points []gen.Point, txIdx []int, v int, p Params) (int, bool) {
	if len(txIdx) == 0 {
		return 0, false
	}
	// Received powers from all transmitters.
	var total float64
	best, bestPow := -1, 0.0
	for _, u := range txIdx {
		d := points[u].Dist(points[v])
		if d == 0 {
			d = 1e-9 // co-located points: effectively infinite power
		}
		pow := p.Power * math.Pow(d, -p.PathLoss)
		total += pow
		if pow > bestPow {
			best, bestPow = u, pow
		}
	}
	// Only the strongest signal can possibly clear β ≥ 1.
	interference := total - bestPow
	if bestPow/(p.Noise+interference) >= p.Beta {
		return best, true
	}
	return 0, false
}

// ConnectivityGraph returns the zero-interference reachability graph: the
// unit disk graph at the decode range. This is the graph-model counterpart
// the paper's abstraction uses, and the reference against which E13 checks
// protocol outputs produced under SINR physics.
func ConnectivityGraph(points []gen.Point, params Params) *graph.Graph {
	return gen.UDG(points, params.withDefaults().DecodeRange())
}

// hopEstimate estimates the diameter of the decode-range graph (n when
// disconnected).
func hopEstimate(points []gen.Point, params Params) int {
	g := ConnectivityGraph(points, params)
	d, err := g.DiameterApprox()
	if err != nil || d < 1 {
		return len(points)
	}
	return d
}
