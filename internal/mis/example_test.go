package mis_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/mis"
)

func ExampleRun() {
	// Algorithm 7 on a small path; the output is always a valid maximal
	// independent set (Theorem 14).
	g := gen.Path(9)
	out, err := mis.Run(g, mis.Params{}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Completed, mis.Verify(g, out.MIS) == nil)
	// Output: true true
}

func ExampleVerify() {
	g := gen.Path(5)
	fmt.Println(mis.Verify(g, []int{0, 2, 4}) == nil)
	fmt.Println(mis.Verify(g, []int{0, 1}) == nil) // not independent
	// Output:
	// true
	// false
}

func ExampleGhaffariLocal() {
	// The idealized LOCAL-model reference converges in O(log n) rounds.
	g := gen.Clique(64)
	set, _, err := mis.GhaffariLocal(g, 200, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(set)) // a clique's MIS is a single node
	// Output: 1
}
