// Package mis implements the paper's maximal-independent-set algorithms:
//
//   - Radio MIS (Algorithm 7) — the first MIS algorithm for general-graph
//     radio networks, running in O(log³ n) time-steps (Theorem 14). Each
//     Ghaffari round is simulated with O(log² n) radio time-steps: two
//     amplified Decay blocks (marked-neighbor detection and MIS
//     announcement, Claim 10) and one EstimateEffectiveDegree block
//     (Algorithm 6, Lemma 11).
//   - Ghaffari's LOCAL-model MIS (Algorithm 4) and Luby's classic algorithm,
//     used as idealized references and baselines.
//
// The package also exposes per-round state snapshots so experiments can
// count the golden rounds of Lemmas 12–13.
package mis

import (
	"fmt"
	"math"

	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Params configures Radio MIS. Zero values select defaults suitable for the
// n ≤ ~10⁴ instances the experiments run; the paper's constants are
// recovered by scaling these up.
type Params struct {
	// RoundFactor sets the number of Ghaffari rounds R = RoundFactor·⌈log₂ n⌉
	// (the paper's 13c·log n). Default 8.
	RoundFactor int
	// DecayFactor sets Decay amplification I = DecayFactor·⌈log₂ n⌉
	// iterations per block (the paper's O(log n) iterations). Default 3.
	DecayFactor int
	// DegreeC is the paper's constant C: each EstimateEffectiveDegree
	// sub-block runs C·⌈log₂ n⌉ steps. Default 8.
	DegreeC int
	// HighThresholdDiv is the paper's divisor 33: a block counts as High
	// when it hears at least C·log₂n / HighThresholdDiv transmissions.
	// Default 33.
	HighThresholdDiv float64
	// Observer, when non-nil, is called at the end of every round with the
	// live node states (index-aligned with graph vertices).
	Observer func(round int, states []NodeState)
}

func (p Params) withDefaults() Params {
	if p.RoundFactor <= 0 {
		p.RoundFactor = 8
	}
	if p.DecayFactor <= 0 {
		p.DecayFactor = 3
	}
	if p.DegreeC <= 0 {
		p.DegreeC = 8
	}
	if p.HighThresholdDiv <= 0 {
		p.HighThresholdDiv = 33
	}
	return p
}

// NodeState is a snapshot of one node's Radio MIS state at a round boundary.
type NodeState struct {
	// P is the desire-level p_t(v) entering the next round.
	P float64
	// Alive reports whether the node is still in the residual graph.
	Alive bool
	// InMIS reports final MIS membership so far.
	InMIS bool
	// Dominated reports removal due to a neighbor joining the MIS.
	Dominated bool
	// Marked reports whether the node marked itself in the round that just
	// ended.
	Marked bool
}

// Outcome reports the result of a Radio MIS run.
type Outcome struct {
	// MIS is the set of nodes that joined the MIS, ascending.
	MIS []int
	// Steps is the number of radio time-steps consumed.
	Steps int
	// Rounds is the number of Ghaffari rounds available (R).
	Rounds int
	// JoinRound[v] is the round v joined the MIS, or -1.
	JoinRound []int
	// DominatedRound[v] is the round v was dominated, or -1.
	DominatedRound []int
	// Completed reports whether every node was removed before the round
	// budget (the whp event of Lemma 13).
	Completed bool
	// Transmissions is the total transmission count.
	Transmissions int64
}

// phase identifies the sub-phase of a Ghaffari round.
type phase int

const (
	phaseMark phase = iota + 1
	phaseAnnounce
	phaseDegree
)

// layout precomputes the step layout of one round for a given n estimate.
type layout struct {
	spi          int // steps per decay iteration = ⌈log₂ n⌉
	decayLen     int // length of each decay block
	degBlocks    int // number of EstimateEffectiveDegree sub-blocks (i = 0..log₂n)
	degBlockLen  int // steps per sub-block (C·spi)
	roundLen     int
	highThresh   float64
	announceBase int
	degreeBase   int
}

func newLayout(n int, p Params) layout {
	spi := decay.StepsPerIteration(n)
	decayLen := p.DecayFactor * spi * spi // I iterations × spi steps
	degBlocks := spi + 1
	degBlockLen := p.DegreeC * spi
	l := layout{
		spi:         spi,
		decayLen:    decayLen,
		degBlocks:   degBlocks,
		degBlockLen: degBlockLen,
		highThresh:  float64(p.DegreeC*spi) / p.HighThresholdDiv,
	}
	l.announceBase = l.decayLen
	l.degreeBase = 2 * l.decayLen
	l.roundLen = 2*l.decayLen + degBlocks*degBlockLen
	return l
}

// node is the per-node Radio MIS protocol state machine.
type node struct {
	info   radio.NodeInfo
	params Params
	lay    layout
	rounds int

	p         float64 // desire level p_t(v)
	round     int
	step      int // global step counter (engine steps seen)
	alive     bool
	inMIS     bool
	dominated bool
	finished  bool

	marked         bool
	heardMark      bool
	joinedThisRnd  bool
	heardAnnounce  bool
	markDecay      *decay.Phase
	announceDecay  *decay.Phase
	degCounts      []int
	joinRound      int
	dominatedRound int
}

var _ radio.Protocol = (*node)(nil)

func newNode(info radio.NodeInfo, params Params, lay layout, rounds int) *node {
	return &node{
		info:           info,
		params:         params,
		lay:            lay,
		rounds:         rounds,
		p:              0.5,
		alive:          true,
		joinRound:      -1,
		dominatedRound: -1,
	}
}

// phaseOf maps a local (within-round) step offset to its phase.
func (nd *node) phaseOf(local int) (phase, int) {
	switch {
	case local < nd.lay.announceBase:
		return phaseMark, local
	case local < nd.lay.degreeBase:
		return phaseAnnounce, local - nd.lay.announceBase
	default:
		return phaseDegree, local - nd.lay.degreeBase
	}
}

func (nd *node) Act(step int) radio.Action {
	if nd.finished {
		return radio.Listen()
	}
	local := nd.step % nd.lay.roundLen
	ph, off := nd.phaseOf(local)
	switch ph {
	case phaseMark:
		if off == 0 {
			nd.beginRound()
		}
		if nd.markDecay != nil {
			return nd.markDecay.Act(off)
		}
	case phaseAnnounce:
		if off == 0 {
			nd.resolveMark()
		}
		if nd.announceDecay != nil {
			return nd.announceDecay.Act(off)
		}
	case phaseDegree:
		if off == 0 {
			nd.resolveAnnounce()
		}
		if nd.alive {
			block := off / nd.lay.degBlockLen
			prob := nd.p / math.Pow(2, float64(block))
			if nd.info.RNG.Bernoulli(prob) {
				return radio.Transmit(degPing{})
			}
		}
	}
	return radio.Listen()
}

// degPing is the (content-free) payload of degree-estimation transmissions.
type degPing struct{}

// markMsg and announceMsg are the Decay payloads; content is irrelevant to
// the algorithm (presence alone carries the bit).
type (
	markMsg     struct{}
	announceMsg struct{}
)

// beginRound draws the round's mark coin and prepares the mark Decay block.
func (nd *node) beginRound() {
	nd.marked = false
	nd.heardMark = false
	nd.joinedThisRnd = false
	nd.heardAnnounce = false
	nd.markDecay = nil
	nd.announceDecay = nil
	nd.degCounts = make([]int, nd.lay.degBlocks)
	if !nd.alive {
		return
	}
	nd.marked = nd.info.RNG.Bernoulli(nd.p)
	nd.markDecay = decay.NewPhase(nd.info.N, nd.params.DecayFactor*nd.lay.spi,
		nd.marked, markMsg{}, nd.info.RNG)
}

// resolveMark decides MIS joining after the mark block and prepares the
// announcement block.
func (nd *node) resolveMark() {
	if nd.alive && nd.marked && !nd.heardMark {
		nd.inMIS = true
		nd.joinedThisRnd = true
		nd.joinRound = nd.round
	}
	nd.announceDecay = decay.NewPhase(nd.info.N, nd.params.DecayFactor*nd.lay.spi,
		nd.joinedThisRnd, announceMsg{}, nd.info.RNG)
}

// resolveAnnounce removes MIS nodes and their dominated neighbors from the
// residual graph.
func (nd *node) resolveAnnounce() {
	if nd.joinedThisRnd {
		nd.alive = false
	} else if nd.alive && nd.heardAnnounce {
		nd.alive = false
		nd.dominated = true
		nd.dominatedRound = nd.round
	}
}

func (nd *node) Deliver(step int, msg radio.Message) {
	if nd.finished {
		return
	}
	local := nd.step % nd.lay.roundLen
	ph, off := nd.phaseOf(local)
	switch ph {
	case phaseMark:
		if msg != nil && nd.alive {
			nd.heardMark = true
		}
		if nd.markDecay != nil {
			nd.markDecay.Deliver(off, msg)
		}
	case phaseAnnounce:
		if msg != nil && nd.alive && !nd.joinedThisRnd {
			nd.heardAnnounce = true
		}
		if nd.announceDecay != nil {
			nd.announceDecay.Deliver(off, msg)
		}
	case phaseDegree:
		if msg != nil && nd.alive {
			block := off / nd.lay.degBlockLen
			nd.degCounts[block]++
		}
	}
	nd.step++
	if nd.step%nd.lay.roundLen == 0 {
		nd.endRound()
	}
}

// endRound applies the desire-level update rule from the degree estimate and
// advances the round counter.
func (nd *node) endRound() {
	if nd.alive {
		high := false
		for _, c := range nd.degCounts {
			if float64(c) >= nd.lay.highThresh {
				high = true
				break
			}
		}
		if high {
			nd.p /= 2
		} else {
			nd.p = math.Min(2*nd.p, 0.5)
		}
	}
	nd.round++
	// Removed nodes (MIS members and dominated nodes) leave the protocol at
	// the end of their removal round — Algorithm 7 removes them from the
	// graph. Alive nodes persist until the round budget runs out.
	if !nd.alive || nd.round >= nd.rounds {
		nd.finished = true
	}
}

func (nd *node) Done() bool { return nd.finished }

// state snapshots the node for observers.
func (nd *node) state() NodeState {
	return NodeState{
		P:         nd.p,
		Alive:     nd.alive,
		InMIS:     nd.inMIS,
		Dominated: nd.dominated,
		Marked:    nd.marked,
	}
}

// Run executes Radio MIS (Algorithm 7) on g and returns the outcome.
// The graph need not be connected (MIS is a local problem, §1.2).
func Run(g *graph.Graph, params Params, seed uint64) (*Outcome, error) {
	return run(g, params, seed, g.N(), nil)
}

// RunAsync executes Radio MIS under *staggered* wake-up (wakeAt[v] is the
// step node v joins the network). The paper assumes synchronous wake-up
// (§1.1) and Algorithm 7 is NOT correct without it — a node can wake after
// its neighbor joined the MIS and stopped announcing, then join the MIS
// itself. This entry point exists for experiment E15, which quantifies that
// failure mode; production users should call Run.
func RunAsync(g *graph.Graph, params Params, seed uint64, wakeAt []int) (*Outcome, error) {
	return run(g, params, seed, g.N(), wakeAt)
}

// RunDetailed runs Radio MIS with an explicit network-size estimate nEst
// (≥ n, the ad-hoc model's linear upper estimate) and a per-step observer.
// Experiment E16 uses it to realize the single-hop wake-up reduction of
// §1.5.1 / footnote 3: k clique nodes run the algorithm parameterized by a
// much larger n, and the time to the first *clear* transmission (exactly
// one transmitter) lower-bounds any correct MIS algorithm.
func RunDetailed(g *graph.Graph, params Params, seed uint64, nEst int, onStep func(radio.StepStats)) (*Outcome, error) {
	return runEngine(g.N(), params, seed, nEst, nil, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
		userOnStep := opts.OnStep
		opts.OnStep = func(st radio.StepStats) {
			if onStep != nil {
				onStep(st)
			}
			if userOnStep != nil {
				userOnStep(st)
			}
		}
		return radio.Run(g, factory, opts)
	})
}

// EngineFunc abstracts the reception engine so Radio MIS can be executed
// under alternative physics (e.g. radio.Run with Options.PHY set to a
// phy.SINR or phy.CollisionCD model). The engine must honor MaxSteps,
// Seed, N and OnStep from opts.
type EngineFunc func(factory radio.Factory, opts radio.Options) (radio.Result, error)

// RunOnEngine executes Radio MIS with a custom reception engine. g supplies
// the size estimate and is NOT consulted for delivery — the engine is.
// Used by experiment E13 to run Algorithm 7 under SINR physics.
func RunOnEngine(g *graph.Graph, params Params, seed uint64, engine EngineFunc) (*Outcome, error) {
	return runEngine(g.N(), params, seed, g.N(), nil, engine)
}

// RunOnEngineN is RunOnEngine for graph-free engines (radio.RunCSR and the
// streaming million-node path): the caller supplies the node count directly
// so no graph.Graph intermediate ever needs to exist. Validity of the
// outcome is the caller's to check against whatever adjacency it holds.
func RunOnEngineN(n int, params Params, seed uint64, engine EngineFunc) (*Outcome, error) {
	return runEngine(n, params, seed, n, nil, engine)
}

// runWithEstimate runs Radio MIS with an explicit network-size estimate
// nEst ≥ n, exercising the ad-hoc model's "linear upper estimate" clause.
func runWithEstimate(g *graph.Graph, params Params, seed uint64, nEst int) (*Outcome, error) {
	return run(g, params, seed, nEst, nil)
}

// run is the shared implementation behind Run, RunAsync and runWithEstimate,
// using the standard graph-model engine.
func run(g *graph.Graph, params Params, seed uint64, nEst int, wakeAt []int) (*Outcome, error) {
	return runEngine(g.N(), params, seed, nEst, wakeAt, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
		return radio.Run(g, factory, opts)
	})
}

// runEngine is the engine-parametric core of Radio MIS.
func runEngine(n int, params Params, seed uint64, nEst int, wakeAt []int, engine EngineFunc) (*Outcome, error) {
	params = params.withDefaults()
	if n == 0 {
		return nil, fmt.Errorf("mis: empty graph")
	}
	if nEst < n {
		nEst = n
	}
	lay := newLayout(nEst, params)
	rounds := params.RoundFactor * decay.StepsPerIteration(nEst)
	nodes := make([]*node, n)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nodes[info.Index] = newNode(info, params, lay, rounds)
		return nodes[info.Index]
	}
	maxSteps := rounds*lay.roundLen + 1
	if wakeAt != nil {
		maxSteps += maxIntSlice(wakeAt)
	}
	opts := radio.Options{MaxSteps: maxSteps, Seed: seed, N: nEst, WakeAt: wakeAt}
	if params.Observer != nil {
		states := make([]NodeState, n)
		opts.OnStep = func(st radio.StepStats) {
			if (st.Step+1)%lay.roundLen != 0 {
				return
			}
			round := (st.Step + 1) / lay.roundLen
			for v, nd := range nodes {
				states[v] = nd.state()
			}
			params.Observer(round-1, states)
		}
	}
	res, err := engine(factory, opts)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Steps:          res.Steps,
		Rounds:         rounds,
		JoinRound:      make([]int, n),
		DominatedRound: make([]int, n),
		Completed:      true,
		Transmissions:  res.Transmissions,
	}
	for v, nd := range nodes {
		out.JoinRound[v] = nd.joinRound
		out.DominatedRound[v] = nd.dominatedRound
		if nd.inMIS {
			out.MIS = append(out.MIS, v)
		}
		if nd.alive {
			out.Completed = false
		}
	}
	return out, nil
}

// EstimateLayout exposes the per-round step layout for a given n and params,
// for experiment bookkeeping (steps per round = O(log² n)).
func EstimateLayout(n int, params Params) (roundLen, rounds int) {
	params = params.withDefaults()
	lay := newLayout(n, params)
	return lay.roundLen, params.RoundFactor * decay.StepsPerIteration(n)
}

// EffectiveDegree computes d_t(v) = Σ_{u∈N(v), alive} p_t(u) from engine-side
// state — used by experiments to classify golden rounds (Lemma 12). Protocol
// code never calls this (it would violate the ad-hoc model).
func EffectiveDegree(g *graph.Graph, states []NodeState, v int) float64 {
	var d float64
	for _, u := range g.Neighbors(v) {
		if states[u].Alive {
			d += states[u].P
		}
	}
	return d
}

// Verify checks the MIS output against the graph: independence and
// maximality (Theorem 14's correctness clause).
func Verify(g *graph.Graph, misSet []int) error {
	if !g.IsIndependentSet(misSet) {
		return fmt.Errorf("mis: output not independent")
	}
	if !g.IsMaximalIndependentSet(misSet) {
		return fmt.Errorf("mis: output not maximal")
	}
	return nil
}

func maxIntSlice(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// localSeedRNGs is shared scaffolding for the LOCAL-model reference
// algorithms.
func localSeedRNGs(n int, seed uint64) []*xrand.RNG {
	root := xrand.New(seed)
	rngs := make([]*xrand.RNG, n)
	for v := range rngs {
		rngs[v] = root.Split(uint64(v))
	}
	return rngs
}
