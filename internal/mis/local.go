package mis

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// GhaffariLocal runs Ghaffari's MIS algorithm (Algorithm 4 of the paper) in
// the idealized LOCAL message-passing model, where each round every node
// learns its neighbors' marks, MIS joins, and desire levels exactly. It is
// the reference the radio adaptation (Algorithm 7) is measured against.
//
// It returns the MIS and the number of rounds until the residual graph
// emptied (or maxRounds if it did not).
func GhaffariLocal(g *graph.Graph, maxRounds int, seed uint64) ([]int, int, error) {
	n := g.N()
	if n == 0 {
		return nil, 0, fmt.Errorf("mis: empty graph")
	}
	rngs := localSeedRNGs(n, seed)
	p := make([]float64, n)
	alive := make([]bool, n)
	inMIS := make([]bool, n)
	for v := range p {
		p[v] = 0.5
		alive[v] = true
	}
	marked := make([]bool, n)
	emptiedAt := maxRounds
	for round := 0; round < maxRounds; round++ {
		anyAlive := false
		for v := 0; v < n; v++ {
			marked[v] = alive[v] && rngs[v].Bernoulli(p[v])
			anyAlive = anyAlive || alive[v]
		}
		if !anyAlive {
			emptiedAt = round
			break
		}
		// Joins: marked with no marked neighbor.
		joined := make([]bool, n)
		for v := 0; v < n; v++ {
			if !marked[v] {
				continue
			}
			lone := true
			for _, u := range g.Neighbors(v) {
				if marked[u] {
					lone = false
					break
				}
			}
			if lone {
				joined[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if joined[v] {
				inMIS[v] = true
				alive[v] = false
				for _, u := range g.Neighbors(v) {
					alive[u] = false
				}
			}
		}
		// Effective degree and desire-level update (exact in LOCAL).
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			var d float64
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					d += p[u]
				}
			}
			if d >= 2 {
				p[v] /= 2
			} else {
				p[v] = math.Min(2*p[v], 0.5)
			}
		}
	}
	var out []int
	for v := 0; v < n; v++ {
		if inMIS[v] {
			out = append(out, v)
		}
	}
	return out, emptiedAt, nil
}

// LubyLocal runs Luby's classic MIS algorithm in the LOCAL model: each round
// every alive node draws a uniform value; local minima join the MIS and
// their neighborhoods are removed. Returned alongside the round count.
//
// The paper (§4.1, footnote 4) explains why this variant is *not* adaptable
// to radio networks within O(log³ n); it is included purely as the idealized
// baseline.
func LubyLocal(g *graph.Graph, maxRounds int, seed uint64) ([]int, int, error) {
	n := g.N()
	if n == 0 {
		return nil, 0, fmt.Errorf("mis: empty graph")
	}
	rngs := localSeedRNGs(n, seed)
	alive := make([]bool, n)
	inMIS := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	vals := make([]float64, n)
	emptiedAt := maxRounds
	for round := 0; round < maxRounds; round++ {
		anyAlive := false
		for v := 0; v < n; v++ {
			if alive[v] {
				vals[v] = rngs[v].Float64()
				anyAlive = true
			}
		}
		if !anyAlive {
			emptiedAt = round
			break
		}
		joined := make([]bool, n)
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			minLocal := true
			for _, u := range g.Neighbors(v) {
				if alive[u] && vals[u] <= vals[v] && int(u) != v {
					if vals[u] < vals[v] || int(u) < v { // deterministic tie-break
						minLocal = false
						break
					}
				}
			}
			if minLocal {
				joined[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if joined[v] {
				inMIS[v] = true
				alive[v] = false
				for _, u := range g.Neighbors(v) {
					alive[u] = false
				}
			}
		}
	}
	var out []int
	for v := 0; v < n; v++ {
		if inMIS[v] {
			out = append(out, v)
		}
	}
	return out, emptiedAt, nil
}
