package mis

import (
	"fmt"
	"math"

	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/radio"
)

// DegreeEstimate is the outcome of a standalone EstimateEffectiveDegree run
// (Algorithm 6) for one node.
type DegreeEstimate struct {
	// High is the procedure's output: true = High, false = Low.
	High bool
	// MaxBlockCount is the largest per-block reception count observed.
	MaxBlockCount int
	// TrueEffectiveDegree is the engine-side d(v) = Σ_{u∈N(v)} p(u),
	// recorded for experiment tables; the node itself never sees it.
	TrueEffectiveDegree float64
}

// degreeNode runs exactly one EstimateEffectiveDegree block and halts.
type degreeNode struct {
	info     radio.NodeInfo
	p        float64
	blockLen int
	blocks   int
	step     int
	counts   []int
	done     bool
}

var _ radio.Protocol = (*degreeNode)(nil)

func (d *degreeNode) Act(step int) radio.Action {
	if d.step >= d.blocks*d.blockLen {
		d.done = true
		return radio.Listen()
	}
	block := d.step / d.blockLen
	prob := d.p / math.Pow(2, float64(block))
	if d.info.RNG.Bernoulli(prob) {
		return radio.Transmit(degPing{})
	}
	return radio.Listen()
}

func (d *degreeNode) Deliver(step int, msg radio.Message) {
	if d.step < d.blocks*d.blockLen && msg != nil {
		d.counts[d.step/d.blockLen]++
	}
	d.step++
	if d.step >= d.blocks*d.blockLen {
		d.done = true
	}
}

func (d *degreeNode) Done() bool { return d.done }

// RunDegreeEstimate executes one EstimateEffectiveDegree block (Algorithm 6)
// on g, with fixed per-node desire levels p (as if frozen mid-MIS), and
// returns each node's High/Low verdict. C and div default as in Params.
//
// Lemma 11 predicts: d(v) ≥ 1 ⇒ High whp; d(v) ≤ 0.01 ⇒ Low whp; anything
// is allowed in between.
func RunDegreeEstimate(g *graph.Graph, p []float64, params Params, seed uint64) ([]DegreeEstimate, int, error) {
	params = params.withDefaults()
	n := g.N()
	if n == 0 {
		return nil, 0, fmt.Errorf("mis: empty graph")
	}
	if len(p) != n {
		return nil, 0, fmt.Errorf("mis: p has %d entries for %d nodes", len(p), n)
	}
	for v, pv := range p {
		if pv < 0 || pv > 1 {
			return nil, 0, fmt.Errorf("mis: p[%d]=%v outside [0,1]", v, pv)
		}
	}
	spi := decay.StepsPerIteration(n)
	blockLen := params.DegreeC * spi
	blocks := spi + 1
	thresh := float64(params.DegreeC*spi) / params.HighThresholdDiv

	nodes := make([]*degreeNode, n)
	factory := func(info radio.NodeInfo) radio.Protocol {
		nodes[info.Index] = &degreeNode{
			info:     info,
			p:        p[info.Index],
			blockLen: blockLen,
			blocks:   blocks,
			counts:   make([]int, blocks),
		}
		return nodes[info.Index]
	}
	res, err := radio.Run(g, factory, radio.Options{MaxSteps: blocks*blockLen + 1, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	out := make([]DegreeEstimate, n)
	for v, nd := range nodes {
		est := DegreeEstimate{}
		for _, c := range nd.counts {
			if c > est.MaxBlockCount {
				est.MaxBlockCount = c
			}
			if float64(c) >= thresh {
				est.High = true
			}
		}
		var d float64
		for _, u := range g.Neighbors(v) {
			d += p[u]
		}
		est.TrueEffectiveDegree = d
		out[v] = est
	}
	return out, res.Steps, nil
}
