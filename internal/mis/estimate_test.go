package mis

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// lemma11Params uses a larger C so the small-n concentration matches the
// lemma's asymptotic claim.
var lemma11Params = Params{DegreeC: 48}

func TestLemma11HighSide(t *testing.T) {
	// Star center with 8 leaves at p = 1/4 each: d(center) = 2 ≥ 1 → High whp.
	g := gen.Star(9)
	p := make([]float64, 9)
	for v := 1; v < 9; v++ {
		p[v] = 0.25
	}
	highs := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		est, _, err := RunDegreeEstimate(g, p, lemma11Params, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if est[0].TrueEffectiveDegree != 2 {
			t.Fatalf("wiring error: d(center) = %v", est[0].TrueEffectiveDegree)
		}
		if est[0].High {
			highs++
		}
	}
	if highs < trials-1 {
		t.Fatalf("High returned only %d/%d times for d=2", highs, trials)
	}
}

func TestLemma11LowSide(t *testing.T) {
	// d(v) = 0 exactly (isolated listeners): must be Low always.
	g := graph.New(6)
	p := make([]float64, 6)
	est, _, err := RunDegreeEstimate(g, p, lemma11Params, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, e := range est {
		if e.High {
			t.Fatalf("isolated node %d returned High", v)
		}
	}
}

func TestLemma11LowSideTinyDegree(t *testing.T) {
	// One neighbor at p = 0.005: d(v) = 0.005 ≤ 0.01 → Low whp.
	g := gen.Path(2)
	p := []float64{0, 0.005}
	lows := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		est, _, err := RunDegreeEstimate(g, p, lemma11Params, uint64(100+trial))
		if err != nil {
			t.Fatal(err)
		}
		if !est[0].High {
			lows++
		}
	}
	if lows < trials-2 {
		t.Fatalf("Low returned only %d/%d times for d=0.005", lows, trials)
	}
}

func TestLemma11HighSideLargeDegree(t *testing.T) {
	// Very dense: clique of 64 at p = 1/2 → d(v) = 31.5; the 2^-i sweep must
	// still find a block with ~1 expected transmitter.
	g := gen.Clique(64)
	p := make([]float64, 64)
	for v := range p {
		p[v] = 0.5
	}
	est, _, err := RunDegreeEstimate(g, p, lemma11Params, 5)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, e := range est {
		if !e.High {
			misses++
		}
	}
	if misses > 1 {
		t.Fatalf("%d/64 clique nodes failed to detect High", misses)
	}
}

func TestRunDegreeEstimateValidation(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := RunDegreeEstimate(g, []float64{0.1, 0.1}, Params{}, 1); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, _, err := RunDegreeEstimate(g, []float64{0.1, 2, 0.1}, Params{}, 1); err == nil {
		t.Fatal("want range error")
	}
	if _, _, err := RunDegreeEstimate(graph.New(0), nil, Params{}, 1); err == nil {
		t.Fatal("want empty-graph error")
	}
}

func TestDegreeEstimateStepsBudget(t *testing.T) {
	// One block is (log₂n + 1)·C·log₂n steps = O(log² n).
	g := gen.Clique(16)
	p := make([]float64, 16)
	_, steps, err := RunDegreeEstimate(g, p, Params{DegreeC: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (4 + 1) * 8 * 4 // blocks × C × spi
	if steps > want+1 {
		t.Fatalf("steps %d exceeds budget %d", steps, want)
	}
}
