package mis

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestRadioMISSingleNode(t *testing.T) {
	out, err := Run(graph.New(1), Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MIS) != 1 || out.MIS[0] != 0 {
		t.Fatalf("MIS = %v, want {0}", out.MIS)
	}
	if !out.Completed {
		t.Fatal("single node should complete")
	}
}

func TestRadioMISEmptyGraphError(t *testing.T) {
	if _, err := Run(graph.New(0), Params{}, 1); err == nil {
		t.Fatal("want error for empty graph")
	}
}

func TestRadioMISIsolatedNodes(t *testing.T) {
	// MIS is a local problem; disconnected graphs are legal (§1.2).
	g := graph.New(8) // no edges: MIS must be everything
	out, err := Run(g, Params{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MIS) != 8 {
		t.Fatalf("MIS size %d, want 8", len(out.MIS))
	}
	if err := Verify(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestRadioMISCorrectnessAcrossClasses(t *testing.T) {
	rng := xrand.New(1)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path64", gen.Path(64)},
		{"cycle63", gen.Cycle(63)},
		{"clique48", gen.Clique(48)},
		{"star64", gen.Star(64)},
		{"grid8x8", gen.Grid(8, 8)},
		{"gnp", gen.GNP(96, 0.08, rng)},
		{"tree", gen.RandomTree(80, rng)},
		{"cliquechain", gen.CliqueChain(6, 8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := Run(tc.g, Params{}, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Completed {
				t.Fatalf("did not complete within %d rounds", out.Rounds)
			}
			if err := Verify(tc.g, out.MIS); err != nil {
				t.Fatalf("%v (MIS=%v)", err, out.MIS)
			}
		})
	}
}

func TestRadioMISUDG(t *testing.T) {
	rng := xrand.New(2)
	g, _, err := gen.ConnectedUDG(120, 7, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(g, Params{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("UDG MIS did not complete")
	}
	if err := Verify(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestRadioMISCliqueSelectsExactlyOne(t *testing.T) {
	g := gen.Clique(32)
	for seed := uint64(0); seed < 5; seed++ {
		out, err := Run(g, Params{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.MIS) != 1 {
			t.Fatalf("seed %d: clique MIS size %d, want 1", seed, len(out.MIS))
		}
	}
}

func TestRadioMISMultipleSeeds(t *testing.T) {
	g := gen.Grid(6, 10)
	for seed := uint64(10); seed < 18; seed++ {
		out, err := Run(g, Params{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if err := Verify(g, out.MIS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRadioMISStepsAreLogCubed(t *testing.T) {
	// Theorem 14: O(log³ n) time-steps. Check Steps / log³n stays bounded
	// (within a factor band) as n grows on cliques — the densest case.
	ratios := []float64{}
	for _, n := range []int{16, 64, 256} {
		out, err := Run(gen.Clique(n), Params{}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Completed {
			t.Fatalf("n=%d incomplete", n)
		}
		l := math.Log2(float64(n))
		ratios = append(ratios, float64(out.Steps)/(l*l*l))
	}
	// The ratio should not blow up with n (allow ~3x drift across the sweep).
	if ratios[2] > 3*ratios[0] {
		t.Fatalf("steps/log³n growing: %v", ratios)
	}
}

func TestRadioMISJoinDominatedBookkeeping(t *testing.T) {
	g := gen.Star(16)
	out, err := Run(g, Params{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, out.MIS); err != nil {
		t.Fatal(err)
	}
	inMIS := map[int]bool{}
	for _, v := range out.MIS {
		inMIS[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if inMIS[v] {
			if out.JoinRound[v] < 0 {
				t.Fatalf("MIS node %d has no join round", v)
			}
			if out.DominatedRound[v] >= 0 {
				t.Fatalf("MIS node %d also dominated", v)
			}
		} else {
			if out.DominatedRound[v] < 0 {
				t.Fatalf("non-MIS node %d never dominated", v)
			}
		}
	}
}

func TestRadioMISObserverGoldenRounds(t *testing.T) {
	// Exercise the Lemma 12/13 instrumentation path: effective degrees are
	// computable from snapshots and the residual graph shrinks over rounds.
	g := gen.GNP(64, 0.1, xrand.New(9))
	var aliveSeries []int
	params := Params{Observer: func(round int, states []NodeState) {
		alive := 0
		for _, s := range states {
			if s.Alive {
				alive++
			}
		}
		aliveSeries = append(aliveSeries, alive)
		for v := range states {
			d := EffectiveDegree(g, states, v)
			if d < 0 {
				t.Fatalf("negative effective degree %v", d)
			}
		}
	}}
	out, err := Run(g, params, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(aliveSeries) == 0 {
		t.Fatal("observer never called")
	}
	for i := 1; i < len(aliveSeries); i++ {
		if aliveSeries[i] > aliveSeries[i-1] {
			t.Fatalf("alive count increased: %v", aliveSeries)
		}
	}
	if !out.Completed {
		t.Fatal("incomplete")
	}
	if aliveSeries[len(aliveSeries)-1] != 0 {
		// After the final round all nodes should be removed (they halt).
		t.Fatalf("final alive count %d", aliveSeries[len(aliveSeries)-1])
	}
}

func TestRadioMISWithOverestimates(t *testing.T) {
	// The ad-hoc model only promises linear upper estimates of n; the
	// algorithm must still work when n̂ = 4·n.
	g := gen.Grid(5, 8)
	lay, rounds := EstimateLayout(4*g.N(), Params{})
	_ = lay
	_ = rounds
	out, err := runWithEstimate(g, Params{}, 13, 4*g.N())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("incomplete with overestimated n")
	}
	if err := Verify(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateLayoutScaling(t *testing.T) {
	r16, rounds16 := EstimateLayout(16, Params{})
	r256, rounds256 := EstimateLayout(256, Params{})
	if r256 <= r16 || rounds256 <= rounds16 {
		t.Fatalf("layout should grow with n: (%d,%d) vs (%d,%d)", r16, rounds16, r256, rounds256)
	}
	// roundLen is Θ(log² n): ratio for 16→256 (log 4→8) should be ~4.
	ratio := float64(r256) / float64(r16)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("roundLen ratio %v outside [2,8]", ratio)
	}
}

func TestVerifyRejectsBadSets(t *testing.T) {
	g := gen.Path(5)
	if err := Verify(g, []int{0, 1}); err == nil {
		t.Fatal("dependent set accepted")
	}
	if err := Verify(g, []int{0, 4}); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	if err := Verify(g, []int{0, 2, 4}); err != nil {
		t.Fatal(err)
	}
}
