package mis

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestGhaffariLocalCorrectness(t *testing.T) {
	rng := xrand.New(3)
	graphs := []*graph.Graph{
		gen.Path(100), gen.Clique(60), gen.Grid(10, 10),
		gen.GNP(120, 0.06, rng), gen.Star(50), gen.RandomTree(90, rng),
	}
	for i, g := range graphs {
		set, rounds, err := GhaffariLocal(g, 200, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if rounds >= 200 {
			t.Fatalf("graph %d: did not converge", i)
		}
		if err := Verify(g, set); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

func TestLubyLocalCorrectness(t *testing.T) {
	rng := xrand.New(4)
	graphs := []*graph.Graph{
		gen.Path(100), gen.Clique(60), gen.Grid(10, 10), gen.GNP(120, 0.06, rng),
	}
	for i, g := range graphs {
		set, rounds, err := LubyLocal(g, 200, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if rounds >= 200 {
			t.Fatalf("graph %d: did not converge", i)
		}
		if err := Verify(g, set); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

func TestLocalAlgorithmsEmptyGraph(t *testing.T) {
	if _, _, err := GhaffariLocal(graph.New(0), 10, 1); err == nil {
		t.Fatal("want error")
	}
	if _, _, err := LubyLocal(graph.New(0), 10, 1); err == nil {
		t.Fatal("want error")
	}
}

func TestGhaffariLocalConvergesInLogRounds(t *testing.T) {
	// O(log Δ + ...) round complexity; on a 4096-node clique it should be
	// well under 60 rounds with the defaults.
	_, rounds, err := GhaffariLocal(gen.Clique(512), 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > 80 {
		t.Fatalf("clique convergence took %d rounds", rounds)
	}
}

func TestLubyLocalCliqueOneRound(t *testing.T) {
	set, rounds, err := LubyLocal(gen.Clique(128), 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("clique MIS size %d", len(set))
	}
	if rounds > 2 {
		t.Fatalf("luby on a clique took %d rounds", rounds)
	}
}

func TestLocalAndRadioAgreeOnStructure(t *testing.T) {
	// Not equality of sets (different randomness), but both must be valid
	// maximal independent sets of the same graph, and on bipartite-ish
	// structured graphs their sizes should be in the same ballpark.
	g := gen.Grid(8, 8)
	radioOut, err := Run(g, Params{}, 21)
	if err != nil {
		t.Fatal(err)
	}
	localSet, _, err := GhaffariLocal(g, 200, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, radioOut.MIS); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, localSet); err != nil {
		t.Fatal(err)
	}
	// Any MIS of the 8x8 grid has size between 16 (domination bound) and 32.
	for _, sz := range []int{len(radioOut.MIS), len(localSet)} {
		if sz < 13 || sz > 32 {
			t.Fatalf("implausible grid MIS size %d", sz)
		}
	}
}
