package mis

import (
	"testing"

	"repro/internal/decay"
	"repro/internal/gen"
	"repro/internal/radio"
)

// TestRadioMISOnConcurrentEngine is the strongest engine cross-validation:
// the complete Radio MIS protocol — the most stateful protocol in the
// repository — must produce the *identical* MIS on the goroutine-per-node
// engine as on the sequential one for the same seed.
func TestRadioMISOnConcurrentEngine(t *testing.T) {
	g := gen.Grid(6, 6)
	params := Params{}.withDefaults()
	lay := newLayout(g.N(), params)
	rounds := params.RoundFactor * decay.StepsPerIteration(g.N())

	runEngineMode := func(concurrent bool) []int {
		t.Helper()
		nodes := make([]*node, g.N())
		factory := func(info radio.NodeInfo) radio.Protocol {
			nodes[info.Index] = newNode(info, params, lay, rounds)
			return nodes[info.Index]
		}
		_, err := radio.Run(g, factory, radio.Options{
			MaxSteps:   rounds*lay.roundLen + 1,
			Seed:       1234,
			Concurrent: concurrent,
		})
		if err != nil {
			t.Fatal(err)
		}
		var set []int
		for v, nd := range nodes {
			if nd.inMIS {
				set = append(set, v)
			}
		}
		return set
	}

	seq := runEngineMode(false)
	con := runEngineMode(true)
	if len(seq) != len(con) {
		t.Fatalf("MIS sizes differ: %d vs %d", len(seq), len(con))
	}
	for i := range seq {
		if seq[i] != con[i] {
			t.Fatalf("MIS differs at position %d: %v vs %v", i, seq, con)
		}
	}
	if err := Verify(g, seq); err != nil {
		t.Fatal(err)
	}
}
