package mis

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/radio"
)

func TestRunDetailedObserverAndEstimate(t *testing.T) {
	// RunDetailed must honor both the explicit n estimate and the per-step
	// observer, and still produce a valid MIS.
	g := gen.Clique(4)
	steps := 0
	clearSteps := 0
	out, err := RunDetailed(g, Params{}, 3, 64, func(st radio.StepStats) {
		steps++
		if st.Transmits == 1 {
			clearSteps++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != out.Steps {
		t.Fatalf("observer saw %d steps, outcome says %d", steps, out.Steps)
	}
	if !out.Completed || len(out.MIS) != 1 {
		t.Fatalf("outcome %+v", out)
	}
	if clearSteps == 0 {
		t.Fatal("no clear transmission observed (reduction argument needs one)")
	}
	// With the inflated estimate (64 ≫ 4), the layout is the 64-node one.
	roundLen, _ := EstimateLayout(64, Params{})
	if out.Steps%roundLen != 0 && out.Steps != 1 {
		// Completion always lands on a round boundary for completed runs.
		t.Fatalf("steps %d not a multiple of the 64-estimate round length %d", out.Steps, roundLen)
	}
}

func TestRunDetailedSmallerEstimateClamped(t *testing.T) {
	// nEst below n clamps up to n.
	g := gen.Path(10)
	out, err := RunDetailed(g, Params{}, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatal("incomplete")
	}
	if err := Verify(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}
