// Package chaos is the fault-injection layer behind the crash-safety test
// suites (DESIGN.md §8). Production code threads a *Faults through its I/O
// and execution sites and consults Check at each one; a nil *Faults is a
// no-op, so the hot paths pay a single nil comparison when chaos is off.
// Tests arm named sites with bounded failure windows — "fail the next two
// store writes", "kill the worker at the third checkpoint", "stall every
// trial 50ms" — and assert the system degrades, retries, or resumes instead
// of corrupting state.
//
// Sites are plain strings owned by the instrumented package (e.g.
// "store.put", "serve.trial", "checkpoint"). The registry is deliberately
// dumb: no probabilities, no time dependence — deterministic countdown
// windows keep chaos tests reproducible, in the same spirit as the engines'
// seed-determinism contract.
package chaos

import (
	"sync"
	"time"
)

// rule is one armed failure window at a site.
type rule struct {
	skip  int           // successful passes remaining before the window opens
	count int           // failures remaining in the window; < 0 = forever
	err   error         // the injected error (nil with delay = slow, not fail)
	delay time.Duration // injected latency, applied inside the window
}

// Faults is a registry of armed fault windows keyed by site name. The zero
// value is ready to use; the nil *Faults injects nothing. Safe for
// concurrent use.
type Faults struct {
	mu        sync.Mutex
	rules     map[string][]*rule
	triggered map[string]int
}

// New returns an empty registry.
func New() *Faults { return &Faults{} }

// Arm opens a failure window at site: after skip successful Check passes,
// the next count calls fail with err (count < 0 = every call forever).
// Multiple Arm calls on one site queue in order: a window is consumed
// before the next one's skip countdown starts.
func (f *Faults) Arm(site string, skip, count int, err error) {
	f.arm(site, &rule{skip: skip, count: count, err: err})
}

// ArmDelay opens a latency window at site: after skip passes, the next
// count calls sleep d before returning nil (count < 0 = forever). Combined
// fail+delay windows can be built by arming both in sequence.
func (f *Faults) ArmDelay(site string, skip, count int, d time.Duration) {
	f.arm(site, &rule{skip: skip, count: count, delay: d})
}

func (f *Faults) arm(site string, r *rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rules == nil {
		f.rules = make(map[string][]*rule)
	}
	f.rules[site] = append(f.rules[site], r)
}

// Check consults the registry at site: it returns the armed error (or
// sleeps the armed delay and returns nil) when a window is open, and nil
// when f is nil or nothing is armed. Instrumented code calls it at the top
// of the operation and aborts on a non-nil return.
func (f *Faults) Check(site string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	rs := f.rules[site]
	if len(rs) == 0 {
		f.mu.Unlock()
		return nil
	}
	r := rs[0]
	if r.skip > 0 {
		r.skip--
		f.mu.Unlock()
		return nil
	}
	// The window is open: consume one failure.
	if f.triggered == nil {
		f.triggered = make(map[string]int)
	}
	f.triggered[site]++
	if r.count > 0 {
		r.count--
		if r.count == 0 {
			f.rules[site] = rs[1:]
		}
	}
	err, delay := r.err, r.delay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Triggered reports how many times site has injected a fault (failure or
// delay). Nil-safe.
func (f *Faults) Triggered(site string) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.triggered[site]
}
