package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestNilFaultsAreNoOps(t *testing.T) {
	var f *Faults
	if err := f.Check("anything"); err != nil {
		t.Fatalf("nil Faults injected %v", err)
	}
	if n := f.Triggered("anything"); n != 0 {
		t.Fatalf("nil Faults triggered %d", n)
	}
}

func TestSkipThenWindowThenClear(t *testing.T) {
	f := New()
	boom := errors.New("boom")
	f.Arm("store.put", 2, 3, boom)
	var got []error
	for i := 0; i < 8; i++ {
		got = append(got, f.Check("store.put"))
	}
	for i, err := range got {
		wantFail := i >= 2 && i < 5
		if (err != nil) != wantFail {
			t.Fatalf("call %d: err=%v, want fail=%v", i, err, wantFail)
		}
		if wantFail && !errors.Is(err, boom) {
			t.Fatalf("call %d: got %v, want boom", i, err)
		}
	}
	if n := f.Triggered("store.put"); n != 3 {
		t.Fatalf("triggered %d, want 3", n)
	}
}

func TestForeverWindow(t *testing.T) {
	f := New()
	f.Arm("j", 0, -1, errors.New("dead"))
	for i := 0; i < 10; i++ {
		if f.Check("j") == nil {
			t.Fatalf("call %d passed through a forever window", i)
		}
	}
}

func TestQueuedWindows(t *testing.T) {
	f := New()
	e1, e2 := errors.New("one"), errors.New("two")
	f.Arm("s", 0, 1, e1)
	f.Arm("s", 1, 1, e2)
	if err := f.Check("s"); !errors.Is(err, e1) {
		t.Fatalf("first window: %v", err)
	}
	if err := f.Check("s"); err != nil {
		t.Fatalf("second window skip: %v", err)
	}
	if err := f.Check("s"); !errors.Is(err, e2) {
		t.Fatalf("second window: %v", err)
	}
	if err := f.Check("s"); err != nil {
		t.Fatalf("after all windows: %v", err)
	}
}

func TestArmDelay(t *testing.T) {
	f := New()
	f.ArmDelay("trial", 0, 1, 30*time.Millisecond)
	t0 := time.Now()
	if err := f.Check("trial"); err != nil {
		t.Fatalf("delay window failed: %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("delay window slept only %v", d)
	}
	if n := f.Triggered("trial"); n != 1 {
		t.Fatalf("triggered %d, want 1", n)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	f := New()
	f.Arm("a", 0, 1, errors.New("a"))
	if err := f.Check("b"); err != nil {
		t.Fatalf("site b affected by site a: %v", err)
	}
	if err := f.Check("a"); err == nil {
		t.Fatal("site a window not open")
	}
}
