package serve

// Spec execution: each spec becomes an exp trial grid (one trial per seed
// replica) run through the same engines and protocols the CLIs use, and the
// samples aggregate into the stats.Table / exp.ExperimentResult shapes that
// `radionet-bench -json` already emits — one JSON schema across the bench
// CLI and the service.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/mis"
	"repro/internal/radio"
	"repro/internal/stats"
)

// Result is the service's response record for one spec. Record reuses the
// exp.ExperimentResult schema (`radionet-bench -json` experiments[]), so
// bench tooling can consume service output unchanged.
type Result struct {
	SpecHash string               `json:"spec_hash"`
	Spec     Spec                 `json:"spec"`
	Record   exp.ExperimentResult `json:"record"`
}

// JSON marshals the result indented with a trailing newline. Struct-only
// encoding keeps the bytes deterministic — the property the cache-identity
// tests pin down.
func (r *Result) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ExecOptions parameterizes ExecuteWith beyond the plain Execute path —
// the crash-safety hooks the journaled job runner threads through
// (DESIGN.md §8). The zero value reproduces Execute's behavior.
type ExecOptions struct {
	// Parallel caps the trial-runner workers (≤ 0 selects 1).
	Parallel int
	// OnTrial observes progress as trials complete (exp.Config.OnTrialDone).
	OnTrial func(done, total int)
	// OnSample observes each freshly executed trial's sample with its
	// declaration index — the journaling hook (exp.Config.OnTrialSample).
	OnSample func(i int, s exp.Sample)
	// Prefilled maps trial indices to samples recovered from the journal;
	// those trials are installed without re-running.
	Prefilled map[int]exp.Sample
	// Cancelled is polled between trials; once true the run stops with
	// exp.ErrCancelled (drain, deadline, injected kill).
	Cancelled func() bool
	// OnCheckpoint, when non-nil and the spec is a dynamic flood, receives
	// each trial's engine checkpoints (trial declaration index, snapshot).
	// A non-nil return aborts the run — a run must not outpace its journal.
	OnCheckpoint func(trial int, cp *exp.FloodCheckpoint) error
	// Resume, when non-nil, resumes trial ResumeTrial from the snapshot
	// instead of step 0 (the trial interrupted mid-flight at the crash).
	ResumeTrial int
	Resume      *exp.FloodCheckpoint
	// ResumeFrom maps trial indices to prefix-cache snapshots (DESIGN.md
	// §9): each listed trial starts from its snapshot instead of step 0.
	// Unlike Resume — a crash-recovery artifact of this exact spec —
	// ResumeFrom snapshots may come from a *different* spec sharing this
	// one's prefix, which is sound because the trial seed and every epoch
	// up to the snapshot step are prefix-determined. Resume wins for its
	// trial when both are set. Snapshots that don't fit the run (step past
	// the budget, wrong node count) are dropped, degrading to a cold trial.
	ResumeFrom map[int]*exp.FloodCheckpoint
	// OnSnapshot, when non-nil and the spec is a dynamic flood, observes
	// each trial's epoch-boundary snapshots advisorily (cannot abort the
	// run) — the prefix-cache publication hook.
	OnSnapshot func(trial int, cp *exp.FloodCheckpoint)
	// OnProbe, when non-nil and the spec is a flood, observes each trial's
	// engine-load samples (radio.Options.Probe contract: epoch boundaries
	// plus one final sample; the sample is reused — copy out what you keep).
	// The service feeds these into its /metrics engine gauges (DESIGN.md
	// §10). Trials may run in parallel; the hook must be concurrency-safe.
	OnProbe func(trial int, s *radio.ProbeSample)
}

// Execute canonicalizes sp and runs it: Reps independent trials fan out
// over min(parallel, Reps) runner workers (parallel ≤ 0 selects 1 — the
// service keeps per-job parallelism capped so concurrent jobs share cores
// fairly). onTrial, when non-nil, observes progress as trials complete.
// The returned Result is a pure function of the canonical spec: per-trial
// seeds derive from (Seed, GridID, index) and aggregation is in
// declaration order, so Execute(sp) is byte-stable across calls, worker
// counts, and hosts.
func Execute(sp Spec, parallel int, onTrial func(done, total int)) (*Result, error) {
	return ExecuteWith(sp, ExecOptions{Parallel: parallel, OnTrial: onTrial})
}

// ExecuteWith is Execute with the crash-safety hooks attached. Prefilled
// trials and checkpoint resume do not change the result bytes — the
// determinism contract makes a recovered run indistinguishable from an
// uninterrupted one.
func ExecuteWith(sp Spec, o ExecOptions) (*Result, error) {
	c, err := sp.Canonicalize()
	if err != nil {
		return nil, err
	}
	parallel := o.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	grid := exp.NewGrid(c.GridID())
	tf := trialFunc(c)
	hooked := c.Algo == "flood" &&
		(o.OnCheckpoint != nil || o.Resume != nil || o.OnSnapshot != nil || o.OnProbe != nil || len(o.ResumeFrom) > 0)
	for i := 0; i < c.Reps; i++ {
		if !hooked {
			grid.Add(c.Algo, tf)
			continue
		}
		i := i
		grid.Add(c.Algo, func(seed uint64) (exp.Sample, error) {
			var onCkpt func(cp *exp.FloodCheckpoint) error
			if o.OnCheckpoint != nil {
				onCkpt = func(cp *exp.FloodCheckpoint) error { return o.OnCheckpoint(i, cp) }
			}
			var onSnap func(cp *exp.FloodCheckpoint)
			if o.OnSnapshot != nil {
				onSnap = func(cp *exp.FloodCheckpoint) { o.OnSnapshot(i, cp) }
			}
			var onProbe func(s *radio.ProbeSample)
			if o.OnProbe != nil {
				onProbe = func(s *radio.ProbeSample) { o.OnProbe(i, s) }
			}
			resume := o.ResumeFrom[i]
			if o.Resume != nil && i == o.ResumeTrial {
				resume = o.Resume
			}
			return floodTrial(c, seed, onCkpt, onSnap, onProbe, resume)
		})
	}
	samples, err := grid.Run(exp.Config{
		Scale: exp.Quick, Seed: c.Seed, Parallel: parallel,
		OnTrialDone: o.OnTrial, OnTrialSample: o.OnSample,
		Prefilled: o.Prefilled, Cancelled: o.Cancelled,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", c, err)
	}
	hash := c.Hash()
	return &Result{
		SpecHash: hash,
		Spec:     c,
		Record: exp.ExperimentResult{
			ID:     "serve:" + hash[:12],
			Title:  c.String(),
			Claim:  "determinism contract (DESIGN.md §3–§6): this record is a pure function of the spec",
			Tables: []*stats.Table{resultTable(c, samples)},
		},
	}, nil
}

// trialFunc builds the one-replica closure for a canonical spec. All
// randomness derives from the trial seed, per the runner contract.
func trialFunc(sp Spec) exp.TrialFunc {
	return func(seed uint64) (exp.Sample, error) {
		if sp.Algo == "flood" {
			return floodTrial(sp, seed, nil, nil, nil, nil)
		}
		if _, _, isPhy := gen.SplitPhySpec(sp.Graph); isPhy {
			return phyTrial(sp, seed)
		}
		g, err := gen.ByName(sp.Graph, sp.N, seed)
		if err != nil {
			return exp.Sample{}, err
		}
		src := sp.Source % g.N()
		switch sp.Algo {
		case "mis":
			out, err := mis.Run(g, mis.Params{}, seed)
			if err != nil {
				return exp.Sample{}, err
			}
			return exp.Sample{Values: exp.V(
				"mis_size", len(out.MIS),
				"steps", out.Steps,
				"rounds", out.Rounds,
				"completed", out.Completed,
				"valid", mis.Verify(g, out.MIS) == nil,
			)}, nil
		case "broadcast", "broadcast-all":
			params := core.Params{}
			if sp.Algo == "broadcast-all" {
				params.CenterMode = core.AllCenters
			}
			res, err := core.Broadcast(g, src, params, seed)
			if err != nil {
				return exp.Sample{}, err
			}
			return exp.Sample{Values: exp.V(
				"complete", res.CompleteStep,
				"total", res.TotalSteps,
				"main", res.MainSteps,
				"mis_steps", res.MISSteps,
				"mis_size", res.MISSize,
			)}, nil
		case "decay-broadcast":
			res, err := baseline.DecayBroadcast(g, src, 0, seed)
			if err != nil {
				return exp.Sample{}, err
			}
			return exp.Sample{Values: exp.V(
				"complete", res.CompleteStep,
				"levels", res.Levels,
				"transmissions", res.Transmissions,
			)}, nil
		case "election":
			er, err := core.LeaderElection(g, core.Params{}, seed)
			if err != nil {
				return exp.Sample{}, err
			}
			return exp.Sample{Values: exp.V(
				"complete", er.CompleteStep,
				"candidates", er.Candidates,
			)}, nil
		case "decay-election":
			er, err := baseline.DecayLeaderElection(g, 0, seed)
			if err != nil {
				return exp.Sample{}, err
			}
			return exp.Sample{Values: exp.V(
				"complete", er.CompleteStep,
				"candidates", er.Candidates,
			)}, nil
		default:
			return exp.Sample{}, badSpec("unknown algorithm %q", sp.Algo)
		}
	}
}

// phyTrial runs one replica of a phy: spec for the non-flood algorithms,
// through the same engine entry points the experiments use (mis.RunOnEngine,
// baseline.DecayBroadcastPHY).
func phyTrial(sp Spec, seed uint64) (exp.Sample, error) {
	g, model, err := gen.PhyDeployment(sp.Graph, sp.N, seed, sp.SINRParams())
	if err != nil {
		return exp.Sample{}, err
	}
	switch sp.Algo {
	case "mis":
		out, err := mis.RunOnEngine(g, mis.Params{}, seed, func(factory radio.Factory, opts radio.Options) (radio.Result, error) {
			opts.PHY = model
			return radio.Run(g, factory, opts)
		})
		if err != nil {
			return exp.Sample{}, err
		}
		return exp.Sample{Values: exp.V(
			"mis_size", len(out.MIS),
			"steps", out.Steps,
			"rounds", out.Rounds,
			"completed", out.Completed,
			"valid", mis.Verify(g, out.MIS) == nil,
		)}, nil
	case "decay-broadcast":
		res, err := baseline.DecayBroadcastPHY(g, model, sp.Source%g.N(), 0, seed)
		if err != nil {
			return exp.Sample{}, err
		}
		return exp.Sample{Values: exp.V(
			"complete", res.CompleteStep,
			"levels", res.Levels,
			"transmissions", res.Transmissions,
		)}, nil
	default:
		// Canonicalize admits only PhyAlgorithms; flood goes via floodTrial.
		return exp.Sample{}, badSpec("algorithm %q cannot run under physical-layer spec %q", sp.Algo, sp.Graph)
	}
}

// floodTrial runs the dynamic-topology flood (exp.RunFlood — the same
// runner E17–E21 and radionet-sim use) for one replica. On a phy: spec the
// schedule is static and the flood runs under the spec's reception model.
// onCkpt, onSnap, and resume thread the crash-safety and prefix-cache
// hooks into the flood run; all are nil outside journaled jobs and prefix
// runs (a static schedule has no epoch boundaries, so they are inert
// there). A resume snapshot that doesn't fit this run — captured past the
// budget (possible when it came from a longer sweep variant) or with a
// different node count (a corrupted or mismatched cache entry that slipped
// the checksum) — is dropped, not an error: the trial runs cold, which is
// always correct.
func floodTrial(sp Spec, seed uint64, onCkpt func(cp *exp.FloodCheckpoint) error, onSnap func(cp *exp.FloodCheckpoint), onProbe func(s *radio.ProbeSample), resume *exp.FloodCheckpoint) (exp.Sample, error) {
	sched, err := gen.ScheduleByName(sp.Graph, sp.N, sp.Epochs, sp.EpochLen, sp.Rate, seed)
	if err != nil {
		return exp.Sample{}, err
	}
	model, _, err := gen.SchedulePhyModel(sp.Graph, sched, sp.SINRParams())
	if err != nil {
		return exp.Sample{}, err
	}
	n := sched.N()
	budget := max(sched.LastStart()+sp.EpochLen, 4*sp.EpochLen)
	if resume != nil {
		if e := resume.Engine; e == nil || e.Step <= 0 || e.Step >= budget || len(e.Nodes) != n {
			resume = nil
		}
	}
	g := sched.CSR(0).Graph()
	out, err := exp.RunFlood(g, sched, map[int]int64{sp.Source % n: 1}, exp.FloodConfig{
		Budget: budget, ProbeStep: -1, Seed: seed, PHY: model,
		OnCheckpoint: onCkpt, OnSnapshot: onSnap, Probe: onProbe, Resume: resume,
	})
	if err != nil {
		return exp.Sample{}, err
	}
	complete := out.Complete
	if complete < 0 {
		complete = budget
	}
	return exp.Sample{Values: exp.V(
		"completed", out.Complete >= 0,
		"complete", complete,
		"informed_end", out.InformedEnd,
		"n_nodes", n,
	)}, nil
}

// resultTable aggregates the replicas' samples: one row per metric in
// sorted name order, summarizing over Reps.
func resultTable(sp Spec, samples []exp.Sample) *stats.Table {
	seen := make(map[string]bool)
	var names []string
	for _, s := range samples {
		for name := range s.Values {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	t := &stats.Table{
		Title:  fmt.Sprintf("%s on %s (n=%d, reps=%d, seed=%d)", sp.Algo, sp.Graph, sp.N, sp.Reps, sp.Seed),
		Header: []string{"metric", "n", "mean", "stddev", "ci95", "min", "max"},
	}
	for _, name := range names {
		xs := exp.Metric(samples, name)
		s := stats.Summarize(xs)
		t.AddRowf(name, s.N, s.Mean, s.StdDev,
			fmt.Sprintf("[%.4g, %.4g]", s.CI95Lo, s.CI95Hi),
			stats.Min(xs), stats.Max(xs))
	}
	return t
}
