package serve

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU mapping spec hashes to marshaled Result bytes.
// Because results are pure functions of their specs, entries never go
// stale — eviction exists only to bound memory, and an evicted entry is
// simply recomputed on the next request.
type Cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns an LRU holding at most maxEntries results (minimum 1).
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{max: maxEntries, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key, marking the entry most recently
// used. Callers must not mutate the returned slice.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// peek returns the cached bytes without touching the hit/miss counters or
// recency — for internal re-checks (e.g. after waiting on an execution
// slot) that are not request-serving lookups and must not distort the
// /v1/stats hit rate.
func (c *Cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// over capacity. Re-putting an existing key refreshes its recency (the
// value is identical by the determinism contract).
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the lifetime hit/miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
