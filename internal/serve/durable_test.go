package serve

// Crash-safety suite (DESIGN.md §8): restart recovery through the durable
// store, kill-and-resume through the job journal and engine checkpoints,
// retry/backoff under injected store faults, job deadlines, and degraded
// (drain) mode. The chaos tests simulate kill -9 with Service.Kill — the
// journal freezes, in-flight runs abort at their next checkpoint, and the
// data dir is left exactly as a dead process would leave it.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exp"
)

// waitForJournalOp polls the journal file until a record with the given op
// appears — the test's only window into how far a journaled job has gotten.
func waitForJournalOp(t *testing.T, path, op string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(path)
		if err == nil && strings.Contains(string(b), `"op":"`+op+`"`) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("journal never recorded op %q", op)
}

// Satellite acceptance: a restarted server answers a previously computed
// spec as a byte-identical durable cache hit, without recomputing.
func TestServiceRestartServesDurableHits(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, CacheEntries: 8, DataDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Graph: "churn:grid", N: 25, Algo: "flood", Seed: 3, Reps: 2, Epochs: 3, EpochLen: 8, Rate: 0.2}
	want, _, st, err := s.Simulate(sp)
	if err != nil || st != StatusMiss {
		t.Fatalf("first life: status %s err %v", st, err)
	}
	s.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, hash, st2, err := s2.Simulate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != StatusDurableHit {
		t.Fatalf("after restart: status %s, want durable hit", st2)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted response differs from the first life's bytes")
	}
	stats := s2.Stats()
	if !stats.Durable || stats.Executions != 0 || stats.StoreHits != 1 {
		t.Fatalf("restart stats %+v, want durable, 0 executions, 1 store hit", stats)
	}
	// The durable hit populated the in-memory tier; the content-addressed
	// endpoint serves the same bytes.
	if _, _, st3, err := s2.Simulate(sp); err != nil || st3 != StatusHit {
		t.Fatalf("second read after restart: status %s err %v, want memory hit", st3, err)
	}
	if rb, ok := s2.ResultByHash(hash); !ok || !bytes.Equal(rb, want) {
		t.Fatalf("ResultByHash after restart: ok=%v identical=%v", ok, bytes.Equal(rb, want))
	}
}

// Tentpole acceptance at the serve layer: kill a checkpointed flood run at
// the k-th checkpoint append, rebuild the recovery state the way journal
// replay does (completed trials prefilled, last checkpoint round-tripped
// through its JSONL encoding), and the recovered run is byte-identical to
// the uninterrupted one.
func TestExecuteWithCheckpointKillResumeByteIdentical(t *testing.T) {
	sp := Spec{Graph: "churn:grid", N: 36, Algo: "flood", Seed: 17, Reps: 2, Epochs: 6, EpochLen: 8, Rate: 0.5}
	fresh, err := Execute(sp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()

	total := 0
	r, err := ExecuteWith(sp, ExecOptions{OnCheckpoint: func(int, *exp.FloodCheckpoint) error { total++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := r.JSON(); !bytes.Equal(b, want) {
		t.Fatal("checkpoint observation changed the result bytes")
	}
	if total == 0 {
		t.Fatal("no checkpoints fired; spec too small to exercise resume")
	}

	killErr := errors.New("power cut")
	for _, kill := range []int{1, total/2 + 1, total} {
		kill := kill
		t.Run(fmt.Sprintf("kill=%d_of_%d", kill, total), func(t *testing.T) {
			// First life: record what a journal would hold at the crash.
			trials := make(map[int]exp.Sample)
			var ckpt *exp.FloodCheckpoint
			ckptTrial, calls := 0, 0
			_, err := ExecuteWith(sp, ExecOptions{
				OnSample: func(i int, s exp.Sample) { trials[i] = s },
				OnCheckpoint: func(trial int, cp *exp.FloodCheckpoint) error {
					calls++
					if calls == kill {
						return killErr
					}
					line, err := json.Marshal(journalRecord{Op: opCkpt, Job: "job-1", Index: trial, Ckpt: cp})
					if err != nil {
						return err
					}
					var back journalRecord
					if err := json.Unmarshal(line, &back); err != nil {
						return err
					}
					ckptTrial, ckpt = back.Index, back.Ckpt
					return nil
				},
			})
			if !errors.Is(err, killErr) {
				t.Fatalf("killed run error = %v, want the injected kill", err)
			}
			// Replay rule: a checkpoint whose trial completed is stale.
			if ckpt != nil {
				if _, done := trials[ckptTrial]; done {
					ckpt = nil
				}
			}
			o := ExecOptions{Prefilled: trials}
			if ckpt != nil {
				o.ResumeTrial, o.Resume = ckptTrial, ckpt
			}
			r2, err := ExecuteWith(sp, o)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := r2.JSON(); !bytes.Equal(got, want) {
				t.Fatalf("recovered run differs from uninterrupted run (prefilled %d trials, resume=%v)", len(trials), ckpt != nil)
			}
		})
	}
}

// Full-service chaos: kill the service mid-job (journal frozen, run aborted
// at its next checkpoint), reopen the same data dir, and the recovered job
// finishes under its original ID with byte-identical output. Journal
// appends are stretched by injected latency so the kill deterministically
// lands while trials are still outstanding.
func TestServiceKillMidJobRecoversByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sp := Spec{Graph: "churn:grid", N: 36, Algo: "flood", Seed: 13, Reps: 3, Epochs: 6, EpochLen: 8, Rate: 0.5}
	fresh, err := Execute(sp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()

	cfg := Config{Workers: 1, QueueDepth: 4, CacheEntries: 8, DataDir: dir, RetryBackoff: time.Millisecond}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := chaos.New()
	f.ArmDelay("serve.journal", 1, -1, 25*time.Millisecond) // skip the submit record, stall everything after
	s.SetFaults(f)
	v, err := s.SubmitJob(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitForJournalOp(t, filepath.Join(dir, "journal.jsonl"), opTrial)
	s.Kill()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.RecoveredJobs != 1 || st.RecoveredTrials < 1 {
		t.Fatalf("recovery stats: jobs=%d trials=%d, want 1 job with ≥1 prefilled trial", st.RecoveredJobs, st.RecoveredTrials)
	}
	fin := waitForJob(t, s2, v.ID)
	if fin.State != JobDone || !fin.Recovered {
		t.Fatalf("recovered job %+v, want done and marked recovered", fin)
	}
	got, ok := s2.ResultByHash(fin.SpecHash)
	if !ok {
		t.Fatal("recovered result missing")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered result differs from uninterrupted run")
	}
}

// A transient store fault fails the attempt; the retry recomputes and
// succeeds.
func TestServiceJobRetriesTransientStoreFault(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, QueueDepth: 4, CacheEntries: 8, DataDir: dir, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f := chaos.New()
	diskErr := errors.New("disk on fire")
	f.Arm("store.put", 0, 1, diskErr)
	s.SetFaults(f)

	v, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 5, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitForJob(t, s, v.ID)
	if fin.State != JobDone {
		t.Fatalf("job %+v, want done after retry", fin)
	}
	st := s.Stats()
	if st.Retries != 1 || f.Triggered("store.put") != 1 {
		t.Fatalf("retries=%d triggered=%d, want exactly one retry consuming the fault window", st.Retries, f.Triggered("store.put"))
	}
	if st.StorePuts != 1 {
		t.Fatalf("store puts = %d, want 1 (the retry's successful write)", st.StorePuts)
	}
}

// A persistent fault exhausts the retry budget: the job fails terminally
// with the error preserved, and the failure survives a restart.
func TestServiceJobFailureIsTerminalAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 4, CacheEntries: 8, DataDir: dir, JobRetries: 1, RetryBackoff: time.Millisecond}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := chaos.New()
	f.Arm("store.put", 0, -1, errors.New("disk gone"))
	s.SetFaults(f)
	v, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitForJob(t, s, v.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "disk gone") {
		t.Fatalf("job %+v, want terminal failure carrying the cause", fin)
	}
	if got, want := s.Stats().Retries, uint64(1); got != want {
		t.Fatalf("retries = %d, want %d (JobRetries=1)", got, want)
	}
	s.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.RecoveredJobs != 0 {
		t.Fatalf("failed job was re-enqueued: %+v", st)
	}
	back, ok := s2.Job(v.ID)
	if !ok || back.State != JobFailed || !strings.Contains(back.Error, "disk gone") {
		t.Fatalf("after restart: %+v ok=%v, want the preserved failure", back, ok)
	}
}

// JobTimeout bounds a job's wall clock; expiry is terminal (no retry).
func TestServiceJobDeadlineTerminal(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 8, JobTimeout: 3 * time.Millisecond, RetryBackoff: time.Millisecond})
	defer s.Close()
	v, err := s.SubmitJob(Spec{Graph: "grid", N: 400, Algo: "mis", Seed: 7, Reps: 64})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitForJob(t, s, v.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("job %+v, want deadline failure", fin)
	}
	if r := s.Stats().Retries; r != 0 {
		t.Fatalf("retries = %d, want 0 (deadline is terminal)", r)
	}
}

// Degraded mode: after shutdown begins, memory and durable hits are still
// served; anything needing computation gets ErrDraining.
func TestServiceDrainServesReadsRefusesCompute(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 2, CacheEntries: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 1}
	b := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 2}
	wantA, _, _, err := s.Simulate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Simulate(b); err != nil {
		t.Fatal(err) // evicts a from the 1-entry LRU; both are durable now
	}
	s.Close()
	if !s.Stats().Draining {
		t.Fatal("stats do not report draining")
	}
	if _, _, st, err := s.Simulate(b); err != nil || st != StatusHit {
		t.Fatalf("drained memory hit: status %s err %v", st, err)
	}
	gotA, _, st, err := s.Simulate(a)
	if err != nil || st != StatusDurableHit || !bytes.Equal(gotA, wantA) {
		t.Fatalf("drained durable hit: status %s err %v identical=%v", st, err, bytes.Equal(gotA, wantA))
	}
	if _, _, _, err := s.Simulate(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 3}); !errors.Is(err, ErrDraining) {
		t.Fatalf("drained compute: %v, want ErrDraining", err)
	}
}

// SimulateCtx: an expired context short-circuits; a deadline mid-execution
// returns the context error while the computation itself completes and
// lands in the cache for the retry.
func TestServiceSimulateCtxDeadline(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 8})
	defer s.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := s.SimulateCtx(cancelled, Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context: %v, want context.Canceled", err)
	}

	release := make(chan struct{})
	var once sync.Once
	s.testHookExecuting = func(Spec) { once.Do(func() { <-release }) }
	sp := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 2}
	ctx, cancel2 := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel2()
	_, _, _, err := s.SimulateCtx(ctx, sp)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked request: %v, want context.DeadlineExceeded", err)
	}
	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, st, err := s.Simulate(sp); err == nil && st == StatusHit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached computation never landed in the cache")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Corrupt durable entries degrade to recomputation through the service: the
// quarantine counter moves and the response is byte-identical.
func TestServiceCorruptDurableEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, CacheEntries: 1, DataDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 9}
	want, hash, _, err := s.Simulate(sp)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	entry := filepath.Join(dir, "store", "results", hash)
	if err := os.WriteFile(entry, []byte("rotted bits"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _, st, err := s2.Simulate(sp)
	if err != nil || st != StatusMiss || !bytes.Equal(got, want) {
		t.Fatalf("corrupt entry: status %s err %v identical=%v, want recomputed miss", st, err, bytes.Equal(got, want))
	}
	stats := s2.Stats()
	if stats.StoreQuarantined != 1 || stats.Executions != 1 {
		t.Fatalf("stats %+v, want 1 quarantined + 1 recomputation", stats)
	}
}
