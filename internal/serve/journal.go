package serve

// The job journal (DESIGN.md §8): an append-only JSONL file recording every
// async job's lifecycle — submission, completed trials, flood engine
// checkpoints, and the terminal state. On startup the service replays the
// journal, re-registers terminal jobs (so job IDs survive restart), and
// re-enqueues interrupted ones with their completed trials prefilled and
// the last engine checkpoint attached; the determinism contract then makes
// the recovered result byte-identical to what the uninterrupted run would
// have produced. After replay the journal is compacted in place (write-tmp,
// fsync, rename): terminal jobs keep only their submit + terminal records,
// interrupted jobs keep their recovery state, and everything else is
// dropped.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/exp"
	"repro/internal/obs"
)

// Journal record operations.
const (
	opSubmit = "submit"
	opTrial  = "trial"
	opCkpt   = "ckpt"
	opDone   = "done"
	opFailed = "failed"
)

// journalRecord is one JSONL line. Exactly the fields its op needs are set.
type journalRecord struct {
	Op     string               `json:"op"`
	Job    string               `json:"job"`
	Spec   *Spec                `json:"spec,omitempty"`
	Index  int                  `json:"index,omitempty"`
	Sample *exp.Sample          `json:"sample,omitempty"`
	Ckpt   *exp.FloodCheckpoint `json:"ckpt,omitempty"`
	Error  string               `json:"error,omitempty"`
	// Trace is the submitting request's trace ID, carried on the submit
	// record (and preserved across replay/compaction) so a job can be
	// followed from HTTP entry through the journal to structured logs —
	// across restarts included (DESIGN.md §10).
	Trace string `json:"trace,omitempty"`
}

// errJournalFrozen is what appends return after Kill froze the journal — it
// aborts in-flight checkpointed runs the way a dead disk would.
var errJournalFrozen = errors.New("journal frozen (simulated crash)")

// opDurable reports whether an op's record must be fsynced. Lifecycle
// records (submit, done, failed) define what a restart owes the client —
// losing one forgets a job or re-runs a finished one — so they hit the
// platter before append returns. Progress records (trial, ckpt) are
// recovery accelerators: losing the tail of them costs recomputation of
// work that is byte-identical by the determinism contract, never
// correctness. Fsyncing every ckpt line was the resume-overhead regression
// — a resumed 32-trial job journals hundreds of progress records and paid
// a disk flush for each, making it 3.5× slower than a fresh run.
func opDurable(op string) bool {
	switch op {
	case opSubmit, opDone, opFailed:
		return true
	}
	return false
}

// journal is the open append handle. Appends are serialized; lifecycle
// records are additionally fsynced (see opDurable), so a submit/done/failed
// that append returned nil for survives a crash. Progress records ride the
// OS page cache — a kernel that stays up (kill -9 included) still flushes
// them, and a machine crash merely costs recomputed trials.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	faults *chaos.Faults
	frozen bool
	// met instruments append and fsync latency; zero-valued fields are
	// inert (nil-safe), matching store.Metrics.
	met journalMetrics
}

// journalMetrics is the journal's instrumentation hook set.
type journalMetrics struct {
	// AppendSeconds observes every append — marshal, fault check, write,
	// and any fsync.
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes the fsync a durable (lifecycle) record pays.
	FsyncSeconds *obs.Histogram
}

// append writes one record durably. The "serve.journal" chaos site injects
// write failures here.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	if j.met.AppendSeconds != nil {
		defer j.met.AppendSeconds.ObserveSince(time.Now())
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return errJournalFrozen
	}
	if err := j.faults.Check("serve.journal"); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if opDurable(rec.Op) {
		t0 := time.Now()
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("serve: journal: %w", err)
		}
		if j.met.FsyncSeconds != nil {
			j.met.FsyncSeconds.ObserveSince(t0)
		}
	}
	return nil
}

// freeze makes every future append fail with errJournalFrozen — the
// in-process stand-in for kill -9: whatever is on disk now is what a
// restarted service will see.
func (j *journal) freeze() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.frozen = true
	j.mu.Unlock()
}

// close closes the file handle (idempotent; safe after freeze).
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
		j.frozen = true
	}
}

// loadJournal reads all parseable records from path; a missing file is an
// empty journal. Unparseable lines are skipped rather than fatal: a crash
// mid-append can tear the final line, and recovery must not be blocked by
// the very failure mode it exists for (the torn record's trial simply
// re-runs).
func loadJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	defer f.Close()
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	// Checkpoint lines carry base64 per-node states; size the token buffer
	// for the largest admissible spec rather than Scanner's 64 KiB default.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn tail (or hand-damaged line): recompute instead
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return recs, nil
}

// recoveredJob is one job reconstructed from the journal.
type recoveredJob struct {
	id     string
	spec   Spec
	state  JobState // JobQueued = interrupted, to re-enqueue
	errMsg string
	trace  string // submitting request's trace ID, preserved across restarts
	// trials holds the completed trials' samples by declaration index —
	// prefilled into the recovered run so only missing trials execute.
	trials map[int]exp.Sample
	// ckpt, when non-nil, is the last engine checkpoint of the trial at
	// ckptIdx, interrupted mid-flight.
	ckptIdx int
	ckpt    *exp.FloodCheckpoint
}

// replayJournal folds the record stream into per-job recovery state, in
// submission order, and returns the highest job sequence number seen.
func replayJournal(recs []journalRecord) ([]*recoveredJob, int) {
	byID := make(map[string]*recoveredJob)
	var order []*recoveredJob
	maxSeq := 0
	for _, rec := range recs {
		if rec.Op == opSubmit {
			if rec.Spec == nil || byID[rec.Job] != nil {
				continue
			}
			j := &recoveredJob{id: rec.Job, spec: *rec.Spec, state: JobQueued, trace: rec.Trace, trials: make(map[int]exp.Sample)}
			byID[rec.Job] = j
			order = append(order, j)
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "job-")); err == nil && n > maxSeq {
				maxSeq = n
			}
			continue
		}
		j := byID[rec.Job]
		if j == nil {
			continue
		}
		switch rec.Op {
		case opTrial:
			if rec.Sample != nil {
				j.trials[rec.Index] = *rec.Sample
			}
		case opCkpt:
			// Later checkpoints supersede earlier ones; a checkpoint for a
			// trial that has since completed is dropped with it below.
			j.ckptIdx, j.ckpt = rec.Index, rec.Ckpt
		case opDone:
			j.state = JobDone
		case opFailed:
			j.state, j.errMsg = JobFailed, rec.Error
		}
	}
	for _, j := range order {
		if j.ckpt != nil {
			if _, completed := j.trials[j.ckptIdx]; completed || j.state != JobQueued {
				j.ckpt = nil
			}
		}
	}
	return order, maxSeq
}

// compactRecords is the minimal record stream reproducing the recovery
// state: submit + terminal for finished jobs, submit + trials + last
// checkpoint for interrupted ones.
func compactRecords(jobs []*recoveredJob) []journalRecord {
	var recs []journalRecord
	for _, j := range jobs {
		spec := j.spec
		recs = append(recs, journalRecord{Op: opSubmit, Job: j.id, Spec: &spec, Trace: j.trace})
		switch j.state {
		case JobDone:
			recs = append(recs, journalRecord{Op: opDone, Job: j.id})
		case JobFailed:
			recs = append(recs, journalRecord{Op: opFailed, Job: j.id, Error: j.errMsg})
		default:
			for i := 0; i < j.spec.Reps; i++ {
				if s, ok := j.trials[i]; ok {
					sample := s
					recs = append(recs, journalRecord{Op: opTrial, Job: j.id, Index: i, Sample: &sample})
				}
			}
			if j.ckpt != nil {
				recs = append(recs, journalRecord{Op: opCkpt, Job: j.id, Index: j.ckptIdx, Ckpt: j.ckpt})
			}
		}
	}
	return recs
}

// openJournal loads, replays, and compacts the journal at path, returning
// the append handle positioned after the compacted records plus the
// recovered jobs. Compaction is atomic (write-tmp, fsync, rename, dir
// fsync), so a crash during startup leaves either the old or the new
// journal, both of which replay to the same state.
func openJournal(path string) (*journal, []*recoveredJob, int, error) {
	recs, err := loadJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	jobs, maxSeq := replayJournal(recs)

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range compactRecords(jobs) {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}

	h, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{f: h, path: path}, jobs, maxSeq, nil
}
