package serve

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent duplicate computations: while one call
// for a key is in flight, later callers block and share its outcome
// instead of recomputing. With deterministic results this is pure
// deduplication — every waiter receives exactly the bytes it would have
// computed. Waiters may attach progress listeners, so an async job that
// coalesces onto someone else's execution still sees trial progress. (A
// minimal in-tree take on golang.org/x/sync/singleflight; the module is
// dependency-free by policy.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error

	mu        sync.Mutex
	listeners []func(done, total int)
	lastDone  int
	lastTotal int
}

// report fans one progress event out to every attached listener and
// remembers it so late joiners can catch up. The executor's simulation
// calls it from runner worker goroutines.
func (c *flightCall) report(done, total int) {
	c.mu.Lock()
	c.lastDone, c.lastTotal = done, total
	ls := append([]func(done, total int){}, c.listeners...)
	c.mu.Unlock()
	for _, f := range ls {
		f(done, total)
	}
}

// attach registers a progress listener, replaying the latest event so the
// listener starts from current progress rather than zero.
func (c *flightCall) attach(f func(done, total int)) {
	c.mu.Lock()
	c.listeners = append(c.listeners, f)
	done, total := c.lastDone, c.lastTotal
	c.mu.Unlock()
	if total > 0 {
		f(done, total)
	}
}

// Do invokes fn once per key at a time: the first caller executes, callers
// arriving before it finishes wait and receive the same (val, err) with
// shared=true. fn receives a report func it should invoke with trial
// progress; events reach every caller's onProgress (nil = no interest).
// After completion the key is forgotten, so a later Do executes fn again
// (the cache in front of this absorbs those).
func (g *flightGroup) Do(key string, onProgress func(done, total int), fn func(report func(done, total int)) ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if onProgress != nil {
			c.attach(onProgress)
		}
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	if onProgress != nil {
		c.listeners = append(c.listeners, onProgress)
	}
	g.m[key] = c
	g.mu.Unlock()

	// A panicking fn must not poison the key (leaving waiters blocked on a
	// wg that is never Done and every future Do hung on the stale call):
	// recover it into the shared error so the service degrades to a 500 /
	// failed job instead of wedging.
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: panic during execution: %v", r)
			}
		}()
		c.val, c.err = fn(c.report)
	}()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
