package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// A waiter that coalesces onto an in-flight execution must still observe
// progress: events after it attaches, plus a catch-up replay of the
// latest event from before.
func TestFlightGroupProgressReachesLateListeners(t *testing.T) {
	var g flightGroup
	executorStarted := make(chan struct{})
	proceed := make(chan struct{})

	type event struct{ done, total int }
	var mu sync.Mutex
	var waiterEvents []event

	var wg sync.WaitGroup
	wg.Add(2)
	var execVal, waitVal []byte
	go func() {
		defer wg.Done()
		execVal, _, _ = g.Do("k", nil, func(report func(int, int)) ([]byte, error) {
			report(1, 3) // before the waiter attaches — must replay
			close(executorStarted)
			<-proceed
			report(2, 3)
			report(3, 3)
			return []byte("result"), nil
		})
	}()
	go func() {
		defer wg.Done()
		<-executorStarted
		var err error
		var shared bool
		waitVal, err, shared = g.Do("k", func(done, total int) {
			mu.Lock()
			waiterEvents = append(waiterEvents, event{done, total})
			if done == 1 {
				// catch-up replay received; let the executor finish
				close(proceed)
			}
			mu.Unlock()
		}, func(func(int, int)) ([]byte, error) {
			t.Error("waiter executed instead of coalescing")
			return nil, nil
		})
		if err != nil || !shared {
			t.Errorf("waiter: err=%v shared=%v", err, shared)
		}
	}()
	wg.Wait()

	if !bytes.Equal(execVal, waitVal) || string(execVal) != "result" {
		t.Fatalf("values: executor %q, waiter %q", execVal, waitVal)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waiterEvents) < 3 {
		t.Fatalf("waiter saw %v, want the (1,3) replay plus (2,3) and (3,3)", waiterEvents)
	}
	if waiterEvents[0] != (event{1, 3}) {
		t.Fatalf("first event %v, want catch-up replay (1,3)", waiterEvents[0])
	}
	last := waiterEvents[len(waiterEvents)-1]
	if last != (event{3, 3}) {
		t.Fatalf("last event %v, want (3,3)", last)
	}
}

// A panicking executor must not poison the key: waiters and later calls
// proceed, and the panic surfaces as an error rather than a hang.
func TestFlightGroupPanicDoesNotPoisonKey(t *testing.T) {
	var g flightGroup
	_, err, _ := g.Do("k", nil, func(func(int, int)) ([]byte, error) {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	val, err, shared := g.Do("k", nil, func(func(int, int)) ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil || shared || string(val) != "recovered" {
		t.Fatalf("key poisoned after panic: val=%q err=%v shared=%v", val, err, shared)
	}
}

func TestFlightGroupSequentialCallsReExecute(t *testing.T) {
	var g flightGroup
	execs := 0
	fn := func(func(int, int)) ([]byte, error) {
		execs++
		return []byte("x"), nil
	}
	if _, _, shared := g.Do("k", nil, fn); shared {
		t.Fatal("first call marked shared")
	}
	if _, _, shared := g.Do("k", nil, fn); shared {
		t.Fatal("sequential call marked shared")
	}
	if execs != 2 {
		t.Fatalf("execs = %d, want 2 (no in-flight overlap)", execs)
	}
}
