package serve

// The incremental-simulation layer (DESIGN.md §9): engine snapshots are
// content-addressed by (canonical spec-prefix hash, epoch, trial) in a
// second store keyspace, so a parameter sweep whose variants share a
// prefix — same graph, schedule, seed, epoch geometry, different Epochs or
// Reps tails — pays for the shared epochs once. A run that resumes from a
// snapshot is byte-identical to a cold run by the determinism contract
// (the per-trial seed and every shared epoch are prefix-determined), and
// every degradation path — missing snapshot, corrupt entry, snapshot that
// doesn't fit the run — falls back to cold computation, never to a wrong
// answer.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/exp"
)

// snapKey content-addresses one (spec prefix, epoch, trial) snapshot.
// Hashing the composite frame keeps the key a plain hex name for the store
// and makes the keyspace disjoint from result hashes by construction.
func snapKey(prefixHash string, epoch, trial int) string {
	sum := sha256.Sum256(fmt.Appendf(nil, "snap|%s|epoch=%d|trial=%d", prefixHash, epoch, trial))
	return hex.EncodeToString(sum[:])
}

// prefixPlan is one probe's outcome: the deepest usable snapshot per trial
// index, plus the epochs those snapshots skip (for the stats report).
type prefixPlan struct {
	resume      map[int]*exp.FloodCheckpoint
	epochsSaved int
}

// prefixEligible reports whether sp can consult and feed the snapshot
// cache: a durable service, a prefix-cacheable spec, and at least two
// epochs (a one-epoch run has no interior boundary to snapshot).
func (s *Service) prefixEligible(sp Spec) bool {
	return s.snaps != nil && sp.PrefixCacheable() && sp.Epochs >= 2
}

// probePrefix finds the deepest cached snapshot for each trial of sp,
// scanning epochs from sp.Epochs-1 (the deepest boundary this variant's
// own schedule still extends past — a snapshot at epoch E covers steps
// [0, E·EpochLen) and the resuming run must supply epoch E itself)
// down to 1. Trials past 0 start scanning at trial 0's depth: publication
// happens run-by-run, so per-trial depths move in lockstep and the extra
// probes would be misses. A snapshot that fails to decode is skipped (the
// store already quarantined it if the checksum broke; a decodable-but-
// wrong-shape one is dropped later by floodTrial's structural guard).
func (s *Service) probePrefix(sp Spec) *prefixPlan {
	ph := sp.PrefixHash()
	plan := &prefixPlan{resume: make(map[int]*exp.FloodCheckpoint)}
	depth := sp.Epochs - 1
	for trial := 0; trial < sp.Reps; trial++ {
		found := 0
		for e := depth; e >= 1; e-- {
			raw, ok, err := s.snaps.Get(snapKey(ph, e, trial))
			if err != nil || !ok {
				continue
			}
			var cp exp.FloodCheckpoint
			if json.Unmarshal(raw, &cp) != nil || cp.Engine == nil {
				continue
			}
			plan.resume[trial] = &cp
			found = e
			break
		}
		if trial == 0 {
			if found == 0 {
				return plan // nothing published for this prefix yet
			}
			depth = found
		}
		plan.epochsSaved += found
	}
	return plan
}

// publishSnapshot writes one epoch-boundary snapshot into the snap
// keyspace, relaxed (atomic rename + checksum, no fsync — losing a
// snapshot to a machine crash costs a cold recompute, and a torn one is
// quarantined on read). Failures are counted, never surfaced: publication
// is advisory by contract (radio.Options.Snapshot).
func (s *Service) publishSnapshot(sp Spec, prefixHash string, trial int, cp *exp.FloodCheckpoint) {
	step := 0
	if cp.Engine != nil {
		step = cp.Engine.Step
	}
	// Only interior boundaries the prefix grammar can name: epoch 0 (step
	// 0) is a fresh run, and a non-multiple step cannot happen for a
	// well-formed schedule — skip rather than poison the keyspace.
	if step <= 0 || sp.EpochLen <= 0 || step%sp.EpochLen != 0 {
		return
	}
	epoch := step / sp.EpochLen
	raw, err := json.Marshal(cp)
	if err != nil {
		s.snapErrs.Add(1)
		return
	}
	if err := s.snaps.PutRelaxed(snapKey(prefixHash, epoch, trial), raw); err != nil {
		s.snapErrs.Add(1)
	}
}

// armPrefix attaches the prefix-cache hooks to o: publish fresh snapshots
// at every epoch boundary, and resume the plan's trials from their cached
// snapshots. Publication is armed even on a cold run — that is how the
// first variant of a sweep seeds the cache for the rest.
func (s *Service) armPrefix(sp Spec, plan *prefixPlan, o *ExecOptions) {
	if !s.prefixEligible(sp) {
		return
	}
	ph := sp.PrefixHash()
	o.OnSnapshot = func(trial int, cp *exp.FloodCheckpoint) { s.publishSnapshot(sp, ph, trial, cp) }
	if plan != nil {
		o.ResumeFrom = plan.resume
	}
}

// runPrefixed wraps one execution with the prefix-cache protocol. run
// executes the spec (acquiring its own worker slot) with the given plan —
// nil means cold — and reports whether the result was actually found
// already cached. The returned viaPrefix marks a computation that resumed
// at least one trial from a snapshot (the HTTP layer's HIT-PREFIX).
//
// Concurrent sweep variants sharing a cold prefix are collapsed onto one
// leader via a singleflight keyed by the prefix hash: the leader computes
// its own variant (publishing snapshots as it goes) while followers wait,
// then re-probe and ride whatever it published. The flight must be entered
// *before* run acquires a worker slot — a follower parked inside a slot
// would deadlock a one-worker service against its own leader. Followers
// discard the leader's bytes (they answer a different spec hash) and run
// exactly once more, cold if the leader failed or published nothing.
func (s *Service) runPrefixed(sp Spec, run func(plan *prefixPlan) ([]byte, bool, error)) (b []byte, fromCache, viaPrefix bool, err error) {
	if !s.prefixEligible(sp) {
		b, fromCache, err = run(nil)
		return b, fromCache, false, err
	}
	if plan := s.probePrefix(sp); len(plan.resume) > 0 {
		return s.runWarm(plan, run)
	}
	var lb []byte
	var lhit bool
	_, lerr, shared := s.pf.Do(sp.PrefixHash(), nil, func(func(done, total int)) ([]byte, error) {
		var ferr error
		lb, lhit, ferr = run(nil)
		return nil, ferr
	})
	if !shared {
		return lb, lhit, false, lerr
	}
	_ = lerr // the leader's failure is its own; this variant still runs
	if plan := s.probePrefix(sp); len(plan.resume) > 0 {
		return s.runWarm(plan, run)
	}
	b, fromCache, err = run(nil)
	return b, fromCache, false, err
}

// runWarm executes with a non-empty plan and books the prefix-hit stats —
// unless the run turned out to be a cache hit after all (the result landed
// while probing), which is a plain hit, not a prefix one.
func (s *Service) runWarm(plan *prefixPlan, run func(plan *prefixPlan) ([]byte, bool, error)) ([]byte, bool, bool, error) {
	b, fromCache, err := run(plan)
	if err != nil || fromCache {
		return b, fromCache, false, err
	}
	s.prefixHits.Add(1)
	s.prefixEpochs.Add(uint64(plan.epochsSaved))
	return b, false, true, nil
}
