package serve

// Observability acceptance (DESIGN.md §10): the /metrics exposition
// reflects a known request sequence exactly, trace IDs survive the full
// HTTP → journal → structured-log path, and /v1/stats snapshots are
// mutually consistent.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"log/slog"
)

// metricValue extracts the value of the series whose line starts with
// name{ and contains every given label pair, failing if absent.
func metricValue(t *testing.T, exposition, name string, labels ...string) string {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue // longer metric name sharing the prefix
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(line, l) {
				ok = false
				break
			}
		}
		if ok {
			fields := strings.Fields(line)
			return fields[len(fields)-1]
		}
	}
	t.Fatalf("no series %s%v in exposition:\n%s", name, labels, exposition)
	return ""
}

// Acceptance: one miss plus two hits on /v1/simulate yield exactly these
// counter values on /metrics — the exposition is accounting, not sampling.
func TestMetricsEndpointExactCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 8})
	// A flood spec: the flood path arms radio.Options.Probe, so the engine
	// gauges are exercised along with the request counters.
	body := `{"graph":"grid","n":25,"algo":"flood","seed":7}`
	for i, want := range []string{"MISS", "HIT", "HIT"} {
		r, b := post(t, ts.URL+"/v1/simulate", body)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.StatusCode, b)
		}
		if got := r.Header.Get("X-Cache"); got != want {
			t.Fatalf("request %d: X-Cache %q, want %q", i, got, want)
		}
	}
	r, raw := get(t, ts.URL+"/metrics")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	exp := string(raw)
	checks := []struct {
		name   string
		labels []string
		want   string
	}{
		{"serve_cache_requests_total", []string{`tier="miss"`}, "1"},
		{"serve_cache_requests_total", []string{`tier="memory"`}, "2"},
		{"serve_http_requests_total", []string{`route="/v1/simulate"`, `code="200"`}, "3"},
		{"serve_http_request_seconds_count", []string{`route="/v1/simulate"`}, "3"},
		{"serve_executions_total", nil, "1"},
		{"serve_job_queue_depth", nil, "0"},
	}
	for _, c := range checks {
		if got := metricValue(t, exp, c.name, c.labels...); got != c.want {
			t.Errorf("%s%v = %s, want %s", c.name, c.labels, got, c.want)
		}
	}
	// The single execution probed the engine at least once (the final
	// sample), populating the engine gauges.
	if got := metricValue(t, exp, "serve_engine_probes_total"); got == "0" {
		t.Error("serve_engine_probes_total = 0, want > 0")
	}
	// The latency histogram must expose the full bucket/sum/count triple.
	for _, frag := range []string{
		"serve_http_request_seconds_bucket{route=\"/v1/simulate\",le=\"+Inf\"} 3",
		"serve_http_request_seconds_sum{route=\"/v1/simulate\"}",
		"serve_uptime_seconds",
	} {
		if !strings.Contains(exp, frag) {
			t.Errorf("exposition missing %q", frag)
		}
	}
}

// Acceptance: a trace ID supplied at HTTP entry is echoed on the response,
// recorded on the journal submit record, and present in the structured
// logs of the job's lifecycle — end to end, one ID.
func TestTraceEndToEndThroughJournalAndLogs(t *testing.T) {
	const trace = "00112233445566778899aabbccddeeff"
	var logBuf bytes.Buffer
	dir := t.TempDir()
	s, err := Open(Config{
		Workers: 2, CacheEntries: 8, DataDir: dir,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"graph":"grid","n":25,"algo":"mis","seed":9,"reps":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != trace {
		t.Fatalf("response X-Trace-Id %q, want %q", got, trace)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, b := get(t, ts.URL+"/v1/jobs/"+v.ID)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		var jv JobView
		if err := json.Unmarshal(b, &jv); err != nil {
			t.Fatal(err)
		}
		if jv.State == JobDone {
			break
		}
		if jv.State == JobFailed {
			t.Fatalf("job failed: %s", jv.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not done: %s", jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Close()

	// Journal: the submit record carries the trace.
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	foundSubmit := false
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		if rec.Op == opSubmit && rec.Job == v.ID {
			foundSubmit = true
			if rec.Trace != trace {
				t.Fatalf("journal submit trace %q, want %q", rec.Trace, trace)
			}
		}
	}
	if !foundSubmit {
		t.Fatal("no submit record for the job in the journal")
	}

	// Logs: both the HTTP request line and the job-done line carry it.
	var sawRequest, sawDone bool
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if line == "" {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if entry["trace"] != trace {
			continue
		}
		switch entry["msg"] {
		case "request":
			if entry["path"] == "/v1/jobs" {
				sawRequest = true
			}
		case "job done":
			if entry["job"] == v.ID {
				sawDone = true
			}
		}
	}
	if !sawRequest || !sawDone {
		t.Fatalf("trace not propagated to logs: request=%v done=%v\n%s",
			sawRequest, sawDone, logBuf.String())
	}
}

// newHTTPServer is newTestServer for an already-constructed Service.
func newHTTPServer(t *testing.T, s *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return ts
}

// Acceptance: the /v1/stats job fields are read under one lock — a running
// job shows up as in-flight, not queued, and uptime is populated.
func TestStatsConsistentSnapshot(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 8})
	defer s.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	s.testHookExecuting = func(Spec) {
		close(started)
		<-release
	}
	if _, err := s.SubmitJob(Spec{Graph: "grid", N: 25, Algo: "mis", Seed: 3}); err != nil {
		t.Fatal(err)
	}
	<-started
	st := s.Stats()
	close(release)
	if st.InFlightJobs != 1 {
		t.Fatalf("InFlightJobs = %d, want 1", st.InFlightJobs)
	}
	if st.QueueLen != 0 {
		t.Fatalf("QueueLen = %d, want 0 (the job is running, not queued)", st.QueueLen)
	}
	if st.Jobs != 1 {
		t.Fatalf("Jobs = %d, want 1", st.Jobs)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("UptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
}
