package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// Acceptance: the cached response is byte-identical to a fresh
// recomputation, across the whole spec grid.
func TestServiceCacheMatchesFreshRecomputation(t *testing.T) {
	s := New(Config{Workers: 2, CacheEntries: 32})
	defer s.Close()
	for _, sp := range specGrid() {
		fresh, err := Execute(sp, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got1, _, st1, err := s.Simulate(sp)
		if err != nil {
			t.Fatal(err)
		}
		if st1 != StatusMiss {
			t.Fatalf("%s: first request status %s, want miss", sp.Algo, st1)
		}
		got2, _, st2, err := s.Simulate(sp)
		if err != nil {
			t.Fatal(err)
		}
		if st2 != StatusHit {
			t.Fatalf("%s: second request status %s, want hit", sp.Algo, st2)
		}
		if !bytes.Equal(want, got1) || !bytes.Equal(want, got2) {
			t.Fatalf("%s on %s: cached/served bytes differ from fresh recomputation", sp.Algo, sp.Graph)
		}
	}
}

// Acceptance: N concurrent identical requests execute the simulation
// exactly once. The test hook holds the first execution open until every
// request has been issued, so coalescing is deterministic.
func TestServiceSingleflightExecutesOnce(t *testing.T) {
	s := New(Config{Workers: 2, CacheEntries: 8})
	defer s.Close()
	const concurrent = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookExecuting = func(Spec) {
		once.Do(func() { close(entered) })
		<-release
	}
	sp := Spec{Graph: "grid", N: 25, Algo: "mis", Seed: 11, Reps: 2}

	results := make([][]byte, concurrent)
	errs := make([]error, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, _, errs[i] = s.Simulate(sp)
		}(i)
	}
	<-entered // one goroutine is executing; the rest will coalesce
	// Give the remaining goroutines time to reach the singleflight wait.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < concurrent; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("request %d received different bytes", i)
		}
	}
	if execs := s.Stats().Executions; execs != 1 {
		t.Fatalf("executions = %d, want exactly 1 for %d concurrent identical requests", execs, concurrent)
	}
}

// Backpressure: with one worker held open and a depth-1 queue, a third job
// must be rejected with ErrQueueFull.
func TestServiceQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 8})
	running := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookExecuting = func(Spec) {
		once.Do(func() { close(running) })
		<-release
	}
	defer func() {
		close(release)
		s.Close()
	}()

	if _, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-running // worker is now blocked inside job 1
	if _, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 2}); err != nil {
		t.Fatal(err) // fills the queue
	}
	_, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 3})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
}

func waitForJob(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == JobDone || v.State == JobFailed {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func TestServiceAsyncJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()
	sp := Spec{Graph: "grid", N: 25, Algo: "mis", Seed: 21, Reps: 3}
	v, err := s.SubmitJob(sp)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobQueued || v.TrialsTotal != 3 {
		t.Fatalf("submitted view %+v", v)
	}
	fin := waitForJob(t, s, v.ID)
	if fin.State != JobDone || fin.TrialsDone != 3 || fin.Result == "" {
		t.Fatalf("final view %+v", fin)
	}
	data, ok := s.ResultByHash(fin.SpecHash)
	if !ok {
		t.Fatal("result missing from cache after job done")
	}
	fresh, err := Execute(sp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()
	if !bytes.Equal(want, data) {
		t.Fatal("async result differs from fresh recomputation")
	}

	// A duplicate submission is satisfied from the cache without queueing.
	v2, err := s.SubmitJob(sp)
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != JobDone || !v2.CacheHit {
		t.Fatalf("duplicate job view %+v, want immediate cache-hit completion", v2)
	}
	if execs := s.Stats().Executions; execs != 1 {
		t.Fatalf("executions = %d, want 1", execs)
	}
}

func TestServiceBadSpecAndUnknowns(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, _, _, err := s.Simulate(Spec{Graph: "nosuch"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Simulate bad spec: %v", err)
	}
	if _, err := s.SubmitJob(Spec{Algo: "nosuch"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("SubmitJob bad spec: %v", err)
	}
	if _, ok := s.Job("job-999"); ok {
		t.Fatal("unknown job resolved")
	}
	if _, ok := s.ResultByHash("deadbeef"); ok {
		t.Fatal("unknown result resolved")
	}
}

// Job records must not accumulate unboundedly in a long-lived service:
// past MaxJobs, the oldest terminal records are evicted FIFO.
func TestServiceJobRetentionBounded(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 16, MaxJobs: 3})
	defer s.Close()
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		v, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		waitForJob(t, s, v.ID)
		ids = append(ids, v.ID)
	}
	if jobs := s.Stats().Jobs; jobs > 3 {
		t.Fatalf("retained %d job records, want ≤ MaxJobs=3", jobs)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest job record survived past the retention bound")
	}
	if _, ok := s.Job(ids[len(ids)-1]); !ok {
		t.Fatal("newest job record evicted")
	}
}

// /v1/stats must not double-count: one cold request is exactly one miss
// (Simulate's lookup), not a second one from the internal post-slot
// re-check, and a repeat is exactly one hit.
func TestServiceStatsCountRequestLookupsOnly(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 8})
	defer s.Close()
	sp := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 31}
	if _, _, _, err := s.Simulate(sp); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 0 || st.Executions != 1 {
		t.Fatalf("after cold request: %+v, want 1 miss / 0 hits / 1 execution", st)
	}
	if _, _, _, err := s.Simulate(sp); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.Executions != 1 {
		t.Fatalf("after repeat: %+v, want 1 miss / 1 hit / 1 execution", st)
	}
}

// The sync path has admission control: once Workers+QueueDepth non-hit
// requests are in flight, further distinct-spec requests get ErrBusy
// instead of parking unboundedly on the execution semaphore.
func TestServiceSyncAdmissionBounded(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 8}) // limit = 2
	release := make(chan struct{})
	var relOnce sync.Once
	unblock := func() { relOnce.Do(func() { close(release) }) }
	entered := make(chan struct{}, 8)
	s.testHookExecuting = func(Spec) {
		entered <- struct{}{}
		<-release
	}
	defer func() {
		unblock()
		s.Close()
	}()

	errc := make(chan error, 2)
	for seed := uint64(1); seed <= 2; seed++ {
		sp := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: seed}
		go func() {
			_, _, _, err := s.Simulate(sp)
			errc <- err
		}()
	}
	<-entered // request 1 holds the only slot; request 2 is parked
	// Wait until the second request is admitted (pending count = limit).
	deadline := time.Now().Add(10 * time.Second)
	for s.syncPending.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	_, _, _, err := s.Simulate(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 3})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("over-limit request: %v, want ErrBusy", err)
	}
	// A cache hit must bypass admission control entirely: nothing is
	// cached yet, so prove it after release below.
	unblock()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	s.testHookExecuting = nil
	if _, _, st, err := s.Simulate(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 1}); err != nil || st != StatusHit {
		t.Fatalf("post-release cache hit: status %s err %v", st, err)
	}
}

// Close must be bounded by in-flight work: queued-but-unstarted jobs are
// failed with ErrClosed, not drained through the engines.
func TestServiceCloseAbandonsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 8})
	running := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookExecuting = func(Spec) {
		once.Do(func() { close(running) })
		<-release
	}
	v1, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-running // worker blocked inside job 1
	v2, err := s.SubmitJob(Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// Close is waiting on the in-flight job; release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung — queued jobs were drained instead of abandoned")
	}
	if j1, _ := s.Job(v1.ID); j1.State != JobDone {
		t.Fatalf("in-flight job final state %s, want done", j1.State)
	}
	j2, _ := s.Job(v2.ID)
	if j2.State != JobFailed || !strings.Contains(j2.Error, "closed") {
		t.Fatalf("queued job final state %+v, want failed with closed error", j2)
	}
}

// If the result lands while a request waits for its execution slot, the
// response must be labeled a hit (served from cache, nothing executed),
// not a miss.
func TestServiceSlotWaitCacheLandingIsHit(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 8})
	defer s.Close()
	sp := mustCanon(t, Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 41})
	fresh, err := Execute(sp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()
	b, fromCache, _, err := s.execute(context.Background(), sp, sp.Hash(), nil)
	if err != nil || fromCache {
		t.Fatalf("cold execute: fromCache=%v err=%v", fromCache, err)
	}
	if !bytes.Equal(b, want) {
		t.Fatal("executed bytes differ")
	}
	// The cache now holds the result: the peek path must report it.
	b2, fromCache, _, err := s.execute(context.Background(), sp, sp.Hash(), nil)
	if err != nil || !fromCache || !bytes.Equal(b2, want) {
		t.Fatalf("warm execute: fromCache=%v err=%v identical=%v", fromCache, err, bytes.Equal(b2, want))
	}
	if execs := s.Stats().Executions; execs != 1 {
		t.Fatalf("executions = %d, want 1", execs)
	}
}

func TestServiceSubmitAfterClose(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if _, err := s.SubmitJob(Spec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}
