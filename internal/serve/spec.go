// Package serve is the simulation-service subsystem (DESIGN.md §6): a
// canonical, content-hashable scenario spec; an executor that runs specs
// through the radio engines via the exp trial runner; an LRU + singleflight
// result cache; and a bounded job queue + worker pool behind the
// cmd/radionet-serve HTTP API.
//
// The load-bearing property is inherited from the engines: a Result is a
// pure function of its canonical Spec (DESIGN.md §3–§5), so the
// content-addressed cache needs no invalidation — identical requests are
// byte-identical responses, forever.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/phy"
	"repro/internal/trace"
)

// ErrBadSpec wraps every spec-validation failure so transports can map the
// whole family to one client-error class (HTTP 400).
var ErrBadSpec = errors.New("bad spec")

// Guardrails keeping a single request's work bounded: simulations are
// superlinear in n, and the service must stay responsive under a queue of
// strangers' requests.
const (
	// MaxN caps the requested node count.
	MaxN = 4096
	// MaxNStream is the raised node-count ceiling for streaming-capable
	// scenarios (see Spec.StreamingCapable): their deployments build direct
	// to (compact) CSR at a few hundred resident bytes per node, so the
	// service can afford them well past MaxN. Above this ceiling the spec
	// is rejected with an explicit memory-guard error rather than letting a
	// request grow the process until the kernel kills it.
	MaxNStream = 32768
	// MaxReps caps seed replicas per spec.
	MaxReps = 64
	// MaxEpochs caps mutated epochs for dynamic specs.
	MaxEpochs = 1024
	// MaxEpochLen caps steps per epoch.
	MaxEpochLen = 4096
)

// Algorithms lists the algorithm names a Spec may carry — the same set
// cmd/radionet-sim exposes, minus trace-file output.
var Algorithms = []string{
	"mis", "broadcast", "broadcast-all", "decay-broadcast",
	"election", "decay-election", "flood",
}

// Spec is one simulation scenario: a graph spec understood by gen.ByName /
// gen.ScheduleByName, an algorithm, its parameters, and a seed. The zero
// value of every field means "default"; Canonicalize resolves defaults and
// zeroes fields the scenario cannot observe, so any two spellings of the
// same scenario share one canonical form — and therefore one Hash.
type Spec struct {
	// Graph is a gen.ByName/ScheduleByName spec ("grid", "churn:gnp", ...).
	Graph string `json:"graph"`
	// N is the approximate node count (default 64, max MaxN).
	N int `json:"n"`
	// Algo is one of Algorithms (default "broadcast").
	Algo string `json:"algo"`
	// Seed is the scenario seed; per-replica seeds derive from it (default 1).
	Seed uint64 `json:"seed"`
	// Reps is the number of seed replicas aggregated into the result
	// (default 1, max MaxReps).
	Reps int `json:"reps,omitempty"`
	// Source is the broadcast/flood source node (algorithms without a
	// source ignore it; canonicalized to 0 there). It is validated against
	// the requested N, but generators build *roughly* N nodes (a grid
	// rounds to a square), so execution uses Source modulo the built
	// graph's node count — same convention as radionet-sim.
	Source int `json:"source,omitempty"`
	// Epochs, EpochLen, Rate parameterize dynamic specs exactly as the
	// radionet-sim flags do; only "flood" observes them (other algorithms
	// run on the epoch-0 skeleton), so they canonicalize to zero elsewhere.
	Epochs   int     `json:"epochs,omitempty"`
	EpochLen int     `json:"epoch_len,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	// Beta, Noise, PathLoss, Cutoff are the SINR physical-layer parameters
	// (phy.SINRParams), observable only when Graph is a "phy:sinr" spec —
	// they canonicalize to zero everywhere else, and to their explicit
	// defaults there, so the content hash distinguishes every distinct
	// physics. Noise is a pointer because an explicit zero (a noiseless
	// channel) is a meaningful value distinct from "unset". Cutoff is the
	// far-field cutoff factor and must be finite here (exact-interference
	// mode, CutoffFactor +Inf, is an API-level testing mode, not a service
	// scenario).
	Beta     float64  `json:"beta,omitempty"`
	Noise    *float64 `json:"noise,omitempty"`
	PathLoss float64  `json:"path_loss,omitempty"`
	Cutoff   float64  `json:"cutoff,omitempty"`
}

// PhyAlgorithms lists the algorithms that can run under a phy: graph spec:
// the ones whose execution path accepts a reception model. The rest are
// built on the charged-construction machinery (DESIGN.md §2), which is
// defined in terms of the graph abstraction.
var PhyAlgorithms = []string{"mis", "decay-broadcast", "flood"}

// SINRParams converts a canonicalized phy:sinr spec's fields to the model
// parameters.
func (sp Spec) SINRParams() phy.SINRParams {
	p := phy.SINRParams{Beta: sp.Beta, PathLoss: sp.PathLoss, CutoffFactor: sp.Cutoff}
	if sp.Noise != nil {
		p.Noise, p.NoiseSet = *sp.Noise, true
	}
	return p.WithDefaults()
}

// streamGraphs lists the graph specs whose deployments gen.BuildCSR grows
// direct to CSR — the classes whose memory story supports n beyond MaxN.
var streamGraphs = []string{"udg", "phy:sinr"}

// StreamingCapable reports whether the spec's deployment builds on the
// streaming generator path, raising its node-count ceiling from MaxN to
// MaxNStream. The algorithm doesn't restrict it further: every algorithm a
// phy: spec admits runs on engines that iterate adjacency through the
// cursor contract, compact or flat.
func (sp Spec) StreamingCapable() bool {
	for _, g := range streamGraphs {
		if sp.Graph == g {
			return true
		}
	}
	return false
}

// badSpec builds an ErrBadSpec-wrapped validation error.
func badSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Canonicalize validates sp and returns its canonical form: defaults made
// explicit, unobservable fields zeroed. Hash and Canonical are only
// meaningful on the returned spec. Errors wrap ErrBadSpec.
func (sp Spec) Canonicalize() (Spec, error) {
	c := sp
	if c.Graph == "" {
		c.Graph = "grid"
	}
	if c.Algo == "" {
		c.Algo = "broadcast"
	}
	if c.N == 0 {
		c.N = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	switch {
	case c.N < 1:
		return Spec{}, badSpec("n %d out of range [1, %d]", c.N, MaxN)
	case c.N > MaxN && !c.StreamingCapable():
		return Spec{}, badSpec("n %d out of range [1, %d] (streaming-capable graph specs %v allow up to %d)",
			c.N, MaxN, streamGraphs, MaxNStream)
	case c.N > MaxNStream:
		return Spec{}, badSpec("n %d exceeds the %d-node memory guard for streaming spec %q — a larger deployment would exhaust service memory; run it offline (radionet-bench -bench-huge, E24)",
			c.N, MaxNStream, c.Graph)
	}
	if c.Reps < 1 || c.Reps > MaxReps {
		return Spec{}, badSpec("reps %d out of range [1, %d]", c.Reps, MaxReps)
	}
	if !knownAlgo(c.Algo) {
		return Spec{}, badSpec("unknown algorithm %q (known: %v)", c.Algo, Algorithms)
	}
	if err := gen.ValidateSpec(c.Graph); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if usesSource(c.Algo) {
		if c.Source < 0 || c.Source >= c.N {
			return Spec{}, badSpec("source %d out of range [0, %d)", c.Source, c.N)
		}
	} else {
		c.Source = 0
	}
	phyModel, _, isPhy := gen.SplitPhySpec(c.Graph)
	if isPhy && !knownPhyAlgo(c.Algo) {
		return Spec{}, badSpec("algorithm %q cannot run under physical-layer spec %q (supported: %v)", c.Algo, c.Graph, PhyAlgorithms)
	}
	if isPhy && phyModel == "sinr" {
		// Resolve the SINR parameters to their explicit defaults so every
		// spelling of one physics shares one canonical form, and reject
		// invalid physics up front.
		if math.IsInf(c.Cutoff, 0) || math.IsNaN(c.Cutoff) {
			return Spec{}, badSpec("cutoff %v must be finite (exact-interference mode is not a service scenario)", c.Cutoff)
		}
		p := c.SINRParams()
		if err := p.Validate(); err != nil {
			return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		if p.Noise == 0 {
			// A noiseless channel has unbounded decode range: the SINR model
			// falls back to its dense O(#tx·n) sweep and the connectivity
			// skeleton is the complete graph — the same unbounded-work mode
			// the finite-cutoff check above keeps out of the service. It
			// stays an API-level capability only.
			return Spec{}, badSpec("noise 0 (a noiseless channel, unbounded decode range) is not a service scenario; use a positive noise floor")
		}
		c.Beta, c.PathLoss, c.Cutoff = p.Beta, p.PathLoss, p.CutoffFactor
		noise := p.Noise
		c.Noise = &noise
	} else {
		// Only SINR scenarios observe the physical-layer parameters.
		c.Beta, c.Noise, c.PathLoss, c.Cutoff = 0, nil, 0, 0
	}
	kind, _, dynamic := gen.SplitSpec(c.Graph)
	if isPhy {
		dynamic = false // phy specs are static scenarios
	}
	if c.Algo != "flood" {
		// Only flood follows a dynamic schedule; every other algorithm runs
		// on the epoch-0 skeleton and cannot observe these fields.
		c.Epochs, c.EpochLen, c.Rate = 0, 0, 0
		return c, nil
	}
	if c.EpochLen == 0 {
		c.EpochLen = 32
	}
	if c.EpochLen < 1 || c.EpochLen > MaxEpochLen {
		return Spec{}, badSpec("epoch_len %d out of range [1, %d]", c.EpochLen, MaxEpochLen)
	}
	if !dynamic {
		// Static flood: the budget depends on EpochLen, nothing on the rest.
		c.Epochs, c.Rate = 0, 0
		return c, nil
	}
	if c.Epochs == 0 {
		c.Epochs = 12
	}
	if c.Epochs < 1 || c.Epochs > MaxEpochs {
		return Spec{}, badSpec("epochs %d out of range [1, %d]", c.Epochs, MaxEpochs)
	}
	if c.Rate <= 0 { // false for NaN, which ValidateRate rejects below
		c.Rate = gen.DefaultDynRate // the same substitution ScheduleByName makes
	}
	if err := gen.ValidateRate(kind, c.Rate); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return c, nil
}

func knownAlgo(algo string) bool {
	for _, a := range Algorithms {
		if algo == a {
			return true
		}
	}
	return false
}

func knownPhyAlgo(algo string) bool {
	for _, a := range PhyAlgorithms {
		if algo == a {
			return true
		}
	}
	return false
}

// usesSource reports whether algo reads Spec.Source.
func usesSource(algo string) bool {
	switch algo {
	case "broadcast", "broadcast-all", "decay-broadcast", "flood":
		return true
	}
	return false
}

// Canonical renders the stable serialization the content hash is computed
// over: versioned, fixed field order, one key=value per line. Call only on
// canonicalized specs. SINR scenarios append their physics block — a
// grammar extension, not a version bump: no pre-PHY scenario has a
// "phy:" graph, so every pre-PHY hash is unchanged, while distinct SINR
// parameters get distinct canonical bytes (and so distinct cache keys).
// Prefix-cacheable scenarios append a trialseed marker: their per-trial
// seeds now derive from the spec *prefix* (see GridID), which changes
// their results relative to pre-§9 builds — the marker moves their hashes
// so stale durable entries become unreachable rather than wrong.
func (sp Spec) Canonical() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "v1\nalgo=%s\ngraph=%s\nn=%d\nseed=%d\nreps=%d\nsource=%d\nepochs=%d\nepochlen=%d\nrate=%s\n",
		sp.Algo, sp.Graph, sp.N, sp.Seed, sp.Reps, sp.Source,
		sp.Epochs, sp.EpochLen, strconv.FormatFloat(sp.Rate, 'g', -1, 64))
	if model, _, ok := gen.SplitPhySpec(sp.Graph); ok && model == "sinr" {
		noise := 0.0
		if sp.Noise != nil {
			noise = *sp.Noise
		}
		fmt.Fprintf(&b, "beta=%s\nnoise=%s\npathloss=%s\ncutoff=%s\n",
			strconv.FormatFloat(sp.Beta, 'g', -1, 64),
			strconv.FormatFloat(noise, 'g', -1, 64),
			strconv.FormatFloat(sp.PathLoss, 'g', -1, 64),
			strconv.FormatFloat(sp.Cutoff, 'g', -1, 64))
	}
	if sp.PrefixCacheable() {
		b.WriteString("trialseed=prefix\n")
	}
	return b.Bytes()
}

// PrefixCacheable reports whether a canonicalized spec participates in
// prefix caching (DESIGN.md §9): a dynamic (epoch-scheduled) flood with no
// phy: layer. Those are exactly the scenarios with epoch boundaries —
// the only steps at which engine state is capturable — whose schedule
// generators draw per-epoch randomness sequentially, so two specs sharing
// a PrefixCanonical agree on every shared epoch regardless of Epochs/Reps.
func (sp Spec) PrefixCacheable() bool {
	if sp.Algo != "flood" {
		return false
	}
	if _, _, isPhy := gen.SplitPhySpec(sp.Graph); isPhy {
		return false
	}
	_, _, dynamic := gen.SplitSpec(sp.Graph)
	return dynamic
}

// PrefixCanonical is the stable serialization of a spec's *prefix*: every
// field the simulation's per-step evolution observes — graph, schedule,
// seed, source, epoch geometry — and none it cannot observe until the run
// ends (Epochs bounds the budget, Reps the replica count; neither changes
// what any shared epoch computes). Two specs with equal PrefixCanonical
// bytes run byte-identical trials through every epoch both reach, which is
// what makes engine snapshots shareable between them. Call only on
// canonicalized, PrefixCacheable specs.
func (sp Spec) PrefixCanonical() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "p1\nalgo=%s\ngraph=%s\nn=%d\nseed=%d\nsource=%d\nepochlen=%d\nrate=%s\n",
		sp.Algo, sp.Graph, sp.N, sp.Seed, sp.Source,
		sp.EpochLen, strconv.FormatFloat(sp.Rate, 'g', -1, 64))
	return b.Bytes()
}

// PrefixHash content-addresses the spec prefix — the first half of the
// (prefix, epoch) snapshot key.
func (sp Spec) PrefixHash() string {
	sum := sha256.Sum256(sp.PrefixCanonical())
	return hex.EncodeToString(sum[:])
}

// String renders the canonical form on one line for titles and logs.
func (sp Spec) String() string {
	return strings.ReplaceAll(strings.TrimSuffix(string(sp.Canonical()), "\n"), "\n", " ")
}

// Hash is the content address of a canonicalized spec: the hex SHA-256 of
// its canonical serialization. Determinism makes it a cache key for the
// full result (GET /v1/results/{hash}).
func (sp Spec) Hash() string {
	sum := sha256.Sum256(sp.Canonical())
	return hex.EncodeToString(sum[:])
}

// GridID is the exp trial-grid ID for this spec — a short FNV-1a digest,
// so per-replica seeds never collide across distinct scenarios yet stay
// pure functions of the spec. For prefix-cacheable specs the digest is of
// the prefix canonical bytes: trial i of a sweep variant then draws the
// same seed no matter the variant's Epochs or Reps, which is what lets one
// variant's epoch-E snapshot resume another's trial i. Everything else
// digests the full canonical bytes as before.
func (sp Spec) GridID() string {
	if sp.PrefixCacheable() {
		return fmt.Sprintf("serve:%016x", trace.FNV1a(sp.PrefixCanonical()))
	}
	return fmt.Sprintf("serve:%016x", trace.FNV1a(sp.Canonical()))
}
