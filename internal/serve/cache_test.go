package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch "a" so "b" becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("get a: %q %v", v, ok)
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache(4)
	c.Get("missing")
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("k")
	hits, misses := c.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestCacheRePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("A2")) // refresh recency and value
	c.Put("c", []byte("C"))  // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A2" {
		t.Fatalf("a = %q %v", v, ok)
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}
