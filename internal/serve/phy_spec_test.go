package serve

import (
	"errors"
	"strings"
	"testing"
)

func mustCanonical(t *testing.T, sp Spec) Spec {
	t.Helper()
	c, err := sp.Canonicalize()
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", sp, err)
	}
	return c
}

// TestPhyParamsDistinctHashes pins the cache-key property the PHY axis
// depends on: distinct physical-layer parameters are distinct scenarios
// and must produce distinct content hashes — including the explicit
// zero-noise channel, which the old zero-sentinel params could not even
// represent.
func TestPhyParamsDistinctHashes(t *testing.T) {
	ten := 10.0
	tenth := 0.1
	specs := []Spec{
		{Graph: "phy:sinr", Algo: "mis"},
		{Graph: "phy:sinr", Algo: "mis", Beta: 4},
		{Graph: "phy:sinr", Algo: "mis", PathLoss: 2},
		{Graph: "phy:sinr", Algo: "mis", Noise: &ten},
		{Graph: "phy:sinr", Algo: "mis", Noise: &tenth},
		{Graph: "phy:sinr", Algo: "mis", Cutoff: 8},
		{Graph: "phy:cd:grid", Algo: "mis"},
		{Graph: "grid", Algo: "mis"},
	}
	seen := map[string]Spec{}
	for _, sp := range specs {
		c := mustCanonical(t, sp)
		h := c.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("specs %+v and %+v share hash %s", prev, sp, h)
		}
		seen[h] = sp
	}
}

// TestPhyParamsCanonicalized pins default resolution: spelling the defaults
// explicitly must hash identically to leaving them unset, and non-phy specs
// zero the PHY fields entirely.
func TestPhyParamsCanonicalized(t *testing.T) {
	implicit := mustCanonical(t, Spec{Graph: "phy:sinr", Algo: "mis"})
	noise := 0.5 // the default: Power/Beta = 1/2
	explicit := mustCanonical(t, Spec{Graph: "phy:sinr", Algo: "mis",
		Beta: 2, PathLoss: 4, Cutoff: 4, Noise: &noise})
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("default spellings diverge:\n%s\nvs\n%s", implicit.Canonical(), explicit.Canonical())
	}
	if implicit.Noise == nil || *implicit.Noise != 0.5 || implicit.Beta != 2 || implicit.PathLoss != 4 || implicit.Cutoff != 4 {
		t.Fatalf("defaults not made explicit: %+v", implicit)
	}
	if !strings.Contains(string(implicit.Canonical()), "beta=2\nnoise=0.5\npathloss=4\ncutoff=4\n") {
		t.Fatalf("canonical bytes missing the physics block:\n%s", implicit.Canonical())
	}

	// Non-phy specs cannot observe the PHY fields: they canonicalize away,
	// and the canonical bytes carry no physics block — pre-PHY hashes are
	// unchanged.
	junk := 3.0
	plain := mustCanonical(t, Spec{Graph: "grid", Algo: "mis", Beta: 9, PathLoss: 9, Cutoff: 9, Noise: &junk})
	if plain.Beta != 0 || plain.Noise != nil || plain.PathLoss != 0 || plain.Cutoff != 0 {
		t.Fatalf("PHY fields survived on a graph-model spec: %+v", plain)
	}
	if strings.Contains(string(plain.Canonical()), "beta=") {
		t.Fatalf("graph-model canonical bytes grew a physics block:\n%s", plain.Canonical())
	}
	if plain.Hash() != mustCanonical(t, Spec{Graph: "grid", Algo: "mis"}).Hash() {
		t.Fatal("unobservable PHY fields changed a graph-model hash")
	}
}

func TestPhySpecValidation(t *testing.T) {
	zero := 0.0
	bad := []Spec{
		{Graph: "phy:sinr", Algo: "broadcast"},        // charged-construction algo
		{Graph: "phy:sinr", Algo: "election"},         // likewise
		{Graph: "phy:sinr", Algo: "mis", Beta: 0.5},   // ambiguous decoding
		{Graph: "phy:sinr", Algo: "mis", Cutoff: 0.2}, // < 1
		{Graph: "phy:collision:grid", Algo: "mis"},    // non-canonical spelling
		{Graph: "phy:cd:churn:grid", Algo: "mis"},     // nested
		// A noiseless channel (unbounded range ⇒ dense sweep, complete
		// skeleton) is unbounded work — API-only, rejected by the service
		// like the infinite cutoff.
		{Graph: "phy:sinr", Algo: "mis", Noise: &zero},
	}
	for _, sp := range bad {
		if _, err := sp.Canonicalize(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Canonicalize(%+v) = %v, want ErrBadSpec", sp, err)
		}
	}
	for _, algo := range PhyAlgorithms {
		if _, err := (Spec{Graph: "phy:sinr", Algo: algo}).Canonicalize(); err != nil {
			t.Errorf("%s@phy:sinr rejected: %v", algo, err)
		}
		if _, err := (Spec{Graph: "phy:cd:grid", Algo: algo}).Canonicalize(); err != nil {
			t.Errorf("%s@phy:cd:grid rejected: %v", algo, err)
		}
	}
}

// TestExecutePhySpecs runs each phy-capable algorithm under both phy models
// end to end and pins byte-identical recomputation — the property the
// result cache rests on, now covering the SINR path.
func TestExecutePhySpecs(t *testing.T) {
	for _, sp := range []Spec{
		{Graph: "phy:sinr", Algo: "mis", N: 36, Reps: 2},
		{Graph: "phy:sinr", Algo: "decay-broadcast", N: 36, Reps: 2},
		{Graph: "phy:sinr", Algo: "flood", N: 36},
		{Graph: "phy:cd:grid", Algo: "mis", N: 25},
		{Graph: "phy:cd:grid", Algo: "flood", N: 25},
	} {
		a, err := Execute(sp, 1, nil)
		if err != nil {
			t.Fatalf("Execute(%+v): %v", sp, err)
		}
		if len(a.Record.Tables) != 1 || len(a.Record.Tables[0].Rows) == 0 {
			t.Fatalf("Execute(%+v): empty record %+v", sp, a.Record)
		}
		b, err := Execute(sp, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		ja, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		jb, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("Execute(%+v) not byte-stable across parallelism", sp)
		}
	}
	// Distinct physics must execute as distinct scenarios: stronger noise
	// shrinks the decode range, which the mis result observes.
	ten := 10.0
	noisy, err := Execute(Spec{Graph: "phy:sinr", Algo: "mis", N: 36, Noise: &ten}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := Execute(Spec{Graph: "phy:sinr", Algo: "mis", N: 36}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.SpecHash == quiet.SpecHash {
		t.Fatal("distinct noise floors share a content hash")
	}
}
