package serve

// Prefix-cache suite (DESIGN.md §9): canonical prefix/tail split, cross-
// variant snapshot resume at the execution layer, service-level prefix hits
// (byte-identical and golden-pinned against cold computation), the
// concurrent-variant stampede on a one-worker service, and the snap/
// keyspace chaos drills — corruption quarantines and recomputes, torn
// writes are invisible.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/exp"
)

// sweepSpec is the suite's base scenario; variants differ only in the tail
// (Epochs, Reps) unless a test says otherwise.
func sweepSpec(epochs int) Spec {
	return Spec{Graph: "churn:grid", N: 36, Algo: "flood", Seed: 17, Reps: 2,
		Epochs: epochs, EpochLen: 8, Rate: 0.5}
}

func TestPrefixCanonicalProperties(t *testing.T) {
	base := mustCanon(t, sweepSpec(6))
	if !base.PrefixCacheable() {
		t.Fatal("dynamic flood spec should be prefix-cacheable")
	}
	if !strings.Contains(string(base.Canonical()), "trialseed=prefix\n") {
		t.Fatal("prefix-cacheable canonical form must carry the trialseed=prefix marker")
	}

	// The tail — Epochs and Reps — must not move the prefix identity: same
	// PrefixHash, same GridID (so trial seeds agree on shared epochs),
	// different full Hash (they are different results).
	for _, tail := range []Spec{
		func() Spec { v := sweepSpec(9); return v }(),
		func() Spec { v := sweepSpec(6); v.Reps = 7; return v }(),
	} {
		v := mustCanon(t, tail)
		if v.PrefixHash() != base.PrefixHash() {
			t.Fatalf("tail change moved PrefixHash: %+v", tail)
		}
		if v.GridID() != base.GridID() {
			t.Fatalf("tail change moved GridID (trial seeds diverge): %+v", tail)
		}
		if v.Hash() == base.Hash() {
			t.Fatalf("tail change did not move the result hash: %+v", tail)
		}
	}

	// Every prefix field must move the prefix hash.
	prefixEdits := []func(*Spec){
		func(sp *Spec) { sp.Seed = 18 },
		func(sp *Spec) { sp.Rate = 0.25 },
		func(sp *Spec) { sp.EpochLen = 16 },
		func(sp *Spec) { sp.N = 49 },
		func(sp *Spec) { sp.Source = 1 },
	}
	for i, edit := range prefixEdits {
		v := sweepSpec(6)
		edit(&v)
		v = mustCanon(t, v)
		if v.PrefixHash() == base.PrefixHash() {
			t.Fatalf("prefix edit %d did not move PrefixHash", i)
		}
	}

	// Non-dynamic and non-flood specs sit outside the prefix grammar.
	for _, sp := range []Spec{
		{Graph: "grid", N: 36, Algo: "mis", Seed: 1, Reps: 2},
		{Graph: "grid", N: 36, Algo: "broadcast", Seed: 1, Reps: 2},
		{Graph: "phy:sinr", N: 36, Algo: "mis", Seed: 1, Reps: 2},
	} {
		c := mustCanon(t, sp)
		if c.PrefixCacheable() {
			t.Fatalf("%s should not be prefix-cacheable", c)
		}
		if strings.Contains(string(c.Canonical()), "trialseed=prefix") {
			t.Fatalf("%s canonical form must not carry the prefix marker", c)
		}
	}
}

// Cross-variant resume at the execution layer: snapshots published by a
// short variant, round-tripped through their store encoding, seed a longer
// variant whose result must be byte-identical to a cold run — and whose
// own snapshot publications must all land past the resume point, proving
// the shared epochs were skipped rather than recomputed.
func TestExecuteWithSnapshotSeedsCrossVariantResume(t *testing.T) {
	short, long := sweepSpec(4), sweepSpec(6)

	deepest := map[int]int{}
	raws := map[int][]byte{}
	var mu sync.Mutex
	_, err := ExecuteWith(short, ExecOptions{OnSnapshot: func(trial int, cp *exp.FloodCheckpoint) {
		raw, err := json.Marshal(cp)
		if err != nil {
			t.Errorf("marshal snapshot: %v", err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if cp.Engine.Step > deepest[trial] {
			deepest[trial] = cp.Engine.Step
			raws[trial] = raw
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != short.Reps {
		t.Fatalf("snapshots for %d trials, want %d", len(raws), short.Reps)
	}

	fresh, err := Execute(long, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()

	resume := map[int]*exp.FloodCheckpoint{}
	for trial, raw := range raws {
		var cp exp.FloodCheckpoint
		if err := json.Unmarshal(raw, &cp); err != nil {
			t.Fatal(err)
		}
		resume[trial] = &cp
	}
	firstPub := map[int]int{}
	r, err := ExecuteWith(long, ExecOptions{ResumeFrom: resume,
		OnSnapshot: func(trial int, cp *exp.FloodCheckpoint) {
			mu.Lock()
			defer mu.Unlock()
			if _, seen := firstPub[trial]; !seen {
				firstPub[trial] = cp.Engine.Step
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.JSON(); !bytes.Equal(got, want) {
		t.Fatal("resumed variant differs from cold computation")
	}
	// A resumed engine fires its first boundary at the resume step itself
	// (an idempotent re-publication); anything strictly earlier means the
	// shared epochs were stepped through again.
	for trial, step := range firstPub {
		if step < deepest[trial] {
			t.Fatalf("trial %d republished at step %d < resume step %d — shared epochs were recomputed",
				trial, step, deepest[trial])
		}
	}
}

// goldenLongSweepSHA pins the result bytes of sweepSpec(5): the cold run,
// the durable-server prefix hit, and any future engine must all produce
// exactly these bytes. If an intentional format or semantics change moves
// it, regenerate with the command printed by the failure.
const goldenLongSweepSHA = "a3f29bbe4bfa702e01a101da4dcec07216d71fcc947f0ec8e29a55f9f14b039a"

func TestServicePrefixHitByteIdenticalGolden(t *testing.T) {
	short, long := sweepSpec(3), sweepSpec(5)

	eph := New(Config{Workers: 1})
	defer eph.Close()
	coldLong, _, st, err := eph.Simulate(long)
	if err != nil || st != StatusMiss {
		t.Fatalf("ephemeral cold run: status %s err %v", st, err)
	}
	if got := hex.EncodeToString(func() []byte { s := sha256.Sum256(coldLong); return s[:] }()); got != goldenLongSweepSHA {
		t.Fatalf("cold result sha256 %s, want pinned %s\n(regenerate the pin only for an intentional result change)", got, goldenLongSweepSHA)
	}

	s, err := Open(Config{Workers: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, st, err := s.Simulate(short); err != nil || st != StatusMiss {
		t.Fatalf("seeding run: status %s err %v", st, err)
	}
	warmLong, _, st2, err := s.Simulate(long)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != StatusPrefixHit {
		t.Fatalf("long variant after seeding: status %s, want %s", st2, StatusPrefixHit)
	}
	if !bytes.Equal(warmLong, coldLong) {
		t.Fatal("prefix hit differs from cold computation")
	}
	stats := s.Stats()
	if stats.PrefixHits != 1 || stats.PrefixEpochsSaved == 0 {
		t.Fatalf("stats %+v, want 1 prefix hit with epochs saved", stats)
	}
	if stats.SnapPuts == 0 || stats.SnapEntries == 0 {
		t.Fatalf("stats %+v, want published snapshot entries", stats)
	}
	// The repeat is a plain memory hit — the prefix layer never overrides a
	// cached result.
	if _, _, st3, err := s.Simulate(long); err != nil || st3 != StatusHit {
		t.Fatalf("repeat: status %s err %v, want memory hit", st3, err)
	}
}

// Concurrent sweep variants against a one-worker durable service: the
// prefix singleflight must elect one cold leader and let every follower
// ride its snapshots without deadlocking against the single worker slot
// (the flight is entered before slot acquisition — this test is the
// regression guard for that ordering). Every response must be
// byte-identical to its own cold computation.
func TestServicePrefixStampedeOneWorker(t *testing.T) {
	const variants = 6
	s, err := Open(Config{Workers: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	got := make([][]byte, variants)
	errs := make([]error, variants)
	var wg sync.WaitGroup
	for i := 0; i < variants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _, _, errs[i] = s.Simulate(sweepSpec(3 + i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		fresh, err := Execute(sweepSpec(3+i), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := fresh.JSON()
		if !bytes.Equal(got[i], want) {
			t.Fatalf("variant %d differs from its cold computation", i)
		}
	}
	if stats := s.Stats(); stats.PrefixHits == 0 {
		t.Fatalf("stats %+v, want at least one prefix hit across the stampede", stats)
	}
}

// snapEntries lists the snap keyspace's committed entry files.
func snapEntries(t *testing.T, dataDir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dataDir, "snap", "results", "*"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// Chaos: every snapshot entry corrupted on disk → the probe quarantines
// them all, the run degrades to a cold computation with byte-identical
// output, and the republished snapshots repopulate the keyspace.
func TestServiceSnapCorruptionQuarantinedAndCold(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, st, err := s.Simulate(sweepSpec(3)); err != nil || st != StatusMiss {
		t.Fatalf("seeding run: status %s err %v", st, err)
	}
	entries := snapEntries(t, dir)
	if len(entries) == 0 {
		t.Fatal("seeding run published no snapshots")
	}
	for _, p := range entries {
		if err := os.WriteFile(p, []byte("v1 feedfacefeedface not a checksum\ngarbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	long := sweepSpec(5)
	fresh, err := Execute(long, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()
	got, _, st, err := s.Simulate(long)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusMiss {
		t.Fatalf("status %s after corrupting every snapshot, want a cold miss", st)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-corruption result differs from cold computation")
	}
	stats := s.Stats()
	if stats.SnapQuarantined == 0 {
		t.Fatalf("stats %+v, want quarantined snapshot entries", stats)
	}
	if stats.PrefixHits != 0 {
		t.Fatalf("stats %+v, want no prefix hits riding corrupt snapshots", stats)
	}
	// The cold run re-seeded the keyspace; the next variant rides it again.
	if _, _, st, err := s.Simulate(sweepSpec(6)); err != nil || st != StatusPrefixHit {
		t.Fatalf("after re-seeding: status %s err %v, want prefix hit", st, err)
	}
}

// Chaos: a kill -9 mid-snapshot-write leaves staging debris, never a
// readable torn entry — the rename is what commits. Staged files are swept
// on reopen, and a torn final entry (simulating a non-atomic filesystem)
// quarantines on first read instead of resuming anything.
func TestServiceTornSnapshotWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, st, err := s.Simulate(sweepSpec(3)); err != nil || st != StatusMiss {
		t.Fatalf("seeding run: status %s err %v", st, err)
	}
	entries := snapEntries(t, dir)
	if len(entries) == 0 {
		t.Fatal("seeding run published no snapshots")
	}
	s.Close()

	// A write the process died inside of: present in tmp/, absent from
	// results/ — by construction, since the rename never ran.
	staged := filepath.Join(dir, "snap", "tmp", fmt.Sprintf("%064d.12345", 0))
	if err := os.WriteFile(staged, []byte("v1 half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And committed entries torn after the fact (simulating a non-atomic
	// filesystem): truncate every one mid-payload, so whichever keys the
	// probe visits, it meets a torn entry and must quarantine rather than
	// resume.
	for _, p := range entries {
		if err := os.Truncate(p, 10); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, statErr := os.Stat(staged); !os.IsNotExist(statErr) {
		t.Fatal("reopen did not sweep the staged snapshot debris")
	}

	long := sweepSpec(5)
	fresh, err := Execute(long, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.JSON()
	got, _, _, err := s2.Simulate(long)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result after torn snapshots differs from cold computation")
	}
	if stats := s2.Stats(); stats.SnapQuarantined == 0 {
		t.Fatalf("stats %+v, want the torn entry quarantined", stats)
	}
}
