package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPSimulateMissThenHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 8})
	body := `{"graph":"grid","n":25,"algo":"mis","seed":1}`
	r1, b1 := post(t, ts.URL+"/v1/simulate", body)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first X-Cache %q, want MISS", got)
	}
	hash := r1.Header.Get("X-Spec-Hash")
	if len(hash) != 64 {
		t.Fatalf("X-Spec-Hash %q", hash)
	}
	r2, b2 := post(t, ts.URL+"/v1/simulate", body)
	if got := r2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second X-Cache %q, want HIT", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("hit bytes differ from miss bytes")
	}
	// The content-addressed endpoint serves the same bytes.
	r3, b3 := get(t, ts.URL+"/v1/results/"+hash)
	if r3.StatusCode != http.StatusOK || !bytes.Equal(b1, b3) {
		t.Fatalf("results/%s: status %d, bytes match %v", hash[:8], r3.StatusCode, bytes.Equal(b1, b3))
	}
	var res Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatalf("response is not a Result: %v", err)
	}
	if res.SpecHash != hash || len(res.Record.Tables) != 1 {
		t.Fatalf("result record %+v", res)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"graph":"grid","epochlen":4}`},
		{"bad class", `{"graph":"nosuch"}`},
		{"bad algo", `{"algo":"nosuch"}`},
		{"bad rate", `{"graph":"churn:grid","algo":"flood","rate":2}`},
		{"nested dynamic", `{"graph":"churn:churn:grid","algo":"flood"}`},
		{"trailing data", `{"algo":"mis"}{"algo":"mis"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, ep := range []string{"/v1/simulate", "/v1/jobs"} {
				resp, body := post(t, ts.URL+ep, tc.body)
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s: status %d (%s), want 400", ep, resp.StatusCode, body)
				}
				if !strings.Contains(string(body), "error") {
					t.Fatalf("%s: body %s lacks error field", ep, body)
				}
			}
		})
	}
}

// TestHTTPMemoryGuard pins the service's large-n contract over the wire: a
// streaming-capable spec past MaxNStream is refused up front with the
// explicit memory-guard 400 (not accepted and left to OOM the worker), and
// a non-streaming class past MaxN is pointed at the streaming classes.
func TestHTTPMemoryGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body, want string
	}{
		{"streaming past guard", `{"graph":"udg","algo":"mis","n":1000000}`, "memory guard"},
		{"non-streaming past MaxN", `{"graph":"grid","algo":"mis","n":8192}`, "streaming-capable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, ep := range []string{"/v1/simulate", "/v1/jobs"} {
				resp, body := post(t, ts.URL+ep, tc.body)
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s: status %d (%s), want 400", ep, resp.StatusCode, body)
				}
				if !strings.Contains(string(body), tc.want) {
					t.Fatalf("%s: body %s lacks %q", ep, body, tc.want)
				}
			}
		})
	}
}

func TestHTTPOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	huge := `{"graph":"` + strings.Repeat("x", maxSpecBody) + `"}`
	resp, _ := post(t, ts.URL+"/v1/simulate", huge)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, CacheEntries: 8})
	resp, body := post(t, ts.URL+"/v1/jobs", `{"graph":"path","n":16,"algo":"broadcast","seed":3,"reps":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/v1/jobs/"+v.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == JobDone {
			break
		}
		if v.State == JobFailed {
			t.Fatalf("job failed: %s", v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Result == "" || v.TrialsDone != 2 {
		t.Fatalf("done view %+v", v)
	}
	resp, _ = get(t, ts.URL+v.Result)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch status %d", resp.StatusCode)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: 8})
	running := make(chan struct{})
	release := make(chan struct{})
	hooked := false
	s.testHookExecuting = func(Spec) {
		if !hooked {
			hooked = true
			close(running)
		}
		<-release
	}
	defer close(release)
	post(t, ts.URL+"/v1/jobs", `{"graph":"grid","n":16,"algo":"mis","seed":1}`)
	<-running
	post(t, ts.URL+"/v1/jobs", `{"graph":"grid","n":16,"algo":"mis","seed":2}`)
	resp, body := post(t, ts.URL+"/v1/jobs", `{"graph":"grid","n":16,"algo":"mis","seed":3}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("queue-full response lacks Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("body %s does not name the condition", body)
	}
}

// Degraded mode over HTTP: a draining service serves cached and durable
// results but answers computation with 503 + Retry-After.
func TestHTTPDrainingAndDurableHit(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 1, DataDir: dir})
	body := `{"graph":"grid","n":16,"algo":"mis","seed":1}`
	if r, b := post(t, ts.URL+"/v1/simulate", body); r.StatusCode != http.StatusOK {
		t.Fatalf("cold compute: %d %s", r.StatusCode, b)
	}
	// Evict seed=1 from the single-entry LRU; it stays durable on disk.
	if r, b := post(t, ts.URL+"/v1/simulate", `{"graph":"grid","n":16,"algo":"mis","seed":2}`); r.StatusCode != http.StatusOK {
		t.Fatalf("evicting compute: %d %s", r.StatusCode, b)
	}
	s.Close()
	r1, _ := post(t, ts.URL+"/v1/simulate", body)
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Cache") != "HIT-DURABLE" {
		t.Fatalf("drained durable read: status %d X-Cache %q, want 200 HIT-DURABLE", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	r2, b2 := post(t, ts.URL+"/v1/simulate", `{"graph":"grid","n":16,"algo":"mis","seed":3}`)
	if r2.StatusCode != http.StatusServiceUnavailable || r2.Header.Get("Retry-After") == "" {
		t.Fatalf("drained compute: status %d Retry-After %q (%s), want 503 with Retry-After", r2.StatusCode, r2.Header.Get("Retry-After"), b2)
	}
}

// A request whose context deadline expires mid-computation gets 503 +
// Retry-After; the detached computation lands, so the retry is a hit.
func TestHTTPRequestDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 8})
	release := make(chan struct{})
	var once sync.Once
	s.testHookExecuting = func(Spec) { once.Do(func() { <-release }) }
	body := `{"graph":"grid","n":16,"algo":"mis","seed":9}`
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, rerr := http.DefaultClient.Do(req)
	if rerr == nil {
		// The handler answered before the client gave up: it must be the
		// 503 + Retry-After shape.
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("deadline response: %d Retry-After %q, want 503 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()
	}
	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, _ := post(t, ts.URL+"/v1/simulate", body)
		if r.StatusCode == http.StatusOK && r.Header.Get("X-Cache") == "HIT" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached computation never became a cache hit")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPMisc(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("healthz %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/results/deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result status %d", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body %s: %v", body, err)
	}
	if st.QueueCap == 0 || st.Workers == 0 {
		t.Fatalf("stats %+v missing config echoes", st)
	}
}
