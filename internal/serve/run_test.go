package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// specGrid is the scenario grid the cache-correctness tests sweep: every
// algorithm family, static and dynamic graphs.
func specGrid() []Spec {
	return []Spec{
		{Graph: "grid", N: 25, Algo: "mis", Seed: 1, Reps: 2},
		{Graph: "path", N: 16, Algo: "broadcast", Seed: 2},
		{Graph: "clique", N: 12, Algo: "decay-broadcast", Seed: 3, Reps: 2},
		{Graph: "grid", N: 16, Algo: "election", Seed: 4},
		{Graph: "grid", N: 16, Algo: "decay-election", Seed: 5},
		{Graph: "grid", N: 16, Algo: "flood", Seed: 6, EpochLen: 8},
		{Graph: "churn:grid", N: 25, Algo: "flood", Seed: 7, Reps: 2, Epochs: 3, EpochLen: 8, Rate: 0.2},
	}
}

// Acceptance: for a grid of specs, a recomputation is byte-identical to
// the first — the property that makes the cache correct by construction.
func TestExecuteDeterministicAcrossRecomputation(t *testing.T) {
	for _, sp := range specGrid() {
		sp := sp
		t.Run(sp.Algo+"/"+sp.Graph, func(t *testing.T) {
			t.Parallel()
			r1, err := Execute(sp, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := r1.JSON()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Execute(sp, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := r2.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("recomputation differs:\n%s\nvs\n%s", b1, b2)
			}
			if !strings.Contains(string(b1), r1.SpecHash[:12]) {
				t.Fatal("result JSON does not carry the spec hash")
			}
		})
	}
}

// Per-job parallelism must not leak into results (the runner contract).
func TestExecuteParallelInvariance(t *testing.T) {
	sp := Spec{Graph: "grid", N: 25, Algo: "mis", Seed: 9, Reps: 4}
	var want []byte
	for _, par := range []int{1, 2, 4} {
		r, err := Execute(sp, par, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if !bytes.Equal(want, b) {
			t.Fatalf("parallel=%d changed the result bytes", par)
		}
	}
}

func TestExecuteProgress(t *testing.T) {
	sp := Spec{Graph: "path", N: 12, Algo: "broadcast", Seed: 1, Reps: 3}
	var mu sync.Mutex
	var dones []int
	total := 0
	_, err := Execute(sp, 2, func(done, tot int) {
		mu.Lock()
		dones = append(dones, done)
		total = tot
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != 3 || total != 3 {
		t.Fatalf("progress calls %v total %d, want 3 calls and total 3", dones, total)
	}
	seen := map[int]bool{}
	for _, d := range dones {
		if d < 1 || d > 3 || seen[d] {
			t.Fatalf("bad progress sequence %v", dones)
		}
		seen[d] = true
	}
}

func TestExecuteBadSpec(t *testing.T) {
	if _, err := Execute(Spec{Graph: "nosuch"}, 1, nil); err == nil {
		t.Fatal("want error for bad spec")
	}
}

func TestExecuteCanonicalizesBeforeRunning(t *testing.T) {
	// The executor must hash/seed off the canonical spec, so an equivalent
	// spelling yields identical bytes.
	a := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 2}
	b := Spec{Graph: "grid", N: 16, Algo: "mis", Seed: 2, Epochs: 5, Rate: 0.9}
	ra, err := Execute(a, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Execute(b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := ra.JSON()
	bb, _ := rb.JSON()
	if !bytes.Equal(ba, bb) {
		t.Fatal("equivalent spellings produced different results")
	}
}
