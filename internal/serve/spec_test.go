package serve

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func mustCanon(t *testing.T, sp Spec) Spec {
	t.Helper()
	c, err := sp.Canonicalize()
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", sp, err)
	}
	return c
}

func TestCanonicalizeDefaults(t *testing.T) {
	c := mustCanon(t, Spec{})
	want := Spec{Graph: "grid", N: 64, Algo: "broadcast", Seed: 1, Reps: 1}
	if c != want {
		t.Fatalf("defaults: got %+v, want %+v", c, want)
	}
}

// Two spellings of the same scenario must share one hash: fields the
// scenario cannot observe are zeroed by canonicalization.
func TestCanonicalizeEquivalentSpellings(t *testing.T) {
	cases := []struct {
		name string
		a, b Spec
	}{
		{"defaults explicit",
			Spec{},
			Spec{Graph: "grid", N: 64, Algo: "broadcast", Seed: 1, Reps: 1}},
		{"mis ignores dynamic knobs",
			Spec{Graph: "grid", N: 49, Algo: "mis", Seed: 3},
			Spec{Graph: "grid", N: 49, Algo: "mis", Seed: 3, Epochs: 9, EpochLen: 16, Rate: 0.4}},
		{"election ignores source",
			Spec{Graph: "grid", N: 49, Algo: "election", Seed: 3},
			Spec{Graph: "grid", N: 49, Algo: "election", Seed: 3, Source: 7}},
		{"static flood ignores epochs and rate",
			Spec{Graph: "grid", N: 25, Algo: "flood", Seed: 2},
			Spec{Graph: "grid", N: 25, Algo: "flood", Seed: 2, Epochs: 7, Rate: 0.3}},
		{"dynamic flood default rate explicit",
			Spec{Graph: "churn:grid", N: 25, Algo: "flood", Seed: 2},
			Spec{Graph: "churn:grid", N: 25, Algo: "flood", Seed: 2, Epochs: 12, EpochLen: 32, Rate: 0.15}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ca, cb := mustCanon(t, tc.a), mustCanon(t, tc.b)
			if ca != cb {
				t.Fatalf("canonical forms differ:\n  %+v\n  %+v", ca, cb)
			}
			if ca.Hash() != cb.Hash() {
				t.Fatalf("hashes differ for equivalent specs")
			}
		})
	}
}

func TestHashDistinguishesScenarios(t *testing.T) {
	base := Spec{Graph: "grid", N: 49, Algo: "mis", Seed: 1}
	variants := []Spec{
		{Graph: "path", N: 49, Algo: "mis", Seed: 1},
		{Graph: "grid", N: 50, Algo: "mis", Seed: 1},
		{Graph: "grid", N: 49, Algo: "election", Seed: 1},
		{Graph: "grid", N: 49, Algo: "mis", Seed: 2},
		{Graph: "grid", N: 49, Algo: "mis", Seed: 1, Reps: 3},
	}
	h0 := mustCanon(t, base).Hash()
	if len(h0) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h0))
	}
	seen := map[string]bool{h0: true}
	for _, v := range variants {
		h := mustCanon(t, v).Hash()
		if seen[h] {
			t.Fatalf("hash collision for %+v", v)
		}
		seen[h] = true
	}
}

// TestStreamingCeiling pins the raised node ceiling: the streaming-capable
// graph classes canonicalize fine between MaxN and MaxNStream — exactly the
// range the streaming generator path (gen.BuildCSR) exists for — while
// everything else keeps the MaxN guardrail.
func TestStreamingCeiling(t *testing.T) {
	for _, sp := range []Spec{
		{Graph: "udg", Algo: "mis", N: MaxN + 1},
		{Graph: "udg", Algo: "broadcast", N: MaxNStream},
		{Graph: "phy:sinr", Algo: "decay-broadcast", N: 20000},
		{Graph: "phy:sinr", Algo: "flood", N: MaxNStream},
	} {
		c, err := sp.Canonicalize()
		if err != nil {
			t.Fatalf("Canonicalize(%+v): %v", sp, err)
		}
		if !c.StreamingCapable() {
			t.Fatalf("%+v should be streaming-capable", c)
		}
	}
	if (Spec{Graph: "grid"}).StreamingCapable() {
		t.Fatal("grid must not be streaming-capable")
	}
}

func TestCanonicalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"bad algo", Spec{Algo: "nosuch"}, "unknown algorithm"},
		{"bad class", Spec{Graph: "nosuch"}, "unknown graph class"},
		{"bad dyn kind", Spec{Graph: "warp:grid"}, "unknown dynamic kind"},
		{"missing payload", Spec{Graph: "churn:"}, "unknown graph class"},
		{"mobile non-udg", Spec{Graph: "mobile:grid"}, "only mobile:udg"},
		{"nested dynamic", Spec{Graph: "churn:churn:grid"}, "nested dynamic spec"},
		{"n too big", Spec{N: MaxN + 1}, "out of range"},
		{"n negative", Spec{N: -3}, "out of range"},
		{"n too big names streaming classes", Spec{Graph: "grid", N: 8192}, "streaming-capable"},
		{"streaming n above memory guard", Spec{Graph: "udg", N: MaxNStream + 1}, "memory guard"},
		{"phy streaming n above memory guard", Spec{Graph: "phy:sinr", Algo: "mis", N: 1000000}, "memory guard"},
		{"reps too big", Spec{Reps: MaxReps + 1}, "out of range"},
		{"source out of range", Spec{Algo: "broadcast", N: 16, Source: 16}, "source"},
		{"source negative", Spec{Algo: "flood", N: 16, Source: -1}, "source"},
		{"churn rate above 1", Spec{Graph: "churn:grid", Algo: "flood", Rate: 1.5}, "rate"},
		{"rate NaN", Spec{Graph: "fault:grid", Algo: "flood", Rate: math.NaN()}, "rate"},
		{"epochs too big", Spec{Graph: "churn:grid", Algo: "flood", Epochs: MaxEpochs + 1}, "epochs"},
		{"epoch_len too big", Spec{Algo: "flood", EpochLen: MaxEpochLen + 1}, "epoch_len"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sp.Canonicalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Canonicalize(%+v) = %v, want %q", tc.sp, err, tc.want)
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error %v does not wrap ErrBadSpec", err)
			}
		})
	}
}

func TestMobileSpeedAboveOneAllowed(t *testing.T) {
	c := mustCanon(t, Spec{Graph: "mobile:udg", Algo: "flood", N: 32, Rate: 1.5})
	if c.Rate != 1.5 {
		t.Fatalf("mobile rate clobbered: %v", c.Rate)
	}
}

func TestCanonicalStringAndGridID(t *testing.T) {
	c := mustCanon(t, Spec{Graph: "grid", N: 49, Algo: "mis", Seed: 7, Reps: 2})
	s := c.String()
	for _, want := range []string{"v1", "algo=mis", "graph=grid", "n=49", "seed=7", "reps=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if !strings.HasPrefix(c.GridID(), "serve:") || len(c.GridID()) != len("serve:")+16 {
		t.Fatalf("GridID() = %q", c.GridID())
	}
	other := mustCanon(t, Spec{Graph: "grid", N: 49, Algo: "mis", Seed: 8, Reps: 2})
	if other.GridID() == c.GridID() {
		t.Fatal("distinct specs share a grid ID")
	}
}
