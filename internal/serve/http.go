package serve

// The HTTP face of the service (cmd/radionet-serve mounts it):
//
//	POST /v1/simulate      — sync: spec JSON in, Result JSON out
//	POST /v1/jobs          — async: spec JSON in, 202 + JobView out
//	GET  /v1/jobs/{id}     — job progress / completion
//	GET  /v1/results/{hash} — content-addressed cached Result
//	GET  /v1/stats         — service counters
//	GET  /healthz          — liveness
//
// Simulate and results responses carry X-Cache (HIT | HIT-DURABLE |
// HIT-PREFIX | MISS | COALESCED) and X-Spec-Hash headers so load
// generators can measure cache behavior client-side.
//
// Failure modes are retryable-vs-not (README "failure modes"): 400 means
// the spec is wrong (don't retry), 503 + Retry-After means the service is
// saturated (queue full, admission control), shutting down (draining), or
// out of request budget (deadline) — retry after the indicated delay; 500
// is an internal failure.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// NewHandler mounts the /v1 API for s, wrapped in the observability
// middleware: every response carries X-Trace-Id (the request's own if it
// sent a valid one, a fresh one otherwise), every request is counted and
// timed into the /metrics registry, and a structured request log line is
// emitted (debug for /healthz and /metrics so the default info level stays
// quiet under probes and scrapes; info otherwise).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		data, hash, status, err := s.SimulateCtx(r.Context(), sp)
		if err != nil {
			writeSimError(w, err)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-Spec-Hash", hash)
		h.Set("X-Cache", cacheHeader(status))
		w.Write(data)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		v, err := s.SubmitJobCtx(r.Context(), sp)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				// Backpressure, not a client error: say when to come back.
				writeRetryErr(w, "1", err.Error())
			case errors.Is(err, ErrClosed):
				writeErr(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeSimError(w, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.ResultByHash(r.PathValue("hash"))
		if !ok {
			writeErr(w, http.StatusNotFound, "result not cached (not computed yet, or evicted — re-request the spec)")
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-Cache", "HIT")
		w.Write(data)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return instrument(s, mux)
}

// statusRecorder captures the status code (and, via the embedded header
// map, the X-Cache tier) a handler wrote, for the middleware to observe.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// routeLabel normalizes a request path to its route pattern, bounding the
// metric label space: path parameters (job IDs, spec hashes) must not mint
// series. Unknown paths collapse into "other".
func routeLabel(path string) string {
	switch {
	case path == "/healthz" || path == "/metrics" || path == "/v1/stats" ||
		path == "/v1/simulate" || path == "/v1/jobs":
		return path
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(path, "/v1/results/"):
		return "/v1/results/{hash}"
	default:
		return "other"
	}
}

// instrument is the observability middleware (DESIGN.md §10).
func instrument(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		trace := r.Header.Get("X-Trace-Id")
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		w.Header().Set("X-Trace-Id", trace)
		s.met.httpInFlight.Inc()
		defer s.met.httpInFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(obs.WithTrace(r.Context(), trace)))

		route := routeLabel(r.URL.Path)
		dur := time.Since(t0)
		s.met.httpRequests.With(route, strconv.Itoa(rec.code)).Inc()
		s.met.httpLatency.With(route).Observe(dur.Seconds())
		xc := rec.Header().Get("X-Cache")
		// Tier accounting covers the sync simulate path only: the results
		// endpoint's unconditional X-Cache: HIT would dilute the hit ratio.
		if route == "/v1/simulate" {
			s.met.observeTier(xc)
		}
		lvl := slog.LevelInfo
		if route == "/healthz" || route == "/metrics" {
			lvl = slog.LevelDebug
		}
		s.log.LogAttrs(r.Context(), lvl, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.code),
			slog.String("cache", xc),
			slog.Duration("dur", dur),
			slog.String("trace", trace))
	})
}

// maxSpecBody bounds spec request bodies. Valid specs are a few hundred
// bytes; the limit keeps one malicious POST from buffering unbounded JSON
// (the body-side counterpart of the Spec's MaxN/MaxReps guardrails).
const maxSpecBody = 64 << 10

// decodeSpec parses the request body strictly; unknown fields are client
// errors so typos ("epochlen") fail loudly instead of hashing as defaults.
func decodeSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeErr(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
		return Spec{}, false
	}
	// One spec per request: trailing data is a client bug (e.g. two specs
	// concatenated), not something to silently drop.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErr(w, http.StatusBadRequest, "trailing data after spec JSON")
		return Spec{}, false
	}
	return sp, true
}

// writeSimError maps spec-validation failures to 400, transient conditions
// (backpressure, drain, request deadline) to 503 + Retry-After, and
// everything else (engine/generator failures) to 500.
func writeSimError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadSpec):
		writeErr(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		writeRetryErr(w, "1", err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request's context expired; the computation keeps running and
		// lands in the cache, so an immediate-ish retry is cheap.
		writeRetryErr(w, "1", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func cacheHeader(status CacheStatus) string {
	switch status {
	case StatusHit:
		return "HIT"
	case StatusDurableHit:
		return "HIT-DURABLE"
	case StatusCoalesced:
		return "COALESCED"
	case StatusPrefixHit:
		return "HIT-PREFIX"
	default:
		return "MISS"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeRetryErr is a 503 with a Retry-After hint — the shape of every
// transient, client-retryable failure.
func writeRetryErr(w http.ResponseWriter, retryAfter, msg string) {
	w.Header().Set("Retry-After", retryAfter)
	writeErr(w, http.StatusServiceUnavailable, msg)
}
