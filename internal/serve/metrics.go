package serve

// The service's metric surface (DESIGN.md §10). Naming scheme:
// <subsystem>_<noun>_<unit|total>, subsystems serve_http / serve_cache /
// serve_job / serve_journal / serve_store / serve_engine. Counters already
// tracked as Service atomics are exported through CounterFunc/GaugeFunc
// closures so the exposition reads the same bookkeeping /v1/stats reports —
// the two views cannot drift.

import (
	"time"

	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/store"
)

// metrics owns the service's obs.Registry and every instrument that is
// updated on hot paths. One instance per Service (never global), so tests
// and multiple services in one process cannot collide.
type metrics struct {
	reg *obs.Registry

	// HTTP layer (written by the middleware in http.go).
	httpRequests *obs.CounterVec   // serve_http_requests_total{route,code}
	httpLatency  *obs.HistogramVec // serve_http_request_seconds{route}
	httpInFlight *obs.Gauge        // serve_http_in_flight_requests
	cacheTier    *obs.CounterVec   // serve_cache_requests_total{tier}

	// Job layer.
	queueWait *obs.Histogram // serve_job_queue_wait_seconds

	// Engine probe state: last-sample gauges (advisory load, last write
	// wins across concurrent trials) plus a probe counter.
	probes           obs.Counter
	engineSteps      obs.FloatGauge // steps/sec of the last probe window
	engineActive     obs.Gauge      // active-set size at the last probe
	engineFrontier   obs.FloatGauge // mean per-step transmitter frontier
	engineArenaCap   obs.Gauge      // SINR candidate-arena budget
	engineArenaHW    obs.Gauge      // SINR candidate-arena high water
	engineFallbacks  obs.Gauge      // SINR fallback sweeps (cumulative per run)
	enginePHYSamples obs.Counter    // probes that carried PHY stats
}

// storeKeyspaces labels the two durable keyspaces sharing the store
// instrument families.
const (
	keyspaceResult = "result"
	keyspaceSnap   = "snap"
)

// newMetrics builds the registry for s and registers the pull-side views
// over its existing counters. Called from Open before any traffic.
func newMetrics(s *Service) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		httpRequests: reg.CounterVec("serve_http_requests_total",
			"HTTP requests by route and status code", "route", "code"),
		httpLatency: reg.HistogramVec("serve_http_request_seconds",
			"HTTP request latency by route", []string{"route"}),
		httpInFlight: reg.Gauge("serve_http_in_flight_requests",
			"HTTP requests currently being served"),
		cacheTier: reg.CounterVec("serve_cache_requests_total",
			"responses by cache tier (memory|durable|prefix|coalesced|miss)", "tier"),
		queueWait: reg.Histogram("serve_job_queue_wait_seconds",
			"time jobs spent queued before a worker picked them up"),
	}

	// Queue / job / uptime gauges, reading service state at scrape time.
	reg.GaugeFunc("serve_job_queue_depth", "async jobs queued and not yet running",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("serve_job_queue_capacity", "async job queue capacity",
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("serve_jobs_running", "async jobs currently executing",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.runningLocked())
		})
	reg.GaugeFunc("serve_uptime_seconds", "seconds since the service opened",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("serve_draining", "1 once shutdown began (reads served, compute refused)",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	// Counter views over the Service atomics /v1/stats also reports.
	counterFuncs := []struct {
		name, help string
		fn         func() uint64
	}{
		{"serve_executions_total", "simulations actually executed (cache misses that computed)", s.execs.Load},
		{"serve_coalesced_total", "requests served by piggybacking on an in-flight identical execution", s.coalesced.Load},
		{"serve_prefix_hits_total", "computations resumed from cached prefix snapshots", s.prefixHits.Load},
		{"serve_prefix_epochs_saved_total", "epochs skipped by prefix-snapshot resume, summed over trials", s.prefixEpochs.Load},
		{"serve_job_retries_total", "job execution retry attempts", s.retries.Load},
		{"serve_job_timeouts_total", "jobs failed terminally by Config.JobTimeout", s.timeouts.Load},
		{"serve_job_resumes_total", "interrupted jobs re-enqueued from the journal at Open", s.recJobs.Load},
		{"serve_job_resumed_trials_total", "completed trials prefilled from the journal at Open", s.recTrials.Load},
		{"serve_journal_errors_total", "non-fatal journal append failures", s.journalErrs.Load},
		{"serve_snap_errors_total", "failed prefix-snapshot publications", s.snapErrs.Load},
	}
	for _, c := range counterFuncs {
		reg.CounterFunc(c.name, c.help, c.fn)
	}

	// Engine probe gauges (fed by observeProbe via radio.Options.Probe).
	reg.CounterFunc("serve_engine_probes_total",
		"engine probe samples received (epoch boundaries + run ends)", m.probes.Value)
	reg.GaugeFunc("serve_engine_steps_per_second",
		"engine step rate over the last probe window", m.engineSteps.Value)
	reg.GaugeFunc("serve_engine_active_nodes",
		"active-set size at the last engine probe", func() float64 { return float64(m.engineActive.Value()) })
	reg.GaugeFunc("serve_engine_frontier_avg",
		"mean per-step transmitter-frontier population over the last probe window", m.engineFrontier.Value)
	reg.CounterFunc("serve_engine_phy_probes_total",
		"engine probes that carried PHY (SINR) load stats", m.enginePHYSamples.Value)
	reg.GaugeFunc("serve_engine_sinr_arena_cap",
		"SINR candidate-arena budget of the last probed run", func() float64 { return float64(m.engineArenaCap.Value()) })
	reg.GaugeFunc("serve_engine_sinr_arena_high_water",
		"largest candidate count a step asked of the arena in the last probed run", func() float64 { return float64(m.engineArenaHW.Value()) })
	reg.GaugeFunc("serve_engine_sinr_fallback_sweeps",
		"steps that overflowed the arena to the fallback sweep in the last probed run", func() float64 { return float64(m.engineFallbacks.Value()) })

	return m
}

// storeMetrics builds the instrument set for one durable keyspace, sharing
// the labeled family across keyspaces.
func (m *metrics) storeMetrics(keyspace string) store.Metrics {
	gets := m.reg.HistogramVec("serve_store_get_seconds",
		"durable-store read latency by keyspace", []string{"keyspace"})
	puts := m.reg.HistogramVec("serve_store_put_seconds",
		"durable-store write latency by keyspace", []string{"keyspace"})
	fsyncs := m.reg.HistogramVec("serve_store_fsync_seconds",
		"durable-store fsync latency by keyspace", []string{"keyspace"})
	quars := m.reg.CounterVec("serve_store_quarantined_total",
		"corrupt entries moved to quarantine on read, by keyspace", "keyspace")
	return store.Metrics{
		GetSeconds:   gets.With(keyspace),
		PutSeconds:   puts.With(keyspace),
		FsyncSeconds: fsyncs.With(keyspace),
		Quarantined:  quars.With(keyspace),
	}
}

// journalMetrics builds the journal's instrument set.
func (m *metrics) journalMetrics() journalMetrics {
	return journalMetrics{
		AppendSeconds: m.reg.Histogram("serve_journal_append_seconds",
			"journal append latency (marshal + write + any fsync)"),
		FsyncSeconds: m.reg.Histogram("serve_journal_fsync_seconds",
			"fsync latency of durable (lifecycle) journal records"),
	}
}

// observeProbe folds one engine probe sample into the gauges. Samples
// arrive from concurrently running trials; these are advisory last-write-
// wins load indicators, not an accounting surface (the accounting counters
// are in Result/Stats).
func (m *metrics) observeProbe(s *radio.ProbeSample) {
	m.probes.Inc()
	m.engineSteps.Set(s.StepsPerSec)
	m.engineActive.Set(int64(s.Active))
	m.engineFrontier.Set(s.AvgFrontier)
	if s.HasPHY {
		m.enginePHYSamples.Inc()
		m.engineArenaCap.Set(int64(s.PHY.ArenaCap))
		m.engineArenaHW.Set(int64(s.PHY.ArenaHighWater))
		m.engineFallbacks.Set(int64(s.PHY.FallbackSweeps))
	}
}

// observeTier counts one response's cache tier from its X-Cache header
// value ("HIT", "HIT-DURABLE", "HIT-PREFIX", "COALESCED", "MISS").
func (m *metrics) observeTier(xcache string) {
	var tier string
	switch xcache {
	case "HIT":
		tier = "memory"
	case "HIT-DURABLE":
		tier = "durable"
	case "HIT-PREFIX":
		tier = "prefix"
	case "COALESCED":
		tier = "coalesced"
	case "MISS":
		tier = "miss"
	default:
		return
	}
	m.cacheTier.With(tier).Inc()
}
